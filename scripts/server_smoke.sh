#!/usr/bin/env bash
# Server smoke test: start a real bagcd daemon, replay the annotated
# transcripts from docs/PROTOCOL.md through the bagctl client (all four
# blocks, including the INSERT/DELETE streaming-mutation transcript with
# its "reused" suffixes and all-or-nothing failure line, plus the
# BEGIN/COMMIT transaction block), prove the replayer actually fails on
# divergence (a deliberately wrong transcript must exit nonzero with a
# line-numbered diff), round-trip a sealed-bag segment (bagctl
# --export-seg -> daemon restart -> LOADSEG, answers matching the
# text-loaded session), thrash two named collections through a 1 MiB
# memory budget (eviction + lazy segment reload must not change a byte
# of the answers), SIGKILL a daemon whose commits were journaled to a
# --wal-dir delta WAL and prove the restart replays them byte-identically
# (including a kill mid-commit-stream, whose torn tail must be truncated,
# and a fingerprint-mismatched WAL, which must refuse startup), then
# stop the daemon over the wire (SHUTDOWN) and assert a clean exit.
# This is the out-of-process
# complement to server_protocol_test — it exercises the actual
# executables, argument parsing, port-file handshake, and process
# shutdown path.
#
# Usage: scripts/server_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD_DIR=${1:-build}
REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
BAGCD="$REPO_ROOT/$BUILD_DIR/bagcd"
BAGCTL="$REPO_ROOT/$BUILD_DIR/bagctl"
PORT_FILE=$(mktemp -u)
WORK_DIR=$(mktemp -d)

[ -x "$BAGCD" ] || { echo "server_smoke: $BAGCD not built" >&2; exit 1; }
[ -x "$BAGCTL" ] || { echo "server_smoke: $BAGCTL not built" >&2; exit 1; }

cleanup() {
  [ -n "${DAEMON_PID:-}" ] && kill "$DAEMON_PID" 2>/dev/null || true
  rm -f "$PORT_FILE"
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

DAEMON_LOG="$WORK_DIR/daemon_log.txt"

start_daemon() {  # args: extra bagcd flags
  rm -f "$PORT_FILE"
  "$BAGCD" --port 0 --port-file "$PORT_FILE" "$@" > "$DAEMON_LOG" 2>&1 &
  DAEMON_PID=$!
  for _ in $(seq 100); do
    [ -s "$PORT_FILE" ] && break
    sleep 0.1
  done
  [ -s "$PORT_FILE" ] || {
    echo "server_smoke: bagcd never wrote its port file" >&2
    cat "$DAEMON_LOG" >&2
    exit 1
  }
  PORT=$(cat "$PORT_FILE")
}

stop_daemon() {  # wire-initiated shutdown; daemon must exit 0 on its own
  printf 'SHUTDOWN\n' | "$BAGCTL" --port "$PORT" --script - > /dev/null
  if wait "$DAEMON_PID"; then
    DAEMON_PID=""
  else
    status=$?
    DAEMON_PID=""
    echo "server_smoke: bagcd exited with status $status" >&2
    exit 1
  fi
}

start_daemon

# The transcript assumes a fresh server (STATS counters from zero),
# which is exactly what we just started.
"$BAGCTL" --port "$PORT" --replay "$REPO_ROOT/docs/PROTOCOL.md"

# The replayer must FAIL on divergence — a conformance check that cannot
# fail checks nothing. A wrong expectation exits nonzero and prints a
# line-numbered diff.
BAD_TRANSCRIPT="$WORK_DIR/bad_transcript.txt"
cat > "$BAD_TRANSCRIPT" <<'EOF'
S: BAGCD 1 READY
C: HELLO
S: OK HELLO proto 999 frames 1
EOF
if "$BAGCTL" --port "$PORT" --replay "$BAD_TRANSCRIPT" > "$WORK_DIR/bad_out.txt" 2>&1; then
  echo "server_smoke: replay of a wrong transcript unexpectedly passed" >&2
  exit 1
fi
grep -q "transcript line 3: transcript mismatch" "$WORK_DIR/bad_out.txt" || {
  echo "server_smoke: replay mismatch lacks the line-numbered diff:" >&2
  cat "$WORK_DIR/bad_out.txt" >&2
  exit 1
}

# Segment round trip: export a collection as an mmap-able segment, take
# reference answers from a text-loaded session, restart the daemon warm
# from the segment (--preload-seg), and check a LOADSEG session agrees.
COLLECTION="$WORK_DIR/collection.bag"
SEGMENT="$WORK_DIR/collection.seg"
cat > "$COLLECTION" <<'EOF'
bag item store
apple downtown : 2
banana uptown : 1
cherry uptown : 5
end
bag store region
downtown north : 2
uptown north : 6
end
EOF
"$BAGCTL" --export-seg "$SEGMENT" --collection "$COLLECTION" --names sales,stores

QUERIES='SEAL\nTWOBAG sales stores\nPAIRWISE\nGLOBAL\nWITNESS sales stores\nQUIT\n'
printf "LOAD sales item store\napple downtown : 2\nbanana uptown : 1\ncherry uptown : 5\nEND\nLOAD stores store region\ndowntown north : 2\nuptown north : 6\nEND\n$QUERIES" \
  | "$BAGCTL" --port "$PORT" --script - | grep -v '^OK LOAD' > "$WORK_DIR/text_answers.txt"
stop_daemon

start_daemon --preload-seg "$SEGMENT"
printf "LOADSEG $SEGMENT\n$QUERIES" \
  | "$BAGCTL" --port "$PORT" --script - | grep -v '^OK LOADSEG' > "$WORK_DIR/seg_answers.txt"
if ! diff -u "$WORK_DIR/text_answers.txt" "$WORK_DIR/seg_answers.txt"; then
  echo "server_smoke: LOADSEG answers diverge from the text-loaded session" >&2
  exit 1
fi
grep -q '^OK CONSISTENT' "$WORK_DIR/seg_answers.txt" || {
  echo "server_smoke: segment session produced no verdict" >&2
  exit 1
}
stop_daemon

# Multi-collection eviction leg: two named tenants, each sealing past the
# entire --mem-budget-mb 1 budget, so every ATTACH+query evicts the other
# tenant and lazily reloads from its segment — and the answers must not
# differ by one byte from an unlimited-budget daemon's.
make_big_collection() {  # args: out-path, salt (multiplicities differ per tenant)
  awk -v salt="$2" 'BEGIN {
    print "bag item store"
    for (i = 0; i < 12000; ++i)
      printf "item%d st%d : %d\n", i, i % 64, 1 + (i + salt) % 5
    print "end"
    print "bag store region"
    for (s = 0; s < 64; ++s) printf "st%d north : %d\n", s, 200 + salt
    print "end"
  }' > "$1"
}
make_big_collection "$WORK_DIR/tenant_a.bag" 0
make_big_collection "$WORK_DIR/tenant_b.bag" 1
"$BAGCTL" --export-seg "$WORK_DIR/tenant_a.seg" --collection "$WORK_DIR/tenant_a.bag" --names sales,stores
"$BAGCTL" --export-seg "$WORK_DIR/tenant_b.seg" --collection "$WORK_DIR/tenant_b.bag" --names sales,stores

TENANT_QUERIES='TWOBAG sales stores\nPAIRWISE\nKWISE 2\nQUIT\n'

# Reference answers from a daemon with no budget (nothing ever evicted).
start_daemon
for t in a b; do
  printf "LOADSEG $WORK_DIR/tenant_$t.seg\nSEAL\nQUIT\n" \
    | "$BAGCTL" --port "$PORT" --attach "tenant_$t" --script - > /dev/null
  printf "$TENANT_QUERIES" \
    | "$BAGCTL" --port "$PORT" --attach "tenant_$t" --script - > "$WORK_DIR/ref_$t.txt"
  grep -Eq '^OK (IN)?CONSISTENT' "$WORK_DIR/ref_$t.txt" || {
    echo "server_smoke: tenant_$t reference run produced no verdict" >&2
    exit 1
  }
done
stop_daemon

# The budgeted daemon: seal both tenants, then thrash queries across them.
start_daemon --mem-budget-mb 1
for t in a b; do
  printf "LOADSEG $WORK_DIR/tenant_$t.seg\nSEAL\nQUIT\n" \
    | "$BAGCTL" --port "$PORT" --attach "tenant_$t" --script - > /dev/null
done
for round in 1 2 3; do
  for t in a b; do
    printf "$TENANT_QUERIES" \
      | "$BAGCTL" --port "$PORT" --attach "tenant_$t" --script - > "$WORK_DIR/got_$t.txt"
    if ! diff -u "$WORK_DIR/ref_$t.txt" "$WORK_DIR/got_$t.txt"; then
      echo "server_smoke: tenant_$t round $round diverged after eviction/reload" >&2
      exit 1
    fi
  done
done
# The budget really was tight enough to thrash: the registry reloaded
# tenant_a from its segment at least once per round.
printf 'STATS tenant_a\nQUIT\n' | "$BAGCTL" --port "$PORT" --script - > "$WORK_DIR/stats_a.txt"
grep -Eq '^reloads [1-9]' "$WORK_DIR/stats_a.txt" || {
  echo "server_smoke: budget daemon never reloaded tenant_a (eviction leg inert):" >&2
  cat "$WORK_DIR/stats_a.txt" >&2
  exit 1
}

stop_daemon

# Crash-recovery leg: commits journaled to the delta WAL must survive a
# SIGKILL (no clean shutdown, no flush) and replay on restart, answers
# byte-identical to the uninterrupted daemon's.
WAL_DIR="$WORK_DIR/wal"
mkdir -p "$WAL_DIR"
WAL_QUERIES='TWOBAG 0 1\nPAIRWISE\nGLOBAL\nKWISE 2\nWITNESS 0 1 MINIMAL\nQUIT\n'
# ids follow the segment's interning order: item apple=0 banana=1
# cherry=2; store downtown=0 uptown=1; region north=0.
WAL_COMMITS='BEGIN\nINSERT sales item store\n2 0 : 3\nEND\nDELETE stores store region\n1 0 : 2\nEND\nCOMMIT\nINSERT sales item store\n0 0 : 1\nEND\nDELETE sales item store\n1 1 : 1\nEND\nSTATS\nQUIT\n'

start_daemon --preload-seg "$SEGMENT" --wal-dir "$WAL_DIR"
printf "LOADSEG $SEGMENT\nSEAL\n$WAL_COMMITS" \
  | "$BAGCTL" --port "$PORT" --script - > "$WORK_DIR/wal_commits.txt"
if grep -q '^ERR' "$WORK_DIR/wal_commits.txt"; then
  echo "server_smoke: WAL commit stream errored:" >&2
  cat "$WORK_DIR/wal_commits.txt" >&2
  exit 1
fi
grep -q '^OK COMMIT 2 rows 2 bags' "$WORK_DIR/wal_commits.txt" || {
  echo "server_smoke: multi-bag COMMIT was not published atomically:" >&2
  cat "$WORK_DIR/wal_commits.txt" >&2
  exit 1
}
grep -q '^wal_records 3' "$WORK_DIR/wal_commits.txt" || {
  echo "server_smoke: expected 3 WAL records after the commit stream:" >&2
  cat "$WORK_DIR/wal_commits.txt" >&2
  exit 1
}
# The uninterrupted daemon is the oracle: capture its answers, then
# SIGKILL it — no shutdown handler runs, only the WAL survives.
printf "$WAL_QUERIES" | "$BAGCTL" --port "$PORT" --script - > "$WORK_DIR/wal_ref.txt"
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

start_daemon --preload-seg "$SEGMENT" --wal-dir "$WAL_DIR"
grep -q 'replayed 3 WAL generation' "$DAEMON_LOG" || {
  echo "server_smoke: restarted bagcd did not replay the WAL:" >&2
  cat "$DAEMON_LOG" >&2
  exit 1
}
printf "$WAL_QUERIES" | "$BAGCTL" --port "$PORT" --script - > "$WORK_DIR/wal_got.txt"
if ! diff -u "$WORK_DIR/wal_ref.txt" "$WORK_DIR/wal_got.txt"; then
  echo "server_smoke: recovered answers diverge from the uninterrupted daemon" >&2
  exit 1
fi

# Kill the daemon MID-stream this time: a torn final record is a crash
# artifact the recovery must truncate and tolerate, never refuse.
( printf "LOADSEG $SEGMENT\nSEAL\n"
  for _ in $(seq 50); do
    printf 'INSERT sales item store\n0 0 : 1\nEND\nDELETE sales item store\n0 0 : 1\nEND\n'
  done
  printf 'QUIT\n' ) \
  | "$BAGCTL" --port "$PORT" --script - > /dev/null 2>&1 &
STREAM_PID=$!
sleep 0.2
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
wait "$STREAM_PID" 2>/dev/null || true

start_daemon --preload-seg "$SEGMENT" --wal-dir "$WAL_DIR"
printf "$WAL_QUERIES" | "$BAGCTL" --port "$PORT" --script - > "$WORK_DIR/wal_torn.txt"
grep -Eq '^OK (IN)?CONSISTENT' "$WORK_DIR/wal_torn.txt" || {
  echo "server_smoke: daemon did not serve after mid-stream crash recovery:" >&2
  cat "$DAEMON_LOG" >&2
  exit 1
}
stop_daemon

# A WAL written against one base segment must refuse to replay over a
# different one — the daemon exits with the documented error instead of
# silently folding deltas onto the wrong rows.
if "$BAGCD" --port 0 --port-file "$PORT_FILE" --preload-seg "$WORK_DIR/tenant_a.seg" \
    --wal-dir "$WAL_DIR" > "$WORK_DIR/wal_mismatch.txt" 2>&1; then
  echo "server_smoke: bagcd started despite a fingerprint-mismatched WAL" >&2
  exit 1
fi
grep -q 'WAL recovery failed' "$WORK_DIR/wal_mismatch.txt" || {
  echo "server_smoke: fingerprint mismatch lacks the documented error:" >&2
  cat "$WORK_DIR/wal_mismatch.txt" >&2
  exit 1
}
grep -q 'different base segment' "$WORK_DIR/wal_mismatch.txt" || {
  echo "server_smoke: fingerprint mismatch does not name the cause:" >&2
  cat "$WORK_DIR/wal_mismatch.txt" >&2
  exit 1
}

echo "server_smoke: OK (transcripts incl. mutation + transactions replayed, replay diff verified, segment round trip, eviction thrash, WAL crash recovery + fingerprint refusal, clean shutdowns)"
