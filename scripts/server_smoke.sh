#!/usr/bin/env bash
# Server smoke test: start a real bagcd daemon, replay the annotated
# transcript from docs/PROTOCOL.md through the bagctl client, then stop
# the daemon over the wire (SHUTDOWN) and assert a clean exit. This is
# the out-of-process complement to server_protocol_test — it exercises
# the actual executables, argument parsing, port-file handshake, and
# process shutdown path.
#
# Usage: scripts/server_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD_DIR=${1:-build}
REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
BAGCD="$REPO_ROOT/$BUILD_DIR/bagcd"
BAGCTL="$REPO_ROOT/$BUILD_DIR/bagctl"
PORT_FILE=$(mktemp -u)

[ -x "$BAGCD" ] || { echo "server_smoke: $BAGCD not built" >&2; exit 1; }
[ -x "$BAGCTL" ] || { echo "server_smoke: $BAGCTL not built" >&2; exit 1; }

cleanup() {
  [ -n "${DAEMON_PID:-}" ] && kill "$DAEMON_PID" 2>/dev/null || true
  rm -f "$PORT_FILE"
}
trap cleanup EXIT

"$BAGCD" --port 0 --port-file "$PORT_FILE" &
DAEMON_PID=$!

for _ in $(seq 100); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.1
done
[ -s "$PORT_FILE" ] || { echo "server_smoke: bagcd never wrote its port file" >&2; exit 1; }
PORT=$(cat "$PORT_FILE")

# The transcript assumes a fresh server (STATS counters from zero),
# which is exactly what we just started.
"$BAGCTL" --port "$PORT" --replay "$REPO_ROOT/docs/PROTOCOL.md"

# Clean wire-initiated shutdown: daemon must exit 0 on its own.
printf 'SHUTDOWN\n' | "$BAGCTL" --port "$PORT" --script - > /dev/null
if wait "$DAEMON_PID"; then
  DAEMON_PID=""
  echo "server_smoke: OK (port $PORT, transcript replayed, clean shutdown)"
else
  status=$?
  DAEMON_PID=""
  echo "server_smoke: bagcd exited with status $status" >&2
  exit 1
fi
