#!/usr/bin/env bash
# Server smoke test: start a real bagcd daemon, replay the annotated
# transcripts from docs/PROTOCOL.md through the bagctl client (all four
# blocks, including the INSERT/DELETE streaming-mutation transcript with
# its "reused" suffixes and all-or-nothing failure line), prove the
# replayer actually fails on divergence (a deliberately wrong transcript
# must exit nonzero with a line-numbered diff), round-trip a sealed-bag
# segment (bagctl --export-seg -> daemon restart -> LOADSEG, answers
# matching the text-loaded session), thrash two named collections
# through a 1 MiB memory budget (eviction + lazy segment reload must not
# change a byte of the answers), then stop the daemon over the wire
# (SHUTDOWN) and assert a clean exit. This is the out-of-process
# complement to server_protocol_test — it exercises the actual
# executables, argument parsing, port-file handshake, and process
# shutdown path.
#
# Usage: scripts/server_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD_DIR=${1:-build}
REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
BAGCD="$REPO_ROOT/$BUILD_DIR/bagcd"
BAGCTL="$REPO_ROOT/$BUILD_DIR/bagctl"
PORT_FILE=$(mktemp -u)
WORK_DIR=$(mktemp -d)

[ -x "$BAGCD" ] || { echo "server_smoke: $BAGCD not built" >&2; exit 1; }
[ -x "$BAGCTL" ] || { echo "server_smoke: $BAGCTL not built" >&2; exit 1; }

cleanup() {
  [ -n "${DAEMON_PID:-}" ] && kill "$DAEMON_PID" 2>/dev/null || true
  rm -f "$PORT_FILE"
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

start_daemon() {  # args: extra bagcd flags
  rm -f "$PORT_FILE"
  "$BAGCD" --port 0 --port-file "$PORT_FILE" "$@" &
  DAEMON_PID=$!
  for _ in $(seq 100); do
    [ -s "$PORT_FILE" ] && break
    sleep 0.1
  done
  [ -s "$PORT_FILE" ] || { echo "server_smoke: bagcd never wrote its port file" >&2; exit 1; }
  PORT=$(cat "$PORT_FILE")
}

stop_daemon() {  # wire-initiated shutdown; daemon must exit 0 on its own
  printf 'SHUTDOWN\n' | "$BAGCTL" --port "$PORT" --script - > /dev/null
  if wait "$DAEMON_PID"; then
    DAEMON_PID=""
  else
    status=$?
    DAEMON_PID=""
    echo "server_smoke: bagcd exited with status $status" >&2
    exit 1
  fi
}

start_daemon

# The transcript assumes a fresh server (STATS counters from zero),
# which is exactly what we just started.
"$BAGCTL" --port "$PORT" --replay "$REPO_ROOT/docs/PROTOCOL.md"

# The replayer must FAIL on divergence — a conformance check that cannot
# fail checks nothing. A wrong expectation exits nonzero and prints a
# line-numbered diff.
BAD_TRANSCRIPT="$WORK_DIR/bad_transcript.txt"
cat > "$BAD_TRANSCRIPT" <<'EOF'
S: BAGCD 1 READY
C: HELLO
S: OK HELLO proto 999 frames 1
EOF
if "$BAGCTL" --port "$PORT" --replay "$BAD_TRANSCRIPT" > "$WORK_DIR/bad_out.txt" 2>&1; then
  echo "server_smoke: replay of a wrong transcript unexpectedly passed" >&2
  exit 1
fi
grep -q "transcript line 3: transcript mismatch" "$WORK_DIR/bad_out.txt" || {
  echo "server_smoke: replay mismatch lacks the line-numbered diff:" >&2
  cat "$WORK_DIR/bad_out.txt" >&2
  exit 1
}

# Segment round trip: export a collection as an mmap-able segment, take
# reference answers from a text-loaded session, restart the daemon warm
# from the segment (--preload-seg), and check a LOADSEG session agrees.
COLLECTION="$WORK_DIR/collection.bag"
SEGMENT="$WORK_DIR/collection.seg"
cat > "$COLLECTION" <<'EOF'
bag item store
apple downtown : 2
banana uptown : 1
cherry uptown : 5
end
bag store region
downtown north : 2
uptown north : 6
end
EOF
"$BAGCTL" --export-seg "$SEGMENT" --collection "$COLLECTION" --names sales,stores

QUERIES='SEAL\nTWOBAG sales stores\nPAIRWISE\nGLOBAL\nWITNESS sales stores\nQUIT\n'
printf "LOAD sales item store\napple downtown : 2\nbanana uptown : 1\ncherry uptown : 5\nEND\nLOAD stores store region\ndowntown north : 2\nuptown north : 6\nEND\n$QUERIES" \
  | "$BAGCTL" --port "$PORT" --script - | grep -v '^OK LOAD' > "$WORK_DIR/text_answers.txt"
stop_daemon

start_daemon --preload-seg "$SEGMENT"
printf "LOADSEG $SEGMENT\n$QUERIES" \
  | "$BAGCTL" --port "$PORT" --script - | grep -v '^OK LOADSEG' > "$WORK_DIR/seg_answers.txt"
if ! diff -u "$WORK_DIR/text_answers.txt" "$WORK_DIR/seg_answers.txt"; then
  echo "server_smoke: LOADSEG answers diverge from the text-loaded session" >&2
  exit 1
fi
grep -q '^OK CONSISTENT' "$WORK_DIR/seg_answers.txt" || {
  echo "server_smoke: segment session produced no verdict" >&2
  exit 1
}
stop_daemon

# Multi-collection eviction leg: two named tenants, each sealing past the
# entire --mem-budget-mb 1 budget, so every ATTACH+query evicts the other
# tenant and lazily reloads from its segment — and the answers must not
# differ by one byte from an unlimited-budget daemon's.
make_big_collection() {  # args: out-path, salt (multiplicities differ per tenant)
  awk -v salt="$2" 'BEGIN {
    print "bag item store"
    for (i = 0; i < 12000; ++i)
      printf "item%d st%d : %d\n", i, i % 64, 1 + (i + salt) % 5
    print "end"
    print "bag store region"
    for (s = 0; s < 64; ++s) printf "st%d north : %d\n", s, 200 + salt
    print "end"
  }' > "$1"
}
make_big_collection "$WORK_DIR/tenant_a.bag" 0
make_big_collection "$WORK_DIR/tenant_b.bag" 1
"$BAGCTL" --export-seg "$WORK_DIR/tenant_a.seg" --collection "$WORK_DIR/tenant_a.bag" --names sales,stores
"$BAGCTL" --export-seg "$WORK_DIR/tenant_b.seg" --collection "$WORK_DIR/tenant_b.bag" --names sales,stores

TENANT_QUERIES='TWOBAG sales stores\nPAIRWISE\nKWISE 2\nQUIT\n'

# Reference answers from a daemon with no budget (nothing ever evicted).
start_daemon
for t in a b; do
  printf "LOADSEG $WORK_DIR/tenant_$t.seg\nSEAL\nQUIT\n" \
    | "$BAGCTL" --port "$PORT" --attach "tenant_$t" --script - > /dev/null
  printf "$TENANT_QUERIES" \
    | "$BAGCTL" --port "$PORT" --attach "tenant_$t" --script - > "$WORK_DIR/ref_$t.txt"
  grep -Eq '^OK (IN)?CONSISTENT' "$WORK_DIR/ref_$t.txt" || {
    echo "server_smoke: tenant_$t reference run produced no verdict" >&2
    exit 1
  }
done
stop_daemon

# The budgeted daemon: seal both tenants, then thrash queries across them.
start_daemon --mem-budget-mb 1
for t in a b; do
  printf "LOADSEG $WORK_DIR/tenant_$t.seg\nSEAL\nQUIT\n" \
    | "$BAGCTL" --port "$PORT" --attach "tenant_$t" --script - > /dev/null
done
for round in 1 2 3; do
  for t in a b; do
    printf "$TENANT_QUERIES" \
      | "$BAGCTL" --port "$PORT" --attach "tenant_$t" --script - > "$WORK_DIR/got_$t.txt"
    if ! diff -u "$WORK_DIR/ref_$t.txt" "$WORK_DIR/got_$t.txt"; then
      echo "server_smoke: tenant_$t round $round diverged after eviction/reload" >&2
      exit 1
    fi
  done
done
# The budget really was tight enough to thrash: the registry reloaded
# tenant_a from its segment at least once per round.
printf 'STATS tenant_a\nQUIT\n' | "$BAGCTL" --port "$PORT" --script - > "$WORK_DIR/stats_a.txt"
grep -Eq '^reloads [1-9]' "$WORK_DIR/stats_a.txt" || {
  echo "server_smoke: budget daemon never reloaded tenant_a (eviction leg inert):" >&2
  cat "$WORK_DIR/stats_a.txt" >&2
  exit 1
}

stop_daemon
echo "server_smoke: OK (transcripts incl. mutation replayed, replay diff verified, segment round trip, eviction thrash, clean shutdowns)"
