#!/usr/bin/env python3
"""Check that relative markdown links resolve to real files.

Scans the given markdown files (default: every *.md at the repo root
plus docs/*.md) for inline links/images `[text](target)`, and fails if
a relative target does not exist on disk, so documentation links cannot
rot silently. External schemes (http/https/mailto) are not fetched —
CI must not flake on the network; same-file `#anchor` targets are
checked against the file's own headings (GitHub slug rules,
approximately).

Usage: check_markdown_links.py [FILES...]
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def heading_slugs(path: Path) -> set:
    slugs = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence or not line.startswith("#"):
            continue
        title = line.lstrip("#").strip()
        slug = re.sub(r"[^\w\- ]", "", title.lower()).replace(" ", "-")
        slugs.add(slug)
    return slugs


def strip_code(text: str) -> str:
    # Drop fenced code blocks and inline code: protocol examples contain
    # bracketed text that is not a link.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`]*`", "", text)


def check_file(path: Path) -> list:
    errors = []
    for target in LINK_RE.findall(strip_code(path.read_text())):
        if target.startswith(SKIP_SCHEMES):
            continue
        if target.startswith("#"):
            if target[1:] not in heading_slugs(path):
                errors.append(f"{path}: broken anchor '{target}'")
            continue
        file_part = target.split("#", 1)[0]
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            errors.append(f"{path}: broken link '{target}'")
    return errors


def main(argv) -> int:
    if len(argv) > 1:
        files = [Path(a) for a in argv[1:]]
    else:
        root = Path(__file__).resolve().parent.parent
        files = sorted(root.glob("*.md")) + sorted((root / "docs").glob("*.md"))
    errors = []
    for f in files:
        if not f.exists():
            errors.append(f"{f}: file not found")
            continue
        errors.extend(check_file(f))
    for e in errors:
        print(e)
    if errors:
        return 1
    print(f"checked {len(files)} markdown file(s): all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
