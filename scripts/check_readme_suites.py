#!/usr/bin/env python3
"""Fail when README's generated suite lists drift from the build.

The README contains two generated blocks:

    <!-- test-suites:begin ... -->   ...   <!-- test-suites:end -->
    <!-- bench-suites:begin ... -->  ...   <!-- bench-suites:end -->

This script compares them against the ground truth — `ctest -N` in the
build directory and `bench_main --list-suites` — and exits nonzero on
any mismatch, so a PR that adds a test or bench suite without updating
the README fails CI. `--fix` rewrites the blocks in place instead.

Usage: check_readme_suites.py [--build BUILD_DIR] [--readme README] [--fix]
"""

import argparse
import re
import subprocess
import sys
import textwrap
from pathlib import Path

TEST_BEGIN = "<!-- test-suites:begin"
BENCH_BEGIN = "<!-- bench-suites:begin"
TEST_END = "<!-- test-suites:end -->"
BENCH_END = "<!-- bench-suites:end -->"


def ctest_suites(build_dir: Path) -> list[str]:
    out = subprocess.run(
        ["ctest", "-N"], cwd=build_dir, check=True, capture_output=True, text=True
    ).stdout
    names = re.findall(r"Test\s+#\d+:\s+(\S+)", out)
    if not names:
        sys.exit(f"error: `ctest -N` in {build_dir} listed no tests")
    return sorted(names)


def bench_suites(build_dir: Path) -> list[str]:
    bench_main = build_dir / "bench_main"
    if not bench_main.exists():
        sys.exit(f"error: {bench_main} not built (need BAGC_BUILD_BENCHMARKS=ON)")
    out = subprocess.run(
        [str(bench_main), "--list-suites"], check=True, capture_output=True, text=True
    ).stdout
    names = out.split()
    if not names:
        sys.exit("error: `bench_main --list-suites` printed nothing")
    return names  # binary order is the canonical order


def extract_block(readme: str, begin: str, end: str) -> tuple[str, int, int]:
    start = readme.find(begin)
    if start < 0:
        sys.exit(f"error: README is missing the '{begin}' marker")
    start = readme.index("\n", start) + 1
    stop = readme.find(end, start)
    if stop < 0:
        sys.exit(f"error: README is missing the '{end}' marker")
    return readme[start:stop], start, stop


def block_names(block: str) -> list[str]:
    return [t for t in block.split() if t != "```"]


def render_block(names: list[str]) -> str:
    wrapped = textwrap.fill(" ".join(names), width=70)
    return f"```\n{wrapped}\n```\n"


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--build", default="build", type=Path)
    parser.add_argument("--readme", default="README.md", type=Path)
    parser.add_argument("--fix", action="store_true")
    args = parser.parse_args()

    readme = args.readme.read_text()
    want = {
        "test": (TEST_BEGIN, TEST_END, sorted(ctest_suites(args.build))),
        "bench": (BENCH_BEGIN, BENCH_END, bench_suites(args.build)),
    }

    failed = False
    for kind, (begin, end, expected) in want.items():
        block, start, stop = extract_block(readme, begin, end)
        got = block_names(block)
        compare_got = sorted(got) if kind == "test" else got
        compare_want = sorted(expected) if kind == "test" else expected
        if compare_got != compare_want:
            missing = set(compare_want) - set(compare_got)
            stale = set(compare_got) - set(compare_want)
            print(f"README {kind}-suite list is out of date:")
            if missing:
                print(f"  missing from README: {' '.join(sorted(missing))}")
            if stale:
                print(f"  stale in README:     {' '.join(sorted(stale))}")
            if not missing and not stale:
                print("  (same names, different order)")
            if args.fix:
                readme = readme[:start] + render_block(expected) + readme[stop:]
                print(f"  --fix: rewrote the {kind}-suites block")
            else:
                failed = True

    if args.fix:
        args.readme.write_text(readme)
        return 0
    if failed:
        print("run scripts/check_readme_suites.py --fix to regenerate")
        return 1
    print("README suite lists match the build")
    return 0


if __name__ == "__main__":
    sys.exit(main())
