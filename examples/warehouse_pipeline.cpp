// Data-integration scenario over an acyclic schema: three departments hold
// overlapping *bag* views of the same logistics data — real systems keep
// duplicates, so these are multisets, not sets (the Chaudhuri–Vardi gap
// the paper starts from).
//
//   orders(Customer, Product)        - sales
//   stock(Product, Warehouse)        - fulfilment
//   sites(Warehouse, Region)         - facilities
//
// The schema hypergraph is the path Customer-Product-Warehouse-Region:
// acyclic, so (Theorem 2) pairwise consistency of the three views already
// guarantees a single universal bag explaining all of them, and (Theorem 6)
// that universal bag is constructible in polynomial time with support at
// most the sum of the views' supports.
#include <cstdio>

#include "core/collection.h"
#include "core/global.h"
#include "core/pairwise.h"
#include "core/two_bag.h"
#include "hypergraph/acyclicity.h"
#include "tuple/attribute.h"

using namespace bagc;

int main() {
  AttributeCatalog catalog;
  AttrId customer = catalog.Intern("Customer");
  AttrId product = catalog.Intern("Product");
  AttrId warehouse = catalog.Intern("Warehouse");
  AttrId region = catalog.Intern("Region");

  // Multiplicities = how many order lines / pallets / contracts.
  Bag orders = *MakeBag(Schema{{customer, product}}, {
                            {{100, 1}, 3},   // customer 100 ordered product 1 x3
                            {{100, 2}, 1},
                            {{200, 1}, 2},
                            {{200, 2}, 4},
                        });
  Bag stock = *MakeBag(Schema{{product, warehouse}}, {
                           {{1, 10}, 2},  // product 1 served from warehouse 10
                           {{1, 11}, 3},
                           {{2, 10}, 5},
                       });
  Bag sites = *MakeBag(Schema{{warehouse, region}}, {
                           {{10, 7}, 7},  // warehouse 10 in region 7
                           {{11, 7}, 3},
                       });

  BagCollection views = *BagCollection::Make({orders, stock, sites});
  std::printf("schema hypergraph: %s\n", views.hypergraph().ToString().c_str());
  std::printf("acyclic? %s\n\n", IsAcyclic(views.hypergraph()) ? "yes" : "no");

  // Department-by-department reconciliation (Lemma 2 pairwise checks).
  std::pair<size_t, size_t> bad;
  if (!*ArePairwiseConsistent(views, &bad)) {
    std::printf("views %zu and %zu disagree on their shared attributes —\n"
                "no universal bag can exist. Fix the feeds first.\n",
                bad.first, bad.second);
    return 1;
  }
  std::printf("all pairwise reconciliations passed.\n");

  // Theorem 6: build the universal bag.
  auto universal = *SolveGlobalConsistencyAcyclic(views);
  if (!universal.has_value()) {
    std::printf("unexpected: pairwise consistent acyclic views must be "
                "globally consistent (Theorem 2)\n");
    return 1;
  }
  std::printf("universal bag over %s:\n%s\n",
              universal->schema().ToString(catalog).c_str(),
              universal->ToString(catalog).c_str());
  size_t bound = orders.SupportSize() + stock.SupportSize() + sites.SupportSize();
  std::printf("support %zu <= %zu (Theorem 6 bound)\n\n",
              universal->SupportSize(), bound);

  // What goes wrong with an inconsistent feed: bump one pallet count.
  Bag stock_bad = stock;
  (void)stock_bad.Set(Tuple{{1, 10}}, 3);  // was 2
  BagCollection broken = *BagCollection::Make({orders, stock_bad, sites});
  if (!*ArePairwiseConsistent(broken, &bad)) {
    std::printf("after the bad feed, views %zu and %zu disagree "
                "(product-level totals drifted) — detected in O(n log n).\n",
                bad.first, bad.second);
  }
  return 0;
}
