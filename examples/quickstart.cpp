// Quickstart: the bagc public API in one file.
//
//   1. Build two bags over overlapping schemas.
//   2. Decide their consistency (Lemma 2: compare shared marginals).
//   3. Construct a witness via max-flow (Corollary 1) and a *minimal*
//      witness (Corollary 4).
//   4. Assemble a collection over an acyclic schema and produce a global
//      witness (Theorem 6).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "bag/bag.h"
#include "core/collection.h"
#include "core/global.h"
#include "core/two_bag.h"
#include "tuple/attribute.h"

using namespace bagc;

int main() {
  AttributeCatalog catalog;
  AttrId a = catalog.Intern("A");
  AttrId b = catalog.Intern("B");
  AttrId c = catalog.Intern("C");

  // The paper's §3 example: R1(AB) and S1(BC), each with two tuples of
  // multiplicity 1.
  Bag r = *MakeBag(Schema{{a, b}}, {{{1, 2}, 1}, {{2, 2}, 1}});
  Bag s = *MakeBag(Schema{{b, c}}, {{{2, 1}, 1}, {{2, 2}, 1}});
  std::printf("R = %s\n", r.ToString(catalog).c_str());
  std::printf("S = %s\n", s.ToString(catalog).c_str());

  // Lemma 2: R and S are consistent iff R[B] == S[B].
  bool consistent = *AreConsistent(r, s);
  std::printf("consistent? %s\n", consistent ? "yes" : "no");

  // Corollary 1: build a witness T(ABC) with T[AB] = R and T[BC] = S.
  auto witness = *FindWitness(r, s);
  std::printf("witness T = %s\n", witness->ToString(catalog).c_str());

  // The bag join is NOT a witness (contrast with relations!).
  Bag join = *Bag::Join(r, s);
  std::printf("bag join R x S (support %zu) is witness? %s\n", join.SupportSize(),
              *IsWitness(join, r, s) ? "yes" : "no");

  // Corollary 4: a minimal witness — support at most |R'| + |S'|.
  auto minimal = *FindMinimalWitness(r, s);
  std::printf("minimal witness support = %zu (bound %zu)\n",
              minimal->SupportSize(), r.SupportSize() + s.SupportSize());

  // Theorem 6: global witness over an acyclic (path) schema A - B - C - D.
  AttrId d = catalog.Intern("D");
  Bag t = *MakeBag(Schema{{c, d}}, {{{1, 7}, 1}, {{2, 7}, 1}});
  BagCollection collection = *BagCollection::Make({r, s, t});
  auto global = *SolveGlobalConsistencyAcyclic(collection);
  if (global.has_value()) {
    std::printf("global witness over {A,B,C,D}:\n%s\n",
                global->ToString(catalog).c_str());
  } else {
    std::printf("collection is not globally consistent\n");
  }
  return 0;
}
