// bagc_cli: a command-line consistency checker over the text format of
// bag/bag_io.h — the "downstream user" face of the library.
//
//   bagc_cli check <file>      decide pairwise + global consistency
//   bagc_cli witness <file>    print a witness bag (or report none)
//   bagc_cli analyze <file>    full diagnostic report (structure,
//                              obstruction, local + global consistency)
//   bagc_cli schema <file>     print the schema hypergraph + acyclicity
//   bagc_cli demo              print a sample input document
//
// Exit code: 0 = globally consistent / ok, 1 = inconsistent, 2 = error.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bag/bag_io.h"
#include "core/collection.h"
#include "core/global.h"
#include "core/pairwise.h"
#include "core/report.h"
#include "hypergraph/acyclicity.h"

using namespace bagc;

namespace {

const char* kDemo =
    "# bagc collection document. Three bags over the path A - B - C - D.\n"
    "bag A B\n"
    "1 2 : 1\n"
    "2 2 : 1\n"
    "end\n"
    "bag B C\n"
    "2 1 : 1\n"
    "2 2 : 1\n"
    "end\n"
    "bag C D\n"
    "1 7 : 1\n"
    "2 7 : 1\n"
    "end\n";

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 2;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int RunCheck(const BagCollection& collection, const AttributeCatalog& catalog,
             bool print_witness) {
  std::printf("bags: %zu, schema hypergraph: %s\n", collection.size(),
              collection.hypergraph().ToString().c_str());
  bool acyclic = IsAcyclic(collection.hypergraph());
  std::printf("schema is %s\n", acyclic ? "acyclic" : "cyclic");

  std::pair<size_t, size_t> bad;
  auto pairwise = ArePairwiseConsistent(collection, &bad);
  if (!pairwise.ok()) return Fail(pairwise.status());
  if (!*pairwise) {
    std::printf("NOT pairwise consistent: bags %zu and %zu disagree on %s\n",
                bad.first + 1, bad.second + 1,
                Schema::Intersect(collection.bag(bad.first).schema(),
                                  collection.bag(bad.second).schema())
                    .ToString(catalog)
                    .c_str());
    return 1;
  }
  std::printf("pairwise consistent\n");

  Result<std::optional<Bag>> witness =
      acyclic ? SolveGlobalConsistencyAcyclic(collection)
              : SolveGlobalConsistencyExact(collection);
  if (!witness.ok()) return Fail(witness.status());
  if (!witness->has_value()) {
    std::printf("NOT globally consistent%s\n",
                acyclic ? "" : " (cyclic schema: pairwise did not suffice)");
    return 1;
  }
  std::printf("globally consistent (witness support %zu)\n",
              (*witness)->SupportSize());
  if (print_witness) {
    std::printf("%s", WriteBag(**witness, catalog).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "demo") {
    std::printf("%s", kDemo);
    return 0;
  }
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: %s check|witness|schema <file>\n       %s demo\n",
                 argv[0], argv[0]);
    return 2;
  }
  std::string command = argv[1];
  auto text = ReadFile(argv[2]);
  if (!text.ok()) return Fail(text.status());
  AttributeCatalog catalog;
  auto bags = ParseCollection(*text, &catalog);
  if (!bags.ok()) return Fail(bags.status());
  auto collection = BagCollection::Make(*bags);
  if (!collection.ok()) return Fail(collection.status());

  if (command == "schema") {
    std::printf("%s\n", collection->hypergraph().ToString().c_str());
    std::printf("acyclic: %s\n",
                IsAcyclic(collection->hypergraph()) ? "yes" : "no");
    return 0;
  }
  if (command == "check") return RunCheck(*collection, catalog, false);
  if (command == "witness") return RunCheck(*collection, catalog, true);
  if (command == "analyze") {
    auto report = AnalyzeCollection(*collection);
    if (!report.ok()) return Fail(report.status());
    std::printf("%s", report->ToString(catalog).c_str());
    return report->global_decided && report->globally_consistent ? 0 : 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 2;
}
