// Contextuality scenario (paper §1 related work: Abramsky's bridge between
// databases and quantum mechanics). Four observables A1..A4 are measured
// in overlapping pairs ("contexts") around a cycle — only adjacent
// observables are co-measurable. Each context reports a *bag* of joint
// outcomes (counts over repeated runs).
//
// The empirical tables below are the Tseitin/PR-box-style parity tables:
// every pair of contexts agrees on its shared observable (local
// consistency), yet no global bag over all four observables marginalizes
// to all of them — a Bell-type obstruction, here in pure multiset form.
// Theorem 2 says this is only possible because the context hypergraph C4
// is cyclic; MakeCounterexample manufactures such tables for ANY cyclic
// hypergraph.
#include <cstdio>

#include "core/collection.h"
#include "core/global.h"
#include "core/local_global.h"
#include "core/pairwise.h"
#include "core/tseitin.h"
#include "hypergraph/families.h"

using namespace bagc;

int main() {
  Hypergraph contexts = *MakeCycle(4);
  std::printf("measurement contexts: %s\n", contexts.ToString().c_str());
  std::printf("has local-to-global consistency property for bags? %s\n\n",
              HasLocalToGlobalConsistencyForBags(contexts) ? "yes" : "no");

  // The parity tables: contexts {Ai, Ai+1} see outcomes with even sum,
  // the closing context {A4, A1} sees odd sums.
  std::vector<Bag> tables = *MakeTseitinCollection(contexts);
  BagCollection empirical = *BagCollection::Make(tables);
  for (size_t i = 0; i < empirical.size(); ++i) {
    std::printf("context %zu: %s\n", i + 1, empirical.bag(i).ToString().c_str());
  }

  std::printf("\nlocal (pairwise) consistency: %s\n",
              *ArePairwiseConsistent(empirical) ? "holds" : "fails");
  auto witness = *SolveGlobalConsistencyExact(empirical);
  std::printf("global hidden-variable bag:   %s\n",
              witness.has_value() ? "exists" : "does not exist");
  std::printf("=> the empirical model is contextual: every pair of contexts\n"
              "   agrees, yet no single joint distribution explains all four.\n\n");

  // The same phenomenon manufactured for an arbitrary cyclic hypergraph —
  // a 3-uniform "triforce" of contexts.
  // Three 3-observable contexts pairwise overlapping in single observables
  // — the triangle 0-1-2 of their overlaps is covered by no context, so
  // the hypergraph is cyclic (non-conformal).
  Hypergraph triforce = *Hypergraph::FromEdges(
      {Schema{{0, 1, 3}}, Schema{{1, 2, 4}}, Schema{{0, 2, 5}}});
  std::printf("second scenario: %s (acyclic? %s)\n", triforce.ToString().c_str(),
              HasLocalToGlobalConsistencyForBags(triforce) ? "yes" : "no");
  BagCollection manufactured = *MakeCounterexample(triforce);
  std::printf("manufactured tables: pairwise %s, global witness %s\n",
              *ArePairwiseConsistent(manufactured) ? "consistent" : "inconsistent",
              SolveGlobalConsistencyExact(manufactured)->has_value()
                  ? "exists"
                  : "does not exist");
  return 0;
}
