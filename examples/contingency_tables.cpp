// Statistical-disclosure scenario: three-dimensional contingency tables
// (Irving–Jerrum). A statistics agency publishes the three 2-way margins
// of a private 3-way table (age band x region x income band). The
// *consistency* question — does ANY table realize the published margins? —
// is exactly GCPB(C3), the NP-complete core of Theorem 4.
//
// This example:
//   1. builds a hidden table and publishes its margins,
//   2. re-derives a consistent table with the exact solver,
//   3. shows that a tampered margin set is (and is detected as) unrealizable,
//   4. contrasts the pairwise consistency of the bags (fast, necessary)
//      with global consistency (the hard part on the cyclic triangle).
#include <cstdio>

#include "core/global.h"
#include "core/pairwise.h"
#include "reductions/threedct.h"
#include "util/random.h"

using namespace bagc;

namespace {

void Report(const char* label, const ThreeDctInstance& inst) {
  BagCollection bags = *ToTriangleBags(inst);
  bool pairwise = *ArePairwiseConsistent(bags);
  SolveStats stats;
  GlobalSolveOptions options;
  auto witness = SolveGlobalConsistencyExact(bags, options);
  std::printf("%-22s pairwise=%-3s globally=%-3s", label, pairwise ? "yes" : "no",
              witness.ok() && witness->has_value() ? "yes" : "no");
  if (witness.ok() && witness->has_value()) {
    std::printf("  (witness support %zu)", (*witness)->SupportSize());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Rng rng(2021);
  size_t n = 3;  // 3 age bands x 3 regions x 3 income bands

  // A private table the agency never publishes.
  ThreeDctInstance published = MakeFeasibleInstance(n, 9, &rng);
  std::printf("published margins (n = %zu):\n", n);
  std::printf("  row sums R(i,k):    ");
  for (uint64_t v : published.row_sums) std::printf("%3llu", (unsigned long long)v);
  std::printf("\n  column sums C(j,k): ");
  for (uint64_t v : published.column_sums) {
    std::printf("%3llu", (unsigned long long)v);
  }
  std::printf("\n  front sums F(i,j):  ");
  for (uint64_t v : published.front_sums) std::printf("%3llu", (unsigned long long)v);
  std::printf("\n\n");

  Report("honest margins:", published);

  // Re-derive one realizing table (what an attacker or auditor would do).
  BagCollection bags = *ToTriangleBags(published);
  auto witness = *SolveGlobalConsistencyExact(bags);
  if (witness.has_value()) {
    std::vector<uint64_t> table(n * n * n, 0);
    for (const auto& [t, mult] : witness->entries()) {
      size_t i = static_cast<size_t>(t.at(0));
      size_t j = static_cast<size_t>(t.at(1));
      size_t k = static_cast<size_t>(t.at(2));
      table[(i * n + j) * n + k] = mult;
    }
    std::printf("reconstructed a realizing table; verifies: %s\n\n",
                VerifyTable(published, table) ? "yes" : "no");
  }

  // A tampered margin set (one cell bumped): detectably unrealizable.
  ThreeDctInstance tampered = PerturbInstance(published, 1, &rng);
  Report("tampered margins:", tampered);

  std::printf(
      "\nTheorem 4 in action: deciding the honest case above took an\n"
      "exponential-worst-case search (the triangle schema is cyclic);\n"
      "had the schema been acyclic, pairwise consistency alone would have\n"
      "settled it in polynomial time.\n");
  return 0;
}
