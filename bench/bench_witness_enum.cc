// E2 (§3 example): the bags R_{n-1}(A,B), S_{n-1}(B,C) have exactly
// 2^(n-1) witnesses, pairwise incomparable, each with support strictly
// inside the join support. Series: n = 2..14 (enumeration is itself
// exponential — that is the point of the example).
// Expected shape: count doubles with n; the "witnesses" counter equals
// 2^(n-1) on every row.
#include <benchmark/benchmark.h>

#include "bag/bag.h"
#include "solver/integer_feasibility.h"
#include "solver/lp.h"

namespace bagc {
namespace {

std::pair<Bag, Bag> PaperFamily(size_t n) {
  Bag r(Schema{{0, 1}});
  Bag s(Schema{{1, 2}});
  for (Value v = 2; v <= static_cast<Value>(n); ++v) {
    (void)r.Set(Tuple{{1, v}}, 1);
    (void)r.Set(Tuple{{v, v}}, 1);
    (void)s.Set(Tuple{{v, 1}}, 1);
    (void)s.Set(Tuple{{v, v}}, 1);
  }
  return {std::move(r), std::move(s)};
}

void BM_CountWitnesses(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto [r, s] = PaperFamily(n);
  ConsistencyLp lp = *BuildConsistencyLp({r, s});
  uint64_t count = 0;
  for (auto _ : state) {
    count = *CountIntegerSolutions(lp);
    benchmark::DoNotOptimize(count);
  }
  state.counters["witnesses"] = static_cast<double>(count);
  state.counters["expected_2^(n-1)"] =
      static_cast<double>(uint64_t{1} << (n - 1));
  state.counters["join_support"] = static_cast<double>(lp.variables.size());
}
BENCHMARK(BM_CountWitnesses)->DenseRange(2, 14, 2);

void BM_FirstWitnessOnly(benchmark::State& state) {
  // Finding ONE witness stays cheap even where enumeration explodes.
  size_t n = static_cast<size_t>(state.range(0));
  auto [r, s] = PaperFamily(n);
  ConsistencyLp lp = *BuildConsistencyLp({r, s});
  for (auto _ : state) {
    auto solution = *SolveIntegerFeasibility(lp);
    benchmark::DoNotOptimize(solution);
  }
}
BENCHMARK(BM_FirstWitnessOnly)->DenseRange(2, 14, 2);

}  // namespace
}  // namespace bagc
