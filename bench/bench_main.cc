// Machine-readable micro-benchmark pass. Two suites:
//
//   bag_refactor (default): ops/sec for the three hot paths of the
//   reproduction — two-bag solve (Lemma 2 / Corollary 1), acyclic fold
//   (Theorem 6), and bag join — at three sizes each.
//
//   engine_batch: batch-consistency throughput. 100 two-bag queries
//   against ONE sealed collection, answered by a ConsistencyEngine
//   (cached marginals) versus the single-shot path that rebuilds the
//   marginals per query; plus the seal+sweep pairwise pass at 1 and N
//   worker threads. Engine entries carry the single-shot (resp.
//   single-threaded) ops/sec in the baseline field, so the speedup ratio
//   is embedded in the artifact.
//
//   interned_rows: the dictionary-interning speedup on string-heavy
//   workloads. Each benchmark runs the same logical computation twice:
//   over fixed-width interned u32 rows (ValueDictionary + BagCollection)
//   and over a string-keyed oracle pipeline (std::map over external
//   token rows — what every comparison would cost without interning,
//   i.e. the pre-interning baseline for string data). Interned entries
//   carry the oracle's ops/sec in the baseline field, so the speedup is
//   embedded in the artifact. Suites: two-bag solve, pairwise sweep,
//   engine batch.
//
//   columnar_probe: the SoA speedup on marginal-build/probe-heavy paths.
//   Three pairs, row path (PR 3 baseline, in the baseline field) vs
//   columnar path: a single marginal build (the engine cache-fill
//   kernel), the engine seal + pairwise sweep (MarginalPath::kRows vs
//   kColumnar), and the hash-join matching phase (per-row
//   TupleIndex::Find vs batch ColumnIndex::ProbeAll).
//
//   server_session: the bagcd dictionary-aware protocol win. One
//   in-process ServerSession runs the same serve cycle (RESET, load all
//   bags, SEAL, query batch) with string rows re-interned every cycle
//   (LOAD) versus DICT-once + streamed u32 rows (LOADU32); a second pair
//   measures steady-state TWOBAG throughput through the protocol vs bare
//   engine calls — in the text framing and, twobag_100q_session_binary,
//   as prebuilt TWOBAG frames through the binary framing. A final trio
//   measures cold ingest (RESET HARD + dictionaries + rows; no SEAL, so
//   the gap is purely the wire path) as text LOADU32 blocks, as binary
//   DICT/ROWS frames, and as one LOADSEG of an mmap-able segment file
//   (docs/SEGMENT.md).
//
//   delta_stream: streaming mutation vs re-sealing. On one 32-bag
//   collection, propagating a change to k of 32 bags into a published
//   generation three ways: INSERT/DELETE delta commits (incremental
//   marginal maintenance — only dirty slots adjust, only dirty pairs
//   re-compare), DROP + re-LOADU32 + plain SEAL (the SealReuse path:
//   untouched bags adopted, touched bags rebuilt), and DROP +
//   re-LOADU32 + SEAL FULL (every store and marginal rebuilt). The
//   reseal legs carry the FULL leg's ops/sec as their baseline. Two WAL
//   legs measure what --wal-dir adds: wal_commit_fsync (one durable
//   4-bag commit record — encode, O_APPEND write, fdatasync) and
//   wal_replay_32gen (reading + checksum-validating a 32-generation
//   log, the startup recovery read path).
//
// Usage:
//   bench_main [--suite bag_refactor|engine_batch|interned_rows|columnar_probe|
//               server_session|delta_stream] [--out FILE] [--baseline FILE]
//               [--list-suites]
//
// With --baseline, each benchmark entry additionally carries the baseline's
// ops/sec for the same (name, size) pair plus the speedup ratio, so a
// before/after comparison lives in one artifact. The baseline file is a
// JSON file previously produced by this tool.
//
// Every suite's JSON records host_cpus, the compiler, and the compile
// flags (BAGC_COMPILE_FLAGS, injected by CMake) so parallel and
// vectorization-sensitive legs stay interpretable after the fact.
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/global.h"
#include "core/two_bag.h"
#include "engine/consistency_engine.h"
#include "generators/workloads.h"
#include "hypergraph/families.h"
#include "server/engine_snapshot.h"
#include "server/protocol.h"
#include "server/session.h"
#include "tuple/column_store.h"
#include "tuple/segment.h"
#include "tuple/tuple_index.h"
#include "tuple/value_dictionary.h"
#include "tuple/wal.h"
#include "solver/lp.h"
#include "util/random.h"
#include "util/simd.h"
#include "util/thread_pool.h"

// Injected by CMake so the artifact records how the binary was compiled.
#ifndef BAGC_COMPILE_FLAGS
#define BAGC_COMPILE_FLAGS "(unknown)"
#endif

namespace bagc {
namespace {

struct BenchResult {
  std::string name;
  size_t size;
  double ops_per_sec;
  size_t iterations;
  double baseline_ops_per_sec = 0;  // 0 = no baseline
};

// Set when a parallel leg (tN sweep) ran on a host with one CPU: its
// speedup ratio then measures scheduling overhead, not parallelism. The
// artifact records it (single_cpu_warning) and the run warns on stderr.
bool g_parallel_legs_on_single_cpu = false;

// Runs `op` repeatedly until it has consumed at least `min_seconds`,
// reporting ops/sec over the timed window. One untimed warmup call.
template <typename Op>
BenchResult Measure(const std::string& name, size_t size, Op&& op,
                    double min_seconds = 0.2) {
  using Clock = std::chrono::steady_clock;
  op();  // warmup
  size_t iterations = 0;
  auto start = Clock::now();
  double elapsed = 0;
  do {
    op();
    ++iterations;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  BenchResult r;
  r.name = name;
  r.size = size;
  r.iterations = iterations;
  r.ops_per_sec = static_cast<double>(iterations) / elapsed;
  return r;
}

std::pair<Bag, Bag> MakeTwoBagInput(size_t support, uint64_t seed) {
  Rng rng(seed);
  BagGenOptions options;
  options.support_size = support;
  options.domain_size = std::max<uint64_t>(2, support / 4);
  options.max_multiplicity = 1u << 16;
  Schema x{{0, 1}};
  Schema y{{1, 2}};
  return *MakeConsistentPair(x, y, options, &rng);
}

BagCollection MakeFoldInput(size_t support, uint64_t seed) {
  Rng rng(seed);
  BagGenOptions options;
  options.support_size = support;
  options.domain_size = std::max<uint64_t>(2, support / 4);
  options.max_multiplicity = 1u << 10;
  Hypergraph h = *MakePath(4);
  return *MakeGloballyConsistentCollection(h, options, &rng);
}

// Minimal scanner for the JSON this tool writes: pulls out the
// (name, size, ops_per_sec) triples in order of appearance.
std::vector<BenchResult> ParseBaseline(const std::string& text) {
  std::vector<BenchResult> out;
  size_t pos = 0;
  auto find_value = [&](const char* key, size_t from, size_t* value_at) {
    std::string needle = std::string("\"") + key + "\":";
    size_t k = text.find(needle, from);
    if (k == std::string::npos) return false;
    *value_at = k + needle.size();
    return true;
  };
  while (true) {
    size_t name_at;
    if (!find_value("name", pos, &name_at)) break;
    size_t q1 = text.find('"', name_at);
    size_t q2 = q1 == std::string::npos ? q1 : text.find('"', q1 + 1);
    if (q2 == std::string::npos) break;
    std::string name = text.substr(q1 + 1, q2 - q1 - 1);
    size_t size_at, ops_at;
    if (!find_value("size", q2, &size_at) ||
        !find_value("ops_per_sec", q2, &ops_at)) {
      pos = q2 + 1;
      continue;
    }
    BenchResult r;
    r.name = name;
    r.size = std::strtoull(text.c_str() + size_at, nullptr, 10);
    r.ops_per_sec = std::strtod(text.c_str() + ops_at, nullptr);
    r.iterations = 0;
    out.push_back(std::move(r));
    pos = ops_at;
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    unsigned char u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (u < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", u);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// Compiler identity, for the artifact header.
std::string CompilerVersion() {
#if defined(__VERSION__)
  return __VERSION__;
#else
  return "(unknown)";
#endif
}

// The batch workload: one sealed circulant collection (3-uniform, so
// neighboring bags share two attributes and their marginals are real
// work), plus a fixed list of 100 random two-bag queries against it.
BagCollection MakeBatchCollection(size_t support, uint64_t seed) {
  Rng rng(seed);
  BagGenOptions options;
  options.support_size = support;
  options.domain_size = std::max<uint64_t>(4, support / 16);
  options.max_multiplicity = 1u << 10;
  Hypergraph h = *MakeCirculant(16, 3);
  return *MakeGloballyConsistentCollection(h, options, &rng);
}

std::vector<std::pair<size_t, size_t>> MakeBatchQueries(size_t m, size_t n,
                                                        uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<size_t, size_t>> queries;
  queries.reserve(n);
  while (queries.size() < n) {
    size_t i = rng.Below(m);
    size_t j = rng.Below(m);
    if (i != j) queries.emplace_back(i, j);
  }
  return queries;
}

void RunEngineBatchSuite(std::vector<BenchResult>* results) {
  constexpr size_t kQueries = 100;
  size_t n_threads =
      std::max<size_t>(2, std::min<size_t>(8, std::thread::hardware_concurrency()));
  if (std::thread::hardware_concurrency() <= 1) {
    g_parallel_legs_on_single_cpu = true;
  }

  for (size_t support : {256, 1024, 4096}) {
    BagCollection c = MakeBatchCollection(support, 9000 + support);
    std::vector<std::pair<size_t, size_t>> queries =
        MakeBatchQueries(c.size(), kQueries, 77);

    // Per-query rebuild: every query recomputes both shared marginals.
    BenchResult single_shot =
        Measure("batch_100q_single_shot", support, [&] {
          size_t consistent = 0;
          for (auto [i, j] : queries) {
            if (*AreConsistent(c.bag(i), c.bag(j))) ++consistent;
          }
          if (consistent == 0) std::abort();
        });

    // Sealed engine: the same 100 queries against cached marginals (the
    // seal itself is amortized across the batch, so it sits outside the
    // timed op, matching the server workload the engine targets).
    ConsistencyEngine engine = *ConsistencyEngine::Make(c);
    BenchResult batch = Measure("batch_100q_engine", support, [&] {
      size_t consistent = 0;
      for (auto [i, j] : queries) {
        if (*engine.TwoBag(i, j)) ++consistent;
      }
      if (consistent == 0) std::abort();
    });
    batch.baseline_ops_per_sec = single_shot.ops_per_sec;
    results->push_back(single_shot);
    results->push_back(std::move(batch));

    // Seal + full pairwise sweep, single-threaded vs N workers (the sweep
    // memoizes, so each op builds a fresh engine — this measures the
    // parallel marginal precompute plus the sharded compare; MakeView
    // keeps the collection copy out of the timed op). Note the tN leg
    // also pays N OS-thread spawns/joins per op (the pool lives in the
    // engine), so its ratio understates the steady-state sweep speedup.
    BenchResult sweep1 = Measure("pairwise_seal_sweep_t1", support, [&] {
      ConsistencyEngine e = *ConsistencyEngine::MakeView(c);
      if (!(*e.PairwiseAll()).consistent) std::abort();
    });
    EngineOptions par;
    par.num_threads = n_threads;
    BenchResult sweepN =
        Measure("pairwise_seal_sweep_t" + std::to_string(n_threads), support, [&] {
          ConsistencyEngine e = *ConsistencyEngine::MakeView(c, par);
          if (!(*e.PairwiseAll()).consistent) std::abort();
        });
    sweepN.baseline_ops_per_sec = sweep1.ops_per_sec;
    results->push_back(std::move(sweep1));
    results->push_back(std::move(sweepN));
  }
}

// ---- interned_rows suite ---------------------------------------------------

using StrRow = std::vector<std::string>;
using StrTable = std::vector<std::pair<StrRow, uint64_t>>;  // one bag's rows
using StrBag = std::map<StrRow, uint64_t>;

// String-heavy external token: shared prefix + per-attribute salt + value,
// ~28 chars, so every oracle comparison pays real string work (exactly
// what tuple compares cost before values were interned).
std::string Token(AttrId a, Value v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "warehouse_attr%02u_item_%08lld", a,
                static_cast<long long>(v));
  return buf;
}

// One collection, three synchronized representations: the external string
// tables (oracle input), the interned bags sealed through one shared
// DictionarySet (engine input), and the dictionaries themselves.
struct StringWorkload {
  BagCollection interned;
  std::shared_ptr<DictionarySet> dicts;
  std::vector<StrTable> tables;  // per bag, external rows
};

StringWorkload MakeStringWorkload(const BagCollection& numeric) {
  StringWorkload w;
  w.dicts = std::make_shared<DictionarySet>();
  std::vector<Bag> interned;
  for (const Bag& b : numeric.bags()) {
    StrTable table;
    table.reserve(b.SupportSize());
    BagBuilder builder(b.schema());
    builder.Reserve(b.SupportSize());
    for (size_t e = 0; e < b.SupportSize(); ++e) {
      Tuple t = b.RowAt(e);
      uint64_t mult = b.MultiplicityAt(e);
      StrRow row(b.schema().arity());
      for (size_t i = 0; i < row.size(); ++i) row[i] = Token(b.schema().at(i), t.at(i));
      if (!builder.AddExternal(row, mult, w.dicts.get()).ok()) std::abort();
      table.emplace_back(std::move(row), mult);
    }
    Bag sealed = *builder.Build();
    interned.push_back(std::move(sealed));
    w.tables.push_back(std::move(table));
  }
  w.interned = *BagCollection::Make(std::move(interned));
  return w;
}

// The oracle's marginal: group external rows by their projection slots.
StrBag OracleMarginal(const StrTable& table, const std::vector<size_t>& slots) {
  StrBag out;
  StrRow projected(slots.size());
  for (const auto& [row, mult] : table) {
    for (size_t i = 0; i < slots.size(); ++i) projected[i] = row[slots[i]];
    out[projected] += mult;
  }
  return out;
}

std::vector<size_t> SharedSlots(const Schema& from, const Schema& shared) {
  Projector proj = *Projector::Make(from, shared);
  std::vector<size_t> slots(proj.arity());
  for (size_t i = 0; i < proj.arity(); ++i) slots[i] = proj.SourceIndex(i);
  return slots;
}

void RunInternedRowsSuite(std::vector<BenchResult>* results) {
  // Two-bag solve (Lemma 2(2)): decide consistency of a consistent pair.
  // Interned: marginal + compare over u32 rows. Oracle: marginal + compare
  // over string-keyed maps.
  for (size_t support : {256, 1024}) {
    Rng rng(3000 + support);
    BagGenOptions options;
    options.support_size = support;
    options.domain_size = std::max<uint64_t>(4, support / 4);
    options.max_multiplicity = 1u << 10;
    auto [r, s] = *MakeConsistentPair(Schema{{0, 1}}, Schema{{1, 2}}, options, &rng);
    BagCollection pair_c = *BagCollection::Make({r, s});
    StringWorkload w = MakeStringWorkload(pair_c);
    Schema shared = Schema::Intersect(r.schema(), s.schema());
    std::vector<size_t> slots_r = SharedSlots(r.schema(), shared);
    std::vector<size_t> slots_s = SharedSlots(s.schema(), shared);

    BenchResult oracle = Measure("two_bag_string_oracle", support, [&] {
      if (OracleMarginal(w.tables[0], slots_r) != OracleMarginal(w.tables[1], slots_s)) {
        std::abort();
      }
    });
    BenchResult interned = Measure("two_bag_interned", support, [&] {
      if (!*AreConsistent(w.interned.bag(0), w.interned.bag(1))) std::abort();
    });
    interned.baseline_ops_per_sec = oracle.ops_per_sec;
    results->push_back(std::move(oracle));
    results->push_back(std::move(interned));
  }

  // Pairwise sweep over a circulant collection (every neighboring pair
  // shares two attributes). Interned: seal + sweep via the engine.
  // Oracle: all-pairs string marginal maps + compares.
  for (size_t support : {256, 1024}) {
    BagCollection c = MakeBatchCollection(support, 5000 + support);
    StringWorkload w = MakeStringWorkload(c);
    size_t m = c.size();

    BenchResult oracle = Measure("pairwise_sweep_string_oracle", support, [&] {
      for (size_t i = 0; i < m; ++i) {
        for (size_t j = i + 1; j < m; ++j) {
          Schema shared =
              Schema::Intersect(c.bag(i).schema(), c.bag(j).schema());
          if (OracleMarginal(w.tables[i], SharedSlots(c.bag(i).schema(), shared)) !=
              OracleMarginal(w.tables[j], SharedSlots(c.bag(j).schema(), shared))) {
            std::abort();
          }
        }
      }
    });
    BenchResult interned = Measure("pairwise_sweep_interned", support, [&] {
      ConsistencyEngine e = *ConsistencyEngine::MakeView(w.interned);
      if (!(*e.PairwiseAll()).consistent) std::abort();
    });
    interned.baseline_ops_per_sec = oracle.ops_per_sec;
    results->push_back(std::move(oracle));
    results->push_back(std::move(interned));
  }

  // Engine batch: 100 two-bag queries against one sealed collection; both
  // sides may cache their marginals (maps for the oracle, interned bags +
  // probes for the engine) — the measured gap is purely the row
  // representation on the compare path.
  for (size_t support : {256, 1024}) {
    constexpr size_t kQueries = 100;
    BagCollection c = MakeBatchCollection(support, 7000 + support);
    StringWorkload w = MakeStringWorkload(c);
    std::vector<std::pair<size_t, size_t>> queries =
        MakeBatchQueries(c.size(), kQueries, 177);

    // Oracle cache: per-pair marginal maps, built once outside the timed op.
    std::map<std::pair<size_t, size_t>, std::pair<StrBag, StrBag>> oracle_cache;
    for (auto [i, j] : queries) {
      if (oracle_cache.count({i, j})) continue;
      Schema shared = Schema::Intersect(c.bag(i).schema(), c.bag(j).schema());
      oracle_cache[{i, j}] = {
          OracleMarginal(w.tables[i], SharedSlots(c.bag(i).schema(), shared)),
          OracleMarginal(w.tables[j], SharedSlots(c.bag(j).schema(), shared))};
    }
    BenchResult oracle = Measure("engine_batch_string_oracle", support, [&] {
      size_t consistent = 0;
      for (auto [i, j] : queries) {
        const auto& [mi, mj] = oracle_cache[{i, j}];
        if (mi == mj) ++consistent;
      }
      if (consistent == 0) std::abort();
    });

    ConsistencyEngine engine = *ConsistencyEngine::Make(w.interned);
    BenchResult interned = Measure("engine_batch_interned", support, [&] {
      size_t consistent = 0;
      for (auto [i, j] : queries) {
        if (*engine.TwoBag(i, j)) ++consistent;
      }
      if (consistent == 0) std::abort();
    });
    interned.baseline_ops_per_sec = oracle.ops_per_sec;
    results->push_back(std::move(oracle));
    results->push_back(std::move(interned));
  }
}

// ---- server_session suite --------------------------------------------------

// The bagcd session-protocol cost model: the same serve cycle — RESET,
// load every bag, SEAL, answer a query batch — driven through an
// in-process ServerSession twice. The strings leg streams external
// tokens (LOAD): every value pays a string hash + dictionary lookup on
// every cycle, which is what a server without the dictionary-aware
// protocol would do. The u32 leg ships each attribute's DICT block once
// per session (untimed, like a real session's handshake) and then
// streams LOADU32 raw-id rows: integer parse + bounds check, no string
// ever touches the hot path. Same bags, same seal, same queries — the
// measured gap is purely the wire value representation. A third pair
// measures steady-state query throughput through the protocol against
// bare engine calls (the protocol tax).
BagCollection MakeSessionCollection(size_t support, uint64_t seed) {
  Rng rng(seed);
  BagGenOptions options;
  options.support_size = support;
  options.domain_size = std::max<uint64_t>(8, support / 4);  // string-heavy
  options.max_multiplicity = 1u << 10;
  Hypergraph h = *MakePath(4);
  return *MakeGloballyConsistentCollection(h, options, &rng);
}

// The DICT blocks for every dictionary of the workload, in attribute
// order (the session handshake a dictionary-aware client sends once).
std::string SessionDictScript(const StringWorkload& w, const Schema& all_attrs,
                              const AttributeCatalog& catalog) {
  std::string script;
  for (AttrId a : all_attrs.attrs()) {
    const ValueDictionary* dict = w.dicts->find_dict(a);
    if (dict == nullptr) continue;
    script += "DICT " + catalog.Name(a) + " " + std::to_string(dict->size()) + "\n";
    for (const std::string& value : dict->externals()) script += value + "\n";
    script += "END\n";
  }
  return script;
}

// One full serve cycle, string rows: RESET + LOAD every bag + SEAL + queries.
std::string SessionCycleStrings(const StringWorkload& w,
                                const AttributeCatalog& catalog,
                                const std::string& query_script) {
  std::string script = "RESET\n";
  for (size_t b = 0; b < w.interned.size(); ++b) {
    const Bag& bag = w.interned.bag(b);
    script += "LOAD b" + std::to_string(b);
    for (AttrId a : bag.schema().attrs()) script += " " + catalog.Name(a);
    script += "\n";
    for (const auto& [row, mult] : w.tables[b]) {
      for (const std::string& token : row) script += token + " ";
      script += ": " + std::to_string(mult) + "\n";
    }
    script += "END\n";
  }
  script += "SEAL\n" + query_script;
  return script;
}

// The LOADU32 blocks for every bag of the workload (raw-id rows).
std::string SessionLoadU32Blocks(const StringWorkload& w,
                                 const AttributeCatalog& catalog) {
  std::string script;
  for (size_t b = 0; b < w.interned.size(); ++b) {
    const Bag& bag = w.interned.bag(b);
    script += "LOADU32 b" + std::to_string(b);
    for (AttrId a : bag.schema().attrs()) script += " " + catalog.Name(a);
    script += "\n";
    for (size_t e = 0; e < bag.SupportSize(); ++e) {
      for (size_t i = 0; i < bag.schema().arity(); ++i) {
        script += std::to_string(bag.IdAt(e, i)) + " ";
      }
      script += ": " + std::to_string(bag.MultiplicityAt(e)) + "\n";
    }
    script += "END\n";
  }
  return script;
}

// The same cycle with LOADU32 raw-id rows.
std::string SessionCycleU32(const StringWorkload& w,
                            const AttributeCatalog& catalog,
                            const std::string& query_script) {
  return "RESET\n" + SessionLoadU32Blocks(w, catalog) + "SEAL\n" + query_script;
}

// Feeds a script and aborts on any ERR response (a benchmark must not
// quietly measure a failing protocol exchange).
void DriveSession(ServerSession* session, const std::string& script) {
  std::vector<std::string> responses = session->HandleScript(script);
  for (const std::string& line : responses) {
    if (line.rfind("ERR", 0) == 0) {
      std::fprintf(stderr, "DriveSession: %s\n", line.c_str());
      std::abort();
    }
  }
}

// Feeds prebuilt binary frames and aborts on any Err frame or truncated
// response (the binary-framing counterpart of DriveSession).
void DriveSessionBinary(ServerSession* session, const std::string& frames) {
  std::string out;
  if (session->HandleData(frames, &out) != ServerSession::Outcome::kContinue) {
    std::abort();
  }
  size_t pos = 0;
  while (pos + kWireFrameHeaderBytes <= out.size()) {
    const unsigned char* p = reinterpret_cast<const unsigned char*>(out.data() + pos);
    uint32_t len = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
                   (static_cast<uint32_t>(p[2]) << 16) |
                   (static_cast<uint32_t>(p[3]) << 24);
    if (p[4] == kFrameErr) std::abort();
    pos += kWireFrameHeaderBytes + len;
  }
  if (pos != out.size()) std::abort();
}

// Switches an in-process session to the binary framing (the one text
// exchange a real binary client performs before streaming frames).
void UpgradeSessionToBinary(ServerSession* session) {
  std::string out;
  if (session->HandleData("UPGRADE BINARY\n", &out) !=
          ServerSession::Outcome::kContinue ||
      !session->binary_mode()) {
    std::abort();
  }
}

// The binary-framing image of one cold ingest cycle: CMD RESET HARD,
// one DICT frame per dictionary, one ROWS frame per bag.
std::string BinaryIngestCycle(const StringWorkload& w,
                              const AttributeCatalog& catalog) {
  std::string frames;
  WireAppendFrame(&frames, kFrameCmd, "RESET HARD");
  for (AttrId a : w.interned.union_schema().attrs()) {
    const ValueDictionary* dict = w.dicts->find_dict(a);
    if (dict == nullptr) continue;
    std::string payload;
    WireAppendString(&payload, catalog.Name(a));
    WireAppendU32(&payload, static_cast<uint32_t>(dict->size()));
    for (const std::string& value : dict->externals()) {
      WireAppendString(&payload, value);
    }
    WireAppendFrame(&frames, kFrameDict, payload);
  }
  for (size_t b = 0; b < w.interned.size(); ++b) {
    const Bag& bag = w.interned.bag(b);
    std::string payload;
    WireAppendString(&payload, "b" + std::to_string(b));
    WireAppendU32(&payload, static_cast<uint32_t>(bag.schema().arity()));
    for (AttrId a : bag.schema().attrs()) {
      WireAppendString(&payload, catalog.Name(a));
    }
    WireAppendU64(&payload, bag.SupportSize());
    for (size_t e = 0; e < bag.SupportSize(); ++e) {
      for (size_t i = 0; i < bag.schema().arity(); ++i) {
        WireAppendU32(&payload, bag.IdAt(e, i));
      }
      WireAppendU64(&payload, bag.MultiplicityAt(e));
    }
    WireAppendFrame(&frames, kFrameRows, payload);
  }
  return frames;
}

void RunServerSessionSuite(std::vector<BenchResult>* results) {
  for (size_t support : {1024, 4096}) {
    BagCollection numeric = MakeSessionCollection(support, 11000 + support);
    StringWorkload w = MakeStringWorkload(numeric);
    AttributeCatalog catalog;
    for (AttrId a : w.interned.union_schema().attrs()) {
      catalog.Intern("attr" + std::to_string(a));
    }
    std::string queries = "PAIRWISE\n";
    for (size_t i = 0; i < w.interned.size(); ++i) {
      for (size_t j = i + 1; j < w.interned.size(); ++j) {
        queries += "TWOBAG " + std::to_string(i) + " " + std::to_string(j) + "\n";
      }
    }
    std::string dict_script = SessionDictScript(w, w.interned.union_schema(), catalog);
    std::string cycle_strings = SessionCycleStrings(w, catalog, queries);
    std::string cycle_u32 = SessionCycleU32(w, catalog, queries);

    // Strings every cycle: each session keeps its live dictionaries
    // (RESET, not RESET HARD), so the oracle leg pays re-interning —
    // hash + lookup per token — not dictionary construction.
    CollectionRegistry strings_registry;
    ServerSession strings_session(&strings_registry, nullptr);
    DriveSession(&strings_session, dict_script);
    BenchResult strings = Measure("session_cycle_strings", support, [&] {
      DriveSession(&strings_session, cycle_strings);
    });

    // Dictionary once, u32 rows every cycle.
    CollectionRegistry u32_registry;
    ServerSession u32_session(&u32_registry, nullptr);
    DriveSession(&u32_session, dict_script);
    BenchResult u32 = Measure("session_cycle_u32", support, [&] {
      DriveSession(&u32_session, cycle_u32);
    });
    u32.baseline_ops_per_sec = strings.ops_per_sec;
    results->push_back(std::move(strings));
    results->push_back(std::move(u32));
  }

  // Steady-state query throughput: 100 TWOBAGs through the protocol per
  // op against the same 100 answered by bare engine calls — the whole
  // session/framing overhead, measured on a sealed snapshot.
  for (size_t support : {1024}) {
    constexpr size_t kQueries = 100;
    BagCollection c = MakeBatchCollection(support, 13000 + support);
    StringWorkload w = MakeStringWorkload(c);
    AttributeCatalog catalog;
    for (AttrId a : w.interned.union_schema().attrs()) {
      catalog.Intern("attr" + std::to_string(a));
    }
    std::vector<std::pair<size_t, size_t>> queries =
        MakeBatchQueries(c.size(), kQueries, 277);

    ConsistencyEngine engine = *ConsistencyEngine::Make(w.interned);
    BenchResult direct = Measure("twobag_100q_engine_direct", support, [&] {
      size_t consistent = 0;
      for (auto [i, j] : queries) {
        if (*engine.TwoBag(i, j)) ++consistent;
      }
      if (consistent == 0) std::abort();
    });

    CollectionRegistry registry;
    ServerSession session(&registry, nullptr);
    DriveSession(&session, SessionDictScript(w, w.interned.union_schema(), catalog));
    DriveSession(&session, SessionCycleU32(w, catalog, ""));
    std::string query_script;
    for (auto [i, j] : queries) {
      query_script +=
          "TWOBAG " + std::to_string(i) + " " + std::to_string(j) + "\n";
    }
    BenchResult wire = Measure("twobag_100q_session", support, [&] {
      DriveSession(&session, query_script);
    });
    wire.baseline_ops_per_sec = direct.ops_per_sec;

    // The same 100 queries as one prebuilt batch of TWOBAG frames: no
    // decimal parsing, no response formatting — the binary framing's
    // steady-state protocol tax against the same bare-engine baseline.
    CollectionRegistry bin_registry;
    ServerSession bin_session(&bin_registry, nullptr);
    DriveSession(&bin_session,
                 SessionDictScript(w, w.interned.union_schema(), catalog));
    DriveSession(&bin_session, SessionCycleU32(w, catalog, ""));
    UpgradeSessionToBinary(&bin_session);
    std::string frame_batch;
    for (auto [i, j] : queries) {
      std::string payload;
      WireAppendU32(&payload, static_cast<uint32_t>(i));
      WireAppendU32(&payload, static_cast<uint32_t>(j));
      WireAppendFrame(&frame_batch, kFrameTwoBag, payload);
    }
    BenchResult binary = Measure("twobag_100q_session_binary", support, [&] {
      DriveSessionBinary(&bin_session, frame_batch);
    });
    binary.baseline_ops_per_sec = direct.ops_per_sec;

    results->push_back(std::move(direct));
    results->push_back(std::move(wire));
    results->push_back(std::move(binary));
  }

  // Cold ingest: RESET HARD (dictionaries wiped) + ship dictionaries +
  // ship every row, per op — the bytes -> loaded-session-bags pipeline
  // with the SEAL (engine build, identical across wire forms) left out
  // so the measured gap is purely the ingest path. Three wire forms:
  // decimal LOADU32 text blocks, binary DICT/ROWS frames, and one
  // LOADSEG of a pre-written mmap-able segment (the segment ships its
  // own dictionaries, which is why every cycle must RESET HARD to be
  // comparable).
  for (size_t support : {4096}) {
    BagCollection numeric = MakeSessionCollection(support, 17000 + support);
    StringWorkload w = MakeStringWorkload(numeric);
    AttributeCatalog catalog;
    for (AttrId a : w.interned.union_schema().attrs()) {
      catalog.Intern("attr" + std::to_string(a));
    }
    std::string dict_script =
        SessionDictScript(w, w.interned.union_schema(), catalog);

    std::string text_cycle =
        "RESET HARD\n" + dict_script + SessionLoadU32Blocks(w, catalog);
    CollectionRegistry text_registry;
    ServerSession text_session(&text_registry, nullptr);
    BenchResult text = Measure("ingest_loadu32_text", support, [&] {
      DriveSession(&text_session, text_cycle);
    });

    std::string bin_cycle = BinaryIngestCycle(w, catalog);
    CollectionRegistry bin_registry;
    ServerSession bin_session(&bin_registry, nullptr);
    UpgradeSessionToBinary(&bin_session);
    BenchResult rows = Measure("ingest_binary_rows", support, [&] {
      DriveSessionBinary(&bin_session, bin_cycle);
    });
    rows.baseline_ops_per_sec = text.ops_per_sec;

    std::vector<std::string> names;
    for (size_t b = 0; b < w.interned.size(); ++b) {
      names.push_back("b" + std::to_string(b));
    }
    std::string seg_path =
        "/tmp/bagc_bench_ingest_" + std::to_string(::getpid()) + ".seg";
    if (!WriteSegmentFile(seg_path, names, w.interned.bags(), catalog,
                          *w.dicts)
             .ok()) {
      std::abort();
    }
    std::string seg_cycle = "RESET HARD\nLOADSEG " + seg_path + "\n";
    CollectionRegistry seg_registry;
    ServerSession seg_session(&seg_registry, nullptr);
    BenchResult seg = Measure("ingest_loadseg", support, [&] {
      DriveSession(&seg_session, seg_cycle);
    });
    seg.baseline_ops_per_sec = text.ops_per_sec;
    std::remove(seg_path.c_str());

    results->push_back(std::move(text));
    results->push_back(std::move(rows));
    results->push_back(std::move(seg));
  }

  // Incremental re-seal: a 32-bag collection where each cycle touches
  // exactly one bag (DROP + re-LOADU32) and re-seals. The FULL leg
  // rebuilds every column store and refills every pairwise marginal; the
  // incremental leg reuses the 31 untouched bags' slots from the
  // previous generation and refills only the touched bag's row — the
  // O(k·m) vs O(m²) claim, measured end-to-end through the protocol.
  {
    constexpr size_t kBags = 32;
    constexpr size_t kSupport = 256;
    Rng rng(23001);
    BagGenOptions options;
    options.support_size = kSupport;
    options.domain_size = 64;
    options.max_multiplicity = 1u << 10;
    BagCollection numeric =
        *MakeGloballyConsistentCollection(*MakePath(kBags), options, &rng);
    StringWorkload w = MakeStringWorkload(numeric);
    AttributeCatalog catalog;
    for (AttrId a : w.interned.union_schema().attrs()) {
      catalog.Intern("attr" + std::to_string(a));
    }
    // The re-LOAD block for bag 0 alone (same rows every cycle: the
    // measured work is the re-seal, not data drift).
    std::string reload_b0 = "DROP b0\nLOADU32 b0";
    const Bag& b0 = w.interned.bag(0);
    for (AttrId a : b0.schema().attrs()) reload_b0 += " " + catalog.Name(a);
    reload_b0 += "\n";
    for (size_t e = 0; e < b0.SupportSize(); ++e) {
      for (size_t i = 0; i < b0.schema().arity(); ++i) {
        reload_b0 += std::to_string(b0.IdAt(e, i)) + " ";
      }
      reload_b0 += ": " + std::to_string(b0.MultiplicityAt(e)) + "\n";
    }
    reload_b0 += "END\n";

    auto prime = [&](ServerSession* session) {
      DriveSession(session,
                   SessionDictScript(w, w.interned.union_schema(), catalog));
      DriveSession(session, SessionLoadU32Blocks(w, catalog) + "SEAL\n");
    };
    CollectionRegistry full_registry;
    ServerSession full_session(&full_registry, nullptr);
    prime(&full_session);
    BenchResult full = Measure("reseal_full_1of32", kBags * kSupport, [&] {
      DriveSession(&full_session, reload_b0 + "SEAL FULL\n");
    });

    CollectionRegistry incr_registry;
    ServerSession incr_session(&incr_registry, nullptr);
    prime(&incr_session);
    BenchResult incr =
        Measure("reseal_incremental_1of32", kBags * kSupport, [&] {
          DriveSession(&incr_session, reload_b0 + "SEAL\n");
        });
    incr.baseline_ops_per_sec = full.ops_per_sec;
    results->push_back(std::move(full));
    results->push_back(std::move(incr));
  }
}

// ---- delta_stream suite ----------------------------------------------------

void RunDeltaStreamSuite(std::vector<BenchResult>* results) {
  // One 32-bag path collection; each leg propagates a change to k of the
  // 32 bags into a published generation. The delta legs alternate an
  // INSERT and a DELETE of the same row per touched bag across
  // iterations, so the collection returns to its base state every two
  // cycles and one iteration is exactly k delta commits; the reseal legs
  // DROP + re-stream the same k bags and seal.
  constexpr size_t kBags = 32;
  constexpr size_t kSupport = 256;
  Rng rng(29001);
  BagGenOptions options;
  options.support_size = kSupport;
  options.domain_size = 64;
  options.max_multiplicity = 1u << 10;
  // MakePath(n) yields n-1 edge bags.
  BagCollection numeric =
      *MakeGloballyConsistentCollection(*MakePath(kBags + 1), options, &rng);
  StringWorkload w = MakeStringWorkload(numeric);
  AttributeCatalog catalog;
  for (AttrId a : w.interned.union_schema().attrs()) {
    catalog.Intern("attr" + std::to_string(a));
  }
  auto prime = [&](ServerSession* session) {
    DriveSession(session,
                 SessionDictScript(w, w.interned.union_schema(), catalog));
    DriveSession(session, SessionLoadU32Blocks(w, catalog) + "SEAL\n");
  };
  // The re-stream block (DROP + LOADU32, same rows) and the delta blocks
  // (INSERT / DELETE of one id-0 row) for bag b.
  auto reload_block = [&](size_t b) {
    const Bag& bag = w.interned.bag(b);
    std::string out = "DROP b" + std::to_string(b) + "\nLOADU32 b" +
                      std::to_string(b);
    for (AttrId a : bag.schema().attrs()) out += " " + catalog.Name(a);
    out += "\n";
    for (size_t e = 0; e < bag.SupportSize(); ++e) {
      for (size_t i = 0; i < bag.schema().arity(); ++i) {
        out += std::to_string(bag.IdAt(e, i)) + " ";
      }
      out += ": " + std::to_string(bag.MultiplicityAt(e)) + "\n";
    }
    return out + "END\n";
  };
  auto delta_block = [&](size_t b, bool insert) {
    const Bag& bag = w.interned.bag(b);
    std::string out = insert ? "INSERT b" : "DELETE b";
    out += std::to_string(b);
    for (AttrId a : bag.schema().attrs()) out += " " + catalog.Name(a);
    out += "\n";
    for (size_t i = 0; i < bag.schema().arity(); ++i) out += "0 ";
    return out + ": 7\nEND\n";
  };

  for (size_t touched : {size_t{1}, size_t{4}, kBags}) {
    std::string suffix =
        "_" + std::to_string(touched) + "of" + std::to_string(kBags);
    std::string reload_all;
    std::string insert_all;
    std::string delete_all;
    for (size_t b = 0; b < touched; ++b) {
      reload_all += reload_block(b);
      insert_all += delta_block(b, /*insert=*/true);
      delete_all += delta_block(b, /*insert=*/false);
    }

    CollectionRegistry full_registry;
    ServerSession full_session(&full_registry, nullptr);
    prime(&full_session);
    BenchResult full = Measure("reseal_full" + suffix, kBags * kSupport, [&] {
      DriveSession(&full_session, reload_all + "SEAL FULL\n");
    });

    CollectionRegistry reuse_registry;
    ServerSession reuse_session(&reuse_registry, nullptr);
    prime(&reuse_session);
    BenchResult reuse = Measure("seal_reuse" + suffix, kBags * kSupport, [&] {
      DriveSession(&reuse_session, reload_all + "SEAL\n");
    });
    reuse.baseline_ops_per_sec = full.ops_per_sec;

    CollectionRegistry delta_registry;
    ServerSession delta_session(&delta_registry, nullptr);
    prime(&delta_session);
    bool inserting = true;
    BenchResult delta =
        Measure("delta_commit" + suffix, kBags * kSupport, [&] {
          DriveSession(&delta_session, inserting ? insert_all : delete_all);
          inserting = !inserting;
        });
    delta.baseline_ops_per_sec = full.ops_per_sec;

    results->push_back(std::move(full));
    results->push_back(std::move(reuse));
    results->push_back(std::move(delta));
  }

  // ---- WAL legs: what --wal-dir adds to the delta path ---------------------
  //
  // wal_commit_fsync: one durable 4-bag commit record per iteration —
  // EncodeWalRecord + O_APPEND write + fdatasync through WalWriter,
  // the incremental cost every acked COMMIT pays for crash safety
  // (dominated by the fdatasync, so ops/sec ~= the storage sync rate).
  // wal_replay_32gen: reading and checksum-validating a 32-generation
  // log (ReadWalFile), the startup recovery read path.
  auto make_record = [](uint64_t generation) {
    WalRecord record;
    record.generation = generation;
    record.base_fingerprint = 0xfeedfacecafef00dull;
    for (uint32_t b = 0; b < 4; ++b) {
      WalBagBlock block;
      block.bag_index = b;
      block.arity = 2;
      for (uint32_t r = 0; r < 4; ++r) {
        block.ids.push_back(r);
        block.ids.push_back(r + 1);
        block.deltas.push_back((r % 2) ? -3 : 7);
      }
      record.bags.push_back(std::move(block));
    }
    return record;
  };

  {
    char path[] = "/tmp/bagc_bench_wal_commit_XXXXXX";
    int fd = ::mkstemp(path);
    if (fd >= 0) ::close(fd);
    ::unlink(path);  // WalWriter::Open lays down its own header
    WalWriter writer = *WalWriter::Open(path);
    uint64_t generation = 0;
    BenchResult commit = Measure("wal_commit_fsync", 1, [&] {
      Status appended = writer.Append(make_record(++generation));
      if (!appended.ok()) std::abort();
    });
    results->push_back(std::move(commit));
    ::unlink(path);
  }

  {
    char path[] = "/tmp/bagc_bench_wal_replay_XXXXXX";
    int fd = ::mkstemp(path);
    if (fd >= 0) ::close(fd);
    ::unlink(path);
    constexpr size_t kGenerations = 32;
    {
      WalWriter writer = *WalWriter::Open(path);
      for (uint64_t g = 1; g <= kGenerations; ++g) {
        if (!writer.Append(make_record(g)).ok()) std::abort();
      }
    }
    BenchResult replay = Measure("wal_replay_32gen", kGenerations, [&] {
      Result<WalContents> log = ReadWalFile(path);
      if (!log.ok() || log->records.size() != kGenerations) std::abort();
    });
    results->push_back(std::move(replay));
    ::unlink(path);
  }
}

// ---- columnar_probe suite --------------------------------------------------

// Marginal-heavy workload: many duplicate shared-attribute pairs (small
// domain relative to support), the shape consistency checking actually
// probes — every marginal collapses rows into far fewer groups.
Bag MakeMarginalInput(size_t support, uint64_t seed) {
  Rng rng(seed);
  BagGenOptions options;
  options.support_size = support;
  options.domain_size = std::max<uint64_t>(4, support / 128);
  options.max_multiplicity = 1u << 10;
  return *MakeRandomBag(Schema{{0, 1, 2}}, options, &rng);
}

BagCollection MakeColumnarSweepCollection(size_t support, uint64_t seed) {
  Rng rng(seed);
  BagGenOptions options;
  options.support_size = support;
  options.domain_size = std::max<uint64_t>(4, support / 64);
  options.max_multiplicity = 1u << 10;
  Hypergraph h = *MakeCirculant(16, 3);
  return *MakeGloballyConsistentCollection(h, options, &rng);
}

void RunColumnarProbeSuite(std::vector<BenchResult>* results) {
  // Marginal build R(A,B,C) -> R[{A,B}]: the engine cache-fill kernel.
  // Rows: per-row Tuple projection + sort/merge (the PR 3 path).
  // Columnar: gather the two columns, batch-hash, group in place.
  for (size_t support : {256, 1024, 4096}) {
    Bag r = MakeMarginalInput(support, 11000 + support);
    Schema z{{0, 1}};
    BenchResult rows = Measure("marginal_build_rows", support, [&] {
      Bag m = *r.MarginalRows(z);
      if (m.SupportSize() == 0) std::abort();
    });
    BenchResult columnar = Measure("marginal_build_columnar", support, [&] {
      Bag m = *r.MarginalColumnar(z);
      if (m.SupportSize() == 0) std::abort();
    });
    columnar.baseline_ops_per_sec = rows.ops_per_sec;
    results->push_back(std::move(rows));
    results->push_back(std::move(columnar));
  }

  // Engine seal + full pairwise sweep, row-path vs columnar-path marginal
  // fills (everything else identical): the probe-heavy batch workload.
  for (size_t support : {256, 1024, 4096}) {
    BagCollection c = MakeColumnarSweepCollection(support, 12000 + support);
    EngineOptions rows_opt;
    rows_opt.marginal_path = MarginalPath::kRows;
    EngineOptions cols_opt;
    cols_opt.marginal_path = MarginalPath::kColumnar;
    BenchResult rows = Measure("pairwise_seal_sweep_rows", support, [&] {
      ConsistencyEngine e = *ConsistencyEngine::MakeView(c, rows_opt);
      if (!(*e.PairwiseAll()).consistent) std::abort();
    });
    BenchResult columnar = Measure("pairwise_seal_sweep_columnar", support, [&] {
      ConsistencyEngine e = *ConsistencyEngine::MakeView(c, cols_opt);
      if (!(*e.PairwiseAll()).consistent) std::abort();
    });
    columnar.baseline_ops_per_sec = rows.ops_per_sec;
    results->push_back(std::move(rows));
    results->push_back(std::move(columnar));
  }

  // Hash-join matching phase (the N(R, S) / bag-join probe kernel): index
  // S's shared columns, resolve every R row. Rows: TupleIndex with a
  // per-row Tuple projection per insert/Find. Columnar: ColumnIndex with
  // one gather + one batch ProbeAll.
  for (size_t support : {1024, 4096, 16384}) {
    auto [r, s] = MakeTwoBagInput(support, 13000 + support);
    Schema shared = Schema::Intersect(r.schema(), s.schema());
    Projector r_shared = *Projector::Make(r.schema(), shared);
    Projector s_shared = *Projector::Make(s.schema(), shared);
    // Marginals come back columnar-sealed now; the row leg measures the
    // PR 3 per-Tuple path, so materialize row-form twins for it (a
    // same-value Set de-seals without changing a single multiplicity).
    Bag r_rows = r;
    Bag s_rows = s;
    if (!r_rows.Set(r_rows.RowAt(0), r_rows.MultiplicityAt(0)).ok() ||
        !s_rows.Set(s_rows.RowAt(0), s_rows.MultiplicityAt(0)).ok()) {
      std::abort();
    }
    BenchResult rows = Measure("probe_batch_rows", support, [&] {
      TupleIndex index(s_rows.SupportSize());
      for (size_t j = 0; j < s_rows.SupportSize(); ++j) {
        index.Insert(s_rows.entries()[j].first.Project(s_shared),
                     static_cast<uint32_t>(j));
      }
      size_t hits = 0;
      for (const auto& [x, mult] : r_rows.entries()) {
        if (index.Find(x.Project(r_shared)) != nullptr) ++hits;
      }
      if (hits == 0) std::abort();
    });
    BenchResult columnar = Measure("probe_batch_columnar", support, [&] {
      // The exact kernel Bag::Join / ConsistencyNetwork::Assign run:
      // zero-copy shared-column views over the columnar-sealed bags.
      ColumnStore r_backing, s_backing;
      ColumnJoinMatch match(r.ProjectedView(r_shared, &r_backing),
                            s.ProjectedView(s_shared, &s_backing));
      size_t hits = 0;
      for (size_t i = 0; i < r.SupportSize(); ++i) {
        hits += (match.MatchOf(i) != ColumnJoinMatch::kNoMatch);
      }
      if (hits == 0) std::abort();
    });
    columnar.baseline_ops_per_sec = rows.ops_per_sec;
    results->push_back(std::move(rows));
    results->push_back(std::move(columnar));
  }

  // SIMD-explicit kernel legs: each dispatched batch kernel at kScalar
  // (the differential twin) vs the best level this host executes. Same
  // inputs, bit-identical outputs — the artifact records the pure ISA
  // speedup with the columnar layout held constant.
  const simd::SimdLevel best = simd::Resolve(simd::SimdLevel::kAuto);
  for (size_t support : {4096, 65536}) {
    Rng rng(14000 + support);
    std::vector<ValueId> data(support * 3);
    for (ValueId& v : data) v = static_cast<ValueId>(rng.Next() % (1u << 16));
    ColumnStore store =
        ColumnStore::FromColumnMajor(std::move(data), support, 3);
    std::vector<uint64_t> hashes;
    BenchResult scalar = Measure("hash_rows_scalar", support, [&] {
      store.View().HashRows(&hashes, simd::SimdLevel::kScalar);
      if (hashes.empty()) std::abort();
    });
    BenchResult vec = Measure("hash_rows_simd", support, [&] {
      store.View().HashRows(&hashes, best);
      if (hashes.empty()) std::abort();
    });
    vec.baseline_ops_per_sec = scalar.ops_per_sec;
    results->push_back(std::move(scalar));
    results->push_back(std::move(vec));
  }
  for (size_t support : {4096, 65536}) {
    Rng rng(15000 + support);
    std::vector<ValueId> keys(support * 2), probes(support * 2);
    for (ValueId& v : keys) v = static_cast<ValueId>(rng.Next() % (support / 8));
    for (ValueId& v : probes) v = static_cast<ValueId>(rng.Next() % (support / 4));
    ColumnStore key_store =
        ColumnStore::FromColumnMajor(std::move(keys), support, 2);
    ColumnStore probe_store =
        ColumnStore::FromColumnMajor(std::move(probes), support, 2);
    std::vector<uint32_t> matched;
    ColumnIndex scalar_index(key_store.View(), simd::SimdLevel::kScalar);
    ColumnIndex simd_index(key_store.View(), best);
    BenchResult scalar = Measure("probe_all_scalar", support, [&] {
      scalar_index.ProbeAll(probe_store.View(), &matched);
      if (matched.size() != support) std::abort();
    });
    BenchResult vec = Measure("probe_all_simd", support, [&] {
      simd_index.ProbeAll(probe_store.View(), &matched);
      if (matched.size() != support) std::abort();
    });
    vec.baseline_ops_per_sec = scalar.ops_per_sec;
    results->push_back(std::move(scalar));
    results->push_back(std::move(vec));
  }
  for (size_t support : {4096, 65536}) {
    Rng rng(16000 + support);
    // Dense arity-2 keys: the radix group-by with SIMD max/pack against
    // the scalar hash-group twin.
    std::vector<ValueId> data(support * 2);
    for (ValueId& v : data) v = static_cast<ValueId>(rng.Next() % 64);
    ColumnStore store =
        ColumnStore::FromColumnMajor(std::move(data), support, 2);
    std::vector<uint64_t> mults(support);
    for (uint64_t& m : mults) m = 1 + rng.Next() % 1000;
    Schema z{{0, 1}};
    BenchResult scalar = Measure("group_columns_scalar", support, [&] {
      Bag m = *Bag::GroupColumns(z, store.View(), mults.data(), support,
                                 simd::SimdLevel::kScalar);
      if (m.SupportSize() == 0) std::abort();
    });
    BenchResult vec = Measure("group_columns_simd", support, [&] {
      Bag m = *Bag::GroupColumns(z, store.View(), mults.data(), support, best);
      if (m.SupportSize() == 0) std::abort();
    });
    vec.baseline_ops_per_sec = scalar.ops_per_sec;
    results->push_back(std::move(scalar));
    results->push_back(std::move(vec));
  }

  // P(R1..Rm) LP row builder, serial vs engine-pool parallel (per-bag
  // blocks, deterministic merge — the rows are byte-identical). On a
  // single-CPU host the ratio measures scheduling overhead, and the
  // artifact says so (single_cpu_warning).
  if (std::thread::hardware_concurrency() <= 1) {
    g_parallel_legs_on_single_cpu = true;
  }
  for (size_t support : {256, 1024}) {
    // Path schema keeps the join support under the LP cap (a circulant
    // blows past it); the small domain still yields tens of thousands
    // of LP variables at the top size.
    Rng rng(17000 + support);
    BagGenOptions gen;
    gen.support_size = support;
    gen.domain_size = std::max<uint64_t>(4, support / 64);
    gen.max_multiplicity = 1u << 10;
    Hypergraph h = *MakePath(4);
    BagCollection c = *MakeGloballyConsistentCollection(h, gen, &rng);
    ThreadPool pool(4);
    BenchResult serial = Measure("lp_build_serial", support, [&] {
      ConsistencyLp lp = *BuildConsistencyLp(c.bags());
      if (lp.rows.empty()) std::abort();
    });
    BenchResult parallel = Measure("lp_build_parallel_t4", support, [&] {
      ConsistencyLp lp = *BuildConsistencyLp(c.bags(), 1u << 22, &pool);
      if (lp.rows.empty()) std::abort();
    });
    parallel.baseline_ops_per_sec = serial.ops_per_sec;
    results->push_back(std::move(serial));
    results->push_back(std::move(parallel));
  }

  // Sealed resident bytes, row-path vs columnar-only seal of the same
  // collection — raw byte counts, not rates (iterations = 1, no
  // baseline/speedup: for memory, lower is better; the README quotes
  // the ratio directly).
  for (size_t support : {1024, 4096}) {
    BagCollection rows_c = MakeColumnarSweepCollection(support, 18000 + support);
    BagCollection cols_c = MakeColumnarSweepCollection(support, 18000 + support);
    EngineOptions rows_opt;
    rows_opt.marginal_path = MarginalPath::kRows;
    ConsistencyEngine rows_engine =
        *ConsistencyEngine::Make(std::move(rows_c), rows_opt);
    ConsistencyEngine cols_engine =
        *ConsistencyEngine::Make(std::move(cols_c), EngineOptions{});
    BenchResult rows_mem;
    rows_mem.name = "sealed_bytes_rows";
    rows_mem.size = support;
    rows_mem.ops_per_sec = static_cast<double>(rows_engine.ApproxSealedBytes());
    rows_mem.iterations = 1;
    BenchResult cols_mem;
    cols_mem.name = "sealed_bytes_columnar";
    cols_mem.size = support;
    cols_mem.ops_per_sec = static_cast<double>(cols_engine.ApproxSealedBytes());
    cols_mem.iterations = 1;
    results->push_back(std::move(rows_mem));
    results->push_back(std::move(cols_mem));
  }
}

void RunBagRefactorSuite(std::vector<BenchResult>* results) {
  // Two-bag solve: decide + extract a witness via the flow network.
  for (size_t support : {64, 256, 1024}) {
    auto [r, s] = MakeTwoBagInput(support, 42 + support);
    results->push_back(Measure("two_bag_solve", support, [&] {
      auto witness = *FindWitness(r, s);
      if (!witness.has_value()) std::abort();
    }));
  }

  // Acyclic fold: Theorem 6 along a path schema (plain fold; the minimal
  // fold is covered by bench_ablations).
  for (size_t support : {16, 64, 256}) {
    BagCollection c = MakeFoldInput(support, 7 + support);
    AcyclicSolveOptions options;
    options.minimal_fold = false;
    results->push_back(Measure("acyclic_fold", support, [&] {
      auto witness = *SolveGlobalConsistencyAcyclic(c, options);
      if (!witness.has_value()) std::abort();
    }));
  }

  // Bag join R(A,B) ⋈_b S(B,C).
  for (size_t support : {256, 1024, 4096}) {
    auto [r, s] = MakeTwoBagInput(support, 1042 + support);
    results->push_back(Measure("bag_join", support, [&] {
      Bag joined = *Bag::Join(r, s);
      if (joined.schema().arity() != 3) std::abort();
    }));
  }
}

// Every suite this binary can run. README's bench-suite list is checked
// against `--list-suites` output in CI (scripts/check_readme_suites.py),
// so adding a suite here without documenting it fails the build.
constexpr const char* kSuites[] = {"bag_refactor", "engine_batch",
                                   "interned_rows", "columnar_probe",
                                   "server_session", "delta_stream"};

int Main(int argc, char** argv) {
  std::string suite = "bag_refactor";
  std::string out_path;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--suite") == 0 && i + 1 < argc) {
      suite = argv[++i];
    } else if (std::strcmp(argv[i], "--list-suites") == 0) {
      for (const char* name : kSuites) std::printf("%s\n", name);
      return 0;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--suite bag_refactor|engine_batch|interned_rows|"
                   "columnar_probe|server_session|delta_stream] [--out FILE] "
                   "[--baseline FILE] [--list-suites]\n",
                   argv[0]);
      return 2;
    }
  }
  bool known = false;
  for (const char* name : kSuites) known = known || suite == name;
  if (!known) {
    std::fprintf(stderr, "unknown suite %s\n", suite.c_str());
    return 2;
  }
  if (out_path.empty()) out_path = "BENCH_" + suite + ".json";

  std::vector<BenchResult> baseline;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    baseline = ParseBaseline(ss.str());
  }

  std::vector<BenchResult> results;
  if (suite == "engine_batch") {
    RunEngineBatchSuite(&results);
  } else if (suite == "interned_rows") {
    RunInternedRowsSuite(&results);
  } else if (suite == "columnar_probe") {
    RunColumnarProbeSuite(&results);
  } else if (suite == "server_session") {
    RunServerSessionSuite(&results);
  } else if (suite == "delta_stream") {
    RunDeltaStreamSuite(&results);
  } else {
    RunBagRefactorSuite(&results);
  }

  for (BenchResult& r : results) {
    for (const BenchResult& b : baseline) {
      if (b.name == r.name && b.size == r.size) {
        r.baseline_ops_per_sec = b.ops_per_sec;
        break;
      }
    }
  }

  if (g_parallel_legs_on_single_cpu) {
    std::fprintf(stderr,
                 "bench_main: warning: parallel legs ran on a single-CPU "
                 "host; their speedup ratios measure scheduling overhead, "
                 "not parallelism (single_cpu_warning=true in the "
                 "artifact)\n");
  }

  std::ostringstream json;
  json << "{\n  \"suite\": \"" << suite << "\",\n  \"host_cpus\": "
       << std::thread::hardware_concurrency() << ",\n  \"single_cpu_warning\": "
       << (g_parallel_legs_on_single_cpu ? "true" : "false")
       << ",\n  \"compiler\": \""
       << EscapeJson(CompilerVersion()) << "\",\n  \"compile_flags\": \""
       << EscapeJson(BAGC_COMPILE_FLAGS) << "\",\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    json << "    {\"name\": \"" << r.name << "\", \"size\": " << r.size
         << ", \"ops_per_sec\": " << FormatDouble(r.ops_per_sec)
         << ", \"iterations\": " << r.iterations;
    if (r.baseline_ops_per_sec > 0) {
      json << ", \"baseline_ops_per_sec\": " << FormatDouble(r.baseline_ops_per_sec)
           << ", \"speedup\": " << FormatDouble(r.ops_per_sec / r.baseline_ops_per_sec);
    }
    json << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out(out_path);
  out << json.str();
  out.close();
  std::fputs(json.str().c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace bagc

int main(int argc, char** argv) { return bagc::Main(argc, argv); }
