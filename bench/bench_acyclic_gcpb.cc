// E3 (Theorem 2 Step 1 + Theorem 6): on acyclic schemas, global
// consistency is decided by pairwise consistency and a witness is built in
// polynomial time with support at most Σ ||Ri||supp. Series: number of
// hyperedges m and per-bag support. Expected shape: low-degree polynomial
// growth; "support_bound_ratio" <= 1 on every row.
#include <benchmark/benchmark.h>

#include "core/global.h"
#include "core/pairwise.h"
#include "generators/workloads.h"
#include "hypergraph/families.h"
#include "util/random.h"

namespace bagc {
namespace {

BagCollection PathCollection(size_t m, size_t support, uint64_t seed) {
  Rng rng(seed);
  BagGenOptions options;
  options.support_size = support;
  options.domain_size = std::max<uint64_t>(2, support / 4);
  options.max_multiplicity = 1u << 16;
  Hypergraph h = *MakePath(m + 1);
  return *MakeGloballyConsistentCollection(h, options, &rng);
}

void BM_PathSolve(benchmark::State& state) {
  size_t m = static_cast<size_t>(state.range(0));
  size_t support = static_cast<size_t>(state.range(1));
  BagCollection c = PathCollection(m, support, 7);
  size_t witness_support = 0;
  for (auto _ : state) {
    auto witness = *SolveGlobalConsistencyAcyclic(c);
    witness_support = witness->SupportSize();
    benchmark::DoNotOptimize(witness);
  }
  size_t bound = 0;
  for (const Bag& b : c.bags()) bound += b.SupportSize();
  state.counters["witness_support"] = static_cast<double>(witness_support);
  state.counters["support_bound_ratio"] =
      bound == 0 ? 0.0 : static_cast<double>(witness_support) / bound;
}
BENCHMARK(BM_PathSolve)
    ->ArgsProduct({{2, 4, 8, 16}, {64}})
    ->ArgsProduct({{8}, {16, 64, 256}});

void BM_StarSolve(benchmark::State& state) {
  size_t leaves = static_cast<size_t>(state.range(0));
  Rng rng(8);
  BagGenOptions options;
  options.support_size = 64;
  options.domain_size = 8;
  BagCollection c =
      *MakeGloballyConsistentCollection(*MakeStar(leaves), options, &rng);
  for (auto _ : state) {
    auto witness = *SolveGlobalConsistencyAcyclic(c);
    benchmark::DoNotOptimize(witness);
  }
}
BENCHMARK(BM_StarSolve)->RangeMultiplier(2)->Range(2, 32);

void BM_RandomAcyclicSolve(benchmark::State& state) {
  size_t m = static_cast<size_t>(state.range(0));
  Rng rng(9 + m);
  BagGenOptions options;
  options.support_size = 32;
  options.domain_size = 4;
  Hypergraph h = *MakeRandomAcyclic(m, 3, &rng);
  BagCollection c = *MakeGloballyConsistentCollection(h, options, &rng);
  for (auto _ : state) {
    auto witness = *SolveGlobalConsistencyAcyclic(c);
    benchmark::DoNotOptimize(witness);
  }
}
BENCHMARK(BM_RandomAcyclicSolve)->RangeMultiplier(2)->Range(2, 64);

void BM_PairwiseOnly(benchmark::State& state) {
  // The decision-side cost (Theorem 2: this alone already decides).
  size_t m = static_cast<size_t>(state.range(0));
  BagCollection c = PathCollection(m, 64, 10);
  for (auto _ : state) {
    bool ok = *ArePairwiseConsistent(c);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_PairwiseOnly)->RangeMultiplier(2)->Range(2, 64);

}  // namespace
}  // namespace bagc
