// E1 (Lemma 2 + Corollary 1): two-bag consistency decision and witness
// construction scale polynomially. Series: support size 2^4 .. 2^12.
// Expected shape: near-linear decision (marginal comparison), low-degree
// polynomial witness construction (max-flow on N(R,S)).
#include <benchmark/benchmark.h>

#include "core/two_bag.h"
#include "generators/workloads.h"
#include "util/random.h"

namespace bagc {
namespace {

std::pair<Bag, Bag> MakePair(size_t support, uint64_t seed, bool consistent) {
  Rng rng(seed);
  BagGenOptions options;
  options.support_size = support;
  options.domain_size = std::max<uint64_t>(2, support / 4);
  options.max_multiplicity = 1u << 20;
  Schema x{{0, 1}};
  Schema y{{1, 2}};
  auto pair = consistent ? *MakeConsistentPair(x, y, options, &rng)
                         : *MakeInconsistentPair(x, y, options, &rng);
  return pair;
}

void BM_DecideConsistent(benchmark::State& state) {
  auto [r, s] = MakePair(static_cast<size_t>(state.range(0)), 42, true);
  for (auto _ : state) {
    bool ok = *AreConsistent(r, s);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["support"] = static_cast<double>(r.SupportSize() + s.SupportSize());
}
BENCHMARK(BM_DecideConsistent)->RangeMultiplier(4)->Range(16, 4096);

void BM_DecideInconsistent(benchmark::State& state) {
  auto [r, s] = MakePair(static_cast<size_t>(state.range(0)), 43, false);
  for (auto _ : state) {
    bool ok = *AreConsistent(r, s);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_DecideInconsistent)->RangeMultiplier(4)->Range(16, 4096);

void BM_FindWitness(benchmark::State& state) {
  auto [r, s] = MakePair(static_cast<size_t>(state.range(0)), 44, true);
  size_t witness_support = 0;
  for (auto _ : state) {
    auto witness = *FindWitness(r, s);
    witness_support = witness->SupportSize();
    benchmark::DoNotOptimize(witness);
  }
  state.counters["witness_support"] = static_cast<double>(witness_support);
}
BENCHMARK(BM_FindWitness)->RangeMultiplier(4)->Range(16, 1024);

void BM_FindMinimalWitness(benchmark::State& state) {
  auto [r, s] = MakePair(static_cast<size_t>(state.range(0)), 45, true);
  size_t witness_support = 0;
  for (auto _ : state) {
    auto witness = *FindMinimalWitness(r, s);
    witness_support = witness->SupportSize();
    benchmark::DoNotOptimize(witness);
  }
  // Theorem 5: support <= ||R||supp + ||S||supp.
  state.counters["witness_support"] = static_cast<double>(witness_support);
  state.counters["theorem5_bound"] =
      static_cast<double>(r.SupportSize() + s.SupportSize());
}
BENCHMARK(BM_FindMinimalWitness)->RangeMultiplier(4)->Range(16, 256);

}  // namespace
}  // namespace bagc
