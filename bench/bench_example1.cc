// E7 (Example 1, §5.2): path schema A1..An, every bag = {0,1}^2 with
// multiplicity 2^n. The *join* of the supports has 2^n tuples — an
// exponentially large witness — while the input is 4(n-1) tuples of
// (n+1)-bit numbers and Theorem 6 produces a witness of support at most
// 4(n-1). Series: n = 4..20. Expected shape: "join_support" doubles per
// row; "thm6_witness_support" grows linearly; solve time stays polynomial.
#include <benchmark/benchmark.h>

#include "bag/relation.h"
#include "core/global.h"

namespace bagc {
namespace {

BagCollection ExampleOneCollection(size_t n) {
  std::vector<Bag> bags;
  uint64_t mult = uint64_t{1} << n;
  for (size_t i = 0; i + 1 < n; ++i) {
    Bag b(Schema{{static_cast<AttrId>(i), static_cast<AttrId>(i + 1)}});
    for (Value a = 0; a < 2; ++a) {
      for (Value c = 0; c < 2; ++c) {
        (void)b.Set(Tuple{{a, c}}, mult);
      }
    }
    bags.push_back(std::move(b));
  }
  return *BagCollection::Make(std::move(bags));
}

void BM_TheoremSixWitness(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  BagCollection c = ExampleOneCollection(n);
  size_t witness_support = 0;
  for (auto _ : state) {
    auto witness = *SolveGlobalConsistencyAcyclic(c);
    witness_support = witness->SupportSize();
    benchmark::DoNotOptimize(witness);
  }
  state.counters["thm6_witness_support"] = static_cast<double>(witness_support);
  state.counters["input_tuples"] = static_cast<double>(4 * (n - 1));
  state.counters["join_support_2^n"] =
      static_cast<double>(uint64_t{1} << n);
}
BENCHMARK(BM_TheoremSixWitness)->DenseRange(4, 20, 2);

void BM_MaterializedJoinSupport(benchmark::State& state) {
  // The naive join witness (what the set case would do): materialize the
  // support join — visibly exponential. Capped at n = 16.
  size_t n = static_cast<size_t>(state.range(0));
  BagCollection c = ExampleOneCollection(n);
  size_t join_size = 0;
  for (auto _ : state) {
    Relation join = Relation::SupportOf(c.bag(0));
    for (size_t i = 1; i < c.size(); ++i) {
      join = *Relation::Join(join, Relation::SupportOf(c.bag(i)));
    }
    join_size = join.size();
    benchmark::DoNotOptimize(join);
  }
  state.counters["join_support"] = static_cast<double>(join_size);
}
BENCHMARK(BM_MaterializedJoinSupport)->DenseRange(4, 16, 2);

}  // namespace
}  // namespace bagc
