// E6 (Theorem 3 + Theorem 5): witness size bounds.
//   (1) every witness has ||W||mu <= max ||Ri||mu,
//   (2) every witness has ||W||supp <= Σ ||Ri||u,
//   (3) minimal witnesses have ||W||supp <= Σ ||Ri||b (Carathéodory /
//       Eisenbrand–Shmonin), and <= ||R||supp + ||S||supp for two bags.
// Series: growing multiplicities (binary-size regime) for two bags, and
// triangle collections for the general bound. Expected shape: measured /
// bound ratios stay <= 1 while absolute supports grow.
#include <benchmark/benchmark.h>

#include "core/global.h"
#include "core/two_bag.h"
#include "generators/workloads.h"
#include "hypergraph/families.h"
#include "util/random.h"

namespace bagc {
namespace {

void BM_TwoBagMinimalWitnessBounds(benchmark::State& state) {
  size_t support = static_cast<size_t>(state.range(0));
  uint64_t max_mult = static_cast<uint64_t>(state.range(1));
  Rng rng(77);
  BagGenOptions options;
  options.support_size = support;
  options.domain_size = std::max<uint64_t>(2, support / 4);
  options.max_multiplicity = max_mult;
  auto [r, s] = *MakeConsistentPair(Schema{{0, 1}}, Schema{{1, 2}}, options, &rng);
  size_t witness_support = 0;
  uint64_t witness_mu = 0;
  for (auto _ : state) {
    auto witness = *FindMinimalWitness(r, s);
    witness_support = witness->SupportSize();
    witness_mu = witness->MultiplicityBound();
    benchmark::DoNotOptimize(witness);
  }
  double supp_bound = static_cast<double>(r.SupportSize() + s.SupportSize());
  double mu_bound =
      static_cast<double>(std::max(r.MultiplicityBound(), s.MultiplicityBound()));
  state.counters["supp_ratio_thm5"] =
      supp_bound == 0 ? 0 : static_cast<double>(witness_support) / supp_bound;
  state.counters["mu_ratio_thm3_1"] =
      mu_bound == 0 ? 0 : static_cast<double>(witness_mu) / mu_bound;
}
BENCHMARK(BM_TwoBagMinimalWitnessBounds)
    ->ArgsProduct({{16, 64, 256}, {8, 1 << 10, 1 << 20, 1 << 30}});

void BM_TriangleMinimalWitnessCaratheodory(benchmark::State& state) {
  // Theorem 3(3) on the cyclic triangle: minimize support, compare with
  // Σ ||Ri||_b.
  uint64_t max_mult = static_cast<uint64_t>(state.range(0));
  Rng rng(78);
  BagGenOptions options;
  options.support_size = 4;
  options.domain_size = 2;
  options.max_multiplicity = max_mult;
  BagCollection c =
      *MakeGloballyConsistentCollection(*MakeCycle(3), options, &rng);
  size_t minimal_support = 0;
  for (auto _ : state) {
    auto witness = *SolveGlobalConsistencyExact(c);
    Bag minimal = *MinimizeWitnessSupport(c, *witness);
    minimal_support = minimal.SupportSize();
    benchmark::DoNotOptimize(minimal);
  }
  uint64_t binary_bound = 0, unary_bound = 0;
  for (const Bag& b : c.bags()) {
    binary_bound += b.BinarySize();
    unary_bound += *b.UnarySize();
  }
  state.counters["minimal_support"] = static_cast<double>(minimal_support);
  state.counters["binary_bound_thm3_3"] = static_cast<double>(binary_bound);
  state.counters["unary_bound_thm3_2"] = static_cast<double>(unary_bound);
}
BENCHMARK(BM_TriangleMinimalWitnessCaratheodory)
    ->Arg(4)->Arg(64)->Arg(1 << 10)->Arg(1 << 16);

}  // namespace
}  // namespace bagc
