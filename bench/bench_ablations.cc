// Ablations for the design choices called out in DESIGN.md §4:
//   A1  Theorem 6 fold: minimal two-bag witnesses (Corollary 4) vs plain
//       max-flow witnesses — support growth vs per-step cost.
//   A2  Integer-feasibility branching order: descending vs ascending
//       values — descending saturates rows early on consistent inputs.
//   A3  Two-bag rational feasibility: max-flow vs exact simplex vs
//       closed-form construction — three routes to Lemma 2, very
//       different constants.
#include <benchmark/benchmark.h>

#include "core/global.h"
#include "core/two_bag.h"
#include "generators/workloads.h"
#include "hypergraph/families.h"
#include "solver/integer_feasibility.h"
#include "solver/rational_witness.h"
#include "solver/simplex.h"
#include "util/random.h"

namespace bagc {
namespace {

BagCollection PathCollection(size_t m, size_t support, uint64_t seed) {
  Rng rng(seed);
  BagGenOptions options;
  options.support_size = support;
  options.domain_size = std::max<uint64_t>(2, support / 4);
  options.max_multiplicity = 1u << 12;
  return *MakeGloballyConsistentCollection(*MakePath(m + 1), options, &rng);
}

void BM_A1_FoldMinimal(benchmark::State& state) {
  BagCollection c = PathCollection(static_cast<size_t>(state.range(0)), 48, 11);
  size_t support = 0;
  for (auto _ : state) {
    AcyclicSolveOptions options;
    options.minimal_fold = true;
    auto witness = *SolveGlobalConsistencyAcyclic(c, options);
    support = witness->SupportSize();
  }
  state.counters["witness_support"] = static_cast<double>(support);
}
BENCHMARK(BM_A1_FoldMinimal)->RangeMultiplier(2)->Range(2, 16);

void BM_A1_FoldPlain(benchmark::State& state) {
  BagCollection c = PathCollection(static_cast<size_t>(state.range(0)), 48, 11);
  size_t support = 0;
  for (auto _ : state) {
    AcyclicSolveOptions options;
    options.minimal_fold = false;
    auto witness = *SolveGlobalConsistencyAcyclic(c, options);
    support = witness->SupportSize();
  }
  state.counters["witness_support"] = static_cast<double>(support);
}
BENCHMARK(BM_A1_FoldPlain)->RangeMultiplier(2)->Range(2, 16);

void BM_A2_BranchOrder(benchmark::State& state) {
  bool descend = state.range(1) == 1;
  Rng rng(12);
  BagGenOptions options;
  options.support_size = static_cast<size_t>(state.range(0));
  options.domain_size = 3;
  options.max_multiplicity = 6;
  BagCollection c =
      *MakeGloballyConsistentCollection(*MakeCycle(3), options, &rng);
  ConsistencyLp lp = *BuildConsistencyLp(c.bags());
  double nodes = 0;
  for (auto _ : state) {
    SolveOptions so;
    so.descend_values = descend;
    SolveStats stats;
    auto solution = *SolveIntegerFeasibility(lp, so, &stats);
    nodes = static_cast<double>(stats.nodes);
    benchmark::DoNotOptimize(solution);
  }
  state.counters["search_nodes"] = nodes;
  state.SetLabel(descend ? "descending" : "ascending");
}
BENCHMARK(BM_A2_BranchOrder)
    ->ArgsProduct({{6, 9, 12}, {0, 1}});

void BM_A3_TwoBagViaFlow(benchmark::State& state) {
  Rng rng(13);
  BagGenOptions options;
  options.support_size = static_cast<size_t>(state.range(0));
  options.domain_size = std::max<uint64_t>(2, options.support_size / 4);
  auto [r, s] = *MakeConsistentPair(Schema{{0, 1}}, Schema{{1, 2}}, options, &rng);
  for (auto _ : state) {
    auto witness = *FindWitness(r, s);
    benchmark::DoNotOptimize(witness);
  }
  state.SetLabel("max_flow");
}
BENCHMARK(BM_A3_TwoBagViaFlow)->RangeMultiplier(2)->Range(8, 128);

void BM_A3_TwoBagViaSimplex(benchmark::State& state) {
  Rng rng(13);
  BagGenOptions options;
  options.support_size = static_cast<size_t>(state.range(0));
  options.domain_size = std::max<uint64_t>(2, options.support_size / 4);
  auto [r, s] = *MakeConsistentPair(Schema{{0, 1}}, Schema{{1, 2}}, options, &rng);
  ConsistencyLp lp = *BuildConsistencyLp({r, s});
  size_t pivots = 0;
  for (auto _ : state) {
    SimplexResult res = *SolveRationalFeasibility(lp);
    pivots = res.pivots;
    benchmark::DoNotOptimize(res);
  }
  state.counters["pivots"] = static_cast<double>(pivots);
  state.SetLabel("simplex");
}
BENCHMARK(BM_A3_TwoBagViaSimplex)->RangeMultiplier(2)->Range(8, 128);

void BM_A3_TwoBagViaClosedForm(benchmark::State& state) {
  Rng rng(13);
  BagGenOptions options;
  options.support_size = static_cast<size_t>(state.range(0));
  options.domain_size = std::max<uint64_t>(2, options.support_size / 4);
  auto [r, s] = *MakeConsistentPair(Schema{{0, 1}}, Schema{{1, 2}}, options, &rng);
  ConsistencyLp lp = *BuildConsistencyLp({r, s});
  for (auto _ : state) {
    auto sol = *BuildRationalSolution(r, s, lp);
    benchmark::DoNotOptimize(sol);
  }
  state.SetLabel("closed_form");
}
BENCHMARK(BM_A3_TwoBagViaClosedForm)->RangeMultiplier(2)->Range(8, 128);

}  // namespace
}  // namespace bagc
