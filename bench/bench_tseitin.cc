// E4 (Theorem 2 Step 2): for every cyclic hypergraph there is a pairwise
// consistent, globally inconsistent collection — the Tseitin construction
// on the minimal obstruction, lifted by Lemma 4. Series: Cn (n = 3..12)
// and Hn (n = 3..6). Expected shape: construction + pairwise verification
// polynomial in the table sizes; the global refutation on Cn/Hn detects
// an empty join support immediately (the mod-d charge never cancels).
#include <benchmark/benchmark.h>

#include "core/global.h"
#include "core/local_global.h"
#include "core/pairwise.h"
#include "core/tseitin.h"
#include "hypergraph/families.h"

namespace bagc {
namespace {

void BM_CycleConstructAndVerify(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Hypergraph cn = *MakeCycle(n);
  for (auto _ : state) {
    BagCollection c = *BagCollection::Make(*MakeTseitinCollection(cn));
    bool pairwise = *ArePairwiseConsistent(c);
    bool global = SolveGlobalConsistencyExact(c)->has_value();
    benchmark::DoNotOptimize(pairwise);
    benchmark::DoNotOptimize(global);
    if (!pairwise || global) state.SkipWithError("Theorem 2 violated!");
  }
  state.counters["tuples_per_bag"] = 2.0;  // d=2, k=2: two parity tuples
}
BENCHMARK(BM_CycleConstructAndVerify)->DenseRange(3, 12, 1);

void BM_HnConstructAndVerify(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Hypergraph hn = *MakeHn(n);
  double tuples = 0;
  for (auto _ : state) {
    BagCollection c = *BagCollection::Make(*MakeTseitinCollection(hn));
    tuples = static_cast<double>(c.bag(0).SupportSize());
    bool pairwise = *ArePairwiseConsistent(c);
    bool global = SolveGlobalConsistencyExact(c)->has_value();
    benchmark::DoNotOptimize(pairwise);
    if (!pairwise || global) state.SkipWithError("Theorem 2 violated!");
  }
  state.counters["tuples_per_bag"] = tuples;  // (n-1)^(n-2)
}
BENCHMARK(BM_HnConstructAndVerify)->DenseRange(3, 6, 1);

void BM_CounterexampleOnEmbeddedCycle(benchmark::State& state) {
  // A cyclic hypergraph hiding a C4 among acyclic decoration: the full
  // pipeline FindObstruction -> Tseitin -> Lemma 4 lift.
  size_t extra = static_cast<size_t>(state.range(0));
  std::vector<Schema> edges = {Schema{{0, 1}}, Schema{{1, 2}}, Schema{{2, 3}},
                               Schema{{3, 0}}};
  for (size_t i = 0; i < extra; ++i) {
    AttrId fresh = static_cast<AttrId>(4 + i);
    edges.push_back(Schema{{static_cast<AttrId>(i % 4), fresh}});
  }
  Hypergraph h = *Hypergraph::FromEdges(edges);
  for (auto _ : state) {
    BagCollection c = *MakeCounterexample(h);
    bool pairwise = *ArePairwiseConsistent(c);
    benchmark::DoNotOptimize(pairwise);
    if (!pairwise) state.SkipWithError("lifted collection not pairwise!");
  }
  state.counters["edges"] = static_cast<double>(h.num_edges());
}
BENCHMARK(BM_CounterexampleOnEmbeddedCycle)->DenseRange(0, 24, 4);

}  // namespace
}  // namespace bagc
