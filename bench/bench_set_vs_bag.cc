// E8 (§5.1 vs §5.2): on the *fixed cyclic* triangle schema, relations are
// decided in polynomial time (one 3-way join + projections) while bags
// need an exponential-worst-case search. Matched series over the domain
// size n: the same supports, once as relations and once as bags with 3DCT
// multiplicities. Expected shape: relation rows grow like n^3; bag rows
// grow strictly faster (search), with crossover immediately.
#include <benchmark/benchmark.h>

#include "core/global.h"
#include "reductions/coloring.h"
#include "reductions/threedct.h"
#include "setcase/relation_consistency.h"
#include "util/random.h"

namespace bagc {
namespace {

void BM_RelationsOnTriangle(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(500 + n);
  ThreeDctInstance inst = MakeFeasibleInstance(n, 3, &rng);
  BagCollection bags = *ToTriangleBags(inst);
  std::vector<Relation> rels;
  for (const Bag& b : bags.bags()) rels.push_back(Relation::SupportOf(b));
  for (auto _ : state) {
    auto witness = *SolveGlobalConsistencyRelations(rels);
    benchmark::DoNotOptimize(witness);
  }
  state.SetLabel("set_semantics");
}
BENCHMARK(BM_RelationsOnTriangle)->DenseRange(2, 8, 1)->Unit(benchmark::kMicrosecond);

void BM_BagsOnTriangle(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(500 + n);  // same instances as above
  ThreeDctInstance inst = MakeFeasibleInstance(n, 3, &rng);
  BagCollection bags = *ToTriangleBags(inst);
  for (auto _ : state) {
    auto witness = *SolveGlobalConsistencyExact(bags);
    benchmark::DoNotOptimize(witness);
  }
  state.SetLabel("bag_semantics");
}
BENCHMARK(BM_BagsOnTriangle)->DenseRange(2, 5, 1)->Unit(benchmark::kMicrosecond);

void BM_RelationsOnColoring(benchmark::State& state) {
  // The set case is NP-complete only when the schema VARIES with the input
  // (HLY80 coloring reduction): the join blows up with the vertex count.
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(900);
  ColoringInstance g = MakeColorableGraph(n, 2, 3, &rng);
  if (g.edges.empty()) {
    state.SkipWithError("degenerate graph");
    return;
  }
  std::vector<Relation> rels = *ColoringToRelations(g);
  for (auto _ : state) {
    auto witness = *SolveGlobalConsistencyRelations(rels);
    benchmark::DoNotOptimize(witness);
  }
  state.counters["relations"] = static_cast<double>(rels.size());
}
BENCHMARK(BM_RelationsOnColoring)->DenseRange(4, 9, 1)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bagc
