// E9 (Theorem 1/2 (a)-(d)): the structural algorithms — GYO reduction,
// conformal+chordal testing, join-tree construction, running-intersection
// ordering, and the Lemma 3 obstruction search — and their scaling.
// Series: path/cycle sizes up to 512, random acyclic hypergraphs up to
// 1024 edges. Expected shape: all polynomial; the equivalence counters
// agree on every row.
#include <benchmark/benchmark.h>

#include "hypergraph/acyclicity.h"
#include "hypergraph/chordality.h"
#include "hypergraph/conformality.h"
#include "hypergraph/families.h"
#include "hypergraph/safe_deletion.h"
#include "util/random.h"

namespace bagc {
namespace {

void BM_GyoOnPath(benchmark::State& state) {
  Hypergraph h = *MakePath(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    bool acyclic = IsAcyclicGyo(h);
    benchmark::DoNotOptimize(acyclic);
  }
}
BENCHMARK(BM_GyoOnPath)->RangeMultiplier(2)->Range(8, 512);

void BM_GyoOnRandomAcyclic(benchmark::State& state) {
  Rng rng(41);
  Hypergraph h = *MakeRandomAcyclic(static_cast<size_t>(state.range(0)), 4, &rng);
  for (auto _ : state) {
    bool acyclic = IsAcyclicGyo(h);
    benchmark::DoNotOptimize(acyclic);
  }
}
BENCHMARK(BM_GyoOnRandomAcyclic)->RangeMultiplier(2)->Range(8, 1024);

void BM_ConformalChordalOnCycle(benchmark::State& state) {
  Hypergraph h = *MakeCycle(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    bool acyclic = IsAcyclicByConformalChordal(h);
    benchmark::DoNotOptimize(acyclic);
  }
}
BENCHMARK(BM_ConformalChordalOnCycle)->RangeMultiplier(2)->Range(8, 256);

void BM_ChordalityLexBfs(benchmark::State& state) {
  Rng rng(42);
  Hypergraph h = *MakeRandomAcyclic(static_cast<size_t>(state.range(0)), 4, &rng);
  Graph g = h.PrimalGraph();
  for (auto _ : state) {
    bool chordal = IsChordalGraph(g);
    benchmark::DoNotOptimize(chordal);
  }
  state.counters["vertices"] = static_cast<double>(g.num_vertices());
}
BENCHMARK(BM_ChordalityLexBfs)->RangeMultiplier(2)->Range(8, 512);

void BM_JoinTreeConstruction(benchmark::State& state) {
  Rng rng(43);
  Hypergraph h = *MakeRandomAcyclic(static_cast<size_t>(state.range(0)), 4, &rng);
  for (auto _ : state) {
    auto jt = BuildJoinTree(h);
    benchmark::DoNotOptimize(jt);
  }
}
BENCHMARK(BM_JoinTreeConstruction)->RangeMultiplier(2)->Range(8, 512);

void BM_RunningIntersectionOrdering(benchmark::State& state) {
  Rng rng(44);
  Hypergraph h = *MakeRandomAcyclic(static_cast<size_t>(state.range(0)), 4, &rng);
  for (auto _ : state) {
    auto order = RunningIntersectionOrder(h);
    benchmark::DoNotOptimize(order);
  }
}
BENCHMARK(BM_RunningIntersectionOrdering)->RangeMultiplier(2)->Range(8, 512);

void BM_EquivalenceSweep(benchmark::State& state) {
  // All three acyclicity characterizations on a random mixed pool; the
  // "disagreements" counter must read 0.
  Rng rng(45);
  std::vector<Hypergraph> pool;
  for (int i = 0; i < 24; ++i) {
    if (i % 2 == 0) {
      pool.push_back(*MakeRandomAcyclic(4 + rng.Below(8), 3, &rng));
    } else {
      auto h = MakeRandomUniform(5 + rng.Below(4), 2, 4 + rng.Below(4), &rng);
      if (h.ok()) pool.push_back(*h);
    }
  }
  double disagreements = 0;
  for (auto _ : state) {
    for (const Hypergraph& h : pool) {
      bool a = IsAcyclicGyo(h);
      bool b = IsAcyclicByConformalChordal(h);
      bool c = BuildJoinTree(h).ok();
      bool d = RunningIntersectionOrder(h).ok();
      if (a != b || b != c || c != d) disagreements += 1;
    }
  }
  state.counters["disagreements"] = disagreements;
}
BENCHMARK(BM_EquivalenceSweep);

void BM_ObstructionSearch(benchmark::State& state) {
  // Lemma 3: find W and the safe-deletion sequence in a cycle padded with
  // acyclic decoration.
  size_t pad = static_cast<size_t>(state.range(0));
  std::vector<Schema> edges;
  for (size_t i = 0; i < 6; ++i) {
    edges.push_back(Schema{{static_cast<AttrId>(i), static_cast<AttrId>((i + 1) % 6)}});
  }
  for (size_t i = 0; i < pad; ++i) {
    edges.push_back(Schema{{static_cast<AttrId>(i % 6), static_cast<AttrId>(6 + i)}});
  }
  Hypergraph h = *Hypergraph::FromEdges(edges);
  for (auto _ : state) {
    auto obs = FindObstruction(h);
    benchmark::DoNotOptimize(obs);
  }
}
BENCHMARK(BM_ObstructionSearch)->RangeMultiplier(2)->Range(2, 64);

}  // namespace
}  // namespace bagc
