// E11 (Corollary 1 substrate): Dinic max-flow on consistency networks is
// strongly polynomial. Series: bipartite N(R,S) networks with up to 2^14
// middle edges. Expected shape: near-linear growth in edges for these
// unit-ish bipartite instances.
#include <benchmark/benchmark.h>

#include "flow/consistency_network.h"
#include "flow/network.h"
#include "generators/workloads.h"
#include "util/random.h"

namespace bagc {
namespace {

void BM_DinicBipartite(benchmark::State& state) {
  size_t side = static_cast<size_t>(state.range(0));
  Rng rng(300 + side);
  FlowNetwork net(2 + 2 * side);
  size_t s = 0, t = 1 + 2 * side;
  for (size_t i = 0; i < side; ++i) {
    (void)*net.AddEdge(s, 1 + i, rng.Range(1, 100));
    (void)*net.AddEdge(1 + side + i, t, rng.Range(1, 100));
  }
  size_t middle = 0;
  for (size_t i = 0; i < side; ++i) {
    for (size_t j = 0; j < side; ++j) {
      if (rng.Chance(4, side + 4)) {
        (void)*net.AddEdge(1 + i, 1 + side + j, FlowNetwork::kUnbounded);
        ++middle;
      }
    }
  }
  for (auto _ : state) {
    uint64_t value = *net.Solve(s, t);
    benchmark::DoNotOptimize(value);
  }
  state.counters["middle_edges"] = static_cast<double>(middle);
}
BENCHMARK(BM_DinicBipartite)->RangeMultiplier(2)->Range(16, 2048);

void BM_ConsistencyNetworkBuild(benchmark::State& state) {
  size_t support = static_cast<size_t>(state.range(0));
  Rng rng(400);
  BagGenOptions options;
  options.support_size = support;
  options.domain_size = std::max<uint64_t>(2, support / 8);
  options.max_multiplicity = 1u << 16;
  auto [r, s] = *MakeConsistentPair(Schema{{0, 1}}, Schema{{1, 2}}, options, &rng);
  for (auto _ : state) {
    auto net = *ConsistencyNetwork::Make(r, s);
    benchmark::DoNotOptimize(net);
  }
}
BENCHMARK(BM_ConsistencyNetworkBuild)->RangeMultiplier(4)->Range(16, 4096);

void BM_SaturatedFlowDecision(benchmark::State& state) {
  size_t support = static_cast<size_t>(state.range(0));
  Rng rng(401);
  BagGenOptions options;
  options.support_size = support;
  options.domain_size = std::max<uint64_t>(2, support / 8);
  options.max_multiplicity = 1u << 16;
  auto [r, s] = *MakeConsistentPair(Schema{{0, 1}}, Schema{{1, 2}}, options, &rng);
  auto net = *ConsistencyNetwork::Make(r, s);
  for (auto _ : state) {
    bool saturated = *net.HasSaturatedFlow();
    benchmark::DoNotOptimize(saturated);
  }
  state.counters["middle_edges"] = static_cast<double>(net.NumMiddleEdges());
}
BENCHMARK(BM_SaturatedFlowDecision)->RangeMultiplier(4)->Range(16, 4096);

}  // namespace
}  // namespace bagc
