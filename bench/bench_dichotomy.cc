// E5 (Theorem 4, the dichotomy): for fixed schemas, GCPB is polynomial iff
// the schema is acyclic, NP-complete otherwise. Two matched series:
//   - cyclic C3 (3DCT instances): the exact solver's search nodes grow
//     exponentially with the table side n,
//   - acyclic P4 with comparable input sizes: the Theorem 6 algorithm
//     stays polynomial.
// Expected shape: the "search_nodes" counter explodes on the cyclic rows
// and the time ratio cyclic/acyclic widens with n; who wins: acyclic,
// at every size, by a growing margin.
#include <benchmark/benchmark.h>

#include "core/global.h"
#include "generators/workloads.h"
#include "hypergraph/families.h"
#include "reductions/threedct.h"
#include "util/random.h"

namespace bagc {
namespace {

void BM_CyclicTriangle3DCT(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1000 + n);
  ThreeDctInstance inst = MakeFeasibleInstance(n, 3, &rng);
  BagCollection c = *ToTriangleBags(inst);
  double nodes = 0;
  for (auto _ : state) {
    GlobalSolveOptions options;
    SolveStats stats;
    // Re-run the LP + search to count nodes.
    ConsistencyLp lp = *BuildConsistencyLp(c.bags(), options.max_join_support);
    auto solution = *SolveIntegerFeasibility(lp, options.search, &stats);
    nodes = static_cast<double>(stats.nodes);
    benchmark::DoNotOptimize(solution);
  }
  state.counters["search_nodes"] = nodes;
  state.counters["input_cells"] = static_cast<double>(3 * n * n);
}
BENCHMARK(BM_CyclicTriangle3DCT)->DenseRange(2, 6, 1)->Unit(benchmark::kMicrosecond);

void BM_AcyclicPathMatchedSize(benchmark::State& state) {
  // P4 with per-bag support n^2 to match the 3DCT input size.
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2000 + n);
  BagGenOptions options;
  options.support_size = n * n;
  options.domain_size = n;
  options.max_multiplicity = 3 * n;
  BagCollection c =
      *MakeGloballyConsistentCollection(*MakePath(4), options, &rng);
  for (auto _ : state) {
    auto witness = *SolveGlobalConsistencyAcyclic(c);
    benchmark::DoNotOptimize(witness);
  }
  state.counters["input_cells"] = static_cast<double>(3 * n * n);
}
BENCHMARK(BM_AcyclicPathMatchedSize)
    ->DenseRange(2, 6, 1)
    ->Unit(benchmark::kMicrosecond);

void BM_DispatchIsGloballyConsistent(benchmark::State& state) {
  // The user-facing dispatcher on both sides of the dichotomy.
  bool cyclic = state.range(0) == 1;
  Rng rng(3000);
  BagGenOptions options;
  options.support_size = 9;
  options.domain_size = 3;
  options.max_multiplicity = 4;
  Hypergraph h = cyclic ? *MakeCycle(3) : *MakePath(4);
  BagCollection c = *MakeGloballyConsistentCollection(h, options, &rng);
  for (auto _ : state) {
    bool ok = *IsGloballyConsistent(c);
    benchmark::DoNotOptimize(ok);
  }
  state.SetLabel(cyclic ? "cyclic_C3" : "acyclic_P4");
}
BENCHMARK(BM_DispatchIsGloballyConsistent)->Arg(0)->Arg(1);

}  // namespace
}  // namespace bagc
