// E10 (Lemmas 3, 4, 6, 7): the reduction machinery is polynomial and
// correctness-preserving. Series: iterated cycle extension C3 -> Cn, the
// Hn extension, 3DCT conversion, and Lemma 4 lifting along growing
// safe-deletion sequences. Expected shape: polynomial time; instance size
// counters grow as the lemmas predict (linear for Lemma 6, exponential in
// the chain length for Lemma 7's active-domain products).
#include <benchmark/benchmark.h>

#include "core/global.h"
#include "core/lifting.h"
#include "core/local_global.h"
#include "core/pairwise.h"
#include "core/tseitin.h"
#include "hypergraph/families.h"
#include "reductions/cycle_chain.h"
#include "reductions/hn_chain.h"
#include "reductions/threedct.h"
#include "util/random.h"

namespace bagc {
namespace {

CycleInstance BaseCycleInstance() {
  std::vector<Bag> bags = *MakeTseitinCollection(*MakeCycle(3));
  std::vector<Bag> ordered(3, Bag{});
  for (Bag& b : bags) {
    for (size_t i = 0; i < 3; ++i) {
      Schema want{{static_cast<AttrId>(i), static_cast<AttrId>((i + 1) % 3)}};
      if (b.schema() == want) ordered[i] = std::move(b);
    }
  }
  return *MakeCycleInstance(std::move(ordered));
}

void BM_CycleChainExtension(benchmark::State& state) {
  size_t target = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    CycleInstance cur = BaseCycleInstance();
    while (cur.n < target) cur = *ExtendCycle(cur);
    benchmark::DoNotOptimize(cur);
  }
  CycleInstance cur = BaseCycleInstance();
  while (cur.n < target) cur = *ExtendCycle(cur);
  size_t tuples = 0;
  for (const Bag& b : cur.bags) tuples += b.SupportSize();
  state.counters["instance_tuples"] = static_cast<double>(tuples);
}
BENCHMARK(BM_CycleChainExtension)->DenseRange(4, 16, 2);

void BM_HnChainExtension(benchmark::State& state) {
  size_t target = static_cast<size_t>(state.range(0));
  std::vector<Bag> base = *MakeTseitinCollection(*MakeHn(3));
  std::vector<Bag> ordered(3, Bag{});
  for (Bag& b : base) {
    for (size_t i = 0; i < 3; ++i) {
      if (!b.schema().Contains(static_cast<AttrId>(i))) {
        ordered[i] = std::move(b);
        break;
      }
    }
  }
  for (auto _ : state) {
    HnInstance cur = *MakeHnInstance(ordered);
    while (cur.n < target) cur = *ExtendHn(cur);
    benchmark::DoNotOptimize(cur);
  }
  HnInstance cur = *MakeHnInstance(ordered);
  while (cur.n < target) cur = *ExtendHn(cur);
  size_t tuples = 0;
  for (const Bag& b : cur.bags) tuples += b.SupportSize();
  state.counters["instance_tuples"] = static_cast<double>(tuples);
}
BENCHMARK(BM_HnChainExtension)->DenseRange(3, 6, 1);

void BM_ThreeDctConversion(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(600 + n);
  ThreeDctInstance inst = MakeFeasibleInstance(n, 5, &rng);
  for (auto _ : state) {
    auto bags = *ToTriangleBags(inst);
    benchmark::DoNotOptimize(bags);
  }
}
BENCHMARK(BM_ThreeDctConversion)->RangeMultiplier(2)->Range(2, 32);

void BM_LemmaFourLift(benchmark::State& state) {
  // Lift the C4 Tseitin counterexample through `pad` vertex deletions.
  size_t pad = static_cast<size_t>(state.range(0));
  std::vector<Schema> edges = {Schema{{0, 1}}, Schema{{1, 2}}, Schema{{2, 3}},
                               Schema{{3, 0}}};
  for (size_t i = 0; i < pad; ++i) {
    edges.push_back(Schema{{static_cast<AttrId>(i % 4), static_cast<AttrId>(4 + i)}});
  }
  LiftPlan plan = *PlanLiftToInduced(edges, Schema{{0, 1, 2, 3}});
  std::vector<Bag> tseitin = *MakeTseitinCollection(*MakeCycle(4));
  std::vector<Bag> d0;
  for (const Schema& e : plan.final_edges) {
    for (const Bag& b : tseitin) {
      if (b.schema() == e) d0.push_back(b);
    }
  }
  for (auto _ : state) {
    std::vector<Bag> lifted = *LiftCollection(plan, d0);
    benchmark::DoNotOptimize(lifted);
  }
  state.counters["ops"] = static_cast<double>(plan.ops.size());
}
BENCHMARK(BM_LemmaFourLift)->RangeMultiplier(2)->Range(4, 64);

void BM_LiftedInstanceStaysCounterexample(benchmark::State& state) {
  // End-to-end check folded into the timing: pairwise holds, global fails.
  size_t pad = static_cast<size_t>(state.range(0));
  std::vector<Schema> edges = {Schema{{0, 1}}, Schema{{1, 2}}, Schema{{2, 3}},
                               Schema{{3, 0}}};
  for (size_t i = 0; i < pad; ++i) {
    edges.push_back(Schema{{static_cast<AttrId>(i % 4), static_cast<AttrId>(4 + i)}});
  }
  Hypergraph h = *Hypergraph::FromEdges(edges);
  for (auto _ : state) {
    BagCollection c = *MakeCounterexample(h);
    bool pairwise = *ArePairwiseConsistent(c);
    bool global = SolveGlobalConsistencyExact(c)->has_value();
    if (!pairwise || global) state.SkipWithError("Lemma 4 lift broke!");
  }
}
BENCHMARK(BM_LiftedInstanceStaysCounterexample)->Arg(4)->Arg(16);

}  // namespace
}  // namespace bagc
