// bagctl: command-line client for a running bagcd server.
//
// Usage:
//   bagctl --port N [--host ADDR] --replay FILE
//   bagctl --port N [--host ADDR] [--script FILE]
//
//   --replay FILE  replay a C:/S: transcript (a raw transcript, or a
//                  markdown file with ```transcript fences such as
//                  docs/PROTOCOL.md) and fail on the first divergence —
//                  the CI conformance check for the live server.
//   --script FILE  send the file's protocol lines (stdin when omitted or
//                  "-") and print every response line; body lines of
//                  DICT/LOAD/LOADU32 are forwarded transparently. A
//                  trailing QUIT is appended when the script has none.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "server/client.h"
#include "server/protocol.h"

namespace {

int Fail(const bagc::Status& status) {
  std::fprintf(stderr, "bagctl: %s\n", status.ToString().c_str());
  return 1;
}

int RunScript(const std::string& host, uint16_t port, std::istream& in) {
  auto client = bagc::BagcdClient::Connect(host, port);
  if (!client.ok()) return Fail(client.status());
  std::printf("%s\n", client->banner().c_str());
  bool quit_sent = false;
  bool in_body = false;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (in_body) {
      // Body lines flow through without a response; END closes the body
      // and the next server line is its response.
      if (!client->SendLine(line).ok()) return 1;
      if (bagc::WireStrip(line) != bagc::kWireEnd) continue;
      in_body = false;
    } else {
      std::vector<std::string> tokens = bagc::WireTokens(line);
      if (tokens.empty()) continue;
      if (!client->SendLine(line).ok()) return 1;
      if (bagc::WireCommandHasBody(tokens[0])) {
        in_body = true;
        continue;
      }
      quit_sent = tokens[0] == "QUIT" || tokens[0] == "SHUTDOWN";
    }
    // Read the complete response for the command just finished.
    auto first = client->ReadLine();
    if (!first.ok()) return Fail(first.status());
    std::printf("%s\n", first->c_str());
    if (bagc::WireResponseHasBody(*first)) {
      while (true) {
        auto next = client->ReadLine();
        if (!next.ok()) return Fail(next.status());
        std::printf("%s\n", next->c_str());
        if (*next == bagc::kWireEnd) break;
      }
    }
    if (quit_sent) return 0;
  }
  if (in_body) {
    // A QUIT here would be swallowed as a body line and both sides would
    // wait on each other forever.
    std::fprintf(stderr,
                 "bagctl: script ended inside a DICT/LOAD/LOADU32 body "
                 "(missing END)\n");
    return 1;
  }
  if (!quit_sent) {
    if (!client->SendLine("QUIT").ok()) return 1;
    auto bye = client->ReadLine();
    if (!bye.ok()) return Fail(bye.status());
    std::printf("%s\n", bye->c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string replay_path;
  std::string script_path;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bagctl: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      host = next("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      port = std::atoi(next("--port"));
    } else if (std::strcmp(argv[i], "--replay") == 0) {
      replay_path = next("--replay");
    } else if (std::strcmp(argv[i], "--script") == 0) {
      script_path = next("--script");
    } else {
      std::fprintf(stderr,
                   "usage: bagctl --port N [--host ADDR] "
                   "(--replay FILE | --script FILE | -)\n");
      return 2;
    }
  }
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "bagctl: --port is required (1..65535)\n");
    return 2;
  }

  if (!replay_path.empty()) {
    std::ifstream in(replay_path);
    if (!in) {
      std::fprintf(stderr, "bagctl: cannot read %s\n", replay_path.c_str());
      return 1;
    }
    std::stringstream text;
    text << in.rdbuf();
    auto replayed = bagc::ReplayTranscript(host, static_cast<uint16_t>(port),
                                           text.str());
    if (!replayed.ok()) return Fail(replayed.status());
    std::printf("bagctl: replayed %zu transcript block(s) verbatim\n", *replayed);
    return 0;
  }

  if (script_path.empty() || script_path == "-") {
    return RunScript(host, static_cast<uint16_t>(port), std::cin);
  }
  std::ifstream in(script_path);
  if (!in) {
    std::fprintf(stderr, "bagctl: cannot read %s\n", script_path.c_str());
    return 1;
  }
  return RunScript(host, static_cast<uint16_t>(port), in);
}
