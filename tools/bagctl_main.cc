// bagctl: command-line client for a running bagcd server, plus local
// segment tooling.
//
// Usage:
//   bagctl --port N [--host ADDR] --replay FILE
//   bagctl --port N [--host ADDR] [--attach NAME] [--script FILE]
//   bagctl --export-seg OUT --collection FILE [--names a,b,...]
//
//   --replay FILE  replay a C:/S: transcript (a raw transcript, or a
//                  markdown file with ```transcript fences such as
//                  docs/PROTOCOL.md) and fail on the first divergence —
//                  the CI conformance check for the live server. A
//                  mismatch prints a line-numbered diff and exits 1.
//   --script FILE  send the file's protocol lines (stdin when omitted or
//                  "-") and print every response line; body lines of
//                  DICT/LOAD/LOADU32 are forwarded transparently. A
//                  trailing QUIT is appended when the script has none.
//   --attach NAME  bind the session to the named server collection
//                  before the first script line (sends "ATTACH NAME";
//                  see docs/PROTOCOL.md) — so existing scripts run
//                  against any tenant unchanged
//   --export-seg OUT --collection FILE
//                  local (no server): parse the bag IO collection in
//                  FILE, intern every value, and write it as an
//                  mmap-able sealed-bag segment (docs/SEGMENT.md) to
//                  OUT, ready for LOADSEG. Bags are named bag0, bag1,
//                  ... in file order unless --names overrides them.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bag/bag_io.h"
#include "server/client.h"
#include "server/protocol.h"
#include "tuple/segment.h"

namespace {

int Fail(const bagc::Status& status) {
  std::fprintf(stderr, "bagctl: %s\n", status.ToString().c_str());
  return 1;
}

int RunScript(const std::string& host, uint16_t port,
              const std::string& attach, std::istream& in) {
  auto client = bagc::BagcdClient::Connect(host, port);
  if (!client.ok()) return Fail(client.status());
  std::printf("%s\n", client->banner().c_str());
  if (!attach.empty()) {
    if (!client->SendLine("ATTACH " + attach).ok()) return 1;
    auto bound = client->ReadLine();
    if (!bound.ok()) return Fail(bound.status());
    std::printf("%s\n", bound->c_str());
    if (bound->rfind("OK ", 0) != 0) return 1;
  }
  bool quit_sent = false;
  bool in_body = false;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (in_body) {
      // Body lines flow through without a response; END closes the body
      // and the next server line is its response.
      if (!client->SendLine(line).ok()) return 1;
      if (bagc::WireStrip(line) != bagc::kWireEnd) continue;
      in_body = false;
    } else {
      std::vector<std::string> tokens = bagc::WireTokens(line);
      if (tokens.empty()) continue;
      if (!client->SendLine(line).ok()) return 1;
      if (bagc::WireCommandHasBody(tokens[0])) {
        in_body = true;
        continue;
      }
      quit_sent = tokens[0] == "QUIT" || tokens[0] == "SHUTDOWN";
    }
    // Read the complete response for the command just finished.
    auto first = client->ReadLine();
    if (!first.ok()) return Fail(first.status());
    std::printf("%s\n", first->c_str());
    if (bagc::WireResponseHasBody(*first)) {
      while (true) {
        auto next = client->ReadLine();
        if (!next.ok()) return Fail(next.status());
        std::printf("%s\n", next->c_str());
        if (*next == bagc::kWireEnd) break;
      }
    }
    if (quit_sent) return 0;
  }
  if (in_body) {
    // A QUIT here would be swallowed as a body line and both sides would
    // wait on each other forever.
    std::fprintf(stderr,
                 "bagctl: script ended inside a DICT/LOAD/LOADU32 body "
                 "(missing END)\n");
    return 1;
  }
  if (!quit_sent) {
    if (!client->SendLine("QUIT").ok()) return 1;
    auto bye = client->ReadLine();
    if (!bye.ok()) return Fail(bye.status());
    std::printf("%s\n", bye->c_str());
  }
  return 0;
}

int ExportSegment(const std::string& out_path, const std::string& collection_path,
                  const std::string& names_csv) {
  std::ifstream in(collection_path);
  if (!in) {
    std::fprintf(stderr, "bagctl: cannot read %s\n", collection_path.c_str());
    return 1;
  }
  std::stringstream text;
  text << in.rdbuf();
  bagc::AttributeCatalog catalog;
  bagc::DictionarySet dicts;
  auto bags = bagc::ParseCollection(text.str(), &catalog, &dicts);
  if (!bags.ok()) return Fail(bags.status());
  std::vector<std::string> names;
  if (!names_csv.empty()) {
    std::string current;
    for (char c : names_csv + ",") {
      if (c == ',') {
        if (!current.empty()) names.push_back(current);
        current.clear();
      } else {
        current += c;
      }
    }
    if (names.size() != bags->size()) {
      std::fprintf(stderr, "bagctl: --names lists %zu names for %zu bags\n",
                   names.size(), bags->size());
      return 1;
    }
  } else {
    for (size_t i = 0; i < bags->size(); ++i) {
      names.push_back("bag" + std::to_string(i));
    }
  }
  bagc::Status written =
      bagc::WriteSegmentFile(out_path, names, *bags, catalog, dicts);
  if (!written.ok()) return Fail(written);
  size_t rows = 0;
  for (const bagc::Bag& bag : *bags) rows += bag.SupportSize();
  std::printf("bagctl: wrote %zu bag(s), %zu support row(s) to %s\n",
              bags->size(), rows, out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string replay_path;
  std::string script_path;
  std::string export_path;
  std::string collection_path;
  std::string names_csv;
  std::string attach_name;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bagctl: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      host = next("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      port = std::atoi(next("--port"));
    } else if (std::strcmp(argv[i], "--replay") == 0) {
      replay_path = next("--replay");
    } else if (std::strcmp(argv[i], "--script") == 0) {
      script_path = next("--script");
    } else if (std::strcmp(argv[i], "--export-seg") == 0) {
      export_path = next("--export-seg");
    } else if (std::strcmp(argv[i], "--collection") == 0) {
      collection_path = next("--collection");
    } else if (std::strcmp(argv[i], "--names") == 0) {
      names_csv = next("--names");
    } else if (std::strcmp(argv[i], "--attach") == 0) {
      attach_name = next("--attach");
    } else {
      std::fprintf(stderr,
                   "usage: bagctl --port N [--host ADDR] [--attach NAME] "
                   "(--replay FILE | --script FILE | -)\n"
                   "       bagctl --export-seg OUT --collection FILE "
                   "[--names a,b,...]\n");
      return 2;
    }
  }

  if (!export_path.empty()) {
    if (collection_path.empty()) {
      std::fprintf(stderr, "bagctl: --export-seg needs --collection FILE\n");
      return 2;
    }
    return ExportSegment(export_path, collection_path, names_csv);
  }

  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "bagctl: --port is required (1..65535)\n");
    return 2;
  }

  if (!replay_path.empty()) {
    std::ifstream in(replay_path);
    if (!in) {
      std::fprintf(stderr, "bagctl: cannot read %s\n", replay_path.c_str());
      return 1;
    }
    std::stringstream text;
    text << in.rdbuf();
    auto replayed = bagc::ReplayTranscript(host, static_cast<uint16_t>(port),
                                           text.str());
    if (!replayed.ok()) return Fail(replayed.status());
    std::printf("bagctl: replayed %zu transcript block(s) verbatim\n", *replayed);
    return 0;
  }

  if (script_path.empty() || script_path == "-") {
    return RunScript(host, static_cast<uint16_t>(port), attach_name, std::cin);
  }
  std::ifstream in(script_path);
  if (!in) {
    std::fprintf(stderr, "bagctl: cannot read %s\n", script_path.c_str());
    return 1;
  }
  return RunScript(host, static_cast<uint16_t>(port), attach_name, in);
}
