// bagcd: the long-lived bag-consistency daemon. Binds a TCP listener,
// serves the session protocol of docs/PROTOCOL.md (one ServerSession per
// connection, one shared engine snapshot per SEAL generation), and exits
// cleanly on SIGINT/SIGTERM or a SHUTDOWN command.
//
// Usage:
//   bagcd [--host ADDR] [--port N] [--threads N] [--port-file PATH]
//         [--preload-seg PATH] [--mem-budget-mb N] [--max-collections N]
//         [--max-collection-mb N]
//
//   --host ADDR        bind address (default 127.0.0.1)
//   --port N           TCP port; 0 picks an ephemeral port (default 0)
//   --threads N        query-evaluation pool workers; 0 = inline (default 0)
//   --port-file PATH   write the bound port to PATH once listening — the
//                      race-free way for a harness to find an ephemeral
//                      port (written atomically via rename)
//   --preload-seg PATH mmap the sealed-bag segment at PATH (see
//                      docs/SEGMENT.md), seal it, and publish it as the
//                      "default" collection's snapshot before accepting
//                      queries — a daemon that restarts warm without any
//                      client re-streaming rows
//   --mem-budget-mb N  global budget for resident sealed snapshots; the
//                      coldest collections are evicted past it and lazily
//                      reloaded from their segments on the next query
//                      (0 = unlimited, default)
//   --max-collections N  admission cap on named collections, counting
//                      "default" (0 = unlimited, default)
//   --max-collection-mb N  per-collection ceiling on one sealed
//                      snapshot's size; larger SEALs answer E_RANGE
//                      (0 = unlimited, default)
//   --columnar-min-rows N  minimum support rows before a sealed bag
//                      drops its row vector for the columnar-only
//                      serving form (0 = engine default, currently 32);
//                      applies to every SEAL and lazy segment reload
//   --wal-dir PATH     per-collection delta WAL directory (docs/WAL.md):
//                      every committed INSERT/DELETE/COMMIT on a
//                      segment-based collection appends one fdatasynced
//                      record, and on startup (with --preload-seg) the
//                      log is replayed over the base segment so
//                      committed generations survive a crash or restart
//   --simd LEVEL       force the SIMD dispatch level for every kernel
//                      in the process: scalar, sse4.2, avx2, neon, or
//                      auto (default; runtime cpuid). Levels the host
//                      cannot run are refused at startup
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>

#include "server/bagcd_server.h"
#include "server/session.h"
#include "util/simd.h"

namespace {

std::atomic<bool> g_signalled{false};

void OnSignal(int) { g_signalled.store(true); }

}  // namespace

int main(int argc, char** argv) {
  bagc::BagcdServerOptions options;
  std::string port_file;
  std::string preload_seg;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bagcd: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    // Reject (never truncate or wrap) out-of-range numeric flags: a port
    // of 99999 silently binding 34463 sends every client elsewhere.
    auto next_number = [&](const char* flag, long min, long max) -> long {
      const char* text = next(flag);
      char* rest = nullptr;
      long value = std::strtol(text, &rest, 10);
      if (rest == text || *rest != '\0' || value < min || value > max) {
        std::fprintf(stderr, "bagcd: %s must be an integer in [%ld, %ld], got '%s'\n",
                     flag, min, max, text);
        std::exit(2);
      }
      return value;
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      options.host = next("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      options.port = static_cast<uint16_t>(next_number("--port", 0, 65535));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      options.query_threads =
          static_cast<size_t>(next_number("--threads", 0, 1024));
    } else if (std::strcmp(argv[i], "--port-file") == 0) {
      port_file = next("--port-file");
    } else if (std::strcmp(argv[i], "--preload-seg") == 0) {
      preload_seg = next("--preload-seg");
    } else if (std::strcmp(argv[i], "--mem-budget-mb") == 0) {
      options.registry.mem_budget_bytes =
          static_cast<size_t>(next_number("--mem-budget-mb", 0, 1 << 20)) << 20;
    } else if (std::strcmp(argv[i], "--max-collections") == 0) {
      options.registry.max_collections =
          static_cast<size_t>(next_number("--max-collections", 0, 1 << 20));
    } else if (std::strcmp(argv[i], "--max-collection-mb") == 0) {
      options.registry.max_collection_bytes =
          static_cast<size_t>(next_number("--max-collection-mb", 0, 1 << 20))
          << 20;
    } else if (std::strcmp(argv[i], "--columnar-min-rows") == 0) {
      options.registry.columnar_min_rows = static_cast<size_t>(
          next_number("--columnar-min-rows", 0, 1L << 40));
    } else if (std::strcmp(argv[i], "--wal-dir") == 0) {
      options.registry.wal_dir = next("--wal-dir");
    } else if (std::strcmp(argv[i], "--simd") == 0) {
      const char* name = next("--simd");
      bagc::simd::SimdLevel level;
      if (!bagc::simd::ParseSimdLevel(name, &level)) {
        std::fprintf(stderr,
                     "bagcd: --simd must be scalar, sse4.2, avx2, neon, or "
                     "auto, got '%s'\n",
                     name);
        return 2;
      }
      if (level != bagc::simd::SimdLevel::kAuto &&
          !bagc::simd::LevelSupported(level)) {
        std::fprintf(stderr, "bagcd: this host cannot execute --simd %s\n",
                     bagc::simd::SimdLevelName(level));
        return 2;
      }
      // Process-wide default: every kAuto kernel call in every session
      // and seal resolves to this level.
      bagc::simd::SetActiveSimdLevel(level);
    } else {
      std::fprintf(stderr,
                   "usage: bagcd [--host ADDR] [--port N] [--threads N] "
                   "[--port-file PATH] [--preload-seg PATH] "
                   "[--mem-budget-mb N] [--max-collections N] "
                   "[--max-collection-mb N] [--columnar-min-rows N] "
                   "[--wal-dir PATH] [--simd LEVEL]\n");
      return 2;
    }
  }

  auto server = bagc::BagcdServer::Start(options);
  if (!server.ok()) {
    std::fprintf(stderr, "bagcd: %s\n", server.status().ToString().c_str());
    return 1;
  }
  if (!preload_seg.empty()) {
    // An internal session loads and seals the segment exactly as a
    // client's "LOADSEG <path>" + "SEAL" would, so the published
    // snapshot is indistinguishable from a client-streamed one. The
    // port file is written after this, so harnesses that wait for it
    // never race a half-warm daemon. Recovery mode keeps this internal
    // SEAL from resetting the WAL the replay below folds in.
    (*server)->registry().SetRecoveryMode(true);
    bagc::ServerSession session(&(*server)->registry(), nullptr);
    std::vector<std::string> responses =
        session.HandleScript("LOADSEG " + preload_seg + "\nSEAL\n");
    for (const std::string& response : responses) {
      if (response.rfind("OK", 0) != 0) {
        std::fprintf(stderr, "bagcd: --preload-seg failed: %s\n",
                     response.c_str());
        return 1;
      }
    }
    std::printf("bagcd: preloaded %s\n", preload_seg.c_str());
    auto replayed = (*server)->registry().ReplayWal(
        (*server)->registry().Default().get());
    if (!replayed.ok()) {
      // A WAL that cannot replay (fingerprint mismatch, mid-file
      // corruption) must stop the daemon: serving the bare base would
      // silently roll back committed generations.
      std::fprintf(stderr, "bagcd: WAL recovery failed: %s\n",
                   replayed.status().ToString().c_str());
      return 1;
    }
    (*server)->registry().SetRecoveryMode(false);
    if (*replayed > 0) {
      std::printf("bagcd: replayed %llu WAL generation(s)\n",
                  static_cast<unsigned long long>(*replayed));
    }
  }
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  // Belt and braces on top of MSG_NOSIGNAL in the transport: no stray
  // write to a dead peer may ever take the daemon down.
  std::signal(SIGPIPE, SIG_IGN);
  std::printf("bagcd listening on %s:%u\n", options.host.c_str(),
              static_cast<unsigned>((*server)->port()));
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::string tmp = port_file + ".tmp";
    {
      std::ofstream out(tmp);
      out << (*server)->port() << "\n";
    }
    if (std::rename(tmp.c_str(), port_file.c_str()) != 0) {
      std::fprintf(stderr, "bagcd: cannot write port file %s\n", port_file.c_str());
      return 1;
    }
  }

  // Wait for a shutdown from either direction: a protocol SHUTDOWN flags
  // the server itself; a signal flags g_signalled (handlers can't touch
  // condition variables, so poll it at a human-invisible cadence).
  std::thread signal_watch([&] {
    while (!g_signalled.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    (*server)->RequestShutdown();
  });
  (*server)->Wait();
  g_signalled.store(true);  // let the watcher exit when SHUTDOWN won the race
  signal_watch.join();
  std::printf("bagcd: clean shutdown\n");
  return 0;
}
