// The set-semantics baseline (paper §5.1): consistency of relations. For
// relations, the join is always the largest witness, so global consistency
// for a *fixed* schema is polynomial (compute the join, project back) —
// the sharp contrast with bags that Theorem 4 establishes.
// Also includes the Yannakakis semijoin full reducer for acyclic schemas.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "bag/relation.h"
#include "util/result.h"

namespace bagc {

/// Two relations are consistent iff their projections on the shared
/// attributes coincide (then R ⋈ S is the largest witness).
Result<bool> AreConsistentRelations(const Relation& r, const Relation& s);

/// Pairwise consistency of a relation collection.
Result<bool> ArePairwiseConsistentRelations(
    const std::vector<Relation>& relations,
    std::pair<size_t, size_t>* witness_pair = nullptr);

/// Global consistency via the classical criterion: J = R1 ⋈ ... ⋈ Rm and
/// J[Xi] == Ri for all i. Returns the join witness when consistent.
/// Polynomial for every fixed schema (the join size is |R|^m).
Result<std::optional<Relation>> SolveGlobalConsistencyRelations(
    const std::vector<Relation>& relations);

/// Yannakakis full reducer for acyclic schemas: semijoin passes down and up
/// a join tree until every relation contains exactly the tuples that
/// participate in the global join. Fails when the schema is cyclic.
Result<std::vector<Relation>> FullReduce(const std::vector<Relation>& relations);

/// Acyclic-schema global consistency for relations: globally consistent
/// iff the full reducer changes nothing (no dangling tuples). Linear
/// number of semijoins. Fails when the schema is cyclic.
Result<bool> IsGloballyConsistentAcyclicRelations(
    const std::vector<Relation>& relations);

/// Yannakakis' algorithm: the full join of an acyclic collection, computed
/// by full reduction followed by joins up the join tree — after reduction
/// every intermediate result embeds into the final join, so unlike a
/// naive fold the intermediates never exceed the output. Fails when the
/// schema is cyclic.
Result<Relation> JoinAcyclic(const std::vector<Relation>& relations);

}  // namespace bagc
