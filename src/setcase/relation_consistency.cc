#include "setcase/relation_consistency.h"

#include <algorithm>

#include "hypergraph/acyclicity.h"
#include "hypergraph/hypergraph.h"

namespace bagc {

Result<bool> AreConsistentRelations(const Relation& r, const Relation& s) {
  Schema z = Schema::Intersect(r.schema(), s.schema());
  BAGC_ASSIGN_OR_RETURN(Relation rz, r.Project(z));
  BAGC_ASSIGN_OR_RETURN(Relation sz, s.Project(z));
  return rz == sz;
}

Result<bool> ArePairwiseConsistentRelations(const std::vector<Relation>& relations,
                                            std::pair<size_t, size_t>* witness_pair) {
  for (size_t i = 0; i < relations.size(); ++i) {
    for (size_t j = i + 1; j < relations.size(); ++j) {
      BAGC_ASSIGN_OR_RETURN(bool ok,
                            AreConsistentRelations(relations[i], relations[j]));
      if (!ok) {
        if (witness_pair != nullptr) *witness_pair = {i, j};
        return false;
      }
    }
  }
  return true;
}

Result<std::optional<Relation>> SolveGlobalConsistencyRelations(
    const std::vector<Relation>& relations) {
  if (relations.empty()) {
    return Status::InvalidArgument("empty relation collection");
  }
  BAGC_ASSIGN_OR_RETURN(Relation join, Relation::JoinAll(relations));
  for (const Relation& r : relations) {
    BAGC_ASSIGN_OR_RETURN(Relation back, join.Project(r.schema()));
    if (back != r) return std::optional<Relation>();
  }
  return std::optional<Relation>(std::move(join));
}

namespace {

struct ReducerSetup {
  Hypergraph hypergraph;
  // canonical edge index -> indices of relations with that schema
  std::vector<std::vector<size_t>> holders;
  // Per canonical edge, the intersection of its holders' relations.
  std::vector<Relation> merged;
};

Result<ReducerSetup> Setup(const std::vector<Relation>& relations) {
  if (relations.empty()) {
    return Status::InvalidArgument("empty relation collection");
  }
  ReducerSetup setup;
  std::vector<Schema> schemas;
  schemas.reserve(relations.size());
  for (const Relation& r : relations) {
    if (r.schema().empty()) {
      return Status::InvalidArgument("relation over the empty schema");
    }
    schemas.push_back(r.schema());
  }
  BAGC_ASSIGN_OR_RETURN(setup.hypergraph, Hypergraph::FromEdges(schemas));
  const std::vector<Schema>& edges = setup.hypergraph.edges();
  setup.holders.resize(edges.size());
  setup.merged.resize(edges.size());
  for (size_t e = 0; e < edges.size(); ++e) {
    Relation acc(edges[e]);
    bool first = true;
    for (size_t i = 0; i < relations.size(); ++i) {
      if (relations[i].schema() != edges[e]) continue;
      setup.holders[e].push_back(i);
      if (first) {
        acc = relations[i];
        first = false;
      } else {
        // Same-schema semijoin is intersection.
        BAGC_ASSIGN_OR_RETURN(acc, Relation::Semijoin(acc, relations[i]));
      }
    }
    setup.merged[e] = std::move(acc);
  }
  return setup;
}

}  // namespace

Result<std::vector<Relation>> FullReduce(const std::vector<Relation>& relations) {
  BAGC_ASSIGN_OR_RETURN(ReducerSetup setup, Setup(relations));
  BAGC_ASSIGN_OR_RETURN(JoinTree jt, BuildJoinTree(setup.hypergraph));
  size_t m = jt.nodes.size();
  std::vector<std::vector<size_t>> adj(m);
  for (const auto& [i, j] : jt.tree_edges) {
    adj[i].push_back(j);
    adj[j].push_back(i);
  }
  // BFS order from node 0; parents precede children.
  std::vector<size_t> order;
  std::vector<size_t> parent(m, m);
  {
    std::vector<bool> seen(m, false);
    std::vector<size_t> queue = {0};
    seen[0] = true;
    for (size_t qi = 0; qi < queue.size(); ++qi) {
      size_t v = queue[qi];
      order.push_back(v);
      for (size_t u : adj[v]) {
        if (!seen[u]) {
          seen[u] = true;
          parent[u] = v;
          queue.push_back(u);
        }
      }
    }
  }
  std::vector<Relation>& rel = setup.merged;
  // Upward pass: leaves to root, parent ⋉= child.
  for (size_t k = order.size(); k-- > 1;) {
    size_t v = order[k];
    BAGC_ASSIGN_OR_RETURN(rel[parent[v]],
                          Relation::Semijoin(rel[parent[v]], rel[v]));
  }
  // Downward pass: root to leaves, child ⋉= parent.
  for (size_t k = 1; k < order.size(); ++k) {
    size_t v = order[k];
    BAGC_ASSIGN_OR_RETURN(rel[v], Relation::Semijoin(rel[v], rel[parent[v]]));
  }
  // Scatter back to the input positions.
  std::vector<Relation> out(relations.size());
  for (size_t e = 0; e < m; ++e) {
    for (size_t i : setup.holders[e]) out[i] = rel[e];
  }
  return out;
}

Result<bool> IsGloballyConsistentAcyclicRelations(
    const std::vector<Relation>& relations) {
  BAGC_ASSIGN_OR_RETURN(std::vector<Relation> reduced, FullReduce(relations));
  for (size_t i = 0; i < relations.size(); ++i) {
    if (reduced[i] != relations[i]) return false;
  }
  return true;
}

Result<Relation> JoinAcyclic(const std::vector<Relation>& relations) {
  BAGC_ASSIGN_OR_RETURN(std::vector<Relation> reduced, FullReduce(relations));
  // Deduplicate to the canonical edges (FullReduce already intersected
  // same-schema relations, so one representative per schema suffices).
  std::vector<Relation> unique;
  for (const Relation& r : reduced) {
    bool seen = false;
    for (const Relation& u : unique) {
      if (u.schema() == r.schema()) {
        seen = true;
        break;
      }
    }
    if (!seen) unique.push_back(r);
  }
  std::vector<Schema> schemas;
  schemas.reserve(unique.size());
  for (const Relation& r : unique) schemas.push_back(r.schema());
  BAGC_ASSIGN_OR_RETURN(Hypergraph h, Hypergraph::FromEdges(schemas));
  BAGC_ASSIGN_OR_RETURN(std::vector<size_t> order, RunningIntersectionOrder(h));
  // Joining in RIP order keeps every intermediate connected to the
  // processed prefix; after full reduction no dangling tuples remain, so
  // intermediates embed into the final join.
  const std::vector<Schema>& edges = h.edges();
  auto relation_for = [&](const Schema& e) -> const Relation* {
    for (const Relation& r : unique) {
      if (r.schema() == e) return &r;
    }
    return nullptr;
  };
  const Relation* first = relation_for(edges[order[0]]);
  if (first == nullptr) return Status::Internal("edge without relation");
  Relation acc = *first;
  for (size_t i = 1; i < order.size(); ++i) {
    const Relation* next = relation_for(edges[order[i]]);
    if (next == nullptr) return Status::Internal("edge without relation");
    BAGC_ASSIGN_OR_RETURN(acc, Relation::Join(acc, *next));
  }
  return acc;
}

}  // namespace bagc
