// Diagnostic front-end: one call that analyzes a collection the way the
// paper's results say it should be analyzed — structure first (acyclic or
// not, and if not, why: the Lemma 3 obstruction), then local consistency
// (which pair fails), then global consistency via the appropriate side of
// the Theorem 4 dichotomy. This is the API an application (or bagc_cli)
// uses when it wants an explanation rather than a bit.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/collection.h"
#include "core/global.h"
#include "hypergraph/safe_deletion.h"
#include "util/result.h"

namespace bagc {

/// \brief Everything bagc can say about one collection.
struct ConsistencyReport {
  // ---- structure ----
  bool acyclic = false;
  /// For cyclic schemas: the minimal obstruction (Cn or Hn core).
  std::optional<Obstruction> obstruction;

  // ---- local consistency ----
  bool pairwise_consistent = false;
  /// First failing pair when not pairwise consistent.
  std::optional<std::pair<size_t, size_t>> failing_pair;

  // ---- global consistency ----
  /// Whether the exact decision completed (the cyclic side can exhaust
  /// its search budget; then this is false and `global_*` is unset).
  bool global_decided = false;
  bool globally_consistent = false;
  std::optional<Bag> witness;

  // ---- witness statistics (when a witness exists) ----
  size_t witness_support = 0;
  uint64_t witness_max_multiplicity = 0;
  /// Theorem 6 bound Σ ||Ri||supp (acyclic) for context.
  uint64_t support_bound = 0;

  /// Multi-line human-readable rendering.
  std::string ToString(const AttributeCatalog& catalog) const;
};

/// Analyzes `collection` end-to-end. Never fails on inconsistent input —
/// inconsistency is a *finding*; only internal errors (overflow, budget
/// exhaustion on the NP side) surface as non-OK Status via
/// `global_decided == false` plus the returned report.
Result<ConsistencyReport> AnalyzeCollection(const BagCollection& collection,
                                            const GlobalSolveOptions& options = {});

}  // namespace bagc
