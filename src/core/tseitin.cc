#include "core/tseitin.h"

#include "util/checked_math.h"

namespace bagc {

namespace {

// Appends to `bag` all tuples t: X -> {0..d-1} whose value sum is congruent
// to `target` mod d, with multiplicity 1.
Status FillCongruenceBag(const Schema& x, size_t d, size_t target, Bag* bag) {
  std::vector<Value> values(x.arity(), 0);
  // Odometer enumeration of {0..d-1}^arity.
  while (true) {
    uint64_t sum = 0;
    for (Value v : values) sum += static_cast<uint64_t>(v);
    if (sum % d == target) {
      BAGC_RETURN_NOT_OK(bag->Set(Tuple{values}, 1));
    }
    size_t pos = 0;
    while (pos < values.size()) {
      if (static_cast<size_t>(++values[pos]) < d) break;
      values[pos] = 0;
      ++pos;
    }
    if (pos == values.size()) break;
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<Bag>> MakeTseitinCollection(const Hypergraph& h) {
  auto k = h.UniformityDegree();
  auto d = h.RegularityDegree();
  if (!k.has_value() || !d.has_value()) {
    return Status::InvalidArgument(
        "Tseitin construction needs a k-uniform, d-regular hypergraph");
  }
  if (*d < 2) {
    return Status::InvalidArgument("Tseitin construction needs regularity d >= 2");
  }
  if (h.num_edges() < 2) {
    return Status::InvalidArgument("Tseitin construction needs at least 2 edges");
  }
  std::vector<Bag> bags;
  bags.reserve(h.num_edges());
  for (size_t i = 0; i < h.num_edges(); ++i) {
    Bag bag(h.edges()[i]);
    size_t target = (i + 1 == h.num_edges()) ? 1 : 0;
    BAGC_RETURN_NOT_OK(FillCongruenceBag(h.edges()[i], *d, target, &bag));
    bags.push_back(std::move(bag));
  }
  return bags;
}

uint64_t TseitinMarginalMultiplicity(size_t d, size_t k, size_t shared_arity) {
  // d^(k - shared_arity - 1); callers guarantee shared_arity < k.
  uint64_t result = 1;
  for (size_t i = shared_arity + 1; i < k; ++i) {
    result = SaturatingMul(result, d);
  }
  return result;
}

}  // namespace bagc
