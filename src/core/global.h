// Global consistency of bag collections (paper §4-§5).
//
//   - Acyclic schemas: the polynomial Theorem 6 algorithm — join tree,
//     running-intersection listing, then a left fold of minimal two-bag
//     witnesses. Output support size <= Σ ||Ri||supp.
//   - Arbitrary schemas: the exact NP decision procedure — build
//     P(R1..Rm) and search for an integral solution (Corollary 3 bounds
//     guarantee a small witness exists when any does).
//   - IsGloballyConsistent dispatches: acyclic => pairwise test
//     (Theorem 2), cyclic => exact search.
#pragma once

#include <optional>

#include "core/collection.h"
#include "solver/integer_feasibility.h"
#include "util/result.h"

namespace bagc {

/// Tuning for the exact (cyclic-schema) path.
struct GlobalSolveOptions {
  /// Cap on |R'1 ⋈ ... ⋈ R'm| when materializing P(R1..Rm).
  size_t max_join_support = 1u << 22;
  /// Search budget for the integer-feasibility DFS.
  SolveOptions search;
};

/// Tuning for the acyclic path.
struct AcyclicSolveOptions {
  /// Fold with *minimal* two-bag witnesses (Corollary 4). This is what
  /// gives the Theorem 6 support bound; switching it off uses the plain
  /// max-flow witness at each step (faster per step, larger intermediate
  /// supports) — exposed for the ablation benchmark.
  bool minimal_fold = true;
};

/// Theorem 6: polynomial algorithm for acyclic schemas. Fails with
/// FailedPrecondition when the schema hypergraph is cyclic. Returns nullopt
/// when the collection is not globally consistent (equivalently, by
/// Theorem 2, not pairwise consistent). With minimal_fold (the default)
/// the returned witness satisfies ||W||supp <= Σ ||Ri||supp; either way
/// ||W||mu <= max ||Ri||mu.
Result<std::optional<Bag>> SolveGlobalConsistencyAcyclic(
    const BagCollection& collection, const AcyclicSolveOptions& options = {});

/// Exact decision for arbitrary schemas via integer feasibility of
/// P(R1..Rm). Exponential worst case (Theorem 4(2): NP-complete for every
/// fixed cyclic schema).
Result<std::optional<Bag>> SolveGlobalConsistencyExact(
    const BagCollection& collection, const GlobalSolveOptions& options = {});

/// Decides global consistency, dispatching on schema acyclicity.
Result<bool> IsGloballyConsistent(const BagCollection& collection,
                                  const GlobalSolveOptions& options = {});

/// Greedily prunes the support of a verified witness until it is a
/// *minimal* witness (no witness has strictly smaller support), using
/// restricted-support exact feasibility tests. Exponential worst case;
/// used to validate the Theorem 3(3) Carathéodory bound
/// ||W||supp <= Σ ||Ri||_b on small instances.
Result<Bag> MinimizeWitnessSupport(const BagCollection& collection,
                                   const Bag& witness,
                                   const GlobalSolveOptions& options = {});

}  // namespace bagc
