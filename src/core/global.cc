#include "core/global.h"

#include <algorithm>

#include "core/pairwise.h"
#include "core/two_bag.h"
#include "hypergraph/acyclicity.h"
#include "solver/lp.h"

namespace bagc {

Result<std::optional<Bag>> SolveGlobalConsistencyAcyclic(
    const BagCollection& collection, const AcyclicSolveOptions& options) {
  const Hypergraph& h = collection.hypergraph();
  BAGC_ASSIGN_OR_RETURN(std::vector<size_t> rip_order, RunningIntersectionOrder(h));

  // Pairwise-consistency prefilter (by Theorem 2, for acyclic schemas this
  // already decides global consistency).
  BAGC_ASSIGN_OR_RETURN(bool pairwise, ArePairwiseConsistent(collection));
  if (!pairwise) return std::optional<Bag>();

  // The hypergraph's canonical edges may merge duplicate schemas; map each
  // edge to the bags carrying it. Pairwise-consistent bags with the same
  // schema are *equal* (consistency on the full shared schema), so any
  // representative works.
  const std::vector<Schema>& edges = h.edges();
  std::vector<const Bag*> edge_bag(edges.size(), nullptr);
  for (const Bag& b : collection.bags()) {
    for (size_t e = 0; e < edges.size(); ++e) {
      if (edges[e] == b.schema()) {
        edge_bag[e] = &b;
        break;
      }
    }
  }
  for (const Bag* p : edge_bag) {
    if (p == nullptr) return Status::Internal("edge without a bag");
  }

  // Theorem 6: fold minimal two-bag witnesses along the RIP listing.
  Bag acc = *edge_bag[rip_order[0]];
  for (size_t i = 1; i < rip_order.size(); ++i) {
    const Bag& next = *edge_bag[rip_order[i]];
    BAGC_ASSIGN_OR_RETURN(std::optional<Bag> ti,
                          options.minimal_fold ? FindMinimalWitness(acc, next)
                                               : FindWitness(acc, next));
    if (!ti.has_value()) {
      // Step 1 of Theorem 2 proves this cannot happen for pairwise
      // consistent bags along a RIP listing.
      return Status::Internal(
          "pairwise consistent acyclic collection hit an inconsistent fold step");
    }
    acc = std::move(*ti);
  }
  return std::optional<Bag>(std::move(acc));
}

Result<std::optional<Bag>> SolveGlobalConsistencyExact(
    const BagCollection& collection, const GlobalSolveOptions& options) {
  // Pairwise consistency is necessary; it is also a cheap filter before
  // the exponential search.
  BAGC_ASSIGN_OR_RETURN(bool pairwise, ArePairwiseConsistent(collection));
  if (!pairwise) return std::optional<Bag>();
  BAGC_ASSIGN_OR_RETURN(
      ConsistencyLp lp,
      BuildConsistencyLp(collection.bags(), options.max_join_support));
  BAGC_ASSIGN_OR_RETURN(auto solution,
                        SolveIntegerFeasibility(lp, options.search));
  if (!solution.has_value()) return std::optional<Bag>();
  BagBuilder builder(lp.joined_schema);
  for (size_t i = 0; i < lp.variables.size(); ++i) {
    if ((*solution)[i] > 0) {
      BAGC_RETURN_NOT_OK(builder.Add(lp.variables[i], (*solution)[i]));
    }
  }
  BAGC_ASSIGN_OR_RETURN(Bag witness, builder.Build());
  return std::optional<Bag>(std::move(witness));
}

Result<bool> IsGloballyConsistent(const BagCollection& collection,
                                  const GlobalSolveOptions& options) {
  if (IsAcyclic(collection.hypergraph())) {
    // Theorem 2: local-to-global holds, so pairwise consistency decides.
    return ArePairwiseConsistent(collection);
  }
  BAGC_ASSIGN_OR_RETURN(std::optional<Bag> witness,
                        SolveGlobalConsistencyExact(collection, options));
  return witness.has_value();
}

Result<Bag> MinimizeWitnessSupport(const BagCollection& collection,
                                   const Bag& witness,
                                   const GlobalSolveOptions& options) {
  BAGC_ASSIGN_OR_RETURN(bool is_witness, collection.IsWitness(witness));
  if (!is_witness) {
    return Status::InvalidArgument("MinimizeWitnessSupport: not a witness");
  }
  std::vector<Tuple> support;
  support.reserve(witness.SupportSize());
  for (const auto& [t, mult] : witness.entries()) {
    (void)mult;
    support.push_back(t);
  }
  // Greedy: try dropping each support tuple; keep the drop when the
  // restricted program stays feasible.
  std::vector<uint64_t> current;  // solution aligned with `support`
  {
    BAGC_ASSIGN_OR_RETURN(ConsistencyLp lp,
                          BuildLpWithVariables(collection.bags(), support));
    current.resize(lp.variables.size());
    // BuildLpWithVariables sorts variables; keep support aligned.
    support = lp.variables;
    for (size_t i = 0; i < support.size(); ++i) {
      current[i] = witness.Multiplicity(support[i]);
    }
  }
  size_t i = 0;
  while (i < support.size()) {
    std::vector<Tuple> reduced = support;
    reduced.erase(reduced.begin() + i);
    BAGC_ASSIGN_OR_RETURN(ConsistencyLp lp,
                          BuildLpWithVariables(collection.bags(), reduced));
    BAGC_ASSIGN_OR_RETURN(auto solution,
                          SolveIntegerFeasibility(lp, options.search));
    if (solution.has_value()) {
      support = lp.variables;
      current = *solution;
      // Restart scanning: feasibility over a smaller support can change
      // which further deletions are possible.
      i = 0;
    } else {
      ++i;
    }
  }
  BagBuilder builder(witness.schema());
  for (size_t k = 0; k < support.size(); ++k) {
    if (current[k] > 0) {
      BAGC_RETURN_NOT_OK(builder.Add(support[k], current[k]));
    }
  }
  return builder.Build();
}

}  // namespace bagc
