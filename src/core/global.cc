#include "core/global.h"

#include <algorithm>

#include "engine/consistency_engine.h"
#include "solver/lp.h"

namespace bagc {

// The single-shot solvers below are thin wrappers over the batch
// ConsistencyEngine (src/engine/): each call seals a throwaway engine and
// runs one query. Server-style callers with many queries against one
// collection should hold a ConsistencyEngine directly and let it amortize
// the cached marginals, the thread pool, and the flow arena.

Result<std::optional<Bag>> SolveGlobalConsistencyAcyclic(
    const BagCollection& collection, const AcyclicSolveOptions& options) {
  EngineOptions engine_options;
  engine_options.lazy_seal = true;
  BAGC_ASSIGN_OR_RETURN(ConsistencyEngine engine,
                        ConsistencyEngine::MakeView(collection, engine_options));
  return engine.SolveGlobalAcyclic(options);
}

Result<std::optional<Bag>> SolveGlobalConsistencyExact(
    const BagCollection& collection, const GlobalSolveOptions& options) {
  EngineOptions engine_options;
  engine_options.lazy_seal = true;
  engine_options.global = options;
  BAGC_ASSIGN_OR_RETURN(ConsistencyEngine engine,
                        ConsistencyEngine::MakeView(collection, engine_options));
  return engine.SolveGlobalExact();
}

Result<bool> IsGloballyConsistent(const BagCollection& collection,
                                  const GlobalSolveOptions& options) {
  EngineOptions engine_options;
  engine_options.lazy_seal = true;
  engine_options.global = options;
  BAGC_ASSIGN_OR_RETURN(ConsistencyEngine engine,
                        ConsistencyEngine::MakeView(collection, engine_options));
  return engine.Global();
}

Result<Bag> MinimizeWitnessSupport(const BagCollection& collection,
                                   const Bag& witness,
                                   const GlobalSolveOptions& options) {
  BAGC_ASSIGN_OR_RETURN(bool is_witness, collection.IsWitness(witness));
  if (!is_witness) {
    return Status::InvalidArgument("MinimizeWitnessSupport: not a witness");
  }
  std::vector<Tuple> support;
  support.reserve(witness.SupportSize());
  for (size_t e = 0; e < witness.SupportSize(); ++e) {
    support.push_back(witness.RowAt(e));
  }
  // Greedy: try dropping each support tuple; keep the drop when the
  // restricted program stays feasible.
  std::vector<uint64_t> current;  // solution aligned with `support`
  {
    BAGC_ASSIGN_OR_RETURN(ConsistencyLp lp,
                          BuildLpWithVariables(collection.bags(), support));
    current.resize(lp.variables.size());
    // BuildLpWithVariables sorts variables; keep support aligned.
    support = lp.variables;
    for (size_t i = 0; i < support.size(); ++i) {
      current[i] = witness.Multiplicity(support[i]);
    }
  }
  size_t i = 0;
  while (i < support.size()) {
    std::vector<Tuple> reduced = support;
    reduced.erase(reduced.begin() + i);
    BAGC_ASSIGN_OR_RETURN(ConsistencyLp lp,
                          BuildLpWithVariables(collection.bags(), reduced));
    BAGC_ASSIGN_OR_RETURN(auto solution,
                          SolveIntegerFeasibility(lp, options.search));
    if (solution.has_value()) {
      support = lp.variables;
      current = *solution;
      // Restart scanning: feasibility over a smaller support can change
      // which further deletions are possible.
      i = 0;
    } else {
      ++i;
    }
  }
  BagBuilder builder(witness.schema());
  for (size_t k = 0; k < support.size(); ++k) {
    if (current[k] > 0) {
      BAGC_RETURN_NOT_OK(builder.Add(support[k], current[k]));
    }
  }
  return builder.Build();
}

}  // namespace bagc
