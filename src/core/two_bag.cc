#include "core/two_bag.h"

#include "engine/two_bag_solver.h"

namespace bagc {

// The single-shot entry points below route through engine/TwoBagSolver,
// which owns the reusable ConsistencyNetwork arena; each call here spins
// up a throwaway solver, while batch callers (ConsistencyEngine, the
// Theorem 6 fold) keep one solver alive across many solves.

Result<bool> AreConsistent(const Bag& r, const Bag& s) {
  return TwoBagSolver::AreConsistent(r, s);
}

Result<bool> IsWitness(const Bag& t, const Bag& r, const Bag& s) {
  Schema xy = Schema::Union(r.schema(), s.schema());
  if (t.schema() != xy) return false;
  BAGC_ASSIGN_OR_RETURN(Bag tx, t.Marginal(r.schema()));
  if (tx != r) return false;
  BAGC_ASSIGN_OR_RETURN(Bag ty, t.Marginal(s.schema()));
  return ty == s;
}

Result<std::optional<Bag>> FindWitness(const Bag& r, const Bag& s) {
  TwoBagSolver solver;
  return solver.FindWitness(r, s);
}

Result<std::optional<Bag>> FindMinimalWitness(const Bag& r, const Bag& s) {
  TwoBagSolver solver;
  return solver.FindMinimalWitness(r, s);
}

}  // namespace bagc
