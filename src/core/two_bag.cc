#include "core/two_bag.h"

#include "flow/consistency_network.h"

namespace bagc {

Result<bool> AreConsistent(const Bag& r, const Bag& s) {
  Schema z = Schema::Intersect(r.schema(), s.schema());
  BAGC_ASSIGN_OR_RETURN(Bag rz, r.Marginal(z));
  BAGC_ASSIGN_OR_RETURN(Bag sz, s.Marginal(z));
  return rz == sz;
}

Result<bool> IsWitness(const Bag& t, const Bag& r, const Bag& s) {
  Schema xy = Schema::Union(r.schema(), s.schema());
  if (t.schema() != xy) return false;
  BAGC_ASSIGN_OR_RETURN(Bag tx, t.Marginal(r.schema()));
  if (tx != r) return false;
  BAGC_ASSIGN_OR_RETURN(Bag ty, t.Marginal(s.schema()));
  return ty == s;
}

Result<std::optional<Bag>> FindWitness(const Bag& r, const Bag& s) {
  // Cheap pre-check (Lemma 2(2)) before building the network.
  BAGC_ASSIGN_OR_RETURN(bool consistent, AreConsistent(r, s));
  if (!consistent) return std::optional<Bag>();
  BAGC_ASSIGN_OR_RETURN(ConsistencyNetwork net, ConsistencyNetwork::Make(r, s));
  BAGC_ASSIGN_OR_RETURN(bool saturated, net.HasSaturatedFlow());
  if (!saturated) {
    // Lemma 2 (2) => (5): cannot happen when the marginals agree.
    return Status::Internal("marginals agree but N(R,S) has no saturated flow");
  }
  BAGC_ASSIGN_OR_RETURN(Bag witness, net.ExtractWitness());
  return std::optional<Bag>(std::move(witness));
}

Result<std::optional<Bag>> FindMinimalWitness(const Bag& r, const Bag& s) {
  BAGC_ASSIGN_OR_RETURN(bool consistent, AreConsistent(r, s));
  if (!consistent) return std::optional<Bag>();
  BAGC_ASSIGN_OR_RETURN(ConsistencyNetwork net, ConsistencyNetwork::Make(r, s));
  BAGC_ASSIGN_OR_RETURN(bool saturated, net.HasSaturatedFlow());
  if (!saturated) {
    return Status::Internal("marginals agree but N(R,S) has no saturated flow");
  }
  // §5.3 self-reducibility: for each middle edge, ask whether some
  // saturated flow avoids it; if so, delete it permanently.
  for (size_t i = 0; i < net.NumMiddleEdges(); ++i) {
    BAGC_RETURN_NOT_OK(net.SuppressMiddleEdge(i));
    BAGC_ASSIGN_OR_RETURN(bool still, net.HasSaturatedFlow());
    if (!still) {
      BAGC_RETURN_NOT_OK(net.RestoreMiddleEdge(i));
    }
  }
  // Re-solve on the surviving edges and extract.
  BAGC_ASSIGN_OR_RETURN(bool final_ok, net.HasSaturatedFlow());
  if (!final_ok) {
    return Status::Internal("minimal-witness pruning lost saturation");
  }
  BAGC_ASSIGN_OR_RETURN(Bag witness, net.ExtractWitness());
  return std::optional<Bag>(std::move(witness));
}

}  // namespace bagc
