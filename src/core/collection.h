// Collections of bags over a hypergraph (paper §4): D = R1(X1),...,Rm(Xm)
// where the Xi are the hyperedges. Pairwise / k-wise / global consistency
// are defined here; the decision procedures live in pairwise.h and
// global.h.
#pragma once

#include <string>
#include <vector>

#include "bag/bag.h"
#include "hypergraph/hypergraph.h"
#include "util/result.h"

namespace bagc {

/// \brief An ordered collection of bags; the schema hypergraph is derived.
///
/// Schemas may repeat (the hypergraph's edge *set* then deduplicates), and
/// the order of bags is preserved — constructions such as the Tseitin
/// collection distinguish the last bag.
class BagCollection {
 public:
  BagCollection() = default;

  /// Builds a collection; fails on empty input.
  static Result<BagCollection> Make(std::vector<Bag> bags);

  size_t size() const { return bags_.size(); }
  const Bag& bag(size_t i) const { return bags_[i]; }
  const std::vector<Bag>& bags() const { return bags_; }

  /// The schema hypergraph (vertices = all attributes, edges = schemas).
  const Hypergraph& hypergraph() const { return hypergraph_; }

  /// X1 ∪ ... ∪ Xm.
  const Schema& union_schema() const { return union_schema_; }

  /// Polynomial-time NP-certificate check: T[Xi] == Ri for all i.
  Result<bool> IsWitness(const Bag& t) const;

  /// The sub-collection {Ri : i ∈ indices}.
  Result<BagCollection> Subcollection(const std::vector<size_t>& indices) const;

  std::string ToString() const;

 private:
  std::vector<Bag> bags_;
  Hypergraph hypergraph_;
  Schema union_schema_;
};

}  // namespace bagc
