#include "core/collection.h"

namespace bagc {

Result<BagCollection> BagCollection::Make(std::vector<Bag> bags) {
  if (bags.empty()) {
    return Status::InvalidArgument("a bag collection must contain at least one bag");
  }
  BagCollection out;
  std::vector<Schema> schemas;
  schemas.reserve(bags.size());
  for (const Bag& b : bags) {
    if (b.schema().empty()) {
      // Hyperedges are non-empty; the empty-schema bag only appears as an
      // intermediate object inside Lemma 4 lifting, never in a collection.
      return Status::InvalidArgument("bag over the empty schema in a collection");
    }
    schemas.push_back(b.schema());
  }
  out.union_schema_ = Schema::UnionAll(schemas);
  BAGC_ASSIGN_OR_RETURN(out.hypergraph_, Hypergraph::FromEdges(std::move(schemas)));
  out.bags_ = std::move(bags);
  return out;
}

Result<bool> BagCollection::IsWitness(const Bag& t) const {
  if (t.schema() != union_schema_) return false;
  for (const Bag& r : bags_) {
    BAGC_ASSIGN_OR_RETURN(Bag marginal, t.Marginal(r.schema()));
    if (marginal != r) return false;
  }
  return true;
}

Result<BagCollection> BagCollection::Subcollection(
    const std::vector<size_t>& indices) const {
  std::vector<Bag> subset;
  subset.reserve(indices.size());
  for (size_t i : indices) {
    if (i >= bags_.size()) return Status::OutOfRange("subcollection index");
    subset.push_back(bags_[i]);
  }
  return Make(std::move(subset));
}

std::string BagCollection::ToString() const {
  std::string out = "Collection over " + hypergraph_.ToString() + ":\n";
  for (size_t i = 0; i < bags_.size(); ++i) {
    out += "R" + std::to_string(i + 1) + " = " + bags_[i].ToString() + "\n";
  }
  return out;
}

}  // namespace bagc
