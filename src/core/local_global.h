// Theorem 2, packaged: a hypergraph has the local-to-global consistency
// property for bags iff it is acyclic. The constructive content of the
// cyclic direction is MakeCounterexample: for any cyclic H it produces a
// pairwise consistent, globally inconsistent collection over H's edges by
// combining the Lemma 3 obstruction search, the Tseitin construction on
// the minimal obstruction, and the Lemma 4 lifting.
#pragma once

#include "core/collection.h"
#include "hypergraph/hypergraph.h"
#include "util/result.h"

namespace bagc {

/// Theorem 2 (a) <=> (e): decided structurally via acyclicity.
bool HasLocalToGlobalConsistencyForBags(const Hypergraph& h);

/// For a cyclic H, builds a collection of bags over the hyperedges of H
/// that is pairwise consistent but not globally consistent. Fails with
/// FailedPrecondition when H is acyclic (no such collection exists, by
/// Theorem 2).
Result<BagCollection> MakeCounterexample(const Hypergraph& h);

}  // namespace bagc
