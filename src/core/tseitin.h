// The Tseitin-style construction of Theorem 2, Step 2: for a k-uniform,
// d-regular hypergraph H* with d >= 2 and hyperedges X1..Xm, the
// collection C(H*) assigns to each edge the 0/1 bag whose support is the
// set of tuples Xi -> {0..d-1} with coordinate sum ≡ 0 (mod d) — except
// the *last* edge, which uses sum ≡ 1 (mod d). C(H*) is pairwise
// consistent (every shared marginal is the constant d^(k-|Z|-1) bag) but
// not globally consistent (summing the charges gives 0 ≡ 1 mod d).
#pragma once

#include <vector>

#include "bag/bag.h"
#include "hypergraph/hypergraph.h"
#include "util/result.h"

namespace bagc {

/// Builds C(H*); fails unless H* is k-uniform and d-regular with d >= 2
/// and has at least 2 edges. Bags are returned in the hypergraph's
/// canonical edge order; the last bag carries the ≡ 1 (mod d) charge.
Result<std::vector<Bag>> MakeTseitinCollection(const Hypergraph& h);

/// The common shared-marginal multiplicity d^(k - |Z| - 1) used by the
/// pairwise-consistency argument; exposed for tests.
uint64_t TseitinMarginalMultiplicity(size_t d, size_t k, size_t shared_arity);

}  // namespace bagc
