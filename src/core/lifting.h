// Lemma 4: lifting bag collections backwards along safe-deletion
// sequences. If H0 is obtained from H1 by safe deletions, then any
// collection D0 over H0 lifts to a collection D1 over H1 with the *same*
// k-wise consistency profile for every k. This is the glue between the
// minimal obstructions (Cn / Hn with their Tseitin counterexamples) and
// arbitrary cyclic hypergraphs in Theorem 2 Step 2, and between the
// NP-hard cores and arbitrary cyclic schemas in Theorem 4.
//
// Lifting works on *edge lists* (ordered, possibly with duplicates or
// empty schemas as intermediate states), because the per-edge bag
// alignment of Lemma 4 is positional.
#pragma once

#include <vector>

#include "bag/bag.h"
#include "hypergraph/hypergraph.h"
#include "tuple/schema.h"
#include "util/result.h"

namespace bagc {

/// One list-level deletion operation.
struct LiftOp {
  enum class Kind { kVertex, kCoveredEdge };
  Kind kind;
  /// kVertex: the vertex removed from every schema in the list.
  AttrId vertex = 0;
  /// kCoveredEdge: the list position removed...
  size_t position = 0;
  /// ...and the position (in the pre-removal list) of a schema covering it.
  size_t cover_position = 0;
};

/// \brief A replayable plan: the op sequence from an initial edge list down
/// to a final edge list, with the default domain value u0 used when
/// re-inserting deleted attributes.
struct LiftPlan {
  std::vector<Schema> initial_edges;
  std::vector<LiftOp> ops;
  std::vector<Schema> final_edges;
  Value default_value = 0;

  /// Applies `ops` to `initial_edges`, returning every intermediate list
  /// (index s = list after s ops); the last entry equals final_edges.
  std::vector<std::vector<Schema>> ForwardLists() const;
};

/// Builds the plan that deletes all vertices outside `w` and then removes
/// covered edges until no removal is possible. The final edge list equals
/// the edges of R(H[W]) (in some order) when starting from the edges of H.
Result<LiftPlan> PlanLiftToInduced(const std::vector<Schema>& edges, const Schema& w);

/// Lemma 4 lifting: given bags aligned positionally with plan.final_edges,
/// produces bags aligned with plan.initial_edges such that, for every k,
/// the input is k-wise consistent iff the output is.
Result<std::vector<Bag>> LiftCollection(const LiftPlan& plan,
                                        const std::vector<Bag>& d0);

}  // namespace bagc
