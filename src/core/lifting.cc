#include "core/lifting.h"

#include <algorithm>

#include "util/logging.h"

namespace bagc {

namespace {

// Applies one op to an edge list.
std::vector<Schema> ApplyOp(const std::vector<Schema>& edges, const LiftOp& op) {
  std::vector<Schema> out;
  if (op.kind == LiftOp::Kind::kVertex) {
    out.reserve(edges.size());
    Schema v{{op.vertex}};
    for (const Schema& e : edges) out.push_back(Schema::Difference(e, v));
  } else {
    out = edges;
    out.erase(out.begin() + op.position);
  }
  return out;
}

// Inserts `value` into `t` (over schema `to` minus attribute `a`) at the
// slot that attribute `a` occupies in schema `to`.
Result<Tuple> InsertAt(const Tuple& t, const Schema& to, AttrId a, Value value) {
  BAGC_ASSIGN_OR_RETURN(size_t idx, to.IndexOf(a));
  std::vector<ValueId> row;
  row.reserve(t.arity() + 1);
  for (size_t i = 0; i < idx; ++i) row.push_back(t.id(i));
  row.push_back(EncodeValue(value));
  for (size_t i = idx; i < t.arity(); ++i) row.push_back(t.id(i));
  return Tuple::OfIds(std::move(row));
}

}  // namespace

std::vector<std::vector<Schema>> LiftPlan::ForwardLists() const {
  std::vector<std::vector<Schema>> lists;
  lists.push_back(initial_edges);
  for (const LiftOp& op : ops) {
    lists.push_back(ApplyOp(lists.back(), op));
  }
  return lists;
}

Result<LiftPlan> PlanLiftToInduced(const std::vector<Schema>& edges, const Schema& w) {
  LiftPlan plan;
  plan.initial_edges = edges;
  std::vector<Schema> current = edges;
  // Delete every vertex outside W (in attribute order, deterministically).
  Schema all = Schema::UnionAll(edges);
  Schema outside = Schema::Difference(all, w);
  for (AttrId a : outside.attrs()) {
    LiftOp op;
    op.kind = LiftOp::Kind::kVertex;
    op.vertex = a;
    current = ApplyOp(current, op);
    plan.ops.push_back(op);
  }
  // Delete covered positions (including duplicates and empties) until the
  // list is an antichain of distinct schemas.
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t l = 0; l < current.size() && !progress; ++l) {
      for (size_t j = 0; j < current.size(); ++j) {
        if (j == l) continue;
        if (current[l].IsSubsetOf(current[j])) {
          LiftOp op;
          op.kind = LiftOp::Kind::kCoveredEdge;
          op.position = l;
          op.cover_position = j;
          current = ApplyOp(current, op);
          plan.ops.push_back(op);
          progress = true;
          break;
        }
      }
    }
  }
  plan.final_edges = std::move(current);
  return plan;
}

Result<std::vector<Bag>> LiftCollection(const LiftPlan& plan,
                                        const std::vector<Bag>& d0) {
  std::vector<std::vector<Schema>> lists = plan.ForwardLists();
  const std::vector<Schema>& final_list = lists.back();
  if (d0.size() != final_list.size()) {
    return Status::InvalidArgument("collection size does not match final edge list");
  }
  for (size_t i = 0; i < d0.size(); ++i) {
    if (d0[i].schema() != final_list[i]) {
      return Status::InvalidArgument("bag " + std::to_string(i) +
                                     " schema does not match plan final edge");
    }
  }
  std::vector<Bag> current = d0;
  // Replay the ops backwards; lists[s] is the schema list *before* op s.
  for (size_t s = plan.ops.size(); s-- > 0;) {
    const LiftOp& op = plan.ops[s];
    const std::vector<Schema>& before = lists[s];
    std::vector<Bag> lifted;
    lifted.reserve(before.size());
    if (op.kind == LiftOp::Kind::kCoveredEdge) {
      // D1[i] = D0[i'] for i != position; D1[position] = D0[cover'][X].
      for (size_t i = 0; i < before.size(); ++i) {
        if (i == op.position) {
          size_t cover_after =
              op.cover_position < op.position ? op.cover_position
                                              : op.cover_position - 1;
          BAGC_ASSIGN_OR_RETURN(Bag marginal,
                                current[cover_after].Marginal(before[i]));
          lifted.push_back(std::move(marginal));
        } else {
          size_t after = i < op.position ? i : i - 1;
          lifted.push_back(current[after]);
        }
      }
    } else {
      // Vertex re-insertion: concentrate the deleted attribute on u0.
      for (size_t i = 0; i < before.size(); ++i) {
        const Schema& x = before[i];
        if (!x.Contains(op.vertex)) {
          lifted.push_back(current[i]);
          continue;
        }
        BagBuilder builder(x);
        builder.Reserve(current[i].SupportSize());
        for (size_t e = 0; e < current[i].SupportSize(); ++e) {
          BAGC_ASSIGN_OR_RETURN(
              Tuple tx, InsertAt(current[i].RowAt(e), x, op.vertex,
                                 plan.default_value));
          BAGC_RETURN_NOT_OK(builder.Add(std::move(tx), current[i].MultiplicityAt(e)));
        }
        BAGC_ASSIGN_OR_RETURN(Bag r, builder.Build());
        lifted.push_back(std::move(r));
      }
    }
    current = std::move(lifted);
  }
  return current;
}

}  // namespace bagc
