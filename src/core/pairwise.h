// Pairwise and k-wise consistency of bag collections (paper §4). Pairwise
// consistency is polynomial (Lemma 2); k-wise consistency for k >= 3 runs
// the exact (exponential worst case) global solver on each subset.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "core/collection.h"
#include "util/result.h"

namespace bagc {

/// Decides pairwise (= 2-wise) consistency; when inconsistent and
/// `witness_pair` is non-null, stores the first failing index pair.
Result<bool> ArePairwiseConsistent(const BagCollection& collection,
                                   std::pair<size_t, size_t>* witness_pair = nullptr);

/// Decides k-wise consistency: every sub-collection of size <= k is
/// globally consistent. Exponential in both the number of subsets and the
/// per-subset solve; intended for tests and small experiments. k >= 2.
Result<bool> AreKWiseConsistent(const BagCollection& collection, size_t k,
                                std::optional<std::vector<size_t>>* failing_subset =
                                    nullptr);

}  // namespace bagc
