// Pairwise and k-wise consistency of bag collections (paper §4). Pairwise
// consistency is polynomial (Lemma 2); k-wise consistency for k >= 3 is
// exponential in the worst case. Both are thin wrappers over one
// ConsistencyEngine (engine/consistency_engine.h): the k-wise sweep reuses
// the engine's sealed per-pair marginal cache across every subset, decides
// acyclic subsets by Theorem 2, and runs the exact feasibility search only
// on cyclic subsets.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "core/collection.h"
#include "util/result.h"

namespace bagc {

/// Decides pairwise (= 2-wise) consistency; when inconsistent and
/// `witness_pair` is non-null, stores the first failing index pair.
Result<bool> ArePairwiseConsistent(const BagCollection& collection,
                                   std::pair<size_t, size_t>* witness_pair = nullptr);

/// Decides k-wise consistency: every sub-collection of size <= k is
/// globally consistent. Exponential in both the number of subsets and the
/// per-subset (cyclic) solve; intended for tests and small experiments.
/// k >= 2. Shared marginals are computed once for the whole sweep, not
/// once per subset.
Result<bool> AreKWiseConsistent(const BagCollection& collection, size_t k,
                                std::optional<std::vector<size_t>>* failing_subset =
                                    nullptr);

}  // namespace bagc
