// Consistency of two bags (paper §3). Lemma 2 gives five equivalent
// characterizations; this module exposes:
//   - the O(sort) decision procedure  R[X∩Y] == S[X∩Y]          (Lemma 2(2))
//   - witness construction via saturated max-flow on N(R, S)    (Corollary 1)
//   - *minimal* witness construction by middle-edge
//     self-reducibility                                          (§5.3, Cor. 4)
// A minimal witness has support size at most ||R||supp + ||S||supp
// (Theorem 5, via Carathéodory).
#pragma once

#include <optional>

#include "bag/bag.h"
#include "util/result.h"

namespace bagc {

/// Lemma 2(2): R and S are consistent iff their marginals on the shared
/// attributes coincide. Runs in time O(|R'| + |S'|) map operations.
Result<bool> AreConsistent(const Bag& r, const Bag& s);

/// True iff T[X] == R and T[Y] == S (the definition of "T witnesses the
/// consistency of R and S").
Result<bool> IsWitness(const Bag& t, const Bag& r, const Bag& s);

/// Builds a witness of consistency via an integral saturated flow of
/// N(R, S); returns nullopt when R and S are inconsistent.
Result<std::optional<Bag>> FindWitness(const Bag& r, const Bag& s);

/// Builds a *minimal* witness (no witness has strictly smaller support) by
/// deleting middle edges one at a time and re-solving (§5.3). Costs at most
/// |R' ⋈ S'| max-flow computations. Returns nullopt when inconsistent.
Result<std::optional<Bag>> FindMinimalWitness(const Bag& r, const Bag& s);

}  // namespace bagc
