#include "core/local_global.h"

#include "core/lifting.h"
#include "core/tseitin.h"
#include "hypergraph/acyclicity.h"
#include "hypergraph/safe_deletion.h"

namespace bagc {

bool HasLocalToGlobalConsistencyForBags(const Hypergraph& h) {
  return IsAcyclic(h);
}

Result<BagCollection> MakeCounterexample(const Hypergraph& h) {
  if (IsAcyclic(h)) {
    return Status::FailedPrecondition(
        "hypergraph is acyclic: every pairwise consistent collection is "
        "globally consistent (Theorem 2)");
  }
  BAGC_ASSIGN_OR_RETURN(Obstruction obs, FindObstruction(h));
  BAGC_ASSIGN_OR_RETURN(std::vector<Bag> tseitin,
                        MakeTseitinCollection(obs.minimal));
  // Plan the list-level deletion sequence and align the Tseitin bags (in
  // the minimal hypergraph's canonical order) with the plan's final list.
  BAGC_ASSIGN_OR_RETURN(LiftPlan plan, PlanLiftToInduced(h.edges(), obs.w));
  const std::vector<Schema>& minimal_edges = obs.minimal.edges();
  if (plan.final_edges.size() != minimal_edges.size()) {
    return Status::Internal("lift plan does not terminate at R(H[W])");
  }
  std::vector<Bag> d0;
  d0.reserve(plan.final_edges.size());
  for (const Schema& e : plan.final_edges) {
    auto it = std::find(minimal_edges.begin(), minimal_edges.end(), e);
    if (it == minimal_edges.end()) {
      return Status::Internal("lift plan final edge not in R(H[W])");
    }
    d0.push_back(tseitin[static_cast<size_t>(it - minimal_edges.begin())]);
  }
  BAGC_ASSIGN_OR_RETURN(std::vector<Bag> lifted, LiftCollection(plan, d0));
  return BagCollection::Make(std::move(lifted));
}

}  // namespace bagc
