#include "core/report.h"

#include "core/pairwise.h"
#include "hypergraph/acyclicity.h"

namespace bagc {

Result<ConsistencyReport> AnalyzeCollection(const BagCollection& collection,
                                            const GlobalSolveOptions& options) {
  ConsistencyReport report;
  const Hypergraph& h = collection.hypergraph();
  report.acyclic = IsAcyclic(h);
  if (!report.acyclic) {
    BAGC_ASSIGN_OR_RETURN(Obstruction obs, FindObstruction(h));
    report.obstruction = std::move(obs);
  }

  std::pair<size_t, size_t> bad;
  BAGC_ASSIGN_OR_RETURN(report.pairwise_consistent,
                        ArePairwiseConsistent(collection, &bad));
  if (!report.pairwise_consistent) {
    report.failing_pair = bad;
    // Pairwise inconsistency settles global inconsistency on both sides
    // of the dichotomy.
    report.global_decided = true;
    report.globally_consistent = false;
  } else if (report.acyclic) {
    BAGC_ASSIGN_OR_RETURN(std::optional<Bag> witness,
                          SolveGlobalConsistencyAcyclic(collection));
    report.global_decided = true;
    report.globally_consistent = witness.has_value();
    report.witness = std::move(witness);
  } else {
    // The NP side: a budget miss is reported, not fatal.
    Result<std::optional<Bag>> witness =
        SolveGlobalConsistencyExact(collection, options);
    if (witness.ok()) {
      report.global_decided = true;
      report.globally_consistent = witness->has_value();
      report.witness = std::move(*witness);
    } else if (witness.status().code() == StatusCode::kResourceExhausted) {
      report.global_decided = false;
    } else {
      return witness.status();
    }
  }

  if (report.witness.has_value()) {
    report.witness_support = report.witness->SupportSize();
    report.witness_max_multiplicity = report.witness->MultiplicityBound();
  }
  for (const Bag& b : collection.bags()) {
    report.support_bound += b.SupportSize();
  }
  return report;
}

std::string ConsistencyReport::ToString(const AttributeCatalog& catalog) const {
  std::string out;
  out += "schema: ";
  out += acyclic ? "acyclic" : "CYCLIC";
  out += "\n";
  if (obstruction.has_value()) {
    out += "  obstruction: R(H[W]) = ";
    out += obstruction->is_hn ? "H_n core " : "chordless cycle ";
    out += obstruction->minimal.ToString();
    out += "\n";
  }
  out += "pairwise: ";
  out += pairwise_consistent ? "consistent" : "INCONSISTENT";
  out += "\n";
  if (failing_pair.has_value()) {
    out += "  first failing pair: bags " + std::to_string(failing_pair->first + 1) +
           " and " + std::to_string(failing_pair->second + 1) + "\n";
  }
  if (!global_decided) {
    out += "global: UNDECIDED (search budget exhausted)\n";
  } else if (globally_consistent) {
    out += "global: consistent, witness support " +
           std::to_string(witness_support) + " (Σ supports = " +
           std::to_string(support_bound) + "), max multiplicity " +
           std::to_string(witness_max_multiplicity) + "\n";
    if (witness.has_value()) {
      out += "witness schema " + witness->schema().ToString(catalog) + "\n";
    }
  } else {
    out += "global: INCONSISTENT";
    out += pairwise_consistent
               ? " (pairwise consistent — a genuinely global obstruction)\n"
               : " (already locally inconsistent)\n";
  }
  return out;
}

}  // namespace bagc
