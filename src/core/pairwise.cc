#include "core/pairwise.h"

#include "engine/consistency_engine.h"

namespace bagc {

Result<bool> ArePairwiseConsistent(const BagCollection& collection,
                                   std::pair<size_t, size_t>* witness_pair) {
  // Single-shot wrapper over the batch engine: borrow the collection into
  // a throwaway lazily-sealed engine and run one inline sweep. The
  // sequential sweep visits pairs in the same lexicographic order the
  // historical double loop did — and under lazy_seal computes marginals
  // pair by pair, so the reported first failing pair and the
  // marginal-level early exit are unchanged (the engine does still pay
  // its O(m²) schema-setup pass up front, which is cheap next to a
  // single marginal).
  EngineOptions options;
  options.lazy_seal = true;
  BAGC_ASSIGN_OR_RETURN(ConsistencyEngine engine,
                        ConsistencyEngine::MakeView(collection, options));
  BAGC_ASSIGN_OR_RETURN(PairwiseVerdict verdict, engine.PairwiseAll());
  if (!verdict.consistent && witness_pair != nullptr) {
    *witness_pair = verdict.witness_pair;
  }
  return verdict.consistent;
}

Result<bool> AreKWiseConsistent(const BagCollection& collection, size_t k,
                                std::optional<std::vector<size_t>>* failing_subset) {
  // Single-shot wrapper over the batch engine, mirroring
  // ArePairwiseConsistent: one lazily-sealed engine serves the entire
  // subset sweep, so each pair's shared marginals are computed at most
  // once across all C(m, k) subsets instead of once per throwaway
  // engine-per-subset as the historical implementation did.
  EngineOptions options;
  options.lazy_seal = true;
  BAGC_ASSIGN_OR_RETURN(ConsistencyEngine engine,
                        ConsistencyEngine::MakeView(collection, options));
  return engine.KWiseConsistent(k, failing_subset);
}

}  // namespace bagc
