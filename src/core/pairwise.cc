#include "core/pairwise.h"

#include <algorithm>
#include <functional>
#include <vector>

#include "core/global.h"
#include "engine/consistency_engine.h"

namespace bagc {

Result<bool> ArePairwiseConsistent(const BagCollection& collection,
                                   std::pair<size_t, size_t>* witness_pair) {
  // Single-shot wrapper over the batch engine: borrow the collection into
  // a throwaway lazily-sealed engine and run one inline sweep. The
  // sequential sweep visits pairs in the same lexicographic order the
  // historical double loop did — and under lazy_seal computes marginals
  // pair by pair, so the reported first failing pair and the
  // marginal-level early exit are unchanged (the engine does still pay
  // its O(m²) schema-setup pass up front, which is cheap next to a
  // single marginal).
  EngineOptions options;
  options.lazy_seal = true;
  BAGC_ASSIGN_OR_RETURN(ConsistencyEngine engine,
                        ConsistencyEngine::MakeView(collection, options));
  BAGC_ASSIGN_OR_RETURN(PairwiseVerdict verdict, engine.PairwiseAll());
  if (!verdict.consistent && witness_pair != nullptr) {
    *witness_pair = verdict.witness_pair;
  }
  return verdict.consistent;
}

namespace {

// Enumerates all subsets of {0..m-1} of size exactly `k` via lexicographic
// combinations, invoking `body`; stops early when body returns an error or
// sets *stop.
Status ForEachSubset(size_t m, size_t k,
                     const std::function<Result<bool>(const std::vector<size_t>&)>&
                         is_ok,
                     std::optional<std::vector<size_t>>* failing) {
  std::vector<size_t> idx(k);
  for (size_t i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    BAGC_ASSIGN_OR_RETURN(bool ok, is_ok(idx));
    if (!ok) {
      if (failing != nullptr) *failing = idx;
      return Status::OK();
    }
    // Next combination.
    size_t i = k;
    while (i > 0) {
      --i;
      if (idx[i] != i + m - k) {
        ++idx[i];
        for (size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return Status::OK();
    }
    if (k == 0) return Status::OK();
  }
}

}  // namespace

Result<bool> AreKWiseConsistent(const BagCollection& collection, size_t k,
                                std::optional<std::vector<size_t>>* failing_subset) {
  if (k < 2) return Status::InvalidArgument("k-wise consistency needs k >= 2");
  size_t m = collection.size();
  if (failing_subset != nullptr) failing_subset->reset();
  // Subsets of size < k are covered by subsets of size k whenever m >= k
  // (global consistency of a superset implies it for subsets, since the
  // witness marginalizes down). When m < k, test the whole collection.
  size_t size = std::min(k, m);
  std::optional<std::vector<size_t>> failing;
  BAGC_RETURN_NOT_OK(ForEachSubset(
      m, size,
      [&](const std::vector<size_t>& subset) -> Result<bool> {
        BAGC_ASSIGN_OR_RETURN(BagCollection sub, collection.Subcollection(subset));
        BAGC_ASSIGN_OR_RETURN(std::optional<Bag> witness,
                              SolveGlobalConsistencyExact(sub));
        return witness.has_value();
      },
      &failing));
  if (failing.has_value()) {
    if (failing_subset != nullptr) *failing_subset = failing;
    return false;
  }
  return true;
}

}  // namespace bagc
