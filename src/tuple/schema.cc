#include "tuple/schema.h"

#include <algorithm>

namespace bagc {

Schema::Schema(std::vector<AttrId> attrs) : attrs_(std::move(attrs)) {
  std::sort(attrs_.begin(), attrs_.end());
  attrs_.erase(std::unique(attrs_.begin(), attrs_.end()), attrs_.end());
}

bool Schema::Contains(AttrId a) const {
  return std::binary_search(attrs_.begin(), attrs_.end(), a);
}

Result<size_t> Schema::IndexOf(AttrId a) const {
  auto it = std::lower_bound(attrs_.begin(), attrs_.end(), a);
  if (it == attrs_.end() || *it != a) {
    return Status::NotFound("attribute not in schema");
  }
  return static_cast<size_t>(it - attrs_.begin());
}

bool Schema::IsSubsetOf(const Schema& other) const {
  return std::includes(other.attrs_.begin(), other.attrs_.end(), attrs_.begin(),
                       attrs_.end());
}

Schema Schema::Union(const Schema& x, const Schema& y) {
  std::vector<AttrId> out;
  out.reserve(x.arity() + y.arity());
  std::set_union(x.attrs_.begin(), x.attrs_.end(), y.attrs_.begin(), y.attrs_.end(),
                 std::back_inserter(out));
  Schema s;
  s.attrs_ = std::move(out);
  return s;
}

Schema Schema::Intersect(const Schema& x, const Schema& y) {
  std::vector<AttrId> out;
  std::set_intersection(x.attrs_.begin(), x.attrs_.end(), y.attrs_.begin(),
                        y.attrs_.end(), std::back_inserter(out));
  Schema s;
  s.attrs_ = std::move(out);
  return s;
}

Schema Schema::Difference(const Schema& x, const Schema& y) {
  std::vector<AttrId> out;
  std::set_difference(x.attrs_.begin(), x.attrs_.end(), y.attrs_.begin(),
                      y.attrs_.end(), std::back_inserter(out));
  Schema s;
  s.attrs_ = std::move(out);
  return s;
}

Schema Schema::UnionAll(const std::vector<Schema>& schemas) {
  Schema acc;
  for (const Schema& s : schemas) acc = Union(acc, s);
  return acc;
}

std::string Schema::ToString(const AttributeCatalog& catalog) const {
  std::string out = "{";
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += catalog.Name(attrs_[i]);
  }
  out += "}";
  return out;
}

std::string Schema::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(attrs_[i]);
  }
  out += "}";
  return out;
}

Result<Projector> Projector::Make(const Schema& from, const Schema& onto) {
  if (!onto.IsSubsetOf(from)) {
    return Status::InvalidArgument("projection target is not a sub-schema");
  }
  Projector p;
  p.from_ = from;
  p.onto_ = onto;
  p.indices_.reserve(onto.arity());
  for (size_t i = 0; i < onto.arity(); ++i) {
    BAGC_ASSIGN_OR_RETURN(size_t idx, from.IndexOf(onto.at(i)));
    p.indices_.push_back(idx);
  }
  return p;
}

}  // namespace bagc
