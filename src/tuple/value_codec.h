// Legacy numeric value codec: the bridge between the historical int64
// `Value` API and the fixed-width interned rows that tuples now carry
// (ValueId = uint32_t, see value_dictionary.h).
//
// The paper's algorithms only ever compare domain values for equality
// (renaming invariance, Lemma 1 / §2), so any injective encoding of the
// external domain into row ids is sound. The codec keeps the common case
// free: a non-negative value below 2^31 encodes as itself, so numerically
// built bags have id == value and every historical printout, sort order,
// and probe is unchanged. Values outside that range (negatives, huge
// ints) are interned into a process-global side table whose ids occupy
// the top half of the id space. Both directions are bijective for the
// lifetime of the process.
//
// The codec is for construction, printing, and I/O only — hot paths
// (joins, probes, marginal grouping) compare raw ids and never decode.
//
// Ordering: side-table ids are assigned in first-encode order, so the
// raw id order of out-of-range values depends on the encode sequence and
// can differ between processes. Row ordering therefore goes through
// ValueIdLess below, which compares by (decoded value, raw id): the
// direct range stays a single integer compare (id == value there), and
// side-table slots compare in numeric value order regardless of when
// they were first encoded — ordered scans agree with a value oracle and
// are process-independent. (The raw-id tie-break only separates distinct
// unissued ids that decode to themselves; ids issued by EncodeValue are
// bijective with their values.)
#pragma once

#include <cstdint>

#include "tuple/value_dictionary.h"

namespace bagc {

// The external numeric domain element `Value` (int64) comes from
// tuple/attribute.h via value_dictionary.h.

/// Ids below this bound encode the value itself; ids at or above it index
/// the side table of out-of-range values.
inline constexpr ValueId kDirectValueLimit = 0x80000000u;

/// True iff `v` encodes as itself (id == v).
inline bool IsDirectValue(Value v) {
  return v >= 0 && v < static_cast<Value>(kDirectValueLimit);
}

/// Encodes an external numeric value as a row id. Identity for
/// [0, 2^31); interns through the global side table otherwise. Aborts if
/// the side table ever exhausts its 2^31 ids (unreachable in practice).
ValueId EncodeValue(Value v);

/// Inverse of EncodeValue. Ids that were never issued by EncodeValue
/// (e.g. dictionary ids of a string-interned bag) decode as themselves —
/// the raw id widened to Value — which keeps printing total.
Value DecodeValue(ValueId id);

/// Number of side-table entries interned so far (test/introspection).
size_t SideTableSizeForTest();

/// Strict total order on row ids by (DecodeValue(id), id) — numeric value
/// order, independent of side-table encode order. For the direct range
/// (dictionary ids and in-range numerics) this is the plain id compare,
/// and callers keep that as their fast path; only slots touching the
/// side-table half of the id space pay a decode.
inline bool ValueIdLess(ValueId a, ValueId b) {
  if ((a | b) < kDirectValueLimit) return a < b;
  Value va = DecodeValue(a);
  Value vb = DecodeValue(b);
  if (va != vb) return va < vb;
  return a < b;
}

}  // namespace bagc
