#include "tuple/value_codec.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

namespace bagc {

namespace {

// Process-global side table for values outside the direct range. Append
// only; guarded by a mutex. Construction, printing, and I/O are the only
// callers — row comparisons never decode — so the lock is off every hot
// path.
struct SideTable {
  std::mutex mu;
  std::vector<Value> values;
  std::unordered_map<Value, ValueId> ids;
};

SideTable& GlobalSideTable() {
  static SideTable* table = new SideTable();  // leaked: process lifetime
  return *table;
}

}  // namespace

ValueId EncodeValue(Value v) {
  if (IsDirectValue(v)) return static_cast<ValueId>(v);
  SideTable& table = GlobalSideTable();
  std::lock_guard<std::mutex> lock(table.mu);
  auto it = table.ids.find(v);
  if (it != table.ids.end()) return it->second;
  // kInvalidValueId is reserved, so the side table holds at most
  // 2^31 - 1 entries. Reaching that would mean interning two billion
  // distinct out-of-range constants; treat it as a program error.
  if (table.values.size() >= static_cast<size_t>(kInvalidValueId - kDirectValueLimit)) {
    std::fprintf(stderr, "bagc: value side table exhausted\n");
    std::abort();
  }
  ValueId id = kDirectValueLimit + static_cast<ValueId>(table.values.size());
  table.values.push_back(v);
  table.ids.emplace(v, id);
  return id;
}

Value DecodeValue(ValueId id) {
  if (id < kDirectValueLimit) return static_cast<Value>(id);
  SideTable& table = GlobalSideTable();
  std::lock_guard<std::mutex> lock(table.mu);
  size_t idx = id - kDirectValueLimit;
  if (idx >= table.values.size()) return static_cast<Value>(id);
  return table.values[idx];
}

size_t SideTableSizeForTest() {
  SideTable& table = GlobalSideTable();
  std::lock_guard<std::mutex> lock(table.mu);
  return table.values.size();
}

}  // namespace bagc
