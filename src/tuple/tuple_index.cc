#include "tuple/tuple_index.h"

namespace bagc {

namespace {

constexpr size_t kMinCapacity = 16;

size_t NextPowerOfTwo(size_t n) {
  size_t p = kMinCapacity;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

void TupleIndex::Reserve(size_t expected_keys) {
  // Keep the load factor below ~0.7.
  size_t needed = NextPowerOfTwo(expected_keys + expected_keys / 2 + 1);
  if (needed > slots_.size()) Rehash(needed);
  groups_.reserve(expected_keys);
}

size_t TupleIndex::ProbeSlot(const Tuple& key, uint64_t hash) const {
  size_t mask = slots_.size() - 1;
  size_t i = static_cast<size_t>(hash) & mask;
  while (true) {
    uint32_t tag = slots_[i];
    if (tag == 0) return i;
    const Group& g = groups_[tag - 1];
    if (g.hash == hash && g.key == key) return i;
    i = (i + 1) & mask;
  }
}

void TupleIndex::Rehash(size_t new_capacity) {
  slots_.assign(new_capacity, 0);
  size_t mask = new_capacity - 1;
  for (size_t g = 0; g < groups_.size(); ++g) {
    size_t i = static_cast<size_t>(groups_[g].hash) & mask;
    while (slots_[i] != 0) i = (i + 1) & mask;
    slots_[i] = static_cast<uint32_t>(g + 1);
  }
}

void TupleIndex::Insert(Tuple key, uint32_t id) {
  if (slots_.empty() || (groups_.size() + 1) * 10 > slots_.size() * 7) {
    Rehash(NextPowerOfTwo(slots_.empty() ? kMinCapacity : slots_.size() * 2));
  }
  uint64_t hash = key.Hash();
  size_t slot = ProbeSlot(key, hash);
  if (slots_[slot] == 0) {
    Group g;
    g.key = std::move(key);
    g.hash = hash;
    g.ids.push_back(id);
    groups_.push_back(std::move(g));
    slots_[slot] = static_cast<uint32_t>(groups_.size());
  } else {
    groups_[slots_[slot] - 1].ids.push_back(id);
  }
  ++size_;
}

const std::vector<uint32_t>* TupleIndex::Find(const Tuple& key) const {
  if (slots_.empty()) return nullptr;
  size_t slot = ProbeSlot(key, key.Hash());
  if (slots_[slot] == 0) return nullptr;
  return &groups_[slots_[slot] - 1].ids;
}

ColumnIndex::ColumnIndex(ColumnView keys, simd::SimdLevel level)
    : keys_(std::move(keys)), level_(simd::Resolve(level)) {
  size_t n = keys_.num_rows();
  // All rows are inserted up front, so size the table once (load < ~0.7)
  // and never rehash.
  slots_.assign(NextPowerOfTwo(n + n / 2 + 1), 0);
  groups_.reserve(n);
  std::vector<uint64_t> hashes;
  keys_.HashRows(&hashes, level_);
  for (size_t r = 0; r < n; ++r) {
    size_t slot = FindSlot(hashes[r], keys_, r);
    if (slots_[slot] == 0) {
      ColumnGroup g;
      g.lead = static_cast<uint32_t>(r);
      g.hash = hashes[r];
      g.rows.push_back(static_cast<uint32_t>(r));
      groups_.push_back(std::move(g));
      slots_[slot] = static_cast<uint32_t>(groups_.size());
    } else {
      groups_[slots_[slot] - 1].rows.push_back(static_cast<uint32_t>(r));
    }
  }
}

size_t ColumnIndex::FindSlot(uint64_t hash, const ColumnView& view,
                             size_t row) const {
  size_t mask = slots_.size() - 1;
  size_t i = static_cast<size_t>(hash) & mask;
  while (true) {
    uint32_t tag = slots_[i];
    if (tag == 0) return i;
    const ColumnGroup& g = groups_[tag - 1];
    if (g.hash == hash && keys_.RowsEqual(g.lead, view, row)) return i;
    i = (i + 1) & mask;
  }
}

uint32_t ColumnIndex::Probe(const ColumnView& probes, size_t row,
                            uint64_t hash) const {
  if (slots_.empty()) return kNoGroup;  // default-constructed index
  size_t slot = FindSlot(hash, probes, row);
  return slots_[slot] == 0 ? kNoGroup : slots_[slot] - 1;
}

void ColumnIndex::ProbeAll(const ColumnView& probes,
                           std::vector<uint32_t>* out) const {
  size_t n = probes.num_rows();
  out->assign(n, kNoGroup);
  if (n == 0) return;
  std::vector<uint64_t> hashes;
  probes.HashRows(&hashes, level_);
  if (slots_.empty()) return;  // default-constructed index: no groups
  // Gather indices are i32, so the batched first probe needs a table
  // capacity <= 2^31; larger tables (would need > 1.4G keys) walk
  // scalar. Both branches produce identical answers.
  if (slots_.size() > (size_t{1} << 31)) {
    for (size_t r = 0; r < n; ++r) (*out)[r] = Probe(probes, r, hashes[r]);
    return;
  }
  // Load every probe's first slot in one batch: an empty slot is a
  // definitive miss and a matching first slot a definitive hit, so the
  // scalar walk only runs on genuine collisions.
  std::vector<uint32_t> tags(n);
  simd::GatherSlotTags(slots_.data(), slots_.size() - 1, hashes.data(), n,
                       tags.data(), level_);
  for (size_t r = 0; r < n; ++r) {
    uint32_t tag = tags[r];
    if (tag == 0) continue;  // first slot empty: kNoGroup
    const ColumnGroup& g = groups_[tag - 1];
    if (g.hash == hashes[r] && keys_.RowsEqual(g.lead, probes, r)) {
      (*out)[r] = tag - 1;
    } else {
      (*out)[r] = Probe(probes, r, hashes[r]);
    }
  }
}

}  // namespace bagc
