#include "tuple/value_dictionary.h"

#include <algorithm>
#include <numeric>

#include "tuple/tuple.h"
#include "util/checked_math.h"

namespace bagc {

Result<ValueId> ValueDictionary::Intern(const std::string& external) {
  ++intern_calls_;
  auto it = index_.find(external);
  if (it != index_.end()) return it->second;
  // Next id = id_base_ + size(); reject once it would collide with the
  // reserved kInvalidValueId sentinel (i.e. past UINT32_MAX - 1).
  BAGC_ASSIGN_OR_RETURN(uint64_t next,
                        CheckedAdd(id_base_, static_cast<uint64_t>(externals_.size())));
  if (next >= static_cast<uint64_t>(kInvalidValueId)) {
    return Status::ArithmeticOverflow("value dictionary exhausted the uint32 id space");
  }
  ValueId id = static_cast<ValueId>(next);
  externals_.emplace_back(external);
  index_.emplace(externals_.back(), id);
  return id;
}

Status ValueDictionary::BulkLoad(const std::vector<std::string>& values) {
  if (!externals_.empty() || id_base_ != 0) {
    return Status::FailedPrecondition(
        "BulkLoad requires an empty dictionary: ids are meaningful only "
        "relative to one encoder, so merging id spaces is refused");
  }
  if (static_cast<uint64_t>(values.size()) >=
      static_cast<uint64_t>(kInvalidValueId)) {
    return Status::ArithmeticOverflow(
        "bulk load would exhaust the uint32 id space");
  }
  std::unordered_map<std::string, ValueId> index;
  index.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (!index.emplace(values[i], static_cast<ValueId>(i)).second) {
      return Status::InvalidArgument("duplicate value in dictionary block: '" +
                                     values[i] + "'");
    }
  }
  externals_ = values;
  index_ = std::move(index);
  return Status::OK();
}

std::optional<ValueId> ValueDictionary::Find(const std::string& external) const {
  auto it = index_.find(external);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::vector<ValueId> ValueDictionary::Canonicalize() {
  size_t n = externals_.size();
  // order[k] = old id of the k-th smallest external value.
  std::vector<ValueId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](ValueId a, ValueId b) {
    return externals_[a] < externals_[b];
  });
  std::vector<ValueId> remap(n);
  std::vector<std::string> sorted(n);
  for (size_t k = 0; k < n; ++k) {
    remap[order[k]] = static_cast<ValueId>(k);
    sorted[k] = std::move(externals_[order[k]]);
  }
  externals_ = std::move(sorted);
  index_.clear();
  for (size_t k = 0; k < n; ++k) {
    index_.emplace(externals_[k], static_cast<ValueId>(k));
  }
  return remap;
}

ValueDictionary& DictionarySet::dict(AttrId a) {
  if (a >= dicts_.size()) dicts_.resize(a + 1);
  if (dicts_[a] == nullptr) dicts_[a] = std::make_unique<ValueDictionary>();
  return *dicts_[a];
}

const ValueDictionary* DictionarySet::find_dict(AttrId a) const {
  if (a >= dicts_.size()) return nullptr;
  return dicts_[a].get();
}

Result<ValueId> DictionarySet::Intern(AttrId a, const std::string& external) {
  return dict(a).Intern(external);
}

Result<Tuple> DictionarySet::EncodeRow(const Schema& schema,
                                       const std::vector<std::string>& tokens) {
  if (tokens.size() != schema.arity()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  std::vector<ValueId> ids(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    BAGC_ASSIGN_OR_RETURN(ids[i], Intern(schema.at(i), tokens[i]));
  }
  return Tuple::OfIds(std::move(ids));
}

Result<std::vector<std::string>> DictionarySet::DecodeRow(const Schema& schema,
                                                          const Tuple& row) const {
  if (row.arity() != schema.arity()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  std::vector<std::string> out(row.arity());
  for (size_t i = 0; i < row.arity(); ++i) {
    const ValueDictionary* d = find_dict(schema.at(i));
    ValueId id = row.id(i);
    if (d == nullptr || id >= d->size()) {
      return Status::NotFound("row id was not issued by this dictionary set");
    }
    out[i] = d->ExternalOf(id);
  }
  return out;
}

size_t DictionarySet::num_dicts() const {
  size_t n = 0;
  for (const auto& d : dicts_) n += (d != nullptr);
  return n;
}

size_t DictionarySet::total_size() const {
  size_t n = 0;
  for (const auto& d : dicts_) n += (d == nullptr ? 0 : d->size());
  return n;
}

uint64_t DictionarySet::total_intern_calls() const {
  uint64_t n = 0;
  for (const auto& d : dicts_) n += (d == nullptr ? 0 : d->intern_calls());
  return n;
}

DictionarySet DictionarySet::Clone() const {
  DictionarySet copy;
  copy.dicts_.resize(dicts_.size());
  for (size_t a = 0; a < dicts_.size(); ++a) {
    if (dicts_[a] != nullptr) {
      copy.dicts_[a] = std::make_unique<ValueDictionary>(*dicts_[a]);
    }
  }
  return copy;
}

std::vector<std::vector<ValueId>> DictionarySet::CanonicalizeAll() {
  std::vector<std::vector<ValueId>> remaps(dicts_.size());
  for (size_t a = 0; a < dicts_.size(); ++a) {
    if (dicts_[a] != nullptr) remaps[a] = dicts_[a]->Canonicalize();
  }
  return remaps;
}

}  // namespace bagc
