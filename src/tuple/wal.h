// Delta write-ahead log: the durable twin of the in-memory delta
// commit path. A WAL file records the committed delta generations of
// one collection on top of one sealed base segment; a daemon restart
// (or a registry lazy reload) replays the log over --preload-seg and
// recovers the exact published state, so live mutating tenants no
// longer rewind to the sealed base. docs/WAL.md documents the byte
// layout with an annotated hexdump.
//
// File layout (all integers little-endian):
//
//   header (16 bytes)
//     0   8   magic "BAGCWAL\n"
//     8   4   u32 version (1)
//     12  4   u32 header size (16)
//   records, back to back, each:
//     0   4   u32 payload length
//     4   8   u64 FNV-1a checksum of the payload bytes
//     12  .   payload:
//               0   8   u64 generation id (strictly increasing)
//               8   8   u64 base-segment fingerprint (the BAGCSEG
//                       header checksum of the sealed base — see
//                       SegmentFingerprint)
//               16  4   u32 bag block count (>= 1)
//               per bag block:
//                 0   4   u32 bag index (position in the collection)
//                 4   4   u32 arity
//                 8   4   u32 row count (>= 1)
//                 per row: arity × u32 value ids, then i64 delta
//                          (two's complement u64 on the wire)
//
// Torn-vs-corrupt policy (the crash-recovery contract, pinned by
// tests/wal_test.cc under ASan/UBSan):
//   - A record that fails validation (checksum mismatch, or a length
//     field overrunning the end of the file) with NO checksum-valid
//     record anywhere after it is a torn tail from a crashed append:
//     it is dropped (and WalWriter::Open truncates it off atomically
//     before appending).
//   - The same damage with a checksum-valid record anywhere after it
//     is mid-file corruption, not a crash artifact: the reader refuses
//     the whole log (InvalidArgument → E_PARSE) rather than silently
//     skipping a committed generation. The successor probe SCANS every
//     byte offset past the damage instead of trusting the damaged
//     record's own length field — a bit flip in the length would
//     otherwise misalign a single probe and misclassify intact
//     committed records as tail debris.
//   - A checksum-valid record whose payload violates the grammar
//     (short payload, zero bags, zero rows, trailing bytes,
//     non-increasing generation, fingerprint differing from the first
//     record's) is refused (InvalidArgument → E_PARSE).
// The reader validates every length before dereferencing, mirroring
// the BAGCSEG reader's hostile-bytes discipline.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace bagc {

/// First 8 bytes of every WAL file.
inline constexpr std::string_view kWalMagic = "BAGCWAL\n";

/// Format version written and accepted by this build.
inline constexpr uint32_t kWalVersion = 1;

/// Fixed header size (bytes); records start here.
inline constexpr uint32_t kWalHeaderBytes = 16;

/// Bytes of framing before each record's payload (u32 length + u64
/// payload checksum).
inline constexpr uint32_t kWalRecordFrameBytes = 12;

/// Hard cap on one record's payload. A BEGIN/COMMIT transaction is
/// journaled as ONE record, so the session caps a transaction's
/// cumulative buffered bytes strictly below this (kMaxTxnWalBytes in
/// session.cc) — anything the wire accepted is guaranteed to encode.
inline constexpr uint32_t kWalMaxRecordPayload = 1u << 28;

/// One bag's signed row deltas within a committed generation.
/// `ids` is row-major (rows() × arity); `deltas[r]` is the signed
/// multiplicity adjustment of row r.
struct WalBagBlock {
  uint32_t bag_index = 0;
  uint32_t arity = 0;
  std::vector<uint32_t> ids;
  std::vector<int64_t> deltas;

  size_t rows() const { return deltas.size(); }
};

/// One committed delta generation: every bag it touched, all-or-nothing.
struct WalRecord {
  uint64_t generation = 0;
  uint64_t base_fingerprint = 0;
  std::vector<WalBagBlock> bags;
};

/// Everything a valid WAL file holds, plus the recovery accounting the
/// server reports (STATS wal_records / wal_bytes) and the smoke tests
/// assert on.
struct WalContents {
  std::vector<WalRecord> records;
  /// Bytes of header plus intact records — the offset a recovering
  /// writer truncates to.
  uint64_t valid_bytes = 0;
  /// Torn-tail bytes dropped past valid_bytes (0 for a clean log).
  uint64_t dropped_bytes = 0;
};

/// Serializes one record (framing + payload). Refuses empty batches,
/// empty bag blocks, id/arity shape mismatches, and payloads over
/// kWalMaxRecordPayload.
Result<std::string> EncodeWalRecord(const WalRecord& record);

/// Parses a whole WAL image per the torn-vs-corrupt policy above.
/// Borrows nothing: the returned records own their data.
Result<WalContents> ParseWal(std::string_view data);

/// Reads and parses the WAL at `path`. A missing file is NotFound; an
/// empty or header-only file is a valid empty log.
Result<WalContents> ReadWalFile(const std::string& path);

/// Reads the base-segment fingerprint a WAL record must carry: the
/// FNV-1a checksum stored at offset 24 of the BAGCSEG header at
/// `path`. Validates magic and version but not the full file — this is
/// the cheap identity probe run before deciding whether a WAL applies.
Result<uint64_t> SegmentFingerprint(const std::string& path);

/// fsyncs the directory containing `path`, making a just-created or
/// just-unlinked directory entry durable. Without it, a power loss can
/// drop the WAL file itself — and every fdatasync'd commit in it —
/// even though each record append was synced.
Status SyncParentDir(const std::string& path);

/// \brief Appender for one collection's WAL.
///
/// Open() creates the file (with header) if absent — fsyncing the
/// parent directory so the new entry is durable — and on an existing
/// file validates every record, atomically truncates a torn final
/// record, and refuses mid-file corruption. Append() writes the framed
/// record with O_APPEND semantics and fdatasyncs before returning, so
/// an acked commit survives power loss.
///
/// Fail-stop: any I/O error inside Append (short write, fdatasync)
/// truncates the file back to the last durable record boundary, closes
/// the descriptor, and permanently fails the writer — every later
/// Append returns FailedPrecondition. A writer that reported an error
/// can never chop or misaccount a previously committed record; the
/// owner must reopen (or re-seal the epoch) to resume.
/// Single-writer: the server serializes appends per collection.
/// Move-only.
class WalWriter {
 public:
  static Result<WalWriter> Open(const std::string& path);

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Durably appends one committed generation. The record's generation
  /// must be strictly greater than every generation already in the log.
  Status Append(const WalRecord& record);

  /// Append() with the record's bytes already produced by
  /// EncodeWalRecord(record) — the commit path encodes (and
  /// size-checks) BEFORE publishing so an unencodable batch is refused
  /// with nothing published, then appends without re-encoding.
  /// `encoded` MUST be EncodeWalRecord(record)'s output.
  Status AppendEncoded(const WalRecord& record, std::string_view encoded);

  /// True once an Append hit an I/O error; the writer refuses all
  /// further appends (see class comment).
  bool failed() const { return failed_; }

  /// Records in the log (pre-existing plus appended).
  uint64_t records() const { return records_; }
  /// Current file size in bytes.
  uint64_t bytes() const { return bytes_; }
  /// Highest generation in the log; 0 if the log is empty.
  uint64_t last_generation() const { return last_generation_; }
  /// Fingerprint carried by the log's records; 0 if the log is empty
  /// (the first append sets it).
  uint64_t base_fingerprint() const { return base_fingerprint_; }
  const std::string& path() const { return path_; }

 private:
  WalWriter() = default;
  void Close();
  // The fail-stop transition: truncate back to the last durable record
  // boundary (best effort), close the fd, refuse further appends.
  void FailPermanently();

  std::string path_;
  int fd_ = -1;
  bool failed_ = false;
  uint64_t bytes_ = 0;
  uint64_t records_ = 0;
  uint64_t last_generation_ = 0;
  uint64_t base_fingerprint_ = 0;
};

}  // namespace bagc
