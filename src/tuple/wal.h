// Delta write-ahead log: the durable twin of the in-memory delta
// commit path. A WAL file records the committed delta generations of
// one collection on top of one sealed base segment; a daemon restart
// (or a registry lazy reload) replays the log over --preload-seg and
// recovers the exact published state, so live mutating tenants no
// longer rewind to the sealed base. docs/WAL.md documents the byte
// layout with an annotated hexdump.
//
// File layout (all integers little-endian):
//
//   header (16 bytes)
//     0   8   magic "BAGCWAL\n"
//     8   4   u32 version (1)
//     12  4   u32 header size (16)
//   records, back to back, each:
//     0   4   u32 payload length
//     4   8   u64 FNV-1a checksum of the payload bytes
//     12  .   payload:
//               0   8   u64 generation id (strictly increasing)
//               8   8   u64 base-segment fingerprint (the BAGCSEG
//                       header checksum of the sealed base — see
//                       SegmentFingerprint)
//               16  4   u32 bag block count (>= 1)
//               per bag block:
//                 0   4   u32 bag index (position in the collection)
//                 4   4   u32 arity
//                 8   4   u32 row count (>= 1)
//                 per row: arity × u32 value ids, then i64 delta
//                          (two's complement u64 on the wire)
//
// Torn-vs-corrupt policy (the crash-recovery contract, pinned by
// tests/wal_test.cc under ASan/UBSan):
//   - A record that overruns the end of the file, or whose checksum
//     fails *and* is the last thing in the file, is a torn tail from a
//     crashed append: it is dropped (and WalWriter::Open truncates it
//     off atomically before appending).
//   - A checksum failure with a checksum-valid record after it is
//     mid-file corruption, not a crash artifact: the reader refuses
//     the whole log (InvalidArgument → E_PARSE) rather than silently
//     skipping a committed generation.
//   - A checksum-valid record whose payload violates the grammar
//     (short payload, zero bags, zero rows, trailing bytes,
//     non-increasing generation, fingerprint differing from the first
//     record's) is refused (InvalidArgument → E_PARSE).
// The reader validates every length before dereferencing, mirroring
// the BAGCSEG reader's hostile-bytes discipline.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace bagc {

/// First 8 bytes of every WAL file.
inline constexpr std::string_view kWalMagic = "BAGCWAL\n";

/// Format version written and accepted by this build.
inline constexpr uint32_t kWalVersion = 1;

/// Fixed header size (bytes); records start here.
inline constexpr uint32_t kWalHeaderBytes = 16;

/// Bytes of framing before each record's payload (u32 length + u64
/// payload checksum).
inline constexpr uint32_t kWalRecordFrameBytes = 12;

/// Hard cap on one record's payload; larger commits must be split.
/// Matches the session body cap so anything the wire accepted fits.
inline constexpr uint32_t kWalMaxRecordPayload = 1u << 28;

/// One bag's signed row deltas within a committed generation.
/// `ids` is row-major (rows() × arity); `deltas[r]` is the signed
/// multiplicity adjustment of row r.
struct WalBagBlock {
  uint32_t bag_index = 0;
  uint32_t arity = 0;
  std::vector<uint32_t> ids;
  std::vector<int64_t> deltas;

  size_t rows() const { return deltas.size(); }
};

/// One committed delta generation: every bag it touched, all-or-nothing.
struct WalRecord {
  uint64_t generation = 0;
  uint64_t base_fingerprint = 0;
  std::vector<WalBagBlock> bags;
};

/// Everything a valid WAL file holds, plus the recovery accounting the
/// server reports (STATS wal_records / wal_bytes) and the smoke tests
/// assert on.
struct WalContents {
  std::vector<WalRecord> records;
  /// Bytes of header plus intact records — the offset a recovering
  /// writer truncates to.
  uint64_t valid_bytes = 0;
  /// Torn-tail bytes dropped past valid_bytes (0 for a clean log).
  uint64_t dropped_bytes = 0;
};

/// Serializes one record (framing + payload). Refuses empty batches,
/// empty bag blocks, id/arity shape mismatches, and payloads over
/// kWalMaxRecordPayload.
Result<std::string> EncodeWalRecord(const WalRecord& record);

/// Parses a whole WAL image per the torn-vs-corrupt policy above.
/// Borrows nothing: the returned records own their data.
Result<WalContents> ParseWal(std::string_view data);

/// Reads and parses the WAL at `path`. A missing file is NotFound; an
/// empty or header-only file is a valid empty log.
Result<WalContents> ReadWalFile(const std::string& path);

/// Reads the base-segment fingerprint a WAL record must carry: the
/// FNV-1a checksum stored at offset 24 of the BAGCSEG header at
/// `path`. Validates magic and version but not the full file — this is
/// the cheap identity probe run before deciding whether a WAL applies.
Result<uint64_t> SegmentFingerprint(const std::string& path);

/// \brief Appender for one collection's WAL.
///
/// Open() creates the file (with header) if absent; on an existing
/// file it validates every record, atomically truncates a torn final
/// record, and refuses mid-file corruption. Append() writes the framed
/// record with O_APPEND semantics and fdatasyncs before returning, so
/// an acked commit survives power loss. Single-writer: the server
/// serializes appends per collection. Move-only.
class WalWriter {
 public:
  static Result<WalWriter> Open(const std::string& path);

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Durably appends one committed generation. The record's generation
  /// must be strictly greater than every generation already in the log.
  Status Append(const WalRecord& record);

  /// Records in the log (pre-existing plus appended).
  uint64_t records() const { return records_; }
  /// Current file size in bytes.
  uint64_t bytes() const { return bytes_; }
  /// Highest generation in the log; 0 if the log is empty.
  uint64_t last_generation() const { return last_generation_; }
  /// Fingerprint carried by the log's records; 0 if the log is empty
  /// (the first append sets it).
  uint64_t base_fingerprint() const { return base_fingerprint_; }
  const std::string& path() const { return path_; }

 private:
  WalWriter() = default;
  void Close();

  std::string path_;
  int fd_ = -1;
  uint64_t bytes_ = 0;
  uint64_t records_ = 0;
  uint64_t last_generation_ = 0;
  uint64_t base_fingerprint_ = 0;
};

}  // namespace bagc
