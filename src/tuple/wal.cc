#include "tuple/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "tuple/segment.h"

namespace bagc {

namespace {

// Same FNV-1a 64 as the segment codec: catches truncation and bit rot,
// not adversaries — the reader validates structure independently.
uint64_t Fnv1a(const char* data, size_t n) {
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

void AppendU32(std::string* out, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(b, sizeof(b));
}

void AppendU64(std::string* out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(b, sizeof(b));
}

// memcpy loads: record offsets are arbitrary, so nothing in the buffer
// may be assumed aligned.
uint32_t LoadU32(const char* p) {
  unsigned char b[4];
  std::memcpy(b, p, 4);
  return uint32_t{b[0]} | uint32_t{b[1]} << 8 | uint32_t{b[2]} << 16 |
         uint32_t{b[3]} << 24;
}

uint64_t LoadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    unsigned char byte;
    std::memcpy(&byte, p + i, 1);
    v |= uint64_t{byte} << (8 * i);
  }
  return v;
}

std::string WalHeader() {
  std::string h(kWalMagic);
  AppendU32(&h, kWalVersion);
  AppendU32(&h, kWalHeaderBytes);
  return h;
}

// Bounded cursor over one record's payload. All Take* methods check
// remaining length before dereferencing.
class PayloadCursor {
 public:
  PayloadCursor(const char* data, size_t size) : data_(data), size_(size) {}

  bool TakeU32(uint32_t* out) {
    if (size_ - pos_ < 4) return false;
    *out = LoadU32(data_ + pos_);
    pos_ += 4;
    return true;
  }
  bool TakeU64(uint64_t* out) {
    if (size_ - pos_ < 8) return false;
    *out = LoadU64(data_ + pos_);
    pos_ += 8;
    return true;
  }
  size_t remaining() const { return size_ - pos_; }
  const char* cursor() const { return data_ + pos_; }
  void Skip(size_t n) { pos_ += n; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

// Decodes one checksum-valid payload into a record, enforcing the
// grammar (counts, shapes, exact consumption). Generation/fingerprint
// ordering is checked by the caller, which sees the whole log.
// Whether any checksum-valid record starts at or after `from`. The
// damage classifier cannot trust the damaged record's own length field
// (it may BE the flipped bytes), so it scans every candidate offset:
// an intact committed record anywhere past the damage proves mid-file
// corruption rather than a torn tail. A 64-bit checksum makes a false
// positive inside genuine tail debris negligible. Cost is paid only on
// the recovery path of an already-damaged log, where refusing slowly
// beats dropping wrongly.
bool HasValidRecordAfter(std::string_view data, size_t from) {
  for (size_t probe = from; probe + kWalRecordFrameBytes <= data.size();
       ++probe) {
    uint64_t len = LoadU32(data.data() + probe);
    if (len > kWalMaxRecordPayload) continue;
    if (probe + kWalRecordFrameBytes + len > data.size()) continue;
    const char* payload = data.data() + probe + kWalRecordFrameBytes;
    if (LoadU64(data.data() + probe + 4) ==
        Fnv1a(payload, static_cast<size_t>(len))) {
      return true;
    }
  }
  return false;
}

Status DecodePayload(const char* data, size_t size, WalRecord* out) {
  PayloadCursor cur(data, size);
  uint32_t bag_count = 0;
  if (!cur.TakeU64(&out->generation) || !cur.TakeU64(&out->base_fingerprint) ||
      !cur.TakeU32(&bag_count)) {
    return Status::InvalidArgument("WAL record payload shorter than its header");
  }
  if (bag_count == 0) {
    return Status::InvalidArgument("WAL record carries no bag blocks");
  }
  out->bags.clear();
  out->bags.reserve(bag_count);
  for (uint32_t b = 0; b < bag_count; ++b) {
    WalBagBlock block;
    uint32_t rows = 0;
    if (!cur.TakeU32(&block.bag_index) || !cur.TakeU32(&block.arity) ||
        !cur.TakeU32(&rows)) {
      return Status::InvalidArgument("WAL bag block header extends past payload");
    }
    if (block.arity == 0) {
      return Status::InvalidArgument("WAL bag block has arity 0");
    }
    if (rows == 0) {
      return Status::InvalidArgument("WAL bag block has no rows");
    }
    // row bytes = arity*4 + 8; both factors fit u32 so u64 math is safe.
    uint64_t row_bytes = uint64_t{block.arity} * 4 + 8;
    if (uint64_t{rows} * row_bytes > cur.remaining()) {
      return Status::InvalidArgument("WAL bag block rows extend past payload");
    }
    block.ids.reserve(size_t{rows} * block.arity);
    block.deltas.reserve(rows);
    for (uint32_t r = 0; r < rows; ++r) {
      const char* p = cur.cursor();
      for (uint32_t c = 0; c < block.arity; ++c) {
        block.ids.push_back(LoadU32(p + 4 * uint64_t{c}));
      }
      block.deltas.push_back(
          static_cast<int64_t>(LoadU64(p + 4 * uint64_t{block.arity})));
      cur.Skip(static_cast<size_t>(row_bytes));
    }
    out->bags.push_back(std::move(block));
  }
  if (cur.remaining() != 0) {
    return Status::InvalidArgument(
        "WAL record payload has " + std::to_string(cur.remaining()) +
        " trailing bytes");
  }
  return Status::OK();
}

}  // namespace

Result<std::string> EncodeWalRecord(const WalRecord& record) {
  if (record.bags.empty()) {
    return Status::InvalidArgument("refusing to log an empty delta batch");
  }
  std::string payload;
  AppendU64(&payload, record.generation);
  AppendU64(&payload, record.base_fingerprint);
  AppendU32(&payload, static_cast<uint32_t>(record.bags.size()));
  for (const WalBagBlock& block : record.bags) {
    if (block.arity == 0) {
      return Status::InvalidArgument("WAL bag block has arity 0");
    }
    if (block.deltas.empty()) {
      return Status::InvalidArgument("refusing to log an empty bag block");
    }
    if (block.ids.size() != block.deltas.size() * block.arity) {
      return Status::InvalidArgument(
          "WAL bag block id count does not match rows × arity");
    }
    if (block.deltas.size() > UINT32_MAX) {
      return Status::OutOfRange("WAL bag block row count overflows u32");
    }
    AppendU32(&payload, block.bag_index);
    AppendU32(&payload, block.arity);
    AppendU32(&payload, static_cast<uint32_t>(block.deltas.size()));
    for (size_t r = 0; r < block.deltas.size(); ++r) {
      for (uint32_t c = 0; c < block.arity; ++c) {
        AppendU32(&payload, block.ids[r * block.arity + c]);
      }
      AppendU64(&payload, static_cast<uint64_t>(block.deltas[r]));
    }
  }
  if (payload.size() > kWalMaxRecordPayload) {
    return Status::OutOfRange("WAL record payload exceeds " +
                              std::to_string(kWalMaxRecordPayload) + " bytes");
  }
  std::string out;
  out.reserve(kWalRecordFrameBytes + payload.size());
  AppendU32(&out, static_cast<uint32_t>(payload.size()));
  AppendU64(&out, Fnv1a(payload.data(), payload.size()));
  out += payload;
  return out;
}

Result<WalContents> ParseWal(std::string_view data) {
  WalContents contents;
  // Empty file: a crash between O_CREAT and the header write. Valid,
  // empty; the writer lays the header down again.
  if (data.empty()) return contents;
  const std::string header = WalHeader();
  if (data.size() < kWalHeaderBytes) {
    // A torn header write. Only droppable if what's there is a prefix
    // of the real header — anything else is not ours.
    if (std::memcmp(data.data(), header.data(), data.size()) != 0) {
      return Status::InvalidArgument("bad WAL magic");
    }
    contents.dropped_bytes = data.size();
    return contents;
  }
  if (std::memcmp(data.data(), kWalMagic.data(), kWalMagic.size()) != 0) {
    return Status::InvalidArgument("bad WAL magic");
  }
  uint32_t version = LoadU32(data.data() + 8);
  if (version != kWalVersion) {
    return Status::InvalidArgument("unsupported WAL version " +
                                   std::to_string(version) + " (expected " +
                                   std::to_string(kWalVersion) + ")");
  }
  if (LoadU32(data.data() + 12) != kWalHeaderBytes) {
    return Status::InvalidArgument("bad WAL header size");
  }
  contents.valid_bytes = kWalHeaderBytes;

  size_t off = kWalHeaderBytes;
  while (off < data.size()) {
    size_t remaining = data.size() - off;
    if (remaining < kWalRecordFrameBytes) {
      break;  // torn frame at the tail
    }
    uint64_t len = LoadU32(data.data() + off);
    const char* payload = data.data() + off + kWalRecordFrameBytes;
    bool frame_fits = kWalRecordFrameBytes + len <= remaining;
    if (!frame_fits ||
        LoadU64(data.data() + off + 4) !=
            Fnv1a(payload, static_cast<size_t>(len))) {
      // A damaged record: overrunning length or failing checksum. The
      // length field itself may be the damaged bytes, so the successor
      // probe scans every offset past it (HasValidRecordAfter) instead
      // of trusting it. An intact record anywhere after the damage
      // means a *committed* generation is corrupted mid-file — refuse
      // rather than silently skip it. Otherwise the damage (and
      // everything after) is tail debris from one torn append; drop
      // from here.
      if (HasValidRecordAfter(data, off + 1)) {
        return Status::InvalidArgument(
            "WAL record at offset " + std::to_string(off) +
            " is damaged (" +
            (frame_fits ? "checksum mismatch" : "length overruns the file") +
            ") with intact records after it — mid-file corruption, not a "
            "torn tail");
      }
      break;
    }
    WalRecord record;
    Status st = DecodePayload(payload, static_cast<size_t>(len), &record);
    if (!st.ok()) {
      return Status::InvalidArgument("WAL record at offset " +
                                     std::to_string(off) + ": " + st.message());
    }
    if (!contents.records.empty()) {
      const WalRecord& prev = contents.records.back();
      if (record.generation <= prev.generation) {
        return Status::InvalidArgument(
            "WAL generation " + std::to_string(record.generation) +
            " at offset " + std::to_string(off) +
            " does not increase past " + std::to_string(prev.generation));
      }
      if (record.base_fingerprint != prev.base_fingerprint) {
        return Status::InvalidArgument(
            "WAL record at offset " + std::to_string(off) +
            " carries base fingerprint " +
            std::to_string(record.base_fingerprint) +
            " but the log opened with " +
            std::to_string(prev.base_fingerprint));
      }
    }
    contents.records.push_back(std::move(record));
    off += kWalRecordFrameBytes + static_cast<size_t>(len);
    contents.valid_bytes = off;
  }
  contents.dropped_bytes = data.size() - contents.valid_bytes;
  return contents;
}

Result<WalContents> ReadWalFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("open(" + path + "): " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    Status err = Status::Internal("fstat(" + path + "): " + std::strerror(errno));
    ::close(fd);
    return err;
  }
  std::string bytes(static_cast<size_t>(st.st_size), '\0');
  size_t got = 0;
  while (got < bytes.size()) {
    ssize_t n = ::pread(fd, bytes.data() + got, bytes.size() - got, got);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      return Status::Internal("read(" + path + "): " +
                              (n < 0 ? std::strerror(errno) : "short read"));
    }
    got += static_cast<size_t>(n);
  }
  ::close(fd);
  auto parsed = ParseWal(bytes);
  if (!parsed.ok()) {
    return Status::Error(parsed.status().code(),
                         path + ": " + parsed.status().message());
  }
  return parsed;
}

Result<uint64_t> SegmentFingerprint(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("open(" + path + "): " + std::strerror(errno));
  }
  char header[kSegmentHeaderBytes];
  size_t got = 0;
  while (got < sizeof(header)) {
    ssize_t n = ::pread(fd, header + got, sizeof(header) - got, got);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      ::close(fd);
      return Status::Internal("read(" + path + "): " + std::strerror(errno));
    }
    if (n == 0) break;
    got += static_cast<size_t>(n);
  }
  ::close(fd);
  if (got < sizeof(header)) {
    return Status::InvalidArgument("truncated segment file " + path + " (" +
                                   std::to_string(got) + " bytes)");
  }
  if (std::memcmp(header, kSegmentMagic.data(), kSegmentMagic.size()) != 0) {
    return Status::InvalidArgument("bad segment magic in " + path);
  }
  if (LoadU32(header + 8) != kSegmentVersion) {
    return Status::InvalidArgument("unsupported segment version in " + path);
  }
  return LoadU64(header + 24);
}

Status SyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = (slash == std::string::npos) ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal("open(" + dir + "): " + std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    Status err = Status::Internal("fsync(" + dir + "): " + std::strerror(errno));
    ::close(fd);
    return err;
  }
  ::close(fd);
  return Status::OK();
}

Result<WalWriter> WalWriter::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::Internal("open(" + path + "): " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    Status err = Status::Internal("fstat(" + path + "): " + std::strerror(errno));
    ::close(fd);
    return err;
  }
  std::string bytes(static_cast<size_t>(st.st_size), '\0');
  size_t got = 0;
  while (got < bytes.size()) {
    ssize_t n = ::pread(fd, bytes.data() + got, bytes.size() - got, got);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      return Status::Internal("read(" + path + "): " +
                              (n < 0 ? std::strerror(errno) : "short read"));
    }
    got += static_cast<size_t>(n);
  }
  auto parsed = ParseWal(bytes);
  if (!parsed.ok()) {
    ::close(fd);
    return Status::Error(parsed.status().code(),
                         path + ": " + parsed.status().message());
  }
  const WalContents& contents = parsed.value();
  if (contents.dropped_bytes > 0) {
    // Atomic torn-tail amputation: one ftruncate to the last intact
    // record boundary, before any new append can land after the tear.
    if (::ftruncate(fd, static_cast<off_t>(contents.valid_bytes)) != 0) {
      Status err = Status::Internal("ftruncate(" + path + "): " +
                                    std::strerror(errno));
      ::close(fd);
      return err;
    }
  }
  WalWriter writer;
  writer.path_ = path;
  writer.fd_ = fd;
  writer.bytes_ = contents.valid_bytes;
  writer.records_ = contents.records.size();
  if (!contents.records.empty()) {
    writer.last_generation_ = contents.records.back().generation;
    writer.base_fingerprint_ = contents.records.back().base_fingerprint;
  }
  if (writer.bytes_ < kWalHeaderBytes) {
    std::string header = WalHeader();
    size_t put = 0;
    while (put < header.size()) {
      ssize_t n = ::write(fd, header.data() + put, header.size() - put);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        return Status::Internal("write(" + path + "): " +
                                std::strerror(errno));
      }
      put += static_cast<size_t>(n);
    }
    if (::fdatasync(fd) != 0) {
      return Status::Internal("fdatasync(" + path + "): " +
                              std::strerror(errno));
    }
    writer.bytes_ = kWalHeaderBytes;
  }
  // The records are only as durable as the directory entry pointing at
  // them: fsync the parent so a just-created (O_CREAT) file survives
  // power loss before the first commit is acked.
  BAGC_RETURN_NOT_OK(SyncParentDir(path));
  return writer;
}

Status WalWriter::Append(const WalRecord& record) {
  BAGC_ASSIGN_OR_RETURN(std::string bytes, EncodeWalRecord(record));
  return AppendEncoded(record, bytes);
}

Status WalWriter::AppendEncoded(const WalRecord& record,
                                std::string_view encoded) {
  if (fd_ < 0) {
    return Status::FailedPrecondition(
        failed_ ? "WAL writer failed on a previous append; reopen the log"
                : "WAL writer is closed");
  }
  if (record.generation <= last_generation_ && records_ > 0) {
    return Status::InvalidArgument(
        "WAL generation " + std::to_string(record.generation) +
        " does not increase past " + std::to_string(last_generation_));
  }
  if (records_ > 0 && record.base_fingerprint != base_fingerprint_) {
    return Status::InvalidArgument(
        "WAL append carries base fingerprint " +
        std::to_string(record.base_fingerprint) + " but the log holds " +
        std::to_string(base_fingerprint_));
  }
  size_t put = 0;
  while (put < encoded.size()) {
    ssize_t n = ::write(fd_, encoded.data() + put, encoded.size() - put);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      Status err = Status::Internal("write(" + path_ + "): " +
                                    std::strerror(errno));
      FailPermanently();
      return err;
    }
    put += static_cast<size_t>(n);
  }
  if (::fdatasync(fd_) != 0) {
    // The record's bytes are fully in the file but not provably on the
    // medium, and post-fsync-failure page state is unknowable. Fail
    // stop: amputate back to the last durable boundary and retire the
    // writer — reusing it could later truncate with stale accounting
    // and chop a committed record mid-file.
    Status err = Status::Internal("fdatasync(" + path_ + "): " +
                                  std::strerror(errno));
    FailPermanently();
    return err;
  }
  bytes_ += encoded.size();
  records_ += 1;
  last_generation_ = record.generation;
  base_fingerprint_ = record.base_fingerprint;
  return Status::OK();
}

void WalWriter::FailPermanently() {
  // A partial or unsynced append is exactly the torn tail the reader
  // knows how to drop; amputate it now (best effort — the reader drops
  // it on the next Open regardless) and refuse every further append so
  // stale accounting can never truncate a committed record.
  ::ftruncate(fd_, static_cast<off_t>(bytes_));
  ::close(fd_);
  fd_ = -1;
  failed_ = true;
}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      failed_(other.failed_),
      bytes_(other.bytes_),
      records_(other.records_),
      last_generation_(other.last_generation_),
      base_fingerprint_(other.base_fingerprint_) {
  other.fd_ = -1;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    Close();
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    failed_ = other.failed_;
    bytes_ = other.bytes_;
    records_ = other.records_;
    last_generation_ = other.last_generation_;
    base_fingerprint_ = other.base_fingerprint_;
    other.fd_ = -1;
  }
  return *this;
}

WalWriter::~WalWriter() { Close(); }

void WalWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace bagc
