#include "tuple/attribute.h"

namespace bagc {

AttrId AttributeCatalog::Intern(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  AttrId id = static_cast<AttrId>(names_.size());
  names_.push_back(name);
  domain_sizes_.emplace_back();
  index_.emplace(name, id);
  return id;
}

Result<AttrId> AttributeCatalog::Register(const std::string& name) {
  if (index_.count(name) > 0) {
    return Status::AlreadyExists("attribute '" + name + "' already registered");
  }
  return Intern(name);
}

Status AttributeCatalog::SetDomainSize(AttrId id, uint64_t size) {
  if (id >= names_.size()) {
    return Status::NotFound("attribute id out of range");
  }
  if (size == 0) {
    return Status::InvalidArgument("domain must be non-empty");
  }
  domain_sizes_[id] = size;
  return Status::OK();
}

std::optional<uint64_t> AttributeCatalog::DomainSize(AttrId id) const {
  if (id >= domain_sizes_.size()) return std::nullopt;
  return domain_sizes_[id];
}

std::string AttributeCatalog::Name(AttrId id) const {
  if (id < names_.size()) return names_[id];
  return "attr" + std::to_string(id);
}

Result<AttrId> AttributeCatalog::Lookup(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("attribute '" + name + "' not registered");
  }
  return it->second;
}

}  // namespace bagc
