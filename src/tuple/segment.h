// Sealed-bag segments: the mmap-able on-disk twin of the columnar
// (SoA) in-memory representation. A segment file carries a whole sealed
// collection — per-attribute dictionary externals plus each bag's
// column-major u32 id columns and u64 multiplicities — in a versioned,
// checksummed layout whose column blobs are aligned so a reader can
// serve them *in place*: SegmentReader::Map mmaps the file, validates
// every offset once, and hands out ColumnStore::Borrow views over the
// mapped spans with zero parse (no decimal scan, no interning, no row
// materialization). docs/SEGMENT.md documents the byte layout with an
// annotated hexdump.
//
// File layout (all integers little-endian):
//
//   header (64 bytes)
//     0   8   magic "BAGCSEG\n"
//     8   4   u32 version (1)
//     12  4   u32 header size (64)
//     16  8   u64 file size
//     24  8   u64 FNV-1a checksum of bytes [64, file size)
//     32  4   u32 attribute count
//     36  4   u32 bag count
//     40  8   u64 attribute table offset
//     48  8   u64 bag table offset
//     56  8   reserved (0)
//   attribute table: 32-byte entries
//     0   8   u64 name offset        4-byte-aligned UTF-8, no NUL
//     8   4   u32 name length
//     12  4   u32 value count
//     16  8   u64 value-offsets offset   (count+1) u32 prefix offsets,
//                                        4-byte-aligned, non-decreasing
//     24  8   u64 value-blob offset      concatenated externals; value i
//                                        is blob[offsets[i], offsets[i+1])
//   bag table: 48-byte entries
//     0   8   u64 name offset
//     8   4   u32 name length
//     12  4   u32 arity
//     16  8   u64 column-attrs offset    arity × u32 attr-table indices,
//                                        4-byte-aligned, schema order
//     24  8   u64 columns offset         arity × rows × u32 ids,
//                                        column-major, 4-byte-aligned
//     32  8   u64 multiplicities offset  rows × u64, 8-byte-aligned
//     40  8   u64 row count
//   heap: names, offset arrays, blobs, columns, multiplicities
//
// Error classes mirror the wire mapping (server/protocol.h): a
// malformed structure (magic, version, checksum, misalignment,
// inconsistent counts) is InvalidArgument → E_PARSE; any offset or
// length pointing outside the file is OutOfRange → E_RANGE. The reader
// never dereferences an unvalidated offset, so a truncated or crafted
// file fails cleanly under ASan/UBSan (tests/segment_test.cc).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bag/bag.h"
#include "tuple/attribute.h"
#include "tuple/column_store.h"
#include "tuple/value_dictionary.h"
#include "util/result.h"

namespace bagc {

/// First 8 bytes of every segment file.
inline constexpr std::string_view kSegmentMagic = "BAGCSEG\n";

/// Format version written and accepted by this build.
inline constexpr uint32_t kSegmentVersion = 1;

/// Fixed header size (bytes); also the start of the checksummed region.
inline constexpr uint32_t kSegmentHeaderBytes = 64;

/// Serializes a sealed collection as a segment. Every attribute used by
/// a bag schema must have a dictionary in `dicts` covering every id the
/// bags carry (the segment ships dictionaries, so fully-interned
/// collections only — numerically built bags cannot round-trip).
/// `names[i]` names `bags[i]` and must be non-empty.
Result<std::string> EncodeSegment(const std::vector<std::string>& names,
                                  const std::vector<Bag>& bags,
                                  const AttributeCatalog& catalog,
                                  const DictionarySet& dicts);

/// EncodeSegment + atomic write (temp file, then rename) to `path`.
Status WriteSegmentFile(const std::string& path,
                        const std::vector<std::string>& names,
                        const std::vector<Bag>& bags,
                        const AttributeCatalog& catalog,
                        const DictionarySet& dicts);

/// \brief A validated, zero-copy view of one segment file.
///
/// Map() mmaps the file (read-only, private) and owns the mapping;
/// Parse() borrows caller-owned bytes (tests, in-memory round trips).
/// All validation happens up front — accessors are unchecked and
/// borrow from the underlying bytes, so the reader must outlive every
/// string_view, ColumnStore, and multiplicity pointer it hands out.
/// Move-only; moving keeps borrowed pointers valid (they point into the
/// mapping, not the object).
class SegmentReader {
 public:
  static Result<SegmentReader> Map(const std::string& path);
  static Result<SegmentReader> Parse(std::string_view data);

  SegmentReader(SegmentReader&& other) noexcept;
  SegmentReader& operator=(SegmentReader&& other) noexcept;
  SegmentReader(const SegmentReader&) = delete;
  SegmentReader& operator=(const SegmentReader&) = delete;
  ~SegmentReader();

  size_t num_attrs() const { return attrs_.size(); }
  size_t num_bags() const { return bags_.size(); }

  std::string_view attr_name(size_t a) const { return attrs_[a].name; }
  size_t attr_value_count(size_t a) const { return attrs_[a].count; }
  /// The externals of attribute `a` in id order — the exact sequence
  /// ValueDictionary::BulkLoad reconstructs the dictionary from.
  std::vector<std::string> AttrValues(size_t a) const;

  std::string_view bag_name(size_t b) const { return bags_[b].name; }
  size_t bag_arity(size_t b) const { return bags_[b].arity; }
  size_t bag_rows(size_t b) const { return bags_[b].rows; }
  /// Attr-table index of bag b's column c (schema order).
  size_t bag_attr(size_t b, size_t c) const;

  /// Zero-copy column store over the mapped column-major ids of bag b.
  /// Borrows from the mapping — see the class ownership rules.
  ColumnStore Columns(size_t b) const;
  /// Row multiplicities of bag b (rows() entries, 8-byte-aligned).
  const uint64_t* Mults(size_t b) const;

 private:
  struct AttrMeta {
    std::string_view name;
    uint32_t count = 0;
    const char* offsets = nullptr;  // (count+1) × u32, validated aligned
    const char* blob = nullptr;
    uint64_t blob_len = 0;
  };
  struct BagMeta {
    std::string_view name;
    uint32_t arity = 0;
    uint64_t rows = 0;
    const char* attrs = nullptr;    // arity × u32, validated aligned
    const char* columns = nullptr;  // arity × rows × u32, validated aligned
    const char* mults = nullptr;    // rows × u64, validated aligned
  };

  SegmentReader() = default;
  Status Init(std::string_view data);
  void Unmap();

  const char* data_ = nullptr;
  size_t size_ = 0;
  void* mapping_ = nullptr;  // non-null: Map() owns an mmap to release
  std::vector<AttrMeta> attrs_;
  std::vector<BagMeta> bags_;
};

}  // namespace bagc
