#include "tuple/tuple.h"

namespace bagc {

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(at(i));
  }
  out += ")";
  return out;
}

Result<TupleJoiner> TupleJoiner::Make(const Schema& x, const Schema& y) {
  TupleJoiner j;
  j.xy_ = Schema::Union(x, y);
  j.shared_ = Schema::Intersect(x, y);
  j.sources_.reserve(j.xy_.arity());
  for (size_t i = 0; i < j.xy_.arity(); ++i) {
    AttrId a = j.xy_.at(i);
    if (x.Contains(a)) {
      BAGC_ASSIGN_OR_RETURN(size_t idx, x.IndexOf(a));
      j.sources_.emplace_back(true, idx);
    } else {
      BAGC_ASSIGN_OR_RETURN(size_t idx, y.IndexOf(a));
      j.sources_.emplace_back(false, idx);
    }
  }
  j.shared_slots_.reserve(j.shared_.arity());
  for (size_t i = 0; i < j.shared_.arity(); ++i) {
    AttrId a = j.shared_.at(i);
    BAGC_ASSIGN_OR_RETURN(size_t xi, x.IndexOf(a));
    BAGC_ASSIGN_OR_RETURN(size_t yi, y.IndexOf(a));
    j.shared_slots_.emplace_back(xi, yi);
  }
  return j;
}

bool TupleJoiner::Joinable(const Tuple& x, const Tuple& y) const {
  // Raw id compares: shared-attribute values are id-equal by construction
  // when both rows were interned through the same dictionaries (or the
  // legacy codec).
  for (const auto& [xi, yi] : shared_slots_) {
    if (x.id(xi) != y.id(yi)) return false;
  }
  return true;
}

Tuple TupleJoiner::Join(const Tuple& x, const Tuple& y) const {
  std::vector<ValueId> out(sources_.size());
  for (size_t i = 0; i < sources_.size(); ++i) {
    const auto& [from_left, idx] = sources_[i];
    out[i] = from_left ? x.id(idx) : y.id(idx);
  }
  return Tuple::OfIds(std::move(out));
}

}  // namespace bagc
