// Attributes and their catalog. An attribute is a symbol with an associated
// domain (paper §2). Internally attributes are dense integer ids; the
// catalog maps ids to names and optional finite-domain metadata used by
// workload generators and by constructions that need a default domain
// element (Lemma 4 vertex deletion).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.h"

namespace bagc {

/// Dense attribute identifier.
using AttrId = uint32_t;

/// Domain element. Domains are subsets of int64; generators typically use
/// {0, ..., d-1}.
using Value = int64_t;

/// \brief Registry of attribute names and domain metadata.
///
/// The catalog is append-only; ids are assigned densely in registration
/// order. Library algorithms operate purely on ids — the catalog exists for
/// I/O, examples, and generators.
class AttributeCatalog {
 public:
  AttributeCatalog() = default;

  /// Registers (or returns the existing id of) an attribute by name.
  AttrId Intern(const std::string& name);

  /// Registers `name` and errors if it already exists.
  Result<AttrId> Register(const std::string& name);

  /// Declares a finite domain {0, ..., size-1} for the attribute.
  Status SetDomainSize(AttrId id, uint64_t size);

  /// Domain size if declared.
  std::optional<uint64_t> DomainSize(AttrId id) const;

  /// Name lookup; "attr<id>" fallback for unregistered ids.
  std::string Name(AttrId id) const;

  /// Id lookup by name.
  Result<AttrId> Lookup(const std::string& name) const;

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::vector<std::optional<uint64_t>> domain_sizes_;
  std::unordered_map<std::string, AttrId> index_;
};

}  // namespace bagc
