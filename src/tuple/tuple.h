// Tuples over a schema (paper §2). A Tuple is a function from attributes to
// domain values, stored as a fixed-width interned row aligned with the
// canonical sorted layout of its schema: one ValueId (uint32) per slot.
// Equality/ordering/hashing act on the raw id row (memcmp-style word
// compares — never on external values), which is sound because the
// paper's algorithms only compare values for equality (renaming
// invariance). Tup(∅) is non-empty: it contains the empty tuple.
//
// External values enter a row two ways:
//   - the historical numeric API: Tuple({v...}) with int64 Values, which
//     encodes through the legacy codec (value_codec.h; id == value for
//     the common non-negative range), and
//   - per-attribute ValueDictionary interning (value_dictionary.h), used
//     by bag_io and BagBuilder::AddExternal for string-valued data.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "tuple/schema.h"
#include "tuple/value_codec.h"
#include "tuple/value_dictionary.h"
#include "util/hash.h"
#include "util/result.h"

namespace bagc {

/// \brief Fixed-width interned row aligned with a Schema's sorted
/// attribute order.
///
/// Tuples do not carry their schema (bags store one schema for all their
/// tuples); operations that need the schema take it as a parameter.
class Tuple {
 public:
  Tuple() = default;
  /// Encodes external numeric values through the legacy codec (identity
  /// for [0, 2^31), side table otherwise — see value_codec.h).
  explicit Tuple(const std::vector<Value>& values) {
    ids_.reserve(values.size());
    for (Value v : values) ids_.push_back(EncodeValue(v));
  }

  /// Wraps an already-interned id row (dictionary or codec ids).
  static Tuple OfIds(std::vector<ValueId> ids) {
    Tuple t;
    t.ids_ = std::move(ids);
    return t;
  }

  size_t arity() const { return ids_.size(); }

  /// Raw interned id of slot i — the hot-path accessor.
  ValueId id(size_t i) const { return ids_[i]; }
  /// The raw id row.
  const std::vector<ValueId>& ids() const { return ids_; }
  /// Contiguous id storage (SoA/vectorized-probe substrate).
  const ValueId* data() const { return ids_.data(); }

  /// External numeric value of slot i via the legacy codec (compat /
  /// printing; not for hot paths).
  Value at(size_t i) const { return DecodeValue(ids_[i]); }
  /// Decoded copy of the whole row (compat; returns by value).
  std::vector<Value> values() const {
    std::vector<Value> out;
    out.reserve(ids_.size());
    for (ValueId id : ids_) out.push_back(DecodeValue(id));
    return out;
  }

  /// Projection t[Y] via a precomputed Projector.
  Tuple Project(const Projector& proj) const {
    std::vector<ValueId> out(proj.arity());
    for (size_t i = 0; i < proj.arity(); ++i) out[i] = ids_[proj.SourceIndex(i)];
    return OfIds(std::move(out));
  }

  /// Value of attribute `a` under schema `x`; errors if a ∉ X.
  Result<Value> ValueOf(const Schema& x, AttrId a) const {
    BAGC_ASSIGN_OR_RETURN(size_t idx, x.IndexOf(a));
    return at(idx);
  }

  /// Raw id of attribute `a` under schema `x`; errors if a ∉ X.
  Result<ValueId> IdOf(const Schema& x, AttrId a) const {
    BAGC_ASSIGN_OR_RETURN(size_t idx, x.IndexOf(a));
    return ids_[idx];
  }

  bool operator==(const Tuple& o) const {
    return ids_.size() == o.ids_.size() &&
           (ids_.empty() ||
            std::memcmp(ids_.data(), o.ids_.data(),
                        ids_.size() * sizeof(ValueId)) == 0);
  }
  bool operator!=(const Tuple& o) const { return !(*this == o); }
  /// Lexicographic on the id row under the codec order (value_codec.h
  /// ValueIdLess): a single integer compare per slot on the direct range
  /// — dictionary ids and in-range numerics, the only ids hot paths ever
  /// carry — and numeric value order (not first-encode order) for
  /// side-table slots, so ordered scans over out-of-range values agree
  /// with a value oracle and are process-independent.
  bool operator<(const Tuple& o) const {
    size_t n = ids_.size() < o.ids_.size() ? ids_.size() : o.ids_.size();
    for (size_t i = 0; i < n; ++i) {
      ValueId a = ids_[i], b = o.ids_[i];
      if (a == b) continue;
      if ((a | b) < kDirectValueLimit) return a < b;
      return ValueIdLess(a, b);
    }
    return ids_.size() < o.ids_.size();
  }

  uint64_t Hash() const { return HashRange(ids_); }

  /// "(v1, v2, ...)" with codec-decoded numeric values.
  std::string ToString() const;

 private:
  std::vector<ValueId> ids_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return static_cast<size_t>(t.Hash()); }
};

/// \brief Joiner: combines an X-tuple and a Y-tuple agreeing on X ∩ Y into
/// an XY-tuple (the tuple `xy` of the paper).
///
/// Precomputes, for every slot of the XY layout, which operand and slot it
/// is read from, plus the shared slots that must agree for the join to be
/// defined. Agreement checks compare raw ids.
class TupleJoiner {
 public:
  static Result<TupleJoiner> Make(const Schema& x, const Schema& y);

  const Schema& joined_schema() const { return xy_; }
  const Schema& shared_schema() const { return shared_; }

  /// True iff x[X∩Y] == y[X∩Y], i.e. `x joins with y`.
  bool Joinable(const Tuple& x, const Tuple& y) const;

  /// The XY-tuple xy. Requires Joinable(x, y).
  Tuple Join(const Tuple& x, const Tuple& y) const;

 private:
  Schema xy_;
  Schema shared_;
  // For each slot of xy_: (from_left, source slot index).
  std::vector<std::pair<bool, size_t>> sources_;
  // Pairs of slots (left index, right index) that must agree.
  std::vector<std::pair<size_t, size_t>> shared_slots_;
};

}  // namespace bagc
