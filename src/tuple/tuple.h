// Tuples over a schema (paper §2). A Tuple is a function from attributes to
// domain values, stored as a value vector aligned with the canonical sorted
// layout of its schema. Tup(∅) is non-empty: it contains the empty tuple.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tuple/schema.h"
#include "util/hash.h"
#include "util/result.h"

namespace bagc {

/// \brief Value vector aligned with a Schema's sorted attribute order.
///
/// Tuples do not carry their schema (bags store one schema for all their
/// tuples); operations that need the schema take it as a parameter.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t arity() const { return values_.size(); }
  Value at(size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  /// Projection t[Y] via a precomputed Projector.
  Tuple Project(const Projector& proj) const {
    std::vector<Value> out(proj.arity());
    for (size_t i = 0; i < proj.arity(); ++i) out[i] = values_[proj.SourceIndex(i)];
    return Tuple(std::move(out));
  }

  /// Value of attribute `a` under schema `x`; errors if a ∉ X.
  Result<Value> ValueOf(const Schema& x, AttrId a) const {
    BAGC_ASSIGN_OR_RETURN(size_t idx, x.IndexOf(a));
    return values_[idx];
  }

  bool operator==(const Tuple& o) const { return values_ == o.values_; }
  bool operator!=(const Tuple& o) const { return !(*this == o); }
  bool operator<(const Tuple& o) const { return values_ < o.values_; }

  uint64_t Hash() const { return HashRange(values_); }

  /// "(v1, v2, ...)".
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return static_cast<size_t>(t.Hash()); }
};

/// \brief Joiner: combines an X-tuple and a Y-tuple agreeing on X ∩ Y into
/// an XY-tuple (the tuple `xy` of the paper).
///
/// Precomputes, for every slot of the XY layout, which operand and slot it
/// is read from, plus the shared slots that must agree for the join to be
/// defined.
class TupleJoiner {
 public:
  static Result<TupleJoiner> Make(const Schema& x, const Schema& y);

  const Schema& joined_schema() const { return xy_; }
  const Schema& shared_schema() const { return shared_; }

  /// True iff x[X∩Y] == y[X∩Y], i.e. `x joins with y`.
  bool Joinable(const Tuple& x, const Tuple& y) const;

  /// The XY-tuple xy. Requires Joinable(x, y).
  Tuple Join(const Tuple& x, const Tuple& y) const;

 private:
  Schema xy_;
  Schema shared_;
  // For each slot of xy_: (from_left, source slot index).
  std::vector<std::pair<bool, size_t>> sources_;
  // Pairs of slots (left index, right index) that must agree.
  std::vector<std::pair<size_t, size_t>> shared_slots_;
};

}  // namespace bagc
