// Schema: a finite set of attributes (paper §2). Stored sorted so that set
// operations are linear merges and tuple layouts are canonical: the i-th
// slot of a Tuple over schema X holds the value of the i-th smallest
// attribute of X.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "tuple/attribute.h"
#include "util/result.h"

namespace bagc {

/// \brief Sorted, duplicate-free set of attribute ids.
class Schema {
 public:
  Schema() = default;
  /// Builds a schema from any attribute list; sorts and deduplicates.
  explicit Schema(std::vector<AttrId> attrs);
  Schema(std::initializer_list<AttrId> attrs)
      : Schema(std::vector<AttrId>(attrs)) {}

  /// Number of attributes (the arity of tuples over this schema).
  size_t arity() const { return attrs_.size(); }
  bool empty() const { return attrs_.empty(); }

  const std::vector<AttrId>& attrs() const { return attrs_; }
  AttrId at(size_t i) const { return attrs_[i]; }

  bool Contains(AttrId a) const;
  /// Position of attribute `a` within the sorted layout.
  Result<size_t> IndexOf(AttrId a) const;

  /// True iff every attribute of this schema is in `other`.
  bool IsSubsetOf(const Schema& other) const;

  /// X ∪ Y (written XY in the paper).
  static Schema Union(const Schema& x, const Schema& y);
  /// X ∩ Y.
  static Schema Intersect(const Schema& x, const Schema& y);
  /// X \ Y.
  static Schema Difference(const Schema& x, const Schema& y);

  /// Union over a whole collection.
  static Schema UnionAll(const std::vector<Schema>& schemas);

  bool operator==(const Schema& o) const { return attrs_ == o.attrs_; }
  bool operator!=(const Schema& o) const { return !(*this == o); }
  /// Lexicographic order — schemas are usable as map keys.
  bool operator<(const Schema& o) const { return attrs_ < o.attrs_; }

  /// "{A, B, C}" using catalog names.
  std::string ToString(const AttributeCatalog& catalog) const;
  /// "{0, 1, 2}" with raw ids.
  std::string ToString() const;

 private:
  std::vector<AttrId> attrs_;
};

/// \brief Precomputed projection map from schema X onto Y ⊆ X.
///
/// Projecting many tuples over the same pair of schemas is the hot path of
/// marginal computation; the Projector caches the slot indices once.
class Projector {
 public:
  /// Fails unless `onto` ⊆ `from`.
  static Result<Projector> Make(const Schema& from, const Schema& onto);

  const Schema& from() const { return from_; }
  const Schema& onto() const { return onto_; }

  /// Slot in `from` layout feeding slot i of `onto` layout.
  size_t SourceIndex(size_t i) const { return indices_[i]; }
  size_t arity() const { return indices_.size(); }

 private:
  Schema from_;
  Schema onto_;
  std::vector<size_t> indices_;
};

}  // namespace bagc
