// TupleIndex: an open-addressing hash index from tuples to small integer
// ids, built once per operation. This is the shared substrate for the
// hash-join and grouping steps of the bag join, the N(R, S) middle-edge
// construction, and the P(R1..Rm) row builder — all of which previously
// rebuilt an ad-hoc std::map<Tuple, ...> per call.
//
// Equal keys group: Insert(k, id) appends id to k's posting list, and both
// posting lists and the group sequence preserve first-insertion order, so
// iteration is deterministic whenever the insertion sequence is (bag
// entries are sorted, so in practice group order is sorted too).
#pragma once

#include <cstdint>
#include <vector>

#include "tuple/tuple.h"

namespace bagc {

/// \brief Hash index grouping equal tuples; values are caller ids
/// (typically indexes into a flat entry vector).
class TupleIndex {
 public:
  TupleIndex() = default;
  /// Pre-sizes the table for `expected_keys` insertions.
  explicit TupleIndex(size_t expected_keys) { Reserve(expected_keys); }

  void Reserve(size_t expected_keys);

  /// Appends `id` to the posting list of `key` (creating the group on
  /// first sight of the key).
  void Insert(Tuple key, uint32_t id);

  /// Posting list of `key` in insertion order; nullptr when absent.
  const std::vector<uint32_t>* Find(const Tuple& key) const;

  /// Groups in first-insertion order.
  size_t NumGroups() const { return groups_.size(); }
  const Tuple& GroupKey(size_t g) const { return groups_[g].key; }
  const std::vector<uint32_t>& GroupIds(size_t g) const { return groups_[g].ids; }

  /// Total number of inserted (key, id) pairs.
  size_t size() const { return size_; }

 private:
  struct Group {
    Tuple key;
    uint64_t hash;
    std::vector<uint32_t> ids;
  };

  // Returns the slot holding `key` or the empty slot where it belongs.
  size_t ProbeSlot(const Tuple& key, uint64_t hash) const;
  void Rehash(size_t new_capacity);

  std::vector<Group> groups_;
  // Open-addressing table of group index + 1; 0 marks an empty slot.
  // Capacity is always a power of two.
  std::vector<uint32_t> slots_;
  size_t size_ = 0;
};

}  // namespace bagc
