// TupleIndex: an open-addressing hash index from tuples to small integer
// ids, built once per operation. This is the shared substrate for the
// hash-join and grouping steps of the bag join, the N(R, S) middle-edge
// construction, and the P(R1..Rm) row builder — all of which previously
// rebuilt an ad-hoc std::map<Tuple, ...> per call.
//
// Equal keys group: Insert(k, id) appends id to k's posting list, and both
// posting lists and the group sequence preserve first-insertion order, so
// iteration is deterministic whenever the insertion sequence is (bag
// entries are sorted, so in practice group order is sorted too).
//
// ColumnIndex is the columnar (SoA) counterpart: it groups the rows of a
// borrowed ColumnView without materializing a single Tuple — build hashes
// every key row in one column-at-a-time batch, and ProbeAll answers a
// whole probe view the same way. Group numbering and per-group row order
// match what TupleIndex produces for the same row sequence, so the two
// paths are drop-in interchangeable for deterministic consumers.
#pragma once

#include <cstdint>
#include <vector>

#include "tuple/column_store.h"
#include "tuple/tuple.h"

namespace bagc {

/// \brief Hash index grouping equal tuples; values are caller ids
/// (typically indexes into a flat entry vector).
class TupleIndex {
 public:
  TupleIndex() = default;
  /// Pre-sizes the table for `expected_keys` insertions.
  explicit TupleIndex(size_t expected_keys) { Reserve(expected_keys); }

  void Reserve(size_t expected_keys);

  /// Appends `id` to the posting list of `key` (creating the group on
  /// first sight of the key).
  void Insert(Tuple key, uint32_t id);

  /// Posting list of `key` in insertion order; nullptr when absent.
  const std::vector<uint32_t>* Find(const Tuple& key) const;

  /// Groups in first-insertion order.
  size_t NumGroups() const { return groups_.size(); }
  const Tuple& GroupKey(size_t g) const { return groups_[g].key; }
  const std::vector<uint32_t>& GroupIds(size_t g) const { return groups_[g].ids; }

  /// Total number of inserted (key, id) pairs.
  size_t size() const { return size_; }

 private:
  struct Group {
    Tuple key;
    uint64_t hash;
    std::vector<uint32_t> ids;
  };

  // Returns the slot holding `key` or the empty slot where it belongs.
  size_t ProbeSlot(const Tuple& key, uint64_t hash) const;
  void Rehash(size_t new_capacity);

  std::vector<Group> groups_;
  // Open-addressing table of group index + 1; 0 marks an empty slot.
  // Capacity is always a power of two.
  std::vector<uint32_t> slots_;
  size_t size_ = 0;
};

/// \brief Hash grouping over the rows of a borrowed ColumnView, with a
/// vectorizable batch probe.
///
/// Construction groups every key row (equal rows share a group; groups and
/// their row lists are in first-appearance order, i.e. ascending row index
/// — identical to inserting rows 0..n-1 into a TupleIndex). No Tuple is
/// ever materialized: row hashes come from ColumnView::HashRows in one
/// column-wise batch, and equality compares id spans in place. The key
/// view's storage must outlive the index.
class ColumnIndex {
 public:
  /// No matching group (also the cap sentinel — row counts are < 2^32).
  static constexpr uint32_t kNoGroup = 0xFFFFFFFFu;

  ColumnIndex() = default;
  /// Builds the grouping over all rows of `keys`. `level` selects the
  /// SIMD variant of the batch hash and batch probe (kAuto = process
  /// default); every level produces identical groups and probe answers.
  explicit ColumnIndex(ColumnView keys,
                       simd::SimdLevel level = simd::SimdLevel::kAuto);

  size_t NumGroups() const { return groups_.size(); }
  /// Rows of group g, ascending (== posting list order of TupleIndex).
  const std::vector<uint32_t>& GroupRows(size_t g) const { return groups_[g].rows; }
  /// First (smallest) key row of group g — the group's representative.
  uint32_t LeadRow(size_t g) const { return groups_[g].lead; }
  /// The indexed key view.
  const ColumnView& keys() const { return keys_; }

  /// For every row of `probes` (same arity as the keys), the matching
  /// group id or kNoGroup. Hashes the whole probe view column-wise, then
  /// loads every probe's first slot in one batch (simd::GatherSlotTags —
  /// hardware gather on AVX2) so the common cases (empty slot, or a
  /// first-slot hit) never enter the scalar walk; only collisions do.
  /// Bit-identical to per-row Probe at every dispatch level.
  void ProbeAll(const ColumnView& probes, std::vector<uint32_t>* out) const;

  /// Single-row probe against an external view (same arity); kNoGroup
  /// when absent. `hash` must be the row's ColumnView/Tuple hash.
  uint32_t Probe(const ColumnView& probes, size_t row, uint64_t hash) const;

 private:
  struct ColumnGroup {
    uint32_t lead;
    uint64_t hash;
    std::vector<uint32_t> rows;
  };

  // Slot holding the group matching (view, row, hash), or the empty slot
  // where a new group belongs.
  size_t FindSlot(uint64_t hash, const ColumnView& view, size_t row) const;

  ColumnView keys_;
  std::vector<ColumnGroup> groups_;
  // Open-addressing table of group index + 1; 0 marks an empty slot.
  std::vector<uint32_t> slots_;
  // Resolved dispatch level for batch hashing/probing (never kAuto).
  simd::SimdLevel level_ = simd::SimdLevel::kScalar;
};

/// \brief Columnar hash-join matching phase, shared by the bag join and
/// the N(R, S) middle-edge construction: gather the shared-attribute
/// columns of both sides, index the right side's, and resolve every left
/// row in one ProbeAll batch. Owns the gathered stores, so the match
/// lists stay valid for the consumer's build loop. Movable, not copyable
/// (the index borrows the owned right-side columns).
class ColumnJoinMatch {
 public:
  static constexpr uint32_t kNoMatch = ColumnIndex::kNoGroup;

  /// `left`/`right` are sealed entry vectors (rows[i].first is a Tuple
  /// over the respective projector's source layout); the projectors
  /// select both sides onto the same shared layout.
  template <typename LeftEntries, typename RightEntries>
  ColumnJoinMatch(const LeftEntries& left, const Projector& left_shared,
                  const RightEntries& right, const Projector& right_shared,
                  simd::SimdLevel level = simd::SimdLevel::kAuto)
      : left_cols_(ColumnStore::FromEntries(left, left_shared)),
        right_cols_(ColumnStore::FromEntries(right, right_shared)),
        index_(right_cols_.View(), level) {
    index_.ProbeAll(left_cols_.View(), &match_);
  }

  /// Zero-copy variant over already-columnar sides (columnar-sealed
  /// bags): the views borrow their owners' storage, which must outlive
  /// this match object.
  ColumnJoinMatch(ColumnView left, ColumnView right,
                  simd::SimdLevel level = simd::SimdLevel::kAuto)
      : index_(std::move(right), level) {
    index_.ProbeAll(left, &match_);
  }

  ColumnJoinMatch(ColumnJoinMatch&&) = default;
  ColumnJoinMatch& operator=(ColumnJoinMatch&&) = default;
  ColumnJoinMatch(const ColumnJoinMatch&) = delete;
  ColumnJoinMatch& operator=(const ColumnJoinMatch&) = delete;

  /// The group left row i matched, or kNoMatch.
  uint32_t MatchOf(size_t i) const { return match_[i]; }
  /// Right rows of a matched group, ascending (posting-list order).
  const std::vector<uint32_t>& RightRows(uint32_t group) const {
    return index_.GroupRows(group);
  }

 private:
  ColumnStore left_cols_;
  ColumnStore right_cols_;
  ColumnIndex index_;
  std::vector<uint32_t> match_;
};

}  // namespace bagc
