#include "tuple/column_store.h"

#include "util/hash.h"

namespace bagc {

ColumnView ColumnView::Select(const Projector& proj) const {
  std::vector<const ValueId*> cols(proj.arity());
  for (size_t i = 0; i < proj.arity(); ++i) cols[i] = columns_[proj.SourceIndex(i)];
  return ColumnView(std::move(cols), rows_);
}

Tuple ColumnView::RowAt(size_t r) const {
  std::vector<ValueId> ids(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) ids[c] = columns_[c][r];
  return Tuple::OfIds(std::move(ids));
}

bool ColumnView::RowsEqual(size_t a, const ColumnView& other, size_t b) const {
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c][a] != other.columns_[c][b]) return false;
  }
  return true;
}

void ColumnView::HashRows(std::vector<uint64_t>* out) const {
  out->assign(rows_, 0x5bf03635u ^ static_cast<uint64_t>(columns_.size()));
  uint64_t* h = out->data();
  for (size_t c = 0; c < columns_.size(); ++c) {
    const ValueId* col = columns_[c];
    for (size_t r = 0; r < rows_; ++r) {
      HashCombine(&h[r], static_cast<uint64_t>(col[r]));
    }
  }
}

ColumnView ColumnStore::View() const {
  std::vector<const ValueId*> cols(arity_);
  for (size_t c = 0; c < arity_; ++c) cols[c] = column(c);
  return ColumnView(std::move(cols), rows_);
}

Tuple ColumnStore::RowAt(size_t r) const {
  std::vector<ValueId> ids(arity_);
  for (size_t c = 0; c < arity_; ++c) ids[c] = column(c)[r];
  return Tuple::OfIds(std::move(ids));
}

}  // namespace bagc
