#include "tuple/column_store.h"

#include "util/hash.h"

namespace bagc {

ColumnView ColumnView::Select(const Projector& proj) const {
  std::vector<const ValueId*> cols(proj.arity());
  for (size_t i = 0; i < proj.arity(); ++i) cols[i] = columns_[proj.SourceIndex(i)];
  return ColumnView(std::move(cols), rows_);
}

Tuple ColumnView::RowAt(size_t r) const {
  std::vector<ValueId> ids(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) ids[c] = columns_[c][r];
  return Tuple::OfIds(std::move(ids));
}

bool ColumnView::RowsEqual(size_t a, const ColumnView& other, size_t b) const {
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c][a] != other.columns_[c][b]) return false;
  }
  return true;
}

int ColumnView::CompareRows(size_t a, const ColumnView& other, size_t b) const {
  for (size_t c = 0; c < columns_.size(); ++c) {
    ValueId x = columns_[c][a];
    ValueId y = other.columns_[c][b];
    if (x == y) continue;
    if ((x | y) < kDirectValueLimit) return x < y ? -1 : 1;
    return ValueIdLess(x, y) ? -1 : 1;
  }
  return 0;
}

void ColumnView::HashRows(std::vector<uint64_t>* out,
                          simd::SimdLevel level) const {
  out->resize(rows_);
  simd::HashRowsKernel(columns_.data(), columns_.size(), rows_, out->data(),
                       level);
}

ColumnView ColumnStore::View() const {
  std::vector<const ValueId*> cols(arity_);
  for (size_t c = 0; c < arity_; ++c) cols[c] = column(c);
  return ColumnView(std::move(cols), rows_);
}

Tuple ColumnStore::RowAt(size_t r) const {
  std::vector<ValueId> ids(arity_);
  for (size_t c = 0; c < arity_; ++c) ids[c] = column(c)[r];
  return Tuple::OfIds(std::move(ids));
}

}  // namespace bagc
