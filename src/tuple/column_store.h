// Structure-of-arrays storage for sealed tuple rows. A ColumnStore holds
// one contiguous ValueId array per schema slot (column-major: column c is
// the c-th stretch of a single allocation), gathered once from a sealed
// flat entry vector; a ColumnView is a zero-copy selection of columns —
// projecting onto Z ⊆ X is a pointer shuffle, never a per-row Tuple.
//
// This is the substrate the vectorized probe path runs on: batch row
// hashing (HashRows) walks each column once with a branch-free inner loop
// over a contiguous u32 span, so marginal grouping and hash-join matching
// (ColumnIndex in tuple_index.h) touch memory column-at-a-time instead of
// chasing one heap-allocated id vector per row. Rows stay reachable via
// RowAt for cold paths (IO, reports, witness extraction).
//
// Hash compatibility: HashRows reproduces Tuple::Hash of the materialized
// row exactly (same seed and combine order as HashRange), so columnar and
// row-path indexes agree on every probe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tuple/schema.h"
#include "tuple/tuple.h"
#include "util/simd.h"

namespace bagc {

/// Default row-count threshold below which the row path (per-row Tuple
/// projection + sort/merge) beats the columnar gather + hash-group;
/// dispatchers such as Bag::Marginal switch on it. Engine callers can
/// override the crossover per collection via
/// EngineOptions::columnar_min_rows (bagcd: --columnar-min-rows).
inline constexpr size_t kColumnarMinRows = 32;

/// \brief Zero-copy view of selected columns: per-slot base pointers plus
/// a row count.
///
/// Ownership rules: a ColumnView never owns id storage — every column
/// pointer borrows from a ColumnStore (or other stable array), and the
/// owner must outlive every view derived from it, including views
/// produced by Select(). Views are cheap value types (a pointer vector);
/// copying one neither copies nor extends the lifetime of the ids.
/// Mutating or moving the owning store invalidates all of its views.
class ColumnView {
 public:
  ColumnView() = default;
  ColumnView(std::vector<const ValueId*> columns, size_t num_rows)
      : columns_(std::move(columns)), rows_(num_rows) {}

  size_t arity() const { return columns_.size(); }
  size_t num_rows() const { return rows_; }

  /// Base pointer of column c (contiguous, num_rows() entries).
  const ValueId* column(size_t c) const { return columns_[c]; }

  /// Id at (row r, column c).
  ValueId at(size_t r, size_t c) const { return columns_[c][r]; }

  /// Selects the columns of `proj` (this view's layout must be
  /// proj.from()'s). Pure pointer shuffle — no row is touched.
  ColumnView Select(const Projector& proj) const;

  /// Materializes row r as a Tuple (cold paths only).
  Tuple RowAt(size_t r) const;

  /// Row a of this view == row b of `other` (same arity required).
  bool RowsEqual(size_t a, const ColumnView& other, size_t b) const;

  /// Three-way lexicographic compare of row a against row b of `other`
  /// (same arity required), replicating Tuple::operator< exactly —
  /// including value order (ValueIdLess) for side-table ids — so sorting
  /// or searching rows columnar agrees bit-for-bit with the row path.
  int CompareRows(size_t a, const ColumnView& other, size_t b) const;

  /// Hashes every row into out[r] == RowAt(r).Hash() (same seed/combine
  /// sequence as HashRange) via the dispatched batch kernel
  /// (simd::HashRowsKernel); `level` selects the ISA variant, kAuto =
  /// the process default. Every level is bit-identical.
  void HashRows(std::vector<uint64_t>* out,
                simd::SimdLevel level = simd::SimdLevel::kAuto) const;

 private:
  std::vector<const ValueId*> columns_;
  size_t rows_ = 0;
};

/// \brief Column-major id storage gathered from sealed rows — owned by
/// default, or borrowing an external span (Borrow).
///
/// Ownership rules: the store owns one flat allocation holding every
/// column; it does NOT retain the entry vector it was gathered from
/// (ids are copied out), but grouping code conventionally indexes that
/// source vector by row number for multiplicities, so the two must stay
/// index-aligned. View()/column() pointers — and every ColumnView
/// derived from them — are invalidated by moving or destroying the
/// store. The store is immutable after construction; concurrent readers
/// need no synchronization.
///
/// A *borrowed* store (Borrow) holds no allocation at all: columns point
/// into caller-owned memory — an mmap'd segment file (tuple/segment.h)
/// is the motivating case — which must stay mapped and unchanged for the
/// store's (and every derived view's) lifetime. Moving a borrowed store
/// keeps its views valid, since they point at the external span.
class ColumnStore {
 public:
  ColumnStore() = default;

  /// Wraps an external column-major span (column c occupies
  /// [c*num_rows, (c+1)*num_rows)) without copying. `column_major` must
  /// be ValueId-aligned and outlive the store and all derived views.
  static ColumnStore Borrow(const ValueId* column_major, size_t num_rows,
                            size_t arity) {
    ColumnStore out;
    out.rows_ = num_rows;
    out.arity_ = arity;
    out.borrowed_ = column_major;
    return out;
  }

  /// Gathers the slots selected by `proj` from rows[i].first (a Tuple over
  /// proj.from()'s layout); annotations/multiplicities are not copied —
  /// grouping code reads them from the source vector by row index. Pass an
  /// identity projector (Projector::Make(x, x)) to transpose every column.
  template <typename Entry>
  static ColumnStore FromEntries(const std::vector<Entry>& rows,
                                 const Projector& proj) {
    return Gather(rows.size(), proj,
                  [&rows](size_t r) -> const Tuple& { return rows[r].first; });
  }

  /// As FromEntries, over a bare tuple vector (e.g. LP variables).
  static ColumnStore FromTuples(const std::vector<Tuple>& rows,
                                const Projector& proj) {
    return Gather(rows.size(), proj,
                  [&rows](size_t r) -> const Tuple& { return rows[r]; });
  }

  /// Adopts an already column-major owned vector (column c occupies
  /// [c*num_rows, (c+1)*num_rows)); data.size() must be arity*num_rows.
  /// The emit path of the columnar group-by builds results directly in
  /// this layout.
  static ColumnStore FromColumnMajor(std::vector<ValueId> data,
                                     size_t num_rows, size_t arity) {
    ColumnStore out;
    out.data_ = std::move(data);
    out.rows_ = num_rows;
    out.arity_ = arity;
    return out;
  }

  size_t arity() const { return arity_; }
  size_t num_rows() const { return rows_; }
  /// True when the ids live in external memory (Borrow) — i.e. this
  /// store contributes no resident bytes of its own.
  bool is_borrowed() const { return borrowed_ != nullptr; }

  /// Base pointer of column c.
  const ValueId* column(size_t c) const {
    return (borrowed_ != nullptr ? borrowed_ : data_.data()) + c * rows_;
  }

  /// View over all columns in store order.
  ColumnView View() const;

  /// Materializes row r as a Tuple (lazy accessor for cold paths).
  Tuple RowAt(size_t r) const;

 private:
  template <typename GetTuple>
  static ColumnStore Gather(size_t n, const Projector& proj, GetTuple&& tuple_of) {
    ColumnStore out;
    out.rows_ = n;
    out.arity_ = proj.arity();
    out.data_.resize(out.arity_ * n);
    ValueId* dst = out.data_.data();
    for (size_t c = 0; c < out.arity_; ++c, dst += n) {
      size_t src = proj.SourceIndex(c);
      for (size_t r = 0; r < n; ++r) dst[r] = tuple_of(r).id(src);
    }
    return out;
  }

  std::vector<ValueId> data_;  // column-major: column c at [c * rows_, (c+1) * rows_)
  const ValueId* borrowed_ = nullptr;  // non-null: columns live in external memory
  size_t rows_ = 0;
  size_t arity_ = 0;
};

}  // namespace bagc
