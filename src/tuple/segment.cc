#include "tuple/segment.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace bagc {

namespace {

// FNV-1a 64: tiny, dependency-free, and strong enough for its job here
// (catching truncation and bit rot, not adversaries — the reader
// validates structure independently of the checksum).
uint64_t Fnv1a(const char* data, size_t n) {
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

void AppendU32(std::string* out, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(b, sizeof(b));
}

void AppendU64(std::string* out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(b, sizeof(b));
}

void PutU32(std::string* out, size_t pos, uint32_t v) {
  for (int i = 0; i < 4; ++i) (*out)[pos + i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void PutU64(std::string* out, size_t pos, uint64_t v) {
  for (int i = 0; i < 8; ++i) (*out)[pos + i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

// All header/table fields are loaded with memcpy: offsets in a hostile
// file are arbitrary, so no pointer into the mapping may be cast to a
// wider type before its alignment has been validated.
uint32_t LoadU32(const char* p) {
  unsigned char b[4];
  std::memcpy(b, p, 4);
  return uint32_t{b[0]} | uint32_t{b[1]} << 8 | uint32_t{b[2]} << 16 |
         uint32_t{b[3]} << 24;
}

uint64_t LoadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    unsigned char byte;
    std::memcpy(&byte, p + i, 1);
    v |= uint64_t{byte} << (8 * i);
  }
  return v;
}

void AlignTo(std::string* out, size_t alignment) {
  while (out->size() % alignment != 0) out->push_back('\0');
}

// Overflow-safe bounds check: [offset, offset + count*elem) ⊆ [0, size).
Status CheckRange(uint64_t offset, uint64_t count, uint64_t elem, size_t size,
                  const char* what) {
  if (elem != 0 && count > UINT64_MAX / elem) {
    return Status::OutOfRange(std::string("segment ") + what +
                              " length overflows");
  }
  uint64_t len = count * elem;
  if (offset > size || len > size - offset) {
    return Status::OutOfRange(std::string("segment ") + what +
                              " extends past end of file");
  }
  return Status::OK();
}

Status CheckAligned(const char* base, uint64_t offset, size_t alignment,
                    const char* what) {
  if (reinterpret_cast<uintptr_t>(base + offset) % alignment != 0) {
    return Status::InvalidArgument(std::string("segment ") + what +
                                   " is not " + std::to_string(alignment) +
                                   "-byte aligned");
  }
  return Status::OK();
}

}  // namespace

Result<std::string> EncodeSegment(const std::vector<std::string>& names,
                                  const std::vector<Bag>& bags,
                                  const AttributeCatalog& catalog,
                                  const DictionarySet& dicts) {
  if (names.size() != bags.size()) {
    return Status::InvalidArgument("segment bag names do not match bag count");
  }
  if (bags.empty()) {
    return Status::InvalidArgument("refusing to write an empty segment");
  }
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i].empty()) {
      return Status::InvalidArgument("segment bag " + std::to_string(i) +
                                     " has an empty name");
    }
    for (size_t j = 0; j < i; ++j) {
      if (names[j] == names[i]) {
        return Status::InvalidArgument("duplicate bag name '" + names[i] +
                                       "' in segment");
      }
    }
  }
  // The attribute table covers exactly the attributes the bags use, in
  // AttrId order; a fully covering dictionary is required per attribute
  // (the segment ships it, and ids are meaningless without it).
  std::vector<AttrId> used;
  for (const Bag& bag : bags) {
    for (AttrId a : bag.schema().attrs()) used.push_back(a);
  }
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  std::vector<const ValueDictionary*> dict_of(used.size(), nullptr);
  for (size_t i = 0; i < used.size(); ++i) {
    dict_of[i] = dicts.find_dict(used[i]);
    if (dict_of[i] == nullptr) {
      return Status::FailedPrecondition(
          "segment export requires a dictionary for attribute '" +
          catalog.Name(used[i]) + "'");
    }
  }
  auto attr_index = [&used](AttrId a) {
    return static_cast<uint32_t>(
        std::lower_bound(used.begin(), used.end(), a) - used.begin());
  };
  for (size_t b = 0; b < bags.size(); ++b) {
    const Schema& schema = bags[b].schema();
    const size_t rows = bags[b].SupportSize();
    for (size_t c = 0; c < schema.arity(); ++c) {
      const ValueDictionary* dict = dict_of[attr_index(schema.at(c))];
      for (size_t r = 0; r < rows; ++r) {
        ValueId id = bags[b].IdAt(r, c);
        if (id >= dict->size()) {
          return Status::OutOfRange(
              "bag '" + names[b] + "' carries id " + std::to_string(id) +
              " never issued for attribute '" + catalog.Name(schema.at(c)) +
              "' — not sealed through these dictionaries");
        }
      }
    }
  }

  std::string out(kSegmentHeaderBytes, '\0');
  const size_t attr_table = out.size();
  out.append(used.size() * 32, '\0');
  const size_t bag_table = out.size();
  out.append(bags.size() * 48, '\0');

  for (size_t i = 0; i < used.size(); ++i) {
    const std::string name = catalog.Name(used[i]);
    const std::vector<std::string>& values = dict_of[i]->externals();
    AlignTo(&out, 4);
    size_t name_off = out.size();
    out += name;
    AlignTo(&out, 4);
    size_t offsets_off = out.size();
    uint32_t acc = 0;
    AppendU32(&out, 0);
    for (const std::string& v : values) {
      acc += static_cast<uint32_t>(v.size());
      AppendU32(&out, acc);
    }
    size_t blob_off = out.size();
    for (const std::string& v : values) out += v;
    size_t entry = attr_table + i * 32;
    PutU64(&out, entry + 0, name_off);
    PutU32(&out, entry + 8, static_cast<uint32_t>(name.size()));
    PutU32(&out, entry + 12, static_cast<uint32_t>(values.size()));
    PutU64(&out, entry + 16, offsets_off);
    PutU64(&out, entry + 24, blob_off);
  }

  for (size_t b = 0; b < bags.size(); ++b) {
    const Schema& schema = bags[b].schema();
    const size_t rows = bags[b].SupportSize();
    AlignTo(&out, 4);
    size_t name_off = out.size();
    out += names[b];
    AlignTo(&out, 4);
    size_t attrs_off = out.size();
    for (AttrId a : schema.attrs()) AppendU32(&out, attr_index(a));
    AlignTo(&out, 4);
    size_t columns_off = out.size();
    for (size_t c = 0; c < schema.arity(); ++c) {
      for (size_t r = 0; r < rows; ++r) {
        AppendU32(&out, bags[b].IdAt(r, c));
      }
    }
    AlignTo(&out, 8);
    size_t mults_off = out.size();
    for (size_t r = 0; r < rows; ++r) {
      AppendU64(&out, bags[b].MultiplicityAt(r));
    }
    size_t entry = bag_table + b * 48;
    PutU64(&out, entry + 0, name_off);
    PutU32(&out, entry + 8, static_cast<uint32_t>(names[b].size()));
    PutU32(&out, entry + 12, static_cast<uint32_t>(schema.arity()));
    PutU64(&out, entry + 16, attrs_off);
    PutU64(&out, entry + 24, columns_off);
    PutU64(&out, entry + 32, mults_off);
    PutU64(&out, entry + 40, rows);
  }

  std::memcpy(out.data(), kSegmentMagic.data(), kSegmentMagic.size());
  PutU32(&out, 8, kSegmentVersion);
  PutU32(&out, 12, kSegmentHeaderBytes);
  PutU64(&out, 16, out.size());
  PutU32(&out, 32, static_cast<uint32_t>(used.size()));
  PutU32(&out, 36, static_cast<uint32_t>(bags.size()));
  PutU64(&out, 40, attr_table);
  PutU64(&out, 48, bag_table);
  PutU64(&out, 56, 0);
  PutU64(&out, 24, Fnv1a(out.data() + kSegmentHeaderBytes,
                         out.size() - kSegmentHeaderBytes));
  return out;
}

Status WriteSegmentFile(const std::string& path,
                        const std::vector<std::string>& names,
                        const std::vector<Bag>& bags,
                        const AttributeCatalog& catalog,
                        const DictionarySet& dicts) {
  BAGC_ASSIGN_OR_RETURN(std::string bytes,
                        EncodeSegment(names, bags, catalog, dicts));
  // Temp-then-rename: a crashed or concurrent writer can never leave a
  // half-written file where a LOADSEG will find it.
  std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + tmp + ": " + std::strerror(errno));
  }
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  bool flushed = std::fclose(f) == 0;
  if (written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " to " + path + ": " +
                            std::strerror(errno));
  }
  return Status::OK();
}

Result<SegmentReader> SegmentReader::Map(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("open(" + path + "): " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    Status err = Status::Internal("fstat(" + path + "): " + std::strerror(errno));
    ::close(fd);
    return err;
  }
  size_t size = static_cast<size_t>(st.st_size);
  if (size < kSegmentHeaderBytes) {
    ::close(fd);
    return Status::InvalidArgument("truncated segment file " + path + " (" +
                                   std::to_string(size) + " bytes)");
  }
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (mapping == MAP_FAILED) {
    return Status::Internal("mmap(" + path + "): " + std::strerror(errno));
  }
  SegmentReader reader;
  reader.mapping_ = mapping;
  Status init = reader.Init(
      std::string_view(static_cast<const char*>(mapping), size));
  if (!init.ok()) return init;  // reader's destructor unmaps
  return reader;
}

Result<SegmentReader> SegmentReader::Parse(std::string_view data) {
  SegmentReader reader;
  BAGC_RETURN_NOT_OK(reader.Init(data));
  return reader;
}

Status SegmentReader::Init(std::string_view data) {
  data_ = data.data();
  size_ = data.size();
  if (size_ < kSegmentHeaderBytes) {
    return Status::InvalidArgument("truncated segment (" +
                                   std::to_string(size_) + " bytes)");
  }
  if (std::memcmp(data_, kSegmentMagic.data(), kSegmentMagic.size()) != 0) {
    return Status::InvalidArgument("bad segment magic");
  }
  uint32_t version = LoadU32(data_ + 8);
  if (version != kSegmentVersion) {
    return Status::InvalidArgument("unsupported segment version " +
                                   std::to_string(version) + " (expected " +
                                   std::to_string(kSegmentVersion) + ")");
  }
  if (LoadU32(data_ + 12) != kSegmentHeaderBytes) {
    return Status::InvalidArgument("bad segment header size");
  }
  uint64_t file_size = LoadU64(data_ + 16);
  if (file_size != size_) {
    return Status::InvalidArgument(
        "segment header claims " + std::to_string(file_size) +
        " bytes but the file has " + std::to_string(size_));
  }
  uint64_t checksum = LoadU64(data_ + 24);
  if (checksum != Fnv1a(data_ + kSegmentHeaderBytes,
                        size_ - kSegmentHeaderBytes)) {
    return Status::InvalidArgument("segment checksum mismatch");
  }
  uint32_t num_attrs = LoadU32(data_ + 32);
  uint32_t num_bags = LoadU32(data_ + 36);
  uint64_t attr_table = LoadU64(data_ + 40);
  uint64_t bag_table = LoadU64(data_ + 48);
  BAGC_RETURN_NOT_OK(CheckRange(attr_table, num_attrs, 32, size_, "attribute table"));
  BAGC_RETURN_NOT_OK(CheckRange(bag_table, num_bags, 48, size_, "bag table"));
  if (num_bags == 0) {
    return Status::InvalidArgument("segment holds no bags");
  }

  attrs_.reserve(num_attrs);
  for (uint32_t i = 0; i < num_attrs; ++i) {
    const char* e = data_ + attr_table + uint64_t{i} * 32;
    AttrMeta meta;
    uint64_t name_off = LoadU64(e + 0);
    uint32_t name_len = LoadU32(e + 8);
    meta.count = LoadU32(e + 12);
    uint64_t offsets_off = LoadU64(e + 16);
    uint64_t blob_off = LoadU64(e + 24);
    BAGC_RETURN_NOT_OK(CheckRange(name_off, name_len, 1, size_, "attribute name"));
    BAGC_RETURN_NOT_OK(CheckRange(offsets_off, uint64_t{meta.count} + 1, 4,
                                  size_, "value offsets"));
    BAGC_RETURN_NOT_OK(CheckAligned(data_, offsets_off, 4, "value-offsets array"));
    meta.name = std::string_view(data_ + name_off, name_len);
    meta.offsets = data_ + offsets_off;
    // Offsets must be non-decreasing prefix sums starting at 0; the last
    // one is the blob length.
    if (LoadU32(meta.offsets) != 0) {
      return Status::InvalidArgument("segment value offsets do not start at 0");
    }
    for (uint32_t v = 0; v < meta.count; ++v) {
      if (LoadU32(meta.offsets + 4 * (uint64_t{v} + 1)) <
          LoadU32(meta.offsets + 4 * uint64_t{v})) {
        return Status::InvalidArgument(
            "segment value offsets are not non-decreasing");
      }
    }
    meta.blob_len = LoadU32(meta.offsets + 4 * uint64_t{meta.count});
    BAGC_RETURN_NOT_OK(CheckRange(blob_off, meta.blob_len, 1, size_, "value blob"));
    meta.blob = data_ + blob_off;
    for (const AttrMeta& prior : attrs_) {
      if (prior.name == meta.name) {
        return Status::InvalidArgument("duplicate attribute '" +
                                       std::string(meta.name) + "' in segment");
      }
    }
    attrs_.push_back(meta);
  }

  bags_.reserve(num_bags);
  for (uint32_t i = 0; i < num_bags; ++i) {
    const char* e = data_ + bag_table + uint64_t{i} * 48;
    BagMeta meta;
    uint64_t name_off = LoadU64(e + 0);
    uint32_t name_len = LoadU32(e + 8);
    meta.arity = LoadU32(e + 12);
    uint64_t attrs_off = LoadU64(e + 16);
    uint64_t columns_off = LoadU64(e + 24);
    uint64_t mults_off = LoadU64(e + 32);
    meta.rows = LoadU64(e + 40);
    BAGC_RETURN_NOT_OK(CheckRange(name_off, name_len, 1, size_, "bag name"));
    if (meta.arity == 0) {
      return Status::InvalidArgument("segment bag has arity 0");
    }
    BAGC_RETURN_NOT_OK(CheckRange(attrs_off, meta.arity, 4, size_,
                                  "bag attribute indices"));
    BAGC_RETURN_NOT_OK(CheckAligned(data_, attrs_off, 4, "bag attribute indices"));
    if (meta.rows > UINT64_MAX / meta.arity) {
      return Status::OutOfRange("segment column block length overflows");
    }
    BAGC_RETURN_NOT_OK(CheckRange(columns_off, meta.rows * meta.arity, 4,
                                  size_, "column block"));
    BAGC_RETURN_NOT_OK(CheckAligned(data_, columns_off, 4, "column block"));
    BAGC_RETURN_NOT_OK(CheckRange(mults_off, meta.rows, 8, size_,
                                  "multiplicity block"));
    BAGC_RETURN_NOT_OK(CheckAligned(data_, mults_off, 8, "multiplicity block"));
    meta.name = std::string_view(data_ + name_off, name_len);
    meta.attrs = data_ + attrs_off;
    meta.columns = data_ + columns_off;
    meta.mults = data_ + mults_off;
    for (uint32_t c = 0; c < meta.arity; ++c) {
      if (LoadU32(meta.attrs + 4 * uint64_t{c}) >= num_attrs) {
        return Status::OutOfRange(
            "segment bag references attribute index beyond the table");
      }
    }
    bags_.push_back(meta);
  }
  return Status::OK();
}

std::vector<std::string> SegmentReader::AttrValues(size_t a) const {
  const AttrMeta& meta = attrs_[a];
  std::vector<std::string> values;
  values.reserve(meta.count);
  for (uint32_t v = 0; v < meta.count; ++v) {
    uint32_t begin = LoadU32(meta.offsets + 4 * uint64_t{v});
    uint32_t end = LoadU32(meta.offsets + 4 * (uint64_t{v} + 1));
    values.emplace_back(meta.blob + begin, end - begin);
  }
  return values;
}

size_t SegmentReader::bag_attr(size_t b, size_t c) const {
  return LoadU32(bags_[b].attrs + 4 * c);
}

ColumnStore SegmentReader::Columns(size_t b) const {
  const BagMeta& meta = bags_[b];
  // Alignment was validated at Init; this cast is what "mmap-able" buys:
  // the engine probes these ids exactly where the kernel mapped them.
  return ColumnStore::Borrow(reinterpret_cast<const ValueId*>(meta.columns),
                             meta.rows, meta.arity);
}

const uint64_t* SegmentReader::Mults(size_t b) const {
  return reinterpret_cast<const uint64_t*>(bags_[b].mults);
}

SegmentReader::SegmentReader(SegmentReader&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapping_(other.mapping_),
      attrs_(std::move(other.attrs_)),
      bags_(std::move(other.bags_)) {
  other.mapping_ = nullptr;
  other.data_ = nullptr;
  other.size_ = 0;
}

SegmentReader& SegmentReader::operator=(SegmentReader&& other) noexcept {
  if (this != &other) {
    Unmap();
    data_ = other.data_;
    size_ = other.size_;
    mapping_ = other.mapping_;
    attrs_ = std::move(other.attrs_);
    bags_ = std::move(other.bags_);
    other.mapping_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

SegmentReader::~SegmentReader() { Unmap(); }

void SegmentReader::Unmap() {
  if (mapping_ != nullptr) {
    ::munmap(mapping_, size_);
    mapping_ = nullptr;
  }
}

}  // namespace bagc
