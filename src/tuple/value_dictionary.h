// Interned value dictionaries. Atserias–Kolaitis consistency is invariant
// under renaming domain values (values are only ever compared for
// equality), so a bag collection can intern every external value into a
// dense uint32 id per attribute and run all downstream algorithms on
// fixed-width integer rows: tuples become vectors of ValueId, marginal
// grouping and TupleIndex probes compare raw u32 rows (memcmp), and
// cross-bag joins on shared attributes are id-equal by construction
// whenever the bags were sealed through one shared DictionarySet.
//
// ValueDictionary is one attribute's dictionary: external string value ->
// dense id, ids 0..size()-1 in first-intern order. Canonicalize() reorders
// ids into sorted-external order, making the id assignment a deterministic
// function of the value *set* (independent of insertion order).
//
// DictionarySet owns one ValueDictionary per attribute id and is the unit
// shared across a collection (and by the ConsistencyEngine that seals it).
//
// PRECONDITION (uniform sealing): row ids are meaningful only relative to
// the encoder that issued them. Every bag that participates in one
// comparison/join/collection must be sealed the same way — all through
// one shared DictionarySet, or all through the legacy numeric codec
// (value_codec.h). Mixing the two id spaces (or two DictionarySets) is
// undetectable at the row level by design — interning is sound precisely
// because algorithms never look past id equality — and yields meaningless
// verdicts. bag_io and the generators maintain this invariant; callers
// sealing bags by hand must too.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "tuple/attribute.h"
#include "tuple/schema.h"
#include "util/result.h"

namespace bagc {

class Tuple;

/// Dense interned row id. Rows are fixed-width vectors of these.
using ValueId = uint32_t;

/// Reserved sentinel; never issued by a dictionary.
inline constexpr ValueId kInvalidValueId = 0xFFFFFFFFu;

/// \brief One attribute's dictionary: external value <-> dense uint32 id.
class ValueDictionary {
 public:
  ValueDictionary() = default;

  /// Returns the id of `external`, interning it on first sight. Ids are
  /// dense (0..size()-1, in first-intern order); interning an existing
  /// value is idempotent. Fails with ArithmeticOverflow once the id space
  /// (UINT32_MAX values; kInvalidValueId is reserved) is exhausted.
  Result<ValueId> Intern(const std::string& external);

  /// Id of `external` if already interned.
  std::optional<ValueId> Find(const std::string& external) const;

  /// External value of an issued id; requires id < size().
  const std::string& ExternalOf(ValueId id) const { return externals_[id]; }

  /// The full external-value table in id order (externals()[i] is the
  /// value of id i). This is the dictionary's wire representation: a
  /// receiver that BulkLoad()s this exact sequence reconstructs an
  /// id-identical dictionary, so rows encoded by the sender decode
  /// unchanged on the receiver (the bagcd `DICT` block ships it verbatim).
  const std::vector<std::string>& externals() const { return externals_; }

  /// Wire decode: assigns ids 0..values.size()-1 to `values` in order,
  /// reconstructing the dictionary a sender serialized via externals().
  /// Fails with FailedPrecondition if this dictionary already issued any
  /// id (bulk loads define an id space; merging two is undetectable at
  /// the row level and therefore refused), and with InvalidArgument on a
  /// duplicate value. On failure the dictionary is left unchanged.
  Status BulkLoad(const std::vector<std::string>& values);

  /// Number of distinct interned values (== the next id to be issued).
  size_t size() const { return externals_.size(); }

  /// Total Intern() calls, including idempotent re-interns. Lets tests
  /// assert that a code path performed *no* interning work at all.
  uint64_t intern_calls() const { return intern_calls_; }

  /// Reassigns ids so that id order == sorted external order, making the
  /// assignment a deterministic function of the interned value set.
  /// Returns the remap: new_id = remap[old_id]. Rows encoded with the old
  /// ids must be rewritten through the remap.
  std::vector<ValueId> Canonicalize();

  /// Test hook: pretends `base` ids were already issued, so overflow
  /// rejection is testable without interning 2^32 values.
  void set_id_base_for_test(uint64_t base) { id_base_ = base; }

 private:
  std::vector<std::string> externals_;
  std::unordered_map<std::string, ValueId> index_;
  uint64_t id_base_ = 0;  // counted toward the id-space cap (test hook)
  uint64_t intern_calls_ = 0;
};

/// \brief Per-attribute dictionaries for one bag collection.
///
/// Dictionaries are created lazily per attribute id. One DictionarySet is
/// shared by every bag of a collection (bag_io threads it through
/// parsing, BagBuilder::AddExternal through sealing, ConsistencyEngine
/// across queries), which is what makes shared-attribute ids comparable
/// across bags without ever touching the external strings again.
class DictionarySet {
 public:
  DictionarySet() = default;

  /// The dictionary for attribute `a`, created on first use.
  ValueDictionary& dict(AttrId a);

  /// The dictionary for attribute `a`, or nullptr if none exists yet.
  const ValueDictionary* find_dict(AttrId a) const;

  /// Interns `external` into attribute `a`'s dictionary.
  Result<ValueId> Intern(AttrId a, const std::string& external);

  /// Encodes a schema-aligned row of external values (tokens[i] is the
  /// value of schema.at(i)) into a fixed-width interned row.
  Result<Tuple> EncodeRow(const Schema& schema,
                          const std::vector<std::string>& tokens);

  /// Decodes an interned row back to schema-aligned external values.
  /// Fails if a slot's id was not issued by this set's dictionaries.
  Result<std::vector<std::string>> DecodeRow(const Schema& schema,
                                             const Tuple& row) const;

  /// Number of attributes with a dictionary.
  size_t num_dicts() const;

  /// Sum of dictionary sizes (distinct interned values).
  size_t total_size() const;

  /// Sum of Intern() call counts across dictionaries.
  uint64_t total_intern_calls() const;

  /// Deep copy of the whole set: same attributes, same ids, same
  /// externals. A sealed ConsistencyEngine that must stay immutable while
  /// its session keeps interning (the bagcd snapshot case) seals through
  /// a clone, so later Intern() calls on the live set can never race its
  /// readers — the id spaces coincide at the moment of cloning and only
  /// the live set grows afterwards.
  DictionarySet Clone() const;

  /// Canonicalizes every attribute dictionary (ValueDictionary::
  /// Canonicalize: id order == sorted external order). Returns the remaps
  /// indexed by AttrId — remaps[a][old_id] = new_id; attributes without a
  /// dictionary get an empty remap. Every row encoded through this set
  /// before the call must be rewritten through the remaps.
  std::vector<std::vector<ValueId>> CanonicalizeAll();

 private:
  // Indexed by AttrId; sparse attributes stay null.
  std::vector<std::unique_ptr<ValueDictionary>> dicts_;
};

}  // namespace bagc
