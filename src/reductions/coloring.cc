#include "reductions/coloring.h"

#include <functional>

namespace bagc {

ColoringInstance MakeRandomGraph(size_t n, uint64_t edge_num, uint64_t edge_den,
                                 Rng* rng) {
  ColoringInstance g;
  g.num_vertices = n;
  for (size_t u = 0; u < n; ++u) {
    for (size_t v = u + 1; v < n; ++v) {
      if (rng->Chance(edge_num, edge_den)) g.edges.emplace_back(u, v);
    }
  }
  return g;
}

ColoringInstance MakeColorableGraph(size_t n, uint64_t edge_num, uint64_t edge_den,
                                    Rng* rng) {
  std::vector<int> color(n);
  for (size_t v = 0; v < n; ++v) color[v] = static_cast<int>(rng->Below(3));
  ColoringInstance g;
  g.num_vertices = n;
  for (size_t u = 0; u < n; ++u) {
    for (size_t v = u + 1; v < n; ++v) {
      if (color[u] != color[v] && rng->Chance(edge_num, edge_den)) {
        g.edges.emplace_back(u, v);
      }
    }
  }
  return g;
}

Result<std::vector<Relation>> ColoringToRelations(const ColoringInstance& graph) {
  if (graph.edges.empty()) {
    return Status::InvalidArgument("coloring instance has no edges");
  }
  std::vector<Relation> out;
  out.reserve(graph.edges.size());
  for (const auto& [u, v] : graph.edges) {
    if (u >= graph.num_vertices || v >= graph.num_vertices || u == v) {
      return Status::InvalidArgument("bad edge in coloring instance");
    }
    Schema schema{{static_cast<AttrId>(u), static_cast<AttrId>(v)}};
    Relation r(schema);
    for (Value c1 = 0; c1 < 3; ++c1) {
      for (Value c2 = 0; c2 < 3; ++c2) {
        if (c1 != c2) {
          BAGC_RETURN_NOT_OK(r.Insert(Tuple{{c1, c2}}));
        }
      }
    }
    out.push_back(std::move(r));
  }
  return out;
}

std::optional<std::vector<int>> SolveThreeColoringBruteForce(
    const ColoringInstance& graph) {
  std::vector<int> color(graph.num_vertices, 0);
  // Backtracking over vertices.
  std::vector<std::vector<size_t>> adj(graph.num_vertices);
  for (const auto& [u, v] : graph.edges) {
    adj[u].push_back(v);
    adj[v].push_back(u);
  }
  std::vector<int> assigned(graph.num_vertices, -1);
  std::function<bool(size_t)> rec = [&](size_t v) -> bool {
    if (v == graph.num_vertices) return true;
    for (int c = 0; c < 3; ++c) {
      bool ok = true;
      for (size_t u : adj[v]) {
        if (assigned[u] == c) {
          ok = false;
          break;
        }
      }
      if (ok) {
        assigned[v] = c;
        if (rec(v + 1)) return true;
        assigned[v] = -1;
      }
    }
    return false;
  };
  if (!rec(0)) return std::nullopt;
  for (size_t v = 0; v < graph.num_vertices; ++v) color[v] = assigned[v];
  return color;
}

}  // namespace bagc
