// The chain reduction GCPB(H_{n-1}) <=_p GCPB(H_n) of Lemma 7. An instance
// over H_n assigns a bag to every (n-1)-subset of {A_1..A_n}. The
// reduction adds a fresh attribute A_n with domain {1, 2} and pads every
// bag with a complementary "slack" layer so that witnesses correspond
// exactly: S(t, 1) = R(t) and S(t, 2) = M - R(t), where M is the maximum
// input multiplicity.
//
// Attribute ids: A_i has id i-1. The slack value layer uses domain values
// 1 and 2 for A_n, as in the paper.
#pragma once

#include <vector>

#include "bag/bag.h"
#include "core/collection.h"
#include "util/result.h"

namespace bagc {

/// \brief Bags over H_n: bags[i] has schema {A_1..A_n} \ {A_{i+1}}.
struct HnInstance {
  size_t n = 0;
  std::vector<Bag> bags;
};

/// Validates schemas; needs n >= 3.
Result<HnInstance> MakeHnInstance(std::vector<Bag> bags);

/// The Lemma 7 reduction H_n -> H_{n+1}. The output bags are defined over
/// the *active-domain product* of the input (exponential in n, polynomial
/// for fixed n). Fails when some attribute has an empty active domain.
Result<HnInstance> ExtendHn(const HnInstance& input);

/// Witness maps of Lemma 7: S(t, 1) = R(t), S(t, 2) = M - R(t) — requires
/// every multiplicity of `witness` to be at most the input's maximum
/// multiplicity M (true of every witness, by Theorem 3(1)).
Result<Bag> ExtendHnWitness(const HnInstance& input, const Bag& witness);

/// R(t) = S(t, 1).
Result<Bag> RestrictHnWitness(const HnInstance& input, const Bag& witness);

/// A BagCollection view of the instance.
Result<BagCollection> ToCollection(const HnInstance& input);

}  // namespace bagc
