// Three-dimensional contingency tables (Irving–Jerrum [IJ94], refined by
// De Loera–Onn [LO04]) — the NP-hard core behind GCPB(C3) (Lemma 6).
// An instance asks for an n×n×n non-negative integer table X(i,j,k) with
// prescribed line sums:
//   Σ_q X(i,q,k) = R(i,k),  Σ_q X(q,j,k) = C(j,k),  Σ_q X(i,j,q) = F(i,j).
// The reduction maps the instance to three bags over the triangle schema
// C3 = {A1A2}, {A2A3}, {A3A1}.
#pragma once

#include <cstdint>
#include <vector>

#include "bag/bag.h"
#include "core/collection.h"
#include "util/random.h"
#include "util/result.h"

namespace bagc {

/// \brief A 3DCT instance: three n×n margin matrices.
struct ThreeDctInstance {
  size_t n = 0;
  /// Row-major n×n matrices; R(i,k) = row_sums[i*n+k], etc.
  std::vector<uint64_t> row_sums;     // R(i,k): sums over j
  std::vector<uint64_t> column_sums;  // C(j,k): sums over i
  std::vector<uint64_t> front_sums;   // F(i,j): sums over k

  uint64_t R(size_t i, size_t k) const { return row_sums[i * n + k]; }
  uint64_t C(size_t j, size_t k) const { return column_sums[j * n + k]; }
  uint64_t F(size_t i, size_t j) const { return front_sums[i * n + j]; }
};

/// Samples a *feasible* instance by drawing a hidden table with entries in
/// [0, max_entry] and computing its line sums.
ThreeDctInstance MakeFeasibleInstance(size_t n, uint64_t max_entry, Rng* rng);

/// Perturbs one margin entry of a feasible instance by +delta, usually
/// making it infeasible (and at least pairwise-inconsistent as bags when
/// the grand totals diverge).
ThreeDctInstance PerturbInstance(const ThreeDctInstance& instance, uint64_t delta,
                                 Rng* rng);

/// Lemma 6 reduction: the bags R(A1A3), C(A2A3), F(A1A2) over the triangle
/// hypergraph C3. The instance is feasible iff the bags are globally
/// consistent.
Result<BagCollection> ToTriangleBags(const ThreeDctInstance& instance);

/// Direct verifier: does `table` (n×n×n row-major, X(i,j,k) at
/// (i*n+j)*n+k) realize the instance's line sums?
bool VerifyTable(const ThreeDctInstance& instance, const std::vector<uint64_t>& table);

}  // namespace bagc
