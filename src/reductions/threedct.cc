#include "reductions/threedct.h"

namespace bagc {

ThreeDctInstance MakeFeasibleInstance(size_t n, uint64_t max_entry, Rng* rng) {
  ThreeDctInstance inst;
  inst.n = n;
  inst.row_sums.assign(n * n, 0);
  inst.column_sums.assign(n * n, 0);
  inst.front_sums.assign(n * n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      for (size_t k = 0; k < n; ++k) {
        uint64_t x = rng->Range(0, max_entry);
        inst.row_sums[i * n + k] += x;
        inst.column_sums[j * n + k] += x;
        inst.front_sums[i * n + j] += x;
      }
    }
  }
  return inst;
}

ThreeDctInstance PerturbInstance(const ThreeDctInstance& instance, uint64_t delta,
                                 Rng* rng) {
  ThreeDctInstance out = instance;
  size_t which = static_cast<size_t>(rng->Below(3));
  size_t pos = static_cast<size_t>(rng->Below(out.n * out.n));
  std::vector<uint64_t>* target =
      which == 0 ? &out.row_sums : which == 1 ? &out.column_sums : &out.front_sums;
  (*target)[pos] += delta;
  return out;
}

Result<BagCollection> ToTriangleBags(const ThreeDctInstance& instance) {
  if (instance.n == 0) return Status::InvalidArgument("empty 3DCT instance");
  // Attributes A1, A2, A3 with ids 0, 1, 2 — the index sets i, j, k.
  Schema a13{{0, 2}};
  Schema a23{{1, 2}};
  Schema a12{{0, 1}};
  Bag r(a13), c(a23), f(a12);
  size_t n = instance.n;
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < n; ++k) {
      BAGC_RETURN_NOT_OK(r.Set(Tuple{{static_cast<Value>(i), static_cast<Value>(k)}},
                               instance.R(i, k)));
    }
  }
  for (size_t j = 0; j < n; ++j) {
    for (size_t k = 0; k < n; ++k) {
      BAGC_RETURN_NOT_OK(c.Set(Tuple{{static_cast<Value>(j), static_cast<Value>(k)}},
                               instance.C(j, k)));
    }
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      BAGC_RETURN_NOT_OK(f.Set(Tuple{{static_cast<Value>(i), static_cast<Value>(j)}},
                               instance.F(i, j)));
    }
  }
  return BagCollection::Make({std::move(r), std::move(c), std::move(f)});
}

bool VerifyTable(const ThreeDctInstance& instance,
                 const std::vector<uint64_t>& table) {
  size_t n = instance.n;
  if (table.size() != n * n * n) return false;
  auto at = [&](size_t i, size_t j, size_t k) { return table[(i * n + j) * n + k]; };
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < n; ++k) {
      uint64_t sum = 0;
      for (size_t q = 0; q < n; ++q) sum += at(i, q, k);
      if (sum != instance.R(i, k)) return false;
    }
  }
  for (size_t j = 0; j < n; ++j) {
    for (size_t k = 0; k < n; ++k) {
      uint64_t sum = 0;
      for (size_t q = 0; q < n; ++q) sum += at(q, j, k);
      if (sum != instance.C(j, k)) return false;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      uint64_t sum = 0;
      for (size_t q = 0; q < n; ++q) sum += at(i, j, q);
      if (sum != instance.F(i, j)) return false;
    }
  }
  return true;
}

}  // namespace bagc
