#include "reductions/hn_chain.h"

#include <algorithm>
#include <set>

#include "util/checked_math.h"

namespace bagc {

namespace {

Schema HnEdgeSchema(size_t skip, size_t n) {
  std::vector<AttrId> attrs;
  attrs.reserve(n - 1);
  for (size_t i = 0; i < n; ++i) {
    if (i != skip) attrs.push_back(static_cast<AttrId>(i));
  }
  return Schema{attrs};
}

// Active domain of each attribute id 0..n-1 across the supports.
Result<std::vector<std::vector<Value>>> ActiveDomains(const HnInstance& input) {
  std::vector<std::set<Value>> doms(input.n);
  for (const Bag& bag : input.bags) {
    const Schema& x = bag.schema();
    for (size_t e = 0; e < bag.SupportSize(); ++e) {
      Tuple t = bag.RowAt(e);
      for (size_t slot = 0; slot < x.arity(); ++slot) {
        doms[x.at(slot)].insert(t.at(slot));
      }
    }
  }
  std::vector<std::vector<Value>> out(input.n);
  for (size_t i = 0; i < input.n; ++i) {
    if (doms[i].empty()) {
      return Status::FailedPrecondition("attribute A" + std::to_string(i + 1) +
                                        " has empty active domain");
    }
    out[i].assign(doms[i].begin(), doms[i].end());
  }
  return out;
}

// Calls `body` with every tuple over the product of the given value lists.
template <typename Body>
Status ForEachProductTuple(const std::vector<const std::vector<Value>*>& doms,
                           const Body& body) {
  std::vector<size_t> idx(doms.size(), 0);
  while (true) {
    std::vector<Value> values(doms.size());
    for (size_t i = 0; i < doms.size(); ++i) values[i] = (*doms[i])[idx[i]];
    BAGC_RETURN_NOT_OK(body(Tuple{std::move(values)}));
    size_t pos = 0;
    while (pos < idx.size()) {
      if (++idx[pos] < doms[pos]->size()) break;
      idx[pos] = 0;
      ++pos;
    }
    if (pos == idx.size() || idx.empty()) break;
  }
  return Status::OK();
}

uint64_t MaxMultiplicity(const HnInstance& input) {
  uint64_t m = 0;
  for (const Bag& bag : input.bags) m = std::max(m, bag.MultiplicityBound());
  return m;
}

// Appends `v` to the (sorted-layout) tuple `t` whose schema's attributes
// all precede the new attribute id — the fresh attribute always has the
// largest id, so it lands in the last slot.
Tuple AppendValue(const Tuple& t, Value v) {
  std::vector<ValueId> row(t.ids());
  row.push_back(EncodeValue(v));
  return Tuple::OfIds(std::move(row));
}

}  // namespace

Result<HnInstance> MakeHnInstance(std::vector<Bag> bags) {
  size_t n = bags.size();
  if (n < 3) return Status::InvalidArgument("Hn instance needs n >= 3 bags");
  for (size_t i = 0; i < n; ++i) {
    if (bags[i].schema() != HnEdgeSchema(i, n)) {
      return Status::InvalidArgument("bag " + std::to_string(i) +
                                     " does not have the Hn edge schema");
    }
  }
  HnInstance out;
  out.n = n;
  out.bags = std::move(bags);
  return out;
}

Result<HnInstance> ExtendHn(const HnInstance& input) {
  size_t n = input.n;
  BAGC_ASSIGN_OR_RETURN(auto doms, ActiveDomains(input));
  uint64_t big_m = MaxMultiplicity(input);
  HnInstance out;
  out.n = n + 1;
  out.bags.reserve(n + 1);
  AttrId fresh = static_cast<AttrId>(n);

  for (size_t i = 0; i < n; ++i) {
    const Schema& xi = input.bags[i].schema();
    Schema yi = Schema::Union(xi, Schema{{fresh}});
    Bag si(yi);
    // Slack level: M * D_i, where D_i is the active-domain size of the
    // *missing* attribute A_{i+1}.
    BAGC_ASSIGN_OR_RETURN(uint64_t slack_total,
                          CheckedMul(big_m, doms[i].size()));
    std::vector<const std::vector<Value>*> product;
    for (size_t slot = 0; slot < xi.arity(); ++slot) {
      product.push_back(&doms[xi.at(slot)]);
    }
    BAGC_RETURN_NOT_OK(ForEachProductTuple(
        product, [&](const Tuple& t) -> Status {
          uint64_t r = input.bags[i].Multiplicity(t);
          if (r > slack_total) {
            return Status::InvalidArgument(
                "multiplicity exceeds M*D slack (not a valid Hn instance)");
          }
          BAGC_RETURN_NOT_OK(si.Set(AppendValue(t, 1), r));
          BAGC_RETURN_NOT_OK(si.Set(AppendValue(t, 2), slack_total - r));
          return Status::OK();
        }));
    out.bags.push_back(std::move(si));
  }

  // The closing bag S_{n+1} over the full old attribute set: constant M.
  Schema yn = HnEdgeSchema(n, n + 1);  // = {A_1..A_n}
  Bag sn(yn);
  std::vector<const std::vector<Value>*> product;
  for (size_t slot = 0; slot < yn.arity(); ++slot) {
    product.push_back(&doms[yn.at(slot)]);
  }
  BAGC_RETURN_NOT_OK(ForEachProductTuple(product, [&](const Tuple& t) -> Status {
    return sn.Set(t, big_m);
  }));
  out.bags.push_back(std::move(sn));
  return out;
}

Result<Bag> ExtendHnWitness(const HnInstance& input, const Bag& witness) {
  size_t n = input.n;
  BAGC_ASSIGN_OR_RETURN(auto doms, ActiveDomains(input));
  uint64_t big_m = MaxMultiplicity(input);
  std::vector<AttrId> attrs(n + 1);
  for (size_t i = 0; i <= n; ++i) attrs[i] = static_cast<AttrId>(i);
  Bag out(Schema{attrs});
  std::vector<const std::vector<Value>*> product;
  for (size_t i = 0; i < n; ++i) product.push_back(&doms[i]);
  BAGC_RETURN_NOT_OK(ForEachProductTuple(product, [&](const Tuple& t) -> Status {
    uint64_t r = witness.Multiplicity(t);
    if (r > big_m) {
      return Status::InvalidArgument(
          "witness multiplicity exceeds M (violates Theorem 3(1))");
    }
    BAGC_RETURN_NOT_OK(out.Set(AppendValue(t, 1), r));
    BAGC_RETURN_NOT_OK(out.Set(AppendValue(t, 2), big_m - r));
    return Status::OK();
  }));
  // Witness tuples outside the active product would violate the bag
  // marginals, so there are none.
  return out;
}

Result<Bag> RestrictHnWitness(const HnInstance& input, const Bag& witness) {
  size_t n = input.n;
  std::vector<AttrId> attrs(n);
  for (size_t i = 0; i < n; ++i) attrs[i] = static_cast<AttrId>(i);
  Schema old_schema{attrs};
  Bag out(old_schema);
  // Keep only the A_{n+1} = 1 layer (the fresh attribute has the largest
  // id, hence the last slot).
  for (size_t e = 0; e < witness.SupportSize(); ++e) {
    Tuple t = witness.RowAt(e);
    if (t.at(t.arity() - 1) != 1) continue;
    std::vector<ValueId> row(t.ids().begin(), t.ids().end() - 1);
    BAGC_RETURN_NOT_OK(
        out.Add(Tuple::OfIds(std::move(row)), witness.MultiplicityAt(e)));
  }
  return out;
}

Result<BagCollection> ToCollection(const HnInstance& input) {
  return BagCollection::Make(input.bags);
}

}  // namespace bagc
