// The chain reduction GCPB(C_{n-1}) <=_p GCPB(C_n) of Lemma 6. An instance
// over the cycle C_n is a list of bags R1(A1A2), ..., Rn(AnA1); the
// reduction re-homes the closing bag onto a fresh attribute A_{n+1} and
// adds a diagonal "equality" bag forcing A_{n+1} = A1, so witnesses map
// back and forth in polynomial time.
//
// Attribute ids: A_i has id i-1.
#pragma once

#include <vector>

#include "bag/bag.h"
#include "core/collection.h"
#include "util/result.h"

namespace bagc {

/// \brief Bags over the cycle C_n: bags[i] has schema {A_{i+1}, A_{i+2}}
/// (0-based: {i, i+1}), and the last closes the cycle with {A_n, A_1}.
struct CycleInstance {
  size_t n = 0;
  std::vector<Bag> bags;
};

/// Validates schemas and wraps the bags; needs n >= 3.
Result<CycleInstance> MakeCycleInstance(std::vector<Bag> bags);

/// The Lemma 6 reduction C_n -> C_{n+1}; polynomial time and size.
Result<CycleInstance> ExtendCycle(const CycleInstance& input);

/// Maps a witness of the C_n instance to one of the extended C_{n+1}
/// instance (duplicate A_1's value onto A_{n+1}).
Result<Bag> ExtendCycleWitness(const CycleInstance& input, const Bag& witness);

/// Maps a witness of the extended instance back to one of the original
/// (marginalize out A_{n+1}).
Result<Bag> RestrictCycleWitness(const CycleInstance& input, const Bag& witness);

/// A BagCollection view of the instance.
Result<BagCollection> ToCollection(const CycleInstance& input);

}  // namespace bagc
