#include "reductions/cycle_chain.h"

namespace bagc {

namespace {

Schema CycleEdgeSchema(size_t i, size_t n) {
  // Edge i joins attributes i and (i+1) mod n.
  return Schema{{static_cast<AttrId>(i), static_cast<AttrId>((i + 1) % n)}};
}

}  // namespace

Result<CycleInstance> MakeCycleInstance(std::vector<Bag> bags) {
  size_t n = bags.size();
  if (n < 3) return Status::InvalidArgument("cycle instance needs n >= 3 bags");
  for (size_t i = 0; i < n; ++i) {
    if (bags[i].schema() != CycleEdgeSchema(i, n)) {
      return Status::InvalidArgument("bag " + std::to_string(i) +
                                     " does not have the C_n edge schema");
    }
  }
  CycleInstance out;
  out.n = n;
  out.bags = std::move(bags);
  return out;
}

Result<CycleInstance> ExtendCycle(const CycleInstance& input) {
  size_t n = input.n;
  CycleInstance out;
  out.n = n + 1;
  out.bags.reserve(n + 1);
  // Bags 0..n-2 are unchanged.
  for (size_t i = 0; i + 1 < n; ++i) out.bags.push_back(input.bags[i]);

  // The closing bag R_n(A_n A_1) becomes an identical copy over
  // (A_n, A_{n+1}): the value at A_1 moves to the fresh attribute.
  const Bag& closing = input.bags[n - 1];
  // closing's schema is {0, n-1}: slot 0 = A_1, slot 1 = A_n.
  Schema rehomed_schema{{static_cast<AttrId>(n - 1), static_cast<AttrId>(n)}};
  BagBuilder rehomed_builder(rehomed_schema);
  rehomed_builder.Reserve(closing.SupportSize());
  for (size_t e = 0; e < closing.SupportSize(); ++e) {
    Tuple t = closing.RowAt(e);
    // New layout {n-1, n}: slot 0 = A_n = t.at(1), slot 1 = A_{n+1} = t.at(0).
    BAGC_RETURN_NOT_OK(
        rehomed_builder.Add(Tuple{{t.at(1), t.at(0)}}, closing.MultiplicityAt(e)));
  }
  BAGC_ASSIGN_OR_RETURN(Bag rehomed, rehomed_builder.Build());
  out.bags.push_back(std::move(rehomed));

  // The equality bag R_{n+1}(A_{n+1} A_1): diagonal support with
  // multiplicities from the A_1-marginal of the closing bag.
  Schema a1{{0}};
  BAGC_ASSIGN_OR_RETURN(Bag closing_a1, closing.Marginal(a1));
  Schema eq_schema{{static_cast<AttrId>(0), static_cast<AttrId>(n)}};
  Bag equality(eq_schema);
  for (size_t e = 0; e < closing_a1.SupportSize(); ++e) {
    Tuple t = closing_a1.RowAt(e);
    // Layout {0, n}: slot 0 = A_1, slot 1 = A_{n+1}; both carry the value.
    BAGC_RETURN_NOT_OK(
        equality.Set(Tuple{{t.at(0), t.at(0)}}, closing_a1.MultiplicityAt(e)));
  }
  out.bags.push_back(std::move(equality));
  return out;
}

Result<Bag> ExtendCycleWitness(const CycleInstance& input, const Bag& witness) {
  size_t n = input.n;
  std::vector<AttrId> attrs(n + 1);
  for (size_t i = 0; i <= n; ++i) attrs[i] = static_cast<AttrId>(i);
  Schema extended{attrs};
  Bag out(extended);
  for (size_t e = 0; e < witness.SupportSize(); ++e) {
    Tuple t = witness.RowAt(e);
    // Witness schema is {0..n-1} in sorted layout; append A_{n+1} := A_1.
    std::vector<ValueId> row(t.ids());
    row.push_back(t.id(0));
    BAGC_RETURN_NOT_OK(
        out.Set(Tuple::OfIds(std::move(row)), witness.MultiplicityAt(e)));
  }
  return out;
}

Result<Bag> RestrictCycleWitness(const CycleInstance& input, const Bag& witness) {
  size_t n = input.n;
  std::vector<AttrId> attrs(n);
  for (size_t i = 0; i < n; ++i) attrs[i] = static_cast<AttrId>(i);
  return witness.Marginal(Schema{attrs});
}

Result<BagCollection> ToCollection(const CycleInstance& input) {
  return BagCollection::Make(input.bags);
}

}  // namespace bagc
