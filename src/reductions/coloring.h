// The Honeyman–Ladner–Yannakakis reduction [HLY80]: 3-Colorability <=_p
// global consistency of *relations* (the set case, §5.1). Each graph edge
// becomes a binary relation of the six ordered pairs of distinct colors;
// the graph is 3-colorable iff the relations are globally consistent.
// This is the set-semantics NP-hardness baseline contrasted with the
// fixed-schema tractability of relations in Theorem 4's discussion.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "bag/relation.h"
#include "util/random.h"
#include "util/result.h"

namespace bagc {

/// \brief An undirected graph for coloring instances.
struct ColoringInstance {
  size_t num_vertices = 0;
  std::vector<std::pair<size_t, size_t>> edges;
};

/// Random G(n, p)-style instance with p = edge_num/edge_den.
ColoringInstance MakeRandomGraph(size_t n, uint64_t edge_num, uint64_t edge_den,
                                 Rng* rng);

/// A graph that is 3-colorable by construction (random 3-partition, edges
/// only across classes).
ColoringInstance MakeColorableGraph(size_t n, uint64_t edge_num, uint64_t edge_den,
                                    Rng* rng);

/// The HLY80 reduction: one binary relation per edge (attribute id =
/// vertex id), six tuples each.
Result<std::vector<Relation>> ColoringToRelations(const ColoringInstance& graph);

/// Exhaustive 3-coloring solver (exponential; for cross-validation).
std::optional<std::vector<int>> SolveThreeColoringBruteForce(
    const ColoringInstance& graph);

}  // namespace bagc
