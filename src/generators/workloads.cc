#include "generators/workloads.h"

namespace bagc {

Result<Bag> MakeRandomBag(const Schema& schema, const BagGenOptions& options,
                          Rng* rng) {
  BagBuilder builder(schema);
  builder.Reserve(options.support_size);
  for (size_t i = 0; i < options.support_size; ++i) {
    std::vector<Value> values(schema.arity());
    for (Value& v : values) {
      v = static_cast<Value>(rng->Below(options.domain_size));
    }
    BAGC_RETURN_NOT_OK(
        builder.Add(Tuple{std::move(values)}, rng->Range(1, options.max_multiplicity)));
  }
  return builder.Build();
}

Result<std::pair<Bag, Bag>> MakeConsistentPair(const Schema& x, const Schema& y,
                                               const BagGenOptions& options,
                                               Rng* rng) {
  Schema xy = Schema::Union(x, y);
  BAGC_ASSIGN_OR_RETURN(Bag hidden, MakeRandomBag(xy, options, rng));
  BAGC_ASSIGN_OR_RETURN(Bag r, hidden.Marginal(x));
  BAGC_ASSIGN_OR_RETURN(Bag s, hidden.Marginal(y));
  return std::make_pair(std::move(r), std::move(s));
}

Result<std::pair<Bag, Bag>> MakeInconsistentPair(const Schema& x, const Schema& y,
                                                 const BagGenOptions& options,
                                                 Rng* rng) {
  BAGC_ASSIGN_OR_RETURN(auto pair, MakeConsistentPair(x, y, options, rng));
  Bag& r = pair.first;
  if (r.IsEmpty()) {
    // Degenerate sample; add a tuple to R only, breaking the empty/empty
    // equality of the shared marginals.
    std::vector<Value> values(x.arity(), 0);
    BAGC_RETURN_NOT_OK(r.Set(Tuple{std::move(values)}, 1));
    return pair;
  }
  // Bump one multiplicity of R. When X ∩ Y is non-empty this changes the
  // shared marginal (S unchanged); when the intersection is empty it
  // changes the total cardinality, which is the ∅-marginal.
  size_t pick = static_cast<size_t>(rng->Below(r.SupportSize()));
  Tuple t = r.RowAt(pick);
  uint64_t mult = r.MultiplicityAt(pick);
  BAGC_RETURN_NOT_OK(r.Set(t, mult + 1));
  return pair;
}

Result<BagCollection> MakeGloballyConsistentCollection(const Hypergraph& h,
                                                       const BagGenOptions& options,
                                                       Rng* rng) {
  Schema all = Schema::UnionAll(h.edges());
  BAGC_ASSIGN_OR_RETURN(Bag hidden, MakeRandomBag(all, options, rng));
  if (hidden.IsEmpty()) {
    // Ensure a non-trivial witness exists.
    std::vector<Value> values(all.arity(), 0);
    BAGC_RETURN_NOT_OK(hidden.Set(Tuple{std::move(values)}, 1));
  }
  std::vector<Bag> bags;
  bags.reserve(h.num_edges());
  for (const Schema& e : h.edges()) {
    BAGC_ASSIGN_OR_RETURN(Bag marginal, hidden.Marginal(e));
    bags.push_back(std::move(marginal));
  }
  return BagCollection::Make(std::move(bags));
}

}  // namespace bagc
