// Workload generators for the experiment harness. Every generator is
// deterministic given a seed; the "hidden witness" generators produce
// collections that are globally consistent *by construction* (sample a
// witness over the union schema, then marginalize onto each hyperedge),
// and the perturbers break consistency in controlled ways.
#pragma once

#include <cstdint>
#include <vector>

#include "bag/bag.h"
#include "core/collection.h"
#include "hypergraph/hypergraph.h"
#include "util/random.h"
#include "util/result.h"

namespace bagc {

/// Parameters shared by the random bag generators.
struct BagGenOptions {
  /// Number of distinct tuples to aim for (duplicates merge).
  size_t support_size = 16;
  /// Values are drawn uniformly from [0, domain_size).
  uint64_t domain_size = 4;
  /// Multiplicities are drawn uniformly from [1, max_multiplicity].
  uint64_t max_multiplicity = 8;
};

/// A random bag over `schema`.
Result<Bag> MakeRandomBag(const Schema& schema, const BagGenOptions& options,
                          Rng* rng);

/// A consistent pair (R, S) over (x, y): sample a hidden witness over
/// X ∪ Y and marginalize. Returns {R, S}.
Result<std::pair<Bag, Bag>> MakeConsistentPair(const Schema& x, const Schema& y,
                                               const BagGenOptions& options,
                                               Rng* rng);

/// A pair over (x, y) that is *inconsistent* (perturbs one multiplicity of
/// a consistent pair on a shared-marginal-affecting tuple).
Result<std::pair<Bag, Bag>> MakeInconsistentPair(const Schema& x, const Schema& y,
                                                 const BagGenOptions& options,
                                                 Rng* rng);

/// A globally consistent collection over the hyperedges of `h`, via a
/// hidden witness.
Result<BagCollection> MakeGloballyConsistentCollection(const Hypergraph& h,
                                                       const BagGenOptions& options,
                                                       Rng* rng);

}  // namespace bagc
