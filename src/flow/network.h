// Flow networks and Dinic's max-flow algorithm. This is the strongly
// polynomial substrate behind Lemma 2 (two-bag consistency) and the
// minimal-witness construction of §5.3. Capacities and flows are exact
// 64-bit integers; the integrality theorem for max flow then yields integer
// witnesses directly.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/result.h"

namespace bagc {

/// \brief Directed flow network with integer capacities.
///
/// Edges are added in pairs (forward + residual back-edge). EdgeIds returned
/// by AddEdge are stable and can be used to read back the flow on specific
/// edges after Solve().
class FlowNetwork {
 public:
  using EdgeId = size_t;

  /// Capacity value treated as "unbounded" (paper: the middle edges of
  /// N(R,S) have very large capacity).
  static constexpr uint64_t kUnbounded = std::numeric_limits<uint64_t>::max() / 4;

  explicit FlowNetwork(size_t num_vertices);

  /// Clears the network back to `num_vertices` isolated vertices while
  /// retaining every allocation (edge pool, adjacency lists, BFS/DFS
  /// scratch). This is the arena-reuse entry point: repeated solves — the
  /// §5.3 suppress/restore loop, the Theorem 6 fold, engine batch queries —
  /// rebuild into the same storage instead of reallocating per solve.
  void Reset(size_t num_vertices);

  size_t num_vertices() const { return graph_.size(); }
  size_t num_edges() const { return edges_.size() / 2; }

  /// Adds a directed edge u -> v with the given capacity; returns its id.
  Result<EdgeId> AddEdge(size_t u, size_t v, uint64_t capacity);

  /// Computes a maximum s-t flow (Dinic, O(V^2 E)); returns its value.
  /// Resets any previous flow.
  Result<uint64_t> Solve(size_t s, size_t t);

  /// Flow currently on edge `id` (after Solve).
  uint64_t FlowOn(EdgeId id) const;

  /// Capacity of edge `id`.
  uint64_t CapacityOf(EdgeId id) const;

  /// Temporarily sets the capacity of an edge (used by the minimal-witness
  /// self-reducibility loop, which suppresses middle edges one at a time).
  Status SetCapacity(EdgeId id, uint64_t capacity);

 private:
  struct Edge {
    size_t to;
    uint64_t cap;   // residual capacity
    uint64_t orig;  // original capacity
  };

  bool Bfs(size_t s, size_t t);
  uint64_t Dfs(size_t v, size_t t, uint64_t limit);

  std::vector<Edge> edges_;                 // edge 2k = forward, 2k+1 = back
  std::vector<std::vector<size_t>> graph_;  // adjacency: edge indices
  std::vector<int> level_;
  std::vector<size_t> iter_;
  std::vector<size_t> bfs_queue_;  // scratch, reused across Bfs calls
};

}  // namespace bagc
