#include "flow/consistency_network.h"

#include <map>

#include "util/checked_math.h"

namespace bagc {

Result<ConsistencyNetwork> ConsistencyNetwork::Make(const Bag& r, const Bag& s) {
  ConsistencyNetwork cn;
  BAGC_ASSIGN_OR_RETURN(TupleJoiner joiner, TupleJoiner::Make(r.schema(), s.schema()));
  cn.joined_schema_ = joiner.joined_schema();

  // Vertex numbering: 0 = source, 1..|R'| = R tuples, then S tuples, then
  // sink last.
  size_t nr = r.SupportSize();
  size_t ns = s.SupportSize();
  cn.net_ = FlowNetwork(2 + nr + ns);
  cn.source_ = 0;
  cn.sink_ = 1 + nr + ns;

  std::map<Tuple, size_t> r_index;
  std::map<Tuple, size_t> s_index;
  {
    size_t v = 1;
    for (const auto& [t, mult] : r.entries()) {
      r_index.emplace(t, v);
      BAGC_RETURN_NOT_OK(cn.net_.AddEdge(cn.source_, v, mult).status());
      BAGC_ASSIGN_OR_RETURN(cn.source_capacity_,
                            CheckedAdd(cn.source_capacity_, mult));
      ++v;
    }
    for (const auto& [t, mult] : s.entries()) {
      s_index.emplace(t, v);
      BAGC_RETURN_NOT_OK(cn.net_.AddEdge(v, cn.sink_, mult).status());
      BAGC_ASSIGN_OR_RETURN(cn.sink_capacity_, CheckedAdd(cn.sink_capacity_, mult));
      ++v;
    }
  }
  if (cn.source_capacity_ > FlowNetwork::kUnbounded ||
      cn.sink_capacity_ > FlowNetwork::kUnbounded) {
    return Status::ResourceExhausted("bag cardinalities exceed flow capacity range");
  }

  // Middle edges: one per join tuple of the supports, grouped via a hash
  // join on the shared attributes.
  BAGC_ASSIGN_OR_RETURN(Projector r_shared,
                        Projector::Make(r.schema(), joiner.shared_schema()));
  BAGC_ASSIGN_OR_RETURN(Projector s_shared,
                        Projector::Make(s.schema(), joiner.shared_schema()));
  std::map<Tuple, std::vector<const Tuple*>> index;
  for (const auto& [t, mult] : s.entries()) {
    (void)mult;
    index[t.Project(s_shared)].push_back(&t);
  }
  for (const auto& [x, mult] : r.entries()) {
    (void)mult;
    auto it = index.find(x.Project(r_shared));
    if (it == index.end()) continue;
    for (const Tuple* y : it->second) {
      BAGC_ASSIGN_OR_RETURN(
          FlowNetwork::EdgeId eid,
          cn.net_.AddEdge(r_index.at(x), s_index.at(*y), FlowNetwork::kUnbounded));
      cn.middle_.push_back({joiner.Join(x, *y), eid});
    }
  }
  return cn;
}

Result<bool> ConsistencyNetwork::HasSaturatedFlow() {
  if (source_capacity_ != sink_capacity_) {
    // A saturated flow must move exactly both totals; different totals make
    // saturation impossible (and indeed R[Z] != S[Z] then).
    return false;
  }
  BAGC_ASSIGN_OR_RETURN(uint64_t value, net_.Solve(source_, sink_));
  return value == source_capacity_;
}

Result<Bag> ConsistencyNetwork::ExtractWitness() const {
  Bag witness(joined_schema_);
  for (const MiddleEdge& me : middle_) {
    uint64_t f = net_.FlowOn(me.edge);
    if (f > 0) {
      BAGC_RETURN_NOT_OK(witness.Add(me.tuple, f));
    }
  }
  return witness;
}

Status ConsistencyNetwork::SuppressMiddleEdge(size_t i) {
  if (i >= middle_.size()) return Status::InvalidArgument("middle edge out of range");
  return net_.SetCapacity(middle_[i].edge, 0);
}

Status ConsistencyNetwork::RestoreMiddleEdge(size_t i) {
  if (i >= middle_.size()) return Status::InvalidArgument("middle edge out of range");
  return net_.SetCapacity(middle_[i].edge, FlowNetwork::kUnbounded);
}

}  // namespace bagc
