#include "flow/consistency_network.h"

#include "tuple/tuple_index.h"
#include "util/checked_math.h"

namespace bagc {

Result<ConsistencyNetwork> ConsistencyNetwork::Make(const Bag& r, const Bag& s) {
  ConsistencyNetwork cn;
  BAGC_RETURN_NOT_OK(cn.Assign(r, s));
  return cn;
}

Status ConsistencyNetwork::Assign(const Bag& r, const Bag& s) {
  BAGC_ASSIGN_OR_RETURN(TupleJoiner joiner, TupleJoiner::Make(r.schema(), s.schema()));
  joined_schema_ = joiner.joined_schema();
  middle_.clear();
  source_capacity_ = 0;
  sink_capacity_ = 0;

  // Vertex numbering: 0 = source, 1..|R'| = R tuples, then S tuples, then
  // sink last. The flat entry vectors give the mapping directly: the i-th
  // entry of R is vertex 1 + i, the j-th entry of S is vertex 1 + |R'| + j.
  size_t nr = r.SupportSize();
  size_t ns = s.SupportSize();
  net_.Reset(2 + nr + ns);
  source_ = 0;
  sink_ = 1 + nr + ns;

  for (size_t i = 0; i < nr; ++i) {
    uint64_t mult = r.MultiplicityAt(i);
    BAGC_RETURN_NOT_OK(net_.AddEdge(source_, 1 + i, mult).status());
    BAGC_ASSIGN_OR_RETURN(source_capacity_, CheckedAdd(source_capacity_, mult));
  }
  for (size_t j = 0; j < ns; ++j) {
    uint64_t mult = s.MultiplicityAt(j);
    BAGC_RETURN_NOT_OK(net_.AddEdge(1 + nr + j, sink_, mult).status());
    BAGC_ASSIGN_OR_RETURN(sink_capacity_, CheckedAdd(sink_capacity_, mult));
  }
  if (source_capacity_ > FlowNetwork::kUnbounded ||
      sink_capacity_ > FlowNetwork::kUnbounded) {
    return Status::ResourceExhausted("bag cardinalities exceed flow capacity range");
  }

  // Middle edges: one per join tuple of the supports, grouped via a
  // columnar hash join on the shared attributes — gather just the shared
  // columns of both sides, index S's, and resolve every R row in one
  // ProbeAll batch (no per-row Tuple projections on the matching phase).
  BAGC_ASSIGN_OR_RETURN(Projector r_shared,
                        Projector::Make(r.schema(), joiner.shared_schema()));
  BAGC_ASSIGN_OR_RETURN(Projector s_shared,
                        Projector::Make(s.schema(), joiner.shared_schema()));
  ColumnStore r_backing;
  ColumnStore s_backing;
  ColumnView r_view = r.ProjectedView(r_shared, &r_backing);
  ColumnView s_view = s.ProjectedView(s_shared, &s_backing);
  ColumnJoinMatch match(r_view, s_view);
  for (size_t i = 0; i < nr; ++i) {
    if (match.MatchOf(i) == ColumnJoinMatch::kNoMatch) continue;
    Tuple x = r.RowAt(i);  // middle-edge assembly materializes (cold)
    for (uint32_t j : match.RightRows(match.MatchOf(i))) {
      BAGC_ASSIGN_OR_RETURN(
          FlowNetwork::EdgeId eid,
          net_.AddEdge(1 + i, 1 + nr + j, FlowNetwork::kUnbounded));
      middle_.push_back({joiner.Join(x, s.RowAt(j)), eid});
    }
  }
  return Status::OK();
}

Result<bool> ConsistencyNetwork::HasSaturatedFlow() {
  if (source_capacity_ != sink_capacity_) {
    // A saturated flow must move exactly both totals; different totals make
    // saturation impossible (and indeed R[Z] != S[Z] then).
    return false;
  }
  BAGC_ASSIGN_OR_RETURN(uint64_t value, net_.Solve(source_, sink_));
  return value == source_capacity_;
}

Result<Bag> ConsistencyNetwork::ExtractWitness() const {
  BagBuilder builder(joined_schema_);
  for (const MiddleEdge& me : middle_) {
    uint64_t f = net_.FlowOn(me.edge);
    if (f > 0) {
      BAGC_RETURN_NOT_OK(builder.Add(me.tuple, f));
    }
  }
  return builder.Build();
}

Status ConsistencyNetwork::SuppressMiddleEdge(size_t i) {
  if (i >= middle_.size()) return Status::InvalidArgument("middle edge out of range");
  return net_.SetCapacity(middle_[i].edge, 0);
}

Status ConsistencyNetwork::RestoreMiddleEdge(size_t i) {
  if (i >= middle_.size()) return Status::InvalidArgument("middle edge out of range");
  return net_.SetCapacity(middle_[i].edge, FlowNetwork::kUnbounded);
}

}  // namespace bagc
