// The network N(R, S) of §3: source -> support tuples of R (capacity R(r))
// -> middle edges for each join tuple t in R' ⋈ S' (unbounded capacity) ->
// support tuples of S (capacity S(s)) -> sink. R and S are consistent iff
// N(R, S) admits a saturated flow (Lemma 2, (1) <=> (5)); an integral
// saturated flow *is* a witness bag.
#pragma once

#include <cstdint>
#include <vector>

#include "bag/bag.h"
#include "flow/network.h"
#include "tuple/tuple.h"
#include "util/result.h"

namespace bagc {

/// \brief N(R, S) plus the bookkeeping to map flows back to witness bags.
class ConsistencyNetwork {
 public:
  /// An empty network; populate with Assign.
  ConsistencyNetwork() : net_(0) {}

  /// Builds N(R, S). Fails on schema errors or overflowing capacities.
  static Result<ConsistencyNetwork> Make(const Bag& r, const Bag& s);

  /// Rebuilds this object as N(R, S) in place, reusing the flow arena and
  /// middle-edge storage of any previous build (see FlowNetwork::Reset).
  /// On error the contents are unspecified; Assign again before use.
  Status Assign(const Bag& r, const Bag& s);

  /// Sum of source-side capacities (= ||R||_u); a flow saturates iff its
  /// value equals this and also equals ||S||_u.
  uint64_t SourceCapacity() const { return source_capacity_; }
  uint64_t SinkCapacity() const { return sink_capacity_; }

  size_t NumMiddleEdges() const { return middle_.size(); }

  /// The join tuple (over schema XY) of middle edge i.
  const Tuple& MiddleTuple(size_t i) const { return middle_[i].tuple; }

  /// Runs max-flow; returns true iff a saturated flow exists.
  Result<bool> HasSaturatedFlow();

  /// After a successful HasSaturatedFlow() == true, extracts the witness
  /// bag T(XY) with T(t) = flow on t's middle edge.
  Result<Bag> ExtractWitness() const;

  /// Suppresses middle edge i (capacity 0) / restores it. Used by the
  /// §5.3 minimal-witness loop.
  Status SuppressMiddleEdge(size_t i);
  Status RestoreMiddleEdge(size_t i);

  /// Flow currently on middle edge i.
  uint64_t MiddleFlow(size_t i) const { return net_.FlowOn(middle_[i].edge); }

  const Schema& joined_schema() const { return joined_schema_; }

 private:
  struct MiddleEdge {
    Tuple tuple;  // join tuple over XY
    FlowNetwork::EdgeId edge;
  };

  FlowNetwork net_;
  Schema joined_schema_;
  std::vector<MiddleEdge> middle_;
  uint64_t source_capacity_ = 0;
  uint64_t sink_capacity_ = 0;
  size_t source_ = 0;
  size_t sink_ = 0;
};

}  // namespace bagc
