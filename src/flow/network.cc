#include "flow/network.h"

#include <algorithm>

#include "util/logging.h"

namespace bagc {

FlowNetwork::FlowNetwork(size_t num_vertices) : graph_(num_vertices) {}

void FlowNetwork::Reset(size_t num_vertices) {
  edges_.clear();
  // Resize the adjacency table without releasing the per-vertex vectors:
  // surviving slots keep their capacity for the next build.
  graph_.resize(num_vertices);
  for (std::vector<size_t>& adj : graph_) adj.clear();
}

Result<FlowNetwork::EdgeId> FlowNetwork::AddEdge(size_t u, size_t v,
                                                 uint64_t capacity) {
  if (u >= graph_.size() || v >= graph_.size()) {
    return Status::InvalidArgument("flow edge endpoint out of range");
  }
  if (capacity > kUnbounded) {
    return Status::InvalidArgument("capacity exceeds kUnbounded");
  }
  EdgeId id = edges_.size() / 2;
  graph_[u].push_back(edges_.size());
  edges_.push_back({v, capacity, capacity});
  graph_[v].push_back(edges_.size());
  edges_.push_back({u, 0, 0});
  return id;
}

bool FlowNetwork::Bfs(size_t s, size_t t) {
  level_.assign(graph_.size(), -1);
  bfs_queue_.clear();
  bfs_queue_.push_back(s);
  level_[s] = 0;
  for (size_t qi = 0; qi < bfs_queue_.size(); ++qi) {
    size_t v = bfs_queue_[qi];
    for (size_t eid : graph_[v]) {
      const Edge& e = edges_[eid];
      if (e.cap > 0 && level_[e.to] < 0) {
        level_[e.to] = level_[v] + 1;
        bfs_queue_.push_back(e.to);
      }
    }
  }
  return level_[t] >= 0;
}

uint64_t FlowNetwork::Dfs(size_t v, size_t t, uint64_t limit) {
  if (v == t) return limit;
  for (size_t& i = iter_[v]; i < graph_[v].size(); ++i) {
    size_t eid = graph_[v][i];
    Edge& e = edges_[eid];
    if (e.cap == 0 || level_[e.to] != level_[v] + 1) continue;
    uint64_t pushed = Dfs(e.to, t, std::min(limit, e.cap));
    if (pushed > 0) {
      e.cap -= pushed;
      edges_[eid ^ 1].cap += pushed;
      return pushed;
    }
  }
  return 0;
}

Result<uint64_t> FlowNetwork::Solve(size_t s, size_t t) {
  if (s >= graph_.size() || t >= graph_.size() || s == t) {
    return Status::InvalidArgument("invalid source/sink");
  }
  // Reset residual capacities to originals.
  for (Edge& e : edges_) e.cap = e.orig;
  uint64_t total = 0;
  while (Bfs(s, t)) {
    iter_.assign(graph_.size(), 0);
    while (uint64_t pushed = Dfs(s, t, kUnbounded)) {
      total += pushed;
    }
  }
  return total;
}

uint64_t FlowNetwork::FlowOn(EdgeId id) const {
  BAGC_DCHECK(2 * id + 1 < edges_.size());
  // Forward edge 2*id: flow = original capacity - residual capacity.
  const Edge& fwd = edges_[2 * id];
  return fwd.orig - fwd.cap;
}

uint64_t FlowNetwork::CapacityOf(EdgeId id) const {
  BAGC_DCHECK(2 * id < edges_.size());
  return edges_[2 * id].orig;
}

Status FlowNetwork::SetCapacity(EdgeId id, uint64_t capacity) {
  if (2 * id >= edges_.size()) {
    return Status::InvalidArgument("edge id out of range");
  }
  if (capacity > kUnbounded) {
    return Status::InvalidArgument("capacity exceeds kUnbounded");
  }
  edges_[2 * id].orig = capacity;
  return Status::OK();
}

}  // namespace bagc
