#include "solver/integer_feasibility.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace bagc {

namespace {

// Shared DFS driver. Invokes `on_solution` for every complete assignment;
// stops the whole search when it returns true.
class Search {
 public:
  Search(const ConsistencyLp& lp, const SolveOptions& options, SolveStats* stats)
      : lp_(lp), options_(options), stats_(stats) {
    size_t n = lp.variables.size();
    var_rows_.resize(n);
    residual_.reserve(lp.rows.size());
    remaining_.reserve(lp.rows.size());
    for (size_t ri = 0; ri < lp.rows.size(); ++ri) {
      const LpRow& row = lp_.rows[ri];
      residual_.push_back(row.rhs);
      remaining_.push_back(row.vars.size());
      for (uint32_t v : row.vars) var_rows_[v].push_back(ri);
    }
    assignment_.assign(n, 0);
  }

  // Rows with no variables at all must have rhs == 0.
  bool TriviallyInfeasible() const {
    for (const LpRow& row : lp_.rows) {
      if (row.vars.empty() && row.rhs != 0) return true;
    }
    return false;
  }

  Status Run(const std::function<bool(const std::vector<uint64_t>&)>& on_solution) {
    if (TriviallyInfeasible()) return Status::OK();
    stop_ = false;
    Status st = Dfs(0, on_solution);
    return st;
  }

 private:
  Status Dfs(size_t v, const std::function<bool(const std::vector<uint64_t>&)>& on) {
    if (stop_) return Status::OK();
    if (v == lp_.variables.size()) {
      // All rows must be exactly satisfied (vars exhausted implies
      // remaining == 0 everywhere, so residual 0 suffices).
      for (uint64_t r : residual_) {
        if (r != 0) return Status::OK();
      }
      if (on(assignment_)) stop_ = true;
      return Status::OK();
    }
    // Upper bound for x_v: min residual over its rows.
    uint64_t ub = std::numeric_limits<uint64_t>::max();
    for (size_t ri : var_rows_[v]) ub = std::min(ub, residual_[ri]);
    if (var_rows_[v].empty()) ub = 0;  // unconstrained vars stay 0
    // A row whose last variable this is must be fully paid by x_v.
    std::optional<uint64_t> forced;
    for (size_t ri : var_rows_[v]) {
      if (remaining_[ri] == 1) {
        if (forced.has_value() && *forced != residual_[ri]) return Status::OK();
        forced = residual_[ri];
      }
    }
    if (forced.has_value() && *forced > ub) return Status::OK();

    auto try_value = [&](uint64_t val) -> Status {
      if (stats_ != nullptr) ++stats_->nodes;
      if (stats_ != nullptr && stats_->nodes > options_.node_limit) {
        return Status::ResourceExhausted("search node limit exceeded");
      }
      assignment_[v] = val;
      for (size_t ri : var_rows_[v]) {
        residual_[ri] -= val;
        --remaining_[ri];
      }
      Status st = Dfs(v + 1, on);
      for (size_t ri : var_rows_[v]) {
        residual_[ri] += val;
        ++remaining_[ri];
      }
      assignment_[v] = 0;
      if (stats_ != nullptr && !st.ok()) ++stats_->backtracks;
      return st;
    };

    if (forced.has_value()) {
      return try_value(*forced);
    }
    if (options_.descend_values) {
      for (uint64_t val = ub;; --val) {
        BAGC_RETURN_NOT_OK(try_value(val));
        if (stop_ || val == 0) break;
      }
    } else {
      for (uint64_t val = 0; val <= ub; ++val) {
        BAGC_RETURN_NOT_OK(try_value(val));
        if (stop_) break;
      }
    }
    return Status::OK();
  }

  const ConsistencyLp& lp_;
  const SolveOptions& options_;
  SolveStats* stats_;
  std::vector<std::vector<size_t>> var_rows_;
  std::vector<uint64_t> residual_;
  std::vector<size_t> remaining_;
  std::vector<uint64_t> assignment_;
  bool stop_ = false;
};

}  // namespace

Result<std::optional<std::vector<uint64_t>>> SolveIntegerFeasibility(
    const ConsistencyLp& lp, const SolveOptions& options, SolveStats* stats) {
  SolveStats local;
  if (stats == nullptr) stats = &local;
  Search search(lp, options, stats);
  std::optional<std::vector<uint64_t>> found;
  BAGC_RETURN_NOT_OK(search.Run([&](const std::vector<uint64_t>& x) {
    found = x;
    return true;  // stop at first solution
  }));
  return found;
}

Result<uint64_t> CountIntegerSolutions(const ConsistencyLp& lp, uint64_t count_limit,
                                       const SolveOptions& options,
                                       SolveStats* stats) {
  SolveStats local;
  if (stats == nullptr) stats = &local;
  Search search(lp, options, stats);
  uint64_t count = 0;
  bool over_limit = false;
  BAGC_RETURN_NOT_OK(search.Run([&](const std::vector<uint64_t>&) {
    ++count;
    if (count >= count_limit) {
      over_limit = true;
      return true;
    }
    return false;
  }));
  if (over_limit) {
    return Status::ResourceExhausted("solution count limit reached");
  }
  return count;
}

Result<std::vector<std::vector<uint64_t>>> EnumerateIntegerSolutions(
    const ConsistencyLp& lp, size_t limit, const SolveOptions& options,
    SolveStats* stats) {
  SolveStats local;
  if (stats == nullptr) stats = &local;
  Search search(lp, options, stats);
  std::vector<std::vector<uint64_t>> out;
  bool over_limit = false;
  BAGC_RETURN_NOT_OK(search.Run([&](const std::vector<uint64_t>& x) {
    out.push_back(x);
    if (out.size() >= limit) {
      over_limit = true;
      return true;
    }
    return false;
  }));
  if (over_limit) {
    return Status::ResourceExhausted("enumeration limit reached");
  }
  return out;
}

}  // namespace bagc
