#include "solver/simplex.h"

#include <limits>

namespace bagc {

namespace {

// Dense phase-1 tableau with exact rational entries.
class Tableau {
 public:
  Tableau(size_t rows, size_t cols) : rows_(rows), cols_(cols), t_(rows * cols) {}

  Rational& At(size_t i, size_t j) { return t_[i * cols_ + j]; }
  const Rational& At(size_t i, size_t j) const { return t_[i * cols_ + j]; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<Rational> t_;
};

}  // namespace

Result<SimplexResult> SolveRationalFeasibility(const ConsistencyLp& lp) {
  size_t m = lp.rows.size();
  size_t n = lp.variables.size();
  if (m * (n + m + 1) > (size_t{1} << 24)) {
    return Status::ResourceExhausted("simplex tableau would exceed memory budget");
  }
  // Columns: n structural + m artificial + 1 rhs.
  size_t rhs_col = n + m;
  Tableau t(m, n + m + 1);
  for (size_t i = 0; i < m; ++i) {
    const LpRow& row = lp.rows[i];
    for (uint32_t v : row.vars) t.At(i, v) = Rational(1);
    t.At(i, n + i) = Rational(1);
    if (row.rhs > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
      return Status::ArithmeticOverflow("rhs exceeds rational range");
    }
    t.At(i, rhs_col) = Rational(static_cast<int64_t>(row.rhs));
  }
  std::vector<size_t> basis(m);
  for (size_t i = 0; i < m; ++i) basis[i] = n + i;

  // Reduced-cost row for phase-1 (cost 1 on artificials, 0 elsewhere),
  // expressed for the all-artificial basis: d[j] = c[j] - Σ_i T[i][j].
  std::vector<Rational> d(n + m);
  Rational z;  // current phase-1 objective = Σ rhs
  for (size_t j = 0; j < n + m; ++j) {
    Rational col_sum;
    for (size_t i = 0; i < m; ++i) {
      BAGC_ASSIGN_OR_RETURN(col_sum, Rational::Add(col_sum, t.At(i, j)));
    }
    Rational cost = (j >= n) ? Rational(1) : Rational(0);
    BAGC_ASSIGN_OR_RETURN(d[j], Rational::Sub(cost, col_sum));
  }
  for (size_t i = 0; i < m; ++i) {
    BAGC_ASSIGN_OR_RETURN(z, Rational::Add(z, t.At(i, rhs_col)));
  }

  SimplexResult result;
  const Rational kZero;
  while (true) {
    // Bland: entering column = smallest index with negative reduced cost.
    size_t enter = n + m;
    for (size_t j = 0; j < n + m; ++j) {
      if (d[j] < kZero) {
        enter = j;
        break;
      }
    }
    if (enter == n + m) break;  // optimal
    // Ratio test with Bland tie-breaking on the leaving basis index.
    size_t leave = m;
    Rational best_ratio;
    for (size_t i = 0; i < m; ++i) {
      if (!(t.At(i, enter) > kZero)) continue;
      BAGC_ASSIGN_OR_RETURN(Rational ratio,
                            Rational::Div(t.At(i, rhs_col), t.At(i, enter)));
      if (leave == m || ratio < best_ratio ||
          (ratio == best_ratio && basis[i] < basis[leave])) {
        leave = i;
        best_ratio = ratio;
      }
    }
    if (leave == m) {
      // Phase-1 objective is bounded below by 0; an unbounded ray would
      // contradict that.
      return Status::Internal("phase-1 simplex reported unbounded");
    }
    // Pivot on (leave, enter).
    ++result.pivots;
    Rational pivot = t.At(leave, enter);
    for (size_t j = 0; j <= rhs_col; ++j) {
      BAGC_ASSIGN_OR_RETURN(t.At(leave, j), Rational::Div(t.At(leave, j), pivot));
    }
    for (size_t i = 0; i < m; ++i) {
      if (i == leave || t.At(i, enter).is_zero()) continue;
      Rational factor = t.At(i, enter);
      for (size_t j = 0; j <= rhs_col; ++j) {
        BAGC_ASSIGN_OR_RETURN(Rational delta,
                              Rational::Mul(factor, t.At(leave, j)));
        BAGC_ASSIGN_OR_RETURN(t.At(i, j), Rational::Sub(t.At(i, j), delta));
      }
    }
    // Update the reduced-cost row and objective.
    Rational dfactor = d[enter];
    if (!dfactor.is_zero()) {
      for (size_t j = 0; j < n + m; ++j) {
        BAGC_ASSIGN_OR_RETURN(Rational delta, Rational::Mul(dfactor, t.At(leave, j)));
        BAGC_ASSIGN_OR_RETURN(d[j], Rational::Sub(d[j], delta));
      }
      // New objective value: w + d[enter] * θ, where θ is the entering
      // variable's new value (= normalized pivot-row rhs).
      BAGC_ASSIGN_OR_RETURN(Rational delta,
                            Rational::Mul(dfactor, t.At(leave, rhs_col)));
      BAGC_ASSIGN_OR_RETURN(z, Rational::Add(z, delta));
    }
    basis[leave] = enter;
  }

  result.feasible = z.is_zero();
  if (result.feasible) {
    result.solution.assign(n, Rational());
    for (size_t i = 0; i < m; ++i) {
      if (basis[i] < n) result.solution[basis[i]] = t.At(i, rhs_col);
    }
  }
  return result;
}

}  // namespace bagc
