// Exact rational LP feasibility via phase-1 primal simplex with Bland's
// rule. This is the third, fully independent route to Lemma 2's
// characterization (3): "P(R, S) is feasible over the rationals". The
// other two routes in bagc are the closed-form solution (rational_witness)
// and max-flow saturation (flow/). Having all three lets tests
// cross-validate them, and the simplex also answers feasibility for
// programs with more than two bags, where no closed form exists (there it
// decides the *rational relaxation*, a necessary condition for bag
// consistency — see the Hoffman–Kruskal discussion in §3: for m = 2 the
// relaxation is exact, for m >= 3 it is not).
#pragma once

#include <optional>
#include <vector>

#include "solver/lp.h"
#include "util/rational.h"
#include "util/result.h"

namespace bagc {

/// Outcome of the phase-1 solve.
struct SimplexResult {
  bool feasible = false;
  /// A feasible rational point (aligned with lp.variables) when feasible.
  std::vector<Rational> solution;
  /// Pivot count (for the ablation benchmarks).
  size_t pivots = 0;
};

/// Decides feasibility of { x >= 0 : Ax = b } for the given consistency
/// LP, exactly. Runs phase-1 simplex (minimize the sum of artificial
/// variables) with Bland's anti-cycling rule; all arithmetic is exact
/// rational, so the answer is never subject to rounding.
Result<SimplexResult> SolveRationalFeasibility(const ConsistencyLp& lp);

}  // namespace bagc
