// Rational feasibility of P(R, S) for two bags — the constructive step
// (2) => (3) of Lemma 2: when R[Z] = S[Z] (Z = X ∩ Y), the assignment
//    x_t = R(t[X]) * S(t[Y]) / R(t[Z])
// is a rational solution. This module builds that solution with exact
// Rational arithmetic and re-verifies all constraints, which both proves
// feasibility over the rationals and exercises the Hoffman–Kruskal route
// of §3 independently of the max-flow route.
#pragma once

#include <vector>

#include "bag/bag.h"
#include "solver/lp.h"
#include "util/rational.h"
#include "util/result.h"

namespace bagc {

/// \brief A rational solution of P(R, S), aligned with lp.variables.
struct RationalSolution {
  std::vector<Rational> values;
};

/// Constructs the Lemma 2 closed-form rational solution; fails with
/// FailedPrecondition when R[Z] != S[Z] (the program is then infeasible).
Result<RationalSolution> BuildRationalSolution(const Bag& r, const Bag& s,
                                               const ConsistencyLp& lp);

/// Exactly checks that `solution` satisfies every row of `lp` and is
/// non-negative.
Result<bool> VerifyRationalSolution(const ConsistencyLp& lp,
                                    const RationalSolution& solution);

}  // namespace bagc
