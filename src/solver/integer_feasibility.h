// Exact solver for the integer feasibility of P(R1, ..., Rm): find x >= 0
// integral with Ax = b. This is the NP-complete side of the dichotomy
// (Theorem 4(2)); the solver is a depth-first branch-and-prune over the
// join tuples, exact but exponential in the worst case — which is the
// point: the dichotomy benchmarks measure exactly this blowup on cyclic
// schemas versus the polynomial acyclic algorithm.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "solver/lp.h"
#include "util/result.h"

namespace bagc {

/// Knobs for the exact search.
struct SolveOptions {
  /// Abort with ResourceExhausted after this many search nodes.
  uint64_t node_limit = 200'000'000;
  /// Try large values first (tends to saturate rows quickly).
  bool descend_values = true;
};

/// Counters reported back by the solver.
struct SolveStats {
  uint64_t nodes = 0;
  uint64_t backtracks = 0;
};

/// Finds one non-negative integral solution of the LP, or nullopt when
/// infeasible. The returned vector is indexed like lp.variables.
Result<std::optional<std::vector<uint64_t>>> SolveIntegerFeasibility(
    const ConsistencyLp& lp, const SolveOptions& options = {},
    SolveStats* stats = nullptr);

/// Counts all integral solutions, stopping (with ResourceExhausted) once
/// `count_limit` solutions are found.
Result<uint64_t> CountIntegerSolutions(const ConsistencyLp& lp,
                                       uint64_t count_limit = 1u << 24,
                                       const SolveOptions& options = {},
                                       SolveStats* stats = nullptr);

/// Enumerates all integral solutions (small instances only; the §3 witness
/// enumeration experiment). Stops with ResourceExhausted past `limit`.
Result<std::vector<std::vector<uint64_t>>> EnumerateIntegerSolutions(
    const ConsistencyLp& lp, size_t limit = 1u << 20,
    const SolveOptions& options = {}, SolveStats* stats = nullptr);

}  // namespace bagc
