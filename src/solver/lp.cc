#include "solver/lp.h"

#include <algorithm>

#include "bag/relation.h"
#include "tuple/tuple_index.h"

namespace bagc {

size_t ConsistencyLp::NumNonZeros() const {
  size_t total = 0;
  for (const LpRow& row : rows) total += row.vars.size();
  return total;
}

namespace {

// Appends the rows for bag `i` given the chosen variable tuples.
Status AppendRows(const std::vector<Bag>& bags, size_t i, const Schema& joined,
                  const std::vector<Tuple>& variables, ConsistencyLp* lp) {
  const Bag& bag = bags[i];
  BAGC_ASSIGN_OR_RETURN(Projector proj, Projector::Make(joined, bag.schema()));
  // Group variables by their projection onto Xi.
  TupleIndex groups(variables.size());
  for (uint32_t v = 0; v < variables.size(); ++v) {
    groups.Insert(variables[v].Project(proj), v);
  }
  for (const auto& [r, mult] : bag.entries()) {
    LpRow row;
    row.bag_index = i;
    row.marginal_tuple = r;
    row.rhs = mult;
    const std::vector<uint32_t>* vars = groups.Find(r);
    if (vars != nullptr) row.vars = *vars;
    lp->rows.push_back(std::move(row));
  }
  // Variables projecting onto tuples *outside* the support of Ri must be 0;
  // emit a rhs=0 row for each such group so solvers see the restriction.
  // Sorted by group key so row order stays deterministic and matches the
  // historical (sorted-map) layout.
  std::vector<size_t> zero_groups;
  for (size_t g = 0; g < groups.NumGroups(); ++g) {
    if (bag.Multiplicity(groups.GroupKey(g)) == 0) zero_groups.push_back(g);
  }
  std::sort(zero_groups.begin(), zero_groups.end(), [&](size_t a, size_t b) {
    return groups.GroupKey(a) < groups.GroupKey(b);
  });
  for (size_t g : zero_groups) {
    LpRow row;
    row.bag_index = i;
    row.marginal_tuple = groups.GroupKey(g);
    row.rhs = 0;
    row.vars = groups.GroupIds(g);
    lp->rows.push_back(std::move(row));
  }
  return Status::OK();
}

}  // namespace

Result<ConsistencyLp> BuildConsistencyLp(const std::vector<Bag>& bags,
                                         size_t max_join_support) {
  if (bags.empty()) return Status::InvalidArgument("empty bag collection");
  // Join of the supports, with a size cap.
  Relation join = Relation::SupportOf(bags[0]);
  for (size_t i = 1; i < bags.size(); ++i) {
    BAGC_ASSIGN_OR_RETURN(join, Relation::Join(join, Relation::SupportOf(bags[i])));
    if (join.size() > max_join_support) {
      return Status::ResourceExhausted(
          "join support exceeds cap (" + std::to_string(max_join_support) + ")");
    }
  }
  std::vector<Tuple> variables(join.tuples().begin(), join.tuples().end());
  ConsistencyLp lp;
  lp.joined_schema = join.schema();
  lp.variables = std::move(variables);
  for (size_t i = 0; i < bags.size(); ++i) {
    BAGC_RETURN_NOT_OK(AppendRows(bags, i, lp.joined_schema, lp.variables, &lp));
  }
  return lp;
}

Result<ConsistencyLp> BuildLpWithVariables(const std::vector<Bag>& bags,
                                           std::vector<Tuple> variables) {
  if (bags.empty()) return Status::InvalidArgument("empty bag collection");
  std::vector<Schema> schemas;
  schemas.reserve(bags.size());
  for (const Bag& b : bags) schemas.push_back(b.schema());
  ConsistencyLp lp;
  lp.joined_schema = Schema::UnionAll(schemas);
  std::sort(variables.begin(), variables.end());
  variables.erase(std::unique(variables.begin(), variables.end()), variables.end());
  for (const Tuple& t : variables) {
    if (t.arity() != lp.joined_schema.arity()) {
      return Status::InvalidArgument("variable tuple arity does not match XY schema");
    }
  }
  lp.variables = std::move(variables);
  for (size_t i = 0; i < bags.size(); ++i) {
    BAGC_RETURN_NOT_OK(AppendRows(bags, i, lp.joined_schema, lp.variables, &lp));
  }
  return lp;
}

}  // namespace bagc
