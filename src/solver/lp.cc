#include "solver/lp.h"

#include <algorithm>
#include <iterator>

#include "bag/relation.h"
#include "tuple/column_store.h"
#include "tuple/tuple_index.h"

namespace bagc {

size_t ConsistencyLp::NumNonZeros() const {
  size_t total = 0;
  for (const LpRow& row : rows) total += row.vars.size();
  return total;
}

namespace {

// Builds the rows for bag `i` given the chosen variable tuples.
// `var_columns` is the column-major transpose of `variables` over the
// joined layout, built once by the caller and re-selected per bag: the
// variable grouping and the per-support-tuple lookups both run columnar
// (batch-hashed ProbeAll, no per-row Tuple projection). Each bag's block
// touches nothing but read-only inputs and its own output vector, which
// is what lets the caller build blocks concurrently.
Result<std::vector<LpRow>> BuildBagRows(const std::vector<Bag>& bags, size_t i,
                                        const Schema& joined,
                                        const ColumnStore& var_columns) {
  const Bag& bag = bags[i];
  std::vector<LpRow> out;
  BAGC_ASSIGN_OR_RETURN(Projector proj, Projector::Make(joined, bag.schema()));
  // Group variables by their projection onto Xi (zero-copy column select).
  ColumnIndex groups(var_columns.View().Select(proj));
  // Resolve every support tuple of Ri against the groups in one batch.
  ColumnStore bag_cols = bag.ToColumns();
  std::vector<uint32_t> match;
  groups.ProbeAll(bag_cols.View(), &match);
  std::vector<bool> in_support(groups.NumGroups(), false);
  size_t n = bag.SupportSize();
  out.reserve(n);
  for (size_t e = 0; e < n; ++e) {
    LpRow row;
    row.bag_index = i;
    row.marginal_tuple = bag.RowAt(e);
    row.rhs = bag.MultiplicityAt(e);
    if (match[e] != ColumnIndex::kNoGroup) {
      row.vars = groups.GroupRows(match[e]);
      in_support[match[e]] = true;
    }
    out.push_back(std::move(row));
  }
  // Variables projecting onto tuples *outside* the support of Ri must be 0;
  // emit a rhs=0 row for each such group so solvers see the restriction.
  // A group is outside the support iff no support tuple probed into it.
  // Sorted by group key so row order stays deterministic and matches the
  // historical (sorted-map) layout.
  std::vector<std::pair<Tuple, size_t>> zero_groups;
  for (size_t g = 0; g < groups.NumGroups(); ++g) {
    if (!in_support[g]) {
      zero_groups.emplace_back(groups.keys().RowAt(groups.LeadRow(g)), g);
    }
  }
  std::sort(zero_groups.begin(), zero_groups.end(),
            [](const std::pair<Tuple, size_t>& a,
               const std::pair<Tuple, size_t>& b) { return a.first < b.first; });
  for (auto& [key, g] : zero_groups) {
    LpRow row;
    row.bag_index = i;
    row.marginal_tuple = std::move(key);
    row.rhs = 0;
    row.vars = groups.GroupRows(g);
    out.push_back(std::move(row));
  }
  return out;
}

// Builds every bag's row block — sharded over `pool` when present — and
// concatenates them into `lp->rows` in bag order. Block contents depend
// only on (bags, joined, var_columns), so the merged LP is identical
// whether the blocks were built serially or on any number of workers.
Status AppendAllRows(const std::vector<Bag>& bags, const Schema& joined,
                     const ColumnStore& var_columns, ThreadPool* pool,
                     ConsistencyLp* lp) {
  size_t m = bags.size();
  std::vector<std::vector<LpRow>> blocks(m);
  std::vector<Status> statuses(m, Status::OK());
  auto build = [&](size_t i) {
    Result<std::vector<LpRow>> block = BuildBagRows(bags, i, joined, var_columns);
    if (block.ok()) {
      blocks[i] = std::move(block).value();
    } else {
      statuses[i] = block.status();
    }
  };
  if (pool != nullptr && m > 1) {
    for (size_t i = 0; i < m; ++i) {
      pool->Submit([&build, i] { build(i); });
    }
    pool->WaitIdle();
  } else {
    for (size_t i = 0; i < m; ++i) build(i);
  }
  for (const Status& st : statuses) BAGC_RETURN_NOT_OK(st);
  size_t total = 0;
  for (const std::vector<LpRow>& block : blocks) total += block.size();
  lp->rows.reserve(lp->rows.size() + total);
  for (std::vector<LpRow>& block : blocks) {
    std::move(block.begin(), block.end(), std::back_inserter(lp->rows));
  }
  return Status::OK();
}

}  // namespace

Result<ConsistencyLp> BuildConsistencyLp(const std::vector<Bag>& bags,
                                         size_t max_join_support,
                                         ThreadPool* pool) {
  if (bags.empty()) return Status::InvalidArgument("empty bag collection");
  // Join of the supports, with a size cap.
  Relation join = Relation::SupportOf(bags[0]);
  for (size_t i = 1; i < bags.size(); ++i) {
    BAGC_ASSIGN_OR_RETURN(join, Relation::Join(join, Relation::SupportOf(bags[i])));
    if (join.size() > max_join_support) {
      return Status::ResourceExhausted(
          "join support exceeds cap (" + std::to_string(max_join_support) + ")");
    }
  }
  std::vector<Tuple> variables(join.tuples().begin(), join.tuples().end());
  ConsistencyLp lp;
  lp.joined_schema = join.schema();
  lp.variables = std::move(variables);
  BAGC_ASSIGN_OR_RETURN(Projector identity,
                        Projector::Make(lp.joined_schema, lp.joined_schema));
  ColumnStore var_columns = ColumnStore::FromTuples(lp.variables, identity);
  BAGC_RETURN_NOT_OK(AppendAllRows(bags, lp.joined_schema, var_columns, pool, &lp));
  return lp;
}

Result<ConsistencyLp> BuildLpWithVariables(const std::vector<Bag>& bags,
                                           std::vector<Tuple> variables,
                                           ThreadPool* pool) {
  if (bags.empty()) return Status::InvalidArgument("empty bag collection");
  std::vector<Schema> schemas;
  schemas.reserve(bags.size());
  for (const Bag& b : bags) schemas.push_back(b.schema());
  ConsistencyLp lp;
  lp.joined_schema = Schema::UnionAll(schemas);
  std::sort(variables.begin(), variables.end());
  variables.erase(std::unique(variables.begin(), variables.end()), variables.end());
  for (const Tuple& t : variables) {
    if (t.arity() != lp.joined_schema.arity()) {
      return Status::InvalidArgument("variable tuple arity does not match XY schema");
    }
  }
  lp.variables = std::move(variables);
  BAGC_ASSIGN_OR_RETURN(Projector identity,
                        Projector::Make(lp.joined_schema, lp.joined_schema));
  ColumnStore var_columns = ColumnStore::FromTuples(lp.variables, identity);
  BAGC_RETURN_NOT_OK(AppendAllRows(bags, lp.joined_schema, var_columns, pool, &lp));
  return lp;
}

}  // namespace bagc
