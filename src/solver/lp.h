// The linear program P(R1, ..., Rm) of Equations (3) and (14): one variable
// x_t per tuple t in the join J = R'1 ⋈ ... ⋈ R'm of the supports, and one
// equality row per (bag i, support tuple r) requiring the marginal of x on
// Xi to match Ri. Integral solutions are exactly the witnesses of global
// consistency.
#pragma once

#include <cstdint>
#include <vector>

#include "bag/bag.h"
#include "tuple/schema.h"
#include "tuple/tuple.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace bagc {

/// One equality constraint: sum of the listed variables equals rhs.
struct LpRow {
  /// Which input bag this row marginalizes onto.
  size_t bag_index;
  /// The support tuple r of that bag.
  Tuple marginal_tuple;
  /// Ri(r).
  uint64_t rhs;
  /// Indices into ConsistencyLp::variables of the join tuples t with
  /// t[Xi] == r.
  std::vector<uint32_t> vars;
};

/// \brief P(R1, ..., Rm) in explicit sparse form.
struct ConsistencyLp {
  Schema joined_schema;
  /// The join tuples t ∈ J, in deterministic (sorted) order.
  std::vector<Tuple> variables;
  std::vector<LpRow> rows;

  /// Total number of non-zeros of the constraint matrix.
  size_t NumNonZeros() const;
};

/// Builds P(R1, ..., Rm). The join of the supports can be exponentially
/// large (Example 1); construction aborts with ResourceExhausted once the
/// join support exceeds `max_join_support`.
///
/// When `pool` is non-null the per-bag row blocks are built concurrently
/// (each bag's rows are independent given the shared variable transpose)
/// and concatenated in bag order, so the emitted LP is bit-identical for
/// every worker count.
Result<ConsistencyLp> BuildConsistencyLp(const std::vector<Bag>& bags,
                                         size_t max_join_support = 1u << 22,
                                         ThreadPool* pool = nullptr);

/// Builds the same rows but over a caller-chosen variable set (tuples over
/// the union schema). Used for restricted-support feasibility questions
/// (minimal witnesses, Carathéodory-style pruning). Accepts the same
/// optional pool as BuildConsistencyLp, with the same determinism
/// guarantee.
Result<ConsistencyLp> BuildLpWithVariables(const std::vector<Bag>& bags,
                                           std::vector<Tuple> variables,
                                           ThreadPool* pool = nullptr);

}  // namespace bagc
