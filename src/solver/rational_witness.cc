#include "solver/rational_witness.h"

#include <limits>

namespace bagc {

Result<RationalSolution> BuildRationalSolution(const Bag& r, const Bag& s,
                                               const ConsistencyLp& lp) {
  Schema z = Schema::Intersect(r.schema(), s.schema());
  BAGC_ASSIGN_OR_RETURN(Bag rz, r.Marginal(z));
  BAGC_ASSIGN_OR_RETURN(Bag sz, s.Marginal(z));
  if (rz != sz) {
    return Status::FailedPrecondition(
        "R[X∩Y] != S[X∩Y]: P(R,S) is infeasible (Lemma 2)");
  }
  BAGC_ASSIGN_OR_RETURN(Projector onto_x, Projector::Make(lp.joined_schema, r.schema()));
  BAGC_ASSIGN_OR_RETURN(Projector onto_y, Projector::Make(lp.joined_schema, s.schema()));
  BAGC_ASSIGN_OR_RETURN(Projector onto_z, Projector::Make(lp.joined_schema, z));
  RationalSolution sol;
  sol.values.reserve(lp.variables.size());
  for (const Tuple& t : lp.variables) {
    uint64_t rx = r.Multiplicity(t.Project(onto_x));
    uint64_t sy = s.Multiplicity(t.Project(onto_y));
    uint64_t rzv = rz.Multiplicity(t.Project(onto_z));
    if (rzv == 0) {
      // t is in the join of the supports, so rx >= 1 and the Z-marginal of
      // R at t[Z] is at least rx — this cannot happen.
      return Status::Internal("join tuple with zero shared marginal");
    }
    if (rx > static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) ||
        sy > static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) ||
        rzv > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
      return Status::ArithmeticOverflow("multiplicity exceeds rational range");
    }
    BAGC_ASSIGN_OR_RETURN(
        Rational num,
        Rational::Mul(Rational(static_cast<int64_t>(rx)),
                      Rational(static_cast<int64_t>(sy))));
    BAGC_ASSIGN_OR_RETURN(Rational val,
                          Rational::Div(num, Rational(static_cast<int64_t>(rzv))));
    sol.values.push_back(val);
  }
  return sol;
}

Result<bool> VerifyRationalSolution(const ConsistencyLp& lp,
                                    const RationalSolution& solution) {
  if (solution.values.size() != lp.variables.size()) {
    return Status::InvalidArgument("solution size does not match variable count");
  }
  for (const Rational& v : solution.values) {
    if (v.is_negative()) return false;
  }
  for (const LpRow& row : lp.rows) {
    Rational sum;
    for (uint32_t v : row.vars) {
      BAGC_ASSIGN_OR_RETURN(sum, Rational::Add(sum, solution.values[v]));
    }
    if (row.rhs > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
      return Status::ArithmeticOverflow("rhs exceeds rational range");
    }
    if (sum != Rational(static_cast<int64_t>(row.rhs))) return false;
  }
  return true;
}

}  // namespace bagc
