// Client side of the bagcd protocol: a blocking TCP client plus typed
// helpers for the session lifecycle (ship dictionaries once, stream u32
// rows, seal, query), and the transcript replayer that both the bagctl
// CLI and the protocol conformance test use to run the annotated
// transcript in docs/PROTOCOL.md verbatim against a live server.
//
// A client starts in the text framing and may negotiate the binary
// framing (UpgradeBinary / DowngradeText). Every typed helper — and
// Command(), which re-renders binary responses as the exact text lines
// the text framing would have produced — works transparently in either
// mode, so callers switch framings without changing call sites.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bag/bag.h"
#include "tuple/attribute.h"
#include "tuple/value_dictionary.h"
#include "util/result.h"

namespace bagc {

/// \brief One client connection to a bagcd server.
///
/// Blocking, single-threaded use; open several clients for concurrency.
class BagcdClient {
 public:
  /// Connects and consumes the server banner (available via banner()).
  static Result<BagcdClient> Connect(const std::string& host, uint16_t port);

  BagcdClient(BagcdClient&& other) noexcept;
  BagcdClient& operator=(BagcdClient&& other) noexcept;
  BagcdClient(const BagcdClient&) = delete;
  BagcdClient& operator=(const BagcdClient&) = delete;
  ~BagcdClient();

  /// The greeting line the server sent on connect ("BAGCD 1 READY").
  const std::string& banner() const { return banner_; }

  /// Sends one raw line (newline appended).
  Status SendLine(const std::string& line);

  /// Reads the next response line (without its newline).
  Result<std::string> ReadLine();

  /// One request/response round trip: sends `command` (plus `body` lines
  /// and the END terminator when non-empty), then reads the complete
  /// response — one line, or through the trailing END for WITNESS/STATS.
  /// Returns all response lines; the first is the OK/ERR line. In binary
  /// mode the command travels as a CMD frame (body-carrying commands are
  /// rejected — ship DICT/ROWS frames instead) and the response frame is
  /// re-rendered as the byte-identical text lines.
  Result<std::vector<std::string>> Command(const std::string& command,
                                           const std::vector<std::string>& body = {});

  // ---- Binary framing ------------------------------------------------------

  /// HELLO; returns the (protocol, frame) versions the server speaks.
  Result<std::pair<int, int>> Hello();

  /// UPGRADE BINARY: after the server's OK both directions switch to
  /// length-prefixed frames. Typed helpers keep working transparently.
  Status UpgradeBinary();

  /// Drops back to the text framing (CMD frame carrying "TEXT").
  Status DowngradeText();

  /// True after a successful UpgradeBinary (and before DowngradeText).
  bool binary_mode() const { return binary_; }

  /// Sends one raw frame. Binary mode only.
  Status SendFrame(uint8_t opcode, std::string_view payload);

  /// Reads the next complete frame (opcode, payload). Binary mode only.
  Result<std::pair<uint8_t, std::string>> ReadFrame();

  // ---- Typed session helpers ----------------------------------------------

  /// Ships every dictionary of `dicts` covering `schema`'s attributes as
  /// DICT blocks (ids are preserved verbatim: block order == id order),
  /// skipping attributes already shipped over this client. Names come
  /// from `catalog`.
  Status ShipDictionaries(const DictionarySet& dicts, const Schema& schema,
                          const AttributeCatalog& catalog);

  /// Streams `bag` as a LOADU32 block of raw id rows. The bag must have
  /// been sealed through the same dictionaries this client shipped.
  Status LoadBagU32(const std::string& name, const Bag& bag,
                    const AttributeCatalog& catalog);

  /// Streams `bag` as a LOAD block of external string rows, decoding each
  /// id through `dicts` (the strings-every-query baseline path).
  Status LoadBagText(const std::string& name, const Bag& bag,
                     const AttributeCatalog& catalog, const DictionarySet& dicts);

  /// SEAL; returns the number of sealed bags.
  Result<size_t> Seal(bool canonical = false, size_t threads = 1);

  /// TWOBAG i j; true = consistent.
  Result<bool> TwoBag(size_t i, size_t j);

  /// PAIRWISE; nullopt = consistent, else the failing pair.
  Result<std::optional<std::pair<size_t, size_t>>> Pairwise();

  /// GLOBAL; true = consistent.
  Result<bool> Global();

  /// KWISE k; nullopt = consistent, else the first failing subset.
  Result<std::optional<std::vector<size_t>>> KWise(size_t k);

  /// WITNESS i j [MINIMAL]; the witness bag block's raw text lines
  /// (header/rows/end), or nullopt when the pair is inconsistent.
  Result<std::optional<std::vector<std::string>>> Witness(size_t i, size_t j,
                                                          bool minimal);

 private:
  BagcdClient() = default;

  // Sends `frame_payload` under `opcode`, expects an Ok frame back, and
  // returns its payload (the OK line sans prefix); an Err frame becomes
  // the same Status the text path would produce.
  Result<std::string> RoundTripOk(uint8_t opcode, std::string_view payload);
  // As RoundTripOk for verdict-shaped queries: (consistent, indices).
  Result<std::pair<bool, std::vector<size_t>>> RoundTripVerdict(
      uint8_t opcode, std::string_view payload);
  // Re-renders one server frame as the text lines the text framing would
  // have produced for the same response (byte-identical).
  Result<std::vector<std::string>> FrameToLines(uint8_t opcode,
                                                const std::string& payload);

  int fd_ = -1;
  std::string banner_;
  std::string inbuf_;
  bool binary_ = false;
  std::vector<AttrId> shipped_;  // attributes already shipped as DICT blocks
};

/// Replays a C:/S: transcript against a live server and fails on the
/// first divergence. `text` is either a raw transcript or a markdown
/// document containing ```transcript fenced blocks (docs/PROTOCOL.md);
/// each block replays over its own fresh connection, and must therefore
/// begin with the banner expectation "S: BAGCD 1 READY". Lines starting
/// with "C: " are sent verbatim; lines starting with "S: " must match
/// the next server line byte-for-byte; "#" comment and blank lines are
/// ignored. Returns the number of replayed blocks.
Result<size_t> ReplayTranscript(const std::string& host, uint16_t port,
                                const std::string& text);

}  // namespace bagc
