#include "server/protocol.h"

#include <charconv>
#include <sstream>

#include "bag/bag_io.h"

namespace bagc {

std::string_view WireErrorCode(WireError error) {
  switch (error) {
    case WireError::kParse:
      return "E_PARSE";
    case WireError::kState:
      return "E_STATE";
    case WireError::kRange:
      return "E_RANGE";
    case WireError::kEngine:
      return "E_ENGINE";
    case WireError::kInternal:
      return "E_INTERNAL";
  }
  return "E_INTERNAL";
}

std::string WireErrLine(WireError error, const std::string& message) {
  std::string flat;
  flat.reserve(message.size());
  for (char c : message) flat.push_back(c == '\n' || c == '\r' ? ' ' : c);
  std::string out = "ERR ";
  out += WireErrorCode(error);
  if (!flat.empty()) {
    out += ' ';
    out += flat;
  }
  return out;
}

WireError WireErrorForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOutOfRange:
      return WireError::kRange;
    case StatusCode::kInvalidArgument:
      return WireError::kParse;
    case StatusCode::kFailedPrecondition:
    case StatusCode::kNotFound:
      return WireError::kState;
    case StatusCode::kInternal:
      return WireError::kInternal;
    default:
      return WireError::kEngine;
  }
}

std::string WireErrLineForStatus(const Status& status) {
  return WireErrLine(WireErrorForStatus(status), status.message());
}

std::string WireStrip(const std::string& line) {
  // One lexer for the whole system: command lines use exactly the rules
  // bag IO rows use (bag/bag_io.h).
  return std::string(StripCommentView(line));
}

std::vector<std::string> WireTokens(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream iss(WireStrip(line));
  std::string token;
  while (iss >> token) out.push_back(token);
  return out;
}

bool WireCommandHasBody(const std::string& command) {
  return command == "DICT" || command == "LOAD" || command == "LOADU32";
}

bool WireResponseHasBody(const std::string& first_line) {
  return first_line.rfind("OK WITNESS", 0) == 0 ||
         first_line.rfind("OK STATS", 0) == 0;
}

Result<uint64_t> WireParseUint(const std::string& token) {
  uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::InvalidArgument("not a non-negative integer: '" + token + "'");
  }
  return value;
}

}  // namespace bagc
