#include "server/protocol.h"

#include <charconv>
#include <cstring>

#include "bag/bag_io.h"

namespace bagc {

std::string_view WireErrorCode(WireError error) {
  switch (error) {
    case WireError::kParse:
      return "E_PARSE";
    case WireError::kState:
      return "E_STATE";
    case WireError::kRange:
      return "E_RANGE";
    case WireError::kEngine:
      return "E_ENGINE";
    case WireError::kInternal:
      return "E_INTERNAL";
  }
  return "E_INTERNAL";
}

std::string WireErrLine(WireError error, const std::string& message) {
  std::string flat;
  flat.reserve(message.size());
  for (char c : message) flat.push_back(c == '\n' || c == '\r' ? ' ' : c);
  std::string out = "ERR ";
  out += WireErrorCode(error);
  if (!flat.empty()) {
    out += ' ';
    out += flat;
  }
  return out;
}

WireError WireErrorForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOutOfRange:
      return WireError::kRange;
    case StatusCode::kInvalidArgument:
      return WireError::kParse;
    case StatusCode::kFailedPrecondition:
    case StatusCode::kNotFound:
      return WireError::kState;
    case StatusCode::kInternal:
      return WireError::kInternal;
    default:
      return WireError::kEngine;
  }
}

std::string WireErrLineForStatus(const Status& status) {
  return WireErrLine(WireErrorForStatus(status), status.message());
}

std::string WireStrip(const std::string& line) {
  // One lexer for the whole system: command lines use exactly the rules
  // bag IO rows use (bag/bag_io.h).
  return std::string(StripCommentView(line));
}

std::vector<std::string> WireTokens(const std::string& line) {
  // Manual scan, not istringstream: command tokenization sits on the
  // per-request hot path and stream extraction costs an allocation plus
  // locale machinery per token.
  std::vector<std::string> out;
  std::string_view s = StripCommentView(line);
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    size_t begin = i;
    while (i < s.size() && s[i] != ' ' && s[i] != '\t') ++i;
    if (i > begin) out.emplace_back(s.substr(begin, i - begin));
  }
  return out;
}

bool WireCommandHasBody(const std::string& command) {
  return command == "DICT" || command == "LOAD" || command == "LOADU32" ||
         command == "INSERT" || command == "DELETE";
}

bool WireResponseHasBody(const std::string& first_line) {
  return first_line.rfind("OK WITNESS", 0) == 0 ||
         first_line.rfind("OK STATS", 0) == 0;
}

Result<uint64_t> WireParseUint(const std::string& token) {
  uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::InvalidArgument("not a non-negative integer: '" + token + "'");
  }
  return value;
}

uint8_t WireErrorTag(WireError error) { return static_cast<uint8_t>(error); }

Result<WireError> WireErrorFromTag(uint8_t tag) {
  if (tag > static_cast<uint8_t>(WireError::kInternal)) {
    return Status::InvalidArgument("unknown error tag " + std::to_string(tag));
  }
  return static_cast<WireError>(tag);
}

void WireAppendU16(std::string* out, uint16_t v) {
  char b[2] = {static_cast<char>(v & 0xff), static_cast<char>(v >> 8)};
  out->append(b, sizeof(b));
}

void WireAppendU32(std::string* out, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(b, sizeof(b));
}

void WireAppendU64(std::string* out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(b, sizeof(b));
}

void WireAppendString(std::string* out, std::string_view s) {
  WireAppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

void WireAppendFrame(std::string* out, uint8_t opcode, std::string_view payload) {
  WireAppendU32(out, static_cast<uint32_t>(payload.size()));
  out->push_back(static_cast<char>(opcode));
  out->append(payload.data(), payload.size());
}

namespace {

// memcpy + shift assembly, not pointer punning: payload integers are
// unaligned and a reinterpret_cast load would be UB (and trap under
// UBSan exactly where the segment tests look).
template <typename T>
bool CursorLoad(std::string_view data, size_t* pos, bool* ok, T* v) {
  if (!*ok || data.size() - *pos < sizeof(T)) {
    *ok = false;
    return false;
  }
  unsigned char raw[sizeof(T)];
  std::memcpy(raw, data.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  uint64_t acc = 0;
  for (size_t i = 0; i < sizeof(T); ++i) acc |= uint64_t{raw[i]} << (8 * i);
  *v = static_cast<T>(acc);
  return true;
}

}  // namespace

bool WireCursor::U8(uint8_t* v) { return CursorLoad(data_, &pos_, &ok_, v); }
bool WireCursor::U16(uint16_t* v) { return CursorLoad(data_, &pos_, &ok_, v); }
bool WireCursor::U32(uint32_t* v) { return CursorLoad(data_, &pos_, &ok_, v); }
bool WireCursor::U64(uint64_t* v) { return CursorLoad(data_, &pos_, &ok_, v); }

bool WireCursor::Bytes(size_t n, std::string_view* v) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *v = data_.substr(pos_, n);
  pos_ += n;
  return true;
}

bool WireCursor::String(std::string_view* v) {
  uint32_t len = 0;
  if (!U32(&len)) return false;
  return Bytes(len, v);
}

}  // namespace bagc
