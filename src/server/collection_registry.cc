#include "server/collection_registry.h"

#include <algorithm>
#include <utility>

#include "bag/bag_io.h"
#include "tuple/segment.h"

namespace bagc {

namespace {

// Rebuilds a sealed snapshot from a BAGCSEG segment — the lazy-reload
// path after an eviction. Mirrors the session's LOADSEG+SEAL pipeline
// with a fresh catalog/dictionary set: attributes intern in segment
// table order and dictionaries bulk-load the segment's value tables, so
// the rebuilt snapshot decodes (and orders) results bit-identically to
// the generation originally sealed from this segment. `canonical`
// replays the original seal's CANONICAL flag for the same reason.
Result<std::shared_ptr<const EngineSnapshot>> BuildSnapshotFromSegment(
    const std::string& path, bool canonical, size_t columnar_min_rows,
    uint64_t seq) {
  BAGC_ASSIGN_OR_RETURN(SegmentReader mapped, SegmentReader::Map(path));
  // The reader is shared so each borrowed bag can pin the mapping: the
  // snapshot then serves column reads straight from the page cache and
  // the reload adds (almost) no resident bytes.
  auto reader = std::make_shared<SegmentReader>(std::move(mapped));
  EngineSnapshot::BuildInputs inputs;
  std::vector<AttrId> attr_ids(reader->num_attrs());
  auto seg_dicts = std::make_shared<DictionarySet>();
  for (size_t a = 0; a < reader->num_attrs(); ++a) {
    attr_ids[a] = inputs.catalog.Intern(std::string(reader->attr_name(a)));
    Status loaded =
        seg_dicts->dict(attr_ids[a]).BulkLoad(reader->AttrValues(a));
    if (!loaded.ok()) return loaded;
  }
  for (size_t b = 0; b < reader->num_bags(); ++b) {
    std::vector<std::string> col_names;
    col_names.reserve(reader->bag_arity(b));
    for (size_t c = 0; c < reader->bag_arity(b); ++c) {
      col_names.emplace_back(reader->attr_name(reader->bag_attr(b, c)));
    }
    ColumnStore columns = reader->Columns(b);
    // Zero-copy first: a segment EncodeSegment wrote is already in the
    // sealed columnar shape, so serve it in place. A canonical reload
    // remaps ids anyway (the borrow only feeds the rebuild), and any
    // segment the strict borrow validation rejects falls back to the
    // copying ingest, which re-sorts and gives the precise error.
    Result<Bag> bag =
        BagBorrowU32Columns(col_names, columns.View(), reader->Mults(b),
                            &inputs.catalog, *seg_dicts, reader);
    if (!bag.ok()) {
      bag = BagFromU32Columns(col_names, columns.View(), reader->Mults(b),
                              &inputs.catalog, *seg_dicts);
    }
    if (!bag.ok()) return bag.status();
    inputs.names.emplace_back(reader->bag_name(b));
    inputs.bags.push_back(std::move(bag).value());
  }
  inputs.dicts = std::move(seg_dicts);
  inputs.canonicalize = canonical;
  inputs.columnar_min_rows = columnar_min_rows;
  return EngineSnapshot::Build(std::move(inputs), seq);
}

}  // namespace

CollectionRegistry::CollectionRegistry(Options options)
    : options_(options),
      default_(std::shared_ptr<Collection>(
          new Collection(kDefaultCollectionName))) {
  collections_.emplace(default_->name(), default_);
}

Result<std::shared_ptr<CollectionRegistry::Collection>>
CollectionRegistry::Attach(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = collections_.find(name);
  if (it != collections_.end()) return it->second;
  if (options_.max_collections > 0 &&
      collections_.size() >= options_.max_collections) {
    return Status::FailedPrecondition(
        "collection limit reached (" +
        std::to_string(options_.max_collections) +
        "); DETACH is per-session, DROP or restart to free a name");
  }
  auto c = std::shared_ptr<Collection>(new Collection(name));
  collections_.emplace(name, c);
  return c;
}

std::shared_ptr<CollectionRegistry::Collection> CollectionRegistry::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : it->second;
}

Result<std::shared_ptr<const EngineSnapshot>> CollectionRegistry::Acquire(
    Collection* c) {
  std::string path;
  bool canonical = false;
  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (c->current_ != nullptr) {
      c->last_access_ = ++lru_clock_;
      ++c->hits_;
      return c->current_;
    }
    if (c->generation_ == 0) {
      // Nothing ever published (or a RESET emptied the chain): not an
      // eviction, just "no engine yet".
      return std::shared_ptr<const EngineSnapshot>();
    }
    if (c->segment_path_.empty()) {
      return Status::FailedPrecondition(
          "collection '" + c->name_ +
          "' was evicted under the memory budget and has no segment to "
          "reload from; SEAL it again");
    }
    path = c->segment_path_;
    canonical = c->reload_canonical_;
    // The reload is a publication in the chain: it takes a seq under the
    // same high-water rule, so a RESET racing the rebuild wins.
    seq = c->NextSeq();
  }
  // Build outside the lock — reloads are as slow as seals.
  Result<std::shared_ptr<const EngineSnapshot>> rebuilt =
      BuildSnapshotFromSegment(path, canonical, options_.columnar_min_rows,
                               seq);
  if (!rebuilt.ok()) {
    return Status::FailedPrecondition("collection '" + c->name_ +
                                      "' reload from segment failed: " +
                                      rebuilt.status().message());
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (c->current_ != nullptr) {
    // A concurrent reload (or fresh SEAL) landed first; serve that one.
    c->last_access_ = ++lru_clock_;
    ++c->hits_;
    return c->current_;
  }
  if (seq <= c->published_high_water_) {
    // RESET (or DROP) raced the rebuild: stay empty, per the chain rule.
    return std::shared_ptr<const EngineSnapshot>();
  }
  c->published_high_water_ = seq;
  ++c->reloads_;
  const uint64_t bytes = (*rebuilt)->approx_bytes();
  InstallLocked(c, *std::move(rebuilt), bytes);
  EvictToBudgetLocked(c);
  return c->current_;
}

std::shared_ptr<const EngineSnapshot> CollectionRegistry::Peek(
    const Collection* c) const {
  std::lock_guard<std::mutex> lock(mu_);
  return c->current_;
}

Status CollectionRegistry::Publish(
    Collection* c, std::shared_ptr<const EngineSnapshot> snapshot,
    std::string segment_path, bool canonical) {
  const uint64_t bytes = snapshot->approx_bytes();
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.max_collection_bytes > 0 &&
      bytes > options_.max_collection_bytes) {
    return Status::OutOfRange(
        "sealed snapshot (~" + std::to_string(bytes) +
        " bytes) exceeds the per-collection ceiling (" +
        std::to_string(options_.max_collection_bytes) + " bytes)");
  }
  // <= : seqs are unique per snapshot, and Clear() raises the mark TO the
  // highest issued seq precisely so a seal that began before a RESET is
  // refused too. The seq was taken before the (possibly slow) build, so
  // the slower build of an OLDER seq must not overwrite the newer engine.
  if (snapshot->seq() <= c->published_high_water_) {
    return Status::FailedPrecondition(
        "seal superseded by a newer generation; retry SEAL");
  }
  c->published_high_water_ = snapshot->seq();
  c->segment_path_ = std::move(segment_path);
  c->reload_canonical_ = canonical;
  InstallLocked(c, std::move(snapshot), bytes);
  EvictToBudgetLocked(c);
  return Status::OK();
}

void CollectionRegistry::Clear(Collection* c) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t issued = c->next_seq_.load(std::memory_order_relaxed) - 1;
  if (issued > c->published_high_water_) c->published_high_water_ = issued;
  if (c->current_ != nullptr) {
    resident_bytes_ -= c->bytes_;
    c->current_ = nullptr;
    c->bytes_ = 0;
  }
  // RESET means "no engine until the next SEAL" — the reload source must
  // not resurrect the cleared generation, and generation_ = 0 marks the
  // chain empty (as opposed to evicted).
  c->segment_path_.clear();
  c->reload_canonical_ = false;
  c->generation_ = 0;
}

CollectionRegistry::CollectionStats CollectionRegistry::Stats(
    const Collection* c) const {
  std::lock_guard<std::mutex> lock(mu_);
  CollectionStats s;
  s.resident = c->current_ != nullptr;
  s.reloadable = !c->segment_path_.empty();
  s.bytes = c->bytes_;
  s.generation = c->generation_;
  s.last_access = c->last_access_;
  s.hits = c->hits_;
  s.evictions = c->evictions_;
  s.reloads = c->reloads_;
  return s;
}

void CollectionRegistry::MarkNextSealSupersededForTest(Collection* c) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t next = c->next_seq_.load(std::memory_order_relaxed);
  if (next > c->published_high_water_) c->published_high_water_ = next;
}

size_t CollectionRegistry::num_collections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return collections_.size();
}

size_t CollectionRegistry::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

void CollectionRegistry::InstallLocked(
    Collection* c, std::shared_ptr<const EngineSnapshot> snapshot,
    uint64_t bytes) {
  resident_bytes_ -= c->bytes_;
  c->current_ = std::move(snapshot);
  c->bytes_ = bytes;
  resident_bytes_ += bytes;
  c->generation_ = c->current_->seq();
  c->last_access_ = ++lru_clock_;
}

void CollectionRegistry::EvictToBudgetLocked(const Collection* exempt) {
  if (options_.mem_budget_bytes == 0) return;
  while (resident_bytes_ > options_.mem_budget_bytes) {
    Collection* coldest = nullptr;
    for (auto& [name, c] : collections_) {
      if (c.get() == exempt || c->current_ == nullptr) continue;
      if (coldest == nullptr || c->last_access_ < coldest->last_access_) {
        coldest = c.get();
      }
    }
    if (coldest == nullptr) break;  // only the exempt tenant is resident
    resident_bytes_ -= coldest->bytes_;
    // Dropping the pointer is the whole eviction: in-flight queries keep
    // their shared_ptr and finish on the old engine. generation_ stays —
    // it distinguishes "evicted" from "never sealed" in Acquire.
    coldest->current_ = nullptr;
    coldest->bytes_ = 0;
    ++coldest->evictions_;
    evictions_total_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace bagc
