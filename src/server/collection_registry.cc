#include "server/collection_registry.h"

#include <unistd.h>

#include <algorithm>
#include <utility>

#include "bag/bag_io.h"
#include "tuple/segment.h"

namespace bagc {

namespace {

// One committed batch as the WAL logs it: raw per-bag signed row
// deltas, exactly what the session staged (the replay feeds them back
// through BuildDeltaBatch, which nets them identically).
WalRecord RecordFromBatch(const EngineSnapshot& snapshot,
                          const DeltaBatch& batch, uint64_t generation,
                          uint64_t fingerprint) {
  WalRecord record;
  record.generation = generation;
  record.base_fingerprint = fingerprint;
  record.bags.reserve(batch.size());
  for (const BagDeltas& bd : batch) {
    if (bd.deltas.empty()) continue;  // zero-count rows netted to nothing
    WalBagBlock block;
    block.bag_index = static_cast<uint32_t>(bd.bag_index);
    block.arity = static_cast<uint32_t>(
        snapshot.engine()->collection().bag(bd.bag_index).schema().arity());
    block.ids.reserve(bd.deltas.size() * block.arity);
    block.deltas.reserve(bd.deltas.size());
    for (const BagDelta& d : bd.deltas) {
      for (size_t c = 0; c < d.row.arity(); ++c) block.ids.push_back(d.row.id(c));
      block.deltas.push_back(d.delta);
    }
    record.bags.push_back(std::move(block));
  }
  return record;
}

// The inverse: one logged record back into the batch BuildDeltaBatch
// replays. Validates the record against the live collection shape —
// the log was written against this exact base, so a mismatch means the
// wrong log, not a recoverable tear.
Result<DeltaBatch> BatchFromRecord(const EngineSnapshot& snapshot,
                                   const WalRecord& record) {
  DeltaBatch batch;
  batch.reserve(record.bags.size());
  const BagCollection& collection = snapshot.engine()->collection();
  for (const WalBagBlock& block : record.bags) {
    if (block.bag_index >= collection.size()) {
      return Status::InvalidArgument(
          "WAL generation " + std::to_string(record.generation) +
          " targets bag index " + std::to_string(block.bag_index) +
          " but the base collection has " + std::to_string(collection.size()) +
          " bags");
    }
    size_t arity = collection.bag(block.bag_index).schema().arity();
    if (block.arity != arity) {
      return Status::InvalidArgument(
          "WAL generation " + std::to_string(record.generation) +
          " carries arity " + std::to_string(block.arity) + " rows for bag " +
          std::to_string(block.bag_index) + " (schema arity " +
          std::to_string(arity) + ")");
    }
    BagDeltas bd;
    bd.bag_index = block.bag_index;
    bd.deltas.reserve(block.rows());
    for (size_t r = 0; r < block.rows(); ++r) {
      std::vector<ValueId> ids(block.ids.begin() + r * arity,
                               block.ids.begin() + (r + 1) * arity);
      bd.deltas.push_back(BagDelta{Tuple::OfIds(std::move(ids)),
                                   block.deltas[r]});
    }
    batch.push_back(std::move(bd));
  }
  return batch;
}

// Rebuilds a sealed snapshot from a BAGCSEG segment — the lazy-reload
// path after an eviction. Mirrors the session's LOADSEG+SEAL pipeline
// with a fresh catalog/dictionary set: attributes intern in segment
// table order and dictionaries bulk-load the segment's value tables, so
// the rebuilt snapshot decodes (and orders) results bit-identically to
// the generation originally sealed from this segment. `canonical`
// replays the original seal's CANONICAL flag for the same reason.
Result<std::shared_ptr<const EngineSnapshot>> BuildSnapshotFromSegment(
    const std::string& path, bool canonical, size_t columnar_min_rows,
    uint64_t seq) {
  BAGC_ASSIGN_OR_RETURN(SegmentReader mapped, SegmentReader::Map(path));
  // The reader is shared so each borrowed bag can pin the mapping: the
  // snapshot then serves column reads straight from the page cache and
  // the reload adds (almost) no resident bytes.
  auto reader = std::make_shared<SegmentReader>(std::move(mapped));
  EngineSnapshot::BuildInputs inputs;
  std::vector<AttrId> attr_ids(reader->num_attrs());
  auto seg_dicts = std::make_shared<DictionarySet>();
  for (size_t a = 0; a < reader->num_attrs(); ++a) {
    attr_ids[a] = inputs.catalog.Intern(std::string(reader->attr_name(a)));
    Status loaded =
        seg_dicts->dict(attr_ids[a]).BulkLoad(reader->AttrValues(a));
    if (!loaded.ok()) return loaded;
  }
  for (size_t b = 0; b < reader->num_bags(); ++b) {
    std::vector<std::string> col_names;
    col_names.reserve(reader->bag_arity(b));
    for (size_t c = 0; c < reader->bag_arity(b); ++c) {
      col_names.emplace_back(reader->attr_name(reader->bag_attr(b, c)));
    }
    ColumnStore columns = reader->Columns(b);
    // Zero-copy first: a segment EncodeSegment wrote is already in the
    // sealed columnar shape, so serve it in place. A canonical reload
    // remaps ids anyway (the borrow only feeds the rebuild), and any
    // segment the strict borrow validation rejects falls back to the
    // copying ingest, which re-sorts and gives the precise error.
    Result<Bag> bag =
        BagBorrowU32Columns(col_names, columns.View(), reader->Mults(b),
                            &inputs.catalog, *seg_dicts, reader);
    if (!bag.ok()) {
      bag = BagFromU32Columns(col_names, columns.View(), reader->Mults(b),
                              &inputs.catalog, *seg_dicts);
    }
    if (!bag.ok()) return bag.status();
    inputs.names.emplace_back(reader->bag_name(b));
    inputs.bags.push_back(std::move(bag).value());
  }
  inputs.dicts = std::move(seg_dicts);
  inputs.canonicalize = canonical;
  inputs.columnar_min_rows = columnar_min_rows;
  return EngineSnapshot::Build(std::move(inputs), seq);
}

}  // namespace

CollectionRegistry::CollectionRegistry(Options options)
    : options_(options),
      default_(std::shared_ptr<Collection>(
          new Collection(kDefaultCollectionName))) {
  collections_.emplace(default_->name(), default_);
}

Result<std::shared_ptr<CollectionRegistry::Collection>>
CollectionRegistry::Attach(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = collections_.find(name);
  if (it != collections_.end()) return it->second;
  if (options_.max_collections > 0 &&
      collections_.size() >= options_.max_collections) {
    return Status::FailedPrecondition(
        "collection limit reached (" +
        std::to_string(options_.max_collections) +
        "); DETACH is per-session, DROP or restart to free a name");
  }
  auto c = std::shared_ptr<Collection>(new Collection(name));
  collections_.emplace(name, c);
  return c;
}

std::shared_ptr<CollectionRegistry::Collection> CollectionRegistry::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : it->second;
}

Result<std::shared_ptr<const EngineSnapshot>> CollectionRegistry::Acquire(
    Collection* c) {
  std::string path;
  bool canonical = false;
  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (c->current_ != nullptr) {
      c->last_access_ = ++lru_clock_;
      ++c->hits_;
      return c->current_;
    }
    if (c->generation_ == 0) {
      // Nothing ever published (or a RESET emptied the chain): not an
      // eviction, just "no engine yet".
      return std::shared_ptr<const EngineSnapshot>();
    }
    if (c->segment_path_.empty()) {
      return Status::FailedPrecondition(
          "collection '" + c->name_ +
          "' was evicted under the memory budget and has no segment to "
          "reload from; SEAL it again");
    }
    path = c->segment_path_;
    canonical = c->reload_canonical_;
    // The reload is a publication in the chain: it takes a seq under the
    // same high-water rule, so a RESET racing the rebuild wins.
    seq = c->NextSeq();
  }
  // Build outside the lock — reloads are as slow as seals.
  Result<std::shared_ptr<const EngineSnapshot>> rebuilt =
      BuildSnapshotFromSegment(path, canonical, options_.columnar_min_rows,
                               seq);
  if (!rebuilt.ok()) {
    return Status::FailedPrecondition("collection '" + c->name_ +
                                      "' reload from segment failed: " +
                                      rebuilt.status().message());
  }
  if (!options_.wal_dir.empty()) {
    // The segment is only the BASE of the chain; the committed delta
    // generations live in the WAL. Fold them onto the rebuilt snapshot
    // BEFORE install — folding onto current_ after a racing delta landed
    // would apply that delta twice. If a concurrent publish wins the
    // install below, this folded snapshot is simply discarded.
    std::lock_guard<std::mutex> wal_lock(c->wal_mu_);
    uint64_t replayed = 0;
    Result<std::shared_ptr<const EngineSnapshot>> folded =
        FoldWalLocked(c, *std::move(rebuilt), path, &replayed);
    if (!folded.ok()) {
      return Status::FailedPrecondition(
          "collection '" + c->name_ +
          "' reload succeeded but WAL replay failed: " +
          folded.status().message());
    }
    rebuilt = *std::move(folded);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (c->current_ != nullptr) {
    // A concurrent reload (or fresh SEAL) landed first; serve that one.
    c->last_access_ = ++lru_clock_;
    ++c->hits_;
    return c->current_;
  }
  if (seq <= c->published_high_water_) {
    // RESET (or DROP) raced the rebuild: stay empty, per the chain rule.
    return std::shared_ptr<const EngineSnapshot>();
  }
  // A WAL fold advances the snapshot past `seq`; the mark must cover the
  // generation actually installed.
  c->published_high_water_ = std::max(seq, (*rebuilt)->seq());
  ++c->reloads_;
  const uint64_t bytes = (*rebuilt)->approx_bytes();
  InstallLocked(c, *std::move(rebuilt), bytes);
  EvictToBudgetLocked(c);
  return c->current_;
}

std::shared_ptr<const EngineSnapshot> CollectionRegistry::Peek(
    const Collection* c) const {
  std::lock_guard<std::mutex> lock(mu_);
  return c->current_;
}

Status CollectionRegistry::PublishChain(
    Collection* c, std::shared_ptr<const EngineSnapshot> snapshot,
    const std::string* segment_path, bool canonical) {
  const uint64_t bytes = snapshot->approx_bytes();
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.max_collection_bytes > 0 &&
      bytes > options_.max_collection_bytes) {
    return Status::OutOfRange(
        "sealed snapshot (~" + std::to_string(bytes) +
        " bytes) exceeds the per-collection ceiling (" +
        std::to_string(options_.max_collection_bytes) + " bytes)");
  }
  // <= : seqs are unique per snapshot, and Clear() raises the mark TO the
  // highest issued seq precisely so a seal that began before a RESET is
  // refused too. The seq was taken before the (possibly slow) build, so
  // the slower build of an OLDER seq must not overwrite the newer engine.
  if (snapshot->seq() <= c->published_high_water_) {
    return Status::FailedPrecondition(
        "seal superseded by a newer generation; retry SEAL");
  }
  c->published_high_water_ = snapshot->seq();
  if (segment_path != nullptr) {
    c->segment_path_ = *segment_path;
    c->reload_canonical_ = canonical;
  }
  InstallLocked(c, std::move(snapshot), bytes);
  EvictToBudgetLocked(c);
  return Status::OK();
}

Status CollectionRegistry::Publish(
    Collection* c, std::shared_ptr<const EngineSnapshot> snapshot,
    std::string segment_path, bool canonical) {
  if (options_.wal_dir.empty()) {
    return PublishChain(c, std::move(snapshot), &segment_path, canonical);
  }
  // A full seal starts a new base epoch: any logged deltas speak the OLD
  // base and must not replay over the new one, so the WAL resets with
  // the publish (both under wal_mu_, so no delta commit interleaves).
  // The one exception is the recovery window: the --preload-seg internal
  // SEAL is publishing exactly the base the log is about to replay over,
  // and ReplayWal owns the log's fate.
  std::lock_guard<std::mutex> wal_lock(c->wal_mu_);
  BAGC_RETURN_NOT_OK(PublishChain(c, std::move(snapshot), &segment_path,
                                  canonical));
  if (recovery_mode_.load(std::memory_order_relaxed)) return Status::OK();
  return ResetWalLocked(c, segment_path);
}

Status CollectionRegistry::PublishDelta(
    Collection* c, std::shared_ptr<const EngineSnapshot> snapshot,
    const DeltaBatch& batch) {
  // Without a WAL to make the delta chain replayable, the published
  // rows silently diverge from any staged segment, so the reload source
  // is DROPPED (a later eviction answers E_STATE instead of quietly
  // reloading pre-delta state). With a WAL attached, the base segment
  // stays the replay anchor of the whole chain.
  const std::string no_reload_source;
  if (options_.wal_dir.empty()) {
    return PublishChain(c, std::move(snapshot), &no_reload_source, false);
  }
  std::lock_guard<std::mutex> wal_lock(c->wal_mu_);
  if (c->wal_ == nullptr) {
    // No segment base, no durability: the collection was sealed from
    // session rows and has no replay anchor.
    return PublishChain(c, std::move(snapshot), &no_reload_source, false);
  }
  if (c->wal_poisoned_) {
    // A previous append failed AFTER its generation was published: the
    // log is missing an in-memory generation, so any further append
    // would replay to a state that silently skips it. Only a full SEAL
    // (new base epoch, fresh log) restores durability.
    return Status::FailedPrecondition(
        "collection '" + c->name_ +
        "' lost WAL durability after an append failure; SEAL to start a "
        "new epoch before committing deltas");
  }
  std::shared_ptr<const EngineSnapshot> kept = snapshot;
  WalRecord record =
      RecordFromBatch(*kept, batch, kept->seq(), c->wal_fingerprint_);
  // Encode — and size-check against kWalMaxRecordPayload — BEFORE
  // publishing: a batch that cannot be journaled must refuse the commit
  // with memory state untouched, not publish a generation the log can
  // never carry. (The session's cumulative transaction caps make this
  // unreachable from the wire; this is the last line of defense.)
  std::string encoded;
  if (!record.bags.empty()) {
    BAGC_ASSIGN_OR_RETURN(encoded, EncodeWalRecord(record));
  }
  BAGC_RETURN_NOT_OK(PublishChain(c, std::move(snapshot), nullptr, false));
  if (record.bags.empty()) {
    // A no-op commit (every row netted to zero) published a generation
    // but changed nothing; replay reconstructs equivalent state without
    // it, and the record grammar refuses empty blocks anyway.
    return Status::OK();
  }
  Status appended = c->wal_->AppendEncoded(record, encoded);
  if (!appended.ok()) {
    // The generation IS published — memory state moved on — but the
    // commit is not durable. Poison the log so no later commit can ack
    // durability over the gap, and surface the failure loudly.
    c->wal_poisoned_ = true;
    return Status::Internal(
        "delta published but WAL append failed (collection '" + c->name_ +
        "' is no longer durable; SEAL to start a new epoch): " +
        appended.message());
  }
  c->wal_records_.store(c->wal_->records(), std::memory_order_relaxed);
  c->wal_bytes_.store(c->wal_->bytes(), std::memory_order_relaxed);
  return Status::OK();
}

void CollectionRegistry::Clear(Collection* c) {
  // wal_mu_ before mu_ (the registry's lock order): a RESET also ends
  // the collection's durability epoch.
  std::unique_lock<std::mutex> wal_lock;
  if (!options_.wal_dir.empty()) {
    wal_lock = std::unique_lock<std::mutex>(c->wal_mu_);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t issued = c->next_seq_.load(std::memory_order_relaxed) - 1;
    if (issued > c->published_high_water_) c->published_high_water_ = issued;
    if (c->current_ != nullptr) {
      resident_bytes_ -= c->bytes_;
      c->current_ = nullptr;
      c->bytes_ = 0;
    }
    // RESET means "no engine until the next SEAL" — the reload source must
    // not resurrect the cleared generation, and generation_ = 0 marks the
    // chain empty (as opposed to evicted).
    c->segment_path_.clear();
    c->reload_canonical_ = false;
    c->generation_ = 0;
  }
  if (wal_lock.owns_lock()) {
    // The logged deltas chain onto the cleared state; drop them with it.
    ResetWalLocked(c, std::string());
  }
}

std::string CollectionRegistry::WalPathFor(const std::string& name) const {
  // Filesystem-safe, injective encoding of the tenant name: anything
  // outside [A-Za-z0-9_.-] becomes %XX, including '%' itself and path
  // separators, so no name escapes wal_dir or collides with another.
  static const char* kHex = "0123456789ABCDEF";
  std::string encoded;
  encoded.reserve(name.size());
  for (char ch : name) {
    unsigned char u = static_cast<unsigned char>(ch);
    bool safe = (u >= 'A' && u <= 'Z') || (u >= 'a' && u <= 'z') ||
                (u >= '0' && u <= '9') || u == '_' || u == '.' || u == '-';
    if (safe) {
      encoded.push_back(ch);
    } else {
      encoded.push_back('%');
      encoded.push_back(kHex[u >> 4]);
      encoded.push_back(kHex[u & 0xf]);
    }
  }
  return options_.wal_dir + "/" + encoded + ".wal";
}

Status CollectionRegistry::ResetWalLocked(Collection* c,
                                          const std::string& segment_path) {
  c->wal_.reset();
  c->wal_poisoned_ = false;  // a new epoch starts durable
  c->wal_fingerprint_ = 0;
  c->wal_records_.store(0, std::memory_order_relaxed);
  c->wal_bytes_.store(0, std::memory_order_relaxed);
  std::string wal_path = WalPathFor(c->name_);
  if (::unlink(wal_path.c_str()) == 0) {
    // Make the deletion durable before any new-epoch commit is acked:
    // a resurrected old-epoch log after power loss would replay stale
    // generations over the new base.
    BAGC_RETURN_NOT_OK(SyncParentDir(wal_path));
  }  // ENOENT is fine: no log yet
  if (segment_path.empty()) {
    // No segment base → no replay anchor → no WAL for this epoch.
    return Status::OK();
  }
  BAGC_ASSIGN_OR_RETURN(uint64_t fingerprint, SegmentFingerprint(segment_path));
  BAGC_ASSIGN_OR_RETURN(WalWriter writer, WalWriter::Open(wal_path));
  c->wal_fingerprint_ = fingerprint;
  c->wal_records_.store(writer.records(), std::memory_order_relaxed);
  c->wal_bytes_.store(writer.bytes(), std::memory_order_relaxed);
  c->wal_ = std::make_unique<WalWriter>(std::move(writer));
  return Status::OK();
}

Result<std::shared_ptr<const EngineSnapshot>> CollectionRegistry::FoldWalLocked(
    Collection* c, std::shared_ptr<const EngineSnapshot> base,
    const std::string& segment_path, uint64_t* replayed) {
  if (c->wal_poisoned_) {
    // The published chain holds a generation the log is missing (an
    // append failed mid-epoch); folding the log would serve a state
    // that silently rewinds past it. Only a fresh SEAL recovers.
    return Status::FailedPrecondition(
        "collection '" + c->name_ +
        "' lost WAL durability after an append failure; SEAL to start a "
        "new epoch before reloading");
  }
  BAGC_ASSIGN_OR_RETURN(uint64_t fingerprint, SegmentFingerprint(segment_path));
  std::string wal_path = WalPathFor(c->name_);
  std::vector<WalRecord> records;
  auto read = ReadWalFile(wal_path);
  if (read.ok()) {
    records = std::move(read->records);
  } else if (read.status().code() != StatusCode::kNotFound) {
    // Mid-file corruption or a foreign file: refuse to serve a state
    // that silently skips committed generations.
    return read.status();
  }
  if (!records.empty()) {
    if (base == nullptr) {
      return Status::FailedPrecondition(
          "collection '" + c->name_ +
          "' has logged generations but no resident base to replay over");
    }
    if (records.front().base_fingerprint != fingerprint) {
      return Status::FailedPrecondition(
          "WAL " + wal_path + " was written against a different base segment "
          "(log fingerprint " +
          std::to_string(records.front().base_fingerprint) + ", segment " +
          segment_path + " has " + std::to_string(fingerprint) +
          "); refusing to replay");
    }
    // Future appends must land past every logged generation; the logged
    // ids are a previous process's seqs, so push this chain past them.
    uint64_t want = records.back().generation + 1;
    uint64_t have = c->next_seq_.load(std::memory_order_relaxed);
    while (have < want &&
           !c->next_seq_.compare_exchange_weak(have, want,
                                               std::memory_order_relaxed)) {
    }
    for (const WalRecord& record : records) {
      BAGC_ASSIGN_OR_RETURN(DeltaBatch batch, BatchFromRecord(*base, record));
      BAGC_ASSIGN_OR_RETURN(
          base, EngineSnapshot::BuildDeltaBatch(base, batch, c->NextSeq()));
    }
    *replayed += records.size();
    c->replayed_.fetch_add(records.size(), std::memory_order_relaxed);
    replayed_total_.fetch_add(records.size(), std::memory_order_relaxed);
  }
  // Attach (and create, for an empty log) the writer; Open amputates a
  // torn tail so the file ends exactly at the last replayed record.
  BAGC_ASSIGN_OR_RETURN(WalWriter writer, WalWriter::Open(wal_path));
  c->wal_fingerprint_ = fingerprint;
  c->wal_records_.store(writer.records(), std::memory_order_relaxed);
  c->wal_bytes_.store(writer.bytes(), std::memory_order_relaxed);
  c->wal_ = std::make_unique<WalWriter>(std::move(writer));
  return base;
}

Result<uint64_t> CollectionRegistry::ReplayWal(Collection* c) {
  if (options_.wal_dir.empty()) return uint64_t{0};
  std::lock_guard<std::mutex> wal_lock(c->wal_mu_);
  std::shared_ptr<const EngineSnapshot> base;
  std::string segment_path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    base = c->current_;
    segment_path = c->segment_path_;
  }
  if (segment_path.empty()) return uint64_t{0};  // no replay anchor
  uint64_t replayed = 0;
  BAGC_ASSIGN_OR_RETURN(
      std::shared_ptr<const EngineSnapshot> folded,
      FoldWalLocked(c, std::move(base), segment_path, &replayed));
  if (replayed > 0) {
    BAGC_RETURN_NOT_OK(PublishChain(c, std::move(folded), nullptr, false));
  }
  return replayed;
}

uint64_t CollectionRegistry::wal_records_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [name, c] : collections_) {
    total += c->wal_records_.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t CollectionRegistry::wal_bytes_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [name, c] : collections_) {
    total += c->wal_bytes_.load(std::memory_order_relaxed);
  }
  return total;
}

CollectionRegistry::CollectionStats CollectionRegistry::Stats(
    const Collection* c) const {
  std::lock_guard<std::mutex> lock(mu_);
  CollectionStats s;
  s.resident = c->current_ != nullptr;
  s.reloadable = !c->segment_path_.empty();
  s.bytes = c->bytes_;
  s.generation = c->generation_;
  s.last_access = c->last_access_;
  s.hits = c->hits_;
  s.evictions = c->evictions_;
  s.reloads = c->reloads_;
  return s;
}

void CollectionRegistry::PoisonWalForTest(Collection* c) {
  std::lock_guard<std::mutex> wal_lock(c->wal_mu_);
  c->wal_poisoned_ = true;
}

void CollectionRegistry::MarkNextSealSupersededForTest(Collection* c) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t next = c->next_seq_.load(std::memory_order_relaxed);
  if (next > c->published_high_water_) c->published_high_water_ = next;
}

size_t CollectionRegistry::num_collections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return collections_.size();
}

size_t CollectionRegistry::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

void CollectionRegistry::InstallLocked(
    Collection* c, std::shared_ptr<const EngineSnapshot> snapshot,
    uint64_t bytes) {
  resident_bytes_ -= c->bytes_;
  c->current_ = std::move(snapshot);
  c->bytes_ = bytes;
  resident_bytes_ += bytes;
  c->generation_ = c->current_->seq();
  c->last_access_ = ++lru_clock_;
}

void CollectionRegistry::EvictToBudgetLocked(const Collection* exempt) {
  if (options_.mem_budget_bytes == 0) return;
  while (resident_bytes_ > options_.mem_budget_bytes) {
    Collection* coldest = nullptr;
    for (auto& [name, c] : collections_) {
      if (c.get() == exempt || c->current_ == nullptr) continue;
      if (coldest == nullptr || c->last_access_ < coldest->last_access_) {
        coldest = c.get();
      }
    }
    if (coldest == nullptr) break;  // only the exempt tenant is resident
    resident_bytes_ -= coldest->bytes_;
    // Dropping the pointer is the whole eviction: in-flight queries keep
    // their shared_ptr and finish on the old engine. generation_ stays —
    // it distinguishes "evicted" from "never sealed" in Acquire.
    coldest->current_ = nullptr;
    coldest->bytes_ = 0;
    ++coldest->evictions_;
    evictions_total_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace bagc
