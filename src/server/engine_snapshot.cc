#include "server/engine_snapshot.h"

#include <cctype>
#include <charconv>
#include <utility>

#include "bag/bag_io.h"
#include "core/collection.h"

namespace bagc {

Result<std::shared_ptr<const EngineSnapshot>> EngineSnapshot::Build(
    BuildInputs inputs, uint64_t seq) {
  auto snapshot = std::shared_ptr<EngineSnapshot>(new EngineSnapshot());
  snapshot->seq_ = seq;
  snapshot->names_ = std::move(inputs.names);
  for (size_t i = 0; i < snapshot->names_.size(); ++i) {
    snapshot->name_index_.emplace(snapshot->names_[i], i);
  }
  snapshot->catalog_ = std::move(inputs.catalog);
  for (const Bag& b : inputs.bags) snapshot->support_rows_ += b.SupportSize();

  BAGC_ASSIGN_OR_RETURN(BagCollection collection,
                        BagCollection::Make(std::move(inputs.bags)));
  EngineOptions options;
  options.num_threads = inputs.num_threads;
  options.columnar_min_rows = inputs.columnar_min_rows;
  options.dictionaries = inputs.dicts;
  options.canonicalize_dictionaries = inputs.canonicalize;
  SealReuse reuse;
  const SealReuse* reuse_ptr = nullptr;
  if (inputs.previous != nullptr && !inputs.prev_bag.empty()) {
    reuse.previous = inputs.previous->engine();
    reuse.prev_index = std::move(inputs.prev_bag);
    reuse_ptr = &reuse;  // Make() drops it again if canonicalizing
  }
  BAGC_ASSIGN_OR_RETURN(
      ConsistencyEngine engine,
      ConsistencyEngine::Make(std::move(collection), options, reuse_ptr));
  snapshot->engine_.emplace(std::move(engine));
  // The engine seals eagerly (no lazy_seal), so the cache is complete and
  // the const query surface is live; run the sweep once so every session
  // answers PAIRWISE from this verdict.
  BAGC_ASSIGN_OR_RETURN(snapshot->pairwise_, snapshot->engine_->PairwiseAll());
  // The pool has done all it ever will for this generation (eager seal +
  // the sweep above); the snapshot serves the rest of its life through
  // the const surface, so don't park idle worker threads per generation.
  snapshot->engine_->ReleaseWorkers();
  snapshot->dicts_ = snapshot->engine_->shared_dictionaries();
  // Dictionary entries are approximated at a flat per-value cost; the
  // engine's sealed state dominates for any collection worth evicting.
  snapshot->approx_bytes_ = snapshot->engine_->ApproxSealedBytes() +
                            48 * snapshot->dict_values();
  return std::shared_ptr<const EngineSnapshot>(std::move(snapshot));
}

Result<std::shared_ptr<const EngineSnapshot>> EngineSnapshot::BuildDelta(
    const std::shared_ptr<const EngineSnapshot>& previous, size_t bag_index,
    const std::vector<BagDelta>& deltas, uint64_t seq, DeltaOutcome* outcome) {
  DeltaBatch batch(1);
  batch[0].bag_index = bag_index;
  batch[0].deltas = deltas;
  return BuildDeltaBatch(previous, batch, seq, outcome);
}

Result<std::shared_ptr<const EngineSnapshot>> EngineSnapshot::BuildDeltaBatch(
    const std::shared_ptr<const EngineSnapshot>& previous,
    const DeltaBatch& batch, uint64_t seq, DeltaOutcome* outcome) {
  auto snapshot = std::shared_ptr<EngineSnapshot>(new EngineSnapshot());
  snapshot->seq_ = seq;
  snapshot->names_ = previous->names_;
  snapshot->name_index_ = previous->name_index_;
  snapshot->catalog_ = previous->catalog_;
  {
    // MakeDeltaBatch carries the previous engine's memoized global
    // verdict into the new generation; concurrent Global() calls on
    // `previous` write that memo. Same mutex, no torn reads.
    std::lock_guard<std::mutex> lock(previous->global_mu_);
    BAGC_ASSIGN_OR_RETURN(
        ConsistencyEngine engine,
        ConsistencyEngine::MakeDeltaBatch(*previous->engine_, batch, outcome));
    snapshot->engine_.emplace(std::move(engine));
  }
  // Only the delta's dirty pairs actually re-compare here; clean pairs
  // answer from the carried per-pair verdicts.
  BAGC_ASSIGN_OR_RETURN(snapshot->pairwise_, snapshot->engine_->PairwiseAll());
  snapshot->dicts_ = snapshot->engine_->shared_dictionaries();
  for (const Bag& b : snapshot->engine_->collection().bags()) {
    snapshot->support_rows_ += b.SupportSize();
  }
  snapshot->approx_bytes_ = snapshot->engine_->ApproxSealedBytes() +
                            48 * snapshot->dict_values();
  return std::shared_ptr<const EngineSnapshot>(std::move(snapshot));
}

Result<size_t> EngineSnapshot::ResolveBag(const std::string& token) const {
  bool digits = !token.empty();
  for (char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) digits = false;
  }
  if (digits) {
    uint64_t index = 0;
    auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), index);
    if (ec != std::errc() || ptr != token.data() + token.size() ||
        index >= names_.size()) {
      return Status::OutOfRange("bag index " + token + " out of range (" +
                                std::to_string(names_.size()) + " bags sealed)");
    }
    return static_cast<size_t>(index);
  }
  auto it = name_index_.find(token);
  if (it == name_index_.end()) {
    return Status::NotFound("no sealed bag named '" + token + "'");
  }
  return it->second;
}

Result<bool> EngineSnapshot::TwoBag(size_t i, size_t j) const {
  return engine_->TwoBagSealed(i, j);
}

Result<bool> EngineSnapshot::Global() const {
  std::lock_guard<std::mutex> lock(global_mu_);
  // Global() memoizes on the engine; mutation happens only here, under
  // the mutex, and never touches the sealed marginal cache the lock-free
  // queries read.
  return engine_->Global();
}

Result<bool> EngineSnapshot::KWise(
    size_t k, std::optional<std::vector<size_t>>* failing_subset) const {
  return engine_->KWiseConsistentSealed(k, failing_subset);
}

Result<std::optional<Bag>> EngineSnapshot::Witness(size_t i, size_t j,
                                                   bool minimal) const {
  return engine_->WitnessSealed(i, j, minimal);
}

std::string EngineSnapshot::WriteBagText(const Bag& bag) const {
  return WriteBag(bag, catalog_, dicts_.get());
}

}  // namespace bagc
