// Per-client session state machine of the bagcd protocol. A session is
// transport-agnostic: the socket layer (bagcd_server.cc), the in-process
// test harnesses, and the server_session benchmark all feed it one input
// line at a time and collect complete response lines. The session owns
// the client's interning state — attribute catalog, live DictionarySet,
// loaded-but-unsealed bags — while every query is answered from the
// shared immutable EngineSnapshot currently published in the registry,
// so N sessions hammer one sealed engine concurrently and a RESET or
// re-SEAL swaps generations under them without a pause.
//
// The dictionary-aware hot path: a client ships each attribute's
// dictionary once (DICT block, ids 0..n-1 in shipped order), then
// streams LOADU32 rows of raw ids for the rest of the session. Those ids
// stay valid for the session's whole lifetime — SEAL hands the engine a
// private clone of the dictionaries (canonicalized there when requested),
// never the live set — so the server does no string interning, hashing,
// or comparison on the streaming path (see ParseBagU32 in bag/bag_io.h).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bag/bag.h"
#include "server/engine_snapshot.h"
#include "server/protocol.h"
#include "tuple/attribute.h"
#include "tuple/value_dictionary.h"
#include "util/thread_pool.h"

namespace bagc {

/// \brief One client's protocol state machine.
///
/// Not thread-safe in itself (one connection = one session = one feeder
/// thread); cross-session concurrency happens in the shared registry and
/// snapshots.
class ServerSession {
 public:
  /// What the transport should do after a handled line.
  enum class Outcome {
    kContinue,        ///< keep reading
    kCloseConnection, ///< QUIT: flush responses, close this connection
    kShutdownServer,  ///< SHUTDOWN: flush, close, stop the whole server
  };

  /// `registry` must outlive the session. `query_pool` is the server's
  /// shared fan-out pool for query evaluation; nullptr answers queries
  /// inline on the transport thread.
  ServerSession(SnapshotRegistry* registry, ThreadPool* query_pool);
  ~ServerSession();

  ServerSession(const ServerSession&) = delete;
  ServerSession& operator=(const ServerSession&) = delete;

  /// Feeds one input line (without its trailing newline). Appends zero or
  /// more complete response lines to *out: zero while a body is being
  /// streamed or for blank/comment lines, one for single-line responses,
  /// several for WITNESS/STATS bodies.
  Outcome HandleLine(const std::string& line, std::vector<std::string>* out);

  /// Convenience for tests and benchmarks: feeds every line of `text`
  /// and returns all response lines.
  std::vector<std::string> HandleScript(const std::string& text);

 private:
  // Body-collection modes (request side).
  enum class Body { kNone, kDict, kLoadText, kLoadU32 };

  // Dispatch for a stripped, non-empty command line.
  Outcome HandleCommand(const std::vector<std::string>& tokens,
                        std::vector<std::string>* out);
  // END seen: parse and apply the collected body, emit the response.
  void FinishBody(std::vector<std::string>* out);
  void FinishDict(std::vector<std::string>* out);
  void FinishLoad(std::vector<std::string>* out);

  void HandleSeal(const std::vector<std::string>& tokens,
                  std::vector<std::string>* out);
  void HandleReset(const std::vector<std::string>& tokens,
                   std::vector<std::string>* out);
  void HandleStats(std::vector<std::string>* out);
  void HandleTwoBag(const std::vector<std::string>& tokens,
                    std::vector<std::string>* out);
  void HandlePairwise(std::vector<std::string>* out);
  void HandleGlobal(std::vector<std::string>* out);
  void HandleKWise(const std::vector<std::string>& tokens,
                   std::vector<std::string>* out);
  void HandleWitness(const std::vector<std::string>& tokens,
                     std::vector<std::string>* out);

  // The current snapshot, or an E_STATE error line into *out.
  std::shared_ptr<const EngineSnapshot> SnapshotOrErr(
      std::vector<std::string>* out);
  // True when `name` is already loaded (session-local, pre-seal).
  bool HasBag(const std::string& name) const;

  SnapshotRegistry* registry_;
  ThreadPool* query_pool_;

  // Interning state: lives for the whole session (RESET keeps it; RESET
  // HARD wipes it), so streamed u32 ids stay stable across re-seals.
  AttributeCatalog catalog_;
  std::shared_ptr<DictionarySet> dicts_ = std::make_shared<DictionarySet>();

  // Loaded, not-yet-sealed bags in LOAD order (the collection order).
  std::vector<std::string> bag_names_;
  std::vector<Bag> bags_;

  // In-flight request body.
  Body body_ = Body::kNone;
  std::vector<std::string> body_header_;  // tokens of the opening command
  std::vector<std::string> body_lines_;   // raw body lines (verbatim)
  size_t body_bytes_ = 0;       // bytes buffered in body_lines_
  bool body_overflow_ = false;  // block exceeded a body cap -> E_RANGE
};

}  // namespace bagc
