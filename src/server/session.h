// Per-client session state machine of the bagcd protocol. A session is
// transport-agnostic: the socket layer (bagcd_server.cc), the in-process
// test harnesses, and the server_session benchmark feed it raw bytes
// (HandleData) or one text line at a time (HandleLine) and collect
// complete responses. The session owns the client's interning state —
// attribute catalog, live DictionarySet, loaded-but-unsealed bags —
// while every query is answered from the shared immutable EngineSnapshot
// currently published for the session's *collection* (ATTACH binds one;
// "default" before the first ATTACH), so N sessions hammer one sealed
// engine concurrently and a RESET or re-SEAL swaps generations under
// them without a pause. SEAL publishes into the bound collection's
// chain; when the previous generation of that chain was sealed by this
// session and only k of m bags changed since (DROP + re-LOAD marks a
// bag changed), the seal reuses the untouched bags' sealed state —
// O(k·m) marginal fills instead of O(m²) ("SEAL FULL" opts out).
//
// The dictionary-aware hot path: a client ships each attribute's
// dictionary once (DICT block, ids 0..n-1 in shipped order), then
// streams LOADU32 rows of raw ids for the rest of the session. Those ids
// stay valid for the session's whole lifetime — SEAL hands the engine a
// private clone of the dictionaries (canonicalized there when requested),
// never the live set — so the server does no string interning, hashing,
// or comparison on the streaming path (see ParseBagU32 in bag/bag_io.h).
//
// Framing: a session starts in text mode (lines). "UPGRADE BINARY"
// switches both directions to the length-prefixed frames of
// server/protocol.h after the OK response; a CMD frame carrying "TEXT"
// switches back after its OK frame. Every handler emits through a
// ResponseSink, so the text encoder (byte-identical to protocol v1 —
// the docs/PROTOCOL.md transcript pins it) and the binary encoder share
// one set of handlers and cannot diverge semantically.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bag/bag.h"
#include "server/collection_registry.h"
#include "server/engine_snapshot.h"
#include "server/protocol.h"
#include "tuple/attribute.h"
#include "tuple/value_dictionary.h"
#include "util/thread_pool.h"

namespace bagc {

/// \brief One client's protocol state machine.
///
/// Not thread-safe in itself (one connection = one session = one feeder
/// thread); cross-session concurrency happens in the shared registry and
/// snapshots.
class ServerSession {
 public:
  /// What the transport should do after handled input.
  enum class Outcome {
    kContinue,        ///< keep reading
    kCloseConnection, ///< QUIT / framing abuse: flush responses, close
    kShutdownServer,  ///< SHUTDOWN: flush, close, stop the whole server
  };

  /// Response encoder: one implementation per framing. Handlers call
  /// exactly one sink method per request (plus ErrStatus helpers), so
  /// text and binary responses stay semantically identical by
  /// construction.
  class ResponseSink {
   public:
    virtual ~ResponseSink() = default;
    /// Success line sans the "OK " prefix ("SEAL 2 bags", "BYE", ...).
    virtual void Ok(const std::string& rest) = 0;
    virtual void Err(WireError error, const std::string& message) = 0;
    /// Consistency verdict; `indices` are the failing bag indices
    /// (empty for TWOBAG/GLOBAL, the pair for PAIRWISE, the subset for
    /// KWISE).
    virtual void Verdict(bool consistent, const std::vector<size_t>& indices) = 0;
    virtual void WitnessNone() = 0;
    virtual void WitnessBag(const Bag& bag, const EngineSnapshot& snapshot) = 0;
    virtual void Stats(const std::vector<std::pair<std::string, uint64_t>>& kv) = 0;

    void ErrStatus(const Status& status) {
      Err(WireErrorForStatus(status), status.message());
    }
  };

  /// `registry` must outlive the session. `query_pool` is the server's
  /// shared fan-out pool for query evaluation; nullptr answers queries
  /// inline on the transport thread. The session starts bound to the
  /// registry's "default" collection.
  ServerSession(CollectionRegistry* registry, ThreadPool* query_pool);
  ~ServerSession();

  ServerSession(const ServerSession&) = delete;
  ServerSession& operator=(const ServerSession&) = delete;

  /// Feeds raw transport bytes. Complete requests (text lines or binary
  /// frames, per the current mode) are handled; a trailing partial stays
  /// buffered for the next call. Responses — text lines with '\n', or
  /// binary frames — are appended to *out ready to write to the peer.
  /// Enforces the text line-length and binary frame-payload ceilings
  /// (overflow answers E_RANGE and closes). Stop feeding once a non-
  /// kContinue outcome is returned.
  Outcome HandleData(std::string_view data, std::string* out);

  /// Feeds one text-mode input line (without its trailing newline).
  /// Appends zero or more complete response lines to *out: zero while a
  /// body is being streamed or for blank/comment lines, one for
  /// single-line responses, several for WITNESS/STATS bodies. Legacy
  /// entry point for tests and benchmarks; HandleData is the transport's.
  Outcome HandleLine(const std::string& line, std::vector<std::string>* out);

  /// Convenience for tests and benchmarks: feeds every line of `text`
  /// and returns all response lines.
  std::vector<std::string> HandleScript(const std::string& text);

  /// True after a successful UPGRADE BINARY (and before a CMD "TEXT").
  bool binary_mode() const { return mode_ == Mode::kBinary; }

  /// Test hook: shrink the cumulative BEGIN/COMMIT caps so the refusal
  /// path is reachable without buffering millions of rows. 0 keeps the
  /// built-in cap (kMaxTxnRows / kMaxTxnWalBytes).
  void SetTxnCapsForTest(size_t rows, size_t wal_bytes) {
    txn_row_cap_for_test_ = rows;
    txn_byte_cap_for_test_ = wal_bytes;
  }

 private:
  enum class Mode { kText, kBinary };
  // Body-collection modes (request side, text framing only).
  enum class Body { kNone, kDict, kLoadText, kLoadU32, kInsert, kDelete };

  // Dispatch for a stripped, non-empty command line (text line or CMD
  // frame payload; body-carrying commands are rejected in binary mode).
  Outcome HandleCommand(const std::vector<std::string>& tokens,
                        ResponseSink* sink);
  // Dispatch for one complete binary frame.
  Outcome HandleFrame(uint8_t opcode, std::string_view payload,
                      ResponseSink* sink);

  // END seen: parse and apply the collected body, emit the response.
  void FinishBody(ResponseSink* sink);
  void FinishDict(ResponseSink* sink);
  void FinishLoad(ResponseSink* sink);
  void FinishMutate(bool insert, ResponseSink* sink);

  // Binary bodies: DICT and LOADU32 equivalents carried in one frame.
  void HandleDictFrame(std::string_view payload, ResponseSink* sink);
  void HandleRowsFrame(std::string_view payload, ResponseSink* sink);
  // INSERT/DELETE delta carried in one ROWS-grammar frame.
  void HandleMutateFrame(bool insert, std::string_view payload,
                         ResponseSink* sink);

  // Shared INSERT/DELETE core (text body and binary frame both land
  // here with parsed, dictionary-validated deltas): applies the signed
  // rows to the loaded bag and — when the bound collection currently
  // serves a generation this session sealed and nothing else changed —
  // derives and publishes the next generation incrementally
  // (EngineSnapshot::BuildDelta, untouched bags adopted). Without that
  // lineage the mutation stays session-local ("staged") until the next
  // SEAL. All-or-nothing either way: a DELETE below zero multiplicity
  // answers E_RANGE with the bag, the lineage, and the published
  // generation untouched.
  void CommitDelta(size_t bag_index, bool insert, std::vector<BagDelta> deltas,
                   size_t rows, ResponseSink* sink);

  // The COMMIT core, generalizing CommitDelta to a multi-bag batch:
  // publishes the whole batch as ONE generation (and one WAL record)
  // when the lineage holds, or applies it to the loaded bags otherwise —
  // all-or-nothing across every bag either way (a failing delta in the
  // last bag leaves every bag untouched). `label` is the response prefix
  // ("COMMIT", "INSERT <name>"); its first token names the verb in
  // error messages.
  void CommitBatch(DeltaBatch batch, size_t rows, const std::string& label,
                   ResponseSink* sink);

  void HandleBegin(const std::vector<std::string>& tokens, ResponseSink* sink);
  void HandleCommit(const std::vector<std::string>& tokens, ResponseSink* sink);

  void HandleHello(const std::vector<std::string>& tokens, ResponseSink* sink);
  void HandleUpgrade(const std::vector<std::string>& tokens, ResponseSink* sink);
  void HandleAttach(const std::vector<std::string>& tokens, ResponseSink* sink);
  void HandleDetach(const std::vector<std::string>& tokens, ResponseSink* sink);
  void HandleDrop(const std::vector<std::string>& tokens, ResponseSink* sink);
  void HandleSeal(const std::vector<std::string>& tokens, ResponseSink* sink);
  void HandleReset(const std::vector<std::string>& tokens, ResponseSink* sink);
  void HandleLoadSeg(const std::vector<std::string>& tokens, ResponseSink* sink);
  void HandleStats(const std::vector<std::string>& tokens, ResponseSink* sink);
  void HandleTwoBag(const std::vector<std::string>& tokens, ResponseSink* sink);
  void HandlePairwise(ResponseSink* sink);
  void HandleGlobal(ResponseSink* sink);
  void HandleKWise(const std::vector<std::string>& tokens, ResponseSink* sink);
  void HandleWitness(const std::vector<std::string>& tokens, ResponseSink* sink);

  // Shared query cores (text handlers parse tokens, binary frames decode
  // integers; both land here).
  void QueryTwoBag(size_t i, size_t j, ResponseSink* sink);
  void QueryKWise(size_t k, ResponseSink* sink);
  void QueryWitness(size_t i, size_t j, bool minimal, ResponseSink* sink);

  // Validates a new bag name (shape + uniqueness); emits the error and
  // returns false when unusable.
  bool CheckNewBagName(const std::string& name, ResponseSink* sink);

  // The bound collection's current snapshot (lazily reloaded from its
  // segment after an eviction), or an E_STATE error via *sink.
  std::shared_ptr<const EngineSnapshot> SnapshotOrErr(ResponseSink* sink);
  // True when `name` is already loaded (session-local, pre-seal).
  bool HasBag(const std::string& name) const;
  // Registers a freshly loaded bag (name/bag/change-epoch in lockstep).
  void AddBag(std::string name, Bag bag);
  // Invalidates the incremental-seal linkage and the staged segment
  // reload source (any change that breaks "bags == previous seal").
  void ForgetSealLineage();

  CollectionRegistry* registry_;
  ThreadPool* query_pool_;
  // The collection SEAL/RESET/queries act on; rebound by ATTACH/DETACH.
  std::shared_ptr<CollectionRegistry::Collection> collection_;

  // Interning state: lives for the whole session (RESET keeps it; RESET
  // HARD wipes it), so streamed u32 ids stay stable across re-seals.
  AttributeCatalog catalog_;
  std::shared_ptr<DictionarySet> dicts_ = std::make_shared<DictionarySet>();

  // Loaded, not-yet-sealed bags in LOAD order (the collection order),
  // with the change epoch each was (re)loaded at — the incremental-seal
  // dirtiness marker: a bag whose epoch postdates the last seal must be
  // refilled; the rest reuse the previous generation's sealed state.
  std::vector<std::string> bag_names_;
  std::vector<Bag> bags_;
  std::vector<uint64_t> bag_epochs_;
  uint64_t epoch_counter_ = 0;

  // Incremental-seal linkage: the last generation THIS session sealed
  // into the bound collection, and the epoch/CANONICAL flag it was
  // sealed at. Cleared by RESET, ATTACH/DETACH, and canonical seals
  // (canonicalization remaps ids, so prior sealed state is unusable).
  std::shared_ptr<const EngineSnapshot> last_sealed_;
  uint64_t last_seal_epoch_ = 0;
  bool last_seal_canonical_ = false;
  // The dictionary clone the last seal was built against, shared with
  // the next generation when nothing was interned in between (session
  // dictionaries only ever grow, so an unchanged total value count means
  // unchanged content). Null after canonical seals: the engine remapped
  // that clone's ids, so it no longer matches the session's id space.
  std::shared_ptr<DictionarySet> last_seal_dicts_;

  // When every loaded bag came from one LOADSEG (and nothing was loaded
  // or dropped since), the segment path SEAL registers as the
  // collection's lazy reload source; empty otherwise.
  std::string staged_seg_path_;

  // Open BEGIN/COMMIT transaction: INSERT/DELETE deltas buffer here and
  // publish as ONE atomic generation (and one WAL record) at COMMIT.
  // Structural commands are refused while open; RESET discards it.
  // Cumulative rows and WAL-encoded bytes are capped as blocks buffer
  // (kMaxTxnRows / kMaxTxnWalBytes in session.cc), so a transaction is
  // bounded in memory and always fits one WAL record.
  bool txn_active_ = false;
  DeltaBatch txn_batch_;
  size_t txn_rows_ = 0;
  size_t txn_wal_bytes_ = 0;
  // Test overrides for the transaction caps; 0 = use the built-ins.
  size_t txn_row_cap_for_test_ = 0;
  size_t txn_byte_cap_for_test_ = 0;

  // Framing state.
  Mode mode_ = Mode::kText;
  std::string inbuf_;  // HandleData's partial line / partial frame buffer

  // In-flight request body (text framing).
  Body body_ = Body::kNone;
  std::vector<std::string> body_header_;  // tokens of the opening command
  std::vector<std::string> body_lines_;   // raw body lines (verbatim)
  size_t body_bytes_ = 0;       // bytes buffered in body_lines_
  bool body_overflow_ = false;  // block exceeded a body cap -> E_RANGE
};

}  // namespace bagc
