// The bagcd daemon's transport: a TCP listener (loopback by default)
// that speaks the line protocol of session.h. One OS thread per
// connection feeds that client's ServerSession; query evaluation fans
// out on one shared work-stealing ThreadPool (util/thread_pool.h), and
// all sessions share one CollectionRegistry: every named collection
// serves from its own sealed engine generation, with cold tenants
// evicted (and lazily reloaded from segments) under the configured
// memory budget. Shutdown — from
// Shutdown(), a SHUTDOWN command, or a signal via RequestShutdown() —
// stops the accept loop, unblocks every connection, and joins all
// threads before Start()'s Wait() returns.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/collection_registry.h"
#include "server/engine_snapshot.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace bagc {

/// Listener configuration for a bagcd server.
struct BagcdServerOptions {
  /// Bind address. The default serves only local clients; the protocol
  /// has no authentication, so widening this is the operator's call.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Workers in the shared query-evaluation pool; 0 answers queries
  /// inline on each connection's thread.
  size_t query_threads = 0;
  /// Multi-tenant registry limits (see CollectionRegistry::Options):
  /// global resident-byte budget with LRU eviction, collection-count
  /// admission cap, and per-collection snapshot byte ceiling. 0 each =
  /// unlimited (the single-tenant protocol v1 behavior).
  CollectionRegistry::Options registry;
};

/// \brief A running bagcd server: listener, connection threads, registry.
class BagcdServer {
 public:
  /// Binds, listens, and starts the accept loop. The returned server is
  /// live; call Wait() to block until shutdown.
  static Result<std::unique_ptr<BagcdServer>> Start(
      const BagcdServerOptions& options);

  /// Joins everything (idempotent with Shutdown()).
  ~BagcdServer();

  BagcdServer(const BagcdServer&) = delete;
  BagcdServer& operator=(const BagcdServer&) = delete;

  /// The bound TCP port (the actual one when options.port was 0).
  uint16_t port() const { return port_; }

  /// The shared collection registry (snapshots + STATS counters).
  CollectionRegistry& registry() { return *registry_; }

  /// Blocks until a shutdown is requested (SHUTDOWN command, a signal
  /// handler calling RequestShutdown(), or Shutdown() from another
  /// thread), then tears everything down. Returns once the server is
  /// fully stopped.
  void Wait();

  /// Signal-handler- and connection-thread-safe shutdown request: flags
  /// the server; the thread blocked in Wait() (or the next Shutdown()
  /// caller) performs the teardown.
  void RequestShutdown();

  /// Full synchronous teardown: stop accepting, close every connection,
  /// join all threads. Must not be called from a connection thread (use
  /// RequestShutdown() there); idempotent.
  void Shutdown();

 private:
  // One live (or finished-but-unjoined) connection.
  struct Conn {
    int fd = -1;
    std::thread thread;
    bool done = false;  // set by the connection thread on exit (under mu_)
  };

  BagcdServer() = default;

  // Runs on accept_thread_ with its own copy of the listener fd (the
  // member is written by Shutdown() and must not be read concurrently).
  void AcceptLoop(int listen_fd);
  void ServeConnection(Conn* conn);

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::unique_ptr<ThreadPool> query_pool_;  // null when query_threads == 0
  std::unique_ptr<CollectionRegistry> registry_;

  std::thread accept_thread_;
  std::mutex mu_;  // guards conns_ and the stop flags
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool stopped_ = false;
  std::vector<std::unique_ptr<Conn>> conns_;
};

}  // namespace bagc
