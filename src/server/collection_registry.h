// Multi-tenant snapshot registry for the bagcd server. A *collection* is
// one named tenant: its own generation chain of sealed EngineSnapshots
// (seq numbers, publish high-water mark), its own STATS counters, and an
// optional BAGCSEG segment it can be rebuilt from. Sessions bind to a
// collection with ATTACH (every session starts on "default"), SEAL
// publishes into the bound collection's chain, and queries read its
// current snapshot.
//
// The registry enforces a global memory budget: when the resident bytes
// of all published snapshots exceed it, the coldest collections (LRU by
// last query/publish) are evicted — their snapshot pointer is dropped,
// in-flight queries finish on the shared_ptr they already hold. An
// evicted collection that registered a segment reloads lazily on the
// next query (Acquire); one with no segment answers E_STATE until it is
// sealed again. Admission caps (max collections, per-collection byte
// ceiling) bound what any one tenant can take before eviction triggers.
//
// Concurrency: one registry-wide mutex guards the collection map, every
// collection's published state, the LRU clock, and the byte accounting.
// Snapshot *builds* (SEAL, lazy reload) run outside the lock; only the
// publish/install step takes it. Per-chain seq issuance is atomic and
// lock-free, preserving the single-generation registry's race rule: a
// SEAL that loses to a newer generation (or to a RESET that happened
// after it took its seq) is refused at publish with a retryable error.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "server/engine_snapshot.h"
#include "tuple/wal.h"
#include "util/result.h"

namespace bagc {

/// Name every session is bound to before its first ATTACH.
inline constexpr const char* kDefaultCollectionName = "default";

/// \brief Named multi-tenant registry of sealed engine generations, with
/// LRU eviction under a global memory budget.
class CollectionRegistry {
 public:
  struct Options {
    /// Global ceiling on resident snapshot bytes; 0 = unlimited. The
    /// most-recently published/queried collection is exempt from its own
    /// eviction pass, so one oversized tenant degrades to single-tenant
    /// caching instead of thrashing to zero.
    size_t mem_budget_bytes = 0;
    /// Maximum number of named collections (ATTACH refuses beyond it,
    /// counting "default"); 0 = unlimited.
    size_t max_collections = 0;
    /// Per-collection ceiling on one snapshot's bytes (publish refuses
    /// larger seals outright); 0 = unlimited.
    size_t max_collection_bytes = 0;
    /// Minimum support rows for a sealed bag to convert to columnar-only
    /// serving form (EngineOptions::columnar_min_rows); 0 = the engine
    /// default (kColumnarMinRows). Applied to every SEAL and lazy segment
    /// reload this registry performs — bagcd --columnar-min-rows.
    size_t columnar_min_rows = 0;
    /// Directory for per-collection delta WALs (bagcd --wal-dir); empty
    /// disables durability. A collection whose base was sealed from a
    /// segment gets a WAL keyed to that segment's fingerprint: every
    /// PublishDelta appends one fdatasynced record, a full-seal Publish
    /// resets the log (new base epoch), and ReplayWal / lazy reload
    /// replays the log over the base so committed generations survive a
    /// daemon restart.
    std::string wal_dir;
  };

  /// Point-in-time per-collection counters (STATS <name>).
  struct CollectionStats {
    bool resident = false;       ///< a snapshot is currently published
    bool reloadable = false;     ///< a segment reload source is registered
    uint64_t bytes = 0;          ///< resident snapshot's approximate bytes
    uint64_t generation = 0;     ///< seq of the current publication (0 = none)
    uint64_t last_access = 0;    ///< LRU clock tick of the last touch
    uint64_t hits = 0;           ///< queries answered from the resident snapshot
    uint64_t evictions = 0;      ///< times this collection's snapshot was evicted
    uint64_t reloads = 0;        ///< lazy segment rebuilds after eviction
  };

  /// One named tenant. Handles are shared_ptr so a DETACHed/evicted
  /// collection a session still points at stays valid; all mutable state
  /// except seq issuance is guarded by the owning registry's mutex.
  class Collection {
   public:
    const std::string& name() const { return name_; }

    /// Next SEAL generation number in this collection's chain (1-based,
    /// monotone, lock-free).
    uint64_t NextSeq() { return next_seq_.fetch_add(1, std::memory_order_relaxed); }

   private:
    friend class CollectionRegistry;
    explicit Collection(std::string name) : name_(std::move(name)) {}

    const std::string name_;
    std::atomic<uint64_t> next_seq_{1};
    // ---- WAL state (wal_dir registries only) ----
    // wal_mu_ serializes delta publishes (chain publish + record append,
    // so file order equals seq order), full-seal WAL resets, and replay.
    // Lock order: wal_mu_ is taken BEFORE the registry's mu_, never
    // while holding it.
    std::mutex wal_mu_;
    std::unique_ptr<WalWriter> wal_;     // guarded by wal_mu_
    uint64_t wal_fingerprint_ = 0;       // guarded by wal_mu_
    // True after a WAL append failed for a PUBLISHED generation: the
    // log is missing acked in-memory state, so delta commits and
    // reload-folds refuse until a full SEAL starts a fresh epoch.
    bool wal_poisoned_ = false;          // guarded by wal_mu_
    // Lock-free mirrors of the writer's accounting for STATS.
    std::atomic<uint64_t> wal_records_{0};
    std::atomic<uint64_t> wal_bytes_{0};
    std::atomic<uint64_t> replayed_{0};
    // ---- everything below is guarded by the registry's mu_ ----
    std::shared_ptr<const EngineSnapshot> current_;
    uint64_t published_high_water_ = 0;
    std::string segment_path_;   // lazy reload source; empty = none
    bool reload_canonical_ = false;
    uint64_t bytes_ = 0;
    uint64_t generation_ = 0;
    uint64_t last_access_ = 0;
    uint64_t hits_ = 0;
    uint64_t evictions_ = 0;
    uint64_t reloads_ = 0;
  };

  CollectionRegistry() : CollectionRegistry(Options()) {}
  explicit CollectionRegistry(Options options);

  const Options& options() const { return options_; }

  /// The pre-created "default" collection.
  std::shared_ptr<Collection> Default() const { return default_; }

  /// Create-or-get a named collection. Refuses creation (not lookup)
  /// with FailedPrecondition once max_collections is reached.
  Result<std::shared_ptr<Collection>> Attach(const std::string& name);

  /// The named collection, or nullptr (STATS lookups; never creates).
  std::shared_ptr<Collection> Find(const std::string& name) const;

  /// The collection's current snapshot for a query: bumps the LRU clock
  /// and hit counter; an evicted collection with a registered segment is
  /// rebuilt here (outside the lock) and re-published with a fresh seq.
  /// OK(nullptr) when nothing was ever published (or a RESET emptied the
  /// chain); FailedPrecondition when the collection was evicted and has
  /// no segment to reload from, or its segment reload failed.
  Result<std::shared_ptr<const EngineSnapshot>> Acquire(Collection* c);

  /// The current snapshot without any side effects (STATS reporting):
  /// no LRU touch, no hit count, never triggers a reload.
  std::shared_ptr<const EngineSnapshot> Peek(const Collection* c) const;

  /// Publishes a sealed snapshot into `c`'s chain. Refuses with
  /// OutOfRange when the snapshot exceeds the per-collection byte
  /// ceiling, and with FailedPrecondition (retryable: take a new seq and
  /// rebuild) when a newer generation already won the chain — the same
  /// high-water rule as the single-generation registry. On success,
  /// `segment_path` (empty = none) becomes the collection's lazy reload
  /// source with `canonical` as its re-seal flag, and colder collections
  /// are evicted until the global budget holds (never `c` itself).
  Status Publish(Collection* c, std::shared_ptr<const EngineSnapshot> snapshot,
                 std::string segment_path, bool canonical);

  /// Publishes a delta generation (COMMIT / INSERT / DELETE): the same
  /// chain rules as Publish. When a WAL is attached, the collection's
  /// existing reload source is PRESERVED (the delta chain is replayable
  /// on top of the base segment) and `batch` is appended as one durable
  /// record — fdatasynced before OK is returned, in publish order. The
  /// record is encoded (and size-checked) BEFORE the publish, so a
  /// batch the log cannot carry refuses the commit with nothing
  /// published. An append failure after the publish POISONS the
  /// collection's durability: the error is surfaced, and every further
  /// PublishDelta (and reload-fold) answers FailedPrecondition until a
  /// full-seal Publish starts a new epoch — the log must never ack
  /// commits over a gap it is missing. Without a WAL the reload source
  /// is dropped: the segment no longer matches the published rows and
  /// must not quietly serve pre-delta state after an eviction.
  Status PublishDelta(Collection* c,
                      std::shared_ptr<const EngineSnapshot> snapshot,
                      const DeltaBatch& batch);

  /// Replays the collection's WAL over its resident snapshot, which
  /// must be the clean base sealed from its registered segment (bagcd
  /// calls this right after --preload-seg). Validates the log's base
  /// fingerprint against the segment — a divergent-fingerprint WAL is
  /// refused with FailedPrecondition — folds every logged generation
  /// into one published snapshot, attaches the writer for future
  /// commits, and returns the number of generations replayed (0 when no
  /// log exists; the writer is still attached). Idempotent across
  /// restarts: the same log over the same base recovers the same state.
  /// No-op returning 0 when the registry has no wal_dir or the
  /// collection no reload source.
  Result<uint64_t> ReplayWal(Collection* c);

  /// Startup-recovery window: while set, a full-seal Publish preserves
  /// any existing WAL instead of resetting it, so the --preload-seg
  /// internal SEAL does not destroy the log it is about to replay.
  /// bagcd sets it around preload + ReplayWal and clears it before
  /// accepting connections.
  void SetRecoveryMode(bool on) {
    recovery_mode_.store(on, std::memory_order_relaxed);
  }

  /// Unpublishes `c`'s current generation (RESET): in-flight queries
  /// finish on it, the high-water mark advances past every issued seq so
  /// in-flight seals AND reloads of the old state are refused, and the
  /// reload source is dropped — no engine until the next SEAL.
  void Clear(Collection* c);

  CollectionStats Stats(const Collection* c) const;

  /// Test hook for the publish-race path: raises `c`'s high-water mark to
  /// its next unissued seq, so exactly the next SEAL loses (deterministic
  /// stand-in for a concurrent seal winning mid-build); the retry wins.
  void MarkNextSealSupersededForTest(Collection* c);

  /// Test hook for the durability-loss path: marks `c`'s WAL poisoned,
  /// exactly as a failed append for a published generation does
  /// (deterministic stand-in for an I/O error mid-epoch).
  void PoisonWalForTest(Collection* c);

  // ---- registry-wide STATS ----
  size_t num_collections() const;
  size_t resident_bytes() const;
  uint64_t evictions_total() const { return evictions_total_.load(std::memory_order_relaxed); }
  /// Records / bytes across every attached WAL (STATS wal_records /
  /// wal_bytes), and generations recovered by replay since startup.
  uint64_t wal_records_total() const;
  uint64_t wal_bytes_total() const;
  uint64_t replayed_generations_total() const {
    return replayed_total_.load(std::memory_order_relaxed);
  }

  // ---- global session counters (relaxed; reporting, not synchronization).
  void SessionOpened() { sessions_.fetch_add(1, std::memory_order_relaxed); }
  void SessionClosed() { sessions_.fetch_sub(1, std::memory_order_relaxed); }
  void RecordSeal() { seals_.fetch_add(1, std::memory_order_relaxed); }
  void RecordReset() { resets_.fetch_add(1, std::memory_order_relaxed); }
  void RecordQuery() { queries_.fetch_add(1, std::memory_order_relaxed); }
  /// One committed INSERT/DELETE delta (staged or published).
  void RecordDelta() { deltas_.fetch_add(1, std::memory_order_relaxed); }
  size_t sessions_active() const { return sessions_.load(std::memory_order_relaxed); }
  uint64_t seals_total() const { return seals_.load(std::memory_order_relaxed); }
  uint64_t resets_total() const { return resets_.load(std::memory_order_relaxed); }
  uint64_t queries_total() const { return queries_.load(std::memory_order_relaxed); }
  uint64_t deltas_total() const { return deltas_.load(std::memory_order_relaxed); }

 private:
  // Swap `snapshot` in as c's resident generation (byte accounting + LRU
  // touch). Caller holds mu_.
  void InstallLocked(Collection* c,
                     std::shared_ptr<const EngineSnapshot> snapshot,
                     uint64_t bytes);
  // Drop the coldest resident snapshots (never `exempt`) until the
  // global budget holds. Caller holds mu_.
  void EvictToBudgetLocked(const Collection* exempt);
  // The shared publish body: chain rules + install + eviction, under
  // mu_. A null `segment_path` keeps the existing reload source (delta
  // publishes); non-null replaces it (full seals).
  Status PublishChain(Collection* c,
                      std::shared_ptr<const EngineSnapshot> snapshot,
                      const std::string* segment_path, bool canonical);
  // c's WAL file path under options_.wal_dir (collection name encoded
  // filesystem-safe).
  std::string WalPathFor(const std::string& name) const;
  // Drops and deletes c's WAL, then (unless `segment_path` is empty)
  // starts a fresh one keyed to that segment's fingerprint. Caller
  // holds c->wal_mu_.
  Status ResetWalLocked(Collection* c, const std::string& segment_path);
  // Reads c's WAL, validates it against `segment_path`'s fingerprint,
  // folds every record over `base`, attaches the writer, and bumps
  // next_seq_ past the logged generations. Returns the folded snapshot
  // (== base when the log is empty) and adds the replay count to
  // `*replayed`. Caller holds c->wal_mu_ and must NOT hold mu_.
  Result<std::shared_ptr<const EngineSnapshot>> FoldWalLocked(
      Collection* c, std::shared_ptr<const EngineSnapshot> base,
      const std::string& segment_path, uint64_t* replayed);

  const Options options_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Collection>> collections_;
  std::shared_ptr<Collection> default_;
  uint64_t lru_clock_ = 0;      // guarded by mu_
  uint64_t resident_bytes_ = 0; // guarded by mu_
  std::atomic<uint64_t> evictions_total_{0};
  std::atomic<uint64_t> replayed_total_{0};
  std::atomic<bool> recovery_mode_{false};
  std::atomic<size_t> sessions_{0};
  std::atomic<uint64_t> seals_{0};
  std::atomic<uint64_t> resets_{0};
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> deltas_{0};
};

}  // namespace bagc
