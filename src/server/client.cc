#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "server/protocol.h"

namespace bagc {

namespace {

// MSG_NOSIGNAL: a vanished server must come back as an error Status, not
// a SIGPIPE that kills the client process.
Status WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("send(): ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

// The wire format reserves '#' (comment to end of line) and whitespace
// (token separators) in every position, so a value containing them would
// be silently truncated or split server-side — the one corruption the
// receiver cannot detect (the framing still parses). Refuse to send it.
Status ValidateWireValue(const std::string& value) {
  if (value.empty() ||
      value.find_first_of("# \t\r\n") != std::string::npos) {
    return Status::InvalidArgument(
        "value '" + value +
        "' is not representable on the wire (empty, or contains '#' or "
        "whitespace)");
  }
  return Status::OK();
}

// "OK ..." passes through; "ERR ..." (or anything else) becomes an error
// Status carrying the server's line.
Status ExpectOk(const std::vector<std::string>& response) {
  if (!response.empty() && response.front().rfind("OK", 0) == 0) {
    return Status::OK();
  }
  return Status::Internal("server said: " +
                          (response.empty() ? "<nothing>" : response.front()));
}

}  // namespace

Result<BagcdClient> BagcdClient::Connect(const std::string& host, uint16_t port) {
  BagcdClient client;
  client.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (client.fd_ < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad address '" + host + "'");
  }
  if (::connect(client.fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::Internal("connect(" + host + ":" + std::to_string(port) +
                            "): " + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(client.fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  BAGC_ASSIGN_OR_RETURN(client.banner_, client.ReadLine());
  if (client.banner_.rfind("BAGCD ", 0) != 0) {
    return Status::Internal("unexpected banner: '" + client.banner_ + "'");
  }
  return client;
}

BagcdClient::BagcdClient(BagcdClient&& other) noexcept
    : fd_(other.fd_),
      banner_(std::move(other.banner_)),
      inbuf_(std::move(other.inbuf_)),
      binary_(other.binary_),
      shipped_(std::move(other.shipped_)) {
  other.fd_ = -1;
}

BagcdClient& BagcdClient::operator=(BagcdClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    banner_ = std::move(other.banner_);
    inbuf_ = std::move(other.inbuf_);
    binary_ = other.binary_;
    shipped_ = std::move(other.shipped_);
    other.fd_ = -1;
  }
  return *this;
}

BagcdClient::~BagcdClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status BagcdClient::SendLine(const std::string& line) {
  return WriteAll(fd_, line + "\n");
}

Result<std::string> BagcdClient::ReadLine() {
  while (true) {
    size_t nl = inbuf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = inbuf_.substr(0, nl);
      inbuf_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      return Status::Internal(std::string("read(): ") + std::strerror(errno));
    }
    if (n == 0) return Status::Internal("server closed the connection");
    inbuf_.append(chunk, static_cast<size_t>(n));
  }
}

Status BagcdClient::SendFrame(uint8_t opcode, std::string_view payload) {
  std::string frame;
  frame.reserve(kWireFrameHeaderBytes + payload.size());
  WireAppendFrame(&frame, opcode, payload);
  return WriteAll(fd_, frame);
}

Result<std::pair<uint8_t, std::string>> BagcdClient::ReadFrame() {
  while (true) {
    if (inbuf_.size() >= kWireFrameHeaderBytes) {
      WireCursor header(std::string_view(inbuf_).substr(0, kWireFrameHeaderBytes));
      uint32_t payload_len = 0;
      uint8_t opcode = 0;
      header.U32(&payload_len);
      header.U8(&opcode);
      if (payload_len > kWireMaxFramePayload) {
        return Status::Internal("server frame payload of " +
                                std::to_string(payload_len) +
                                " bytes exceeds the frame ceiling");
      }
      if (inbuf_.size() >= kWireFrameHeaderBytes + payload_len) {
        std::string payload =
            inbuf_.substr(kWireFrameHeaderBytes, payload_len);
        inbuf_.erase(0, kWireFrameHeaderBytes + payload_len);
        return std::make_pair(opcode, std::move(payload));
      }
    }
    char chunk[4096];
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      return Status::Internal(std::string("read(): ") + std::strerror(errno));
    }
    if (n == 0) return Status::Internal("server closed the connection");
    inbuf_.append(chunk, static_cast<size_t>(n));
  }
}

Result<std::vector<std::string>> BagcdClient::FrameToLines(
    uint8_t opcode, const std::string& payload) {
  // Mirrors the server's TextSink rendering exactly, so a script driven
  // through the binary framing yields byte-identical response lines.
  WireCursor cur(payload);
  std::vector<std::string> lines;
  switch (opcode) {
    case kFrameOk:
      lines.push_back("OK " + payload);
      return lines;
    case kFrameErr: {
      uint8_t tag = 0;
      if (!cur.U8(&tag)) return Status::Internal("malformed Err frame");
      BAGC_ASSIGN_OR_RETURN(WireError error, WireErrorFromTag(tag));
      lines.push_back(WireErrLine(
          error, payload.substr(1)));
      return lines;
    }
    case kFrameVerdict: {
      uint8_t consistent = 0;
      uint32_t n = 0;
      if (!cur.U8(&consistent) || !cur.U32(&n)) {
        return Status::Internal("malformed Verdict frame");
      }
      std::string line = consistent ? "OK CONSISTENT" : "OK INCONSISTENT";
      for (uint32_t t = 0; t < n; ++t) {
        uint32_t index = 0;
        if (!cur.U32(&index)) return Status::Internal("malformed Verdict frame");
        line += " " + std::to_string(index);
      }
      if (!cur.AtEnd()) return Status::Internal("malformed Verdict frame");
      lines.push_back(std::move(line));
      return lines;
    }
    case kFrameWitnessBag: {
      uint8_t present = 0;
      if (!cur.U8(&present)) return Status::Internal("malformed Witness frame");
      if (present == 0) {
        if (!cur.AtEnd()) return Status::Internal("malformed Witness frame");
        lines.push_back("OK NONE");
        return lines;
      }
      uint32_t arity = 0;
      if (!cur.U32(&arity)) return Status::Internal("malformed Witness frame");
      std::string header = "bag";
      for (uint32_t c = 0; c < arity; ++c) {
        std::string_view name;
        if (!cur.String(&name)) return Status::Internal("malformed Witness frame");
        header += " " + std::string(name);
      }
      uint64_t nrows = 0;
      if (!cur.U64(&nrows)) return Status::Internal("malformed Witness frame");
      lines.push_back("OK WITNESS " + std::to_string(nrows));
      lines.push_back(std::move(header));
      for (uint64_t r = 0; r < nrows; ++r) {
        std::string row;
        for (uint32_t c = 0; c < arity; ++c) {
          std::string_view value;
          if (!cur.String(&value)) {
            return Status::Internal("malformed Witness frame");
          }
          row += std::string(value) + " ";
        }
        uint64_t mult = 0;
        if (!cur.U64(&mult)) return Status::Internal("malformed Witness frame");
        row += ": " + std::to_string(mult);
        lines.push_back(std::move(row));
      }
      if (!cur.AtEnd()) return Status::Internal("malformed Witness frame");
      lines.emplace_back("end");
      lines.emplace_back(kWireEnd);
      return lines;
    }
    case kFrameStats: {
      uint32_t n = 0;
      if (!cur.U32(&n)) return Status::Internal("malformed Stats frame");
      lines.push_back("OK STATS");
      for (uint32_t t = 0; t < n; ++t) {
        std::string_view key;
        uint64_t value = 0;
        if (!cur.String(&key) || !cur.U64(&value)) {
          return Status::Internal("malformed Stats frame");
        }
        lines.push_back(std::string(key) + " " + std::to_string(value));
      }
      if (!cur.AtEnd()) return Status::Internal("malformed Stats frame");
      lines.emplace_back(kWireEnd);
      return lines;
    }
    default:
      return Status::Internal("unexpected server frame opcode " +
                              std::to_string(opcode));
  }
}

Result<std::vector<std::string>> BagcdClient::Command(
    const std::string& command, const std::vector<std::string>& body) {
  std::vector<std::string> tokens = WireTokens(command);
  bool has_body = !tokens.empty() && WireCommandHasBody(tokens[0]);
  if (!has_body && !body.empty()) {
    return Status::InvalidArgument("command '" + command + "' takes no body");
  }
  if (binary_) {
    if (has_body) {
      return Status::InvalidArgument(
          "command '" + command +
          "' carries a body; ship a DICT/ROWS frame in binary mode");
    }
    BAGC_RETURN_NOT_OK(SendFrame(kFrameCmd, command));
    auto frame_result = ReadFrame();
    BAGC_RETURN_NOT_OK(frame_result.status());
    auto& [opcode, payload] = *frame_result;
    // CMD TEXT's Ok frame is the last frame on the wire: the connection
    // is line-oriented again from the next byte.
    if (opcode == kFrameOk && payload == "TEXT") binary_ = false;
    return FrameToLines(opcode, payload);
  }
  std::string request = command + "\n";
  if (has_body) {
    for (const std::string& line : body) request += line + "\n";
    request += std::string(kWireEnd) + "\n";
  }
  BAGC_RETURN_NOT_OK(WriteAll(fd_, request));
  std::vector<std::string> response;
  BAGC_ASSIGN_OR_RETURN(std::string first, ReadLine());
  response.push_back(first);
  if (WireResponseHasBody(first)) {
    while (true) {
      BAGC_ASSIGN_OR_RETURN(std::string line, ReadLine());
      bool end = line == kWireEnd;
      response.push_back(std::move(line));
      if (end) break;
    }
  }
  // A successful text-mode UPGRADE flips this client to frames too.
  if (command == "UPGRADE BINARY" && first == "OK UPGRADE BINARY") {
    binary_ = true;
  }
  return response;
}

Result<std::pair<int, int>> BagcdClient::Hello() {
  BAGC_ASSIGN_OR_RETURN(std::vector<std::string> response, Command("HELLO"));
  BAGC_RETURN_NOT_OK(ExpectOk(response));
  std::vector<std::string> tokens = WireTokens(response.front());
  if (tokens.size() != 6 || tokens[1] != "HELLO" || tokens[2] != "proto" ||
      tokens[4] != "frames") {
    return Status::Internal("bad HELLO response: '" + response.front() + "'");
  }
  BAGC_ASSIGN_OR_RETURN(uint64_t proto, WireParseUint(tokens[3]));
  BAGC_ASSIGN_OR_RETURN(uint64_t frames, WireParseUint(tokens[5]));
  return std::make_pair(static_cast<int>(proto), static_cast<int>(frames));
}

Status BagcdClient::UpgradeBinary() {
  if (binary_) return Status::OK();
  BAGC_ASSIGN_OR_RETURN(std::vector<std::string> response,
                        Command("UPGRADE BINARY"));
  return ExpectOk(response);  // Command() flipped binary_ on the OK
}

Status BagcdClient::DowngradeText() {
  if (!binary_) return Status::OK();
  BAGC_ASSIGN_OR_RETURN(std::vector<std::string> response, Command("TEXT"));
  return ExpectOk(response);  // Command() flipped binary_ on the OK
}

Result<std::string> BagcdClient::RoundTripOk(uint8_t opcode,
                                             std::string_view payload) {
  BAGC_RETURN_NOT_OK(SendFrame(opcode, payload));
  auto frame_result = ReadFrame();
  BAGC_RETURN_NOT_OK(frame_result.status());
  auto& [got_opcode, got_payload] = *frame_result;
  if (got_opcode == kFrameOk) return std::move(got_payload);
  BAGC_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                        FrameToLines(got_opcode, got_payload));
  return Status::Internal("server said: " + lines.front());
}

Result<std::pair<bool, std::vector<size_t>>> BagcdClient::RoundTripVerdict(
    uint8_t opcode, std::string_view payload) {
  BAGC_RETURN_NOT_OK(SendFrame(opcode, payload));
  auto frame_result = ReadFrame();
  BAGC_RETURN_NOT_OK(frame_result.status());
  auto& [got_opcode, got_payload] = *frame_result;
  if (got_opcode != kFrameVerdict) {
    BAGC_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                          FrameToLines(got_opcode, got_payload));
    return Status::Internal("server said: " + lines.front());
  }
  WireCursor cur(got_payload);
  uint8_t consistent = 0;
  uint32_t n = 0;
  if (!cur.U8(&consistent) || !cur.U32(&n)) {
    return Status::Internal("malformed Verdict frame");
  }
  std::vector<size_t> indices;
  indices.reserve(n);
  for (uint32_t t = 0; t < n; ++t) {
    uint32_t index = 0;
    if (!cur.U32(&index)) return Status::Internal("malformed Verdict frame");
    indices.push_back(index);
  }
  if (!cur.AtEnd()) return Status::Internal("malformed Verdict frame");
  return std::make_pair(consistent == 1, std::move(indices));
}

Status BagcdClient::ShipDictionaries(const DictionarySet& dicts,
                                     const Schema& schema,
                                     const AttributeCatalog& catalog) {
  for (AttrId attr : schema.attrs()) {
    bool already = false;
    for (AttrId s : shipped_) already = already || s == attr;
    if (already) continue;
    const ValueDictionary* dict = dicts.find_dict(attr);
    if (dict == nullptr) continue;  // nothing to ship for this attribute
    for (const std::string& value : dict->externals()) {
      BAGC_RETURN_NOT_OK(ValidateWireValue(value));
    }
    if (binary_) {
      std::string payload;
      WireAppendString(&payload, catalog.Name(attr));
      WireAppendU32(&payload, static_cast<uint32_t>(dict->size()));
      for (const std::string& value : dict->externals()) {
        WireAppendString(&payload, value);
      }
      BAGC_RETURN_NOT_OK(RoundTripOk(kFrameDict, payload).status());
    } else {
      BAGC_ASSIGN_OR_RETURN(
          std::vector<std::string> response,
          Command("DICT " + catalog.Name(attr) + " " +
                      std::to_string(dict->size()),
                  dict->externals()));
      BAGC_RETURN_NOT_OK(ExpectOk(response));
    }
    shipped_.push_back(attr);
  }
  return Status::OK();
}

Status BagcdClient::LoadBagU32(const std::string& name, const Bag& bag,
                               const AttributeCatalog& catalog) {
  if (binary_) {
    const Schema& schema = bag.schema();
    std::string payload;
    // Header + fixed-width row block; sized up front so row streaming is
    // one append per integer into preallocated storage.
    payload.reserve(64 + bag.SupportSize() * (schema.arity() * 4 + 8));
    WireAppendString(&payload, name);
    WireAppendU32(&payload, static_cast<uint32_t>(schema.arity()));
    for (AttrId attr : schema.attrs()) {
      WireAppendString(&payload, catalog.Name(attr));
    }
    WireAppendU64(&payload, bag.SupportSize());
    for (size_t e = 0; e < bag.SupportSize(); ++e) {
      for (size_t i = 0; i < schema.arity(); ++i) {
        WireAppendU32(&payload, bag.IdAt(e, i));
      }
      WireAppendU64(&payload, bag.MultiplicityAt(e));
    }
    return RoundTripOk(kFrameRows, payload).status();
  }
  std::string header = "LOADU32 " + name;
  for (AttrId attr : bag.schema().attrs()) header += " " + catalog.Name(attr);
  std::vector<std::string> rows;
  rows.reserve(bag.SupportSize());
  for (size_t e = 0; e < bag.SupportSize(); ++e) {
    std::string row;
    for (size_t i = 0; i < bag.schema().arity(); ++i) {
      row += std::to_string(bag.IdAt(e, i)) + " ";
    }
    row += ": " + std::to_string(bag.MultiplicityAt(e));
    rows.push_back(std::move(row));
  }
  BAGC_ASSIGN_OR_RETURN(std::vector<std::string> response, Command(header, rows));
  return ExpectOk(response);
}

Status BagcdClient::LoadBagText(const std::string& name, const Bag& bag,
                                const AttributeCatalog& catalog,
                                const DictionarySet& dicts) {
  if (binary_) {
    // The binary framing has no string-row frame (it exists to avoid
    // exactly that decode/re-intern cycle); the raw-id path is LoadBagU32.
    return Status::FailedPrecondition(
        "LOAD blocks require text mode; use LoadBagU32 in binary mode");
  }
  std::string header = "LOAD " + name;
  for (AttrId attr : bag.schema().attrs()) header += " " + catalog.Name(attr);
  std::vector<std::string> rows;
  rows.reserve(bag.SupportSize());
  for (size_t e = 0; e < bag.SupportSize(); ++e) {
    BAGC_ASSIGN_OR_RETURN(std::vector<std::string> tokens,
                          dicts.DecodeRow(bag.schema(), bag.RowAt(e)));
    std::string row;
    for (const std::string& token : tokens) {
      BAGC_RETURN_NOT_OK(ValidateWireValue(token));
      row += token + " ";
    }
    row += ": " + std::to_string(bag.MultiplicityAt(e));
    rows.push_back(std::move(row));
  }
  BAGC_ASSIGN_OR_RETURN(std::vector<std::string> response, Command(header, rows));
  return ExpectOk(response);
}

Result<size_t> BagcdClient::Seal(bool canonical, size_t threads) {
  std::string command = "SEAL";
  if (canonical) command += " CANONICAL";
  if (threads > 1) command += " THREADS " + std::to_string(threads);
  BAGC_ASSIGN_OR_RETURN(std::vector<std::string> response, Command(command));
  BAGC_RETURN_NOT_OK(ExpectOk(response));
  std::vector<std::string> tokens = WireTokens(response.front());
  if (tokens.size() != 4 || tokens[1] != "SEAL") {
    return Status::Internal("bad SEAL response: '" + response.front() + "'");
  }
  BAGC_ASSIGN_OR_RETURN(uint64_t bags, WireParseUint(tokens[2]));
  return static_cast<size_t>(bags);
}

Result<bool> BagcdClient::TwoBag(size_t i, size_t j) {
  if (binary_) {
    std::string payload;
    WireAppendU32(&payload, static_cast<uint32_t>(i));
    WireAppendU32(&payload, static_cast<uint32_t>(j));
    BAGC_ASSIGN_OR_RETURN(auto verdict, RoundTripVerdict(kFrameTwoBag, payload));
    return verdict.first;
  }
  BAGC_ASSIGN_OR_RETURN(
      std::vector<std::string> response,
      Command("TWOBAG " + std::to_string(i) + " " + std::to_string(j)));
  BAGC_RETURN_NOT_OK(ExpectOk(response));
  return response.front() == "OK CONSISTENT";
}

Result<std::optional<std::pair<size_t, size_t>>> BagcdClient::Pairwise() {
  if (binary_) {
    BAGC_ASSIGN_OR_RETURN(auto verdict, RoundTripVerdict(kFramePairwise, {}));
    if (verdict.first) return std::optional<std::pair<size_t, size_t>>();
    if (verdict.second.size() != 2) {
      return Status::Internal("bad PAIRWISE verdict frame");
    }
    return std::optional<std::pair<size_t, size_t>>(
        std::make_pair(verdict.second[0], verdict.second[1]));
  }
  BAGC_ASSIGN_OR_RETURN(std::vector<std::string> response, Command("PAIRWISE"));
  BAGC_RETURN_NOT_OK(ExpectOk(response));
  std::vector<std::string> tokens = WireTokens(response.front());
  if (tokens.size() == 2 && tokens[1] == "CONSISTENT") {
    return std::optional<std::pair<size_t, size_t>>();
  }
  if (tokens.size() == 4 && tokens[1] == "INCONSISTENT") {
    BAGC_ASSIGN_OR_RETURN(uint64_t i, WireParseUint(tokens[2]));
    BAGC_ASSIGN_OR_RETURN(uint64_t j, WireParseUint(tokens[3]));
    return std::optional<std::pair<size_t, size_t>>(
        std::make_pair(static_cast<size_t>(i), static_cast<size_t>(j)));
  }
  return Status::Internal("bad PAIRWISE response: '" + response.front() + "'");
}

Result<bool> BagcdClient::Global() {
  if (binary_) {
    BAGC_ASSIGN_OR_RETURN(auto verdict, RoundTripVerdict(kFrameGlobal, {}));
    return verdict.first;
  }
  BAGC_ASSIGN_OR_RETURN(std::vector<std::string> response, Command("GLOBAL"));
  BAGC_RETURN_NOT_OK(ExpectOk(response));
  return response.front() == "OK CONSISTENT";
}

Result<std::optional<std::vector<size_t>>> BagcdClient::KWise(size_t k) {
  if (binary_) {
    std::string payload;
    WireAppendU32(&payload, static_cast<uint32_t>(k));
    BAGC_ASSIGN_OR_RETURN(auto verdict, RoundTripVerdict(kFrameKWise, payload));
    if (verdict.first) return std::optional<std::vector<size_t>>();
    return std::optional<std::vector<size_t>>(std::move(verdict.second));
  }
  BAGC_ASSIGN_OR_RETURN(std::vector<std::string> response,
                        Command("KWISE " + std::to_string(k)));
  BAGC_RETURN_NOT_OK(ExpectOk(response));
  std::vector<std::string> tokens = WireTokens(response.front());
  if (tokens.size() == 2 && tokens[1] == "CONSISTENT") {
    return std::optional<std::vector<size_t>>();
  }
  if (tokens.size() >= 3 && tokens[1] == "INCONSISTENT") {
    std::vector<size_t> subset;
    for (size_t t = 2; t < tokens.size(); ++t) {
      BAGC_ASSIGN_OR_RETURN(uint64_t index, WireParseUint(tokens[t]));
      subset.push_back(static_cast<size_t>(index));
    }
    return std::optional<std::vector<size_t>>(std::move(subset));
  }
  return Status::Internal("bad KWISE response: '" + response.front() + "'");
}

Result<std::optional<std::vector<std::string>>> BagcdClient::Witness(
    size_t i, size_t j, bool minimal) {
  if (binary_) {
    std::string payload;
    WireAppendU32(&payload, static_cast<uint32_t>(i));
    WireAppendU32(&payload, static_cast<uint32_t>(j));
    payload.push_back(minimal ? '\1' : '\0');
    BAGC_RETURN_NOT_OK(SendFrame(kFrameWitness, payload));
    auto frame_result = ReadFrame();
    BAGC_RETURN_NOT_OK(frame_result.status());
    auto& [opcode, frame_payload] = *frame_result;
    BAGC_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                          FrameToLines(opcode, frame_payload));
    if (opcode != kFrameWitnessBag) {
      return Status::Internal("server said: " + lines.front());
    }
    if (lines.front() == "OK NONE") {
      return std::optional<std::vector<std::string>>();
    }
    // FrameToLines renders the text framing exactly: OK line, bag block
    // lines, END. Strip the envelope, as the text arm below does.
    return std::optional<std::vector<std::string>>(
        std::vector<std::string>(lines.begin() + 1, lines.end() - 1));
  }
  std::string command =
      "WITNESS " + std::to_string(i) + " " + std::to_string(j);
  if (minimal) command += " MINIMAL";
  BAGC_ASSIGN_OR_RETURN(std::vector<std::string> response, Command(command));
  BAGC_RETURN_NOT_OK(ExpectOk(response));
  if (response.front() == "OK NONE") {
    return std::optional<std::vector<std::string>>();
  }
  if (response.front().rfind("OK WITNESS", 0) != 0 || response.size() < 2 ||
      response.back() != kWireEnd) {
    return Status::Internal("bad WITNESS response: '" + response.front() + "'");
  }
  return std::optional<std::vector<std::string>>(std::vector<std::string>(
      response.begin() + 1, response.end() - 1));
}

namespace {

// One C:/S: block. `start_line` is 1-based, for error reporting.
struct TranscriptBlock {
  std::vector<std::string> lines;
  size_t start_line = 1;
};

std::vector<TranscriptBlock> ExtractBlocks(const std::string& text) {
  std::vector<std::string> lines;
  {
    std::istringstream iss(text);
    std::string line;
    while (std::getline(iss, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      lines.push_back(line);
    }
  }
  std::vector<TranscriptBlock> blocks;
  bool in_fence = false;
  bool saw_fence = false;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (!in_fence && lines[i].rfind("```transcript", 0) == 0) {
      in_fence = true;
      saw_fence = true;
      blocks.push_back({{}, i + 2});
      continue;
    }
    if (in_fence && lines[i].rfind("```", 0) == 0) {
      in_fence = false;
      continue;
    }
    if (in_fence) blocks.back().lines.push_back(lines[i]);
  }
  if (!saw_fence) {
    // A raw transcript file: the whole text is one block.
    blocks.push_back({std::move(lines), 1});
  }
  return blocks;
}

}  // namespace

Result<size_t> ReplayTranscript(const std::string& host, uint16_t port,
                                const std::string& text) {
  std::vector<TranscriptBlock> blocks = ExtractBlocks(text);
  size_t replayed = 0;
  for (const TranscriptBlock& block : blocks) {
    if (block.lines.empty()) continue;
    BAGC_ASSIGN_OR_RETURN(BagcdClient client, BagcdClient::Connect(host, port));
    bool banner_pending = true;
    for (size_t i = 0; i < block.lines.size(); ++i) {
      const std::string& line = block.lines[i];
      std::string at = "transcript line " + std::to_string(block.start_line + i);
      // Payload is everything after the marker, minus one optional
      // separating space ("C: QUIT" and "C:QUIT" both mean QUIT).
      auto payload_of = [](const std::string& marked) {
        std::string payload = marked.substr(2);
        if (!payload.empty() && payload.front() == ' ') payload.erase(0, 1);
        return payload;
      };
      if (line.rfind("C:", 0) == 0) {
        BAGC_RETURN_NOT_OK(client.SendLine(payload_of(line)));
      } else if (line.rfind("S:", 0) == 0) {
        std::string expected = payload_of(line);
        std::string got;
        if (banner_pending) {
          got = client.banner();
          banner_pending = false;
        } else {
          BAGC_ASSIGN_OR_RETURN(got, client.ReadLine());
        }
        if (got != expected) {
          // Unified-diff shape so a failing replay reads at a glance;
          // bagctl --replay prints this verbatim and exits nonzero.
          return Status::Internal(at + ": transcript mismatch\n-" + expected +
                                  "\n+" + got);
        }
      } else if (WireStrip(line).empty()) {
        continue;  // comment or blank
      } else {
        return Status::InvalidArgument(
            at + ": transcript lines must start with 'C:', 'S:', or '#'");
      }
    }
    ++replayed;
  }
  if (replayed == 0) {
    return Status::InvalidArgument("no transcript content found");
  }
  return replayed;
}

}  // namespace bagc
