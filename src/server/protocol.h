// Wire-level vocabulary of the bagcd session protocol (version 1). The
// protocol is line-oriented text over a byte stream: one command per
// line, space-separated tokens, body-carrying commands (DICT / LOAD /
// LOADU32) followed by raw lines up to a terminating "END". Responses
// are a single "OK ..." or "ERR <code> ..." line, except WITNESS and
// STATS whose OK form opens a body that also ends with "END". The
// multi-tenant verbs — ATTACH/DETACH (bind a session to a named
// collection), DROP (unload one staged bag), per-collection STATS, and
// the SEAL FULL opt-out of incremental re-seals — are additive: a v1
// client never sends them and sees byte-identical responses. The full
// grammar, the session lifecycle, and an annotated transcript live in
// docs/PROTOCOL.md — this header is the single in-code source of the
// literal strings both sides (ServerSession, BagcdClient) must agree on.
//
// A session may also negotiate the *binary framing* ("UPGRADE BINARY"):
// after the OK, both directions switch from lines to length-prefixed
// little-endian frames ([u32 payload length][u8 opcode][payload]). The
// frame vocabulary — opcodes, integer widths, payload grammars — lives
// here too, as shared append/read helpers, so the server-side encoder
// (session.cc) and the client-side decoder (client.cc) cannot drift.
// "CMD TEXT" (a kFrameCmd carrying the verb TEXT) drops back to lines.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace bagc {

/// Protocol version spoken by this build; bumped on incompatible change.
inline constexpr int kWireProtocolVersion = 1;

/// Greeting the server writes on every fresh connection.
inline constexpr std::string_view kWireBanner = "BAGCD 1 READY";

/// Body terminator for DICT/LOAD/LOADU32 requests and WITNESS/STATS
/// responses.
inline constexpr std::string_view kWireEnd = "END";

/// Machine-readable error classes (second token of an ERR response).
enum class WireError {
  kParse,     ///< E_PARSE: malformed command, token, or block
  kState,     ///< E_STATE: command illegal in the current session state
  kRange,     ///< E_RANGE: index, id, or count outside the valid range
  kEngine,    ///< E_ENGINE: the consistency engine rejected the request
  kInternal,  ///< E_INTERNAL: server-side invariant failure
};

/// The wire token of a WireError ("E_PARSE", "E_STATE", ...).
std::string_view WireErrorCode(WireError error);

/// Formats an ERR response line: "ERR <code> <message>". The message is
/// flattened to one line (newlines become spaces; the framing is
/// line-oriented).
std::string WireErrLine(WireError error, const std::string& message);

/// Maps a Status from the engine/IO layers onto the wire error class a
/// client should see: OutOfRange -> E_RANGE, InvalidArgument -> E_PARSE,
/// FailedPrecondition/NotFound -> E_STATE, everything else -> E_ENGINE.
WireError WireErrorForStatus(const Status& status);

/// Formats the ERR line for a non-OK status.
std::string WireErrLineForStatus(const Status& status);

/// Whitespace tokenizer with '#'-to-end-of-line comment stripping — the
/// same lexical rules as the bag IO format, applied to command lines.
std::vector<std::string> WireTokens(const std::string& line);

/// Strips a trailing comment and surrounding whitespace; an empty result
/// means the line carries nothing (ignored in command position).
std::string WireStrip(const std::string& line);

/// True for commands whose request carries a body up to "END": DICT,
/// LOAD, LOADU32. The server always consumes the body of such a command
/// before responding, even when the header is invalid, so one bad header
/// cannot desynchronize the stream.
bool WireCommandHasBody(const std::string& command);

/// True for response first-lines that open a body up to "END":
/// "OK WITNESS ..." and "OK STATS".
bool WireResponseHasBody(const std::string& first_line);

/// Parses a non-negative integer token (no sign, no suffix).
Result<uint64_t> WireParseUint(const std::string& token);

// ---- Binary framing ------------------------------------------------------
//
// Frame layout (both directions, after a successful "UPGRADE BINARY"):
//
//   [u32 payload_length LE][u8 opcode][payload_length bytes]
//
// Integers inside payloads are little-endian and unaligned; strings are
// length-prefixed byte sequences (no NUL, no escaping). Client->server
// opcodes are < 0x80, server->client opcodes >= 0x80.

/// Capability the server advertises in its HELLO response ("frames 1").
inline constexpr int kWireFrameVersion = 1;

/// Bytes before the payload: u32 length + u8 opcode.
inline constexpr size_t kWireFrameHeaderBytes = 5;

/// Ceiling on one frame's payload. Matches the text path's body cap: a
/// peer that claims a multi-gigabyte frame is abusing the framing and
/// the connection is dropped rather than buffered.
inline constexpr size_t kWireMaxFramePayload = size_t{1} << 28;  // 256 MiB

// Client -> server frames.
inline constexpr uint8_t kFrameCmd = 0x01;      ///< one text command line (no body)
inline constexpr uint8_t kFrameDict = 0x02;     ///< DICT block: name + values
inline constexpr uint8_t kFrameRows = 0x03;     ///< LOADU32 block: raw id rows
inline constexpr uint8_t kFrameTwoBag = 0x04;   ///< u32 i, u32 j
inline constexpr uint8_t kFramePairwise = 0x05; ///< empty payload
inline constexpr uint8_t kFrameGlobal = 0x06;   ///< empty payload
inline constexpr uint8_t kFrameKWise = 0x07;    ///< u32 k
inline constexpr uint8_t kFrameWitness = 0x08;  ///< u32 i, u32 j, u8 minimal
inline constexpr uint8_t kFrameInsert = 0x09;   ///< INSERT delta: ROWS grammar
inline constexpr uint8_t kFrameDelete = 0x0A;   ///< DELETE delta: ROWS grammar
inline constexpr uint8_t kFrameBegin = 0x0B;    ///< BEGIN: empty payload
inline constexpr uint8_t kFrameCommit = 0x0C;   ///< COMMIT: empty payload

// Server -> client frames.
inline constexpr uint8_t kFrameOk = 0x80;         ///< OK line sans "OK " prefix
inline constexpr uint8_t kFrameErr = 0x81;        ///< u8 error class + message
inline constexpr uint8_t kFrameVerdict = 0x82;    ///< u8 consistent + u32 n + n×u32
inline constexpr uint8_t kFrameWitnessBag = 0x83; ///< decoded witness rows
inline constexpr uint8_t kFrameStats = 0x84;      ///< u32 n + n×(key, u64 value)

/// The u8 payload tag of a WireError inside a kFrameErr frame, and back.
uint8_t WireErrorTag(WireError error);
Result<WireError> WireErrorFromTag(uint8_t tag);

/// Little-endian integer appenders (unaligned).
void WireAppendU16(std::string* out, uint16_t v);
void WireAppendU32(std::string* out, uint32_t v);
void WireAppendU64(std::string* out, uint64_t v);

/// Appends a length-prefixed string: u32 byte count + bytes.
void WireAppendString(std::string* out, std::string_view s);

/// Appends one complete frame (header + payload).
void WireAppendFrame(std::string* out, uint8_t opcode, std::string_view payload);

/// \brief Bounds-checked little-endian payload reader.
///
/// Every accessor returns false once the payload is exhausted (and from
/// then on — the cursor latches failed), so a decoder can parse a whole
/// grammar and check ok() once at the end.
class WireCursor {
 public:
  explicit WireCursor(std::string_view payload) : data_(payload) {}

  bool U8(uint8_t* v);
  bool U16(uint16_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  /// Reads a u32 length prefix, then that many bytes (view into payload).
  bool String(std::string_view* v);
  /// Reads exactly n raw bytes (view into payload).
  bool Bytes(size_t n, std::string_view* v);

  /// True while no read has run past the end.
  bool ok() const { return ok_; }
  /// True when the payload is fully consumed (trailing bytes are a
  /// framing error for fixed grammars).
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }
  size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace bagc
