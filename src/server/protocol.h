// Wire-level vocabulary of the bagcd session protocol (version 1). The
// protocol is line-oriented text over a byte stream: one command per
// line, space-separated tokens, body-carrying commands (DICT / LOAD /
// LOADU32) followed by raw lines up to a terminating "END". Responses
// are a single "OK ..." or "ERR <code> ..." line, except WITNESS and
// STATS whose OK form opens a body that also ends with "END". The full
// grammar, the session lifecycle, and an annotated transcript live in
// docs/PROTOCOL.md — this header is the single in-code source of the
// literal strings both sides (ServerSession, BagcdClient) must agree on.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace bagc {

/// Protocol version spoken by this build; bumped on incompatible change.
inline constexpr int kWireProtocolVersion = 1;

/// Greeting the server writes on every fresh connection.
inline constexpr std::string_view kWireBanner = "BAGCD 1 READY";

/// Body terminator for DICT/LOAD/LOADU32 requests and WITNESS/STATS
/// responses.
inline constexpr std::string_view kWireEnd = "END";

/// Machine-readable error classes (second token of an ERR response).
enum class WireError {
  kParse,     ///< E_PARSE: malformed command, token, or block
  kState,     ///< E_STATE: command illegal in the current session state
  kRange,     ///< E_RANGE: index, id, or count outside the valid range
  kEngine,    ///< E_ENGINE: the consistency engine rejected the request
  kInternal,  ///< E_INTERNAL: server-side invariant failure
};

/// The wire token of a WireError ("E_PARSE", "E_STATE", ...).
std::string_view WireErrorCode(WireError error);

/// Formats an ERR response line: "ERR <code> <message>". The message is
/// flattened to one line (newlines become spaces; the framing is
/// line-oriented).
std::string WireErrLine(WireError error, const std::string& message);

/// Maps a Status from the engine/IO layers onto the wire error class a
/// client should see: OutOfRange -> E_RANGE, InvalidArgument -> E_PARSE,
/// FailedPrecondition/NotFound -> E_STATE, everything else -> E_ENGINE.
WireError WireErrorForStatus(const Status& status);

/// Formats the ERR line for a non-OK status.
std::string WireErrLineForStatus(const Status& status);

/// Whitespace tokenizer with '#'-to-end-of-line comment stripping — the
/// same lexical rules as the bag IO format, applied to command lines.
std::vector<std::string> WireTokens(const std::string& line);

/// Strips a trailing comment and surrounding whitespace; an empty result
/// means the line carries nothing (ignored in command position).
std::string WireStrip(const std::string& line);

/// True for commands whose request carries a body up to "END": DICT,
/// LOAD, LOADU32. The server always consumes the body of such a command
/// before responding, even when the header is invalid, so one bad header
/// cannot desynchronize the stream.
bool WireCommandHasBody(const std::string& command);

/// True for response first-lines that open a body up to "END":
/// "OK WITNESS ..." and "OK STATS".
bool WireResponseHasBody(const std::string& first_line);

/// Parses a non-negative integer token (no sign, no suffix).
Result<uint64_t> WireParseUint(const std::string& token);

}  // namespace bagc
