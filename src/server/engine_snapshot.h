// Shared immutable engine snapshots for the bagcd server. A SEAL builds
// one EngineSnapshot — an eagerly sealed ConsistencyEngine plus the
// catalog/dictionary state needed to decode results back to external
// values — and publishes it in the server's CollectionRegistry (see
// collection_registry.h). Sessions answering queries take shared
// ownership of the current snapshot for the duration of one query, so a
// concurrent RESET or re-SEAL swaps the registry pointer atomically
// while every in-flight query finishes on the snapshot it started with;
// the old engine is destroyed when the last such query releases it.
//
// Thread-safety: every query method on EngineSnapshot is const and safe
// for any number of concurrent callers. TwoBag/Pairwise/KWise/Witness
// ride the engine's const sealed surface (see consistency_engine.h);
// Global() memoizes the possibly-exponential cyclic decision under a
// private mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/consistency_engine.h"
#include "tuple/attribute.h"
#include "tuple/value_dictionary.h"
#include "util/result.h"

namespace bagc {

/// \brief One sealed, immutable serving generation of the bagcd server.
class EngineSnapshot {
 public:
  /// Everything a SEAL carries out of a session. Bags/names are aligned
  /// (names[i] names bags[i]); `dicts` must be a clone private to this
  /// snapshot (the session keeps interning into its own live set).
  struct BuildInputs {
    std::vector<std::string> names;
    std::vector<Bag> bags;
    AttributeCatalog catalog;
    std::shared_ptr<DictionarySet> dicts;
    /// Seal-time worker threads (marginal fills + pairwise sweep).
    size_t num_threads = 1;
    /// Minimum support rows before a sealed bag drops its row vector for
    /// the columnar-only serving form; 0 = engine default
    /// (EngineOptions::columnar_min_rows).
    size_t columnar_min_rows = 0;
    /// Canonicalize the snapshot's dictionary clone at seal
    /// (EngineOptions::canonicalize_dictionaries). The session's live
    /// dictionaries — and hence the ids a client streams — are untouched.
    bool canonicalize = false;
    /// Incremental re-seal: the previous generation whose sealed state
    /// this build may reuse, with prev_bag[i] the previous engine's index
    /// of this build's bag i (SealReuse::kNoPrev = changed/new bag).
    /// Reuse silently degrades to a full seal when canonicalizing (id
    /// remaps invalidate prior rows). The previous generation only needs
    /// to live through Build: reused marginals and column stores are
    /// shared_ptr slots the new engine then co-owns.
    std::shared_ptr<const EngineSnapshot> previous;
    std::vector<size_t> prev_bag;
  };

  /// Seals the engine eagerly, runs the pairwise sweep once, and returns
  /// the snapshot ready for lock-free concurrent queries. `seq` is the
  /// registry-assigned generation number surfaced in STATS.
  static Result<std::shared_ptr<const EngineSnapshot>> Build(BuildInputs inputs,
                                                             uint64_t seq);

  /// Derives the next generation from `previous` by one bag's delta
  /// stream (ConsistencyEngine::MakeDelta): every untouched bag's sealed
  /// state — column stores, marginal slots, cached pair verdicts — is
  /// adopted by refcount bump, the mutated bag's dirty marginal slots are
  /// adjusted in place, and the fresh pairwise sweep re-compares only the
  /// dirty pairs. Catalog, names, and the dictionary clone are shared
  /// with `previous` (the caller must guarantee no value was interned in
  /// between). `outcome`, when non-null, receives the dirty pair set and
  /// changed-slot count. `previous` is untouched: readers mid-query on it
  /// finish bit-identically. Fails without side effects when the delta is
  /// invalid (a DELETE below zero multiplicity is OutOfRange).
  static Result<std::shared_ptr<const EngineSnapshot>> BuildDelta(
      const std::shared_ptr<const EngineSnapshot>& previous, size_t bag_index,
      const std::vector<BagDelta>& deltas, uint64_t seq,
      DeltaOutcome* outcome = nullptr);

  /// BuildDelta generalized to an atomic multi-bag batch
  /// (ConsistencyEngine::MakeDeltaBatch): one published generation
  /// carries every listed bag's deltas, with the same adoption/
  /// invalidation contract per bag, and a failure in any bag builds
  /// nothing. This is the COMMIT verb's builder and the WAL replay
  /// unit — one WAL record becomes one BuildDeltaBatch call.
  static Result<std::shared_ptr<const EngineSnapshot>> BuildDeltaBatch(
      const std::shared_ptr<const EngineSnapshot>& previous,
      const DeltaBatch& batch, uint64_t seq, DeltaOutcome* outcome = nullptr);

  /// Resolves a wire bag reference: a digits-only token is an index,
  /// anything else a LOAD-time bag name.
  Result<size_t> ResolveBag(const std::string& token) const;

  /// Lemma 2(2) for bags i and j, from the sealed marginal cache.
  Result<bool> TwoBag(size_t i, size_t j) const;

  /// The pairwise sweep verdict (computed once at Build).
  const PairwiseVerdict& Pairwise() const { return pairwise_; }

  /// Global consistency; the cyclic-schema decision runs at most once
  /// (memoized under a mutex — concurrent callers block, later ones read).
  Result<bool> Global() const;

  /// K-wise consistency with the first failing subset, from the sealed
  /// cache (paper §4).
  Result<bool> KWise(size_t k,
                     std::optional<std::vector<size_t>>* failing_subset) const;

  /// Two-bag witness (minimal per §5.3 when `minimal`); nullopt when
  /// inconsistent. Each call uses a private flow arena, so concurrent
  /// witness queries never contend.
  Result<std::optional<Bag>> Witness(size_t i, size_t j, bool minimal) const;

  /// Serializes a result bag in the bag IO format, decoding ids through
  /// the snapshot's dictionaries.
  std::string WriteBagText(const Bag& bag) const;

  uint64_t seq() const { return seq_; }
  /// The catalog/dictionaries the snapshot decodes results through —
  /// for encoders (binary witness frames) that mirror WriteBagText.
  const AttributeCatalog& catalog() const { return catalog_; }
  const DictionarySet* dictionaries() const { return dicts_.get(); }
  size_t num_bags() const { return names_.size(); }
  const std::string& bag_name(size_t i) const { return names_[i]; }
  /// Total support rows across the sealed collection.
  size_t support_rows() const { return support_rows_; }
  /// Distinct dictionary values the snapshot can decode.
  size_t dict_values() const { return dicts_ == nullptr ? 0 : dicts_->total_size(); }
  uint64_t marginal_fills() const { return engine_->marginal_fills(); }
  /// Approximate resident bytes of the sealed engine (registry budget /
  /// eviction accounting; stable across identical rebuilds).
  size_t approx_bytes() const { return approx_bytes_; }
  /// The engine's own sealed-state bytes (bags, marginal caches, column
  /// stores) without the dictionary estimate — the STATS `sealed_bytes`
  /// key, the number the columnar-only seal is meant to shrink.
  size_t sealed_bytes() const { return engine_->ApproxSealedBytes(); }
  /// The sealed engine — the reuse source for an incremental re-seal.
  const ConsistencyEngine* engine() const { return &*engine_; }

 private:
  EngineSnapshot() = default;

  uint64_t seq_ = 0;
  std::vector<std::string> names_;
  std::unordered_map<std::string, size_t> name_index_;
  AttributeCatalog catalog_;
  std::shared_ptr<const DictionarySet> dicts_;
  size_t support_rows_ = 0;
  size_t approx_bytes_ = 0;
  PairwiseVerdict pairwise_;
  // Mutated only by Global() under global_mu_ (memoization); everything
  // else uses the engine's const sealed surface.
  mutable std::optional<ConsistencyEngine> engine_;
  mutable std::mutex global_mu_;
};

}  // namespace bagc
