// Shared immutable engine snapshots for the bagcd server. A SEAL builds
// one EngineSnapshot — an eagerly sealed ConsistencyEngine plus the
// catalog/dictionary state needed to decode results back to external
// values — and publishes it in the server's SnapshotRegistry. Sessions
// answering queries take shared ownership of the current snapshot for
// the duration of one query, so a concurrent RESET or re-SEAL swaps the
// registry pointer atomically while every in-flight query finishes on
// the snapshot it started with; the old engine is destroyed when the
// last such query releases it.
//
// Thread-safety: every query method on EngineSnapshot is const and safe
// for any number of concurrent callers. TwoBag/Pairwise/KWise/Witness
// ride the engine's const sealed surface (see consistency_engine.h);
// Global() memoizes the possibly-exponential cyclic decision under a
// private mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/consistency_engine.h"
#include "tuple/attribute.h"
#include "tuple/value_dictionary.h"
#include "util/result.h"

namespace bagc {

/// \brief One sealed, immutable serving generation of the bagcd server.
class EngineSnapshot {
 public:
  /// Everything a SEAL carries out of a session. Bags/names are aligned
  /// (names[i] names bags[i]); `dicts` must be a clone private to this
  /// snapshot (the session keeps interning into its own live set).
  struct BuildInputs {
    std::vector<std::string> names;
    std::vector<Bag> bags;
    AttributeCatalog catalog;
    std::shared_ptr<DictionarySet> dicts;
    /// Seal-time worker threads (marginal fills + pairwise sweep).
    size_t num_threads = 1;
    /// Canonicalize the snapshot's dictionary clone at seal
    /// (EngineOptions::canonicalize_dictionaries). The session's live
    /// dictionaries — and hence the ids a client streams — are untouched.
    bool canonicalize = false;
  };

  /// Seals the engine eagerly, runs the pairwise sweep once, and returns
  /// the snapshot ready for lock-free concurrent queries. `seq` is the
  /// registry-assigned generation number surfaced in STATS.
  static Result<std::shared_ptr<const EngineSnapshot>> Build(BuildInputs inputs,
                                                             uint64_t seq);

  /// Resolves a wire bag reference: a digits-only token is an index,
  /// anything else a LOAD-time bag name.
  Result<size_t> ResolveBag(const std::string& token) const;

  /// Lemma 2(2) for bags i and j, from the sealed marginal cache.
  Result<bool> TwoBag(size_t i, size_t j) const;

  /// The pairwise sweep verdict (computed once at Build).
  const PairwiseVerdict& Pairwise() const { return pairwise_; }

  /// Global consistency; the cyclic-schema decision runs at most once
  /// (memoized under a mutex — concurrent callers block, later ones read).
  Result<bool> Global() const;

  /// K-wise consistency with the first failing subset, from the sealed
  /// cache (paper §4).
  Result<bool> KWise(size_t k,
                     std::optional<std::vector<size_t>>* failing_subset) const;

  /// Two-bag witness (minimal per §5.3 when `minimal`); nullopt when
  /// inconsistent. Each call uses a private flow arena, so concurrent
  /// witness queries never contend.
  Result<std::optional<Bag>> Witness(size_t i, size_t j, bool minimal) const;

  /// Serializes a result bag in the bag IO format, decoding ids through
  /// the snapshot's dictionaries.
  std::string WriteBagText(const Bag& bag) const;

  uint64_t seq() const { return seq_; }
  /// The catalog/dictionaries the snapshot decodes results through —
  /// for encoders (binary witness frames) that mirror WriteBagText.
  const AttributeCatalog& catalog() const { return catalog_; }
  const DictionarySet* dictionaries() const { return dicts_.get(); }
  size_t num_bags() const { return names_.size(); }
  const std::string& bag_name(size_t i) const { return names_[i]; }
  /// Total support rows across the sealed collection.
  size_t support_rows() const { return support_rows_; }
  /// Distinct dictionary values the snapshot can decode.
  size_t dict_values() const { return dicts_ == nullptr ? 0 : dicts_->total_size(); }
  uint64_t marginal_fills() const { return engine_->marginal_fills(); }

 private:
  EngineSnapshot() = default;

  uint64_t seq_ = 0;
  std::vector<std::string> names_;
  std::unordered_map<std::string, size_t> name_index_;
  AttributeCatalog catalog_;
  std::shared_ptr<const DictionarySet> dicts_;
  size_t support_rows_ = 0;
  PairwiseVerdict pairwise_;
  // Mutated only by Global() under global_mu_ (memoization); everything
  // else uses the engine's const sealed surface.
  mutable std::optional<ConsistencyEngine> engine_;
  mutable std::mutex global_mu_;
};

/// \brief The server's session registry: active-session accounting plus
/// the atomically swapped current snapshot.
///
/// Publish/Clear replace the shared pointer under a mutex; Current()
/// hands out shared ownership, so readers never see a torn snapshot and
/// an old generation survives exactly as long as its last in-flight
/// query.
class SnapshotRegistry {
 public:
  /// The current snapshot, or nullptr before the first SEAL / after a
  /// RESET.
  std::shared_ptr<const EngineSnapshot> Current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  /// Atomically swaps in a new generation. Returns false — and publishes
  /// nothing — when a newer generation already won the race: two
  /// concurrent SEALs take their seq before their (possibly slow) builds,
  /// so the slower build of an OLDER seq must not overwrite the newer
  /// engine. The high-water mark survives Clear(), so a seal that began
  /// before a RESET cannot resurrect itself after it either.
  bool Publish(std::shared_ptr<const EngineSnapshot> snapshot) {
    std::lock_guard<std::mutex> lock(mu_);
    if (snapshot != nullptr) {
      // <= : seqs are unique per snapshot, and Clear() raises the mark TO
      // the highest issued seq precisely so that seal is refused too.
      if (snapshot->seq() <= published_high_water_) return false;
      published_high_water_ = snapshot->seq();
    }
    current_ = std::move(snapshot);
    return true;
  }

  /// Unpublishes the current generation (in-flight queries finish on it)
  /// and invalidates every seal already in flight: the high-water mark
  /// advances past all seqs issued so far, so a SEAL that took its seq
  /// before this RESET is refused at Publish — "no engine until the next
  /// SEAL" means a seal *initiated* after the reset.
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t issued = next_seq_.load(std::memory_order_relaxed) - 1;
    if (issued > published_high_water_) published_high_water_ = issued;
    current_ = nullptr;
  }

  /// Next SEAL generation number (1-based, monotone).
  uint64_t NextSeq() { return next_seq_.fetch_add(1, std::memory_order_relaxed); }

  // ---- STATS counters (relaxed; they are reporting, not synchronization).
  void SessionOpened() { sessions_.fetch_add(1, std::memory_order_relaxed); }
  void SessionClosed() { sessions_.fetch_sub(1, std::memory_order_relaxed); }
  void RecordSeal() { seals_.fetch_add(1, std::memory_order_relaxed); }
  void RecordReset() { resets_.fetch_add(1, std::memory_order_relaxed); }
  void RecordQuery() { queries_.fetch_add(1, std::memory_order_relaxed); }
  size_t sessions_active() const { return sessions_.load(std::memory_order_relaxed); }
  uint64_t seals_total() const { return seals_.load(std::memory_order_relaxed); }
  uint64_t resets_total() const { return resets_.load(std::memory_order_relaxed); }
  uint64_t queries_total() const { return queries_.load(std::memory_order_relaxed); }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const EngineSnapshot> current_;
  uint64_t published_high_water_ = 0;  // guarded by mu_
  std::atomic<uint64_t> next_seq_{1};
  std::atomic<size_t> sessions_{0};
  std::atomic<uint64_t> seals_{0};
  std::atomic<uint64_t> resets_{0};
  std::atomic<uint64_t> queries_{0};
};

}  // namespace bagc
