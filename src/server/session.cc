#include "server/session.h"

#include <algorithm>
#include <future>
#include <limits>
#include <map>
#include <sstream>
#include <utility>

#include "bag/bag_io.h"
#include "tuple/segment.h"

namespace bagc {

namespace {

// Ceiling for SEAL THREADS <n>: generous for any real host, small
// enough that thread-spawn can't exhaust process resources.
constexpr uint64_t kMaxSealThreads = 64;

// Ceilings on one buffered request body (DICT/LOAD/LOADU32 block): line
// count AND total bytes — the byte cap is what actually bounds a
// session's memory (4M near-max-length lines would otherwise buffer
// terabytes). Same hardening class as kMaxSealThreads: no single request
// may take the daemon down. Overflowing blocks answer E_RANGE.
constexpr size_t kMaxBodyLines = size_t{1} << 22;  // ~4.2M rows per block
constexpr size_t kMaxBodyBytes = size_t{1} << 28;  // 256 MiB per block

// Cumulative ceilings on ONE open BEGIN/COMMIT transaction, enforced as
// each block buffers (E_RANGE before anything is staged). The body caps
// above are per block, so without these a transaction could buffer
// unbounded INSERT/DELETE blocks — per-session memory exhaustion, and a
// COMMIT whose single WAL record over-runs kWalMaxRecordPayload. The
// byte cap counts the WAL encoding (12-byte block header + per row
// arity×u32 ids + i64 delta) and leaves headroom for the record's
// 20-byte payload header, so any transaction that buffers is guaranteed
// to journal as one record.
constexpr size_t kMaxTxnRows = kMaxBodyLines;
constexpr size_t kMaxTxnWalBytes = (size_t{kWalMaxRecordPayload}) - 64;

// Longest accepted text-mode input line. Real rows are tens of bytes; a
// peer that streams megabytes without a newline is abusing the framing,
// and the session must bound its buffering rather than grow until the
// OOM killer takes every session down.
constexpr size_t kMaxLineBytes = 1 << 20;

// Runs `fn` on the server's shared query pool (the fan-out point for
// concurrent sessions) and blocks this session until it finishes; inline
// when the server runs without a pool.
template <typename Fn>
auto RunOn(ThreadPool* pool, Fn&& fn) -> decltype(fn()) {
  if (pool == nullptr) return fn();
  using R = decltype(fn());
  auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
  std::future<R> future = task->get_future();
  pool->Submit([task] { (*task)(); });
  return future.get();
}

// Splits serialized bag text into response body lines (drops the final
// empty fragment from the trailing newline).
std::vector<std::string> SplitBody(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream iss(text);
  std::string line;
  while (std::getline(iss, line)) lines.push_back(line);
  return lines;
}

// The protocol-v1 text encoder. Its output is pinned byte-for-byte by
// the docs/PROTOCOL.md transcript replay — change nothing here without
// changing the transcript.
class TextSink final : public ServerSession::ResponseSink {
 public:
  explicit TextSink(std::vector<std::string>* out) : out_(out) {}

  void Ok(const std::string& rest) override { out_->push_back("OK " + rest); }

  void Err(WireError error, const std::string& message) override {
    out_->push_back(WireErrLine(error, message));
  }

  void Verdict(bool consistent, const std::vector<size_t>& indices) override {
    if (consistent) {
      out_->push_back("OK CONSISTENT");
      return;
    }
    std::string line = "OK INCONSISTENT";
    for (size_t index : indices) line += " " + std::to_string(index);
    out_->push_back(std::move(line));
  }

  void WitnessNone() override { out_->push_back("OK NONE"); }

  void WitnessBag(const Bag& bag, const EngineSnapshot& snapshot) override {
    out_->push_back("OK WITNESS " + std::to_string(bag.SupportSize()));
    for (std::string& line : SplitBody(snapshot.WriteBagText(bag))) {
      out_->push_back(std::move(line));
    }
    out_->push_back(std::string(kWireEnd));
  }

  void Stats(const std::vector<std::pair<std::string, uint64_t>>& kv) override {
    out_->push_back("OK STATS");
    for (const auto& [key, value] : kv) {
      out_->push_back(key + " " + std::to_string(value));
    }
    out_->push_back(std::string(kWireEnd));
  }

 private:
  std::vector<std::string>* out_;
};

// The binary encoder: one frame per response, appended straight into
// the transport's output buffer (no per-response allocation on the
// query path beyond the payload scratch).
class BinarySink final : public ServerSession::ResponseSink {
 public:
  explicit BinarySink(std::string* out) : out_(out) {}

  void Ok(const std::string& rest) override {
    WireAppendFrame(out_, kFrameOk, rest);
  }

  void Err(WireError error, const std::string& message) override {
    std::string payload;
    payload.reserve(1 + message.size());
    payload.push_back(static_cast<char>(WireErrorTag(error)));
    payload += message;
    WireAppendFrame(out_, kFrameErr, payload);
  }

  void Verdict(bool consistent, const std::vector<size_t>& indices) override {
    std::string payload;
    payload.reserve(5 + 4 * indices.size());
    payload.push_back(consistent ? '\1' : '\0');
    WireAppendU32(&payload, static_cast<uint32_t>(indices.size()));
    for (size_t index : indices) {
      WireAppendU32(&payload, static_cast<uint32_t>(index));
    }
    WireAppendFrame(out_, kFrameVerdict, payload);
  }

  void WitnessNone() override {
    WireAppendFrame(out_, kFrameWitnessBag, std::string_view("\0", 1));
  }

  void WitnessBag(const Bag& bag, const EngineSnapshot& snapshot) override {
    // Rows ship as decoded externals, exactly the values the text body
    // prints: under SEAL CANONICAL the snapshot's id space differs from
    // the session's, so raw ids would be undecodable client-side.
    const Schema& schema = bag.schema();
    const DictionarySet* dicts = snapshot.dictionaries();
    std::vector<const ValueDictionary*> slot_dict(schema.arity(), nullptr);
    for (size_t i = 0; i < schema.arity(); ++i) {
      if (dicts != nullptr) slot_dict[i] = dicts->find_dict(schema.at(i));
    }
    std::string payload;
    payload.push_back('\1');
    WireAppendU32(&payload, static_cast<uint32_t>(schema.arity()));
    for (size_t i = 0; i < schema.arity(); ++i) {
      WireAppendString(&payload, snapshot.catalog().Name(schema.at(i)));
    }
    WireAppendU64(&payload, bag.SupportSize());
    for (size_t e = 0; e < bag.SupportSize(); ++e) {
      Tuple tuple = bag.RowAt(e);  // witness decode: designated cold path
      for (size_t i = 0; i < schema.arity(); ++i) {
        const ValueDictionary* d = slot_dict[i];
        if (d != nullptr && tuple.id(i) < d->size()) {
          WireAppendString(&payload, d->ExternalOf(tuple.id(i)));
        } else {
          WireAppendString(&payload, std::to_string(tuple.at(i)));
        }
      }
      WireAppendU64(&payload, bag.MultiplicityAt(e));
    }
    WireAppendFrame(out_, kFrameWitnessBag, payload);
  }

  void Stats(const std::vector<std::pair<std::string, uint64_t>>& kv) override {
    std::string payload;
    WireAppendU32(&payload, static_cast<uint32_t>(kv.size()));
    for (const auto& [key, value] : kv) {
      WireAppendString(&payload, key);
      WireAppendU64(&payload, value);
    }
    WireAppendFrame(out_, kFrameStats, payload);
  }

 private:
  std::string* out_;
};

// Server-side twin of the client's wire-value validation: a dictionary
// value that a binary DICT frame can carry but the text framing cannot
// represent (whitespace, '#', empty) would corrupt every later text
// response that decodes it, so it is refused at the boundary.
bool WireRepresentable(std::string_view value) {
  return !value.empty() &&
         value.find_first_of("# \t\r\n") == std::string_view::npos;
}

}  // namespace

ServerSession::ServerSession(CollectionRegistry* registry,
                             ThreadPool* query_pool)
    : registry_(registry),
      query_pool_(query_pool),
      collection_(registry->Default()) {
  registry_->SessionOpened();
}

ServerSession::~ServerSession() { registry_->SessionClosed(); }

ServerSession::Outcome ServerSession::HandleData(std::string_view data,
                                                 std::string* out) {
  inbuf_.append(data.data(), data.size());
  size_t consumed = 0;
  Outcome outcome = Outcome::kContinue;
  while (outcome == Outcome::kContinue) {
    if (mode_ == Mode::kText) {
      size_t nl = inbuf_.find('\n', consumed);
      // The line-length ceiling applies whether or not the newline has
      // arrived yet: a complete over-long line (one read with a late
      // newline) is exactly as abusive as a partial one, and must not
      // slip through just because it parsed as a whole line.
      if (nl == std::string::npos ? inbuf_.size() - consumed > kMaxLineBytes
                                  : nl - consumed > kMaxLineBytes) {
        *out += WireErrLine(WireError::kRange,
                            "input line exceeds " +
                                std::to_string(kMaxLineBytes) + " bytes");
        *out += '\n';
        outcome = Outcome::kCloseConnection;
        break;
      }
      if (nl == std::string::npos) break;
      std::string line = inbuf_.substr(consumed, nl - consumed);
      consumed = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      std::vector<std::string> responses;
      outcome = HandleLine(line, &responses);
      for (const std::string& response : responses) {
        *out += response;
        *out += '\n';
      }
      // A successful UPGRADE flips mode_ mid-buffer; the loop re-checks
      // it each iteration, so bytes already received parse as frames.
    } else {
      if (inbuf_.size() - consumed < kWireFrameHeaderBytes) break;
      WireCursor header(
          std::string_view(inbuf_).substr(consumed, kWireFrameHeaderBytes));
      uint32_t payload_len = 0;
      uint8_t opcode = 0;
      header.U32(&payload_len);
      header.U8(&opcode);
      if (payload_len > kWireMaxFramePayload) {
        // No resync is possible mid-frame; refuse and close.
        BinarySink sink(out);
        sink.Err(WireError::kRange,
                 "frame payload exceeds " +
                     std::to_string(kWireMaxFramePayload) + " bytes");
        outcome = Outcome::kCloseConnection;
        break;
      }
      if (inbuf_.size() - consumed - kWireFrameHeaderBytes < payload_len) break;
      std::string_view payload(inbuf_.data() + consumed + kWireFrameHeaderBytes,
                               payload_len);
      consumed += kWireFrameHeaderBytes + payload_len;
      BinarySink sink(out);
      outcome = HandleFrame(opcode, payload, &sink);
    }
  }
  inbuf_.erase(0, consumed);
  return outcome;
}

ServerSession::Outcome ServerSession::HandleLine(const std::string& line,
                                                 std::vector<std::string>* out) {
  TextSink sink(out);
  if (body_ != Body::kNone) {
    if (WireStrip(line) == kWireEnd) {
      FinishBody(&sink);
    } else if (body_lines_.size() >= kMaxBodyLines ||
               body_bytes_ + line.size() > kMaxBodyBytes) {
      body_overflow_ = true;  // keep consuming, stop buffering
    } else {
      body_bytes_ += line.size();
      body_lines_.push_back(line);
    }
    return Outcome::kContinue;
  }
  std::vector<std::string> tokens = WireTokens(line);
  if (tokens.empty()) return Outcome::kContinue;  // blank / comment line
  return HandleCommand(tokens, &sink);
}

std::vector<std::string> ServerSession::HandleScript(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream iss(text);
  std::string line;
  while (std::getline(iss, line)) {
    if (HandleLine(line, &out) != Outcome::kContinue) break;
  }
  return out;
}

ServerSession::Outcome ServerSession::HandleCommand(
    const std::vector<std::string>& tokens, ResponseSink* sink) {
  const std::string& cmd = tokens[0];
  // A transaction pins the bag set and the bound collection: only the
  // delta verbs, queries, and framing commands run while one is open.
  // RESET stays legal (it discards the transaction with everything
  // else); body-carrying commands are refused in FinishBody so their
  // blocks are still consumed through END.
  if (txn_active_ && (cmd == "SEAL" || cmd == "LOADSEG" || cmd == "DROP" ||
                      cmd == "ATTACH" || cmd == "DETACH")) {
    sink->Err(WireError::kState,
              cmd + " is not allowed inside a transaction; COMMIT or RESET "
                    "first");
    return Outcome::kContinue;
  }
  if (WireCommandHasBody(cmd)) {
    if (mode_ == Mode::kBinary) {
      // Bodies are line-framed; inside the binary framing they travel as
      // DICT/ROWS frames instead.
      const std::string frame =
          cmd == "DICT" ? "DICT"
                        : (cmd == "INSERT" || cmd == "DELETE" ? cmd : "ROWS");
      sink->Err(WireError::kState,
                cmd + " blocks are not available in binary mode; ship a " +
                    frame + " frame");
      return Outcome::kContinue;
    }
    // Enter body mode even on a bad header: the body is always consumed
    // through END before the (possibly ERR) response, so a bad header
    // can never desynchronize the line stream.
    body_ = cmd == "DICT"     ? Body::kDict
            : cmd == "LOAD"   ? Body::kLoadText
            : cmd == "INSERT" ? Body::kInsert
            : cmd == "DELETE" ? Body::kDelete
                              : Body::kLoadU32;
    body_header_ = tokens;
    body_lines_.clear();
    return Outcome::kContinue;
  }
  if (cmd == "SEAL") {
    HandleSeal(tokens, sink);
  } else if (cmd == "BEGIN") {
    HandleBegin(tokens, sink);
  } else if (cmd == "COMMIT") {
    HandleCommit(tokens, sink);
  } else if (cmd == "TWOBAG") {
    HandleTwoBag(tokens, sink);
  } else if (cmd == "PAIRWISE") {
    HandlePairwise(sink);
  } else if (cmd == "GLOBAL") {
    HandleGlobal(sink);
  } else if (cmd == "KWISE") {
    HandleKWise(tokens, sink);
  } else if (cmd == "WITNESS") {
    HandleWitness(tokens, sink);
  } else if (cmd == "STATS") {
    HandleStats(tokens, sink);
  } else if (cmd == "RESET") {
    HandleReset(tokens, sink);
  } else if (cmd == "ATTACH") {
    HandleAttach(tokens, sink);
  } else if (cmd == "DETACH") {
    HandleDetach(tokens, sink);
  } else if (cmd == "DROP") {
    HandleDrop(tokens, sink);
  } else if (cmd == "HELLO") {
    HandleHello(tokens, sink);
  } else if (cmd == "UPGRADE") {
    HandleUpgrade(tokens, sink);
  } else if (cmd == "TEXT") {
    // Idempotent downgrade: the OK is the last frame (or a plain text
    // line when already in text mode); everything after is lines.
    sink->Ok("TEXT");
    mode_ = Mode::kText;
  } else if (cmd == "LOADSEG") {
    HandleLoadSeg(tokens, sink);
  } else if (cmd == "QUIT") {
    sink->Ok("BYE");
    return Outcome::kCloseConnection;
  } else if (cmd == "SHUTDOWN") {
    sink->Ok("BYE");
    return Outcome::kShutdownServer;
  } else {
    sink->Err(WireError::kParse, "unknown command '" + cmd + "'");
  }
  return Outcome::kContinue;
}

ServerSession::Outcome ServerSession::HandleFrame(uint8_t opcode,
                                                  std::string_view payload,
                                                  ResponseSink* sink) {
  switch (opcode) {
    case kFrameCmd: {
      std::vector<std::string> tokens = WireTokens(std::string(payload));
      if (tokens.empty()) {
        sink->Err(WireError::kParse, "empty command frame");
        return Outcome::kContinue;
      }
      return HandleCommand(tokens, sink);
    }
    case kFrameDict:
      HandleDictFrame(payload, sink);
      return Outcome::kContinue;
    case kFrameRows:
      HandleRowsFrame(payload, sink);
      return Outcome::kContinue;
    case kFrameInsert:
    case kFrameDelete:
      HandleMutateFrame(opcode == kFrameInsert, payload, sink);
      return Outcome::kContinue;
    case kFrameBegin:
      if (!payload.empty()) {
        sink->Err(WireError::kParse, "BEGIN frame carries no payload");
        return Outcome::kContinue;
      }
      HandleBegin({"BEGIN"}, sink);
      return Outcome::kContinue;
    case kFrameCommit:
      if (!payload.empty()) {
        sink->Err(WireError::kParse, "COMMIT frame carries no payload");
        return Outcome::kContinue;
      }
      HandleCommit({"COMMIT"}, sink);
      return Outcome::kContinue;
    case kFrameTwoBag: {
      WireCursor cur(payload);
      uint32_t i = 0, j = 0;
      if (!cur.U32(&i) || !cur.U32(&j) || !cur.AtEnd()) {
        sink->Err(WireError::kParse, "TWOBAG frame carries u32 i, u32 j");
        return Outcome::kContinue;
      }
      QueryTwoBag(i, j, sink);
      return Outcome::kContinue;
    }
    case kFramePairwise:
      if (!payload.empty()) {
        sink->Err(WireError::kParse, "PAIRWISE frame carries no payload");
        return Outcome::kContinue;
      }
      HandlePairwise(sink);
      return Outcome::kContinue;
    case kFrameGlobal:
      if (!payload.empty()) {
        sink->Err(WireError::kParse, "GLOBAL frame carries no payload");
        return Outcome::kContinue;
      }
      HandleGlobal(sink);
      return Outcome::kContinue;
    case kFrameKWise: {
      WireCursor cur(payload);
      uint32_t k = 0;
      if (!cur.U32(&k) || !cur.AtEnd()) {
        sink->Err(WireError::kParse, "KWISE frame carries u32 k");
        return Outcome::kContinue;
      }
      QueryKWise(k, sink);
      return Outcome::kContinue;
    }
    case kFrameWitness: {
      WireCursor cur(payload);
      uint32_t i = 0, j = 0;
      uint8_t minimal = 0;
      if (!cur.U32(&i) || !cur.U32(&j) || !cur.U8(&minimal) || !cur.AtEnd() ||
          minimal > 1) {
        sink->Err(WireError::kParse,
                  "WITNESS frame carries u32 i, u32 j, u8 minimal");
        return Outcome::kContinue;
      }
      QueryWitness(i, j, minimal == 1, sink);
      return Outcome::kContinue;
    }
    default:
      // The frame boundary is still known, so the stream can continue.
      sink->Err(WireError::kParse,
                "unknown frame opcode " + std::to_string(opcode));
      return Outcome::kContinue;
  }
}

void ServerSession::FinishBody(ResponseSink* sink) {
  Body body = body_;
  body_ = Body::kNone;
  if (body_overflow_) {
    body_overflow_ = false;
    sink->Err(WireError::kRange,
              "request body exceeds " + std::to_string(kMaxBodyLines) +
                  " lines or " + std::to_string(kMaxBodyBytes) + " bytes");
  } else if (txn_active_ && body != Body::kInsert && body != Body::kDelete) {
    // The block was consumed through END (stream stays in sync); only
    // the application is refused.
    sink->Err(WireError::kState,
              body_header_[0] +
                  " is not allowed inside a transaction; COMMIT or RESET "
                  "first");
  } else if (body == Body::kDict) {
    FinishDict(sink);
  } else if (body == Body::kInsert || body == Body::kDelete) {
    FinishMutate(body == Body::kInsert, sink);
  } else {
    FinishLoad(sink);
  }
  body_header_.clear();
  body_lines_.clear();
  body_bytes_ = 0;
}

void ServerSession::FinishDict(ResponseSink* sink) {
  if (body_header_.size() != 3) {
    sink->Err(WireError::kParse, "usage: DICT <attribute> <count>");
    return;
  }
  const std::string& attr_name = body_header_[1];
  Result<uint64_t> count = WireParseUint(body_header_[2]);
  if (!count.ok()) {
    sink->ErrStatus(count.status());
    return;
  }
  std::vector<std::string> values;
  values.reserve(body_lines_.size());
  for (const std::string& raw : body_lines_) {
    std::vector<std::string> tokens = WireTokens(raw);
    if (tokens.empty()) continue;  // blank / comment line
    if (tokens.size() != 1) {
      sink->Err(WireError::kParse, "dictionary values are one token per line");
      return;
    }
    values.push_back(std::move(tokens[0]));
  }
  if (values.size() != *count) {
    sink->Err(WireError::kParse,
              "DICT " + attr_name + " declared " + std::to_string(*count) +
                  " values but shipped " + std::to_string(values.size()));
    return;
  }
  AttrId attr = catalog_.Intern(attr_name);
  Status loaded = dicts_->dict(attr).BulkLoad(values);
  if (!loaded.ok()) {
    sink->ErrStatus(loaded);
    return;
  }
  sink->Ok("DICT " + attr_name + " " + std::to_string(values.size()));
}

bool ServerSession::CheckNewBagName(const std::string& name,
                                    ResponseSink* sink) {
  bool all_digits = !name.empty();
  for (char c : name) all_digits = all_digits && c >= '0' && c <= '9';
  if (name.empty() || all_digits) {
    sink->Err(WireError::kParse,
              "bag name '" + name +
                  "' must not be all digits (reserved for indices)");
    return false;
  }
  if (HasBag(name)) {
    sink->Err(WireError::kState, "bag '" + name + "' is already loaded");
    return false;
  }
  return true;
}

void ServerSession::FinishLoad(ResponseSink* sink) {
  bool raw_ids = body_header_[0] == "LOADU32";
  if (body_header_.size() < 3) {
    sink->Err(WireError::kParse,
              "usage: " + body_header_[0] + " <bag-name> <attribute...>");
    return;
  }
  const std::string& name = body_header_[1];
  if (!CheckNewBagName(name, sink)) return;
  // Reassemble a bag IO block and hand it to the matching parser arm.
  std::vector<std::string> lines;
  lines.reserve(body_lines_.size() + 2);
  std::string header = "bag";
  for (size_t i = 2; i < body_header_.size(); ++i) header += " " + body_header_[i];
  lines.push_back(std::move(header));
  // Move, don't copy: body_lines_ is discarded by FinishBody right after,
  // and a second per-row string copy here would undo the allocation-free
  // row scanning one layer down.
  for (std::string& raw : body_lines_) lines.push_back(std::move(raw));
  lines.emplace_back("end");
  size_t pos = 0;
  Result<Bag> bag =
      raw_ids ? ParseBagU32(lines, &pos, &catalog_, *dicts_)
              : ParseBag(lines, &pos, &catalog_, dicts_.get());
  if (!bag.ok()) {
    sink->ErrStatus(bag.status());
    return;
  }
  if (pos != lines.size()) {
    // A stray lowercase "end" row terminated the block early.
    sink->Err(WireError::kParse,
              "unexpected content after 'end' in a row block");
    return;
  }
  size_t support = bag->SupportSize();
  AddBag(name, std::move(bag).value());
  sink->Ok(body_header_[0] + " " + name + " " + std::to_string(support) +
           " rows");
}

void ServerSession::HandleDictFrame(std::string_view payload,
                                    ResponseSink* sink) {
  WireCursor cur(payload);
  std::string_view attr_view;
  uint32_t count = 0;
  if (!cur.String(&attr_view) || !cur.U32(&count)) {
    sink->Err(WireError::kParse, "malformed DICT frame header");
    return;
  }
  if (!WireRepresentable(attr_view)) {
    sink->Err(WireError::kParse,
              "attribute name is not representable on the wire");
    return;
  }
  std::vector<std::string> values;
  values.reserve(count);
  for (uint32_t v = 0; v < count; ++v) {
    std::string_view value;
    if (!cur.String(&value)) {
      sink->Err(WireError::kParse,
                "DICT frame declared " + std::to_string(count) +
                    " values but carries " + std::to_string(v));
      return;
    }
    if (!WireRepresentable(value)) {
      sink->Err(WireError::kParse,
                "value '" + std::string(value) +
                    "' is not representable on the wire");
      return;
    }
    values.emplace_back(value);
  }
  if (!cur.AtEnd()) {
    sink->Err(WireError::kParse, "trailing bytes in DICT frame");
    return;
  }
  std::string attr_name(attr_view);
  AttrId attr = catalog_.Intern(attr_name);
  Status loaded = dicts_->dict(attr).BulkLoad(values);
  if (!loaded.ok()) {
    sink->ErrStatus(loaded);
    return;
  }
  sink->Ok("DICT " + attr_name + " " + std::to_string(values.size()));
}

void ServerSession::HandleRowsFrame(std::string_view payload,
                                    ResponseSink* sink) {
  WireCursor cur(payload);
  std::string_view name_view;
  uint32_t ncols = 0;
  if (!cur.String(&name_view) || !cur.U32(&ncols) || ncols == 0) {
    sink->Err(WireError::kParse, "malformed ROWS frame header");
    return;
  }
  std::vector<std::string> col_names;
  col_names.reserve(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    std::string_view col;
    if (!cur.String(&col)) {
      sink->Err(WireError::kParse, "malformed ROWS frame header");
      return;
    }
    col_names.emplace_back(col);
  }
  uint64_t nrows = 0;
  if (!cur.U64(&nrows)) {
    sink->Err(WireError::kParse, "malformed ROWS frame header");
    return;
  }
  // Fixed-width remainder: exactly nrows × (ncols ids + one mult).
  uint64_t row_bytes = uint64_t{ncols} * 4 + 8;
  if (nrows != cur.remaining() / row_bytes ||
      cur.remaining() % row_bytes != 0) {
    sink->Err(WireError::kParse,
              "ROWS frame declares " + std::to_string(nrows) +
                  " rows but carries " + std::to_string(cur.remaining()) +
                  " bytes of row data");
    return;
  }
  std::string name(name_view);
  if (!CheckNewBagName(name, sink)) return;
  // Scatter the row-major wire layout into column-major scratch so the
  // shared columnar ingest (and its validation) runs on it directly.
  std::vector<ValueId> cols(size_t{ncols} * nrows);
  std::vector<uint64_t> mults(nrows);
  for (uint64_t r = 0; r < nrows; ++r) {
    for (uint32_t c = 0; c < ncols; ++c) {
      uint32_t id = 0;
      cur.U32(&id);
      cols[size_t{c} * nrows + r] = id;
    }
    cur.U64(&mults[r]);
  }
  std::vector<const ValueId*> ptrs(ncols);
  for (uint32_t c = 0; c < ncols; ++c) ptrs[c] = cols.data() + size_t{c} * nrows;
  ColumnView view(std::move(ptrs), nrows);
  Result<Bag> bag =
      BagFromU32Columns(col_names, view, mults.data(), &catalog_, *dicts_);
  if (!bag.ok()) {
    sink->ErrStatus(bag.status());
    return;
  }
  size_t support = bag->SupportSize();
  AddBag(name, std::move(bag).value());
  sink->Ok("LOADU32 " + name + " " + std::to_string(support) + " rows");
}

// Resolves an INSERT/DELETE column header against the loaded bag: the
// named attributes must spell exactly the bag's schema (any order), every
// attribute needs a dictionary (same rule as LOADU32), and
// slot_of_column[c] maps wire column c to its schema slot. Emits the
// error and returns false when unusable.
static bool ResolveMutateColumns(AttributeCatalog* catalog,
                                 const DictionarySet& dicts,
                                 const Schema& bag_schema,
                                 const std::vector<std::string>& col_names,
                                 std::vector<const ValueDictionary*>* column_dict,
                                 std::vector<size_t>* slot_of_column,
                                 ServerSession::ResponseSink* sink) {
  std::vector<AttrId> attrs;
  attrs.reserve(col_names.size());
  for (const std::string& n : col_names) attrs.push_back(catalog->Intern(n));
  Schema schema{attrs};
  if (schema.arity() != attrs.size()) {
    sink->Err(WireError::kParse, "duplicate attribute in delta header");
    return false;
  }
  if (schema != bag_schema) {
    sink->Err(WireError::kParse,
              "delta attributes do not match the bag's schema");
    return false;
  }
  column_dict->assign(attrs.size(), nullptr);
  slot_of_column->assign(attrs.size(), 0);
  for (size_t c = 0; c < attrs.size(); ++c) {
    (*column_dict)[c] = dicts.find_dict(attrs[c]);
    if ((*column_dict)[c] == nullptr) {
      sink->Err(WireError::kState,
                "u32 rows require a dictionary for attribute '" + col_names[c] +
                    "'; ship its DICT block first");
      return false;
    }
    (*slot_of_column)[c] = *schema.IndexOf(attrs[c]);
  }
  return true;
}

void ServerSession::FinishMutate(bool insert, ResponseSink* sink) {
  const std::string verb = insert ? "INSERT" : "DELETE";
  if (body_header_.size() < 3) {
    sink->Err(WireError::kParse,
              "usage: " + verb + " <bag-name> <attribute...>");
    return;
  }
  const std::string& name = body_header_[1];
  size_t bag_index = bag_names_.size();
  for (size_t i = 0; i < bag_names_.size(); ++i) {
    if (bag_names_[i] == name) {
      bag_index = i;
      break;
    }
  }
  if (bag_index == bag_names_.size()) {
    sink->Err(WireError::kState,
              "bag '" + name + "' is not loaded in this session; " + verb +
                  " mutates loaded bags (LOAD, LOADU32, or LOADSEG it first)");
    return;
  }
  std::vector<std::string> col_names(body_header_.begin() + 2,
                                     body_header_.end());
  std::vector<const ValueDictionary*> column_dict;
  std::vector<size_t> slot_of_column;
  if (!ResolveMutateColumns(&catalog_, *dicts_, bags_[bag_index].schema(),
                            col_names, &column_dict, &slot_of_column, sink)) {
    return;
  }
  const size_t arity = col_names.size();
  std::vector<BagDelta> deltas;
  size_t rows = 0;
  std::vector<ValueId> row(arity);
  for (const std::string& raw : body_lines_) {
    std::vector<std::string> tokens = WireTokens(raw);
    if (tokens.empty()) continue;  // blank / comment line
    if (tokens.size() != arity + 2 || tokens[arity] != ":") {
      sink->Err(WireError::kParse, verb + " rows are '<" +
                                       std::to_string(arity) +
                                       " ids> : <count>'");
      return;
    }
    for (size_t c = 0; c < arity; ++c) {
      Result<uint64_t> id = WireParseUint(tokens[c]);
      if (!id.ok() || *id > std::numeric_limits<uint32_t>::max()) {
        sink->Err(WireError::kParse, "row ids are u32 integers");
        return;
      }
      if (*id >= column_dict[c]->size()) {
        sink->Err(WireError::kRange,
                  "row id " + tokens[c] + " was never issued for attribute '" +
                      col_names[c] + "' (dictionary has " +
                      std::to_string(column_dict[c]->size()) + " values)");
        return;
      }
      row[slot_of_column[c]] = static_cast<ValueId>(*id);
    }
    Result<uint64_t> count = WireParseUint(tokens[arity + 1]);
    if (!count.ok()) {
      sink->ErrStatus(count.status());
      return;
    }
    if (*count > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
      sink->Err(WireError::kRange, "delta count exceeds int64");
      return;
    }
    ++rows;
    if (*count == 0) continue;  // zero rows net nothing, as in LOADU32
    int64_t amount = static_cast<int64_t>(*count);
    deltas.push_back({Tuple::OfIds(row), insert ? amount : -amount});
  }
  CommitDelta(bag_index, insert, std::move(deltas), rows, sink);
}

void ServerSession::HandleMutateFrame(bool insert, std::string_view payload,
                                      ResponseSink* sink) {
  const std::string verb = insert ? "INSERT" : "DELETE";
  WireCursor cur(payload);
  std::string_view name_view;
  uint32_t ncols = 0;
  if (!cur.String(&name_view) || !cur.U32(&ncols) || ncols == 0) {
    sink->Err(WireError::kParse, "malformed " + verb + " frame header");
    return;
  }
  std::vector<std::string> col_names;
  col_names.reserve(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    std::string_view col;
    if (!cur.String(&col)) {
      sink->Err(WireError::kParse, "malformed " + verb + " frame header");
      return;
    }
    col_names.emplace_back(col);
  }
  uint64_t nrows = 0;
  if (!cur.U64(&nrows)) {
    sink->Err(WireError::kParse, "malformed " + verb + " frame header");
    return;
  }
  // Fixed-width remainder, exactly the ROWS frame grammar.
  uint64_t row_bytes = uint64_t{ncols} * 4 + 8;
  if (nrows != cur.remaining() / row_bytes ||
      cur.remaining() % row_bytes != 0) {
    sink->Err(WireError::kParse,
              verb + " frame declares " + std::to_string(nrows) +
                  " rows but carries " + std::to_string(cur.remaining()) +
                  " bytes of row data");
    return;
  }
  std::string name(name_view);
  size_t bag_index = bag_names_.size();
  for (size_t i = 0; i < bag_names_.size(); ++i) {
    if (bag_names_[i] == name) {
      bag_index = i;
      break;
    }
  }
  if (bag_index == bag_names_.size()) {
    sink->Err(WireError::kState,
              "bag '" + name + "' is not loaded in this session; " + verb +
                  " mutates loaded bags (LOAD, LOADU32, or LOADSEG it first)");
    return;
  }
  std::vector<const ValueDictionary*> column_dict;
  std::vector<size_t> slot_of_column;
  if (!ResolveMutateColumns(&catalog_, *dicts_, bags_[bag_index].schema(),
                            col_names, &column_dict, &slot_of_column, sink)) {
    return;
  }
  std::vector<BagDelta> deltas;
  deltas.reserve(nrows);
  std::vector<ValueId> row(ncols);
  for (uint64_t r = 0; r < nrows; ++r) {
    for (uint32_t c = 0; c < ncols; ++c) {
      uint32_t id = 0;
      cur.U32(&id);
      if (id >= column_dict[c]->size()) {
        sink->Err(WireError::kRange,
                  "row id " + std::to_string(id) +
                      " was never issued for attribute '" + col_names[c] +
                      "' (dictionary has " +
                      std::to_string(column_dict[c]->size()) + " values)");
        return;
      }
      row[slot_of_column[c]] = id;
    }
    uint64_t count = 0;
    cur.U64(&count);
    if (count > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
      sink->Err(WireError::kRange, "delta count exceeds int64");
      return;
    }
    if (count == 0) continue;
    int64_t amount = static_cast<int64_t>(count);
    deltas.push_back({Tuple::OfIds(row), insert ? amount : -amount});
  }
  CommitDelta(bag_index, insert, std::move(deltas),
              static_cast<size_t>(nrows), sink);
}

void ServerSession::CommitDelta(size_t bag_index, bool insert,
                                std::vector<BagDelta> deltas, size_t rows,
                                ResponseSink* sink) {
  const std::string verb = insert ? "INSERT" : "DELETE";
  const std::string& name = bag_names_[bag_index];
  if (txn_active_) {
    // Inside BEGIN/COMMIT the delta only buffers; validation against
    // multiplicities (and publication) happens atomically at COMMIT.
    // Cumulative caps first: the body caps are per block, so only this
    // check bounds a whole transaction's memory — and guarantees the
    // batch encodes into ONE WAL record at COMMIT. A refused block
    // leaves the transaction open and untouched: COMMIT what is
    // buffered, or RESET.
    const size_t row_cap = txn_row_cap_for_test_ > 0
                               ? txn_row_cap_for_test_ : kMaxTxnRows;
    const size_t byte_cap = txn_byte_cap_for_test_ > 0
                                ? txn_byte_cap_for_test_ : kMaxTxnWalBytes;
    const size_t arity = bags_[bag_index].schema().arity();
    const size_t entry_bytes = 12 + deltas.size() * (arity * 4 + 8);
    if (txn_rows_ + rows > row_cap ||
        txn_wal_bytes_ + entry_bytes > byte_cap) {
      sink->Err(WireError::kRange,
                "transaction exceeds " + std::to_string(row_cap) +
                    " buffered rows or " + std::to_string(byte_cap) +
                    " encoded bytes; COMMIT what is buffered or RESET");
      return;
    }
    BagDeltas entry;
    entry.bag_index = bag_index;
    entry.deltas = std::move(deltas);
    txn_batch_.push_back(std::move(entry));
    txn_rows_ += rows;
    txn_wal_bytes_ += entry_bytes;
    sink->Ok(verb + " " + name + " " + std::to_string(rows) +
             " rows buffered");
    return;
  }
  DeltaBatch batch(1);
  batch[0].bag_index = bag_index;
  batch[0].deltas = std::move(deltas);
  CommitBatch(std::move(batch), rows, verb + " " + name, sink);
}

void ServerSession::CommitBatch(DeltaBatch batch, size_t rows,
                                const std::string& label, ResponseSink* sink) {
  const std::string verb = label.substr(0, label.find(' '));
  // Incremental-publish lineage: the bound collection's chain currently
  // ends in the generation this session sealed, every loaded bag is
  // bit-identical to it (epoch at or before that seal, same name), and
  // no value was interned since — the generations then share one
  // immutable dictionary clone, so the batch's ids mean the same thing
  // in both. These are the SEAL reuse conditions demanded for ALL bags:
  // the batch must be the only change the new generation carries.
  bool lineage = last_sealed_ != nullptr && !last_seal_canonical_ &&
                 last_seal_dicts_ != nullptr &&
                 last_seal_dicts_->total_size() == dicts_->total_size() &&
                 bags_.size() == last_sealed_->num_bags();
  for (size_t b = 0; lineage && b < bags_.size(); ++b) {
    lineage = bag_epochs_[b] <= last_seal_epoch_ &&
              last_sealed_->bag_name(b) == bag_names_[b];
  }
  if (lineage) {
    if (registry_->Peek(collection_.get()) == nullptr) {
      // Evicted under the memory budget: no resident generation to
      // derive from, and a delta commit must not trigger a reload (Peek
      // semantics). Retryable: any query reloads the collection from its
      // segment, or SEAL republishes it fresh.
      sink->Err(WireError::kState,
                "collection '" + collection_->name() +
                    "' is not resident; run a query (reload) or SEAL, then "
                    "retry the " +
                    verb);
      return;
    }
    DeltaOutcome outcome;
    Result<std::shared_ptr<const EngineSnapshot>> next =
        EngineSnapshot::BuildDeltaBatch(last_sealed_, batch,
                                        collection_->NextSeq(), &outcome);
    if (!next.ok()) {
      // A DELETE below zero multiplicity (E_RANGE) in ANY bag: nothing
      // was mutated or published — every loaded bag, the lineage, and
      // the served generation are all intact.
      sink->ErrStatus(next.status());
      return;
    }
    Status published =
        registry_->PublishDelta(collection_.get(), *next, batch);
    if (!published.ok()) {
      // A concurrent publication won the chain (retryable E_STATE);
      // readers are on the newer generation, this session is untouched.
      sink->ErrStatus(published);
      return;
    }
    // The session's staged copies now match the published generation, so
    // the next SEAL or delta keeps full reuse lineage.
    std::vector<size_t> mutated;
    for (const BagDeltas& bd : batch) {
      if (std::find(mutated.begin(), mutated.end(), bd.bag_index) ==
          mutated.end()) {
        mutated.push_back(bd.bag_index);
      }
    }
    for (size_t bi : mutated) {
      bags_[bi] = (*next)->engine()->collection().bag(bi);
      bag_epochs_[bi] = ++epoch_counter_;
    }
    last_sealed_ = *next;
    last_seal_epoch_ = epoch_counter_;
    // The published rows diverged from whatever segment staged them.
    staged_seg_path_.clear();
    registry_->RecordDelta();
    std::string rest = label + " " + std::to_string(rows) + " rows " +
                       std::to_string(bags_.size()) + " bags";
    size_t reused = bags_.size() - mutated.size();
    if (reused > 0) rest += " " + std::to_string(reused) + " reused";
    sink->Ok(rest);
    return;
  }
  // No publishable lineage (nothing sealed yet, canonical seal,
  // dictionary growth, or a changed bag set): mutate the loaded bags
  // only, all-or-nothing across the whole batch. Nets are merged per bag
  // first — the same netting ApplyDeltaBatch performs — so a bag listed
  // twice behaves identically on both paths. The epoch bumps mark the
  // touched bags changed, so the next SEAL refills exactly those.
  std::map<size_t, std::map<Tuple, int64_t>> nets;
  for (BagDeltas& bd : batch) {
    std::map<Tuple, int64_t>& bag_net = nets[bd.bag_index];
    for (BagDelta& d : bd.deltas) {
      int64_t& slot = bag_net[std::move(d.row)];
      if (__builtin_add_overflow(slot, d.delta, &slot)) {
        sink->Err(WireError::kRange, "delta for one row overflows int64");
        return;
      }
    }
  }
  std::map<size_t, Bag> staged;
  for (auto& [bi, bag_net] : nets) {
    std::vector<std::pair<Tuple, int64_t>> bag_deltas;
    bag_deltas.reserve(bag_net.size());
    for (auto& [row, delta] : bag_net) {
      if (delta != 0) bag_deltas.emplace_back(row, delta);
    }
    if (bag_deltas.empty()) continue;
    Bag next_bag = bags_[bi];
    Status applied = next_bag.ApplyRowDeltas(bag_deltas);
    if (!applied.ok()) {
      sink->ErrStatus(applied);  // all-or-nothing: every loaded bag intact
      return;
    }
    staged.emplace(bi, std::move(next_bag));
  }
  for (auto& [bi, bag] : staged) {
    bags_[bi] = std::move(bag);
    bag_epochs_[bi] = ++epoch_counter_;
  }
  staged_seg_path_.clear();
  registry_->RecordDelta();
  sink->Ok(label + " " + std::to_string(rows) + " rows staged");
}

void ServerSession::HandleBegin(const std::vector<std::string>& tokens,
                                ResponseSink* sink) {
  if (tokens.size() != 1) {
    sink->Err(WireError::kParse, "usage: BEGIN");
    return;
  }
  if (txn_active_) {
    sink->Err(WireError::kState,
              "a transaction is already open; COMMIT or RESET first");
    return;
  }
  txn_active_ = true;
  txn_batch_.clear();
  txn_rows_ = 0;
  txn_wal_bytes_ = 0;
  sink->Ok("BEGIN");
}

void ServerSession::HandleCommit(const std::vector<std::string>& tokens,
                                 ResponseSink* sink) {
  if (tokens.size() != 1) {
    sink->Err(WireError::kParse, "usage: COMMIT");
    return;
  }
  if (!txn_active_) {
    sink->Err(WireError::kState, "no transaction is open; BEGIN first");
    return;
  }
  // COMMIT ends the transaction either way: on an error the batch was
  // not applied anywhere (all-or-nothing) and the client re-BEGINs.
  DeltaBatch batch = std::move(txn_batch_);
  size_t rows = txn_rows_;
  txn_active_ = false;
  txn_batch_.clear();
  txn_rows_ = 0;
  txn_wal_bytes_ = 0;
  if (batch.empty()) {
    sink->Ok("COMMIT 0 rows");
    return;
  }
  CommitBatch(std::move(batch), rows, "COMMIT", sink);
}

void ServerSession::HandleHello(const std::vector<std::string>& tokens,
                                ResponseSink* sink) {
  if (tokens.size() != 1) {
    sink->Err(WireError::kParse, "usage: HELLO");
    return;
  }
  sink->Ok("HELLO proto " + std::to_string(kWireProtocolVersion) + " frames " +
           std::to_string(kWireFrameVersion));
}

void ServerSession::HandleUpgrade(const std::vector<std::string>& tokens,
                                  ResponseSink* sink) {
  if (tokens.size() != 2 || tokens[1] != "BINARY") {
    sink->Err(WireError::kParse, "usage: UPGRADE BINARY");
    return;
  }
  if (mode_ == Mode::kBinary) {
    sink->Err(WireError::kState, "session is already in binary mode");
    return;
  }
  // The OK is the last text line; every byte after it frames.
  sink->Ok("UPGRADE BINARY");
  mode_ = Mode::kBinary;
}

void ServerSession::HandleLoadSeg(const std::vector<std::string>& tokens,
                                  ResponseSink* sink) {
  if (tokens.size() != 2) {
    sink->Err(WireError::kParse, "usage: LOADSEG <path>");
    return;
  }
  Result<SegmentReader> mapped = SegmentReader::Map(tokens[1]);
  if (!mapped.ok()) {
    sink->ErrStatus(mapped.status());
    return;
  }
  // Shared so each borrowed bag pins the mapping: the loaded bags serve
  // the mmap'd columns in place (no row vector, no column copy) until a
  // mutation de-seals them. The reader dies with the last such bag.
  auto reader = std::make_shared<SegmentReader>(std::move(mapped).value());
  // The segment ships its own dictionaries, so the session must not
  // already hold one for any of its attributes (the same no-merge rule
  // as a second DICT block). Validate everything, and build every bag
  // against the segment's own dictionary set, BEFORE touching session
  // state: a failed LOADSEG leaves the session unchanged.
  std::vector<AttrId> attr_ids(reader->num_attrs());
  std::vector<std::vector<std::string>> attr_values(reader->num_attrs());
  DictionarySet seg_dicts;
  for (size_t a = 0; a < reader->num_attrs(); ++a) {
    std::string name(reader->attr_name(a));
    if (!WireRepresentable(name)) {
      sink->Err(WireError::kParse,
                "segment attribute name is not representable on the wire");
      return;
    }
    attr_ids[a] = catalog_.Intern(name);
    if (dicts_->find_dict(attr_ids[a]) != nullptr) {
      sink->Err(WireError::kState,
                "attribute '" + name +
                    "' already has a dictionary in this session");
      return;
    }
    attr_values[a] = reader->AttrValues(a);
    Status loaded = seg_dicts.dict(attr_ids[a]).BulkLoad(attr_values[a]);
    if (!loaded.ok()) {
      sink->ErrStatus(loaded);
      return;
    }
  }
  std::vector<std::string> new_names;
  std::vector<Bag> new_bags;
  size_t total_support = 0;
  for (size_t b = 0; b < reader->num_bags(); ++b) {
    std::string name(reader->bag_name(b));
    if (!CheckNewBagName(name, sink)) return;
    for (const std::string& prior : new_names) {
      if (prior == name) {
        sink->Err(WireError::kState,
                  "bag '" + name + "' appears twice in the segment");
        return;
      }
    }
    std::vector<std::string> col_names;
    col_names.reserve(reader->bag_arity(b));
    for (size_t c = 0; c < reader->bag_arity(b); ++c) {
      col_names.emplace_back(reader->attr_name(reader->bag_attr(b, c)));
    }
    // Zero parse, zero copy: a well-formed segment is already in sealed
    // columnar shape, so the bag borrows the mapped columns in place.
    // Segments the strict borrow validation rejects (permuted columns,
    // zero mults) fall back to the copying ingest, which re-sorts and
    // reports the precise error.
    ColumnStore columns = reader->Columns(b);
    Result<Bag> bag =
        BagBorrowU32Columns(col_names, columns.View(), reader->Mults(b),
                            &catalog_, seg_dicts, reader);
    if (!bag.ok()) {
      bag = BagFromU32Columns(col_names, columns.View(), reader->Mults(b),
                              &catalog_, seg_dicts);
    }
    if (!bag.ok()) {
      sink->ErrStatus(bag.status());
      return;
    }
    total_support += bag->SupportSize();
    new_names.push_back(std::move(name));
    new_bags.push_back(std::move(bag).value());
  }
  // Commit. Moving the validated segment dictionaries into the live set
  // hands over the exact id space the bags were built against without
  // re-hashing a single string (the target dictionaries are empty —
  // pre-checked above — so the move is the whole state).
  for (size_t a = 0; a < reader->num_attrs(); ++a) {
    dicts_->dict(attr_ids[a]) = std::move(seg_dicts.dict(attr_ids[a]));
  }
  bool was_empty = bags_.empty();
  for (size_t b = 0; b < new_names.size(); ++b) {
    AddBag(std::move(new_names[b]), std::move(new_bags[b]));
  }
  // When this segment IS the whole loaded state, a later SEAL can
  // register it as the collection's lazy reload source (a reload
  // re-derives bit-identical results); AddBag cleared any prior staging.
  if (was_empty) staged_seg_path_ = tokens[1];
  sink->Ok("LOADSEG " + std::to_string(reader->num_bags()) + " bags " +
           std::to_string(total_support) + " rows");
}

void ServerSession::HandleSeal(const std::vector<std::string>& tokens,
                               ResponseSink* sink) {
  bool canonical = false;
  bool full = false;
  size_t num_threads = 1;
  for (size_t i = 1; i < tokens.size(); ++i) {
    if (tokens[i] == "CANONICAL") {
      canonical = true;
    } else if (tokens[i] == "FULL") {
      full = true;
    } else if (tokens[i] == "THREADS" && i + 1 < tokens.size()) {
      Result<uint64_t> n = WireParseUint(tokens[i + 1]);
      if (!n.ok() || *n == 0) {
        sink->Err(WireError::kParse, "THREADS needs a positive integer");
        return;
      }
      // One protocol line must not be able to crash the daemon: spawning
      // an absurd worker count throws std::system_error out of
      // std::thread and terminates the process for every client.
      if (*n > kMaxSealThreads) {
        sink->Err(WireError::kRange,
                  "THREADS must be at most " + std::to_string(kMaxSealThreads));
        return;
      }
      num_threads = static_cast<size_t>(*n);
      ++i;
    } else {
      sink->Err(WireError::kParse,
                "usage: SEAL [CANONICAL] [FULL] [THREADS <n>]");
      return;
    }
  }
  if (bags_.empty()) {
    sink->Err(WireError::kState, "no bags loaded; LOAD or LOADU32 first");
    return;
  }
  EngineSnapshot::BuildInputs inputs;
  inputs.names = bag_names_;
  inputs.bags = bags_;  // the session keeps its copies for later re-seals
  inputs.catalog = catalog_;
  // The snapshot seals through a private clone: the session's live set —
  // and every id a client has streamed or will stream — stays untouched,
  // even under CANONICAL (which reorders only the clone). Re-seals skip
  // the clone when no value was interned since the last one (dictionary
  // growth is append-only, so an equal total count means identical
  // content) — the generations then share one immutable DictionarySet.
  if (!canonical && last_seal_dicts_ != nullptr &&
      last_seal_dicts_->total_size() == dicts_->total_size()) {
    inputs.dicts = last_seal_dicts_;
  } else {
    inputs.dicts = std::make_shared<DictionarySet>(dicts_->Clone());
  }
  std::shared_ptr<DictionarySet> seal_dicts = inputs.dicts;
  inputs.num_threads = num_threads;
  inputs.columnar_min_rows = registry_->options().columnar_min_rows;
  inputs.canonicalize = canonical;
  // Incremental re-seal: bags unchanged since the last generation this
  // session sealed (epoch at or before that seal, same name then) reuse
  // its marginal cache and column stores — a k-of-m touch refills O(k·m)
  // pairs instead of O(m²). Canonical seals on either side remap ids and
  // disqualify reuse; FULL opts out explicitly (benchmark baseline).
  size_t reused = 0;
  if (!full && !canonical && !last_seal_canonical_ && last_sealed_ != nullptr) {
    inputs.prev_bag.assign(bags_.size(), SealReuse::kNoPrev);
    for (size_t i = 0; i < bags_.size(); ++i) {
      if (bag_epochs_[i] > last_seal_epoch_) continue;  // changed since
      for (size_t p = 0; p < last_sealed_->num_bags(); ++p) {
        if (last_sealed_->bag_name(p) == bag_names_[i]) {
          inputs.prev_bag[i] = p;
          ++reused;
          break;
        }
      }
    }
    if (reused > 0) inputs.previous = last_sealed_;
    else inputs.prev_bag.clear();
  }
  Result<std::shared_ptr<const EngineSnapshot>> snapshot =
      EngineSnapshot::Build(std::move(inputs), collection_->NextSeq());
  if (!snapshot.ok()) {
    sink->ErrStatus(snapshot.status());
    return;
  }
  Status published = registry_->Publish(collection_.get(), *snapshot,
                                        staged_seg_path_, canonical);
  if (!published.ok()) {
    sink->ErrStatus(published);
    return;
  }
  last_sealed_ = *snapshot;
  last_seal_epoch_ = epoch_counter_;
  last_seal_canonical_ = canonical;
  // A canonical seal remapped the clone's ids in place; it can never
  // seed a later generation.
  last_seal_dicts_ = canonical ? nullptr : std::move(seal_dicts);
  registry_->RecordSeal();
  std::string rest = "SEAL " + std::to_string(bags_.size()) + " bags";
  // The suffix appears only on actual reuse, so full-seal responses stay
  // byte-identical to protocol v1.
  if (reused > 0) rest += " " + std::to_string(reused) + " reused";
  sink->Ok(rest);
}

void ServerSession::HandleReset(const std::vector<std::string>& tokens,
                                ResponseSink* sink) {
  bool hard = tokens.size() == 2 && tokens[1] == "HARD";
  if (tokens.size() > 2 || (tokens.size() == 2 && !hard)) {
    sink->Err(WireError::kParse, "usage: RESET [HARD]");
    return;
  }
  bag_names_.clear();
  bags_.clear();
  bag_epochs_.clear();
  ForgetSealLineage();
  // An open transaction dies with the bags it was staged against.
  txn_active_ = false;
  txn_batch_.clear();
  txn_rows_ = 0;
  txn_wal_bytes_ = 0;
  if (hard) {
    catalog_ = AttributeCatalog();
    dicts_ = std::make_shared<DictionarySet>();
  }
  // In-flight queries of other sessions finish on the old snapshot; new
  // queries on this collection see no engine until the next SEAL.
  registry_->Clear(collection_.get());
  registry_->RecordReset();
  sink->Ok(hard ? "RESET HARD" : "RESET");
}

void ServerSession::HandleAttach(const std::vector<std::string>& tokens,
                                 ResponseSink* sink) {
  if (tokens.size() != 2) {
    sink->Err(WireError::kParse, "usage: ATTACH <collection>");
    return;
  }
  const std::string& name = tokens[1];
  // Collection names share the bag-name shape rules: non-empty, not all
  // digits (so STATS <name> and future addressing stay unambiguous).
  bool all_digits = !name.empty();
  for (char c : name) all_digits = all_digits && c >= '0' && c <= '9';
  if (name.empty() || all_digits) {
    sink->Err(WireError::kParse,
              "collection name '" + name + "' must not be all digits");
    return;
  }
  Result<std::shared_ptr<CollectionRegistry::Collection>> attached =
      registry_->Attach(name);
  if (!attached.ok()) {
    sink->ErrStatus(attached.status());
    return;
  }
  if (attached->get() != collection_.get()) {
    collection_ = *std::move(attached);
    // The previous chain's generations mean nothing to the new one.
    ForgetSealLineage();
  }
  sink->Ok("ATTACH " + name);
}

void ServerSession::HandleDetach(const std::vector<std::string>& tokens,
                                 ResponseSink* sink) {
  if (tokens.size() != 1) {
    sink->Err(WireError::kParse, "usage: DETACH");
    return;
  }
  if (collection_.get() != registry_->Default().get()) {
    collection_ = registry_->Default();
    ForgetSealLineage();
  }
  sink->Ok("DETACH");
}

void ServerSession::HandleDrop(const std::vector<std::string>& tokens,
                               ResponseSink* sink) {
  if (tokens.size() != 2) {
    sink->Err(WireError::kParse, "usage: DROP <bag-name>");
    return;
  }
  const std::string& name = tokens[1];
  for (size_t i = 0; i < bag_names_.size(); ++i) {
    if (bag_names_[i] != name) continue;
    bag_names_.erase(bag_names_.begin() + i);
    bags_.erase(bags_.begin() + i);
    bag_epochs_.erase(bag_epochs_.begin() + i);
    // The loaded set no longer matches any one segment; re-LOADing the
    // same name gets a fresh epoch, which is what marks it changed for
    // the next incremental SEAL.
    staged_seg_path_.clear();
    sink->Ok("DROP " + name);
    return;
  }
  sink->Err(WireError::kState, "bag '" + name + "' is not loaded");
}

void ServerSession::HandleStats(const std::vector<std::string>& tokens,
                                ResponseSink* sink) {
  if (tokens.size() > 2) {
    sink->Err(WireError::kParse, "usage: STATS [<collection>]");
    return;
  }
  if (tokens.size() == 2) {
    // Per-collection STATS: registry-level accounting, no snapshot
    // access (Peek semantics — reporting must not trigger a reload).
    std::shared_ptr<CollectionRegistry::Collection> c =
        registry_->Find(tokens[1]);
    if (c == nullptr) {
      sink->Err(WireError::kState, "no collection named '" + tokens[1] + "'");
      return;
    }
    CollectionRegistry::CollectionStats s = registry_->Stats(c.get());
    std::vector<std::pair<std::string, uint64_t>> kv;
    kv.emplace_back("resident", s.resident ? 1 : 0);
    kv.emplace_back("reloadable", s.reloadable ? 1 : 0);
    kv.emplace_back("bytes", s.bytes);
    kv.emplace_back("generation", s.generation);
    kv.emplace_back("last_access", s.last_access);
    kv.emplace_back("hits", s.hits);
    kv.emplace_back("evictions", s.evictions);
    kv.emplace_back("reloads", s.reloads);
    sink->Stats(kv);
    return;
  }
  // Global STATS reports the bound collection's snapshot without LRU or
  // reload side effects; the first ten keys are pinned by protocol v1
  // (docs/PROTOCOL.md transcript), new registry keys append after them.
  std::shared_ptr<const EngineSnapshot> snapshot =
      registry_->Peek(collection_.get());
  std::vector<std::pair<std::string, uint64_t>> kv;
  kv.emplace_back("proto", kWireProtocolVersion);
  kv.emplace_back("sessions", registry_->sessions_active());
  kv.emplace_back("seals", registry_->seals_total());
  kv.emplace_back("resets", registry_->resets_total());
  kv.emplace_back("queries", registry_->queries_total());
  kv.emplace_back("snapshot", snapshot == nullptr ? 0 : snapshot->seq());
  kv.emplace_back("bags", snapshot == nullptr ? 0 : snapshot->num_bags());
  kv.emplace_back("support", snapshot == nullptr ? 0 : snapshot->support_rows());
  kv.emplace_back("dict_values",
                  snapshot == nullptr ? 0 : snapshot->dict_values());
  kv.emplace_back("marginal_fills",
                  snapshot == nullptr ? 0 : snapshot->marginal_fills());
  kv.emplace_back("collections", registry_->num_collections());
  kv.emplace_back("evictions", registry_->evictions_total());
  kv.emplace_back("deltas", registry_->deltas_total());
  kv.emplace_back("sealed_bytes",
                  snapshot == nullptr ? 0 : snapshot->sealed_bytes());
  kv.emplace_back("wal_records", registry_->wal_records_total());
  kv.emplace_back("wal_bytes", registry_->wal_bytes_total());
  kv.emplace_back("replayed_generations",
                  registry_->replayed_generations_total());
  sink->Stats(kv);
}

std::shared_ptr<const EngineSnapshot> ServerSession::SnapshotOrErr(
    ResponseSink* sink) {
  Result<std::shared_ptr<const EngineSnapshot>> snapshot =
      registry_->Acquire(collection_.get());
  if (!snapshot.ok()) {
    // Evicted with no reload source, or the segment reload failed.
    sink->ErrStatus(snapshot.status());
    return nullptr;
  }
  if (*snapshot == nullptr) {
    sink->Err(WireError::kState, "no sealed engine; SEAL a collection first");
  }
  return *snapshot;
}

bool ServerSession::HasBag(const std::string& name) const {
  for (const std::string& existing : bag_names_) {
    if (existing == name) return true;
  }
  return false;
}

void ServerSession::AddBag(std::string name, Bag bag) {
  bag_names_.push_back(std::move(name));
  bags_.push_back(std::move(bag));
  bag_epochs_.push_back(++epoch_counter_);
  // The loaded set grew past whatever segment staged it.
  staged_seg_path_.clear();
}

void ServerSession::ForgetSealLineage() {
  last_sealed_ = nullptr;
  last_seal_epoch_ = 0;
  last_seal_canonical_ = false;
  last_seal_dicts_ = nullptr;
  staged_seg_path_.clear();
}

void ServerSession::HandleTwoBag(const std::vector<std::string>& tokens,
                                 ResponseSink* sink) {
  if (tokens.size() != 3) {
    sink->Err(WireError::kParse, "usage: TWOBAG <i> <j>");
    return;
  }
  std::shared_ptr<const EngineSnapshot> snapshot = SnapshotOrErr(sink);
  if (snapshot == nullptr) return;
  Result<size_t> i = snapshot->ResolveBag(tokens[1]);
  Result<size_t> j = snapshot->ResolveBag(tokens[2]);
  if (!i.ok() || !j.ok()) {
    sink->ErrStatus(i.ok() ? j.status() : i.status());
    return;
  }
  registry_->RecordQuery();
  Result<bool> verdict =
      RunOn(query_pool_, [&] { return snapshot->TwoBag(*i, *j); });
  if (!verdict.ok()) {
    sink->ErrStatus(verdict.status());
    return;
  }
  sink->Verdict(*verdict, {});
}

void ServerSession::QueryTwoBag(size_t i, size_t j, ResponseSink* sink) {
  std::shared_ptr<const EngineSnapshot> snapshot = SnapshotOrErr(sink);
  if (snapshot == nullptr) return;
  registry_->RecordQuery();
  Result<bool> verdict =
      RunOn(query_pool_, [&] { return snapshot->TwoBag(i, j); });
  if (!verdict.ok()) {
    sink->ErrStatus(verdict.status());
    return;
  }
  sink->Verdict(*verdict, {});
}

void ServerSession::HandlePairwise(ResponseSink* sink) {
  std::shared_ptr<const EngineSnapshot> snapshot = SnapshotOrErr(sink);
  if (snapshot == nullptr) return;
  registry_->RecordQuery();
  const PairwiseVerdict& verdict = snapshot->Pairwise();  // sealed at Build
  if (verdict.consistent) {
    sink->Verdict(true, {});
  } else {
    sink->Verdict(false,
                  {verdict.witness_pair.first, verdict.witness_pair.second});
  }
}

void ServerSession::HandleGlobal(ResponseSink* sink) {
  std::shared_ptr<const EngineSnapshot> snapshot = SnapshotOrErr(sink);
  if (snapshot == nullptr) return;
  registry_->RecordQuery();
  Result<bool> verdict = RunOn(query_pool_, [&] { return snapshot->Global(); });
  if (!verdict.ok()) {
    sink->ErrStatus(verdict.status());
    return;
  }
  sink->Verdict(*verdict, {});
}

void ServerSession::HandleKWise(const std::vector<std::string>& tokens,
                                ResponseSink* sink) {
  if (tokens.size() != 2) {
    sink->Err(WireError::kParse, "usage: KWISE <k>");
    return;
  }
  Result<uint64_t> k = WireParseUint(tokens[1]);
  if (!k.ok()) {
    sink->ErrStatus(k.status());
    return;
  }
  QueryKWise(static_cast<size_t>(*k), sink);
}

void ServerSession::QueryKWise(size_t k, ResponseSink* sink) {
  std::shared_ptr<const EngineSnapshot> snapshot = SnapshotOrErr(sink);
  if (snapshot == nullptr) return;
  registry_->RecordQuery();
  std::optional<std::vector<size_t>> failing;
  Result<bool> verdict =
      RunOn(query_pool_, [&] { return snapshot->KWise(k, &failing); });
  if (!verdict.ok()) {
    sink->ErrStatus(verdict.status());
    return;
  }
  if (*verdict) {
    sink->Verdict(true, {});
  } else {
    sink->Verdict(false, *failing);
  }
}

void ServerSession::HandleWitness(const std::vector<std::string>& tokens,
                                  ResponseSink* sink) {
  bool minimal = tokens.size() == 4 && tokens[3] == "MINIMAL";
  if (tokens.size() != 3 && !minimal) {
    sink->Err(WireError::kParse, "usage: WITNESS <i> <j> [MINIMAL]");
    return;
  }
  std::shared_ptr<const EngineSnapshot> snapshot = SnapshotOrErr(sink);
  if (snapshot == nullptr) return;
  Result<size_t> i = snapshot->ResolveBag(tokens[1]);
  Result<size_t> j = snapshot->ResolveBag(tokens[2]);
  if (!i.ok() || !j.ok()) {
    sink->ErrStatus(i.ok() ? j.status() : i.status());
    return;
  }
  QueryWitness(*i, *j, minimal, sink);
}

void ServerSession::QueryWitness(size_t i, size_t j, bool minimal,
                                 ResponseSink* sink) {
  std::shared_ptr<const EngineSnapshot> snapshot = SnapshotOrErr(sink);
  if (snapshot == nullptr) return;
  registry_->RecordQuery();
  Result<std::optional<Bag>> witness =
      RunOn(query_pool_, [&] { return snapshot->Witness(i, j, minimal); });
  if (!witness.ok()) {
    sink->ErrStatus(witness.status());
    return;
  }
  if (!witness->has_value()) {
    sink->WitnessNone();
    return;
  }
  sink->WitnessBag(**witness, *snapshot);
}

}  // namespace bagc
