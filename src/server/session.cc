#include "server/session.h"

#include <future>
#include <sstream>
#include <utility>

#include "bag/bag_io.h"

namespace bagc {

namespace {

// Ceiling for SEAL THREADS <n>: generous for any real host, small
// enough that thread-spawn can't exhaust process resources.
constexpr uint64_t kMaxSealThreads = 64;

// Ceilings on one buffered request body (DICT/LOAD/LOADU32 block): line
// count AND total bytes — the byte cap is what actually bounds a
// session's memory (4M near-max-length lines would otherwise buffer
// terabytes). Same hardening class as kMaxSealThreads: no single request
// may take the daemon down. Overflowing blocks answer E_RANGE.
constexpr size_t kMaxBodyLines = size_t{1} << 22;  // ~4.2M rows per block
constexpr size_t kMaxBodyBytes = size_t{1} << 28;  // 256 MiB per block

// Runs `fn` on the server's shared query pool (the fan-out point for
// concurrent sessions) and blocks this session until it finishes; inline
// when the server runs without a pool.
template <typename Fn>
auto RunOn(ThreadPool* pool, Fn&& fn) -> decltype(fn()) {
  if (pool == nullptr) return fn();
  using R = decltype(fn());
  auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
  std::future<R> future = task->get_future();
  pool->Submit([task] { (*task)(); });
  return future.get();
}

// Splits serialized bag text into response body lines (drops the final
// empty fragment from the trailing newline).
std::vector<std::string> SplitBody(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream iss(text);
  std::string line;
  while (std::getline(iss, line)) lines.push_back(line);
  return lines;
}

}  // namespace

ServerSession::ServerSession(SnapshotRegistry* registry, ThreadPool* query_pool)
    : registry_(registry), query_pool_(query_pool) {
  registry_->SessionOpened();
}

ServerSession::~ServerSession() { registry_->SessionClosed(); }

ServerSession::Outcome ServerSession::HandleLine(const std::string& line,
                                                 std::vector<std::string>* out) {
  if (body_ != Body::kNone) {
    if (WireStrip(line) == kWireEnd) {
      FinishBody(out);
    } else if (body_lines_.size() >= kMaxBodyLines ||
               body_bytes_ + line.size() > kMaxBodyBytes) {
      body_overflow_ = true;  // keep consuming, stop buffering
    } else {
      body_bytes_ += line.size();
      body_lines_.push_back(line);
    }
    return Outcome::kContinue;
  }
  std::vector<std::string> tokens = WireTokens(line);
  if (tokens.empty()) return Outcome::kContinue;  // blank / comment line
  return HandleCommand(tokens, out);
}

std::vector<std::string> ServerSession::HandleScript(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream iss(text);
  std::string line;
  while (std::getline(iss, line)) {
    if (HandleLine(line, &out) != Outcome::kContinue) break;
  }
  return out;
}

ServerSession::Outcome ServerSession::HandleCommand(
    const std::vector<std::string>& tokens, std::vector<std::string>* out) {
  const std::string& cmd = tokens[0];
  if (WireCommandHasBody(cmd)) {
    // Enter body mode even on a bad header: the body is always consumed
    // through END before the (possibly ERR) response, so a bad header
    // can never desynchronize the line stream.
    body_ = cmd == "DICT" ? Body::kDict
                          : (cmd == "LOAD" ? Body::kLoadText : Body::kLoadU32);
    body_header_ = tokens;
    body_lines_.clear();
    return Outcome::kContinue;
  }
  if (cmd == "SEAL") {
    HandleSeal(tokens, out);
  } else if (cmd == "TWOBAG") {
    HandleTwoBag(tokens, out);
  } else if (cmd == "PAIRWISE") {
    HandlePairwise(out);
  } else if (cmd == "GLOBAL") {
    HandleGlobal(out);
  } else if (cmd == "KWISE") {
    HandleKWise(tokens, out);
  } else if (cmd == "WITNESS") {
    HandleWitness(tokens, out);
  } else if (cmd == "STATS") {
    HandleStats(out);
  } else if (cmd == "RESET") {
    HandleReset(tokens, out);
  } else if (cmd == "QUIT") {
    out->push_back("OK BYE");
    return Outcome::kCloseConnection;
  } else if (cmd == "SHUTDOWN") {
    out->push_back("OK BYE");
    return Outcome::kShutdownServer;
  } else {
    out->push_back(
        WireErrLine(WireError::kParse, "unknown command '" + cmd + "'"));
  }
  return Outcome::kContinue;
}

void ServerSession::FinishBody(std::vector<std::string>* out) {
  Body body = body_;
  body_ = Body::kNone;
  if (body_overflow_) {
    body_overflow_ = false;
    out->push_back(WireErrLine(
        WireError::kRange,
        "request body exceeds " + std::to_string(kMaxBodyLines) + " lines or " +
            std::to_string(kMaxBodyBytes) + " bytes"));
  } else if (body == Body::kDict) {
    FinishDict(out);
  } else {
    FinishLoad(out);
  }
  body_header_.clear();
  body_lines_.clear();
  body_bytes_ = 0;
}

void ServerSession::FinishDict(std::vector<std::string>* out) {
  if (body_header_.size() != 3) {
    out->push_back(
        WireErrLine(WireError::kParse, "usage: DICT <attribute> <count>"));
    return;
  }
  const std::string& attr_name = body_header_[1];
  Result<uint64_t> count = WireParseUint(body_header_[2]);
  if (!count.ok()) {
    out->push_back(WireErrLineForStatus(count.status()));
    return;
  }
  std::vector<std::string> values;
  values.reserve(body_lines_.size());
  for (const std::string& raw : body_lines_) {
    std::vector<std::string> tokens = WireTokens(raw);
    if (tokens.empty()) continue;  // blank / comment line
    if (tokens.size() != 1) {
      out->push_back(WireErrLine(WireError::kParse,
                                 "dictionary values are one token per line"));
      return;
    }
    values.push_back(std::move(tokens[0]));
  }
  if (values.size() != *count) {
    out->push_back(WireErrLine(
        WireError::kParse, "DICT " + attr_name + " declared " +
                               std::to_string(*count) + " values but shipped " +
                               std::to_string(values.size())));
    return;
  }
  AttrId attr = catalog_.Intern(attr_name);
  Status loaded = dicts_->dict(attr).BulkLoad(values);
  if (!loaded.ok()) {
    out->push_back(WireErrLineForStatus(loaded));
    return;
  }
  out->push_back("OK DICT " + attr_name + " " + std::to_string(values.size()));
}

void ServerSession::FinishLoad(std::vector<std::string>* out) {
  bool raw_ids = body_header_[0] == "LOADU32";
  if (body_header_.size() < 3) {
    out->push_back(WireErrLine(
        WireError::kParse,
        "usage: " + body_header_[0] + " <bag-name> <attribute...>"));
    return;
  }
  const std::string& name = body_header_[1];
  bool all_digits = true;
  for (char c : name) all_digits = all_digits && c >= '0' && c <= '9';
  if (all_digits) {
    out->push_back(WireErrLine(
        WireError::kParse,
        "bag name '" + name + "' must not be all digits (reserved for indices)"));
    return;
  }
  if (HasBag(name)) {
    out->push_back(WireErrLine(WireError::kState,
                               "bag '" + name + "' is already loaded"));
    return;
  }
  // Reassemble a bag IO block and hand it to the matching parser arm.
  std::vector<std::string> lines;
  lines.reserve(body_lines_.size() + 2);
  std::string header = "bag";
  for (size_t i = 2; i < body_header_.size(); ++i) header += " " + body_header_[i];
  lines.push_back(std::move(header));
  // Move, don't copy: body_lines_ is discarded by FinishBody right after,
  // and a second per-row string copy here would undo the allocation-free
  // row scanning one layer down.
  for (std::string& raw : body_lines_) lines.push_back(std::move(raw));
  lines.emplace_back("end");
  size_t pos = 0;
  Result<Bag> bag =
      raw_ids ? ParseBagU32(lines, &pos, &catalog_, *dicts_)
              : ParseBag(lines, &pos, &catalog_, dicts_.get());
  if (!bag.ok()) {
    out->push_back(WireErrLineForStatus(bag.status()));
    return;
  }
  if (pos != lines.size()) {
    // A stray lowercase "end" row terminated the block early.
    out->push_back(WireErrLine(WireError::kParse,
                               "unexpected content after 'end' in a row block"));
    return;
  }
  size_t support = bag->SupportSize();
  bag_names_.push_back(name);
  bags_.push_back(std::move(bag).value());
  out->push_back("OK " + body_header_[0] + " " + name + " " +
                 std::to_string(support) + " rows");
}

void ServerSession::HandleSeal(const std::vector<std::string>& tokens,
                               std::vector<std::string>* out) {
  bool canonical = false;
  size_t num_threads = 1;
  for (size_t i = 1; i < tokens.size(); ++i) {
    if (tokens[i] == "CANONICAL") {
      canonical = true;
    } else if (tokens[i] == "THREADS" && i + 1 < tokens.size()) {
      Result<uint64_t> n = WireParseUint(tokens[i + 1]);
      if (!n.ok() || *n == 0) {
        out->push_back(
            WireErrLine(WireError::kParse, "THREADS needs a positive integer"));
        return;
      }
      // One protocol line must not be able to crash the daemon: spawning
      // an absurd worker count throws std::system_error out of
      // std::thread and terminates the process for every client.
      if (*n > kMaxSealThreads) {
        out->push_back(WireErrLine(
            WireError::kRange, "THREADS must be at most " +
                                   std::to_string(kMaxSealThreads)));
        return;
      }
      num_threads = static_cast<size_t>(*n);
      ++i;
    } else {
      out->push_back(WireErrLine(
          WireError::kParse, "usage: SEAL [CANONICAL] [THREADS <n>]"));
      return;
    }
  }
  if (bags_.empty()) {
    out->push_back(
        WireErrLine(WireError::kState, "no bags loaded; LOAD or LOADU32 first"));
    return;
  }
  EngineSnapshot::BuildInputs inputs;
  inputs.names = bag_names_;
  inputs.bags = bags_;  // the session keeps its copies for later re-seals
  inputs.catalog = catalog_;
  // The snapshot seals through a private clone: the session's live set —
  // and every id a client has streamed or will stream — stays untouched,
  // even under CANONICAL (which reorders only the clone).
  inputs.dicts = std::make_shared<DictionarySet>(dicts_->Clone());
  inputs.num_threads = num_threads;
  inputs.canonicalize = canonical;
  Result<std::shared_ptr<const EngineSnapshot>> snapshot =
      EngineSnapshot::Build(std::move(inputs), registry_->NextSeq());
  if (!snapshot.ok()) {
    out->push_back(WireErrLineForStatus(snapshot.status()));
    return;
  }
  if (!registry_->Publish(*snapshot)) {
    out->push_back(WireErrLine(
        WireError::kState, "seal superseded by a newer generation"));
    return;
  }
  registry_->RecordSeal();
  out->push_back("OK SEAL " + std::to_string(bags_.size()) + " bags");
}

void ServerSession::HandleReset(const std::vector<std::string>& tokens,
                                std::vector<std::string>* out) {
  bool hard = tokens.size() == 2 && tokens[1] == "HARD";
  if (tokens.size() > 2 || (tokens.size() == 2 && !hard)) {
    out->push_back(WireErrLine(WireError::kParse, "usage: RESET [HARD]"));
    return;
  }
  bag_names_.clear();
  bags_.clear();
  if (hard) {
    catalog_ = AttributeCatalog();
    dicts_ = std::make_shared<DictionarySet>();
  }
  // In-flight queries of other sessions finish on the old snapshot; new
  // queries see no engine until the next SEAL.
  registry_->Clear();
  registry_->RecordReset();
  out->push_back(hard ? "OK RESET HARD" : "OK RESET");
}

void ServerSession::HandleStats(std::vector<std::string>* out) {
  std::shared_ptr<const EngineSnapshot> snapshot = registry_->Current();
  out->push_back("OK STATS");
  auto kv = [out](const std::string& key, uint64_t value) {
    out->push_back(key + " " + std::to_string(value));
  };
  kv("proto", kWireProtocolVersion);
  kv("sessions", registry_->sessions_active());
  kv("seals", registry_->seals_total());
  kv("resets", registry_->resets_total());
  kv("queries", registry_->queries_total());
  kv("snapshot", snapshot == nullptr ? 0 : snapshot->seq());
  kv("bags", snapshot == nullptr ? 0 : snapshot->num_bags());
  kv("support", snapshot == nullptr ? 0 : snapshot->support_rows());
  kv("dict_values", snapshot == nullptr ? 0 : snapshot->dict_values());
  kv("marginal_fills", snapshot == nullptr ? 0 : snapshot->marginal_fills());
  out->push_back(std::string(kWireEnd));
}

std::shared_ptr<const EngineSnapshot> ServerSession::SnapshotOrErr(
    std::vector<std::string>* out) {
  std::shared_ptr<const EngineSnapshot> snapshot = registry_->Current();
  if (snapshot == nullptr) {
    out->push_back(
        WireErrLine(WireError::kState, "no sealed engine; SEAL a collection first"));
  }
  return snapshot;
}

bool ServerSession::HasBag(const std::string& name) const {
  for (const std::string& existing : bag_names_) {
    if (existing == name) return true;
  }
  return false;
}

void ServerSession::HandleTwoBag(const std::vector<std::string>& tokens,
                                 std::vector<std::string>* out) {
  if (tokens.size() != 3) {
    out->push_back(WireErrLine(WireError::kParse, "usage: TWOBAG <i> <j>"));
    return;
  }
  std::shared_ptr<const EngineSnapshot> snapshot = SnapshotOrErr(out);
  if (snapshot == nullptr) return;
  Result<size_t> i = snapshot->ResolveBag(tokens[1]);
  Result<size_t> j = snapshot->ResolveBag(tokens[2]);
  if (!i.ok() || !j.ok()) {
    out->push_back(WireErrLineForStatus(i.ok() ? j.status() : i.status()));
    return;
  }
  registry_->RecordQuery();
  Result<bool> verdict =
      RunOn(query_pool_, [&] { return snapshot->TwoBag(*i, *j); });
  if (!verdict.ok()) {
    out->push_back(WireErrLineForStatus(verdict.status()));
    return;
  }
  out->push_back(*verdict ? "OK CONSISTENT" : "OK INCONSISTENT");
}

void ServerSession::HandlePairwise(std::vector<std::string>* out) {
  std::shared_ptr<const EngineSnapshot> snapshot = SnapshotOrErr(out);
  if (snapshot == nullptr) return;
  registry_->RecordQuery();
  const PairwiseVerdict& verdict = snapshot->Pairwise();  // sealed at Build
  if (verdict.consistent) {
    out->push_back("OK CONSISTENT");
  } else {
    out->push_back("OK INCONSISTENT " + std::to_string(verdict.witness_pair.first) +
                   " " + std::to_string(verdict.witness_pair.second));
  }
}

void ServerSession::HandleGlobal(std::vector<std::string>* out) {
  std::shared_ptr<const EngineSnapshot> snapshot = SnapshotOrErr(out);
  if (snapshot == nullptr) return;
  registry_->RecordQuery();
  Result<bool> verdict = RunOn(query_pool_, [&] { return snapshot->Global(); });
  if (!verdict.ok()) {
    out->push_back(WireErrLineForStatus(verdict.status()));
    return;
  }
  out->push_back(*verdict ? "OK CONSISTENT" : "OK INCONSISTENT");
}

void ServerSession::HandleKWise(const std::vector<std::string>& tokens,
                                std::vector<std::string>* out) {
  if (tokens.size() != 2) {
    out->push_back(WireErrLine(WireError::kParse, "usage: KWISE <k>"));
    return;
  }
  Result<uint64_t> k = WireParseUint(tokens[1]);
  if (!k.ok()) {
    out->push_back(WireErrLineForStatus(k.status()));
    return;
  }
  std::shared_ptr<const EngineSnapshot> snapshot = SnapshotOrErr(out);
  if (snapshot == nullptr) return;
  registry_->RecordQuery();
  std::optional<std::vector<size_t>> failing;
  Result<bool> verdict = RunOn(query_pool_, [&] {
    return snapshot->KWise(static_cast<size_t>(*k), &failing);
  });
  if (!verdict.ok()) {
    out->push_back(WireErrLineForStatus(verdict.status()));
    return;
  }
  if (*verdict) {
    out->push_back("OK CONSISTENT");
  } else {
    std::string line = "OK INCONSISTENT";
    for (size_t index : *failing) line += " " + std::to_string(index);
    out->push_back(std::move(line));
  }
}

void ServerSession::HandleWitness(const std::vector<std::string>& tokens,
                                  std::vector<std::string>* out) {
  bool minimal = tokens.size() == 4 && tokens[3] == "MINIMAL";
  if (tokens.size() != 3 && !minimal) {
    out->push_back(
        WireErrLine(WireError::kParse, "usage: WITNESS <i> <j> [MINIMAL]"));
    return;
  }
  std::shared_ptr<const EngineSnapshot> snapshot = SnapshotOrErr(out);
  if (snapshot == nullptr) return;
  Result<size_t> i = snapshot->ResolveBag(tokens[1]);
  Result<size_t> j = snapshot->ResolveBag(tokens[2]);
  if (!i.ok() || !j.ok()) {
    out->push_back(WireErrLineForStatus(i.ok() ? j.status() : i.status()));
    return;
  }
  registry_->RecordQuery();
  Result<std::optional<Bag>> witness =
      RunOn(query_pool_, [&] { return snapshot->Witness(*i, *j, minimal); });
  if (!witness.ok()) {
    out->push_back(WireErrLineForStatus(witness.status()));
    return;
  }
  if (!witness->has_value()) {
    out->push_back("OK NONE");
    return;
  }
  const Bag& bag = **witness;
  out->push_back("OK WITNESS " + std::to_string(bag.SupportSize()));
  for (std::string& line : SplitBody(snapshot->WriteBagText(bag))) {
    out->push_back(std::move(line));
  }
  out->push_back(std::string(kWireEnd));
}

}  // namespace bagc
