#include "server/bagcd_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "server/protocol.h"
#include "server/session.h"

namespace bagc {

namespace {

// Writes the whole buffer, riding out short writes and EINTR. A false
// return means the peer is gone; the caller drops the connection.
// MSG_NOSIGNAL: a client that disconnects without reading its responses
// must surface as EPIPE here, not raise SIGPIPE and kill the daemon for
// every other client.
bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<BagcdServer>> BagcdServer::Start(
    const BagcdServerOptions& options) {
  std::unique_ptr<BagcdServer> server(new BagcdServer());
  server->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (server->listen_fd_ < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address '" + options.host + "'");
  }
  if (::bind(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::Internal("bind(" + options.host + ":" +
                            std::to_string(options.port) +
                            "): " + std::strerror(errno));
  }
  if (::listen(server->listen_fd_, 64) != 0) {
    return Status::Internal(std::string("listen(): ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    return Status::Internal(std::string("getsockname(): ") + std::strerror(errno));
  }
  server->port_ = ntohs(addr.sin_port);
  if (options.query_threads > 0) {
    server->query_pool_ = std::make_unique<ThreadPool>(options.query_threads);
  }
  server->registry_ = std::make_unique<CollectionRegistry>(options.registry);
  // The accept loop gets its own copy of the fd: Shutdown() writes
  // listen_fd_ (under mu_) while this thread runs, and an unsynchronized
  // read of the member would be a data race. accept() on the copied fd
  // fails as soon as Shutdown() shuts the listener down.
  server->accept_thread_ = std::thread(
      [raw = server.get(), fd = server->listen_fd_] { raw->AcceptLoop(fd); });
  return server;
}

BagcdServer::~BagcdServer() { Shutdown(); }

void BagcdServer::AcceptLoop(int listen_fd) {
  while (true) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed: we are shutting down
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_requested_) {
      ::close(fd);
      return;
    }
    // Reap connections that already finished, so a long-lived daemon does
    // not accumulate joined-out thread handles; stragglers are joined at
    // Shutdown() either way.
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done) {
        (*it)->thread.join();
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    conns_.push_back(std::make_unique<Conn>());
    Conn* conn = conns_.back().get();
    conn->fd = fd;
    conn->thread = std::thread([this, conn] { ServeConnection(conn); });
  }
}

void BagcdServer::ServeConnection(Conn* conn) {
  ServerSession session(registry_.get(), query_pool_.get());
  int fd = conn->fd;
  char chunk[4096];
  bool open = WriteAll(fd, std::string(kWireBanner) + "\n");
  while (open) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed, or Shutdown() shut the socket down
    // The session does all framing (text lines or binary frames, per its
    // mode) and enforces the line/frame-size ceilings; the transport just
    // moves bytes both ways.
    std::string responses;
    ServerSession::Outcome outcome =
        session.HandleData(std::string_view(chunk, static_cast<size_t>(n)),
                           &responses);
    bool wrote = responses.empty() || WriteAll(fd, responses);
    // Honor the outcome BEFORE reacting to a failed write: the session
    // already committed to it — a SHUTDOWN from a client that closed
    // without reading its OK BYE must still stop the server.
    if (outcome == ServerSession::Outcome::kShutdownServer) {
      RequestShutdown();
      break;
    }
    if (outcome == ServerSession::Outcome::kCloseConnection || !wrote) break;
  }
  // Mark done BEFORE closing: Shutdown() only ::shutdown()s fds of
  // connections not yet done, so it can never touch a descriptor this
  // thread has already closed (and the kernel may have recycled).
  {
    std::lock_guard<std::mutex> lock(mu_);
    conn->done = true;
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

void BagcdServer::Wait() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
  }
  Shutdown();
}

void BagcdServer::RequestShutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void BagcdServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_requested_ = true;
    if (stopped_) return;
    stopped_ = true;
    // Unblock accept() and every in-flight read(); the threads then exit
    // on their own and we join them below. Connections close their own
    // fds, so we only shut the sockets down here.
    if (listen_fd_ >= 0) {
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    for (const std::unique_ptr<Conn>& conn : conns_) {
      if (!conn->done) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  shutdown_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept loop has exited, so conns_ is final and mu_ is free for
  // the connection threads' final done-marking while we join them.
  for (const std::unique_ptr<Conn>& conn : conns_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  conns_.clear();
}

}  // namespace bagc
