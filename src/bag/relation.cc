#include "bag/relation.h"

#include "tuple/tuple_index.h"

namespace bagc {

Status Relation::Insert(const Tuple& t) {
  if (t.arity() != schema_.arity()) {
    return Status::InvalidArgument("tuple arity does not match relation schema");
  }
  tuples_.insert(t);
  return Status::OK();
}

Result<Relation> Relation::Project(const Schema& z) const {
  BAGC_ASSIGN_OR_RETURN(Projector proj, Projector::Make(schema_, z));
  Relation out(z);
  for (const Tuple& t : tuples_) {
    BAGC_RETURN_NOT_OK(out.Insert(t.Project(proj)));
  }
  return out;
}

Result<Relation> Relation::Join(const Relation& r, const Relation& s) {
  BAGC_ASSIGN_OR_RETURN(TupleJoiner joiner, TupleJoiner::Make(r.schema(), s.schema()));
  BAGC_ASSIGN_OR_RETURN(Projector r_shared,
                        Projector::Make(r.schema(), joiner.shared_schema()));
  BAGC_ASSIGN_OR_RETURN(Projector s_shared,
                        Projector::Make(s.schema(), joiner.shared_schema()));
  std::vector<const Tuple*> s_tuples;
  s_tuples.reserve(s.size());
  TupleIndex index(s.size());
  for (const Tuple& t : s.tuples()) {
    index.Insert(t.Project(s_shared), static_cast<uint32_t>(s_tuples.size()));
    s_tuples.push_back(&t);
  }
  Relation out(joiner.joined_schema());
  for (const Tuple& x : r.tuples()) {
    const std::vector<uint32_t>* matches = index.Find(x.Project(r_shared));
    if (matches == nullptr) continue;
    for (uint32_t j : *matches) {
      BAGC_RETURN_NOT_OK(out.Insert(joiner.Join(x, *s_tuples[j])));
    }
  }
  return out;
}

Result<Relation> Relation::JoinAll(const std::vector<Relation>& relations) {
  if (relations.empty()) {
    return Status::InvalidArgument("JoinAll of empty relation list");
  }
  Relation acc = relations[0];
  for (size_t i = 1; i < relations.size(); ++i) {
    BAGC_ASSIGN_OR_RETURN(acc, Join(acc, relations[i]));
  }
  return acc;
}

Result<Relation> Relation::Semijoin(const Relation& r, const Relation& s) {
  Schema shared = Schema::Intersect(r.schema(), s.schema());
  BAGC_ASSIGN_OR_RETURN(Projector r_proj, Projector::Make(r.schema(), shared));
  BAGC_ASSIGN_OR_RETURN(Relation s_proj, s.Project(shared));
  Relation out(r.schema());
  for (const Tuple& t : r.tuples()) {
    if (s_proj.Contains(t.Project(r_proj))) {
      BAGC_RETURN_NOT_OK(out.Insert(t));
    }
  }
  return out;
}

Relation Relation::SupportOf(const Bag& bag) {
  Relation out(bag.schema());
  // Bag rows are sorted, so the end hint makes each insert O(1). RowAt
  // materializes from either representation (flat rows or sealed columns).
  size_t n = bag.SupportSize();
  for (size_t i = 0; i < n; ++i) {
    out.tuples_.insert(out.tuples_.end(), bag.RowAt(i));
  }
  return out;
}

Bag Relation::ToBag() const {
  BagBuilder builder(schema_);
  builder.Reserve(tuples_.size());
  for (const Tuple& t : tuples_) {
    Status st = builder.Add(t, 1);
    (void)st;  // arity always matches by construction
  }
  Result<Bag> out = builder.Build();
  return std::move(out).value();  // distinct tuples never overflow on merge
}

std::string Relation::ToString() const {
  std::string out = schema_.ToString() + " {";
  bool first = true;
  for (const Tuple& t : tuples_) {
    if (!first) out += ", ";
    first = false;
    out += t.ToString();
  }
  out += "}";
  return out;
}

Result<Relation> MakeRelation(const Schema& schema,
                              const std::vector<std::vector<Value>>& rows) {
  Relation out(schema);
  for (const auto& values : rows) {
    if (values.size() != schema.arity()) {
      return Status::InvalidArgument("row arity does not match schema");
    }
    BAGC_RETURN_NOT_OK(out.Insert(Tuple{values}));
  }
  return out;
}

}  // namespace bagc
