// Relation: a finite set of tuples over a schema — the Boolean-semiring
// specialization of a bag (paper §2). This is the substrate for the
// set-semantics baseline (§5.1) and for supports of bags.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "bag/bag.h"
#include "tuple/schema.h"
#include "tuple/tuple.h"
#include "util/result.h"

namespace bagc {

/// \brief A finite set of tuples over schema X (set semantics).
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  Status Insert(const Tuple& t);
  bool Contains(const Tuple& t) const { return tuples_.count(t) > 0; }
  size_t size() const { return tuples_.size(); }
  bool IsEmpty() const { return tuples_.empty(); }

  const std::set<Tuple>& tuples() const { return tuples_; }

  /// Projection R[Z] under set semantics; requires Z ⊆ X.
  Result<Relation> Project(const Schema& z) const;

  /// Natural join R ⋈ S.
  static Result<Relation> Join(const Relation& r, const Relation& s);

  /// Join of a whole list (left fold); errors on empty input.
  static Result<Relation> JoinAll(const std::vector<Relation>& relations);

  /// Semijoin R ⋉ S: the tuples of R that join with some tuple of S.
  static Result<Relation> Semijoin(const Relation& r, const Relation& s);

  bool operator==(const Relation& o) const {
    return schema_ == o.schema_ && tuples_ == o.tuples_;
  }
  bool operator!=(const Relation& o) const { return !(*this == o); }

  /// Supp(R) of a bag, as a Relation.
  static Relation SupportOf(const Bag& bag);

  /// The relation viewed as a 0/1 bag.
  Bag ToBag() const;

  std::string ToString() const;

 private:
  Schema schema_;
  std::set<Tuple> tuples_;
};

/// Convenience builder from value rows; duplicates are collapsed (sets).
Result<Relation> MakeRelation(const Schema& schema,
                              const std::vector<std::vector<Value>>& rows);

}  // namespace bagc
