// Shared sealer for flat (tuple, annotation) entry vectors: sort by tuple,
// merge runs of equal tuples with a semiring +, drop zero annotations.
// This is the single implementation behind BagBuilder::Build (counting
// semiring) and KRelation::Seal (arbitrary positive semiring).
//
// GroupColumnarEntries is the columnar counterpart: group already-gathered
// projection columns in place (ColumnIndex, no per-row Tuple), combine
// each group's annotations in ascending row order — the same order the
// sorted-run merge above visits them — and sort the group keys. One
// implementation behind Bag::GroupColumns and KRelation::Marginal.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "tuple/column_store.h"
#include "tuple/tuple.h"
#include "tuple/tuple_index.h"
#include "util/result.h"

namespace bagc {
namespace internal {

/// Sorts `rows` by tuple, merges equal-tuple runs with `plus`
/// (an (Annotation, Annotation) -> Result<Annotation>), and erases entries
/// whose merged annotation satisfies `is_zero`. On error the vector is
/// cleared — partially merged state never leaks to the caller.
template <typename Annotation, typename Plus, typename IsZero>
Status SealEntries(std::vector<std::pair<Tuple, Annotation>>* rows,
                   Plus&& plus, IsZero&& is_zero) {
  using Entry = std::pair<Tuple, Annotation>;
  std::stable_sort(rows->begin(), rows->end(),
                   [](const Entry& a, const Entry& b) { return a.first < b.first; });
  size_t out = 0;
  for (size_t i = 0; i < rows->size();) {
    size_t run = i + 1;
    Annotation total = std::move((*rows)[i].second);
    while (run < rows->size() && (*rows)[run].first == (*rows)[i].first) {
      Result<Annotation> sum = plus(std::move(total), (*rows)[run].second);
      if (!sum.ok()) {
        rows->clear();
        return sum.status();
      }
      total = std::move(sum).value();
      ++run;
    }
    if (!is_zero(total)) {
      if (out != i) (*rows)[out].first = std::move((*rows)[i].first);
      (*rows)[out].second = std::move(total);
      ++out;
    }
    i = run;
  }
  rows->resize(out);
  return Status::OK();
}

/// Groups the rows of `projected` (columns already selected onto the
/// target layout; row i annotates source[i].second), combines each
/// group's annotations in ascending row order with `plus`, drops groups
/// whose combined annotation satisfies `is_zero`, and returns the
/// (key tuple, annotation) entries sorted by key — exactly what
/// SealEntries produces for the same rows, without materializing any
/// per-row Tuple.
template <typename Annotation, typename Entries, typename Plus, typename IsZero>
Result<std::vector<std::pair<Tuple, Annotation>>> GroupColumnarEntries(
    const ColumnView& projected, const Entries& source, Plus&& plus,
    IsZero&& is_zero) {
  using Entry = std::pair<Tuple, Annotation>;
  ColumnIndex groups(projected);
  std::vector<Entry> out;
  out.reserve(groups.NumGroups());
  for (size_t g = 0; g < groups.NumGroups(); ++g) {
    const std::vector<uint32_t>& rows = groups.GroupRows(g);
    Annotation total = source[rows[0]].second;
    for (size_t k = 1; k < rows.size(); ++k) {
      Result<Annotation> sum = plus(std::move(total), source[rows[k]].second);
      if (!sum.ok()) return sum.status();
      total = std::move(sum).value();
    }
    if (!is_zero(total)) {
      out.emplace_back(groups.keys().RowAt(groups.LeadRow(g)), std::move(total));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.first < b.first; });
  return out;
}

}  // namespace internal
}  // namespace bagc
