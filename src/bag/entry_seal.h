// Shared sealer for flat (tuple, annotation) entry vectors: sort by tuple,
// merge runs of equal tuples with a semiring +, drop zero annotations.
// This is the single implementation behind BagBuilder::Build (counting
// semiring) and KRelation::Seal (arbitrary positive semiring).
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "tuple/tuple.h"
#include "util/result.h"

namespace bagc {
namespace internal {

/// Sorts `rows` by tuple, merges equal-tuple runs with `plus`
/// (an (Annotation, Annotation) -> Result<Annotation>), and erases entries
/// whose merged annotation satisfies `is_zero`. On error the vector is
/// cleared — partially merged state never leaks to the caller.
template <typename Annotation, typename Plus, typename IsZero>
Status SealEntries(std::vector<std::pair<Tuple, Annotation>>* rows,
                   Plus&& plus, IsZero&& is_zero) {
  using Entry = std::pair<Tuple, Annotation>;
  std::stable_sort(rows->begin(), rows->end(),
                   [](const Entry& a, const Entry& b) { return a.first < b.first; });
  size_t out = 0;
  for (size_t i = 0; i < rows->size();) {
    size_t run = i + 1;
    Annotation total = std::move((*rows)[i].second);
    while (run < rows->size() && (*rows)[run].first == (*rows)[i].first) {
      Result<Annotation> sum = plus(std::move(total), (*rows)[run].second);
      if (!sum.ok()) {
        rows->clear();
        return sum.status();
      }
      total = std::move(sum).value();
      ++run;
    }
    if (!is_zero(total)) {
      if (out != i) (*rows)[out].first = std::move((*rows)[i].first);
      (*rows)[out].second = std::move(total);
      ++out;
    }
    i = run;
  }
  rows->resize(out);
  return Status::OK();
}

}  // namespace internal
}  // namespace bagc
