// Text serialization for bags and collections. The format is line-based
// and human-editable — the same shape as the paper's tabular examples:
//
//   bag A B            # schema line: attribute names
//   1 2 : 3            # tuple values, colon, multiplicity
//   2 2 : 1
//   end
//
// A collection file is a sequence of bag blocks. Attribute names are
// interned into the caller's catalog, so bags sharing names share ids.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "bag/bag.h"
#include "tuple/attribute.h"
#include "util/result.h"

namespace bagc {

/// Serializes one bag using catalog names.
std::string WriteBag(const Bag& bag, const AttributeCatalog& catalog);

/// Serializes a whole collection (sequence of bag blocks).
std::string WriteCollection(const std::vector<Bag>& bags,
                            const AttributeCatalog& catalog);

/// Parses one bag block from `input` starting at line `*pos`; advances
/// *pos past the block. Attribute names are interned into `catalog`.
Result<Bag> ParseBag(const std::vector<std::string>& lines, size_t* pos,
                     AttributeCatalog* catalog);

/// Parses an entire collection document.
Result<std::vector<Bag>> ParseCollection(const std::string& input,
                                         AttributeCatalog* catalog);

}  // namespace bagc
