// Text serialization for bags and collections. The format is line-based
// and human-editable — the same shape as the paper's tabular examples:
//
//   bag A B            # schema line: attribute names
//   1 2 : 3            # tuple values, colon, multiplicity
//   2 2 : 1
//   end
//
// A collection file is a sequence of bag blocks. Attribute names are
// interned into the caller's catalog, so bags sharing names share ids.
//
// Values: without a DictionarySet, tokens must be integers and rows are
// encoded through the legacy numeric codec (the historical format,
// unchanged). With a DictionarySet, tokens are arbitrary words (strings
// or numbers alike) and every value is interned into the set's
// per-attribute dictionary; writing decodes ids back to the original
// external tokens, so the on-disk shape is identical either way.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bag/bag.h"
#include "tuple/attribute.h"
#include "tuple/column_store.h"
#include "tuple/value_dictionary.h"
#include "util/result.h"

namespace bagc {

/// The format's line lexer: strips a trailing '#'-comment and
/// surrounding " \t\r" whitespace, without copying (the result views
/// into `line`). Exposed because the bagcd wire protocol applies the
/// SAME lexical rules to command lines that this format applies to
/// rows — both sides share this one definition so they cannot drift.
std::string_view StripCommentView(std::string_view line);

/// Serializes one bag using catalog names. With `dicts`, the bag MUST
/// have been sealed through that same set: ids on covered attributes
/// decode to their dictionary strings (codec ids are indistinguishable
/// from dictionary ids, so a numerically built bag over a
/// dictionary-covered attribute would misdecode — see the uniform-sealing
/// precondition in value_dictionary.h). Attributes the set never saw, and
/// all values when `dicts` is null, decode through the numeric codec.
std::string WriteBag(const Bag& bag, const AttributeCatalog& catalog,
                     const DictionarySet* dicts = nullptr);

/// Serializes a whole collection (sequence of bag blocks).
std::string WriteCollection(const std::vector<Bag>& bags,
                            const AttributeCatalog& catalog,
                            const DictionarySet* dicts = nullptr);

/// Parses one bag block from `input` starting at line `*pos`; advances
/// *pos past the block. Attribute names are interned into `catalog`;
/// values are interned into `dicts` when given, else parsed as integers.
Result<Bag> ParseBag(const std::vector<std::string>& lines, size_t* pos,
                     AttributeCatalog* catalog, DictionarySet* dicts = nullptr);

/// Parses one bag block whose value tokens are raw interned ids (u32)
/// instead of external values — the streaming arm of the bagcd session
/// protocol, where a client ships its DictionarySet once and thereafter
/// streams fixed-width id rows. Every attribute of the header must
/// already have a dictionary in `dicts`, and every id must be one that
/// dictionary issued (id < size), so a malformed stream is rejected at
/// the boundary instead of producing rows that silently decode to
/// nothing. No interning (and no string hashing) happens on this path.
Result<Bag> ParseBagU32(const std::vector<std::string>& lines, size_t* pos,
                        AttributeCatalog* catalog, const DictionarySet& dicts);

/// The zero-parse twin of ParseBagU32: validates and seals a bag whose
/// ids are already binary — a decoded ROWS frame of the binary wire
/// framing, or the mmap'd columns of a sealed-bag segment file
/// (tuple/segment.h). `attr_names[c]` names `columns.column(c)` (header
/// order; the sorted schema layout may permute it), and row r carries
/// multiplicity `mults[r]`. Semantics match the text arm exactly: every
/// attribute needs a dictionary in `dicts` (FailedPrecondition), every
/// id must be one it issued (OutOfRange), a duplicate row is
/// InvalidArgument, and zero-multiplicity rows are dropped.
Result<Bag> BagFromU32Columns(const std::vector<std::string>& attr_names,
                              const ColumnView& columns, const uint64_t* mults,
                              AttributeCatalog* catalog,
                              const DictionarySet& dicts);

/// Zero-copy twin of BagFromU32Columns for mmap'd sealed-bag segments:
/// validates the columns in place and serves them through
/// Bag::BorrowColumnar, so the bag holds no row vector and no column
/// copy — `keep_alive` (the shared SegmentReader) pins the mapping.
/// Stricter than the copying arm by design: the columns must already be
/// in sorted-schema slot order, contiguous column-major, strictly
/// row-ascending, with no zero multiplicities — exactly what
/// EncodeSegment writes. Anything else (a permuted or hand-built
/// segment) returns a status; callers fall back to BagFromU32Columns,
/// which re-sorts and filters.
Result<Bag> BagBorrowU32Columns(const std::vector<std::string>& attr_names,
                                const ColumnView& columns,
                                const uint64_t* mults,
                                AttributeCatalog* catalog,
                                const DictionarySet& dicts,
                                std::shared_ptr<const void> keep_alive);

/// Parses an entire collection document. All bags share `catalog` (and
/// `dicts` when given), so shared attribute names — and shared values on
/// them — map to identical ids across bags.
Result<std::vector<Bag>> ParseCollection(const std::string& input,
                                         AttributeCatalog* catalog,
                                         DictionarySet* dicts = nullptr);

}  // namespace bagc
