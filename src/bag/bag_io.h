// Text serialization for bags and collections. The format is line-based
// and human-editable — the same shape as the paper's tabular examples:
//
//   bag A B            # schema line: attribute names
//   1 2 : 3            # tuple values, colon, multiplicity
//   2 2 : 1
//   end
//
// A collection file is a sequence of bag blocks. Attribute names are
// interned into the caller's catalog, so bags sharing names share ids.
//
// Values: without a DictionarySet, tokens must be integers and rows are
// encoded through the legacy numeric codec (the historical format,
// unchanged). With a DictionarySet, tokens are arbitrary words (strings
// or numbers alike) and every value is interned into the set's
// per-attribute dictionary; writing decodes ids back to the original
// external tokens, so the on-disk shape is identical either way.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "bag/bag.h"
#include "tuple/attribute.h"
#include "tuple/value_dictionary.h"
#include "util/result.h"

namespace bagc {

/// Serializes one bag using catalog names. With `dicts`, the bag MUST
/// have been sealed through that same set: ids on covered attributes
/// decode to their dictionary strings (codec ids are indistinguishable
/// from dictionary ids, so a numerically built bag over a
/// dictionary-covered attribute would misdecode — see the uniform-sealing
/// precondition in value_dictionary.h). Attributes the set never saw, and
/// all values when `dicts` is null, decode through the numeric codec.
std::string WriteBag(const Bag& bag, const AttributeCatalog& catalog,
                     const DictionarySet* dicts = nullptr);

/// Serializes a whole collection (sequence of bag blocks).
std::string WriteCollection(const std::vector<Bag>& bags,
                            const AttributeCatalog& catalog,
                            const DictionarySet* dicts = nullptr);

/// Parses one bag block from `input` starting at line `*pos`; advances
/// *pos past the block. Attribute names are interned into `catalog`;
/// values are interned into `dicts` when given, else parsed as integers.
Result<Bag> ParseBag(const std::vector<std::string>& lines, size_t* pos,
                     AttributeCatalog* catalog, DictionarySet* dicts = nullptr);

/// Parses an entire collection document. All bags share `catalog` (and
/// `dicts` when given), so shared attribute names — and shared values on
/// them — map to identical ids across bags.
Result<std::vector<Bag>> ParseCollection(const std::string& input,
                                         AttributeCatalog* catalog,
                                         DictionarySet* dicts = nullptr);

}  // namespace bagc
