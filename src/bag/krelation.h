// K-relations over positive semirings — the §6 / [AK20] generalization the
// paper closes with. A K-relation assigns to every tuple an annotation
// from a semiring K; marginals sum annotations (Equation (2) with + of K),
// joins multiply them. Bags are the Z>=0 instance and relations the
// Boolean instance; this template makes that precise and lets the test
// suite check that the specialized Bag/Relation code paths agree with the
// generic semantics. The consistency theory for general K under the
// *strict* notion of this paper is open (paper §6) — the template is the
// substrate such an investigation needs.
//
// Entries mirror Bag's flat representation: a vector sorted by tuple,
// merged in bulk by the internal sealer rather than per-insert.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bag/entry_seal.h"
#include "tuple/column_store.h"
#include "tuple/schema.h"
#include "tuple/tuple.h"
#include "tuple/tuple_index.h"
#include "util/checked_math.h"
#include "util/result.h"

namespace bagc {

// A positive semiring for KRelation must provide:
//   using Value;                        annotation type
//   static Value Zero();  static Value One();
//   static Result<Value> Plus(Value, Value);
//   static Result<Value> Times(Value, Value);
//   static bool IsZero(const Value&);
// Positivity (no zero divisors, a+b=0 => a=b=0) is what makes supports
// behave; the instances below all satisfy it.

/// The Boolean semiring B: K-relations over B are exactly relations.
struct BoolSemiring {
  using Value = bool;
  static Value Zero() { return false; }
  static Value One() { return true; }
  static Result<Value> Plus(Value a, Value b) { return a || b; }
  static Result<Value> Times(Value a, Value b) { return a && b; }
  static bool IsZero(const Value& v) { return !v; }
};

/// The bag semiring Z>=0: K-relations over it are exactly bags.
/// Arithmetic is overflow-checked like the Bag class.
struct CountingSemiring {
  using Value = uint64_t;
  static Value Zero() { return 0; }
  static Value One() { return 1; }
  static Result<Value> Plus(Value a, Value b) { return CheckedAdd(a, b); }
  static Result<Value> Times(Value a, Value b) { return CheckedMul(a, b); }
  static bool IsZero(const Value& v) { return v == 0; }
};

/// The tropical (min, +) semiring over costs with +inf as zero. Positive;
/// annotates tuples with best-derivation costs.
struct TropicalSemiring {
  using Value = uint64_t;
  static constexpr Value kInfinity = ~uint64_t{0};
  static Value Zero() { return kInfinity; }
  static Value One() { return 0; }
  static Result<Value> Plus(Value a, Value b) { return a < b ? a : b; }
  static Result<Value> Times(Value a, Value b) {
    if (a == kInfinity || b == kInfinity) return kInfinity;
    return CheckedAdd(a, b);
  }
  static bool IsZero(const Value& v) { return v == kInfinity; }
};

/// \brief A finite-support K-relation over schema X.
template <typename K>
class KRelation {
 public:
  using Annotation = typename K::Value;
  using Entry = std::pair<Tuple, Annotation>;
  /// Flat storage, sorted ascending by tuple; no zero annotations.
  using Entries = std::vector<Entry>;

  KRelation() = default;
  explicit KRelation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  const Entries& entries() const { return entries_; }
  size_t SupportSize() const { return entries_.size(); }

  /// Sets R(t) := a (erasing when a is the semiring zero).
  Status Set(const Tuple& t, Annotation a) {
    if (t.arity() != schema_.arity()) {
      return Status::InvalidArgument("tuple arity does not match schema");
    }
    auto it = LowerBound(t);
    bool present = it != entries_.end() && it->first == t;
    if (K::IsZero(a)) {
      if (present) entries_.erase(it);
    } else if (present) {
      it->second = std::move(a);
    } else {
      entries_.insert(it, Entry{t, std::move(a)});
    }
    return Status::OK();
  }

  /// R(t); the semiring zero off the support.
  Annotation At(const Tuple& t) const {
    auto it = LowerBound(t);
    return (it != entries_.end() && it->first == t) ? it->second : K::Zero();
  }

  /// Combines a into R(t) with the semiring +.
  Status Accumulate(const Tuple& t, const Annotation& a) {
    BAGC_ASSIGN_OR_RETURN(Annotation sum, K::Plus(At(t), a));
    return Set(t, std::move(sum));
  }

  /// Marginal R[Z]: Equation (2) with the semiring +; requires Z ⊆ X.
  /// Large relations group columnar (gather the Z columns, hash-group in
  /// place, combine annotations per group — no per-row Tuple projection);
  /// small ones take the row path. Both combine equal-key annotations in
  /// ascending entry order, so the results are identical.
  Result<KRelation> Marginal(const Schema& z) const {
    BAGC_ASSIGN_OR_RETURN(Projector proj, Projector::Make(schema_, z));
    if (entries_.size() >= kColumnarMinRows) {
      ColumnStore cols = ColumnStore::FromEntries(entries_, proj);
      BAGC_ASSIGN_OR_RETURN(
          Entries rows,
          internal::GroupColumnarEntries<Annotation>(
              cols.View(), entries_,
              [](Annotation a, const Annotation& b) {
                return K::Plus(std::move(a), b);
              },
              [](const Annotation& a) { return K::IsZero(a); }));
      KRelation out(z);
      out.entries_ = std::move(rows);
      return out;
    }
    Entries rows;
    rows.reserve(entries_.size());
    for (const auto& [t, a] : entries_) {
      rows.emplace_back(t.Project(proj), a);
    }
    return Seal(z, std::move(rows));
  }

  /// K-join: support = join of supports, annotation = product.
  static Result<KRelation> Join(const KRelation& r, const KRelation& s) {
    BAGC_ASSIGN_OR_RETURN(TupleJoiner joiner,
                          TupleJoiner::Make(r.schema(), s.schema()));
    Entries rows;
    for (const auto& [x, xa] : r.entries_) {
      for (const auto& [y, ya] : s.entries_) {
        if (!joiner.Joinable(x, y)) continue;
        BAGC_ASSIGN_OR_RETURN(Annotation prod, K::Times(xa, ya));
        rows.emplace_back(joiner.Join(x, y), std::move(prod));
      }
    }
    return Seal(joiner.joined_schema(), std::move(rows));
  }

  bool operator==(const KRelation& o) const {
    return schema_ == o.schema_ && entries_ == o.entries_;
  }
  bool operator!=(const KRelation& o) const { return !(*this == o); }

 private:
  typename Entries::iterator LowerBound(const Tuple& t) {
    return std::lower_bound(entries_.begin(), entries_.end(), t,
                            [](const Entry& e, const Tuple& u) { return e.first < u; });
  }
  typename Entries::const_iterator LowerBound(const Tuple& t) const {
    return std::lower_bound(entries_.begin(), entries_.end(), t,
                            [](const Entry& e, const Tuple& u) { return e.first < u; });
  }

  /// Sorts rows, merges equal tuples with the semiring +, drops zeros.
  static Result<KRelation> Seal(Schema schema, Entries rows) {
    BAGC_RETURN_NOT_OK(internal::SealEntries(
        &rows, [](Annotation a, const Annotation& b) { return K::Plus(std::move(a), b); },
        [](const Annotation& a) { return K::IsZero(a); }));
    KRelation out(std::move(schema));
    out.entries_ = std::move(rows);
    return out;
  }

  Schema schema_;
  Entries entries_;
};

/// Two K-relations are consistent (strict notion, paper §3 generalized)
/// when some K-relation over X ∪ Y marginalizes onto both. As in the bag
/// case, equality of shared marginals is *necessary*; whether it is
/// sufficient for every positive semiring is the paper's closing open
/// problem. This helper computes the necessary test.
template <typename K>
Result<bool> SharedMarginalsAgree(const KRelation<K>& r, const KRelation<K>& s) {
  Schema z = Schema::Intersect(r.schema(), s.schema());
  BAGC_ASSIGN_OR_RETURN(KRelation<K> rz, r.Marginal(z));
  BAGC_ASSIGN_OR_RETURN(KRelation<K> sz, s.Marginal(z));
  return rz == sz;
}

}  // namespace bagc
