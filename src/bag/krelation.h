// K-relations over positive semirings — the §6 / [AK20] generalization the
// paper closes with. A K-relation assigns to every tuple an annotation
// from a semiring K; marginals sum annotations (Equation (2) with + of K),
// joins multiply them. Bags are the Z>=0 instance and relations the
// Boolean instance; this template makes that precise and lets the test
// suite check that the specialized Bag/Relation code paths agree with the
// generic semantics. The consistency theory for general K under the
// *strict* notion of this paper is open (paper §6) — the template is the
// substrate such an investigation needs.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "tuple/schema.h"
#include "tuple/tuple.h"
#include "util/checked_math.h"
#include "util/result.h"

namespace bagc {

// A positive semiring for KRelation must provide:
//   using Value;                        annotation type
//   static Value Zero();  static Value One();
//   static Result<Value> Plus(Value, Value);
//   static Result<Value> Times(Value, Value);
//   static bool IsZero(const Value&);
// Positivity (no zero divisors, a+b=0 => a=b=0) is what makes supports
// behave; the instances below all satisfy it.

/// The Boolean semiring B: K-relations over B are exactly relations.
struct BoolSemiring {
  using Value = bool;
  static Value Zero() { return false; }
  static Value One() { return true; }
  static Result<Value> Plus(Value a, Value b) { return a || b; }
  static Result<Value> Times(Value a, Value b) { return a && b; }
  static bool IsZero(const Value& v) { return !v; }
};

/// The bag semiring Z>=0: K-relations over it are exactly bags.
/// Arithmetic is overflow-checked like the Bag class.
struct CountingSemiring {
  using Value = uint64_t;
  static Value Zero() { return 0; }
  static Value One() { return 1; }
  static Result<Value> Plus(Value a, Value b) { return CheckedAdd(a, b); }
  static Result<Value> Times(Value a, Value b) { return CheckedMul(a, b); }
  static bool IsZero(const Value& v) { return v == 0; }
};

/// The tropical (min, +) semiring over costs with +inf as zero. Positive;
/// annotates tuples with best-derivation costs.
struct TropicalSemiring {
  using Value = uint64_t;
  static constexpr Value kInfinity = ~uint64_t{0};
  static Value Zero() { return kInfinity; }
  static Value One() { return 0; }
  static Result<Value> Plus(Value a, Value b) { return a < b ? a : b; }
  static Result<Value> Times(Value a, Value b) {
    if (a == kInfinity || b == kInfinity) return kInfinity;
    return CheckedAdd(a, b);
  }
  static bool IsZero(const Value& v) { return v == kInfinity; }
};

/// \brief A finite-support K-relation over schema X.
template <typename K>
class KRelation {
 public:
  using Annotation = typename K::Value;
  using Entries = std::map<Tuple, Annotation>;

  KRelation() = default;
  explicit KRelation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  const Entries& entries() const { return entries_; }
  size_t SupportSize() const { return entries_.size(); }

  /// Sets R(t) := a (erasing when a is the semiring zero).
  Status Set(const Tuple& t, Annotation a) {
    if (t.arity() != schema_.arity()) {
      return Status::InvalidArgument("tuple arity does not match schema");
    }
    if (K::IsZero(a)) {
      entries_.erase(t);
    } else {
      entries_[t] = std::move(a);
    }
    return Status::OK();
  }

  /// R(t); the semiring zero off the support.
  Annotation At(const Tuple& t) const {
    auto it = entries_.find(t);
    return it == entries_.end() ? K::Zero() : it->second;
  }

  /// Combines a into R(t) with the semiring +.
  Status Accumulate(const Tuple& t, const Annotation& a) {
    BAGC_ASSIGN_OR_RETURN(Annotation sum, K::Plus(At(t), a));
    return Set(t, std::move(sum));
  }

  /// Marginal R[Z]: Equation (2) with the semiring +; requires Z ⊆ X.
  Result<KRelation> Marginal(const Schema& z) const {
    BAGC_ASSIGN_OR_RETURN(Projector proj, Projector::Make(schema_, z));
    KRelation out(z);
    for (const auto& [t, a] : entries_) {
      BAGC_RETURN_NOT_OK(out.Accumulate(t.Project(proj), a));
    }
    return out;
  }

  /// K-join: support = join of supports, annotation = product.
  static Result<KRelation> Join(const KRelation& r, const KRelation& s) {
    BAGC_ASSIGN_OR_RETURN(TupleJoiner joiner,
                          TupleJoiner::Make(r.schema(), s.schema()));
    KRelation out(joiner.joined_schema());
    for (const auto& [x, xa] : r.entries_) {
      for (const auto& [y, ya] : s.entries_) {
        if (!joiner.Joinable(x, y)) continue;
        BAGC_ASSIGN_OR_RETURN(Annotation prod, K::Times(xa, ya));
        BAGC_RETURN_NOT_OK(out.Accumulate(joiner.Join(x, y), prod));
      }
    }
    return out;
  }

  bool operator==(const KRelation& o) const {
    return schema_ == o.schema_ && entries_ == o.entries_;
  }
  bool operator!=(const KRelation& o) const { return !(*this == o); }

 private:
  Schema schema_;
  Entries entries_;
};

/// Two K-relations are consistent (strict notion, paper §3 generalized)
/// when some K-relation over X ∪ Y marginalizes onto both. As in the bag
/// case, equality of shared marginals is *necessary*; whether it is
/// sufficient for every positive semiring is the paper's closing open
/// problem. This helper computes the necessary test.
template <typename K>
Result<bool> SharedMarginalsAgree(const KRelation<K>& r, const KRelation<K>& s) {
  Schema z = Schema::Intersect(r.schema(), s.schema());
  BAGC_ASSIGN_OR_RETURN(KRelation<K> rz, r.Marginal(z));
  BAGC_ASSIGN_OR_RETURN(KRelation<K> sz, s.Marginal(z));
  return rz == sz;
}

}  // namespace bagc
