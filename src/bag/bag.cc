#include "bag/bag.h"

#include <algorithm>
#include <map>

#include "bag/entry_seal.h"
#include "tuple/tuple_index.h"

namespace bagc {

namespace {

bool EntryTupleLess(const Bag::Entry& e, const Tuple& t) { return e.first < t; }

}  // namespace

const Bag::Entries& Bag::NoEntries() {
  static const Entries kEmpty;
  return kEmpty;
}

Bag::Entries& Bag::MutableEntries() {
  if (entries_ == nullptr) {
    entries_ = std::make_shared<Entries>();
  } else if (entries_.use_count() > 1) {
    entries_ = std::make_shared<Entries>(*entries_);
  }
  return *entries_;
}

Bag::Entries::iterator Bag::LowerBound(Entries& es, const Tuple& t) {
  return std::lower_bound(es.begin(), es.end(), t, EntryTupleLess);
}

Bag::Entries::const_iterator Bag::LowerBound(const Tuple& t) const {
  const Entries& es = entries();
  return std::lower_bound(es.begin(), es.end(), t, EntryTupleLess);
}

Status Bag::Set(const Tuple& t, uint64_t mult) {
  if (t.arity() != schema_.arity()) {
    return Status::InvalidArgument("tuple arity does not match bag schema");
  }
  if (mult == 0 && Multiplicity(t) == 0) return Status::OK();  // no-op erase
  Entries& es = MutableEntries();
  auto it = LowerBound(es, t);
  bool present = it != es.end() && it->first == t;
  if (mult == 0) {
    if (present) es.erase(it);
  } else if (present) {
    it->second = mult;
  } else {
    es.insert(it, Entry{t, mult});
  }
  return Status::OK();
}

Status Bag::Add(const Tuple& t, uint64_t mult) {
  if (t.arity() != schema_.arity()) {
    return Status::InvalidArgument("tuple arity does not match bag schema");
  }
  if (mult == 0) return Status::OK();
  Entries& es = MutableEntries();
  auto it = LowerBound(es, t);
  if (it != es.end() && it->first == t) {
    BAGC_ASSIGN_OR_RETURN(it->second, CheckedAdd(it->second, mult));
  } else {
    es.insert(it, Entry{t, mult});
  }
  return Status::OK();
}

uint64_t Bag::Multiplicity(const Tuple& t) const {
  auto it = LowerBound(t);
  return (it != entries().end() && it->first == t) ? it->second : 0;
}

Status Bag::ApplyRowDeltas(
    const std::vector<std::pair<Tuple, int64_t>>& deltas) {
  // Net the stream per tuple first so `insert x, delete x` cancels and a
  // repeated row accumulates once — validation then sees one signed net
  // per tuple, which is what all-or-nothing semantics must judge.
  std::map<Tuple, int64_t> net;
  for (const auto& [t, d] : deltas) {
    if (t.arity() != schema_.arity()) {
      return Status::InvalidArgument("tuple arity does not match bag schema");
    }
    int64_t& acc = net[t];
    if (__builtin_add_overflow(acc, d, &acc)) {
      return Status::ArithmeticOverflow("delta net overflows int64 for row " +
                                        t.ToString());
    }
  }
  // Validate every net against the current multiplicities before touching
  // storage: a delete below zero or an insert overflow must leave the bag
  // exactly as it was.
  std::vector<std::pair<Tuple, uint64_t>> next;
  next.reserve(net.size());
  for (const auto& [t, d] : net) {
    if (d == 0) continue;
    uint64_t have = Multiplicity(t);
    if (d < 0) {
      // |d| without negating INT64_MIN (UB): -(d + 1) is in range.
      uint64_t drop = static_cast<uint64_t>(-(d + 1)) + 1;
      if (drop > have) {
        return Status::OutOfRange("DELETE below zero multiplicity: bag has " +
                                  std::to_string(have) + " of row " +
                                  t.ToString());
      }
      next.emplace_back(t, have - drop);
    } else {
      BAGC_ASSIGN_OR_RETURN(uint64_t bumped,
                            CheckedAdd(have, static_cast<uint64_t>(d)));
      next.emplace_back(t, bumped);
    }
  }
  // Commit: Set with a validated arity and multiplicity cannot fail.
  for (const auto& [t, mult] : next) {
    Status set = Set(t, mult);
    if (!set.ok()) return set;
  }
  return Status::OK();
}

Result<Bag> Bag::Marginal(const Schema& z) const {
  if (entries().size() >= kColumnarMinRows) return MarginalColumnar(z);
  return MarginalRows(z);
}

Result<Bag> Bag::MarginalRows(const Schema& z) const {
  BAGC_ASSIGN_OR_RETURN(Projector proj, Projector::Make(schema_, z));
  BagBuilder builder(z);
  builder.Reserve(entries().size());
  for (const auto& [t, mult] : entries()) {
    BAGC_RETURN_NOT_OK(builder.Add(t.Project(proj), mult));
  }
  return builder.Build();
}

Result<Bag> Bag::MarginalColumnar(const Schema& z) const {
  BAGC_ASSIGN_OR_RETURN(Projector proj, Projector::Make(schema_, z));
  // Gather only the Z columns — the projection happens during the
  // transpose, so the grouping below never touches a non-Z slot.
  ColumnStore cols = ColumnStore::FromEntries(entries(), proj);
  return GroupColumns(z, cols.View(), entries());
}

Result<Bag> Bag::GroupColumns(const Schema& z, const ColumnView& projected,
                              const Entries& source) {
  if (projected.num_rows() != source.size() || projected.arity() != z.arity()) {
    return Status::InvalidArgument("projected columns do not match source rows");
  }
  // Multiplicities are positive, so no group sums to zero.
  BAGC_ASSIGN_OR_RETURN(
      Entries out,
      internal::GroupColumnarEntries<uint64_t>(
          projected, source,
          [](uint64_t a, uint64_t b) { return CheckedAdd(a, b); },
          [](uint64_t m) { return m == 0; }));
  Bag bag(z);
  bag.AdoptEntries(std::move(out));
  return bag;
}

ColumnStore Bag::ToColumns() const {
  // The identity projection is always valid.
  Projector identity = Projector::Make(schema_, schema_).value();
  return ColumnStore::FromEntries(entries(), identity);
}

Result<Bag> Bag::Join(const Bag& r, const Bag& s) {
  BAGC_ASSIGN_OR_RETURN(TupleJoiner joiner, TupleJoiner::Make(r.schema(), s.schema()));
  // Hash-partition the right side on the shared attributes, columnar: the
  // matching phase gathers just the shared columns of both sides and
  // resolves every probe in one ProbeAll batch — no per-row Tuple
  // projections. Output tuples still assemble from the row entries.
  BAGC_ASSIGN_OR_RETURN(Projector r_shared,
                        Projector::Make(r.schema(), joiner.shared_schema()));
  BAGC_ASSIGN_OR_RETURN(Projector s_shared,
                        Projector::Make(s.schema(), joiner.shared_schema()));
  const Entries& r_entries = r.entries();
  const Entries& s_entries = s.entries();
  ColumnJoinMatch match(r_entries, r_shared, s_entries, s_shared);
  BagBuilder builder(joiner.joined_schema());
  for (size_t i = 0; i < r_entries.size(); ++i) {
    if (match.MatchOf(i) == ColumnJoinMatch::kNoMatch) continue;
    const auto& [x, xm] = r_entries[i];
    for (uint32_t j : match.RightRows(match.MatchOf(i))) {
      const Entry& ys = s_entries[j];
      BAGC_ASSIGN_OR_RETURN(uint64_t mult, CheckedMul(xm, ys.second));
      BAGC_RETURN_NOT_OK(builder.Add(joiner.Join(x, ys.first), mult));
    }
  }
  return builder.Build();
}

bool Bag::Contained(const Bag& r, const Bag& s) {
  if (r.schema() != s.schema()) return false;
  for (const auto& [t, mult] : r.entries()) {
    if (mult > s.Multiplicity(t)) return false;
  }
  return true;
}

uint64_t Bag::MultiplicityBound() const {
  uint64_t best = 0;
  for (const auto& [t, mult] : entries()) {
    (void)t;
    best = std::max(best, mult);
  }
  return best;
}

uint64_t Bag::MultiplicitySize() const {
  uint64_t best = 0;
  for (const auto& [t, mult] : entries()) {
    (void)t;
    best = std::max<uint64_t>(best, BitLength(mult + 1));
  }
  return best;
}

Result<uint64_t> Bag::UnarySize() const {
  uint64_t total = 0;
  for (const auto& [t, mult] : entries()) {
    (void)t;
    BAGC_ASSIGN_OR_RETURN(total, CheckedAdd(total, mult));
  }
  return total;
}

uint64_t Bag::BinarySize() const {
  uint64_t total = 0;
  for (const auto& [t, mult] : entries()) {
    (void)t;
    total += BitLength(mult + 1);
  }
  return total;
}

std::string Bag::ToString(const AttributeCatalog& catalog) const {
  std::string out = schema_.ToString(catalog) + " [\n";
  for (const auto& [t, mult] : entries()) {
    out += "  " + t.ToString() + " : " + std::to_string(mult) + "\n";
  }
  out += "]";
  return out;
}

std::string Bag::ToString() const {
  std::string out = schema_.ToString() + " [\n";
  for (const auto& [t, mult] : entries()) {
    out += "  " + t.ToString() + " : " + std::to_string(mult) + "\n";
  }
  out += "]";
  return out;
}

Status BagBuilder::Add(Tuple t, uint64_t mult) {
  if (t.arity() != schema_.arity()) {
    return Status::InvalidArgument("tuple arity does not match bag schema");
  }
  if (mult == 0) return Status::OK();
  pending_.emplace_back(std::move(t), mult);
  return Status::OK();
}

Status BagBuilder::AddExternal(const std::vector<std::string>& tokens,
                               uint64_t mult, DictionarySet* dicts) {
  if (dicts == nullptr) {
    return Status::InvalidArgument("AddExternal requires a dictionary set");
  }
  BAGC_ASSIGN_OR_RETURN(Tuple t, dicts->EncodeRow(schema_, tokens));
  return Add(std::move(t), mult);
}

Result<Bag> BagBuilder::Build() {
  BAGC_RETURN_NOT_OK(internal::SealEntries(
      &pending_, [](uint64_t a, uint64_t b) { return CheckedAdd(a, b); },
      [](uint64_t m) { return m == 0; }));
  Bag bag(schema_);
  bag.AdoptEntries(std::move(pending_));
  pending_ = Bag::Entries();
  return bag;
}

Result<Bag> MakeBag(
    const Schema& schema,
    const std::vector<std::pair<std::vector<Value>, uint64_t>>& rows) {
  BagBuilder builder(schema);
  builder.Reserve(rows.size());
  // Tuples already carrying a nonzero multiplicity; a repeat is an error.
  TupleIndex seen(rows.size());
  for (const auto& [values, mult] : rows) {
    if (values.size() != schema.arity()) {
      return Status::InvalidArgument("row arity does not match schema");
    }
    Tuple t{values};
    if (seen.Find(t) != nullptr) {
      return Status::AlreadyExists("duplicate tuple in MakeBag rows: " + t.ToString());
    }
    if (mult != 0) {
      seen.Insert(t, 0);
      BAGC_RETURN_NOT_OK(builder.Add(std::move(t), mult));
    }
  }
  return builder.Build();
}

}  // namespace bagc
