#include "bag/bag.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <numeric>

#include "bag/entry_seal.h"
#include "tuple/tuple_index.h"
#include "tuple/value_codec.h"

namespace bagc {

namespace {

bool EntryTupleLess(const Bag::Entry& e, const Tuple& t) { return e.first < t; }

}  // namespace

const Bag::Entries& Bag::NoEntries() {
  static const Entries kEmpty;
  return kEmpty;
}

Bag::Entries& Bag::MutableEntries() {
  if (columnar_ != nullptr) {
    // De-seal: materialize the row form from the columns (delta staging
    // and the other mutators are cold paths). Other bags sharing the
    // columnar rep keep it — the rep is immutable.
    std::shared_ptr<const Columnar> rep = columnar_;
    size_t n = rep->columns.num_rows();
    auto es = std::make_shared<Entries>();
    es->reserve(n);
    const uint64_t* mults = rep->mult_data();
    for (size_t i = 0; i < n; ++i) {
      es->emplace_back(rep->columns.RowAt(i), mults[i]);
    }
    entries_ = std::move(es);
    columnar_.reset();
  } else if (entries_ == nullptr) {
    entries_ = std::make_shared<Entries>();
  } else if (entries_.use_count() > 1) {
    entries_ = std::make_shared<Entries>(*entries_);
  }
  return *entries_;
}

void Bag::SealColumnar() {
  if (columnar_ != nullptr) return;
  const Entries& es = entries_ ? *entries_ : NoEntries();
  size_t n = es.size();
  auto rep = std::make_shared<Columnar>();
  Projector identity = Projector::Make(schema_, schema_).value();
  rep->columns = ColumnStore::FromEntries(es, identity);
  rep->mults.resize(n);
  for (size_t i = 0; i < n; ++i) rep->mults[i] = es[i].second;
  AdoptColumnar(std::move(rep));
}

std::shared_ptr<const ColumnStore> Bag::SharedColumns() const {
  if (columnar_ == nullptr) return nullptr;
  return std::shared_ptr<const ColumnStore>(columnar_, &columnar_->columns);
}

Status Bag::ValidateColumnar(const Schema& schema, const ColumnView& rows,
                             const uint64_t* mults) {
  if (rows.arity() != schema.arity()) {
    return Status::InvalidArgument("columnar arity does not match bag schema");
  }
  for (size_t r = 0; r < rows.num_rows(); ++r) {
    if (mults[r] == 0) {
      return Status::InvalidArgument(
          "sealed columnar bag carries a zero multiplicity at row " +
          std::to_string(r));
    }
    if (r > 0 && rows.CompareRows(r - 1, rows, r) >= 0) {
      return Status::InvalidArgument(
          "sealed columnar rows not strictly ascending at row " +
          std::to_string(r));
    }
  }
  return Status::OK();
}

Result<Bag> Bag::FromColumnar(Schema schema, ColumnStore columns,
                              std::vector<uint64_t> mults) {
  if (columns.num_rows() != mults.size()) {
    return Status::InvalidArgument("columnar rows and multiplicities differ");
  }
  BAGC_RETURN_NOT_OK(ValidateColumnar(schema, columns.View(), mults.data()));
  auto rep = std::make_shared<Columnar>();
  rep->columns = std::move(columns);
  rep->mults = std::move(mults);
  Bag bag(std::move(schema));
  bag.AdoptColumnar(std::move(rep));
  return bag;
}

Result<Bag> Bag::BorrowColumnar(Schema schema, const ValueId* column_major,
                                const uint64_t* mults, size_t rows,
                                std::shared_ptr<const void> keep_alive) {
  ColumnStore store = ColumnStore::Borrow(column_major, rows, schema.arity());
  BAGC_RETURN_NOT_OK(ValidateColumnar(schema, store.View(), mults));
  auto rep = std::make_shared<Columnar>();
  rep->columns = std::move(store);
  rep->borrowed_mults = mults;
  rep->keep_alive = std::move(keep_alive);
  Bag bag(std::move(schema));
  bag.AdoptColumnar(std::move(rep));
  return bag;
}

Bag::Entries::iterator Bag::LowerBound(Entries& es, const Tuple& t) {
  return std::lower_bound(es.begin(), es.end(), t, EntryTupleLess);
}

Bag::Entries::const_iterator Bag::LowerBound(const Tuple& t) const {
  const Entries& es = entries();
  return std::lower_bound(es.begin(), es.end(), t, EntryTupleLess);
}

Status Bag::Set(const Tuple& t, uint64_t mult) {
  if (t.arity() != schema_.arity()) {
    return Status::InvalidArgument("tuple arity does not match bag schema");
  }
  if (mult == 0 && Multiplicity(t) == 0) return Status::OK();  // no-op erase
  Entries& es = MutableEntries();
  auto it = LowerBound(es, t);
  bool present = it != es.end() && it->first == t;
  if (mult == 0) {
    if (present) es.erase(it);
  } else if (present) {
    it->second = mult;
  } else {
    es.insert(it, Entry{t, mult});
  }
  return Status::OK();
}

Status Bag::Add(const Tuple& t, uint64_t mult) {
  if (t.arity() != schema_.arity()) {
    return Status::InvalidArgument("tuple arity does not match bag schema");
  }
  if (mult == 0) return Status::OK();
  Entries& es = MutableEntries();
  auto it = LowerBound(es, t);
  if (it != es.end() && it->first == t) {
    BAGC_ASSIGN_OR_RETURN(it->second, CheckedAdd(it->second, mult));
  } else {
    es.insert(it, Entry{t, mult});
  }
  return Status::OK();
}

uint64_t Bag::Multiplicity(const Tuple& t) const {
  if (columnar_ != nullptr) {
    if (t.arity() != schema_.arity()) return 0;  // never in the support
    const ColumnStore& cs = columnar_->columns;
    size_t arity = schema_.arity();
    // Binary search replicating Tuple::operator< exactly (including
    // value order for side-table ids) against the column layout.
    auto row_less = [&](size_t r) {
      for (size_t c = 0; c < arity; ++c) {
        ValueId x = cs.column(c)[r];
        ValueId y = t.id(c);
        if (x == y) continue;
        if ((x | y) < kDirectValueLimit) return x < y;
        return ValueIdLess(x, y);
      }
      return false;
    };
    size_t lo = 0;
    size_t hi = cs.num_rows();
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (row_less(mid)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == cs.num_rows()) return 0;
    for (size_t c = 0; c < arity; ++c) {
      if (cs.column(c)[lo] != t.id(c)) return 0;
    }
    return columnar_->mult_data()[lo];
  }
  auto it = LowerBound(t);
  return (it != entries().end() && it->first == t) ? it->second : 0;
}

Status Bag::ApplyRowDeltas(
    const std::vector<std::pair<Tuple, int64_t>>& deltas) {
  // Net the stream per tuple first so `insert x, delete x` cancels and a
  // repeated row accumulates once — validation then sees one signed net
  // per tuple, which is what all-or-nothing semantics must judge.
  std::map<Tuple, int64_t> net;
  for (const auto& [t, d] : deltas) {
    if (t.arity() != schema_.arity()) {
      return Status::InvalidArgument("tuple arity does not match bag schema");
    }
    int64_t& acc = net[t];
    if (__builtin_add_overflow(acc, d, &acc)) {
      return Status::ArithmeticOverflow("delta net overflows int64 for row " +
                                        t.ToString());
    }
  }
  // Validate every net against the current multiplicities before touching
  // storage: a delete below zero or an insert overflow must leave the bag
  // exactly as it was.
  std::vector<std::pair<Tuple, uint64_t>> next;
  next.reserve(net.size());
  for (const auto& [t, d] : net) {
    if (d == 0) continue;
    uint64_t have = Multiplicity(t);
    if (d < 0) {
      // |d| without negating INT64_MIN (UB): -(d + 1) is in range.
      uint64_t drop = static_cast<uint64_t>(-(d + 1)) + 1;
      if (drop > have) {
        return Status::OutOfRange("DELETE below zero multiplicity: bag has " +
                                  std::to_string(have) + " of row " +
                                  t.ToString());
      }
      next.emplace_back(t, have - drop);
    } else {
      BAGC_ASSIGN_OR_RETURN(uint64_t bumped,
                            CheckedAdd(have, static_cast<uint64_t>(d)));
      next.emplace_back(t, bumped);
    }
  }
  // Commit: Set with a validated arity and multiplicity cannot fail.
  for (const auto& [t, mult] : next) {
    Status set = Set(t, mult);
    if (!set.ok()) return set;
  }
  return Status::OK();
}

Result<Bag> Bag::Marginal(const Schema& z) const {
  return Marginal(z, 0, simd::SimdLevel::kAuto);
}

Result<Bag> Bag::Marginal(const Schema& z, size_t min_rows,
                          simd::SimdLevel level) const {
  // A columnar-sealed bag always groups columnar — the row path would
  // materialize every row first.
  if (columnar_ != nullptr) return MarginalColumnar(z, level);
  size_t threshold = min_rows == 0 ? kColumnarMinRows : min_rows;
  if (SupportSize() >= threshold) return MarginalColumnar(z, level);
  return MarginalRows(z);
}

Result<Bag> Bag::MarginalRows(const Schema& z) const {
  BAGC_ASSIGN_OR_RETURN(Projector proj, Projector::Make(schema_, z));
  BagBuilder builder(z);
  size_t n = SupportSize();
  builder.Reserve(n);
  if (columnar_ != nullptr) {
    for (size_t i = 0; i < n; ++i) {
      BAGC_RETURN_NOT_OK(builder.Add(RowAt(i).Project(proj), MultiplicityAt(i)));
    }
  } else {
    for (const auto& [t, mult] : entries()) {
      BAGC_RETURN_NOT_OK(builder.Add(t.Project(proj), mult));
    }
  }
  return builder.Build();
}

Result<Bag> Bag::MarginalColumnar(const Schema& z,
                                  simd::SimdLevel level) const {
  BAGC_ASSIGN_OR_RETURN(Projector proj, Projector::Make(schema_, z));
  size_t n = SupportSize();
  if (columnar_ != nullptr) {
    // Zero-copy: select the Z columns straight out of the live store.
    ColumnView sel = columnar_->columns.View().Select(proj);
    return GroupColumns(z, sel, columnar_->mult_data(), n, level);
  }
  // Row form: gather only the Z columns — the projection happens during
  // the transpose, so the grouping below never touches a non-Z slot.
  ColumnStore cols = ColumnStore::FromEntries(entries(), proj);
  std::vector<uint64_t> mults(n);
  for (size_t i = 0; i < n; ++i) mults[i] = (*entries_)[i].second;
  return GroupColumns(z, cols.View(), mults.data(), n, level);
}

Result<Bag> Bag::GroupColumns(const Schema& z, const ColumnView& projected,
                              const uint64_t* mults, size_t n,
                              simd::SimdLevel level) {
  if (projected.arity() != z.arity() || projected.num_rows() != n) {
    return Status::InvalidArgument("projected columns do not match source rows");
  }
  level = simd::Resolve(level);
  if (n == 0) return Bag(z);
  size_t arity = z.arity();
  // Radix-style dense path for the common shared-attribute arities: pack
  // the (<= 2) key ids into one integer and count into a flat table. Only
  // when every id is direct-range (so ascending packed key == ascending
  // Tuple order) and the key space passed the density gate. kScalar
  // deliberately skips this — it is the hash path's differential twin.
  if (level != simd::SimdLevel::kScalar && arity >= 1 && arity <= 2) {
    uint32_t max_a = simd::MaxU32(projected.column(0), n, level);
    uint32_t max_b =
        arity == 2 ? simd::MaxU32(projected.column(1), n, level) : 0;
    if (max_a < kDirectValueLimit && max_b < kDirectValueLimit) {
      uint64_t stride = static_cast<uint64_t>(max_b) + 1;
      uint64_t table = (static_cast<uint64_t>(max_a) + 1) * stride;
      uint64_t cap = std::max<uint64_t>(4096, 4 * static_cast<uint64_t>(n));
      if (table <= cap) {
        return GroupDense(z, projected, mults, n, stride, table, level);
      }
    }
  }
  return GroupHashed(z, projected, mults, n, level);
}

Result<Bag> Bag::GroupColumns(const Schema& z, const ColumnView& projected,
                              const Entries& source) {
  if (projected.num_rows() != source.size()) {
    return Status::InvalidArgument("projected columns do not match source rows");
  }
  std::vector<uint64_t> mults(source.size());
  for (size_t i = 0; i < source.size(); ++i) mults[i] = source[i].second;
  return GroupColumns(z, projected, mults.data(), mults.size(),
                      simd::SimdLevel::kAuto);
}

Result<Bag> Bag::GroupDense(const Schema& z, const ColumnView& projected,
                            const uint64_t* mults, size_t n, uint64_t stride,
                            uint64_t table, simd::SimdLevel level) {
  size_t arity = projected.arity();
  std::vector<uint64_t> acc(table, 0);
  size_t groups = 0;
  // Accumulation visits rows in ascending order — the same per-group add
  // order as the hash path, so overflow trips at the identical row.
  if (arity == 1) {
    const ValueId* a = projected.column(0);
    for (size_t r = 0; r < n; ++r) {
      uint64_t& slot = acc[a[r]];
      if (slot == 0) ++groups;
      BAGC_ASSIGN_OR_RETURN(slot, CheckedAdd(slot, mults[r]));
    }
  } else {
    std::vector<uint64_t> keys(n);
    simd::PackKeys2(projected.column(0), projected.column(1), stride, n,
                    keys.data(), level);
    for (size_t r = 0; r < n; ++r) {
      uint64_t& slot = acc[keys[r]];
      if (slot == 0) ++groups;
      BAGC_ASSIGN_OR_RETURN(slot, CheckedAdd(slot, mults[r]));
    }
  }
  // Emit straight into the sealed columnar layout: a linear scan of the
  // table is ascending packed-key order, which the gate guarantees is
  // ascending Tuple order.
  std::vector<ValueId> data(arity * groups);
  std::vector<uint64_t> out_mults(groups);
  size_t g = 0;
  if (arity == 1) {
    for (uint64_t k = 0; k < table; ++k) {
      if (acc[k] == 0) continue;
      data[g] = static_cast<ValueId>(k);
      out_mults[g] = acc[k];
      ++g;
    }
  } else {
    ValueId* col_a = data.data();
    ValueId* col_b = data.data() + groups;
    uint64_t k = 0;
    for (uint64_t va = 0; k < table; ++va) {
      for (uint64_t vb = 0; vb < stride; ++vb, ++k) {
        if (acc[k] == 0) continue;
        col_a[g] = static_cast<ValueId>(va);
        col_b[g] = static_cast<ValueId>(vb);
        out_mults[g] = acc[k];
        ++g;
      }
    }
  }
  auto rep = std::make_shared<Columnar>();
  rep->columns = ColumnStore::FromColumnMajor(std::move(data), groups, arity);
  rep->mults = std::move(out_mults);
  Bag bag(z);
  bag.AdoptColumnar(std::move(rep));
  return bag;
}

Result<Bag> Bag::GroupHashed(const Schema& z, const ColumnView& projected,
                             const uint64_t* mults, size_t n,
                             simd::SimdLevel level) {
  ColumnIndex groups(projected, level);
  size_t ng = groups.NumGroups();
  std::vector<uint64_t> sums(ng);
  for (size_t g = 0; g < ng; ++g) {
    const std::vector<uint32_t>& rows = groups.GroupRows(g);
    uint64_t total = mults[rows[0]];
    for (size_t k = 1; k < rows.size(); ++k) {
      BAGC_ASSIGN_OR_RETURN(total, CheckedAdd(total, mults[rows[k]]));
    }
    sums[g] = total;
  }
  // Sort groups into Tuple order by their lead rows (ValueIdLess-aware),
  // then emit the sealed columnar layout directly — no per-group Tuple.
  std::vector<uint32_t> order(ng);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t x, uint32_t y) {
    return projected.CompareRows(groups.LeadRow(x), projected,
                                 groups.LeadRow(y)) < 0;
  });
  size_t arity = projected.arity();
  std::vector<ValueId> data(arity * ng);
  std::vector<uint64_t> out_mults(ng);
  for (size_t g = 0; g < ng; ++g) {
    uint32_t lead = groups.LeadRow(order[g]);
    for (size_t c = 0; c < arity; ++c) {
      data[c * ng + g] = projected.at(lead, c);
    }
    out_mults[g] = sums[order[g]];
  }
  auto rep = std::make_shared<Columnar>();
  rep->columns = ColumnStore::FromColumnMajor(std::move(data), ng, arity);
  rep->mults = std::move(out_mults);
  Bag bag(z);
  bag.AdoptColumnar(std::move(rep));
  return bag;
}

ColumnStore Bag::ToColumns() const {
  if (columnar_ != nullptr) {
    const ColumnStore& cs = columnar_->columns;
    // Borrow the live store (the bag must outlive the result). The
    // column-major span is contiguous for owned and borrowed stores
    // alike, so column(0) is the base of the whole layout.
    return ColumnStore::Borrow(
        schema_.arity() == 0 ? nullptr : cs.column(0), cs.num_rows(),
        schema_.arity());
  }
  // The identity projection is always valid.
  Projector identity = Projector::Make(schema_, schema_).value();
  return ColumnStore::FromEntries(entries(), identity);
}

ColumnView Bag::ProjectedView(const Projector& proj,
                              ColumnStore* backing) const {
  if (columnar_ != nullptr) return columnar_->columns.View().Select(proj);
  *backing = ColumnStore::FromEntries(entries(), proj);
  return backing->View();
}

Result<Bag> Bag::Join(const Bag& r, const Bag& s) {
  BAGC_ASSIGN_OR_RETURN(TupleJoiner joiner, TupleJoiner::Make(r.schema(), s.schema()));
  // Hash-partition the right side on the shared attributes, columnar: the
  // matching phase projects just the shared columns of both sides —
  // zero-copy when a side is columnar-sealed — and resolves every probe
  // in one ProbeAll batch. Output tuples assemble via RowAt (the join
  // build is a sanctioned materialization point).
  BAGC_ASSIGN_OR_RETURN(Projector r_shared,
                        Projector::Make(r.schema(), joiner.shared_schema()));
  BAGC_ASSIGN_OR_RETURN(Projector s_shared,
                        Projector::Make(s.schema(), joiner.shared_schema()));
  ColumnStore r_backing;
  ColumnStore s_backing;
  ColumnView r_sh = r.ProjectedView(r_shared, &r_backing);
  ColumnView s_sh = s.ProjectedView(s_shared, &s_backing);
  ColumnJoinMatch match(r_sh, s_sh);
  BagBuilder builder(joiner.joined_schema());
  size_t rn = r.SupportSize();
  for (size_t i = 0; i < rn; ++i) {
    uint32_t group = match.MatchOf(i);
    if (group == ColumnJoinMatch::kNoMatch) continue;
    Tuple x = r.RowAt(i);
    uint64_t xm = r.MultiplicityAt(i);
    for (uint32_t j : match.RightRows(group)) {
      BAGC_ASSIGN_OR_RETURN(uint64_t mult, CheckedMul(xm, s.MultiplicityAt(j)));
      BAGC_RETURN_NOT_OK(builder.Add(joiner.Join(x, s.RowAt(j)), mult));
    }
  }
  return builder.Build();
}

bool Bag::Contained(const Bag& r, const Bag& s) {
  if (r.schema() != s.schema()) return false;
  size_t n = r.SupportSize();
  for (size_t i = 0; i < n; ++i) {
    if (r.MultiplicityAt(i) > s.Multiplicity(r.RowAt(i))) return false;
  }
  return true;
}

bool Bag::operator==(const Bag& o) const {
  if (schema_ != o.schema_) return false;
  size_t n = SupportSize();
  if (n != o.SupportSize()) return false;
  if (n == 0) return true;
  if (entries_ != nullptr && o.entries_ != nullptr) {
    return entries_ == o.entries_ || *entries_ == *o.entries_;
  }
  size_t arity = schema_.arity();
  if (columnar_ != nullptr && o.columnar_ != nullptr) {
    if (columnar_ == o.columnar_) return true;
    // Both columnar: the whole id layout is one contiguous span per side.
    const ColumnStore& a = columnar_->columns;
    const ColumnStore& b = o.columnar_->columns;
    if (arity != 0 &&
        std::memcmp(a.column(0), b.column(0), n * arity * sizeof(ValueId)) != 0) {
      return false;
    }
    return std::memcmp(columnar_->mult_data(), o.columnar_->mult_data(),
                       n * sizeof(uint64_t)) == 0;
  }
  // Mixed representations: compare row-wise without materializing.
  for (size_t i = 0; i < n; ++i) {
    if (MultiplicityAt(i) != o.MultiplicityAt(i)) return false;
    for (size_t c = 0; c < arity; ++c) {
      if (IdAt(i, c) != o.IdAt(i, c)) return false;
    }
  }
  return true;
}

uint64_t Bag::MultiplicityBound() const {
  uint64_t best = 0;
  size_t n = SupportSize();
  for (size_t i = 0; i < n; ++i) best = std::max(best, MultiplicityAt(i));
  return best;
}

uint64_t Bag::MultiplicitySize() const {
  uint64_t best = 0;
  size_t n = SupportSize();
  for (size_t i = 0; i < n; ++i) {
    best = std::max<uint64_t>(best, BitLength(MultiplicityAt(i) + 1));
  }
  return best;
}

Result<uint64_t> Bag::UnarySize() const {
  uint64_t total = 0;
  size_t n = SupportSize();
  for (size_t i = 0; i < n; ++i) {
    BAGC_ASSIGN_OR_RETURN(total, CheckedAdd(total, MultiplicityAt(i)));
  }
  return total;
}

uint64_t Bag::BinarySize() const {
  uint64_t total = 0;
  size_t n = SupportSize();
  for (size_t i = 0; i < n; ++i) total += BitLength(MultiplicityAt(i) + 1);
  return total;
}

size_t Bag::ApproxBytes() const {
  size_t n = SupportSize();
  size_t arity = schema_.arity();
  if (columnar_ != nullptr) {
    size_t bytes = sizeof(Columnar);
    if (!columnar_->columns.is_borrowed()) bytes += n * arity * sizeof(ValueId);
    if (columnar_->borrowed_mults == nullptr) bytes += n * sizeof(uint64_t);
    return bytes;
  }
  // Row form: one (Tuple, u64) pair per entry plus the Tuple's heap ids.
  return sizeof(Entries) + n * (sizeof(Entry) + arity * sizeof(ValueId));
}

std::string Bag::ToString(const AttributeCatalog& catalog) const {
  std::string out = schema_.ToString(catalog) + " [\n";
  size_t n = SupportSize();
  for (size_t i = 0; i < n; ++i) {
    out += "  " + RowAt(i).ToString() + " : " + std::to_string(MultiplicityAt(i)) + "\n";
  }
  out += "]";
  return out;
}

std::string Bag::ToString() const {
  std::string out = schema_.ToString() + " [\n";
  size_t n = SupportSize();
  for (size_t i = 0; i < n; ++i) {
    out += "  " + RowAt(i).ToString() + " : " + std::to_string(MultiplicityAt(i)) + "\n";
  }
  out += "]";
  return out;
}

Status BagBuilder::Add(Tuple t, uint64_t mult) {
  if (t.arity() != schema_.arity()) {
    return Status::InvalidArgument("tuple arity does not match bag schema");
  }
  if (mult == 0) return Status::OK();
  pending_.emplace_back(std::move(t), mult);
  return Status::OK();
}

Status BagBuilder::AddExternal(const std::vector<std::string>& tokens,
                               uint64_t mult, DictionarySet* dicts) {
  if (dicts == nullptr) {
    return Status::InvalidArgument("AddExternal requires a dictionary set");
  }
  BAGC_ASSIGN_OR_RETURN(Tuple t, dicts->EncodeRow(schema_, tokens));
  return Add(std::move(t), mult);
}

Result<Bag> BagBuilder::Build() {
  BAGC_RETURN_NOT_OK(internal::SealEntries(
      &pending_, [](uint64_t a, uint64_t b) { return CheckedAdd(a, b); },
      [](uint64_t m) { return m == 0; }));
  Bag bag(schema_);
  bag.AdoptEntries(std::move(pending_));
  pending_ = Bag::Entries();
  return bag;
}

Result<Bag> MakeBag(
    const Schema& schema,
    const std::vector<std::pair<std::vector<Value>, uint64_t>>& rows) {
  BagBuilder builder(schema);
  builder.Reserve(rows.size());
  // Tuples already carrying a nonzero multiplicity; a repeat is an error.
  TupleIndex seen(rows.size());
  for (const auto& [values, mult] : rows) {
    if (values.size() != schema.arity()) {
      return Status::InvalidArgument("row arity does not match schema");
    }
    Tuple t{values};
    if (seen.Find(t) != nullptr) {
      return Status::AlreadyExists("duplicate tuple in MakeBag rows: " + t.ToString());
    }
    if (mult != 0) {
      seen.Insert(t, 0);
      BAGC_RETURN_NOT_OK(builder.Add(std::move(t), mult));
    }
  }
  return builder.Build();
}

}  // namespace bagc
