#include "bag/bag.h"

#include <algorithm>

namespace bagc {

Status Bag::Set(const Tuple& t, uint64_t mult) {
  if (t.arity() != schema_.arity()) {
    return Status::InvalidArgument("tuple arity does not match bag schema");
  }
  if (mult == 0) {
    entries_.erase(t);
  } else {
    entries_[t] = mult;
  }
  return Status::OK();
}

Status Bag::Add(const Tuple& t, uint64_t mult) {
  if (t.arity() != schema_.arity()) {
    return Status::InvalidArgument("tuple arity does not match bag schema");
  }
  if (mult == 0) return Status::OK();
  auto [it, inserted] = entries_.emplace(t, mult);
  if (!inserted) {
    BAGC_ASSIGN_OR_RETURN(it->second, CheckedAdd(it->second, mult));
  }
  return Status::OK();
}

uint64_t Bag::Multiplicity(const Tuple& t) const {
  auto it = entries_.find(t);
  return it == entries_.end() ? 0 : it->second;
}

Result<Bag> Bag::Marginal(const Schema& z) const {
  BAGC_ASSIGN_OR_RETURN(Projector proj, Projector::Make(schema_, z));
  Bag out(z);
  for (const auto& [t, mult] : entries_) {
    BAGC_RETURN_NOT_OK(out.Add(t.Project(proj), mult));
  }
  return out;
}

Result<Bag> Bag::Join(const Bag& r, const Bag& s) {
  BAGC_ASSIGN_OR_RETURN(TupleJoiner joiner, TupleJoiner::Make(r.schema(), s.schema()));
  // Hash-partition the right side on the shared attributes.
  BAGC_ASSIGN_OR_RETURN(Projector r_shared,
                        Projector::Make(r.schema(), joiner.shared_schema()));
  BAGC_ASSIGN_OR_RETURN(Projector s_shared,
                        Projector::Make(s.schema(), joiner.shared_schema()));
  std::map<Tuple, std::vector<const Tuple*>> index;
  for (const auto& [t, mult] : s.entries()) {
    (void)mult;
    index[t.Project(s_shared)].push_back(&t);
  }
  Bag out(joiner.joined_schema());
  for (const auto& [x, xm] : r.entries()) {
    auto it = index.find(x.Project(r_shared));
    if (it == index.end()) continue;
    for (const Tuple* y : it->second) {
      BAGC_ASSIGN_OR_RETURN(uint64_t mult, CheckedMul(xm, s.entries().at(*y)));
      BAGC_RETURN_NOT_OK(out.Add(joiner.Join(x, *y), mult));
    }
  }
  return out;
}

bool Bag::Contained(const Bag& r, const Bag& s) {
  if (r.schema() != s.schema()) return false;
  for (const auto& [t, mult] : r.entries_) {
    if (mult > s.Multiplicity(t)) return false;
  }
  return true;
}

uint64_t Bag::MultiplicityBound() const {
  uint64_t best = 0;
  for (const auto& [t, mult] : entries_) {
    (void)t;
    best = std::max(best, mult);
  }
  return best;
}

uint64_t Bag::MultiplicitySize() const {
  uint64_t best = 0;
  for (const auto& [t, mult] : entries_) {
    (void)t;
    best = std::max<uint64_t>(best, BitLength(mult + 1));
  }
  return best;
}

Result<uint64_t> Bag::UnarySize() const {
  uint64_t total = 0;
  for (const auto& [t, mult] : entries_) {
    (void)t;
    BAGC_ASSIGN_OR_RETURN(total, CheckedAdd(total, mult));
  }
  return total;
}

uint64_t Bag::BinarySize() const {
  uint64_t total = 0;
  for (const auto& [t, mult] : entries_) {
    (void)t;
    total += BitLength(mult + 1);
  }
  return total;
}

std::string Bag::ToString(const AttributeCatalog& catalog) const {
  std::string out = schema_.ToString(catalog) + " [\n";
  for (const auto& [t, mult] : entries_) {
    out += "  " + t.ToString() + " : " + std::to_string(mult) + "\n";
  }
  out += "]";
  return out;
}

std::string Bag::ToString() const {
  std::string out = schema_.ToString() + " [\n";
  for (const auto& [t, mult] : entries_) {
    out += "  " + t.ToString() + " : " + std::to_string(mult) + "\n";
  }
  out += "]";
  return out;
}

Result<Bag> MakeBag(
    const Schema& schema,
    const std::vector<std::pair<std::vector<Value>, uint64_t>>& rows) {
  Bag bag(schema);
  for (const auto& [values, mult] : rows) {
    if (values.size() != schema.arity()) {
      return Status::InvalidArgument("row arity does not match schema");
    }
    Tuple t{values};
    if (bag.Multiplicity(t) != 0) {
      return Status::AlreadyExists("duplicate tuple in MakeBag rows: " + t.ToString());
    }
    BAGC_RETURN_NOT_OK(bag.Set(t, mult));
  }
  return bag;
}

}  // namespace bagc
