#include "bag/bag_io.h"

#include <charconv>
#include <string_view>
#include <sstream>

#include "tuple/tuple_index.h"
#include "util/simd.h"

namespace bagc {

std::string_view StripCommentView(std::string_view line) {
  size_t hash = line.find('#');
  std::string_view s = hash == std::string_view::npos ? line : line.substr(0, hash);
  size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string_view::npos) return {};
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

namespace {

std::vector<std::string> SplitWhitespace(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream iss(line);
  std::string token;
  while (iss >> token) out.push_back(token);
  return out;
}

std::vector<std::string> SplitLines(const std::string& input) {
  std::vector<std::string> lines;
  std::istringstream iss(input);
  std::string line;
  while (std::getline(iss, line)) lines.push_back(line);
  return lines;
}

std::string StripComment(const std::string& line) {
  return std::string(StripCommentView(line));
}

Result<int64_t> ParseInt(std::string_view token) {
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::InvalidArgument("not an integer: '" + std::string(token) + "'");
  }
  return value;
}

Result<uint64_t> ParseUint(std::string_view token) {
  uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::InvalidArgument("not a non-negative integer: '" +
                                   std::string(token) + "'");
  }
  return value;
}

// Zero-allocation tokenizer for row lines: appends the [begin, end)
// views of each whitespace-separated token of `line` into *spans
// (cleared first). Row parsing is the server's streaming hot path — a
// LOADU32 session processes millions of these — so tokens must not
// materialize strings; only the interning arm (which needs map keys)
// converts, and only the raw-id arm stays fully allocation-free.
void SplitSpans(std::string_view line, std::vector<std::string_view>* spans) {
  spans->clear();
  const char* data = line.data();
  size_t n = line.size();
  size_t i = 0;
  while (i < n) {
    while (i < n && (data[i] == ' ' || data[i] == '\t' || data[i] == '\r')) ++i;
    size_t begin = i;
    while (i < n && data[i] != ' ' && data[i] != '\t' && data[i] != '\r') ++i;
    if (i > begin) spans->emplace_back(data + begin, i - begin);
  }
}

}  // namespace

std::string WriteBag(const Bag& bag, const AttributeCatalog& catalog,
                     const DictionarySet* dicts) {
  std::string out = "bag";
  for (AttrId a : bag.schema().attrs()) {
    out += " " + catalog.Name(a);
  }
  out += "\n";
  // Resolve each slot's dictionary once; slots without one (numerically
  // built bags, or attributes the set never saw) decode via the codec.
  std::vector<const ValueDictionary*> slot_dict(bag.schema().arity(), nullptr);
  if (dicts != nullptr) {
    for (size_t i = 0; i < bag.schema().arity(); ++i) {
      slot_dict[i] = dicts->find_dict(bag.schema().at(i));
    }
  }
  for (size_t e = 0; e < bag.SupportSize(); ++e) {
    Tuple t = bag.RowAt(e);  // text write-out is a designated cold path
    for (size_t i = 0; i < t.arity(); ++i) {
      const ValueDictionary* d = slot_dict[i];
      if (d != nullptr && t.id(i) < d->size()) {
        out += d->ExternalOf(t.id(i)) + " ";
      } else {
        out += std::to_string(t.at(i)) + " ";
      }
    }
    out += ": " + std::to_string(bag.MultiplicityAt(e)) + "\n";
  }
  out += "end\n";
  return out;
}

std::string WriteCollection(const std::vector<Bag>& bags,
                            const AttributeCatalog& catalog,
                            const DictionarySet* dicts) {
  std::string out;
  for (const Bag& bag : bags) out += WriteBag(bag, catalog, dicts);
  return out;
}

namespace {

// The three value-token encodings a bag block can carry. All share the
// header grammar and the row framing ("v1 ... vk : mult"); they differ
// only in how a value token becomes a row id.
enum class RowMode {
  kNumeric,  // integer tokens through the legacy codec
  kIntern,   // arbitrary tokens interned into a DictionarySet
  kRawIds,   // raw u32 ids validated against an already-shipped set
};

Result<Bag> ParseBagImpl(const std::vector<std::string>& lines, size_t* pos,
                         AttributeCatalog* catalog, RowMode mode,
                         DictionarySet* intern_dicts,
                         const DictionarySet* raw_dicts) {
  // Skip blank/comment lines.
  while (*pos < lines.size() && StripComment(lines[*pos]).empty()) ++(*pos);
  if (*pos >= lines.size()) {
    return Status::InvalidArgument("expected 'bag' header, found end of input");
  }
  std::vector<std::string> header = SplitWhitespace(StripComment(lines[*pos]));
  if (header.empty() || header[0] != "bag") {
    return Status::InvalidArgument("expected 'bag <attrs...>' at line " +
                                   std::to_string(*pos + 1));
  }
  ++(*pos);
  std::vector<AttrId> attrs;
  for (size_t i = 1; i < header.size(); ++i) {
    attrs.push_back(catalog->Intern(header[i]));
  }
  Schema schema{attrs};
  if (schema.arity() != header.size() - 1) {
    return Status::InvalidArgument("duplicate attribute in bag header");
  }
  // The raw-id arm validates ids against the dictionaries the session
  // already shipped; resolve each column's dictionary once, up front.
  std::vector<const ValueDictionary*> column_dict(attrs.size(), nullptr);
  if (mode == RowMode::kRawIds) {
    for (size_t i = 0; i < attrs.size(); ++i) {
      column_dict[i] = raw_dicts->find_dict(attrs[i]);
      if (column_dict[i] == nullptr) {
        return Status::FailedPrecondition(
            "u32 rows require a dictionary for attribute '" + header[i + 1] +
            "'; ship its DICT block first");
      }
    }
  }
  // The sorted schema layout may permute the header order: remember where
  // each header column lands.
  std::vector<size_t> slot_of_column(attrs.size());
  for (size_t i = 0; i < attrs.size(); ++i) {
    BAGC_ASSIGN_OR_RETURN(slot_of_column[i], schema.IndexOf(attrs[i]));
  }
  BagBuilder builder(schema);
  // Tuples already carrying a nonzero multiplicity; a repeat is an error.
  TupleIndex seen;
  // Row lines are the streaming hot path: tokens are scanned as views
  // into the line (SplitSpans), so the numeric and raw-id arms parse a
  // whole row without one allocation beyond the tuple itself.
  std::vector<std::string_view> tokens;
  while (true) {
    if (*pos >= lines.size()) {
      return Status::InvalidArgument("unterminated bag block (missing 'end')");
    }
    std::string_view line = StripCommentView(lines[*pos]);
    ++(*pos);
    if (line.empty()) continue;
    if (line == "end") break;
    SplitSpans(line, &tokens);
    // Expect: v1 ... vk : mult
    if (tokens.size() != attrs.size() + 2 || tokens[attrs.size()] != ":") {
      return Status::InvalidArgument("bad tuple line: '" + std::string(line) + "'");
    }
    std::vector<ValueId> row(attrs.size());
    switch (mode) {
      case RowMode::kIntern:
        // Dictionary mode: any word is a value; intern it per attribute.
        for (size_t i = 0; i < attrs.size(); ++i) {
          BAGC_ASSIGN_OR_RETURN(row[slot_of_column[i]],
                                intern_dicts->Intern(attrs[i],
                                                     std::string(tokens[i])));
        }
        break;
      case RowMode::kNumeric:
        // Legacy numeric mode: the historical integer format.
        for (size_t i = 0; i < attrs.size(); ++i) {
          BAGC_ASSIGN_OR_RETURN(int64_t v, ParseInt(tokens[i]));
          row[slot_of_column[i]] = EncodeValue(v);
        }
        break;
      case RowMode::kRawIds:
        // Streaming mode: tokens ARE the ids; no interning, no string
        // hashing — just a bounds check against the shipped dictionary.
        for (size_t i = 0; i < attrs.size(); ++i) {
          BAGC_ASSIGN_OR_RETURN(uint64_t raw, ParseUint(tokens[i]));
          if (raw >= column_dict[i]->size()) {
            return Status::OutOfRange(
                "row id " + std::string(tokens[i]) +
                " was never issued for attribute '" + header[i + 1] +
                "' (dictionary has " +
                std::to_string(column_dict[i]->size()) + " values)");
          }
          row[slot_of_column[i]] = static_cast<ValueId>(raw);
        }
        break;
    }
    BAGC_ASSIGN_OR_RETURN(uint64_t mult, ParseUint(tokens.back()));
    Tuple t = Tuple::OfIds(std::move(row));
    if (seen.Find(t) != nullptr) {
      return Status::InvalidArgument("duplicate tuple: '" + std::string(line) + "'");
    }
    if (mult != 0) {
      seen.Insert(t, 0);
      BAGC_RETURN_NOT_OK(builder.Add(std::move(t), mult));
    }
  }
  return builder.Build();
}

}  // namespace

Result<Bag> ParseBag(const std::vector<std::string>& lines, size_t* pos,
                     AttributeCatalog* catalog, DictionarySet* dicts) {
  return ParseBagImpl(lines, pos, catalog,
                      dicts == nullptr ? RowMode::kNumeric : RowMode::kIntern,
                      dicts, nullptr);
}

Result<Bag> ParseBagU32(const std::vector<std::string>& lines, size_t* pos,
                        AttributeCatalog* catalog, const DictionarySet& dicts) {
  return ParseBagImpl(lines, pos, catalog, RowMode::kRawIds, nullptr, &dicts);
}

Result<Bag> BagFromU32Columns(const std::vector<std::string>& attr_names,
                              const ColumnView& columns, const uint64_t* mults,
                              AttributeCatalog* catalog,
                              const DictionarySet& dicts) {
  if (attr_names.size() != columns.arity()) {
    return Status::InvalidArgument("attribute names do not match column count");
  }
  if (attr_names.empty()) {
    return Status::InvalidArgument("a bag needs at least one attribute");
  }
  std::vector<AttrId> attrs;
  attrs.reserve(attr_names.size());
  for (const std::string& name : attr_names) {
    attrs.push_back(catalog->Intern(name));
  }
  Schema schema{attrs};
  if (schema.arity() != attrs.size()) {
    return Status::InvalidArgument("duplicate attribute in bag header");
  }
  // Same validation order as the text arm: every column's dictionary
  // resolved up front, ids bounds-checked per row.
  std::vector<const ValueDictionary*> column_dict(attrs.size(), nullptr);
  for (size_t c = 0; c < attrs.size(); ++c) {
    column_dict[c] = dicts.find_dict(attrs[c]);
    if (column_dict[c] == nullptr) {
      return Status::FailedPrecondition(
          "u32 rows require a dictionary for attribute '" + attr_names[c] +
          "'; ship its DICT block first");
    }
  }
  std::vector<size_t> slot_of_column(attrs.size());
  for (size_t c = 0; c < attrs.size(); ++c) {
    BAGC_ASSIGN_OR_RETURN(slot_of_column[c], schema.IndexOf(attrs[c]));
  }
  size_t n = columns.num_rows();
  BagBuilder builder(schema);
  TupleIndex seen;
  std::vector<ValueId> row(attrs.size());
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < attrs.size(); ++c) {
      ValueId id = columns.at(r, c);
      if (id >= column_dict[c]->size()) {
        return Status::OutOfRange(
            "row id " + std::to_string(id) + " was never issued for attribute '" +
            attr_names[c] + "' (dictionary has " +
            std::to_string(column_dict[c]->size()) + " values)");
      }
      row[slot_of_column[c]] = id;
    }
    Tuple t = Tuple::OfIds(row);
    if (seen.Find(t) != nullptr) {
      return Status::InvalidArgument("duplicate tuple at row " +
                                     std::to_string(r));
    }
    if (mults[r] != 0) {
      seen.Insert(t, 0);
      BAGC_RETURN_NOT_OK(builder.Add(std::move(t), mults[r]));
    }
  }
  return builder.Build();
}

Result<Bag> BagBorrowU32Columns(const std::vector<std::string>& attr_names,
                                const ColumnView& columns,
                                const uint64_t* mults,
                                AttributeCatalog* catalog,
                                const DictionarySet& dicts,
                                std::shared_ptr<const void> keep_alive) {
  if (attr_names.size() != columns.arity()) {
    return Status::InvalidArgument("attribute names do not match column count");
  }
  if (attr_names.empty()) {
    return Status::InvalidArgument("a bag needs at least one attribute");
  }
  std::vector<AttrId> attrs;
  attrs.reserve(attr_names.size());
  for (const std::string& name : attr_names) {
    attrs.push_back(catalog->Intern(name));
  }
  Schema schema{attrs};
  if (schema.arity() != attrs.size()) {
    return Status::InvalidArgument("duplicate attribute in bag header");
  }
  // Borrowing cannot permute: the mapped columns are served exactly as
  // written, so column c must already be schema slot c.
  if (schema.attrs() != attrs) {
    return Status::FailedPrecondition(
        "segment columns are not in sorted-schema order; re-ingest by copy");
  }
  size_t n = columns.num_rows();
  const ValueId* base = columns.column(0);
  for (size_t c = 0; c < attrs.size(); ++c) {
    const ValueDictionary* dict = dicts.find_dict(attrs[c]);
    if (dict == nullptr) {
      return Status::FailedPrecondition(
          "u32 rows require a dictionary for attribute '" + attr_names[c] +
          "'; ship its DICT block first");
    }
    // BorrowColumnar wants one contiguous column-major block; segment
    // columns are laid out that way, anything else falls back to a copy.
    if (columns.column(c) != base + c * n) {
      return Status::FailedPrecondition(
          "segment columns are not contiguous column-major");
    }
    // Bounds check the whole column at once (SIMD max-reduce) instead of
    // per-row: every id a column carries must have been issued by its
    // dictionary.
    if (n > 0) {
      uint32_t max_id = simd::MaxU32(columns.column(c), n,
                                     simd::SimdLevel::kAuto);
      if (max_id >= dict->size()) {
        return Status::OutOfRange(
            "row id " + std::to_string(max_id) +
            " was never issued for attribute '" + attr_names[c] +
            "' (dictionary has " + std::to_string(dict->size()) + " values)");
      }
    }
  }
  // BorrowColumnar validates the remaining sealed invariants: rows
  // strictly ascending (which also rules out duplicates) and every
  // multiplicity positive.
  return Bag::BorrowColumnar(std::move(schema), base, mults, n,
                             std::move(keep_alive));
}

Result<std::vector<Bag>> ParseCollection(const std::string& input,
                                         AttributeCatalog* catalog,
                                         DictionarySet* dicts) {
  std::vector<std::string> lines = SplitLines(input);
  std::vector<Bag> bags;
  size_t pos = 0;
  while (true) {
    while (pos < lines.size() && StripComment(lines[pos]).empty()) ++pos;
    if (pos >= lines.size()) break;
    BAGC_ASSIGN_OR_RETURN(Bag bag, ParseBag(lines, &pos, catalog, dicts));
    bags.push_back(std::move(bag));
  }
  if (bags.empty()) {
    return Status::InvalidArgument("no bag blocks found in input");
  }
  return bags;
}

}  // namespace bagc
