#include "bag/bag_io.h"

#include <charconv>
#include <sstream>

#include "tuple/tuple_index.h"

namespace bagc {

namespace {

std::vector<std::string> SplitWhitespace(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream iss(line);
  std::string token;
  while (iss >> token) out.push_back(token);
  return out;
}

std::vector<std::string> SplitLines(const std::string& input) {
  std::vector<std::string> lines;
  std::istringstream iss(input);
  std::string line;
  while (std::getline(iss, line)) lines.push_back(line);
  return lines;
}

// Strips a trailing comment and surrounding whitespace.
std::string StripComment(const std::string& line) {
  size_t hash = line.find('#');
  std::string s = hash == std::string::npos ? line : line.substr(0, hash);
  size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

Result<int64_t> ParseInt(const std::string& token) {
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::InvalidArgument("not an integer: '" + token + "'");
  }
  return value;
}

Result<uint64_t> ParseUint(const std::string& token) {
  uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::InvalidArgument("not a non-negative integer: '" + token + "'");
  }
  return value;
}

}  // namespace

std::string WriteBag(const Bag& bag, const AttributeCatalog& catalog,
                     const DictionarySet* dicts) {
  std::string out = "bag";
  for (AttrId a : bag.schema().attrs()) {
    out += " " + catalog.Name(a);
  }
  out += "\n";
  // Resolve each slot's dictionary once; slots without one (numerically
  // built bags, or attributes the set never saw) decode via the codec.
  std::vector<const ValueDictionary*> slot_dict(bag.schema().arity(), nullptr);
  if (dicts != nullptr) {
    for (size_t i = 0; i < bag.schema().arity(); ++i) {
      slot_dict[i] = dicts->find_dict(bag.schema().at(i));
    }
  }
  for (const auto& [t, mult] : bag.entries()) {
    for (size_t i = 0; i < t.arity(); ++i) {
      const ValueDictionary* d = slot_dict[i];
      if (d != nullptr && t.id(i) < d->size()) {
        out += d->ExternalOf(t.id(i)) + " ";
      } else {
        out += std::to_string(t.at(i)) + " ";
      }
    }
    out += ": " + std::to_string(mult) + "\n";
  }
  out += "end\n";
  return out;
}

std::string WriteCollection(const std::vector<Bag>& bags,
                            const AttributeCatalog& catalog,
                            const DictionarySet* dicts) {
  std::string out;
  for (const Bag& bag : bags) out += WriteBag(bag, catalog, dicts);
  return out;
}

Result<Bag> ParseBag(const std::vector<std::string>& lines, size_t* pos,
                     AttributeCatalog* catalog, DictionarySet* dicts) {
  // Skip blank/comment lines.
  while (*pos < lines.size() && StripComment(lines[*pos]).empty()) ++(*pos);
  if (*pos >= lines.size()) {
    return Status::InvalidArgument("expected 'bag' header, found end of input");
  }
  std::vector<std::string> header = SplitWhitespace(StripComment(lines[*pos]));
  if (header.empty() || header[0] != "bag") {
    return Status::InvalidArgument("expected 'bag <attrs...>' at line " +
                                   std::to_string(*pos + 1));
  }
  ++(*pos);
  std::vector<AttrId> attrs;
  for (size_t i = 1; i < header.size(); ++i) {
    attrs.push_back(catalog->Intern(header[i]));
  }
  Schema schema{attrs};
  if (schema.arity() != header.size() - 1) {
    return Status::InvalidArgument("duplicate attribute in bag header");
  }
  // The sorted schema layout may permute the header order: remember where
  // each header column lands.
  std::vector<size_t> slot_of_column(attrs.size());
  for (size_t i = 0; i < attrs.size(); ++i) {
    BAGC_ASSIGN_OR_RETURN(slot_of_column[i], schema.IndexOf(attrs[i]));
  }
  BagBuilder builder(schema);
  // Tuples already carrying a nonzero multiplicity; a repeat is an error.
  TupleIndex seen;
  while (true) {
    if (*pos >= lines.size()) {
      return Status::InvalidArgument("unterminated bag block (missing 'end')");
    }
    std::string line = StripComment(lines[*pos]);
    ++(*pos);
    if (line.empty()) continue;
    if (line == "end") break;
    std::vector<std::string> tokens = SplitWhitespace(line);
    // Expect: v1 ... vk : mult
    if (tokens.size() != attrs.size() + 2 || tokens[attrs.size()] != ":") {
      return Status::InvalidArgument("bad tuple line: '" + line + "'");
    }
    std::vector<ValueId> row(attrs.size());
    if (dicts != nullptr) {
      // Dictionary mode: any word is a value; intern it per attribute.
      for (size_t i = 0; i < attrs.size(); ++i) {
        BAGC_ASSIGN_OR_RETURN(row[slot_of_column[i]],
                              dicts->Intern(attrs[i], tokens[i]));
      }
    } else {
      // Legacy numeric mode: the historical integer format.
      for (size_t i = 0; i < attrs.size(); ++i) {
        BAGC_ASSIGN_OR_RETURN(int64_t v, ParseInt(tokens[i]));
        row[slot_of_column[i]] = EncodeValue(v);
      }
    }
    BAGC_ASSIGN_OR_RETURN(uint64_t mult, ParseUint(tokens.back()));
    Tuple t = Tuple::OfIds(std::move(row));
    if (seen.Find(t) != nullptr) {
      return Status::InvalidArgument("duplicate tuple: '" + line + "'");
    }
    if (mult != 0) {
      seen.Insert(t, 0);
      BAGC_RETURN_NOT_OK(builder.Add(std::move(t), mult));
    }
  }
  return builder.Build();
}

Result<std::vector<Bag>> ParseCollection(const std::string& input,
                                         AttributeCatalog* catalog,
                                         DictionarySet* dicts) {
  std::vector<std::string> lines = SplitLines(input);
  std::vector<Bag> bags;
  size_t pos = 0;
  while (true) {
    while (pos < lines.size() && StripComment(lines[pos]).empty()) ++pos;
    if (pos >= lines.size()) break;
    BAGC_ASSIGN_OR_RETURN(Bag bag, ParseBag(lines, &pos, catalog, dicts));
    bags.push_back(std::move(bag));
  }
  if (bags.empty()) {
    return Status::InvalidArgument("no bag blocks found in input");
  }
  return bags;
}

}  // namespace bagc
