// Bag (multiset relation): a finite-support function Tup(X) -> Z_{>=0}
// (paper §2). Marginals implement Equation (2); the bag join implements
// ⋈_b. Support rows are kept sorted by tuple so iteration order — and
// hence all downstream algorithms and printouts — is deterministic.
//
// Storage has two representations, exactly one of which is live:
//
//  * Row (AoS): a flat vector of (Tuple, multiplicity) entries. The
//    construction/mutation form — builders, Set/Add, delta staging.
//  * Columnar (SoA): one ColumnStore holding the sorted rows column-major
//    plus a flat multiplicity array. The *serving* form: sealed bags hand
//    ownership of their rows to the ColumnStore and keep no per-row
//    Tuples alive at all (SealColumnar), which roughly halves resident
//    memory and is the layout every hot kernel (HashRows, ProbeAll,
//    GroupColumns) runs on. The BAGCSEG mmap segment format is the
//    on-disk twin: BorrowColumnar serves a mapped segment in place.
//
// "ColumnStore is the bag": on a columnar-sealed bag, per-row Tuples
// exist only on demand via RowAt, and only cold paths may ask — witness
// decode, text write-out, delta staging (any mutator materializes the
// row form first via copy-on-write). Hot paths use IdAt/MultiplicityAt/
// Columns() and never allocate. entries() CHECK-fails on a columnar bag
// so a hot path regressing into row iteration aborts tests instead of
// silently re-materializing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tuple/attribute.h"
#include "tuple/column_store.h"
#include "tuple/schema.h"
#include "tuple/tuple.h"
#include "util/checked_math.h"
#include "util/logging.h"
#include "util/result.h"
#include "util/simd.h"

namespace bagc {

class BagBuilder;

/// \brief A finite bag over a schema X: tuples with positive multiplicity.
///
/// The multiplicity of any tuple not in the support is 0. All arithmetic on
/// multiplicities is overflow-checked; mutators return Status.
class Bag {
 public:
  using Entry = std::pair<Tuple, uint64_t>;
  /// Flat storage, sorted ascending by tuple; multiplicities positive.
  using Entries = std::vector<Entry>;

  Bag() = default;
  explicit Bag(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  /// Sets R(t) := mult (erasing the entry when mult == 0).
  Status Set(const Tuple& t, uint64_t mult);
  /// Adds mult to R(t), overflow-checked.
  Status Add(const Tuple& t, uint64_t mult);

  /// R(t); 0 when t not in the support. Columnar bags binary-search the
  /// column store (same Tuple::operator< order, no materialization).
  uint64_t Multiplicity(const Tuple& t) const;

  /// Applies signed row deltas in place: delta > 0 inserts (multiplicity
  /// bump, overflow-checked), delta < 0 deletes (a delete to zero removes
  /// the row from the support). Opposed deltas on the same tuple cancel
  /// before validation. All-or-nothing: arity mismatches
  /// (InvalidArgument), a delete below zero (OutOfRange), or an overflow
  /// leave the bag untouched. Copy-on-write as with every mutator — other
  /// bags sharing this storage keep the pre-delta rows. A columnar-sealed
  /// bag materializes its row form first (delta staging is a sanctioned
  /// cold path); re-seal with SealColumnar afterwards.
  Status ApplyRowDeltas(const std::vector<std::pair<Tuple, int64_t>>& deltas);

  /// |Supp(R)| — the support size ||R||_supp of §5.2.
  size_t SupportSize() const {
    return columnar_ ? columnar_->columns.num_rows()
                     : (entries_ ? entries_->size() : 0);
  }
  bool IsEmpty() const { return SupportSize() == 0; }

  // ---- Representation-agnostic row access ----

  /// Id of (sorted row i, schema slot c); never allocates.
  ValueId IdAt(size_t i, size_t c) const {
    return columnar_ ? columnar_->columns.column(c)[i]
                     : (*entries_)[i].first.id(c);
  }
  /// Multiplicity of the i-th smallest support tuple.
  uint64_t MultiplicityAt(size_t i) const {
    return columnar_ ? columnar_->mult_data()[i] : (*entries_)[i].second;
  }
  /// Materializes the i-th smallest support tuple. COLD PATHS ONLY
  /// (witness decode, text write-out, delta staging): allocates a fresh
  /// Tuple per call on a columnar bag.
  Tuple RowAt(size_t i) const {
    return columnar_ ? columnar_->columns.RowAt(i) : (*entries_)[i].first;
  }

  // ---- Columnar (sealed) representation ----

  /// True when the bag's storage is the column store (no row vector).
  bool columnar_sealed() const { return columnar_ != nullptr; }

  /// Converts row storage into the columnar form, dropping the flat
  /// entry vector (other bags sharing it keep theirs). No-op when
  /// already columnar. Every later mutation materializes rows again
  /// via copy-on-write.
  void SealColumnar();

  /// View over the sorted rows (all schema slots). Columnar bags only.
  ColumnView Columns() const {
    BAGC_CHECK(columnar_ != nullptr && "Columns() requires a columnar-sealed bag");
    return columnar_->columns.View();
  }

  /// The multiplicity array, index-aligned with Columns(). Columnar only.
  const uint64_t* MultiplicityData() const {
    BAGC_CHECK(columnar_ != nullptr &&
               "MultiplicityData() requires a columnar-sealed bag");
    return columnar_->mult_data();
  }

  /// Shares the bag's own column store (aliased shared_ptr keeping the
  /// whole columnar rep alive); null for a row-form bag. Lets the engine
  /// cache per-bag columns across generations without copying.
  std::shared_ptr<const ColumnStore> SharedColumns() const;

  /// Builds a columnar-sealed bag from an owned column store + aligned
  /// multiplicities. Validates the sealed-bag invariants — rows strictly
  /// ascending (Tuple order), multiplicities positive, sizes aligned.
  static Result<Bag> FromColumnar(Schema schema, ColumnStore columns,
                                  std::vector<uint64_t> mults);

  /// Zero-copy columnar bag over external memory (the BAGCSEG mmap path):
  /// `column_major` / `mults` must stay valid for the bag's lifetime,
  /// which `keep_alive` (e.g. a shared SegmentReader) guarantees.
  /// Validates the same invariants as FromColumnar.
  static Result<Bag> BorrowColumnar(Schema schema, const ValueId* column_major,
                                    const uint64_t* mults, size_t rows,
                                    std::shared_ptr<const void> keep_alive);

  /// Sorted (tuple, multiplicity) entries of a ROW-FORM bag. CHECK-fails
  /// on a columnar-sealed bag: migrate the caller to IdAt/MultiplicityAt/
  /// RowAt (hot) or Columns() (bulk) instead. The reference is
  /// invalidated by any later mutation of this bag (entries are
  /// copy-on-write; a mutation may swap the storage).
  const Entries& entries() const {
    BAGC_CHECK(columnar_ == nullptr &&
               "entries() on a columnar-sealed bag - use RowAt/IdAt/Columns");
    return entries_ ? *entries_ : NoEntries();
  }

  /// The i-th entry in sorted order; requires i < SupportSize().
  const Entry& entry(size_t i) const { return entries()[i]; }

  /// Marginal R[Z] per Equation (2); requires Z ⊆ X. Columnar-sealed
  /// bags always group columnar; row-form bags dispatch on support size
  /// (>= min_rows groups via the columnar path, smaller via the row
  /// path; identical output). min_rows = 0 means kColumnarMinRows.
  Result<Bag> Marginal(const Schema& z) const;
  Result<Bag> Marginal(const Schema& z, size_t min_rows,
                       simd::SimdLevel level) const;

  /// Marginal via the row path: per-row Tuple projection + sort/merge.
  /// The reference implementation the differential harness pins the
  /// columnar path against; also the small-bag fast path.
  Result<Bag> MarginalRows(const Schema& z) const;

  /// Marginal via the columnar path: project the Z columns (zero-copy on
  /// a columnar bag), group them with GroupColumns.
  Result<Bag> MarginalColumnar(const Schema& z,
                               simd::SimdLevel level = simd::SimdLevel::kAuto) const;

  /// Columnar grouping core: `projected` holds Z-layout columns whose row
  /// i carries multiplicity mults[i] (> 0); both have n rows. Sums
  /// multiplicities of equal rows (overflow-checked) and returns the
  /// sorted marginal over z, columnar-sealed. `level` picks the kernel:
  /// arity <= 2 key ranges that pass the density gate use the radix
  /// (dense-key) group-by with SIMD max/pack; everything else — and all
  /// of kScalar, the differential twin — hash-groups via ColumnIndex.
  /// All paths produce bit-identical bags.
  static Result<Bag> GroupColumns(const Schema& z, const ColumnView& projected,
                                  const uint64_t* mults, size_t n,
                                  simd::SimdLevel level = simd::SimdLevel::kAuto);

  /// Back-compat overload reading multiplicities from source[i].second.
  static Result<Bag> GroupColumns(const Schema& z, const ColumnView& projected,
                                  const Entries& source);

  /// Column-major copy of the sorted rows (one contiguous ValueId column
  /// per schema slot). On a columnar-sealed bag this borrows the live
  /// store (zero-copy; the bag must outlive the result); on a row-form
  /// bag it gathers. Multiplicities stay with the bag (MultiplicityAt).
  ColumnStore ToColumns() const;

  /// Projects onto proj's columns: zero-copy Select on a columnar bag,
  /// a gather into *backing otherwise. The view borrows from this bag
  /// (or from *backing), so both must outlive it.
  ColumnView ProjectedView(const Projector& proj, ColumnStore* backing) const;

  /// Bag join R ⋈_b S: support R' ⋈ S', multiplicity R(t[X]) * S(t[Y]).
  static Result<Bag> Join(const Bag& r, const Bag& s);

  /// Bag containment R ⊆_b S: R(t) <= S(t) for all t.
  static bool Contained(const Bag& r, const Bag& s);

  /// Equality as functions (schema and all multiplicities). Two columnar
  /// bags compare by flat memcmp of columns + multiplicities; mixed
  /// representations compare row-wise without materializing.
  bool operator==(const Bag& o) const;
  bool operator!=(const Bag& o) const { return !(*this == o); }

  // ---- Size measures of §5.2 ----

  /// ||R||_mu: the largest multiplicity (0 for the empty bag).
  uint64_t MultiplicityBound() const;
  /// ||R||_mb: max over support of ceil(log2(R(r) + 1)) bits.
  uint64_t MultiplicitySize() const;
  /// ||R||_u = Σ R(r): total multiset cardinality, overflow-checked.
  Result<uint64_t> UnarySize() const;
  /// ||R||_b = Σ ceil(log2(R(r) + 1)): binary representation size.
  uint64_t BinarySize() const;

  /// Approximate resident bytes of this bag's storage (the STATS
  /// `sealed_bytes` accounting): columnar = columns + mult array (0 for
  /// borrowed/mmap-backed spans), row form = per-entry Tuple vectors.
  size_t ApproxBytes() const;

  /// The support as a set-semantics Relation is provided by
  /// Relation::SupportOf (see relation.h) to keep layering acyclic.

  /// Tabular rendering ("a b : 3" rows) with attribute names.
  std::string ToString(const AttributeCatalog& catalog) const;
  std::string ToString() const;

 private:
  friend class BagBuilder;

  // Columnar (SoA) storage: sorted rows column-major plus an aligned
  // multiplicity array. Immutable once built; shared across Bag copies
  // (and aliased by SharedColumns), so a copy is a refcount bump exactly
  // like the row form. `keep_alive` pins external memory (an mmap'd
  // segment) behind a borrowed store/mult span.
  struct Columnar {
    ColumnStore columns;
    std::vector<uint64_t> mults;             // owned; empty when borrowed
    const uint64_t* borrowed_mults = nullptr;
    std::shared_ptr<const void> keep_alive;
    const uint64_t* mult_data() const {
      return borrowed_mults != nullptr ? borrowed_mults : mults.data();
    }
  };

  // Position of the first entry with tuple >= t (within `es`).
  static Entries::iterator LowerBound(Entries& es, const Tuple& t);
  Entries::const_iterator LowerBound(const Tuple& t) const;

  // The shared empty vector behind entries() of a bag with no storage.
  static const Entries& NoEntries();
  // Copy-on-write gate: returns uniquely-owned row storage, cloning the
  // shared vector — or materializing rows from the columnar form — first
  // if needed. Every mutator goes through here; const accessors never do.
  Entries& MutableEntries();
  // Adopts freshly built storage (bulk construction paths).
  void AdoptEntries(Entries entries) {
    entries_ = std::make_shared<Entries>(std::move(entries));
    columnar_.reset();
  }
  // Adopts a fully built columnar rep (GroupColumns, factories). The rep
  // must satisfy the sealed invariants; no validation here.
  void AdoptColumnar(std::shared_ptr<const Columnar> rep) {
    columnar_ = std::move(rep);
    entries_.reset();
  }
  // Shared invariant check behind FromColumnar/BorrowColumnar.
  static Status ValidateColumnar(const Schema& schema, const ColumnView& rows,
                                 const uint64_t* mults);

  // GroupColumns kernels. Dense: pack each row's (<= 2) key ids into one
  // integer and accumulate into a flat table scanned in key order —
  // valid only when all ids are direct-range (ascending id == Tuple
  // order) and the key range passed the density gate. Hashed: the
  // general path (ColumnIndex grouping + sort by lead row) and the
  // scalar differential twin.
  static Result<Bag> GroupDense(const Schema& z, const ColumnView& projected,
                                const uint64_t* mults, size_t n,
                                uint64_t stride, uint64_t table,
                                simd::SimdLevel level);
  static Result<Bag> GroupHashed(const Schema& z, const ColumnView& projected,
                                 const uint64_t* mults, size_t n,
                                 simd::SimdLevel level);

  Schema schema_;
  // Row storage, shared across copies until one of them mutates. Copying
  // a Bag — collections handed to an engine, snapshot generations,
  // subcollections — is a refcount bump, which is what makes an
  // incremental re-seal's "reship every untouched bag" step O(m) pointer
  // copies instead of O(total rows). Null when empty or columnar-sealed.
  std::shared_ptr<Entries> entries_;
  // Columnar storage; null when the bag is in row form. At most one of
  // entries_/columnar_ is non-null.
  std::shared_ptr<const Columnar> columnar_;
};

/// \brief Accumulates (tuple, multiplicity) rows and seals them into a Bag
/// with one sort + merge, instead of a per-insert search.
///
/// Duplicate tuples merge by overflow-checked addition; zero-multiplicity
/// rows are dropped. This is the construction path for every bulk producer
/// (marginals, joins, witness extraction, generators).
class BagBuilder {
 public:
  explicit BagBuilder(Schema schema) : schema_(std::move(schema)) {}

  void Reserve(size_t n) { pending_.reserve(n); }

  /// Appends a row; arity-checked, zero multiplicities ignored.
  Status Add(Tuple t, uint64_t mult);

  /// Appends a row of *external* values (tokens[i] is the value of
  /// schema.at(i)), interning each through `dicts` — the sealing path for
  /// string-valued data. Rows added this way are id-comparable with every
  /// other bag sealed through the same DictionarySet.
  Status AddExternal(const std::vector<std::string>& tokens, uint64_t mult,
                     DictionarySet* dicts);

  /// Sorts, merges duplicates (checked add), and moves the result out.
  /// The builder is empty afterwards — including on error (an overflow
  /// during the merge discards the pending rows) — and may be reused for
  /// the same schema.
  Result<Bag> Build();

 private:
  Schema schema_;
  Bag::Entries pending_;
};

/// Convenience builder: bag over `schema` from (values..., multiplicity)
/// rows. Fails on arity mismatch or duplicate tuples.
Result<Bag> MakeBag(const Schema& schema,
                    const std::vector<std::pair<std::vector<Value>, uint64_t>>& rows);

}  // namespace bagc
