// Bag (multiset relation): a finite-support function Tup(X) -> Z_{>=0}
// (paper §2). Marginals implement Equation (2); the bag join implements
// ⋈_b. Entries are kept in a flat vector sorted by tuple so iteration
// order — and hence all downstream algorithms and printouts — is
// deterministic, and scans are cache-friendly. Bulk construction goes
// through BagBuilder, which sorts and merges once on seal instead of
// paying a per-insert search.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tuple/attribute.h"
#include "tuple/column_store.h"
#include "tuple/schema.h"
#include "tuple/tuple.h"
#include "util/checked_math.h"
#include "util/result.h"

namespace bagc {

class BagBuilder;

/// \brief A finite bag over a schema X: tuples with positive multiplicity.
///
/// The multiplicity of any tuple not in the support is 0. All arithmetic on
/// multiplicities is overflow-checked; mutators return Status.
class Bag {
 public:
  using Entry = std::pair<Tuple, uint64_t>;
  /// Flat storage, sorted ascending by tuple; multiplicities positive.
  using Entries = std::vector<Entry>;

  Bag() = default;
  explicit Bag(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  /// Sets R(t) := mult (erasing the entry when mult == 0).
  Status Set(const Tuple& t, uint64_t mult);
  /// Adds mult to R(t), overflow-checked.
  Status Add(const Tuple& t, uint64_t mult);

  /// R(t); 0 when t not in the support.
  uint64_t Multiplicity(const Tuple& t) const;

  /// Applies signed row deltas in place: delta > 0 inserts (multiplicity
  /// bump, overflow-checked), delta < 0 deletes (a delete to zero removes
  /// the row from the support). Opposed deltas on the same tuple cancel
  /// before validation. All-or-nothing: arity mismatches
  /// (InvalidArgument), a delete below zero (OutOfRange), or an overflow
  /// leave the bag untouched. Copy-on-write as with every mutator — other
  /// bags sharing this storage keep the pre-delta rows.
  Status ApplyRowDeltas(const std::vector<std::pair<Tuple, int64_t>>& deltas);

  /// |Supp(R)| — the support size ||R||_supp of §5.2.
  size_t SupportSize() const { return entries().size(); }
  bool IsEmpty() const { return entries().empty(); }

  /// Sorted (tuple, multiplicity) entries; all multiplicities positive.
  /// Random access: entries()[i] is the i-th smallest support tuple.
  /// The reference is invalidated by any later mutation of this bag
  /// (entries are copy-on-write; a mutation may swap the storage).
  const Entries& entries() const { return entries_ ? *entries_ : NoEntries(); }

  /// The i-th entry in sorted order; requires i < SupportSize().
  const Entry& entry(size_t i) const { return entries()[i]; }

  /// Marginal R[Z] per Equation (2); requires Z ⊆ X. Dispatches on
  /// support size: bags with >= kColumnarMinRows entries group via the
  /// columnar path, smaller ones via the row path (identical output).
  Result<Bag> Marginal(const Schema& z) const;

  /// Marginal via the row path: per-row Tuple projection + sort/merge.
  /// The reference implementation the differential harness pins the
  /// columnar path against; also the small-bag fast path.
  Result<Bag> MarginalRows(const Schema& z) const;

  /// Marginal via the columnar path: gather the Z columns, hash-group
  /// them in place (no per-row Tuple), sum multiplicities per group.
  Result<Bag> MarginalColumnar(const Schema& z) const;

  /// Columnar grouping core: `projected` must hold Z-layout columns whose
  /// row i corresponds to source[i] (same length); sums multiplicities of
  /// equal rows (overflow-checked) and seals the sorted marginal over z.
  /// Exposed so the ConsistencyEngine can group from its per-bag cached
  /// ColumnStore without re-gathering.
  static Result<Bag> GroupColumns(const Schema& z, const ColumnView& projected,
                                  const Entries& source);

  /// Column-major copy of the entry rows (one contiguous ValueId column
  /// per schema slot); multiplicities stay in entries(). The SoA substrate
  /// callers cache for repeated projections/probes.
  ColumnStore ToColumns() const;

  /// Bag join R ⋈_b S: support R' ⋈ S', multiplicity R(t[X]) * S(t[Y]).
  static Result<Bag> Join(const Bag& r, const Bag& s);

  /// Bag containment R ⊆_b S: R(t) <= S(t) for all t.
  static bool Contained(const Bag& r, const Bag& s);

  /// Equality as functions (schema and all multiplicities).
  bool operator==(const Bag& o) const {
    return schema_ == o.schema_ &&
           (entries_ == o.entries_ || entries() == o.entries());
  }
  bool operator!=(const Bag& o) const { return !(*this == o); }

  // ---- Size measures of §5.2 ----

  /// ||R||_mu: the largest multiplicity (0 for the empty bag).
  uint64_t MultiplicityBound() const;
  /// ||R||_mb: max over support of ceil(log2(R(r) + 1)) bits.
  uint64_t MultiplicitySize() const;
  /// ||R||_u = Σ R(r): total multiset cardinality, overflow-checked.
  Result<uint64_t> UnarySize() const;
  /// ||R||_b = Σ ceil(log2(R(r) + 1)): binary representation size.
  uint64_t BinarySize() const;

  /// The support as a set-semantics Relation is provided by
  /// Relation::SupportOf (see relation.h) to keep layering acyclic.

  /// Tabular rendering ("a b : 3" rows) with attribute names.
  std::string ToString(const AttributeCatalog& catalog) const;
  std::string ToString() const;

 private:
  friend class BagBuilder;

  // Position of the first entry with tuple >= t (within `es`).
  static Entries::iterator LowerBound(Entries& es, const Tuple& t);
  Entries::const_iterator LowerBound(const Tuple& t) const;

  // The shared empty vector behind entries() of a bag with no storage.
  static const Entries& NoEntries();
  // Copy-on-write gate: returns uniquely-owned storage, cloning the
  // shared vector first if other bags still reference it. Every mutator
  // goes through here; const accessors never do.
  Entries& MutableEntries();
  // Adopts freshly built storage (bulk construction paths).
  void AdoptEntries(Entries entries) {
    entries_ = std::make_shared<Entries>(std::move(entries));
  }

  Schema schema_;
  // Sorted entry storage, shared across copies until one of them
  // mutates. Copying a Bag — collections handed to an engine, snapshot
  // generations, subcollections — is a refcount bump, which is what
  // makes an incremental re-seal's "reship every untouched bag" step
  // O(m) pointer copies instead of O(total rows). Null means empty.
  std::shared_ptr<Entries> entries_;
};

/// \brief Accumulates (tuple, multiplicity) rows and seals them into a Bag
/// with one sort + merge, instead of a per-insert search.
///
/// Duplicate tuples merge by overflow-checked addition; zero-multiplicity
/// rows are dropped. This is the construction path for every bulk producer
/// (marginals, joins, witness extraction, generators).
class BagBuilder {
 public:
  explicit BagBuilder(Schema schema) : schema_(std::move(schema)) {}

  void Reserve(size_t n) { pending_.reserve(n); }

  /// Appends a row; arity-checked, zero multiplicities ignored.
  Status Add(Tuple t, uint64_t mult);

  /// Appends a row of *external* values (tokens[i] is the value of
  /// schema.at(i)), interning each through `dicts` — the sealing path for
  /// string-valued data. Rows added this way are id-comparable with every
  /// other bag sealed through the same DictionarySet.
  Status AddExternal(const std::vector<std::string>& tokens, uint64_t mult,
                     DictionarySet* dicts);

  /// Sorts, merges duplicates (checked add), and moves the result out.
  /// The builder is empty afterwards — including on error (an overflow
  /// during the merge discards the pending rows) — and may be reused for
  /// the same schema.
  Result<Bag> Build();

 private:
  Schema schema_;
  Bag::Entries pending_;
};

/// Convenience builder: bag over `schema` from (values..., multiplicity)
/// rows. Fails on arity mismatch or duplicate tuples.
Result<Bag> MakeBag(const Schema& schema,
                    const std::vector<std::pair<std::vector<Value>, uint64_t>>& rows);

}  // namespace bagc
