#include "util/status.h"

namespace bagc {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kArithmeticOverflow:
      return "Arithmetic overflow";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "Not implemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace bagc
