// Deterministic PRNG for workload generators and property tests.
// All generated workloads in bagc take an explicit seed so every
// experiment in EXPERIMENTS.md is reproducible bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace bagc {

/// \brief xoshiro256** PRNG, seeded via splitmix64.
///
/// Not cryptographic; chosen for speed, quality, and full reproducibility
/// across platforms (no reliance on std::mt19937 distribution details).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform value in [0, bound) using Lemire's unbiased method; bound > 0.
  uint64_t Below(uint64_t bound);

  /// Uniform value in [lo, hi] inclusive; requires lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi);

  /// Bernoulli trial with probability num/den; requires num <= den, den > 0.
  bool Chance(uint64_t num, uint64_t den);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Below(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Picks k distinct indices from [0, n); requires k <= n.
  std::vector<size_t> Sample(size_t n, size_t k);

 private:
  uint64_t s_[4];
};

}  // namespace bagc
