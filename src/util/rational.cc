#include "util/rational.h"

#include <cstdlib>
#include <limits>
#include <numeric>

namespace bagc {

namespace {

using Int128 = __int128;

// Reduces n/d (d != 0) to canonical form; errors if it does not fit int64.
Result<Rational> Reduce(Int128 n, Int128 d) {
  if (d == 0) return Status::InvalidArgument("rational with zero denominator");
  if (d < 0) {
    n = -n;
    d = -d;
  }
  Int128 a = n < 0 ? -n : n;
  Int128 b = d;
  while (b != 0) {
    Int128 t = a % b;
    a = b;
    b = t;
  }
  if (a != 0) {
    n /= a;
    d /= a;
  } else {
    d = 1;  // canonical zero
  }
  constexpr Int128 kMin = std::numeric_limits<int64_t>::min();
  constexpr Int128 kMax = std::numeric_limits<int64_t>::max();
  if (n < kMin || n > kMax || d > kMax) {
    return Status::ArithmeticOverflow("rational does not fit in int64/int64");
  }
  return Rational::Make(static_cast<int64_t>(n), static_cast<int64_t>(d));
}

}  // namespace

Result<Rational> Rational::Make(int64_t num, int64_t den) {
  if (den == 0) return Status::InvalidArgument("rational with zero denominator");
  if (den < 0) {
    if (num == std::numeric_limits<int64_t>::min() ||
        den == std::numeric_limits<int64_t>::min()) {
      return Reduce(static_cast<Int128>(num), static_cast<Int128>(den));
    }
    num = -num;
    den = -den;
  }
  int64_t g = std::gcd(num < 0 ? -static_cast<uint64_t>(num) : static_cast<uint64_t>(num),
                       static_cast<uint64_t>(den));
  Rational r;
  if (g > 1) {
    num /= g;
    den /= g;
  }
  if (num == 0) den = 1;
  r.num_ = num;
  r.den_ = den;
  return r;
}

Result<Rational> Rational::Add(const Rational& a, const Rational& b) {
  Int128 n = static_cast<Int128>(a.num_) * b.den_ + static_cast<Int128>(b.num_) * a.den_;
  Int128 d = static_cast<Int128>(a.den_) * b.den_;
  return Reduce(n, d);
}

Result<Rational> Rational::Sub(const Rational& a, const Rational& b) {
  Int128 n = static_cast<Int128>(a.num_) * b.den_ - static_cast<Int128>(b.num_) * a.den_;
  Int128 d = static_cast<Int128>(a.den_) * b.den_;
  return Reduce(n, d);
}

Result<Rational> Rational::Mul(const Rational& a, const Rational& b) {
  Int128 n = static_cast<Int128>(a.num_) * b.num_;
  Int128 d = static_cast<Int128>(a.den_) * b.den_;
  return Reduce(n, d);
}

Result<Rational> Rational::Div(const Rational& a, const Rational& b) {
  if (b.is_zero()) return Status::InvalidArgument("division by zero rational");
  Int128 n = static_cast<Int128>(a.num_) * b.den_;
  Int128 d = static_cast<Int128>(a.den_) * b.num_;
  return Reduce(n, d);
}

int Rational::Compare(const Rational& a, const Rational& b) {
  Int128 lhs = static_cast<Int128>(a.num_) * b.den_;
  Int128 rhs = static_cast<Int128>(b.num_) * a.den_;
  if (lhs < rhs) return -1;
  if (lhs > rhs) return 1;
  return 0;
}

std::string Rational::ToString() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

}  // namespace bagc
