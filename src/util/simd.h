// Runtime-dispatched SIMD kernels for the columnar hot loops.
//
// The engine's inner loops — batch row hashing (ColumnView::HashRows),
// first-probe bucket lookups (ColumnIndex::ProbeAll), and the dense
// group-by key pack (Bag::GroupColumns) — run over contiguous u32/u64
// spans. This header makes their vectorization explicit instead of
// trusting the autovectorizer: each kernel has a scalar reference
// implementation and hand-written SSE4.2/AVX2 (x86) or NEON (arm64)
// variants, selected at runtime from cpuid.
//
// Contract: every variant of a kernel is bit-identical to its scalar
// twin on every input (integer arithmetic only, same per-element
// operation order). tests/simd_kernel_test.cc pins this differentially
// at every level the host supports, and callers expose the level as an
// option (EngineOptions::simd) so any path can be forced scalar.
//
// Dispatch: DetectSimdLevel() probes the CPU once; ActiveSimdLevel() is
// the process-wide default (settable, e.g. bagcd --simd=scalar).
// Kernels take an explicit SimdLevel; pass kAuto to use the active
// level. Levels the host lacks fall back to the best supported one, so
// a kernel call never executes an unsupported instruction.
//
// Building with -DBAGC_FORCE_SCALAR_SIMD compiles the vector variants
// out entirely (the CI scalar-fallback leg does this, in addition to
// -mno-avx2, proving nothing on the serving path requires them).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace bagc {
namespace simd {

/// Instruction-set tiers, ordered by preference within an architecture.
enum class SimdLevel : uint8_t {
  kScalar = 0,
  kSSE42 = 1,  // x86: SSE4.1/4.2 (2-lane u64)
  kAVX2 = 2,   // x86: AVX2 (4-lane u64, 8-lane u32, hardware gather)
  kNEON = 3,   // arm64: Advanced SIMD (2-lane u64, 4-lane u32)
  kAuto = 255, // resolve to ActiveSimdLevel() at the call site
};

/// Best level this host supports (probed once, cached).
SimdLevel DetectSimdLevel();

/// True when `level` can execute on this host (kScalar always can).
bool LevelSupported(SimdLevel level);

/// Process-wide default level; starts at DetectSimdLevel().
SimdLevel ActiveSimdLevel();

/// Sets the process-wide default. kAuto or an unsupported level resets
/// to DetectSimdLevel().
void SetActiveSimdLevel(SimdLevel level);

/// kAuto -> ActiveSimdLevel(); unsupported levels degrade to the best
/// supported one. The result is always directly executable.
SimdLevel Resolve(SimdLevel level);

/// "scalar", "sse4.2", "avx2", "neon", "auto".
const char* SimdLevelName(SimdLevel level);

/// Parses SimdLevelName spellings; returns false on unknown input.
bool ParseSimdLevel(const std::string& name, SimdLevel* out);

// ---- Kernels ----------------------------------------------------------
// All kernels resolve `level` via Resolve() internally, so kAuto and
// unsupported levels are safe to pass.

/// Batch row hash: out[r] = HashSeed(arity) combined (util/hash.h
/// HashCombine order) with cols[0][r], cols[1][r], ..., i.e. exactly
/// Tuple::Hash of row r. Columns are contiguous u32 spans of length n.
/// Vector variants keep the running hash of a row block in registers
/// across all columns (one pass over memory per column, no per-column
/// reload of out[]).
void HashRowsKernel(const uint32_t* const* cols, size_t arity, size_t n,
                    uint64_t* out, SimdLevel level);

/// Max over col[0..n); 0 when n == 0. (The dense group-by range gate.)
uint32_t MaxU32(const uint32_t* col, size_t n, SimdLevel level);

/// keys[r] = uint64(a[r]) * stride + b[r] — the packed radix key of an
/// arity-2 group-by. Caller guarantees the product cannot exceed 64 bits.
void PackKeys2(const uint32_t* a, const uint32_t* b, uint64_t stride,
               size_t n, uint64_t* keys, SimdLevel level);

/// tags[r] = slots[hashes[r] & mask] — the first-probe load of an
/// open-addressing table, batched so the lookups overlap (AVX2 uses
/// hardware gather). `mask` must be < 2^31 (table capacity <= 2^31).
void GatherSlotTags(const uint32_t* slots, uint64_t mask,
                    const uint64_t* hashes, size_t n, uint32_t* tags,
                    SimdLevel level);

}  // namespace simd
}  // namespace bagc
