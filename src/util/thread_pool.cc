#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace bagc {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  queues_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkQueue>());
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Drain first: destruction must not strand submitted tasks, and no
    // task may outlive the pool (tasks can reference submitter state).
    idle_cv_.wait(lock, [this] { return queued_ == 0 && in_flight_ == 0; });
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  // Publish the task before raising queued_: a reservation taken against
  // queued_ must always find a task somewhere, so the push has to land
  // first (Take() would otherwise spin until it did).
  size_t q;
  {
    std::lock_guard<std::mutex> lock(mu_);
    q = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> qlock(queues_[q]->mu);
    queues_[q]->tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++queued_;
  }
  work_cv_.notify_one();
}

std::function<void()> ThreadPool::Take(size_t self) {
  size_t n = queues_.size();
  // Own queue first (back = most recently pushed, cache-warm), then sweep
  // siblings from the front (oldest first — classic stealing order).
  // A task was reserved under mu_ before this call, tasks are published
  // before they are reservable, and reserved tasks are only removed here,
  // so a task is always present somewhere; the outer loop retries the
  // sweep when concurrent removals make a single pass come up empty.
  while (true) {
    {
      std::lock_guard<std::mutex> lock(queues_[self]->mu);
      if (!queues_[self]->tasks.empty()) {
        std::function<void()> task = std::move(queues_[self]->tasks.back());
        queues_[self]->tasks.pop_back();
        return task;
      }
    }
    for (size_t k = 1; k < n; ++k) {
      WorkQueue& victim = *queues_[(self + k) % n];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.tasks.empty()) {
        std::function<void()> task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
        return task;
      }
    }
  }
}

void ThreadPool::WorkerLoop(size_t self) {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
      if (queued_ == 0) return;  // stop_ set and nothing left to run
      --queued_;  // reserve one task; Take() below is guaranteed to find it
      ++in_flight_;
    }
    std::function<void()> task = Take(self);
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queued_ == 0 && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queued_ == 0 && in_flight_ == 0; });
}

}  // namespace bagc
