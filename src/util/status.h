// Status: error propagation without exceptions, in the style of
// Arrow/RocksDB. All fallible public APIs in bagc return Status or
// Result<T> (see result.h); exceptions never cross the public API.
#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace bagc {

/// Error category for a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kArithmeticOverflow = 6,
  kResourceExhausted = 7,
  kInternal = 8,
  kNotImplemented = 9,
};

/// Human-readable name of a StatusCode ("OK", "Invalid argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation.
///
/// A Status is either OK (the default) or carries a StatusCode plus a
/// message. Statuses are cheap to copy in the OK case (single pointer).
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept : rep_(nullptr) {}
  ~Status() { delete rep_; }

  Status(const Status& other) : rep_(other.rep_ ? new Rep(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      delete rep_;
      rep_ = other.rep_ ? new Rep(*other.rep_) : nullptr;
    }
    return *this;
  }
  Status(Status&& other) noexcept : rep_(other.rep_) { other.rep_ = nullptr; }
  Status& operator=(Status&& other) noexcept {
    if (this != &other) {
      delete rep_;
      rep_ = other.rep_;
      other.rep_ = nullptr;
    }
    return *this;
  }

  /// Factory for an OK status.
  static Status OK() { return Status(); }
  /// Factory for an error status with the given code and message.
  static Status Error(StatusCode code, std::string msg) {
    Status s;
    s.rep_ = new Rep{code, std::move(msg)};
    return s;
  }
  static Status InvalidArgument(std::string msg) {
    return Error(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Error(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Error(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Error(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Error(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ArithmeticOverflow(std::string msg) {
    return Error(StatusCode::kArithmeticOverflow, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Error(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Error(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Error(StatusCode::kNotImplemented, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return rep_ == nullptr; }
  /// The status code (kOk when ok()).
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  /// The error message; empty when ok().
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->msg : kEmpty;
  }
  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string msg;
  };
  Rep* rep_;
};

}  // namespace bagc

/// Propagates a non-OK Status out of the current function.
#define BAGC_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::bagc::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (0)
