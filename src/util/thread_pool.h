// A small fixed-size work-stealing thread pool. Each worker owns a deque:
// it pops its own work LIFO from the back and steals FIFO from the front
// of a sibling when drained. Submissions round-robin across the deques.
//
// This is the execution substrate for the ConsistencyEngine's sharded
// pairwise sweep: many short independent tasks, submitted in one burst,
// with the submitter blocking on WaitIdle() until every task has retired —
// tasks may reference the submitter's stack, so the pool guarantees no
// task is left in flight once WaitIdle() returns.
#pragma once

#include <cstddef>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bagc {

/// \brief Fixed pool of worker threads with per-worker stealing deques.
///
/// Thread-safe: Submit and WaitIdle may be called from any thread (though
/// WaitIdle only waits for tasks submitted before it was entered; the
/// ConsistencyEngine serializes its bursts). The destructor drains all
/// remaining tasks, then joins the workers.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; at least one.
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then stops and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; it will run on some worker thread.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished running (not merely
  /// been dequeued). After this returns, no task is touching caller state.
  void WaitIdle();

 private:
  struct WorkQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  // Pops from worker `self`'s back, else steals from a sibling's front.
  // Called only after a task has been reserved via queued_, so some queue
  // is guaranteed non-empty.
  std::function<void()> Take(size_t self);
  void WorkerLoop(size_t self);

  std::vector<std::unique_ptr<WorkQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mu_;                  // guards queued_, in_flight_, stop_
  std::condition_variable work_cv_;  // signaled on Submit and stop
  std::condition_variable idle_cv_;  // signaled when the pool drains
  size_t queued_ = 0;     // tasks enqueued, not yet dequeued
  size_t in_flight_ = 0;  // tasks dequeued, not yet finished
  bool stop_ = false;
  size_t next_queue_ = 0;  // round-robin submission cursor
};

}  // namespace bagc
