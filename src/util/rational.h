// Exact rational arithmetic over 64-bit integers with 128-bit intermediate
// products and overflow detection. Used by the linear-program substrate
// (feasibility of P(R1,...,Rm) over the rationals, Lemma 2(3)) where
// floating point would make consistency decisions unsound.
#pragma once

#include <cstdint>
#include <string>

#include "util/result.h"

namespace bagc {

/// \brief Exact rational number p/q with q > 0, always in lowest terms.
///
/// Arithmetic goes through __int128 intermediates; results that do not fit
/// back into int64 numerator/denominator are reported as overflow rather
/// than silently wrapping. Default-constructed value is 0/1.
class Rational {
 public:
  Rational() : num_(0), den_(1) {}
  /// Integer n as n/1.
  explicit Rational(int64_t n) : num_(n), den_(1) {}

  /// Creates num/den reduced to lowest terms; den must be non-zero.
  static Result<Rational> Make(int64_t num, int64_t den);

  int64_t numerator() const { return num_; }
  int64_t denominator() const { return den_; }

  bool is_zero() const { return num_ == 0; }
  bool is_integer() const { return den_ == 1; }
  bool is_negative() const { return num_ < 0; }

  static Result<Rational> Add(const Rational& a, const Rational& b);
  static Result<Rational> Sub(const Rational& a, const Rational& b);
  static Result<Rational> Mul(const Rational& a, const Rational& b);
  /// a / b; errors when b is zero.
  static Result<Rational> Div(const Rational& a, const Rational& b);

  Rational Negated() const {
    Rational r;
    r.num_ = -num_;
    r.den_ = den_;
    return r;
  }

  /// Exact three-way comparison (never overflows: uses 128-bit cross
  /// products).
  static int Compare(const Rational& a, const Rational& b);

  bool operator==(const Rational& o) const { return num_ == o.num_ && den_ == o.den_; }
  bool operator!=(const Rational& o) const { return !(*this == o); }
  bool operator<(const Rational& o) const { return Compare(*this, o) < 0; }
  bool operator<=(const Rational& o) const { return Compare(*this, o) <= 0; }
  bool operator>(const Rational& o) const { return Compare(*this, o) > 0; }
  bool operator>=(const Rational& o) const { return Compare(*this, o) >= 0; }

  /// "p/q", or "p" when integral.
  std::string ToString() const;

 private:
  int64_t num_;
  int64_t den_;  // > 0, gcd(|num_|, den_) == 1
};

}  // namespace bagc
