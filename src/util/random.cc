#include "util/random.h"

#include <numeric>

namespace bagc {

namespace {
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Below(uint64_t bound) {
  // Lemire's nearly-divisionless unbiased bounded generation.
  __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(Next()) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

uint64_t Rng::Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

bool Rng::Chance(uint64_t num, uint64_t den) { return Below(den) < num; }

std::vector<size_t> Rng::Sample(size_t n, size_t k) {
  // Selection sampling over a partial Fisher-Yates of indices.
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(Below(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace bagc
