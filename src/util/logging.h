// Internal invariant checking. BAGC_DCHECK compiles out in release builds;
// BAGC_CHECK always fires. These guard *programming errors* only — user
// input errors are reported through Status, never through aborts.
#pragma once

#include <cstdio>
#include <cstdlib>

#define BAGC_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "BAGC_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define BAGC_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define BAGC_DCHECK(cond) BAGC_CHECK(cond)
#endif
