// Hashing helpers for composite keys (tuples, schemas).
//
// The constants below are THE hash definition for the whole engine: the
// row path (Tuple::Hash via HashRange), the columnar path
// (ColumnView::HashRows), and the SIMD kernels (util/simd.h) all combine
// with the same seed and mixer, so indexes built on one path answer
// probes hashed on another. Change them here or nowhere.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace bagc {

/// splitmix64 increment; also the combine offset in HashCombine.
inline constexpr uint64_t kHashMixC1 = 0x9e3779b97f4a7c15ULL;
/// splitmix64 multipliers.
inline constexpr uint64_t kHashMixC2 = 0xbf58476d1ce4e5b9ULL;
inline constexpr uint64_t kHashMixC3 = 0x94d049bb133111ebULL;
/// Base of the per-arity range seed (HashSeed below).
inline constexpr uint64_t kHashSeedBase = 0x5bf03635u;

/// Initial seed for hashing a sequence of `arity` values. Both HashRange
/// and the batch columnar hash start from this.
inline constexpr uint64_t HashSeed(size_t arity) {
  return kHashSeedBase ^ static_cast<uint64_t>(arity);
}

/// 64-bit mix (splitmix64 finalizer) — decorrelates consecutive integers.
inline uint64_t Mix64(uint64_t x) {
  x += kHashMixC1;
  x = (x ^ (x >> 30)) * kHashMixC2;
  x = (x ^ (x >> 27)) * kHashMixC3;
  return x ^ (x >> 31);
}

/// Combines a new value into a running hash seed.
inline void HashCombine(uint64_t* seed, uint64_t v) {
  *seed ^= Mix64(v) + kHashMixC1 + (*seed << 6) + (*seed >> 2);
}

/// Order-sensitive hash of a vector of integer-like values.
template <typename T>
uint64_t HashRange(const std::vector<T>& values) {
  uint64_t seed = HashSeed(values.size());
  for (const T& v : values) HashCombine(&seed, static_cast<uint64_t>(v));
  return seed;
}

}  // namespace bagc
