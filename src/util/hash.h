// Hashing helpers for composite keys (tuples, schemas).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace bagc {

/// 64-bit mix (splitmix64 finalizer) — decorrelates consecutive integers.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines a new value into a running hash seed.
inline void HashCombine(uint64_t* seed, uint64_t v) {
  *seed ^= Mix64(v) + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

/// Order-sensitive hash of a vector of integer-like values.
template <typename T>
uint64_t HashRange(const std::vector<T>& values) {
  uint64_t seed = 0x5bf03635u ^ values.size();
  for (const T& v : values) HashCombine(&seed, static_cast<uint64_t>(v));
  return seed;
}

}  // namespace bagc
