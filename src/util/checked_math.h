// Overflow-checked 64-bit arithmetic. Multiplicities in bags are uint64_t;
// every arithmetic path that could overflow goes through these helpers so
// consistency decisions are exact or fail loudly.
#pragma once

#include <cstdint>
#include <limits>

#include "util/result.h"
#include "util/status.h"

namespace bagc {

/// a + b with overflow detection.
inline Result<uint64_t> CheckedAdd(uint64_t a, uint64_t b) {
  uint64_t out;
  if (__builtin_add_overflow(a, b, &out)) {
    return Status::ArithmeticOverflow("uint64 addition overflow");
  }
  return out;
}

/// a * b with overflow detection.
inline Result<uint64_t> CheckedMul(uint64_t a, uint64_t b) {
  uint64_t out;
  if (__builtin_mul_overflow(a, b, &out)) {
    return Status::ArithmeticOverflow("uint64 multiplication overflow");
  }
  return out;
}

/// a - b; errors if b > a (multiplicities never go negative).
inline Result<uint64_t> CheckedSub(uint64_t a, uint64_t b) {
  if (b > a) {
    return Status::ArithmeticOverflow("uint64 subtraction underflow");
  }
  return a - b;
}

/// Saturating add: clamps to uint64 max instead of failing.
inline uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  uint64_t out;
  if (__builtin_add_overflow(a, b, &out)) {
    return std::numeric_limits<uint64_t>::max();
  }
  return out;
}

/// Saturating multiply.
inline uint64_t SaturatingMul(uint64_t a, uint64_t b) {
  uint64_t out;
  if (__builtin_mul_overflow(a, b, &out)) {
    return std::numeric_limits<uint64_t>::max();
  }
  return out;
}

/// Number of bits needed to write v in binary, i.e. floor(log2(v)) + 1,
/// with BitLength(0) == 0. Used for binary-size measures ||R||_b, where
/// the paper counts log(R(r) + 1).
inline unsigned BitLength(uint64_t v) {
  return v == 0 ? 0u : static_cast<unsigned>(64 - __builtin_clzll(v));
}

}  // namespace bagc
