// Result<T>: value-or-Status, the Arrow idiom for fallible producers.
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace bagc {

/// \brief Either a value of type T or an error Status.
///
/// A Result is never "empty": it holds exactly one of the two. Accessing
/// the value of an errored Result aborts (programming error).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// The contained value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` if errored.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

}  // namespace bagc

/// Propagates the error of a Result-producing expression, else binds the
/// value to `lhs`. Usage: BAGC_ASSIGN_OR_RETURN(auto x, MakeX());
#define BAGC_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()
#define BAGC_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define BAGC_ASSIGN_OR_RETURN_NAME(a, b) BAGC_ASSIGN_OR_RETURN_CONCAT(a, b)
#define BAGC_ASSIGN_OR_RETURN(lhs, expr) \
  BAGC_ASSIGN_OR_RETURN_IMPL(BAGC_ASSIGN_OR_RETURN_NAME(_res_, __LINE__), lhs, expr)
