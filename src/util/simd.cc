#include "util/simd.h"

#include <atomic>

#include "util/hash.h"

// Architecture gates. BAGC_FORCE_SCALAR_SIMD (CMake option) compiles the
// vector variants out entirely; the dispatch table then only ever holds
// the scalar twins.
#if !defined(BAGC_FORCE_SCALAR_SIMD)
#if defined(__x86_64__) || defined(__i386__)
#define BAGC_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define BAGC_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace bagc {
namespace simd {

namespace {

// ---- Scalar twins (the reference implementations) ---------------------

void HashRowsScalar(const uint32_t* const* cols, size_t arity, size_t n,
                    uint64_t* out) {
  const uint64_t seed = HashSeed(arity);
  for (size_t r = 0; r < n; ++r) out[r] = seed;
  for (size_t c = 0; c < arity; ++c) {
    const uint32_t* col = cols[c];
    for (size_t r = 0; r < n; ++r) {
      HashCombine(&out[r], static_cast<uint64_t>(col[r]));
    }
  }
}

uint32_t MaxU32Scalar(const uint32_t* col, size_t n) {
  uint32_t best = 0;
  for (size_t r = 0; r < n; ++r) best = col[r] > best ? col[r] : best;
  return best;
}

void PackKeys2Scalar(const uint32_t* a, const uint32_t* b, uint64_t stride,
                     size_t n, uint64_t* keys) {
  for (size_t r = 0; r < n; ++r) {
    keys[r] = static_cast<uint64_t>(a[r]) * stride + b[r];
  }
}

void GatherSlotTagsScalar(const uint32_t* slots, uint64_t mask,
                          const uint64_t* hashes, size_t n, uint32_t* tags) {
  for (size_t r = 0; r < n; ++r) tags[r] = slots[hashes[r] & mask];
}

// ---- x86: SSE4.2 (2-lane u64) and AVX2 (4-lane u64) variants ----------

#if defined(BAGC_SIMD_X86)

// 64x64 -> low 64 multiply from 32-bit halves (no 64-bit vector multiply
// below AVX-512): x*y = lo(x)*lo(y) + ((lo(x)*hi(y) + hi(x)*lo(y)) << 32).
__attribute__((target("sse4.2"), always_inline)) inline __m128i
Mul64Sse(__m128i x, __m128i y) {
  __m128i xh = _mm_srli_epi64(x, 32);
  __m128i yh = _mm_srli_epi64(y, 32);
  __m128i ll = _mm_mul_epu32(x, y);
  __m128i cross = _mm_add_epi64(_mm_mul_epu32(x, yh), _mm_mul_epu32(xh, y));
  return _mm_add_epi64(ll, _mm_slli_epi64(cross, 32));
}

__attribute__((target("sse4.2"), always_inline)) inline __m128i
Mix64Sse(__m128i v) {
  const __m128i c1 = _mm_set1_epi64x(static_cast<long long>(kHashMixC1));
  const __m128i c2 = _mm_set1_epi64x(static_cast<long long>(kHashMixC2));
  const __m128i c3 = _mm_set1_epi64x(static_cast<long long>(kHashMixC3));
  __m128i x = _mm_add_epi64(v, c1);
  x = Mul64Sse(_mm_xor_si128(x, _mm_srli_epi64(x, 30)), c2);
  x = Mul64Sse(_mm_xor_si128(x, _mm_srli_epi64(x, 27)), c3);
  return _mm_xor_si128(x, _mm_srli_epi64(x, 31));
}

__attribute__((target("sse4.2"))) void HashRowsSse42(
    const uint32_t* const* cols, size_t arity, size_t n, uint64_t* out) {
  const uint64_t seed = HashSeed(arity);
  const __m128i c1 = _mm_set1_epi64x(static_cast<long long>(kHashMixC1));
  size_t r = 0;
  for (; r + 2 <= n; r += 2) {
    __m128i h = _mm_set1_epi64x(static_cast<long long>(seed));
    for (size_t c = 0; c < arity; ++c) {
      // Two u32 lanes widened to u64.
      __m128i v = _mm_cvtepu32_epi64(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(cols[c] + r)));
      __m128i m = Mix64Sse(v);
      // h ^= m + c1 + (h << 6) + (h >> 2)  — HashCombine, lockstep lanes.
      __m128i add = _mm_add_epi64(
          _mm_add_epi64(m, c1),
          _mm_add_epi64(_mm_slli_epi64(h, 6), _mm_srli_epi64(h, 2)));
      h = _mm_xor_si128(h, add);
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + r), h);
  }
  for (; r < n; ++r) {
    uint64_t h = seed;
    for (size_t c = 0; c < arity; ++c) {
      HashCombine(&h, static_cast<uint64_t>(cols[c][r]));
    }
    out[r] = h;
  }
}

__attribute__((target("sse4.2"))) uint32_t MaxU32Sse42(const uint32_t* col,
                                                       size_t n) {
  size_t r = 0;
  __m128i best = _mm_setzero_si128();
  for (; r + 4 <= n; r += 4) {
    best = _mm_max_epu32(
        best, _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + r)));
  }
  alignas(16) uint32_t lanes[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), best);
  uint32_t out = 0;
  for (uint32_t lane : lanes) out = lane > out ? lane : out;
  for (; r < n; ++r) out = col[r] > out ? col[r] : out;
  return out;
}

__attribute__((target("sse4.2"))) void PackKeys2Sse42(const uint32_t* a,
                                                      const uint32_t* b,
                                                      uint64_t stride, size_t n,
                                                      uint64_t* keys) {
  const __m128i vs = _mm_set1_epi64x(static_cast<long long>(stride));
  size_t r = 0;
  for (; r + 2 <= n; r += 2) {
    __m128i va = _mm_cvtepu32_epi64(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a + r)));
    __m128i vb = _mm_cvtepu32_epi64(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + r)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(keys + r),
                     _mm_add_epi64(Mul64Sse(va, vs), vb));
  }
  for (; r < n; ++r) keys[r] = static_cast<uint64_t>(a[r]) * stride + b[r];
}

__attribute__((target("avx2"), always_inline)) inline __m256i
Mul64Avx2(__m256i x, __m256i y) {
  __m256i xh = _mm256_srli_epi64(x, 32);
  __m256i yh = _mm256_srli_epi64(y, 32);
  __m256i ll = _mm256_mul_epu32(x, y);
  __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(x, yh), _mm256_mul_epu32(xh, y));
  return _mm256_add_epi64(ll, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"), always_inline)) inline __m256i
Mix64Avx2(__m256i v) {
  const __m256i c1 = _mm256_set1_epi64x(static_cast<long long>(kHashMixC1));
  const __m256i c2 = _mm256_set1_epi64x(static_cast<long long>(kHashMixC2));
  const __m256i c3 = _mm256_set1_epi64x(static_cast<long long>(kHashMixC3));
  __m256i x = _mm256_add_epi64(v, c1);
  x = Mul64Avx2(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)), c2);
  x = Mul64Avx2(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)), c3);
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

__attribute__((target("avx2"))) void HashRowsAvx2(const uint32_t* const* cols,
                                                  size_t arity, size_t n,
                                                  uint64_t* out) {
  const uint64_t seed = HashSeed(arity);
  const __m256i c1 = _mm256_set1_epi64x(static_cast<long long>(kHashMixC1));
  size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    // The row block's running hash stays in a register across ALL
    // columns — out[] is written once per block, not once per column.
    __m256i h = _mm256_set1_epi64x(static_cast<long long>(seed));
    for (size_t c = 0; c < arity; ++c) {
      __m256i v = _mm256_cvtepu32_epi64(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols[c] + r)));
      __m256i m = Mix64Avx2(v);
      __m256i add = _mm256_add_epi64(
          _mm256_add_epi64(m, c1),
          _mm256_add_epi64(_mm256_slli_epi64(h, 6), _mm256_srli_epi64(h, 2)));
      h = _mm256_xor_si256(h, add);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + r), h);
  }
  for (; r < n; ++r) {
    uint64_t h = seed;
    for (size_t c = 0; c < arity; ++c) {
      HashCombine(&h, static_cast<uint64_t>(cols[c][r]));
    }
    out[r] = h;
  }
}

__attribute__((target("avx2"))) uint32_t MaxU32Avx2(const uint32_t* col,
                                                    size_t n) {
  size_t r = 0;
  __m256i best = _mm256_setzero_si256();
  for (; r + 8 <= n; r += 8) {
    best = _mm256_max_epu32(
        best, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + r)));
  }
  alignas(32) uint32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), best);
  uint32_t out = 0;
  for (uint32_t lane : lanes) out = lane > out ? lane : out;
  for (; r < n; ++r) out = col[r] > out ? col[r] : out;
  return out;
}

__attribute__((target("avx2"))) void PackKeys2Avx2(const uint32_t* a,
                                                   const uint32_t* b,
                                                   uint64_t stride, size_t n,
                                                   uint64_t* keys) {
  const __m256i vs = _mm256_set1_epi64x(static_cast<long long>(stride));
  size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    __m256i va = _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + r)));
    __m256i vb = _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + r)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(keys + r),
                        _mm256_add_epi64(Mul64Avx2(va, vs), vb));
  }
  for (; r < n; ++r) keys[r] = static_cast<uint64_t>(a[r]) * stride + b[r];
}

__attribute__((target("avx2"))) void GatherSlotTagsAvx2(const uint32_t* slots,
                                                        uint64_t mask,
                                                        const uint64_t* hashes,
                                                        size_t n,
                                                        uint32_t* tags) {
  size_t r = 0;
  for (; r + 8 <= n; r += 8) {
    alignas(32) int32_t idx[8];
    for (int k = 0; k < 8; ++k) {
      idx[k] = static_cast<int32_t>(hashes[r + k] & mask);
    }
    __m256i vi = _mm256_load_si256(reinterpret_cast<const __m256i*>(idx));
    __m256i t = _mm256_i32gather_epi32(reinterpret_cast<const int*>(slots),
                                       vi, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(tags + r), t);
  }
  for (; r < n; ++r) tags[r] = slots[hashes[r] & mask];
}

#endif  // BAGC_SIMD_X86

// ---- arm64: NEON (2-lane u64) variants --------------------------------

#if defined(BAGC_SIMD_NEON)

inline uint64x2_t Mul64Neon(uint64x2_t x, uint64x2_t y) {
  uint32x2_t x_lo = vmovn_u64(x);
  uint32x2_t y_lo = vmovn_u64(y);
  uint32x2_t x_hi = vshrn_n_u64(x, 32);
  uint32x2_t y_hi = vshrn_n_u64(y, 32);
  uint64x2_t ll = vmull_u32(x_lo, y_lo);
  uint64x2_t cross = vmlal_u32(vmull_u32(x_lo, y_hi), x_hi, y_lo);
  return vaddq_u64(ll, vshlq_n_u64(cross, 32));
}

inline uint64x2_t Mix64Neon(uint64x2_t v) {
  const uint64x2_t c1 = vdupq_n_u64(kHashMixC1);
  const uint64x2_t c2 = vdupq_n_u64(kHashMixC2);
  const uint64x2_t c3 = vdupq_n_u64(kHashMixC3);
  uint64x2_t x = vaddq_u64(v, c1);
  x = Mul64Neon(veorq_u64(x, vshrq_n_u64(x, 30)), c2);
  x = Mul64Neon(veorq_u64(x, vshrq_n_u64(x, 27)), c3);
  return veorq_u64(x, vshrq_n_u64(x, 31));
}

void HashRowsNeon(const uint32_t* const* cols, size_t arity, size_t n,
                  uint64_t* out) {
  const uint64_t seed = HashSeed(arity);
  const uint64x2_t c1 = vdupq_n_u64(kHashMixC1);
  size_t r = 0;
  for (; r + 2 <= n; r += 2) {
    uint64x2_t h = vdupq_n_u64(seed);
    for (size_t c = 0; c < arity; ++c) {
      uint64x2_t v = vmovl_u32(vld1_u32(cols[c] + r));
      uint64x2_t m = Mix64Neon(v);
      uint64x2_t add = vaddq_u64(
          vaddq_u64(m, c1),
          vaddq_u64(vshlq_n_u64(h, 6), vshrq_n_u64(h, 2)));
      h = veorq_u64(h, add);
    }
    vst1q_u64(out + r, h);
  }
  for (; r < n; ++r) {
    uint64_t h = seed;
    for (size_t c = 0; c < arity; ++c) {
      HashCombine(&h, static_cast<uint64_t>(cols[c][r]));
    }
    out[r] = h;
  }
}

uint32_t MaxU32Neon(const uint32_t* col, size_t n) {
  size_t r = 0;
  uint32x4_t best = vdupq_n_u32(0);
  for (; r + 4 <= n; r += 4) best = vmaxq_u32(best, vld1q_u32(col + r));
  uint32_t out = vmaxvq_u32(best);
  for (; r < n; ++r) out = col[r] > out ? col[r] : out;
  return out;
}

void PackKeys2Neon(const uint32_t* a, const uint32_t* b, uint64_t stride,
                   size_t n, uint64_t* keys) {
  const uint64x2_t vs = vdupq_n_u64(stride);
  size_t r = 0;
  for (; r + 2 <= n; r += 2) {
    uint64x2_t va = vmovl_u32(vld1_u32(a + r));
    uint64x2_t vb = vmovl_u32(vld1_u32(b + r));
    vst1q_u64(keys + r, vaddq_u64(Mul64Neon(va, vs), vb));
  }
  for (; r < n; ++r) keys[r] = static_cast<uint64_t>(a[r]) * stride + b[r];
}

#endif  // BAGC_SIMD_NEON

std::atomic<SimdLevel>& ActiveLevelSlot() {
  static std::atomic<SimdLevel> active{DetectSimdLevel()};
  return active;
}

}  // namespace

SimdLevel DetectSimdLevel() {
#if defined(BAGC_SIMD_X86)
  static const SimdLevel detected = [] {
    if (__builtin_cpu_supports("avx2")) return SimdLevel::kAVX2;
    if (__builtin_cpu_supports("sse4.2")) return SimdLevel::kSSE42;
    return SimdLevel::kScalar;
  }();
  return detected;
#elif defined(BAGC_SIMD_NEON)
  return SimdLevel::kNEON;
#else
  return SimdLevel::kScalar;
#endif
}

bool LevelSupported(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kSSE42:
      return DetectSimdLevel() == SimdLevel::kSSE42 ||
             DetectSimdLevel() == SimdLevel::kAVX2;
    case SimdLevel::kAVX2:
      return DetectSimdLevel() == SimdLevel::kAVX2;
    case SimdLevel::kNEON:
      return DetectSimdLevel() == SimdLevel::kNEON;
    case SimdLevel::kAuto:
      return true;
  }
  return false;
}

SimdLevel ActiveSimdLevel() { return ActiveLevelSlot().load(std::memory_order_relaxed); }

void SetActiveSimdLevel(SimdLevel level) {
  if (level == SimdLevel::kAuto || !LevelSupported(level)) {
    level = DetectSimdLevel();
  }
  ActiveLevelSlot().store(level, std::memory_order_relaxed);
}

SimdLevel Resolve(SimdLevel level) {
  if (level == SimdLevel::kAuto) level = ActiveSimdLevel();
  if (!LevelSupported(level)) level = DetectSimdLevel();
  return level;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSSE42:
      return "sse4.2";
    case SimdLevel::kAVX2:
      return "avx2";
    case SimdLevel::kNEON:
      return "neon";
    case SimdLevel::kAuto:
      return "auto";
  }
  return "scalar";
}

bool ParseSimdLevel(const std::string& name, SimdLevel* out) {
  if (name == "scalar") {
    *out = SimdLevel::kScalar;
  } else if (name == "sse4.2" || name == "sse42") {
    *out = SimdLevel::kSSE42;
  } else if (name == "avx2") {
    *out = SimdLevel::kAVX2;
  } else if (name == "neon") {
    *out = SimdLevel::kNEON;
  } else if (name == "auto") {
    *out = SimdLevel::kAuto;
  } else {
    return false;
  }
  return true;
}

void HashRowsKernel(const uint32_t* const* cols, size_t arity, size_t n,
                    uint64_t* out, SimdLevel level) {
  switch (Resolve(level)) {
#if defined(BAGC_SIMD_X86)
    case SimdLevel::kAVX2:
      HashRowsAvx2(cols, arity, n, out);
      return;
    case SimdLevel::kSSE42:
      HashRowsSse42(cols, arity, n, out);
      return;
#endif
#if defined(BAGC_SIMD_NEON)
    case SimdLevel::kNEON:
      HashRowsNeon(cols, arity, n, out);
      return;
#endif
    default:
      HashRowsScalar(cols, arity, n, out);
      return;
  }
}

uint32_t MaxU32(const uint32_t* col, size_t n, SimdLevel level) {
  switch (Resolve(level)) {
#if defined(BAGC_SIMD_X86)
    case SimdLevel::kAVX2:
      return MaxU32Avx2(col, n);
    case SimdLevel::kSSE42:
      return MaxU32Sse42(col, n);
#endif
#if defined(BAGC_SIMD_NEON)
    case SimdLevel::kNEON:
      return MaxU32Neon(col, n);
#endif
    default:
      return MaxU32Scalar(col, n);
  }
}

void PackKeys2(const uint32_t* a, const uint32_t* b, uint64_t stride,
               size_t n, uint64_t* keys, SimdLevel level) {
  switch (Resolve(level)) {
#if defined(BAGC_SIMD_X86)
    case SimdLevel::kAVX2:
      PackKeys2Avx2(a, b, stride, n, keys);
      return;
    case SimdLevel::kSSE42:
      PackKeys2Sse42(a, b, stride, n, keys);
      return;
#endif
#if defined(BAGC_SIMD_NEON)
    case SimdLevel::kNEON:
      PackKeys2Neon(a, b, stride, n, keys);
      return;
#endif
    default:
      PackKeys2Scalar(a, b, stride, n, keys);
      return;
  }
}

void GatherSlotTags(const uint32_t* slots, uint64_t mask,
                    const uint64_t* hashes, size_t n, uint32_t* tags,
                    SimdLevel level) {
  switch (Resolve(level)) {
#if defined(BAGC_SIMD_X86)
    case SimdLevel::kAVX2:
      GatherSlotTagsAvx2(slots, mask, hashes, n, tags);
      return;
#endif
    default:
      GatherSlotTagsScalar(slots, mask, hashes, n, tags);
      return;
  }
}

}  // namespace simd
}  // namespace bagc
