#include "engine/consistency_engine.h"

#include <algorithm>
#include <atomic>
#include <iterator>
#include <limits>
#include <map>

#include "hypergraph/acyclicity.h"
#include "solver/integer_feasibility.h"
#include "solver/lp.h"
#include "util/checked_math.h"

namespace bagc {

namespace {

// Canonicalizes every dictionary of `dicts` (id order == sorted external
// order) and rewrites the collection's rows through the remaps, re-sealing
// each bag so entries are sorted under the new ids. Every row id must have
// been issued by `dicts` (the uniform-sealing precondition of
// value_dictionary.h): numeric-codec rows have no dictionary to define an
// external order — side-table ids in particular are NOT value-ordered —
// so they are rejected rather than silently passed through.
Result<BagCollection> CanonicalizeCollection(const BagCollection& collection,
                                             DictionarySet* dicts) {
  std::vector<std::vector<ValueId>> remaps = dicts->CanonicalizeAll();
  std::vector<Bag> rewritten;
  rewritten.reserve(collection.size());
  for (const Bag& b : collection.bags()) {
    BagBuilder builder(b.schema());
    builder.Reserve(b.SupportSize());
    const size_t arity = b.schema().arity();
    for (size_t e = 0; e < b.SupportSize(); ++e) {
      std::vector<ValueId> ids(arity);
      for (size_t s = 0; s < arity; ++s) {
        AttrId a = b.schema().at(s);
        ValueId id = b.IdAt(e, s);
        if (a >= remaps.size() || id >= remaps[a].size()) {
          return Status::InvalidArgument(
              "canonicalize_dictionaries: a row id was not issued by the "
              "engine's dictionary set");
        }
        ids[s] = remaps[a][id];
      }
      BAGC_RETURN_NOT_OK(builder.Add(Tuple::OfIds(std::move(ids)), b.MultiplicityAt(e)));
    }
    BAGC_ASSIGN_OR_RETURN(Bag sealed, builder.Build());
    rewritten.push_back(std::move(sealed));
  }
  return BagCollection::Make(std::move(rewritten));
}

}  // namespace

Result<ConsistencyEngine> ConsistencyEngine::Make(BagCollection collection,
                                                  EngineOptions options,
                                                  const SealReuse* reuse) {
  auto owned = std::make_shared<const BagCollection>(std::move(collection));
  const BagCollection* view = owned.get();
  return MakeImpl(view, std::move(owned), options, reuse);
}

Result<ConsistencyEngine> ConsistencyEngine::MakeView(
    const BagCollection& collection, EngineOptions options) {
  return MakeImpl(&collection, nullptr, options, nullptr);
}

Result<ConsistencyEngine> ConsistencyEngine::MakeImpl(
    const BagCollection* view, std::shared_ptr<const BagCollection> owned,
    EngineOptions options, const SealReuse* reuse) {
  ConsistencyEngine engine;
  engine.collection_ = view;
  engine.owned_ = std::move(owned);
  engine.options_ = options;
  // A canonicalizing seal remaps every row id, so nothing from a previous
  // generation is comparable; a lazily sealed previous engine has mutable
  // slots that must not be shared. Both degrade to a full seal.
  if (reuse != nullptr &&
      (options.canonicalize_dictionaries || reuse->previous == nullptr ||
       !reuse->previous->fully_sealed())) {
    reuse = nullptr;
  }
  if (options.canonicalize_dictionaries) {
    if (engine.owned_ == nullptr) {
      return Status::InvalidArgument(
          "canonicalize_dictionaries requires an owned collection; use Make");
    }
    if (options.dictionaries == nullptr) {
      return Status::InvalidArgument(
          "canonicalize_dictionaries requires a dictionary set");
    }
    BAGC_ASSIGN_OR_RETURN(
        BagCollection canonical,
        CanonicalizeCollection(*engine.collection_, options.dictionaries.get()));
    engine.owned_ = std::make_shared<const BagCollection>(std::move(canonical));
    engine.collection_ = engine.owned_.get();
  }
  // Owned hot-path bags go columnar-only at seal time: the flat entry
  // vector is dropped and the ColumnStore becomes the bag (rows are
  // reconstructed on cold paths via RowAt). Bags already columnar — e.g.
  // adopted from a previous generation by MakeDelta — are left untouched;
  // borrowed collections (MakeView) are never mutated.
  if (engine.owned_ != nullptr && options.marginal_path != MarginalPath::kRows) {
    size_t min_rows = options.columnar_min_rows == 0 ? kColumnarMinRows
                                                     : options.columnar_min_rows;
    bool convert = false;
    for (const Bag& b : engine.collection_->bags()) {
      convert |= !b.columnar_sealed() && b.SupportSize() >= min_rows;
    }
    if (convert) {
      std::vector<Bag> bags = engine.collection_->bags();
      for (Bag& b : bags) {
        if (b.SupportSize() >= min_rows) b.SealColumnar();
      }
      BAGC_ASSIGN_OR_RETURN(BagCollection sealed,
                            BagCollection::Make(std::move(bags)));
      engine.owned_ = std::make_shared<const BagCollection>(std::move(sealed));
      engine.collection_ = engine.owned_.get();
    }
  }
  if (options.num_threads > 1) {
    engine.pool_ = std::make_unique<ThreadPool>(options.num_threads);
  }
  BAGC_RETURN_NOT_OK(engine.Seal(reuse));
  return engine;
}

Status ConsistencyEngine::Seal(const SealReuse* reuse) {
  size_t m = collection_->size();
  cache_.assign(m, {});
  bag_columns_.clear();
  bag_columns_.resize(m);

  // Pass 1: compute each unordered pair's shared schema exactly once and
  // collect the distinct schemas per bag (by pointer into pair_schema,
  // which is pre-reserved so the pointers stay stable); one
  // CachedProjection slot per (bag, shared schema), schema-sorted per bag
  // so lookups binary-search.
  std::vector<Schema> pair_schema;
  pair_schema.reserve(m * (m - 1) / 2);
  std::vector<std::vector<const Schema*>> per_bag(m);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      pair_schema.push_back(Schema::Intersect(collection_->bag(i).schema(),
                                              collection_->bag(j).schema()));
      per_bag[i].push_back(&pair_schema.back());
      per_bag[j].push_back(&pair_schema.back());
    }
  }
  auto deref_less = [](const Schema* a, const Schema* b) { return *a < *b; };
  auto deref_eq = [](const Schema* a, const Schema* b) { return *a == *b; };
  for (size_t i = 0; i < m; ++i) {
    std::vector<const Schema*>& schemas = per_bag[i];
    std::sort(schemas.begin(), schemas.end(), deref_less);
    schemas.erase(std::unique(schemas.begin(), schemas.end(), deref_eq),
                  schemas.end());
    cache_[i].resize(schemas.size());
    for (size_t k = 0; k < schemas.size(); ++k) {
      cache_[i][k].schema = *schemas[k];
    }
  }

  // Pass 2: resolve the pair list against the now-stable cache storage.
  pairs_.reserve(pair_schema.size());
  size_t pair_index = 0;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      const Schema& z = pair_schema[pair_index++];
      CachedProjection* left = FindProjection(i, z);
      CachedProjection* right = FindProjection(j, z);
      if (left == nullptr || right == nullptr) {
        return Status::Internal("sealed cache is missing a pairwise marginal");
      }
      pairs_.push_back({i, j, left, right});
    }
  }
  pair_state_.assign(pairs_.size(), 0);

  // Incremental reuse: for every bag whose rows are unchanged since the
  // previous generation, adopt that generation's column store and every
  // cached marginal whose shared schema survived. A slot whose schema is
  // new (the partner bag changed shape) simply misses the lookup and is
  // filled below, so a re-seal that touched k of m bags fills O(k·m)
  // slots, not O(m²). Shared pointers keep the bags alive across either
  // generation's destruction.
  if (reuse != nullptr) {
    const ConsistencyEngine& prev = *reuse->previous;
    for (size_t i = 0; i < m && i < reuse->prev_index.size(); ++i) {
      size_t p = reuse->prev_index[i];
      if (p == SealReuse::kNoPrev || p >= prev.cache_.size()) continue;
      bag_columns_[i] = prev.bag_columns_[p];
      for (CachedProjection& slot : cache_[i]) {
        const CachedProjection* prev_slot = prev.FindProjection(p, slot.schema);
        if (prev_slot != nullptr && prev_slot->filled) {
          slot.marginal = prev_slot->marginal;
          slot.filled = true;  // EnsureFilled skips it: no fresh fill counted
        }
      }
    }
  }

  // Pass 3: fill the slots, unless deferring to first use. Each slot is
  // written by exactly one task, so the parallel fill shares nothing but
  // disjoint slots.
  if (options_.lazy_seal && pool_ == nullptr) return Status::OK();
  std::vector<std::pair<size_t, size_t>> slots;  // (bag, cache index)
  for (size_t i = 0; i < m; ++i) {
    for (size_t k = 0; k < cache_[i].size(); ++k) slots.emplace_back(i, k);
  }
  std::vector<Status> statuses(slots.size());
  if (pool_ != nullptr) {
    // Pre-build the per-bag column stores first, one task per bag:
    // EnsureColumns is single-writer here, and the per-slot fills below
    // (which may share a bag) then only read them.
    for (size_t i = 0; i < m; ++i) {
      if (UseColumnar(i) && !cache_[i].empty()) {
        pool_->Submit([this, i] { EnsureColumns(i); });
      }
    }
    pool_->WaitIdle();
    for (size_t t = 0; t < slots.size(); ++t) {
      pool_->Submit([this, &statuses, &slots, t] {
        statuses[t] =
            EnsureFilled(&cache_[slots[t].first][slots[t].second], slots[t].first);
      });
    }
    pool_->WaitIdle();
  } else {
    for (size_t t = 0; t < slots.size(); ++t) {
      statuses[t] =
          EnsureFilled(&cache_[slots[t].first][slots[t].second], slots[t].first);
    }
  }
  for (const Status& st : statuses) BAGC_RETURN_NOT_OK(st);
  fully_sealed_ = true;
  return Status::OK();
}

Status ConsistencyEngine::EnsureFilled(CachedProjection* slot, size_t bag_index) {
  if (slot->filled) return Status::OK();
  const Bag& bag = collection_->bag(bag_index);
  Bag marginal;
  if (UseColumnar(bag_index)) {
    // One SoA transpose per bag, shared by all its sealed projections
    // (columnar-sealed bags alias their own store — no transpose at all);
    // each fill is a zero-copy column select plus a batch hash-group.
    BAGC_ASSIGN_OR_RETURN(Projector proj,
                          Projector::Make(bag.schema(), slot->schema));
    if (bag.columnar_sealed()) {
      BAGC_ASSIGN_OR_RETURN(
          marginal,
          Bag::GroupColumns(slot->schema,
                            EnsureColumns(bag_index).View().Select(proj),
                            bag.MultiplicityData(), bag.SupportSize(),
                            options_.simd));
    } else {
      BAGC_ASSIGN_OR_RETURN(
          marginal,
          Bag::GroupColumns(slot->schema,
                            EnsureColumns(bag_index).View().Select(proj),
                            bag.entries()));
    }
  } else {
    BAGC_ASSIGN_OR_RETURN(marginal, bag.MarginalRows(slot->schema));
  }
  slot->marginal = std::make_shared<const Bag>(std::move(marginal));
  slot->filled = true;
  marginal_fills_->fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

size_t ConsistencyEngine::ColumnarMinRows() const {
  return options_.columnar_min_rows == 0 ? kColumnarMinRows
                                         : options_.columnar_min_rows;
}

bool ConsistencyEngine::UseColumnar(size_t bag_index) const {
  switch (options_.marginal_path) {
    case MarginalPath::kRows:
      return false;
    case MarginalPath::kColumnar:
      return true;
    case MarginalPath::kAuto:
    default:
      // Columnar-sealed bags have no row path to fall back to; size-based
      // dispatch only applies to bags still holding flat rows.
      return collection_->bag(bag_index).columnar_sealed() ||
             collection_->bag(bag_index).SupportSize() >= ColumnarMinRows();
  }
}

const ColumnStore& ConsistencyEngine::EnsureColumns(size_t bag_index) {
  std::shared_ptr<const ColumnStore>& store = bag_columns_[bag_index];
  if (store == nullptr) {
    const Bag& bag = collection_->bag(bag_index);
    if (bag.columnar_sealed()) {
      // The bag IS column-major already: alias its live store instead of
      // re-transposing (zero bytes, shared lifetime via the aliasing ptr).
      store = bag.SharedColumns();
    } else {
      store = std::make_shared<const ColumnStore>(bag.ToColumns());
    }
  }
  return *store;
}

ConsistencyEngine::CachedProjection* ConsistencyEngine::FindProjection(
    size_t i, const Schema& z) {
  return const_cast<CachedProjection*>(
      static_cast<const ConsistencyEngine*>(this)->FindProjection(i, z));
}

const ConsistencyEngine::CachedProjection* ConsistencyEngine::FindProjection(
    size_t i, const Schema& z) const {
  const std::vector<CachedProjection>& row = cache_[i];
  auto it = std::lower_bound(
      row.begin(), row.end(), z,
      [](const CachedProjection& p, const Schema& key) { return p.schema < key; });
  if (it == row.end() || it->schema != z) return nullptr;
  return &*it;
}

Result<const ConsistencyEngine::PairTask*> ConsistencyEngine::PairAt(
    size_t i, size_t j) const {
  size_t m = collection_->size();
  if (i >= m || j >= m) return Status::OutOfRange("bag index out of range");
  if (i == j) return static_cast<const PairTask*>(nullptr);
  if (i > j) std::swap(i, j);
  // pairs_ lists (i, j), i < j, lexicographically, so the query's
  // pre-resolved cache slots sit at a closed-form offset — no schema
  // intersection or lookup per query.
  return &pairs_[i * (2 * m - i - 1) / 2 + (j - i - 1)];
}

Result<bool> ConsistencyEngine::TwoBag(size_t i, size_t j) {
  BAGC_ASSIGN_OR_RETURN(const PairTask* p, PairAt(i, j));
  if (p == nullptr) return true;  // a bag always agrees with its own marginals
  size_t idx = static_cast<size_t>(p - pairs_.data());
  if (pair_state_[idx] != 0) return pair_state_[idx] == 1;
  BAGC_RETURN_NOT_OK(EnsureFilled(p->left, p->i));
  BAGC_RETURN_NOT_OK(EnsureFilled(p->right, p->j));
  bool equal = *p->left->marginal == *p->right->marginal;
  pair_state_[idx] = equal ? 1 : 2;
  return equal;
}

Result<bool> ConsistencyEngine::TwoBagSealed(size_t i, size_t j) const {
  BAGC_ASSIGN_OR_RETURN(const PairTask* p, PairAt(i, j));
  if (p == nullptr) return true;
  if (!p->left->filled || !p->right->filled) {
    return Status::FailedPrecondition(
        "TwoBagSealed on an engine whose cache is not fully sealed; "
        "use TwoBag() (or seal eagerly) instead");
  }
  // Read-only consult of the verdict cache (never written here: the
  // const surface serves concurrent callers).
  int8_t state = pair_state_[static_cast<size_t>(p - pairs_.data())];
  if (state != 0) return state == 1;
  return *p->left->marginal == *p->right->marginal;
}

Result<PairwiseVerdict> ConsistencyEngine::SweepSequential() {
  for (size_t idx = 0; idx < pairs_.size(); ++idx) {
    const PairTask& p = pairs_[idx];
    bool equal;
    if (pair_state_[idx] != 0) {
      equal = pair_state_[idx] == 1;
    } else {
      BAGC_RETURN_NOT_OK(EnsureFilled(p.left, p.i));
      BAGC_RETURN_NOT_OK(EnsureFilled(p.right, p.j));
      equal = *p.left->marginal == *p.right->marginal;
      pair_state_[idx] = equal ? 1 : 2;
    }
    if (!equal) {
      PairwiseVerdict v;
      v.consistent = false;
      v.witness_pair = {p.i, p.j};
      return v;
    }
  }
  return PairwiseVerdict{};
}

PairwiseVerdict ConsistencyEngine::SweepParallel() {
  // Parallel engines sealed eagerly, so the tasks below only read the
  // cache. Shard the lexicographic pair list into contiguous chunks and
  // keep a running minimum over failing pair indices. A pair is skipped
  // only when an earlier-or-equal failure is already recorded, so the
  // final minimum is exactly the lexicographically first inconsistent
  // pair — the sweep early-exits *and* stays deterministic for every
  // worker count.
  constexpr size_t kNone = std::numeric_limits<size_t>::max();
  std::atomic<size_t> best{kNone};
  size_t num_chunks = std::min(pairs_.size(), 4 * pool_->num_threads());
  size_t chunk = (pairs_.size() + num_chunks - 1) / num_chunks;
  for (size_t c = 0; c < num_chunks; ++c) {
    size_t lo = c * chunk;
    size_t hi = std::min(pairs_.size(), lo + chunk);
    pool_->Submit([this, &best, lo, hi] {
      for (size_t idx = lo; idx < hi; ++idx) {
        if (idx >= best.load(std::memory_order_relaxed)) return;
        const PairTask& p = pairs_[idx];
        bool equal;
        if (pair_state_[idx] != 0) {
          equal = pair_state_[idx] == 1;
        } else {
          equal = *p.left->marginal == *p.right->marginal;
          // Chunks are disjoint index ranges, so no two tasks ever write
          // the same pair_state_ byte.
          pair_state_[idx] = equal ? 1 : 2;
        }
        if (!equal) {
          size_t cur = best.load(std::memory_order_relaxed);
          while (idx < cur &&
                 !best.compare_exchange_weak(cur, idx, std::memory_order_relaxed)) {
          }
          return;
        }
      }
    });
  }
  // Drain before touching `best` (and before the caller can destroy the
  // engine): in-flight tasks reference this stack frame and the cache.
  pool_->WaitIdle();
  size_t found = best.load(std::memory_order_relaxed);
  PairwiseVerdict v;
  if (found != kNone) {
    v.consistent = false;
    v.witness_pair = {pairs_[found].i, pairs_[found].j};
  }
  return v;
}

Result<PairwiseVerdict> ConsistencyEngine::PairwiseAll() {
  if (!pairwise_verdict_.has_value()) {
    if (pool_ != nullptr && pairs_.size() > 1) {
      pairwise_verdict_ = SweepParallel();
    } else {
      BAGC_ASSIGN_OR_RETURN(pairwise_verdict_, SweepSequential());
    }
  }
  return *pairwise_verdict_;
}

Result<bool> ConsistencyEngine::Global() {
  if (global_verdict_.has_value()) return *global_verdict_;
  if (IsAcyclic(collection_->hypergraph())) {
    // Theorem 2: local-to-global holds, so pairwise consistency decides.
    BAGC_ASSIGN_OR_RETURN(PairwiseVerdict v, PairwiseAll());
    global_verdict_ = v.consistent;
  } else {
    BAGC_ASSIGN_OR_RETURN(std::optional<Bag> witness, SolveGlobalExact());
    global_verdict_ = witness.has_value();
  }
  return *global_verdict_;
}

template <typename PairFn>
Result<bool> ConsistencyEngine::KWiseSweep(
    size_t k, std::optional<std::vector<size_t>>* failing_subset,
    PairFn&& pair_query) const {
  if (k < 2) return Status::InvalidArgument("k-wise consistency needs k >= 2");
  if (failing_subset != nullptr) failing_subset->reset();
  size_t m = collection_->size();
  // Subsets of size < k are covered by subsets of size k whenever m >= k
  // (global consistency of a superset implies it for subsets, since the
  // witness marginalizes down). When m < k, test the whole collection.
  size_t size = std::min(k, m);
  // Lexicographic combination enumeration, as in the historical
  // single-shot path, so the reported first failing subset is unchanged.
  std::vector<size_t> idx(size);
  for (size_t i = 0; i < size; ++i) idx[i] = i;
  while (true) {
    // Pairwise precheck from the sealed per-pair marginal cache. Each
    // pair's marginals are computed at most once across the entire sweep
    // — the historical path recomputed them inside every subset's
    // throwaway engine.
    bool subset_ok = true;
    for (size_t a = 0; a < size && subset_ok; ++a) {
      for (size_t b = a + 1; b < size && subset_ok; ++b) {
        BAGC_ASSIGN_OR_RETURN(bool pair_ok, pair_query(idx[a], idx[b]));
        subset_ok = pair_ok;
      }
    }
    if (subset_ok) {
      // Pairwise consistency decides acyclic subsets (Theorem 2). Only a
      // cyclic subset needs the exact feasibility search — and its
      // pairwise prefilter is already done, so go straight to the LP.
      std::vector<Schema> edges;
      edges.reserve(size);
      for (size_t i : idx) edges.push_back(collection_->bag(i).schema());
      BAGC_ASSIGN_OR_RETURN(Hypergraph sub_h, Hypergraph::FromEdges(std::move(edges)));
      if (!IsAcyclic(sub_h)) {
        std::vector<Bag> sub_bags;
        sub_bags.reserve(size);
        for (size_t i : idx) sub_bags.push_back(collection_->bag(i));
        BAGC_ASSIGN_OR_RETURN(
            ConsistencyLp lp,
            BuildConsistencyLp(sub_bags, options_.global.max_join_support));
        BAGC_ASSIGN_OR_RETURN(auto solution,
                              SolveIntegerFeasibility(lp, options_.global.search));
        subset_ok = solution.has_value();
      }
    }
    if (!subset_ok) {
      if (failing_subset != nullptr) *failing_subset = idx;
      return false;
    }
    // Next combination.
    size_t i = size;
    bool advanced = false;
    while (i > 0) {
      --i;
      if (idx[i] != i + m - size) {
        ++idx[i];
        for (size_t j = i + 1; j < size; ++j) idx[j] = idx[j - 1] + 1;
        advanced = true;
        break;
      }
    }
    if (!advanced) return true;
  }
}

Result<bool> ConsistencyEngine::KWiseConsistent(
    size_t k, std::optional<std::vector<size_t>>* failing_subset) {
  return KWiseSweep(k, failing_subset, [this](size_t a, size_t b) {
    return TwoBag(a, b);  // fills lazily-sealed slots on first use
  });
}

Result<bool> ConsistencyEngine::KWiseConsistentSealed(
    size_t k, std::optional<std::vector<size_t>>* failing_subset) const {
  return KWiseSweep(k, failing_subset, [this](size_t a, size_t b) {
    return TwoBagSealed(a, b);  // read-only: never fills a slot
  });
}

Result<std::optional<Bag>> ConsistencyEngine::WitnessSealed(size_t i, size_t j,
                                                            bool minimal) const {
  BAGC_ASSIGN_OR_RETURN(bool consistent, TwoBagSealed(i, j));
  if (!consistent) return std::optional<Bag>();
  // A local arena per call: slower than the engine's shared solver for a
  // single caller, but free of cross-query contention — the trade the
  // server snapshot wants. The construction is deterministic, so the
  // witness is identical to Witness()'s.
  TwoBagSolver solver;
  BAGC_ASSIGN_OR_RETURN(
      Bag witness, solver.FindWitnessKnownConsistent(collection_->bag(i),
                                                     collection_->bag(j), minimal));
  return std::optional<Bag>(std::move(witness));
}

Result<std::optional<Bag>> ConsistencyEngine::Witness(size_t i, size_t j,
                                                      bool minimal) {
  // The Lemma 2(2) pre-check comes from the cache instead of the solver's
  // own marginal rebuild.
  BAGC_ASSIGN_OR_RETURN(bool consistent, TwoBag(i, j));
  if (!consistent) return std::optional<Bag>();
  const Bag& r = collection_->bag(i);
  const Bag& s = collection_->bag(j);
  BAGC_ASSIGN_OR_RETURN(
      Bag witness, witness_solver_.FindWitnessKnownConsistent(r, s, minimal));
  return std::optional<Bag>(std::move(witness));
}

Result<std::optional<Bag>> ConsistencyEngine::SolveGlobalAcyclic(
    const AcyclicSolveOptions& options) {
  const Hypergraph& h = collection_->hypergraph();
  BAGC_ASSIGN_OR_RETURN(std::vector<size_t> rip_order, RunningIntersectionOrder(h));

  // Pairwise-consistency prefilter (by Theorem 2, for acyclic schemas this
  // already decides global consistency).
  BAGC_ASSIGN_OR_RETURN(PairwiseVerdict pairwise, PairwiseAll());
  if (!pairwise.consistent) return std::optional<Bag>();

  // The hypergraph's canonical edges may merge duplicate schemas; map each
  // edge to the bags carrying it. Pairwise-consistent bags with the same
  // schema are *equal* (consistency on the full shared schema), so any
  // representative works.
  const std::vector<Schema>& edges = h.edges();
  std::vector<const Bag*> edge_bag(edges.size(), nullptr);
  for (const Bag& b : collection_->bags()) {
    for (size_t e = 0; e < edges.size(); ++e) {
      if (edges[e] == b.schema()) {
        edge_bag[e] = &b;
        break;
      }
    }
  }
  for (const Bag* p : edge_bag) {
    if (p == nullptr) return Status::Internal("edge without a bag");
  }

  // Theorem 6: fold minimal two-bag witnesses along the RIP listing, every
  // step inside the engine's one flow arena. The step-i shared schema
  // Z_i = X_{σ(i)} ∩ (X_{σ(0)} ∪ … ∪ X_{σ(i-1)}) depends only on the
  // listing, so each step's next-side marginal R_{σ(i)}[Z_i] — the
  // Lemma 2(2) input of that fold step — is built ahead of the fold,
  // sharded over the engine's pool when it has one. The fold itself stays
  // sequential (the accumulator feeds the next step), so the merge order —
  // and hence the witness — is identical for every worker count.
  size_t steps = rip_order.size();
  std::vector<Schema> step_shared(steps);
  Schema prefix = edges[rip_order[0]];
  for (size_t i = 1; i < steps; ++i) {
    step_shared[i] = Schema::Intersect(edges[rip_order[i]], prefix);
    prefix = Schema::Union(prefix, edges[rip_order[i]]);
  }
  std::vector<Bag> next_marginal(steps);
  std::vector<Status> marginal_status(steps, Status::OK());
  auto build_step = [&](size_t i) {
    Result<Bag> m = edge_bag[rip_order[i]]->Marginal(step_shared[i],
                                                     ColumnarMinRows(),
                                                     options_.simd);
    if (m.ok()) {
      next_marginal[i] = std::move(m).value();
    } else {
      marginal_status[i] = m.status();
    }
  };
  if (pool_ != nullptr) {
    for (size_t i = 1; i < steps; ++i) {
      pool_->Submit([&build_step, i] { build_step(i); });
    }
    pool_->WaitIdle();
  } else {
    for (size_t i = 1; i < steps; ++i) build_step(i);
  }
  for (const Status& st : marginal_status) BAGC_RETURN_NOT_OK(st);

  Bag acc = *edge_bag[rip_order[0]];
  for (size_t i = 1; i < steps; ++i) {
    const Bag& next = *edge_bag[rip_order[i]];
    BAGC_ASSIGN_OR_RETURN(Bag acc_marginal, acc.Marginal(step_shared[i]));
    if (acc_marginal != next_marginal[i]) {
      // Step 1 of Theorem 2 proves this cannot happen for pairwise
      // consistent bags along a RIP listing.
      return Status::Internal(
          "pairwise consistent acyclic collection hit an inconsistent fold step");
    }
    BAGC_ASSIGN_OR_RETURN(
        Bag ti,
        witness_solver_.FindWitnessKnownConsistent(acc, next, options.minimal_fold));
    acc = std::move(ti);
  }
  return std::optional<Bag>(std::move(acc));
}

Result<std::optional<Bag>> ConsistencyEngine::SolveGlobalExact() {
  // Pairwise consistency is necessary; it is also a cheap filter before
  // the exponential search.
  BAGC_ASSIGN_OR_RETURN(PairwiseVerdict pairwise, PairwiseAll());
  if (!pairwise.consistent) return std::optional<Bag>();
  BAGC_ASSIGN_OR_RETURN(
      ConsistencyLp lp,
      BuildConsistencyLp(collection_->bags(), options_.global.max_join_support,
                         pool_.get()));
  BAGC_ASSIGN_OR_RETURN(auto solution,
                        SolveIntegerFeasibility(lp, options_.global.search));
  if (!solution.has_value()) return std::optional<Bag>();
  BagBuilder builder(lp.joined_schema);
  for (size_t i = 0; i < lp.variables.size(); ++i) {
    if ((*solution)[i] > 0) {
      BAGC_RETURN_NOT_OK(builder.Add(lp.variables[i], (*solution)[i]));
    }
  }
  BAGC_ASSIGN_OR_RETURN(Bag witness, builder.Build());
  return std::optional<Bag>(std::move(witness));
}

Result<DeltaOutcome> ConsistencyEngine::ApplyDelta(
    size_t bag_index, const std::vector<BagDelta>& deltas) {
  DeltaBatch batch(1);
  batch[0].bag_index = bag_index;
  batch[0].deltas = deltas;
  return ApplyDeltaBatch(batch);
}

Result<DeltaOutcome> ConsistencyEngine::ApplyDeltaBatch(
    const DeltaBatch& batch) {
  if (owned_ == nullptr) {
    return Status::FailedPrecondition(
        "ApplyDelta requires an owned collection; use Make (not MakeView)");
  }
  size_t m = collection_->size();

  // Net change per bag per row, keyed in sorted tuple order. A bag
  // listed twice nets as one stream, and opposed rows within the batch
  // cancel before validation, so "insert x; delete x" is a structural
  // no-op even when x was never in the bag.
  std::map<size_t, std::map<Tuple, int64_t>> nets;
  for (const BagDeltas& bd : batch) {
    if (bd.bag_index >= m) return Status::OutOfRange("bag index out of range");
    const size_t arity = collection_->bag(bd.bag_index).schema().arity();
    std::map<Tuple, int64_t>& net = nets[bd.bag_index];
    for (const BagDelta& d : bd.deltas) {
      if (d.row.arity() != arity) {
        return Status::InvalidArgument(
            "delta row arity does not match the bag schema");
      }
      int64_t& acc = net[d.row];
      if (__builtin_add_overflow(acc, d.delta, &acc)) {
        return Status::ArithmeticOverflow("delta multiplicity overflow");
      }
    }
  }
  for (auto bit = nets.begin(); bit != nets.end();) {
    std::map<Tuple, int64_t>& net = bit->second;
    for (auto it = net.begin(); it != net.end();) {
      it = it->second == 0 ? net.erase(it) : std::next(it);
    }
    bit = net.empty() ? nets.erase(bit) : std::next(bit);
  }
  DeltaOutcome outcome;
  if (nets.empty()) return outcome;

  // ---- Stage: per bag, the mutated copy and its adjusted marginal
  // slots. Nothing in the engine changes until EVERY bag has staged
  // cleanly — a validation failure in the last bag leaves the first
  // bags untouched (all-or-nothing across the batch).
  struct StagedBag {
    size_t bag_index;
    Bag mutated;
    std::vector<size_t> dirty_slots;
    std::vector<std::optional<Bag>> staged;
  };
  std::vector<StagedBag> staged_bags;
  staged_bags.reserve(nets.size());
  for (const auto& [bag_index, net] : nets) {
    const Bag& bag = collection_->bag(bag_index);
    // The mutated bag. COW: other generations holding the old bag keep
    // it. Row-level validation (a delete below zero → OutOfRange, an
    // insert overflow) is the bag layer's, all-or-nothing on the copy.
    Bag mutated = bag;
    BAGC_RETURN_NOT_OK(mutated.ApplyRowDeltas(
        std::vector<std::pair<Tuple, int64_t>>(net.begin(), net.end())));
    // Delta staging materialized flat rows; restore the columnar-only
    // invariant for hot bags before the new generation is published.
    if (options_.marginal_path != MarginalPath::kRows &&
        mutated.SupportSize() >= ColumnarMinRows()) {
      mutated.SealColumnar();
    }

    // Adjust each cached marginal of the bag from the *projected* nets
    // (Equation (2) is linear in multiplicities): a known group's net is
    // a multiplicity bump, a new group appends, an adjustment to zero
    // removes the group. A projection under which the nets cancel is
    // clean and keeps its slot untouched. Adjusted copies are staged
    // here and committed below — any overflow aborts with nothing
    // mutated.
    StagedBag sb{bag_index, std::move(mutated), {},
                 std::vector<std::optional<Bag>>(cache_[bag_index].size())};
    for (size_t k = 0; k < cache_[bag_index].size(); ++k) {
      CachedProjection& slot = cache_[bag_index][k];
      BAGC_ASSIGN_OR_RETURN(Projector proj,
                            Projector::Make(bag.schema(), slot.schema));
      std::map<Tuple, int64_t> pnet;
      for (const auto& [t, d] : net) {
        int64_t& acc = pnet[t.Project(proj)];
        if (__builtin_add_overflow(acc, d, &acc)) {
          return Status::ArithmeticOverflow("projected delta overflow");
        }
      }
      for (auto it = pnet.begin(); it != pnet.end();) {
        it = it->second == 0 ? pnet.erase(it) : std::next(it);
      }
      if (pnet.empty()) continue;
      sb.dirty_slots.push_back(k);
      if (!slot.filled) continue;  // lazy slot: recomputed from the new rows later
      Bag next = *slot.marginal;
      for (const auto& [pt, pd] : pnet) {
        uint64_t old_group = next.Multiplicity(pt);
        uint64_t updated;
        if (pd < 0) {
          // Cannot underflow: the new group count is a sum of the new
          // (validated, non-negative) row multiplicities. CheckedSub
          // guards the invariant anyway.
          BAGC_ASSIGN_OR_RETURN(
              updated,
              CheckedSub(old_group, static_cast<uint64_t>(-(pd + 1)) + 1));
        } else {
          BAGC_ASSIGN_OR_RETURN(
              updated, CheckedAdd(old_group, static_cast<uint64_t>(pd)));
        }
        BAGC_RETURN_NOT_OK(next.Set(pt, updated));
      }
      // The adjustment ran on flat rows; re-seal when the cached marginal
      // was columnar so adjusted slots keep the sealed-bytes reduction.
      if (slot.marginal->columnar_sealed()) next.SealColumnar();
      sb.staged[k] = std::move(next);
    }
    staged_bags.push_back(std::move(sb));
  }

  // Rebuild the owned collection around the mutated bags (schemas — and
  // hence the hypergraph, the pair list, and every cache slot pointer —
  // are unchanged; untouched bags are refcount bumps).
  std::vector<Bag> bags = collection_->bags();
  for (StagedBag& sb : staged_bags) bags[sb.bag_index] = std::move(sb.mutated);
  BAGC_ASSIGN_OR_RETURN(BagCollection next_collection,
                        BagCollection::Make(std::move(bags)));

  // ---- Commit: nothing below can fail. ----
  owned_ = std::make_shared<const BagCollection>(std::move(next_collection));
  collection_ = owned_.get();
  std::vector<const CachedProjection*> dirty_ptrs;
  for (StagedBag& sb : staged_bags) {
    bag_columns_[sb.bag_index] = nullptr;  // transposed the old rows
    for (size_t k : sb.dirty_slots) {
      CachedProjection& slot = cache_[sb.bag_index][k];
      dirty_ptrs.push_back(&slot);
      if (!sb.staged[k].has_value()) continue;
      slot.marginal = std::make_shared<const Bag>(std::move(*sb.staged[k]));
      slot.probe = TupleIndex();
      slot.probe_built = false;
      ++outcome.changed_slots;
      // An in-place adjustment is this generation's fill of the slot.
      marginal_fills_->fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Minimal invalidation: exactly the pairs whose shared-attribute
  // marginal changed lose their cached verdicts (identified by the
  // pre-resolved slot pointers); clean pairs — including every pair not
  // involving a mutated bag — keep theirs. A pair between two mutated
  // bags is dirty from either side. pairs_ is lexicographic, so
  // dirty_pairs comes out sorted and deduplicated.
  for (size_t idx = 0; idx < pairs_.size(); ++idx) {
    const PairTask& p = pairs_[idx];
    if (std::find(dirty_ptrs.begin(), dirty_ptrs.end(), p.left) ==
            dirty_ptrs.end() &&
        std::find(dirty_ptrs.begin(), dirty_ptrs.end(), p.right) ==
            dirty_ptrs.end()) {
      continue;
    }
    outcome.dirty_pairs.emplace_back(p.i, p.j);
    pair_state_[idx] = 0;
  }
  if (!outcome.dirty_pairs.empty()) pairwise_verdict_.reset();
  // The cyclic-schema global solver reads full bags, not shared
  // marginals, so any effective row change drops the memoized global
  // verdict (acyclic recomputation reduces to the — possibly still
  // memoized — pairwise sweep).
  global_verdict_.reset();
  return outcome;
}

Result<ConsistencyEngine> ConsistencyEngine::MakeDelta(
    const ConsistencyEngine& previous, size_t bag_index,
    const std::vector<BagDelta>& deltas, DeltaOutcome* outcome) {
  DeltaBatch batch(1);
  batch[0].bag_index = bag_index;
  batch[0].deltas = deltas;
  return MakeDeltaBatch(previous, batch, outcome);
}

Result<ConsistencyEngine> ConsistencyEngine::MakeDeltaBatch(
    const ConsistencyEngine& previous, const DeltaBatch& batch,
    DeltaOutcome* outcome) {
  if (!previous.fully_sealed_) {
    return Status::FailedPrecondition(
        "MakeDelta requires a fully sealed previous generation");
  }
  if (previous.options_.canonicalize_dictionaries) {
    return Status::FailedPrecondition(
        "MakeDelta cannot apply deltas to a canonicalized generation: "
        "canonicalization remapped the row ids the delta speaks");
  }
  for (const BagDeltas& bd : batch) {
    if (bd.bag_index >= previous.collection_->size()) {
      return Status::OutOfRange("bag index out of range");
    }
  }
  // Adopt EVERY bag of the previous generation (identity reuse): zero
  // marginal fills, shared column stores, shared marginal slots. The
  // batch below then adjusts only the mutated bags' dirty slots, so
  // marginal_fills() of the new engine lands on exactly that count.
  SealReuse reuse;
  reuse.previous = &previous;
  reuse.prev_index.resize(previous.collection_->size());
  for (size_t i = 0; i < reuse.prev_index.size(); ++i) reuse.prev_index[i] = i;
  EngineOptions options = previous.options_;
  options.num_threads = 1;  // residual work is O(dirty pairs); no pool
  options.lazy_seal = false;
  BAGC_ASSIGN_OR_RETURN(
      ConsistencyEngine engine,
      Make(BagCollection(*previous.collection_), options, &reuse));
  // Carry the previous generation's memoized verdicts forward; the
  // batch apply invalidates exactly the dirty ones.
  engine.pair_state_ = previous.pair_state_;
  engine.pairwise_verdict_ = previous.pairwise_verdict_;
  engine.global_verdict_ = previous.global_verdict_;
  engine.marginal_fills_->store(0, std::memory_order_relaxed);
  BAGC_ASSIGN_OR_RETURN(DeltaOutcome out, engine.ApplyDeltaBatch(batch));
  if (outcome != nullptr) *outcome = std::move(out);
  return engine;
}

size_t ConsistencyEngine::ApproxSealedBytes() const {
  // Representation-aware accounting (Bag::ApproxBytes): columnar-sealed
  // bags charge their column store + multiplicity array, row bags the
  // flat entry vector. The budget accounting only needs a monotone,
  // deterministic measure.
  size_t total = 0;
  for (const Bag& b : collection_->bags()) total += b.ApproxBytes();
  for (const std::vector<CachedProjection>& row : cache_) {
    for (const CachedProjection& slot : row) {
      if (slot.filled) total += slot.marginal->ApproxBytes();
    }
  }
  for (size_t i = 0; i < bag_columns_.size(); ++i) {
    const std::shared_ptr<const ColumnStore>& store = bag_columns_[i];
    if (store == nullptr) continue;
    // A store aliasing a columnar-sealed bag's own columns holds no bytes
    // of its own — the bag already charged them above.
    const Bag& b = collection_->bag(i);
    if (b.columnar_sealed() && store.get() == b.SharedColumns().get()) continue;
    total += 64 + 4 * store->num_rows() * store->arity();
  }
  return total;
}

const Bag* ConsistencyEngine::CachedMarginal(size_t i, const Schema& z) const {
  if (i >= cache_.size()) return nullptr;
  const CachedProjection* p = FindProjection(i, z);
  return (p == nullptr || !p->filled) ? nullptr : p->marginal.get();
}

Result<uint64_t> ConsistencyEngine::ProbeMarginal(size_t i, const Schema& z,
                                                  const Tuple& t) {
  if (i >= cache_.size()) return Status::OutOfRange("bag index out of range");
  CachedProjection* p = FindProjection(i, z);
  if (p == nullptr) {
    return Status::NotFound("no sealed projection for this attribute set");
  }
  BAGC_RETURN_NOT_OK(EnsureFilled(p, i));
  if (!p->probe_built) {
    p->probe.Reserve(p->marginal->SupportSize());
    for (size_t e = 0; e < p->marginal->SupportSize(); ++e) {
      p->probe.Insert(p->marginal->RowAt(e), static_cast<uint32_t>(e));
    }
    p->probe_built = true;
  }
  const std::vector<uint32_t>* ids = p->probe.Find(t);
  if (ids == nullptr || ids->empty()) return uint64_t{0};
  return p->marginal->MultiplicityAt(ids->front());
}

}  // namespace bagc
