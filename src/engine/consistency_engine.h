// ConsistencyEngine: the batch consistency API. Pairwise and global bag
// consistency (Atserias–Kolaitis, PODS 2021) are pure functions of a fixed
// bag collection, so a server-style workload — one collection, many
// queries — can seal the collection once and amortize all per-query
// index construction:
//
//   - at seal time the engine computes, for every pair of bags, the
//     marginals on their shared attributes (deduplicated per bag and
//     keyed by attribute set) together with a TupleIndex probe per cached
//     marginal, optionally sharded across a work-stealing thread pool;
//   - TwoBag(i, j) then answers from the cached marginals (Lemma 2(2))
//     without recomputing anything;
//   - PairwiseAll() shards the O(m²) independent pair comparisons across
//     the pool with an atomic early-exit, and deterministically reports
//     the lexicographically first inconsistent pair;
//   - Global() dispatches on schema acyclicity (Theorem 2) and memoizes;
//   - witness queries reuse one TwoBagSolver flow arena across solves.
//
// The single-shot entry points in core/{pairwise,global}.cc are thin
// wrappers that build a throwaway engine per call.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/collection.h"
#include "core/global.h"
#include "engine/two_bag_solver.h"
#include "tuple/column_store.h"
#include "tuple/tuple_index.h"
#include "tuple/value_dictionary.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace bagc {

/// Execution path for the engine's sealed marginal builds (cache fills).
enum class MarginalPath {
  /// Dispatch per bag on support size (columnar at >= kColumnarMinRows) —
  /// the default, matching Bag::Marginal.
  kAuto,
  /// Force the row path (per-row Tuple projection + sort/merge). The
  /// differential-benchmark baseline.
  kRows,
  /// Force the columnar path: one per-bag ColumnStore shared by every
  /// projection, grouped via batch-hashed ColumnIndex probes.
  kColumnar,
};

/// Tuning for a ConsistencyEngine.
struct EngineOptions {
  /// Worker threads for sealing and the pairwise sweep; 1 runs inline
  /// (no pool is created).
  size_t num_threads = 1;
  /// Defer marginal computation from seal time to first use. This is the
  /// single-shot wrappers' mode: the sequential sweep then recovers the
  /// historical early exit (an inconsistency at the first pair costs two
  /// marginals, not a full seal). Only honored when num_threads == 1 —
  /// parallel engines always seal eagerly so queries stay race-free.
  bool lazy_seal = false;
  /// Tuning for the exact (cyclic-schema) global path.
  GlobalSolveOptions global;
  /// The dictionary set the collection's rows were interned through, when
  /// it was sealed from external (string) values. One set is shared by
  /// the whole collection, so shared-attribute ids are comparable across
  /// bags and no query ever re-interns or touches an external value. The
  /// engine only holds it (for decoding results and for callers sharing
  /// it onward); row algebra is dictionary-oblivious — except under
  /// canonicalize_dictionaries, which rewrites the set at seal time.
  std::shared_ptr<DictionarySet> dictionaries;
  /// Canonicalize `dictionaries` at seal time (ValueDictionary::
  /// Canonicalize per attribute) and rewrite the engine's owned copy of
  /// the collection through the remaps, so id order == external sorted
  /// order: ordered entry scans then decode to lexicographically sorted
  /// external rows, enabling range queries over external values. Requires
  /// Make (an owned collection), a non-null dictionary set, and a fully
  /// dictionary-sealed collection (numeric-codec rows have no external
  /// order to canonicalize to and are rejected); the set is mutated, so
  /// it must not encode rows for bags outside this collection.
  bool canonicalize_dictionaries = false;
  /// Execution path for sealed marginal builds; verdicts are identical on
  /// every setting (pinned by the columnar differential leg).
  MarginalPath marginal_path = MarginalPath::kAuto;
  /// Row-count crossover for MarginalPath::kAuto — bags at or above it
  /// fill columnar, below it per-row. Also gates the owned-seal conversion
  /// to columnar-only storage (the flat row vector is dropped; RowAt
  /// reconstructs rows on cold paths). 0 means the library default,
  /// kColumnarMinRows. bagcd exposes it as --columnar-min-rows.
  size_t columnar_min_rows = 0;
  /// ISA dispatch level for the vectorized kernels (batch row hashing,
  /// gather-style probe, radix group-by). kAuto resolves to the best
  /// level the host supports; every level is bit-identical to the scalar
  /// twin (pinned by simd_kernel_test), so this only moves throughput.
  simd::SimdLevel simd = simd::SimdLevel::kAuto;
};

/// Outcome of a pairwise sweep.
struct PairwiseVerdict {
  bool consistent = true;
  /// Valid iff !consistent: the lexicographically first pair (i, j), i < j,
  /// whose shared marginals disagree. Deterministic for every thread count.
  std::pair<size_t, size_t> witness_pair{0, 0};
};

class ConsistencyEngine;

/// Incremental-seal input: reuse the sealed state of a previous engine
/// generation for the bags that did not change. The cached marginals and
/// per-bag column stores are immutable and shared by pointer, so a re-seal
/// that touched k of m bags fills only the O(k·m) slots involving a
/// changed bag instead of all O(m²).
///
/// Correctness preconditions (the caller's responsibility — the engine
/// can only check the structural ones):
///   - `previous` is fully sealed and outlives the Make call (the shared
///     state itself survives it via shared_ptr);
///   - neither generation canonicalized its dictionaries, and both were
///     sealed through the same dictionary lineage (append-only growth is
///     fine; any id remap invalidates every cached row). Make ignores the
///     reuse hint when the new seal canonicalizes.
struct SealReuse {
  /// Sentinel for "this bag is new or changed; fill it from scratch".
  static constexpr size_t kNoPrev = static_cast<size_t>(-1);
  const ConsistencyEngine* previous = nullptr;
  /// prev_index[i] = this bag's index in `previous`'s collection when its
  /// rows are bit-identical there, else kNoPrev. Shorter-than-m vectors
  /// treat missing entries as kNoPrev.
  std::vector<size_t> prev_index;
};

/// One row-level mutation of one bag: `delta` > 0 inserts copies of the
/// row, `delta` < 0 deletes them. A stream of these is a *delta*: the
/// incremental-maintenance unit of ConsistencyEngine::ApplyDelta and the
/// server's INSERT/DELETE verbs. Rows carry the same interned ids as the
/// bag they mutate (dictionary or codec ids).
struct BagDelta {
  Tuple row;
  int64_t delta = 0;
};

/// One bag's share of an atomic multi-bag commit.
struct BagDeltas {
  size_t bag_index = 0;
  std::vector<BagDelta> deltas;
};

/// An atomic delta generation: every listed bag's deltas publish
/// together or not at all (ApplyDeltaBatch / MakeDeltaBatch). Listing
/// the same bag twice is allowed — its deltas net as one stream.
using DeltaBatch = std::vector<BagDeltas>;

/// What a delta actually touched: the pairs whose shared-attribute
/// marginals changed (their cached verdicts were invalidated; everything
/// else kept its verdict) and the number of cached marginal slots that
/// were adjusted. A delta whose row changes cancel out under a projection
/// leaves that projection's slot — and its pairs — clean.
struct DeltaOutcome {
  /// Dirty pairs (i, j), i < j, in lexicographic order. Every pair
  /// involves a mutated bag (dirty-pair minimality).
  std::vector<std::pair<size_t, size_t>> dirty_pairs;
  /// Cached marginal slots of the mutated bags that were adjusted in
  /// place. Each adjustment counts as one marginal fill.
  size_t changed_slots = 0;
};

/// \brief Sealed bag collection plus cached per-query state.
///
/// Pool tasks only ever write disjoint cache slots, and PairwiseAll/Global
/// memoize their verdicts. Queries are not thread-safe against each other
/// (they fill caches on demand); the parallelism lives inside the engine's
/// own pool. Movable, not copyable (owns the pool).
class ConsistencyEngine {
 public:
  /// Seals an owned copy of `collection`: allocates the cache of pairwise
  /// shared-attribute marginals and (unless lazy_seal) computes them, in
  /// parallel when options.num_threads > 1. A non-null `reuse` seeds
  /// unchanged bags' slots from a previous generation (see SealReuse).
  static Result<ConsistencyEngine> Make(BagCollection collection,
                                        EngineOptions options = {},
                                        const SealReuse* reuse = nullptr);

  /// As Make, but borrows `collection` instead of copying it; the caller
  /// must keep it alive for the engine's lifetime. This is the zero-copy
  /// path for the single-shot wrappers in core/.
  static Result<ConsistencyEngine> MakeView(const BagCollection& collection,
                                            EngineOptions options = {});

  /// Builds the next generation of `previous` with `deltas` applied to
  /// bag `bag_index`: every untouched bag adopts the previous
  /// generation's column store and cached marginals (shared pointers, no
  /// fills), the mutated bag's slots are adjusted in place from the
  /// projected deltas (each adjusted slot counts as one marginal fill on
  /// the NEW engine — marginal_fills() starts at zero and lands on
  /// exactly the dirty slot count), and clean pairs carry their cached
  /// verdicts forward. `previous` must be fully sealed, must not have
  /// canonicalized its dictionaries (the delta's ids would not be
  /// comparable), and must outlive this call; the shared sealed state
  /// survives it. DELETE below zero multiplicity fails with OutOfRange
  /// and builds nothing. The new engine runs inline (no worker pool):
  /// a delta generation's residual work is O(dirty pairs), not O(m²).
  static Result<ConsistencyEngine> MakeDelta(const ConsistencyEngine& previous,
                                             size_t bag_index,
                                             const std::vector<BagDelta>& deltas,
                                             DeltaOutcome* outcome = nullptr);

  /// MakeDelta generalized to an atomic multi-bag batch: one published
  /// generation carries every listed bag's deltas, with the same
  /// contract per bag (in-place slot adjustment, minimal dirty-pair
  /// invalidation — a pair is dirty when EITHER side's shared marginal
  /// changed — marginal_fills() landing on exactly the batch's dirty
  /// slot count). All-or-nothing across bags: validation of every bag's
  /// deltas happens before any mutation, so a failed batch (for example
  /// a DELETE below zero in the last bag) builds nothing. MakeDelta is
  /// the single-entry special case.
  static Result<ConsistencyEngine> MakeDeltaBatch(
      const ConsistencyEngine& previous, const DeltaBatch& batch,
      DeltaOutcome* outcome = nullptr);

  ConsistencyEngine(ConsistencyEngine&&) = default;
  ConsistencyEngine& operator=(ConsistencyEngine&&) = default;
  ConsistencyEngine(const ConsistencyEngine&) = delete;
  ConsistencyEngine& operator=(const ConsistencyEngine&) = delete;

  const BagCollection& collection() const { return *collection_; }
  /// Number of sweep workers (1 when running inline).
  size_t num_threads() const { return pool_ ? pool_->num_threads() : 1; }

  /// Joins and destroys the worker pool. For owners that used threads
  /// only for the eager seal + first sweep and will serve the rest of
  /// the engine's life through the const sealed surface (the server's
  /// snapshots): a long-lived generation should not park N idle worker
  /// threads. Subsequent parallel-capable calls (a first PairwiseAll,
  /// SolveGlobalAcyclic) simply run sequentially. No-op without a pool.
  void ReleaseWorkers() { pool_.reset(); }

  /// The shared dictionary set the collection was interned through, or
  /// nullptr for numerically built collections.
  const DictionarySet* dictionaries() const { return options_.dictionaries.get(); }
  /// The same, shareable (e.g. to hand to a sub-engine or writer).
  std::shared_ptr<const DictionarySet> shared_dictionaries() const {
    return options_.dictionaries;
  }

  /// Number of marginal computations performed so far (cache fills; a
  /// slot is only ever filled once). Lets callers and regression tests
  /// assert that repeated queries — including the k-wise sweep — do no
  /// re-computation.
  uint64_t marginal_fills() const {
    return marginal_fills_->load(std::memory_order_relaxed);
  }

  /// Approximate resident bytes of the sealed state: collection rows,
  /// cached marginals, and columnar transposes (dictionaries excluded —
  /// the owner accounts those). An upper bound under incremental reuse:
  /// shared slots are counted in every generation holding them, which is
  /// the conservative direction for an eviction budget.
  size_t ApproxSealedBytes() const;

  /// True iff this engine was sealed eagerly (every marginal slot
  /// computed at Make) — the precondition of the *Sealed const query
  /// surface below. Deliberately NOT updated by lazy on-demand fills: a
  /// lazily sealed engine reports false even once all slots happen to be
  /// filled, because its fills mutate and were never meant to be shared.
  bool fully_sealed() const { return fully_sealed_; }

  /// Applies a delta stream to bag `bag_index` in place: per-row net
  /// changes mutate the owned bag (copy-on-write), and each cached
  /// marginal R[Z] of the bag is *adjusted* — the projected net of the
  /// delta rows is added onto a copy of the cached marginal (a known
  /// row's insert is a multiplicity bump, a new row appends, a delete to
  /// zero removes the row) — instead of being recomputed from all rows.
  /// Each adjusted slot counts as one marginal fill. Verdict invalidation
  /// is minimal: only pairs whose shared-attribute marginal actually
  /// changed are returned dirty and lose their cached verdicts; clean
  /// pairs (including every pair not involving the bag) keep theirs. The
  /// memoized global verdict is dropped on any effective change (the
  /// cyclic-schema solver reads full bags, not just shared marginals).
  ///
  /// All-or-nothing: validation (arity, DELETE below zero multiplicity →
  /// OutOfRange, multiplicity overflow) happens before any mutation, so a
  /// failed delta leaves the engine bit-identical. Requires an owned
  /// collection (Make, not MakeView). Deltas whose nets cancel to zero
  /// are a no-op returning an empty outcome. Not thread-safe against
  /// concurrent queries (same contract as the other non-const entry
  /// points).
  Result<DeltaOutcome> ApplyDelta(size_t bag_index,
                                  const std::vector<BagDelta>& deltas);

  /// ApplyDelta generalized to an atomic multi-bag batch (the in-place
  /// twin of MakeDeltaBatch): per-bag nets are staged — COW bag
  /// mutation, projected slot adjustments — for EVERY bag before any
  /// engine state changes, then committed in one step. A validation
  /// failure in any bag (arity, DELETE below zero, overflow) leaves the
  /// engine bit-identical with no bag touched. ApplyDelta forwards here
  /// with a single-entry batch.
  Result<DeltaOutcome> ApplyDeltaBatch(const DeltaBatch& batch);

  /// Lemma 2(2) on bags i and j, answered from the cached marginals
  /// (filling them on first use under lazy_seal).
  Result<bool> TwoBag(size_t i, size_t j);

  // ---- Const (shared-snapshot) query surface -------------------------------
  //
  // After an eager seal the cache is immutable, so these answer without
  // touching any engine state and are safe for any number of concurrent
  // callers on one engine — the substrate of the bagcd server's shared
  // engine snapshots (src/server/engine_snapshot.h). They fail with
  // FailedPrecondition on a lazily sealed engine whose slots are not all
  // filled yet; use the non-const entry points there instead.

  /// TwoBag without cache fills: compares the two already-filled cached
  /// marginals. Thread-safe on a fully sealed engine.
  Result<bool> TwoBagSealed(size_t i, size_t j) const;

  /// KWiseConsistent without cache fills: the same lexicographic subset
  /// sweep, with every pairwise precheck answered by TwoBagSealed and
  /// cyclic subsets paying a local LP (no shared state is written).
  /// Thread-safe on a fully sealed engine.
  Result<bool> KWiseConsistentSealed(
      size_t k,
      std::optional<std::vector<size_t>>* failing_subset = nullptr) const;

  /// Witness without the engine's shared flow arena: the Lemma 2(2)
  /// pre-check reads the sealed cache and the construction runs in a
  /// local TwoBagSolver, so concurrent witness queries never contend.
  /// Same deterministic witness as Witness(). Thread-safe on a fully
  /// sealed engine.
  Result<std::optional<Bag>> WitnessSealed(size_t i, size_t j,
                                           bool minimal = false) const;

  /// The memoized pairwise verdict, if PairwiseAll() has run. Reading it
  /// is safe concurrently with the const surface above (snapshot builders
  /// call PairwiseAll() once before publishing the engine).
  const std::optional<PairwiseVerdict>& cached_pairwise_verdict() const {
    return pairwise_verdict_;
  }

  /// The memoized global verdict, if Global() has run.
  const std::optional<bool>& cached_global_verdict() const {
    return global_verdict_;
  }

  /// Sweeps all pairs (sharded across the pool when one exists) with
  /// early exit on the first inconsistent pair; memoized. All in-flight
  /// pool tasks are drained before this returns.
  Result<PairwiseVerdict> PairwiseAll();

  /// Global consistency: acyclic schemas reduce to PairwiseAll()
  /// (Theorem 2); cyclic schemas run the exact solver. Memoized.
  Result<bool> Global();

  /// K-wise consistency (paper §4): every size-min(k, m) subcollection is
  /// globally consistent. Subsets are enumerated lexicographically and the
  /// first failing one is reported. Unlike the historical implementation —
  /// which sealed a throwaway engine per subset, re-deriving every shared
  /// marginal from scratch — this reuses the parent engine's sealed state:
  /// the per-pair cached marginals answer each subset's pairwise precheck
  /// (filling each pair at most once across ALL subsets), acyclic subsets
  /// are then decided outright by Theorem 2, and only cyclic subsets pay
  /// an exact feasibility search (with no second pairwise pass). No bag is
  /// copied for acyclic subsets and nothing is ever re-interned.
  Result<bool> KWiseConsistent(size_t k,
                               std::optional<std::vector<size_t>>* failing_subset =
                                   nullptr);

  /// Witness of consistency for bags i and j (minimal per §5.3 when
  /// `minimal`); nullopt when inconsistent. Reuses the engine's flow arena.
  Result<std::optional<Bag>> Witness(size_t i, size_t j, bool minimal = false);

  /// Theorem 6 witness construction for acyclic schemas, folding minimal
  /// two-bag witnesses through the engine's reusable flow arena.
  Result<std::optional<Bag>> SolveGlobalAcyclic(
      const AcyclicSolveOptions& options = {});

  /// Exact decision for arbitrary schemas via integer feasibility of
  /// P(R1..Rm), with the pairwise sweep as a prefilter.
  Result<std::optional<Bag>> SolveGlobalExact();

  /// Cached marginal of bag i onto z, or nullptr when (i, z) is not a
  /// sealed projection or (under lazy_seal) has not been computed yet.
  const Bag* CachedMarginal(size_t i, const Schema& z) const;

  /// Ri[z](t) via a TupleIndex probe over the cached marginal (built on
  /// first probe of that projection); errors when (i, z) is not a sealed
  /// projection. 0 when t is not in the marginal's support.
  Result<uint64_t> ProbeMarginal(size_t i, const Schema& z, const Tuple& t);

 private:
  // One sealed projection of one bag: Z, Ri[Z] (filled eagerly or on first
  // use), and a hash probe from marginal tuple to its entry index (built
  // on first ProbeMarginal). The marginal is held by shared_ptr so an
  // incremental re-seal shares unchanged bags' slots with the previous
  // generation — whichever engine dies first, the bag survives.
  struct CachedProjection {
    Schema schema;
    std::shared_ptr<const Bag> marginal;
    bool filled = false;
    TupleIndex probe;
    bool probe_built = false;
  };
  // One pairwise comparison, with the two cache slots pre-resolved. The
  // pointers target heap storage owned by cache_, which is stable after
  // Seal() (and across moves of the engine).
  struct PairTask {
    size_t i, j;
    CachedProjection* left;
    CachedProjection* right;
  };

  ConsistencyEngine() = default;

  static Result<ConsistencyEngine> MakeImpl(const BagCollection* view,
                                            std::shared_ptr<const BagCollection> owned,
                                            EngineOptions options,
                                            const SealReuse* reuse);
  // Builds cache_ and pairs_; computes the marginals (sharded over the
  // pool) unless sealing lazily. A non-null `reuse` pre-fills unchanged
  // bags' slots and column stores from the previous generation.
  Status Seal(const SealReuse* reuse);
  Status EnsureFilled(CachedProjection* slot, size_t bag_index);
  // True when bag i's cache fills should group columnar under the
  // configured MarginalPath.
  bool UseColumnar(size_t bag_index) const;
  // The effective kAuto crossover (options_.columnar_min_rows, or the
  // library default when unset).
  size_t ColumnarMinRows() const;
  // Bag i's ColumnStore, built on first use. NOT thread-safe: parallel
  // seals pre-build every store (one pool task per bag) before the slot
  // fills fan out, so fills only ever read it.
  const ColumnStore& EnsureColumns(size_t bag_index);
  CachedProjection* FindProjection(size_t i, const Schema& z);
  const CachedProjection* FindProjection(size_t i, const Schema& z) const;
  Result<PairwiseVerdict> SweepSequential();
  PairwiseVerdict SweepParallel();
  // The cache slots of pair (i, j); normalizes i > j. Errors on an
  // out-of-range index; returns nullptr (OK case) for i == j.
  Result<const PairTask*> PairAt(size_t i, size_t j) const;
  // The k-wise subset sweep shared by KWiseConsistent and
  // KWiseConsistentSealed; `pair_query(a, b)` answers one Lemma 2(2)
  // precheck. Defined in the .cc (both instantiations live there).
  template <typename PairFn>
  Result<bool> KWiseSweep(size_t k,
                          std::optional<std::vector<size_t>>* failing_subset,
                          PairFn&& pair_query) const;

  const BagCollection* collection_ = nullptr;  // owned_ or a borrowed view
  std::shared_ptr<const BagCollection> owned_;
  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads == 1
  std::vector<std::vector<CachedProjection>> cache_;  // per bag, schema-sorted
  // Per-bag SoA transpose shared by all of that bag's sealed projections
  // (zero-copy column Select per schema); null until first columnar fill.
  // shared_ptr for the same reason as CachedProjection::marginal.
  std::vector<std::shared_ptr<const ColumnStore>> bag_columns_;
  std::vector<PairTask> pairs_;  // all (i, j), i < j, lexicographic
  // Per-pair verdict cache aligned with pairs_: 0 unknown, 1 consistent,
  // 2 inconsistent. Written by the sweeps (parallel chunks write disjoint
  // indices) and by TwoBag; ApplyDelta resets exactly the dirty entries,
  // so a post-delta sweep re-compares only pairs whose shared marginals
  // changed. TwoBagSealed reads it but never writes (const surface).
  std::vector<int8_t> pair_state_;
  bool fully_sealed_ = false;    // every cache slot filled (see fully_sealed())
  std::optional<PairwiseVerdict> pairwise_verdict_;
  std::optional<bool> global_verdict_;
  TwoBagSolver witness_solver_;
  // Counts actual cache fills (see marginal_fills()). Heap storage keeps
  // the engine movable while pool tasks increment it concurrently during
  // eager sealing.
  std::unique_ptr<std::atomic<uint64_t>> marginal_fills_ =
      std::make_unique<std::atomic<uint64_t>>(0);
};

}  // namespace bagc
