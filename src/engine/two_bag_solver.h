// Reusable two-bag consistency solver. Owns a ConsistencyNetwork whose
// FlowNetwork arena survives across solves, so the §5.3 minimal-witness
// suppress/restore loop, the Theorem 6 fold, and engine batch witness
// queries rebuild into the same allocations instead of paying a fresh
// network per call. The single-shot wrappers in core/two_bag.cc construct
// one solver per call; the ConsistencyEngine keeps one alive per engine.
#pragma once

#include <optional>

#include "bag/bag.h"
#include "flow/consistency_network.h"
#include "util/result.h"

namespace bagc {

/// \brief Two-bag decision + witness construction over a reused flow arena.
class TwoBagSolver {
 public:
  TwoBagSolver() = default;

  /// Lemma 2(2): R and S are consistent iff their marginals on the shared
  /// attributes coincide.
  static Result<bool> AreConsistent(const Bag& r, const Bag& s);

  /// Witness via an integral saturated flow of N(R, S); nullopt when
  /// inconsistent (Corollary 1).
  Result<std::optional<Bag>> FindWitness(const Bag& r, const Bag& s);

  /// Minimal witness by middle-edge self-reducibility (§5.3, Corollary 4);
  /// nullopt when inconsistent.
  Result<std::optional<Bag>> FindMinimalWitness(const Bag& r, const Bag& s);

  /// As FindWitness / FindMinimalWitness but skipping the Lemma 2(2)
  /// pre-check: the caller has already established consistency (the
  /// ConsistencyEngine answers it from cached marginals). Errors with
  /// Internal if the bags are in fact inconsistent.
  Result<Bag> FindWitnessKnownConsistent(const Bag& r, const Bag& s,
                                         bool minimal);

 private:
  ConsistencyNetwork arena_;
};

}  // namespace bagc
