#include "engine/two_bag_solver.h"

namespace bagc {

Result<bool> TwoBagSolver::AreConsistent(const Bag& r, const Bag& s) {
  Schema z = Schema::Intersect(r.schema(), s.schema());
  BAGC_ASSIGN_OR_RETURN(Bag rz, r.Marginal(z));
  BAGC_ASSIGN_OR_RETURN(Bag sz, s.Marginal(z));
  return rz == sz;
}

Result<std::optional<Bag>> TwoBagSolver::FindWitness(const Bag& r, const Bag& s) {
  // Cheap pre-check (Lemma 2(2)) before building the network.
  BAGC_ASSIGN_OR_RETURN(bool consistent, AreConsistent(r, s));
  if (!consistent) return std::optional<Bag>();
  BAGC_ASSIGN_OR_RETURN(Bag witness,
                        FindWitnessKnownConsistent(r, s, /*minimal=*/false));
  return std::optional<Bag>(std::move(witness));
}

Result<std::optional<Bag>> TwoBagSolver::FindMinimalWitness(const Bag& r,
                                                            const Bag& s) {
  BAGC_ASSIGN_OR_RETURN(bool consistent, AreConsistent(r, s));
  if (!consistent) return std::optional<Bag>();
  BAGC_ASSIGN_OR_RETURN(Bag witness,
                        FindWitnessKnownConsistent(r, s, /*minimal=*/true));
  return std::optional<Bag>(std::move(witness));
}

Result<Bag> TwoBagSolver::FindWitnessKnownConsistent(const Bag& r, const Bag& s,
                                                     bool minimal) {
  BAGC_RETURN_NOT_OK(arena_.Assign(r, s));
  BAGC_ASSIGN_OR_RETURN(bool saturated, arena_.HasSaturatedFlow());
  if (!saturated) {
    // Lemma 2 (2) => (5): cannot happen when the marginals agree.
    return Status::Internal("marginals agree but N(R,S) has no saturated flow");
  }
  if (minimal) {
    // §5.3 self-reducibility: for each middle edge, ask whether some
    // saturated flow avoids it; if so, delete it permanently. Every
    // re-solve runs inside the same arena.
    for (size_t i = 0; i < arena_.NumMiddleEdges(); ++i) {
      BAGC_RETURN_NOT_OK(arena_.SuppressMiddleEdge(i));
      BAGC_ASSIGN_OR_RETURN(bool still, arena_.HasSaturatedFlow());
      if (!still) {
        BAGC_RETURN_NOT_OK(arena_.RestoreMiddleEdge(i));
      }
    }
    // Re-solve on the surviving edges and extract.
    BAGC_ASSIGN_OR_RETURN(bool final_ok, arena_.HasSaturatedFlow());
    if (!final_ok) {
      return Status::Internal("minimal-witness pruning lost saturation");
    }
  }
  return arena_.ExtractWitness();
}

}  // namespace bagc
