// Hypergraphs H = (V, E) whose hyperedges are attribute sets (paper §4).
// Provides the structural operations the paper's proofs rely on: primal
// graph, reduction R(H), induced sub-hypergraph H[W], vertex/edge deletion,
// uniformity/regularity predicates, and structural matchers for the
// "minimal obstruction" families Cn and Hn.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tuple/schema.h"
#include "util/result.h"

namespace bagc {

/// \brief Undirected graph on a fixed vertex list (used for primal graphs).
///
/// Vertices are indexed 0..n-1; the mapping to attribute ids is owned by the
/// hypergraph that built the graph.
class Graph {
 public:
  explicit Graph(size_t n) : n_(n), adj_(n * n, false), degree_(n, 0) {}

  size_t num_vertices() const { return n_; }
  void AddEdge(size_t u, size_t v);
  bool HasEdge(size_t u, size_t v) const { return adj_[u * n_ + v]; }
  size_t Degree(size_t v) const { return degree_[v]; }
  size_t num_edges() const;

  /// Neighbor indices of v in increasing order.
  std::vector<size_t> Neighbors(size_t v) const;

  /// Induced subgraph on `keep` (indices into this graph, strictly
  /// increasing). Vertex i of the result is keep[i].
  Graph InducedSubgraph(const std::vector<size_t>& keep) const;

  /// True iff the graph is connected (n == 0 counts as connected).
  bool IsConnected() const;

 private:
  size_t n_;
  std::vector<bool> adj_;
  std::vector<size_t> degree_;
};

/// \brief A hypergraph over attribute vertices.
///
/// Hyperedges are non-empty attribute sets, stored sorted and deduplicated.
/// The vertex set may strictly contain the union of the hyperedges (vertex
/// deletion keeps isolated vertices out by re-inducing, but construction
/// allows explicit vertex sets).
class Hypergraph {
 public:
  Hypergraph() = default;

  /// Builds from explicit vertices and edges. Fails if an edge is empty or
  /// mentions a vertex outside V.
  static Result<Hypergraph> Make(Schema vertices, std::vector<Schema> edges);

  /// Vertices := union of the edges.
  static Result<Hypergraph> FromEdges(std::vector<Schema> edges);

  const Schema& vertices() const { return vertices_; }
  const std::vector<Schema>& edges() const { return edges_; }
  size_t num_vertices() const { return vertices_.arity(); }
  size_t num_edges() const { return edges_.size(); }

  /// Number of hyperedges containing vertex `a`.
  size_t VertexDegree(AttrId a) const;

  /// Primal (Gaifman) graph: vertices of H, an edge between two distinct
  /// vertices that co-occur in some hyperedge. Index i of the Graph is
  /// vertices().at(i).
  Graph PrimalGraph() const;

  /// Reduction R(H): drops hyperedges contained in another hyperedge.
  Hypergraph Reduction() const;
  bool IsReduced() const;

  /// Induced sub-hypergraph H[W]: vertex set W, edges {X ∩ W} \ {∅}.
  Hypergraph Induce(const Schema& w) const;

  /// H \ u — vertex deletion (a safe-deletion operation).
  Hypergraph DeleteVertex(AttrId a) const;

  /// H \ e — edge deletion. Only "covered" edge deletions are safe in the
  /// Lemma 4 sense; this primitive does not check cover.
  Result<Hypergraph> DeleteEdge(const Schema& e) const;

  /// True iff `e` is an edge and is contained in a *different* edge.
  bool EdgeIsCovered(const Schema& e) const;

  /// k such that all edges have exactly k vertices, if uniform.
  std::optional<size_t> UniformityDegree() const;
  /// d such that all vertices lie in exactly d edges, if regular.
  std::optional<size_t> RegularityDegree() const;

  /// If H ≅ Cn (n ≥ 3): vertex list A1..An in cyclic order s.t. edges are
  /// exactly {Ai, Ai+1} (indices mod n).
  std::optional<std::vector<AttrId>> MatchCycle() const;

  /// If H ≅ Hn (n ≥ 3): the vertex enumeration (edges are exactly the
  /// complements of single vertices).
  std::optional<std::vector<AttrId>> MatchHn() const;

  bool operator==(const Hypergraph& o) const {
    return vertices_ == o.vertices_ && edges_ == o.edges_;
  }
  bool operator!=(const Hypergraph& o) const { return !(*this == o); }

  std::string ToString() const;

 private:
  Schema vertices_;
  std::vector<Schema> edges_;  // sorted lexicographically, unique
};

}  // namespace bagc
