// The hypergraph families of the paper (§4, Equations (4)-(6)) and random
// generators for the experiment harness.
//
//   Pn = path:  {A1A2}, {A2A3}, ..., {An-1An}          (acyclic, n >= 2)
//   Cn = cycle: Pn plus {AnA1}                          (cyclic,  n >= 3)
//   Hn = all (n-1)-subsets of {A1..An}                  (cyclic,  n >= 3)
//
// Attribute ids are 0..n-1 unless a catalog is supplied by the caller.
#pragma once

#include <cstdint>

#include "hypergraph/hypergraph.h"
#include "util/random.h"
#include "util/result.h"

namespace bagc {

/// Path hypergraph Pn; requires n >= 2.
Result<Hypergraph> MakePath(size_t n);

/// Cycle hypergraph Cn; requires n >= 3.
Result<Hypergraph> MakeCycle(size_t n);

/// Hn: hyperedges are the complements of single vertices; requires n >= 3.
Result<Hypergraph> MakeHn(size_t n);

/// Star: one center attribute shared by `leaves` binary edges (acyclic).
Result<Hypergraph> MakeStar(size_t leaves);

/// Random acyclic hypergraph built join-tree-first: `m` hyperedges, each of
/// arity at most `max_arity`, child edges inherit a random subset of a
/// random earlier edge plus fresh attributes. Always acyclic by
/// construction (the generation order is a running-intersection listing).
Result<Hypergraph> MakeRandomAcyclic(size_t m, size_t max_arity, Rng* rng);

/// Random k-uniform hypergraph with m distinct edges over n vertices.
/// Usually cyclic for dense parameters; callers should test.
Result<Hypergraph> MakeRandomUniform(size_t n, size_t k, size_t m, Rng* rng);

/// Circulant hypergraph: n vertices, edges {i, i+1, ..., i+k-1} (mod n)
/// for every i — k-uniform and k-regular, generalizing Cn (= k of 2).
/// Cyclic for 2 <= k < n; requires n > k >= 2. These are the natural
/// k-uniform d-regular inputs for the Tseitin construction beyond Cn/Hn.
Result<Hypergraph> MakeCirculant(size_t n, size_t k);

}  // namespace bagc
