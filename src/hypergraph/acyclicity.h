// Hypergraph acyclicity (α-acyclicity) and its certificates: GYO/Graham
// reduction, join trees via maximum-weight spanning trees, and
// running-intersection orderings (paper §4, Theorem 1/2 statements (a),
// (c), (d)).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "util/result.h"

namespace bagc {

/// One step of the GYO (Graham) reduction.
struct GyoStep {
  enum class Kind { kRemoveEar, kRemoveCoveredEdge };
  Kind kind;
  /// kRemoveEar: the vertex removed (it appeared in exactly one edge).
  AttrId vertex = 0;
  /// kRemoveCoveredEdge: the edge removed and an edge covering it.
  Schema edge;
  Schema cover;
};

/// GYO reduction: repeatedly removes "ear" vertices (vertices occurring in
/// exactly one hyperedge) and covered hyperedges. H is acyclic iff the
/// reduction terminates with at most one hyperedge. The steps are appended
/// to `trace` when non-null.
bool IsAcyclicGyo(const Hypergraph& h, std::vector<GyoStep>* trace = nullptr);

/// Acyclicity via Theorem 1(b): conformal and chordal.
bool IsAcyclicByConformalChordal(const Hypergraph& h);

/// Default acyclicity test (GYO).
inline bool IsAcyclic(const Hypergraph& h) { return IsAcyclicGyo(h); }

/// \brief A join tree for a hypergraph: a tree on its hyperedges such that
/// for every vertex v the hyperedges containing v form a subtree.
struct JoinTree {
  /// The hyperedges, in the hypergraph's canonical edge order.
  std::vector<Schema> nodes;
  /// Undirected tree edges as (i, j) index pairs, i < j.
  std::vector<std::pair<size_t, size_t>> tree_edges;

  /// Checks the connected-subtree condition for every vertex, and that
  /// tree_edges is a spanning tree of nodes.
  bool Verify() const;
};

/// Builds a join tree via a maximum-weight spanning tree of the
/// intersection graph (weights |Xi ∩ Xj|), the Bernstein–Goodman
/// construction; fails with FailedPrecondition when H is cyclic.
Result<JoinTree> BuildJoinTree(const Hypergraph& h);

/// An ordering of edge indices witnessing the running intersection
/// property: for every i >= 1 (0-based), there is j < i with
/// X_order[i] ∩ (X_order[0] ∪ ... ∪ X_order[i-1]) ⊆ X_order[j].
/// Derived from a rooted join tree; fails when H is cyclic.
Result<std::vector<size_t>> RunningIntersectionOrder(const Hypergraph& h);

/// Verifies the running intersection property of `order` (a permutation of
/// 0..m-1) for H's edge list.
bool VerifyRunningIntersection(const Hypergraph& h, const std::vector<size_t>& order);

}  // namespace bagc
