#include "hypergraph/chordality.h"

#include <algorithm>
#include <list>

namespace bagc {

std::vector<size_t> LexBfsOrder(const Graph& g) {
  // Partition-refinement Lex-BFS: maintain an ordered list of buckets of
  // unvisited vertices; repeatedly visit the front vertex and split every
  // bucket into (neighbors, non-neighbors), neighbors first.
  size_t n = g.num_vertices();
  std::vector<size_t> order;
  order.reserve(n);
  std::list<std::vector<size_t>> buckets;
  if (n > 0) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    buckets.push_back(std::move(all));
  }
  while (!buckets.empty()) {
    std::vector<size_t>& front = buckets.front();
    size_t v = front.back();
    front.pop_back();
    if (front.empty()) buckets.pop_front();
    order.push_back(v);
    for (auto it = buckets.begin(); it != buckets.end();) {
      std::vector<size_t> in, out;
      for (size_t u : *it) {
        (g.HasEdge(v, u) ? in : out).push_back(u);
      }
      if (in.empty() || out.empty()) {
        ++it;
        continue;
      }
      *it = std::move(out);
      buckets.insert(it, std::move(in));
      ++it;
    }
  }
  return order;
}

bool IsPerfectEliminationOrder(const Graph& g, const std::vector<size_t>& order) {
  // Reverse of a Lex-BFS order should be a PEO. Standard verification: for
  // each vertex v (processed in elimination order = reversed visit order),
  // let later(v) be its neighbors that come earlier in the visit order
  // (i.e., later in elimination); the closest such neighbor u must be
  // adjacent to all the others.
  size_t n = g.num_vertices();
  std::vector<size_t> pos(n);
  for (size_t i = 0; i < n; ++i) pos[order[i]] = i;
  for (size_t i = n; i-- > 0;) {
    size_t v = order[i];
    // Neighbors of v visited before v.
    std::vector<size_t> earlier;
    for (size_t u : g.Neighbors(v)) {
      if (pos[u] < i) earlier.push_back(u);
    }
    if (earlier.empty()) continue;
    // Parent: the earlier neighbor visited last.
    size_t parent = earlier[0];
    for (size_t u : earlier) {
      if (pos[u] > pos[parent]) parent = u;
    }
    for (size_t u : earlier) {
      if (u != parent && !g.HasEdge(parent, u)) return false;
    }
  }
  return true;
}

bool IsChordalGraph(const Graph& g) {
  return IsPerfectEliminationOrder(g, LexBfsOrder(g));
}

bool IsChordal(const Hypergraph& h) { return IsChordalGraph(h.PrimalGraph()); }

}  // namespace bagc
