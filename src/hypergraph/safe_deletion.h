// Safe-deletion operations and the Lemma 3 obstruction search. A cyclic
// hypergraph is non-conformal or non-chordal (Theorem 1(b)); Lemma 3 finds
// a vertex set W such that R(H[W]) is isomorphic to a "minimal" cyclic
// hypergraph — the cycle Cn (n >= 4) or Hn (n >= 3) — together with a
// sequence of safe deletions transforming H into R(H[W]). Lemma 4 then
// lifts bag collections backwards along that sequence.
#pragma once

#include <string>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "util/result.h"

namespace bagc {

/// One safe-deletion operation (paper §4): deleting a vertex, or deleting a
/// hyperedge that is covered by another hyperedge.
struct SafeDeletion {
  enum class Kind { kVertex, kCoveredEdge };
  Kind kind;
  /// kVertex: the vertex deleted.
  AttrId vertex = 0;
  /// kCoveredEdge: the edge deleted (must be ⊆ some other edge).
  Schema edge;

  static SafeDeletion Vertex(AttrId a) {
    return {Kind::kVertex, a, Schema{}};
  }
  static SafeDeletion CoveredEdge(Schema e) {
    return {Kind::kCoveredEdge, 0, std::move(e)};
  }

  std::string ToString() const;
};

/// Applies `ops` in order, validating each (the vertex must exist; the edge
/// must exist and be covered by a different edge at the time of deletion).
Result<Hypergraph> ApplySafeDeletions(const Hypergraph& h,
                                      const std::vector<SafeDeletion>& ops);

/// \brief The Lemma 3 witness: W ⊆ V with R(H[W]) ≅ Cn or Hn, plus the
/// safe-deletion sequence from H to R(H[W]).
struct Obstruction {
  /// True when R(H[W]) ≅ H_{|W|}; false when ≅ C_{|W|}.
  bool is_hn;
  Schema w;
  /// The reduced induced hypergraph R(H[W]).
  Hypergraph minimal;
  /// Vertex enumeration A1..An: cyclic order for Cn, plain order for Hn.
  std::vector<AttrId> enumeration;
  /// Safe deletions transforming H into `minimal`.
  std::vector<SafeDeletion> sequence;
};

/// Finds an obstruction witnessing cyclicity (Lemma 3); fails with
/// FailedPrecondition if H is acyclic.
Result<Obstruction> FindObstruction(const Hypergraph& h);

}  // namespace bagc
