#include "hypergraph/safe_deletion.h"

#include <algorithm>

#include "hypergraph/chordality.h"
#include "hypergraph/conformality.h"

namespace bagc {

std::string SafeDeletion::ToString() const {
  if (kind == Kind::kVertex) {
    return "delete-vertex(" + std::to_string(vertex) + ")";
  }
  return "delete-covered-edge(" + edge.ToString() + ")";
}

Result<Hypergraph> ApplySafeDeletions(const Hypergraph& h,
                                      const std::vector<SafeDeletion>& ops) {
  Hypergraph cur = h;
  for (const SafeDeletion& op : ops) {
    if (op.kind == SafeDeletion::Kind::kVertex) {
      if (!cur.vertices().Contains(op.vertex)) {
        return Status::InvalidArgument("safe deletion of absent vertex " +
                                       std::to_string(op.vertex));
      }
      cur = cur.DeleteVertex(op.vertex);
    } else {
      if (!cur.EdgeIsCovered(op.edge)) {
        return Status::InvalidArgument("edge is not covered (unsafe deletion): " +
                                       op.edge.ToString());
      }
      BAGC_ASSIGN_OR_RETURN(cur, cur.DeleteEdge(op.edge));
    }
  }
  return cur;
}

namespace {

// Iteratively deletes vertices as long as the induced sub-hypergraph keeps
// the property `bad` (non-chordal / non-conformal); returns the final W.
template <typename BadPredicate>
Schema MinimizeVertices(const Hypergraph& h, const BadPredicate& bad) {
  Schema w = h.vertices();
  bool progress = true;
  while (progress) {
    progress = false;
    for (AttrId a : w.attrs()) {
      Schema candidate = Schema::Difference(w, Schema{{a}});
      if (bad(h.Induce(candidate))) {
        w = candidate;
        progress = true;
        break;
      }
    }
  }
  return w;
}

// Builds the deletion sequence: vertices of V \ W first, then the covered
// edges of H[W] until reduced.
Result<std::vector<SafeDeletion>> BuildSequence(const Hypergraph& h, const Schema& w,
                                                const Hypergraph& minimal) {
  std::vector<SafeDeletion> seq;
  Schema outside = Schema::Difference(h.vertices(), w);
  for (AttrId a : outside.attrs()) {
    seq.push_back(SafeDeletion::Vertex(a));
  }
  Hypergraph induced = h.Induce(w);
  // Delete covered edges until reduced; note that deleting one covered edge
  // can leave another still covered, so iterate to a fixpoint.
  bool progress = true;
  Hypergraph cur = induced;
  while (progress) {
    progress = false;
    for (const Schema& e : cur.edges()) {
      if (cur.EdgeIsCovered(e)) {
        seq.push_back(SafeDeletion::CoveredEdge(e));
        BAGC_ASSIGN_OR_RETURN(cur, cur.DeleteEdge(e));
        progress = true;
        break;
      }
    }
  }
  if (cur.edges() != minimal.edges()) {
    return Status::Internal("safe-deletion sequence did not reach R(H[W])");
  }
  return seq;
}

}  // namespace

Result<Obstruction> FindObstruction(const Hypergraph& h) {
  if (!IsConformal(h)) {
    Schema w = MinimizeVertices(
        h, [](const Hypergraph& g) { return !IsConformal(g); });
    Hypergraph minimal = h.Induce(w).Reduction();
    auto enumeration = minimal.MatchHn();
    if (!enumeration.has_value()) {
      return Status::Internal(
          "non-conformal minimization did not produce Hn (Lemma 3(2) violated)");
    }
    Obstruction out;
    out.is_hn = true;
    out.w = w;
    out.minimal = std::move(minimal);
    out.enumeration = std::move(*enumeration);
    BAGC_ASSIGN_OR_RETURN(out.sequence, BuildSequence(h, w, out.minimal));
    return out;
  }
  if (!IsChordal(h)) {
    Schema w =
        MinimizeVertices(h, [](const Hypergraph& g) { return !IsChordal(g); });
    Hypergraph minimal = h.Induce(w).Reduction();
    auto enumeration = minimal.MatchCycle();
    if (!enumeration.has_value() || enumeration->size() < 4) {
      return Status::Internal(
          "non-chordal minimization did not produce a chordless cycle "
          "(Lemma 3(1) violated)");
    }
    Obstruction out;
    out.is_hn = false;
    out.w = w;
    out.minimal = std::move(minimal);
    out.enumeration = std::move(*enumeration);
    BAGC_ASSIGN_OR_RETURN(out.sequence, BuildSequence(h, w, out.minimal));
    return out;
  }
  return Status::FailedPrecondition(
      "hypergraph is conformal and chordal (acyclic): no obstruction exists");
}

}  // namespace bagc
