// Conformality testing. H is conformal when every clique of its primal
// graph lies inside some hyperedge (paper §4). Two independent algorithms:
//  - Gilmore's polynomial criterion (Berge, Hypergraphs, p. 31): H is
//    conformal iff for every three hyperedges e1, e2, e3 some hyperedge
//    contains (e1∩e2) ∪ (e2∩e3) ∪ (e3∩e1).
//  - Direct maximal-clique check via Bron–Kerbosch (exponential worst case;
//    used for cross-validation in tests on small inputs).
#pragma once

#include <vector>

#include "hypergraph/hypergraph.h"

namespace bagc {

/// Polynomial conformality test (Gilmore's criterion).
bool IsConformal(const Hypergraph& h);

/// All maximal cliques of g (Bron–Kerbosch with pivoting), as vertex-index
/// lists sorted increasingly. Exponential in the worst case.
std::vector<std::vector<size_t>> MaximalCliques(const Graph& g);

/// Reference conformality test: every maximal clique of the primal graph is
/// contained in a hyperedge. Exponential worst case; testing only.
bool IsConformalByCliques(const Hypergraph& h);

}  // namespace bagc
