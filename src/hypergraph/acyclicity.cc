#include "hypergraph/acyclicity.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "hypergraph/chordality.h"
#include "hypergraph/conformality.h"
#include "util/logging.h"

namespace bagc {

bool IsAcyclicGyo(const Hypergraph& h, std::vector<GyoStep>* trace) {
  // Work on a mutable copy of the edge list (as attribute vectors).
  std::vector<Schema> edges = h.edges();
  bool changed = true;
  while (changed) {
    changed = false;
    // (1) Remove ear vertices: vertices in exactly one edge.
    std::map<AttrId, size_t> occurrences;
    for (const Schema& e : edges) {
      for (AttrId a : e.attrs()) ++occurrences[a];
    }
    for (size_t i = 0; i < edges.size(); ++i) {
      std::vector<AttrId> kept;
      for (AttrId a : edges[i].attrs()) {
        if (occurrences[a] == 1) {
          if (trace) {
            trace->push_back(
                {GyoStep::Kind::kRemoveEar, a, Schema{}, Schema{}});
          }
          changed = true;
        } else {
          kept.push_back(a);
        }
      }
      if (kept.size() != edges[i].arity()) edges[i] = Schema{kept};
    }
    // Drop edges that became empty.
    edges.erase(std::remove_if(edges.begin(), edges.end(),
                               [](const Schema& e) { return e.empty(); }),
                edges.end());
    // (2) Remove covered edges (including duplicates).
    for (size_t i = 0; i < edges.size(); ++i) {
      for (size_t j = 0; j < edges.size(); ++j) {
        if (i == j) continue;
        if (edges[i].IsSubsetOf(edges[j])) {
          if (trace) {
            trace->push_back(
                {GyoStep::Kind::kRemoveCoveredEdge, 0, edges[i], edges[j]});
          }
          edges.erase(edges.begin() + i);
          changed = true;
          --i;
          break;
        }
      }
    }
  }
  return edges.size() <= 1;
}

bool IsAcyclicByConformalChordal(const Hypergraph& h) {
  return IsConformal(h) && IsChordal(h);
}

bool JoinTree::Verify() const {
  size_t m = nodes.size();
  if (m == 0) return true;
  if (tree_edges.size() + 1 != m) return false;
  // Adjacency.
  std::vector<std::vector<size_t>> adj(m);
  for (const auto& [i, j] : tree_edges) {
    if (i >= m || j >= m || i == j) return false;
    adj[i].push_back(j);
    adj[j].push_back(i);
  }
  // Spanning: connected with m-1 edges => tree.
  std::vector<bool> seen(m, false);
  std::vector<size_t> stack = {0};
  seen[0] = true;
  size_t count = 1;
  while (!stack.empty()) {
    size_t v = stack.back();
    stack.pop_back();
    for (size_t u : adj[v]) {
      if (!seen[u]) {
        seen[u] = true;
        ++count;
        stack.push_back(u);
      }
    }
  }
  if (count != m) return false;
  // Subtree condition per vertex: the nodes containing v induce a connected
  // subgraph of the tree.
  Schema all = Schema::UnionAll(nodes);
  for (AttrId v : all.attrs()) {
    std::vector<size_t> holders;
    for (size_t i = 0; i < m; ++i) {
      if (nodes[i].Contains(v)) holders.push_back(i);
    }
    if (holders.empty()) continue;
    std::vector<bool> in_set(m, false);
    for (size_t i : holders) in_set[i] = true;
    std::vector<bool> visited(m, false);
    std::vector<size_t> st = {holders[0]};
    visited[holders[0]] = true;
    size_t reached = 1;
    while (!st.empty()) {
      size_t x = st.back();
      st.pop_back();
      for (size_t u : adj[x]) {
        if (in_set[u] && !visited[u]) {
          visited[u] = true;
          ++reached;
          st.push_back(u);
        }
      }
    }
    if (reached != holders.size()) return false;
  }
  return true;
}

Result<JoinTree> BuildJoinTree(const Hypergraph& h) {
  size_t m = h.num_edges();
  JoinTree jt;
  jt.nodes = h.edges();
  if (m <= 1) return jt;
  // Kruskal on the complete graph with weight |Xi ∩ Xj|, maximizing.
  struct Cand {
    size_t w;
    size_t i;
    size_t j;
  };
  std::vector<Cand> cands;
  cands.reserve(m * (m - 1) / 2);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      cands.push_back({Schema::Intersect(jt.nodes[i], jt.nodes[j]).arity(), i, j});
    }
  }
  std::stable_sort(cands.begin(), cands.end(),
                   [](const Cand& a, const Cand& b) { return a.w > b.w; });
  // Union-find.
  std::vector<size_t> parent(m);
  std::iota(parent.begin(), parent.end(), size_t{0});
  auto find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const Cand& c : cands) {
    size_t a = find(c.i), b = find(c.j);
    if (a == b) continue;
    parent[a] = b;
    jt.tree_edges.emplace_back(c.i, c.j);
    if (jt.tree_edges.size() == m - 1) break;
  }
  if (!jt.Verify()) {
    return Status::FailedPrecondition(
        "hypergraph is cyclic: maximum-weight spanning tree is not a join tree");
  }
  return jt;
}

Result<std::vector<size_t>> RunningIntersectionOrder(const Hypergraph& h) {
  BAGC_ASSIGN_OR_RETURN(JoinTree jt, BuildJoinTree(h));
  size_t m = jt.nodes.size();
  std::vector<size_t> order;
  if (m == 0) return order;
  std::vector<std::vector<size_t>> adj(m);
  for (const auto& [i, j] : jt.tree_edges) {
    adj[i].push_back(j);
    adj[j].push_back(i);
  }
  // BFS from the root (node 0): parents precede children, which gives the
  // running intersection property with j = parent.
  std::vector<bool> seen(m, false);
  std::vector<size_t> queue = {0};
  seen[0] = true;
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    size_t v = queue[qi];
    order.push_back(v);
    for (size_t u : adj[v]) {
      if (!seen[u]) {
        seen[u] = true;
        queue.push_back(u);
      }
    }
  }
  BAGC_CHECK(order.size() == m);
  return order;
}

bool VerifyRunningIntersection(const Hypergraph& h, const std::vector<size_t>& order) {
  const std::vector<Schema>& edges = h.edges();
  if (order.size() != edges.size()) return false;
  std::vector<bool> used(edges.size(), false);
  for (size_t idx : order) {
    if (idx >= edges.size() || used[idx]) return false;
    used[idx] = true;
  }
  Schema prefix_union;
  for (size_t i = 0; i < order.size(); ++i) {
    if (i > 0) {
      Schema shared = Schema::Intersect(edges[order[i]], prefix_union);
      bool ok = false;
      for (size_t j = 0; j < i; ++j) {
        if (shared.IsSubsetOf(edges[order[j]])) {
          ok = true;
          break;
        }
      }
      if (!ok) return false;
    }
    prefix_union = Schema::Union(prefix_union, edges[order[i]]);
  }
  return true;
}

}  // namespace bagc
