#include "hypergraph/conformality.h"

#include <algorithm>

namespace bagc {

bool IsConformal(const Hypergraph& h) {
  const std::vector<Schema>& edges = h.edges();
  size_t m = edges.size();
  // Gilmore: for all triples (with repetition allowed, though repeated
  // indices are trivially satisfied), the union of pairwise intersections
  // must be covered by an edge.
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      Schema ij = Schema::Intersect(edges[i], edges[j]);
      for (size_t k = j + 1; k < m; ++k) {
        Schema ik = Schema::Intersect(edges[i], edges[k]);
        Schema jk = Schema::Intersect(edges[j], edges[k]);
        Schema need = Schema::Union(Schema::Union(ij, ik), jk);
        bool covered = false;
        for (const Schema& e : edges) {
          if (need.IsSubsetOf(e)) {
            covered = true;
            break;
          }
        }
        if (!covered) return false;
      }
    }
  }
  return true;
}

namespace {

void BronKerbosch(const Graph& g, std::vector<size_t>& r, std::vector<size_t> p,
                  std::vector<size_t> x, std::vector<std::vector<size_t>>* out) {
  if (p.empty() && x.empty()) {
    std::vector<size_t> clique = r;
    std::sort(clique.begin(), clique.end());
    out->push_back(std::move(clique));
    return;
  }
  // Pivot: vertex of P ∪ X with most neighbors in P.
  size_t pivot = 0;
  size_t best = 0;
  bool have_pivot = false;
  for (const auto& pool : {p, x}) {
    for (size_t u : pool) {
      size_t cnt = 0;
      for (size_t v : p) {
        if (g.HasEdge(u, v)) ++cnt;
      }
      if (!have_pivot || cnt > best) {
        have_pivot = true;
        best = cnt;
        pivot = u;
      }
    }
  }
  std::vector<size_t> candidates;
  for (size_t v : p) {
    if (!have_pivot || !g.HasEdge(pivot, v)) candidates.push_back(v);
  }
  for (size_t v : candidates) {
    std::vector<size_t> p2, x2;
    for (size_t u : p) {
      if (g.HasEdge(v, u)) p2.push_back(u);
    }
    for (size_t u : x) {
      if (g.HasEdge(v, u)) x2.push_back(u);
    }
    r.push_back(v);
    BronKerbosch(g, r, std::move(p2), std::move(x2), out);
    r.pop_back();
    p.erase(std::find(p.begin(), p.end(), v));
    x.push_back(v);
  }
}

}  // namespace

std::vector<std::vector<size_t>> MaximalCliques(const Graph& g) {
  std::vector<std::vector<size_t>> out;
  std::vector<size_t> r, p, x;
  for (size_t v = 0; v < g.num_vertices(); ++v) p.push_back(v);
  BronKerbosch(g, r, std::move(p), std::move(x), &out);
  std::sort(out.begin(), out.end());
  return out;
}

bool IsConformalByCliques(const Hypergraph& h) {
  // Conformality concerns the primal graph over the covered vertices; a
  // vertex outside every hyperedge contributes no clique.
  Hypergraph hc = h.Induce(Schema::UnionAll(h.edges()));
  Graph g = hc.PrimalGraph();
  for (const auto& clique : MaximalCliques(g)) {
    std::vector<AttrId> attrs;
    attrs.reserve(clique.size());
    for (size_t idx : clique) attrs.push_back(hc.vertices().at(idx));
    Schema cs{attrs};
    bool covered = false;
    for (const Schema& e : hc.edges()) {
      if (cs.IsSubsetOf(e)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

}  // namespace bagc
