// Chordality testing (Rose–Tarjan–Lueker). A hypergraph is chordal when its
// primal graph is chordal, i.e. every cycle of length >= 4 has a chord
// (paper §4). We compute a Lex-BFS ordering and verify it is a perfect
// elimination ordering; for chordal graphs Lex-BFS always produces one.
#pragma once

#include <vector>

#include "hypergraph/hypergraph.h"

namespace bagc {

/// Lex-BFS ordering of the graph (visit order, front first).
std::vector<size_t> LexBfsOrder(const Graph& g);

/// True iff `order` reversed is a perfect elimination ordering of g.
bool IsPerfectEliminationOrder(const Graph& g, const std::vector<size_t>& order);

/// True iff g is chordal.
bool IsChordalGraph(const Graph& g);

/// True iff the primal graph of H is chordal.
bool IsChordal(const Hypergraph& h);

}  // namespace bagc
