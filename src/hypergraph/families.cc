#include "hypergraph/families.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace bagc {

Result<Hypergraph> MakePath(size_t n) {
  if (n < 2) return Status::InvalidArgument("Pn requires n >= 2");
  std::vector<Schema> edges;
  for (size_t i = 0; i + 1 < n; ++i) {
    edges.push_back(Schema{{static_cast<AttrId>(i), static_cast<AttrId>(i + 1)}});
  }
  return Hypergraph::FromEdges(std::move(edges));
}

Result<Hypergraph> MakeCycle(size_t n) {
  if (n < 3) return Status::InvalidArgument("Cn requires n >= 3");
  std::vector<Schema> edges;
  for (size_t i = 0; i < n; ++i) {
    edges.push_back(Schema{{static_cast<AttrId>(i), static_cast<AttrId>((i + 1) % n)}});
  }
  return Hypergraph::FromEdges(std::move(edges));
}

Result<Hypergraph> MakeHn(size_t n) {
  if (n < 3) return Status::InvalidArgument("Hn requires n >= 3");
  std::vector<AttrId> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = static_cast<AttrId>(i);
  std::vector<Schema> edges;
  for (size_t skip = 0; skip < n; ++skip) {
    std::vector<AttrId> edge;
    for (size_t i = 0; i < n; ++i) {
      if (i != skip) edge.push_back(all[i]);
    }
    edges.push_back(Schema{edge});
  }
  return Hypergraph::FromEdges(std::move(edges));
}

Result<Hypergraph> MakeStar(size_t leaves) {
  if (leaves == 0) return Status::InvalidArgument("star requires >= 1 leaf");
  std::vector<Schema> edges;
  for (size_t i = 0; i < leaves; ++i) {
    edges.push_back(Schema{{0, static_cast<AttrId>(i + 1)}});
  }
  return Hypergraph::FromEdges(std::move(edges));
}

Result<Hypergraph> MakeRandomAcyclic(size_t m, size_t max_arity, Rng* rng) {
  if (m == 0 || max_arity == 0) {
    return Status::InvalidArgument("need m >= 1 and max_arity >= 1");
  }
  AttrId next_attr = 0;
  std::vector<Schema> edges;
  for (size_t i = 0; i < m; ++i) {
    std::vector<AttrId> attrs;
    size_t arity = 1 + static_cast<size_t>(rng->Below(max_arity));
    if (i > 0) {
      // Inherit a random non-empty subset of a random earlier edge; this
      // makes the generation order a running-intersection listing.
      const Schema& parent = edges[rng->Below(i)];
      size_t take = 1 + static_cast<size_t>(rng->Below(
                            std::min(arity, parent.arity())));
      for (size_t idx : rng->Sample(parent.arity(), take)) {
        attrs.push_back(parent.at(idx));
      }
    }
    while (attrs.size() < arity) {
      attrs.push_back(next_attr++);
    }
    edges.push_back(Schema{attrs});
  }
  return Hypergraph::FromEdges(std::move(edges));
}

Result<Hypergraph> MakeCirculant(size_t n, size_t k) {
  if (k < 2 || n <= k) return Status::InvalidArgument("circulant needs n > k >= 2");
  std::vector<Schema> edges;
  edges.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<AttrId> attrs(k);
    for (size_t j = 0; j < k; ++j) attrs[j] = static_cast<AttrId>((i + j) % n);
    edges.push_back(Schema{attrs});
  }
  return Hypergraph::FromEdges(std::move(edges));
}

Result<Hypergraph> MakeRandomUniform(size_t n, size_t k, size_t m, Rng* rng) {
  if (k == 0 || k > n) return Status::InvalidArgument("need 1 <= k <= n");
  // The number of available k-subsets must be at least m; bail out early on
  // absurd requests rather than looping forever.
  double log_choose = 0;
  for (size_t i = 0; i < k; ++i) {
    log_choose += std::log2(static_cast<double>(n - i) / (i + 1));
  }
  if (log_choose < 60 && static_cast<double>(m) > std::exp2(log_choose)) {
    return Status::InvalidArgument("not enough distinct k-subsets for m edges");
  }
  std::set<Schema> edges;
  while (edges.size() < m) {
    std::vector<AttrId> attrs;
    for (size_t idx : rng->Sample(n, k)) attrs.push_back(static_cast<AttrId>(idx));
    edges.insert(Schema{attrs});
  }
  std::vector<AttrId> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = static_cast<AttrId>(i);
  return Hypergraph::Make(Schema{all},
                          std::vector<Schema>(edges.begin(), edges.end()));
}

}  // namespace bagc
