#include "hypergraph/hypergraph.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace bagc {

void Graph::AddEdge(size_t u, size_t v) {
  BAGC_DCHECK(u < n_ && v < n_ && u != v);
  if (!adj_[u * n_ + v]) {
    adj_[u * n_ + v] = true;
    adj_[v * n_ + u] = true;
    ++degree_[u];
    ++degree_[v];
  }
}

size_t Graph::num_edges() const {
  size_t total = std::accumulate(degree_.begin(), degree_.end(), size_t{0});
  return total / 2;
}

std::vector<size_t> Graph::Neighbors(size_t v) const {
  std::vector<size_t> out;
  out.reserve(degree_[v]);
  for (size_t u = 0; u < n_; ++u) {
    if (adj_[v * n_ + u]) out.push_back(u);
  }
  return out;
}

Graph Graph::InducedSubgraph(const std::vector<size_t>& keep) const {
  Graph out(keep.size());
  for (size_t i = 0; i < keep.size(); ++i) {
    for (size_t j = i + 1; j < keep.size(); ++j) {
      if (HasEdge(keep[i], keep[j])) out.AddEdge(i, j);
    }
  }
  return out;
}

bool Graph::IsConnected() const {
  if (n_ == 0) return true;
  std::vector<bool> seen(n_, false);
  std::vector<size_t> stack = {0};
  seen[0] = true;
  size_t count = 1;
  while (!stack.empty()) {
    size_t v = stack.back();
    stack.pop_back();
    for (size_t u : Neighbors(v)) {
      if (!seen[u]) {
        seen[u] = true;
        ++count;
        stack.push_back(u);
      }
    }
  }
  return count == n_;
}

namespace {

// Canonical edge order: sorted lexicographically, deduplicated.
void Canonicalize(std::vector<Schema>* edges) {
  std::sort(edges->begin(), edges->end());
  edges->erase(std::unique(edges->begin(), edges->end()), edges->end());
}

}  // namespace

Result<Hypergraph> Hypergraph::Make(Schema vertices, std::vector<Schema> edges) {
  for (const Schema& e : edges) {
    if (e.empty()) return Status::InvalidArgument("hyperedge must be non-empty");
    if (!e.IsSubsetOf(vertices)) {
      return Status::InvalidArgument("hyperedge mentions vertex outside V: " +
                                     e.ToString());
    }
  }
  Canonicalize(&edges);
  Hypergraph h;
  h.vertices_ = std::move(vertices);
  h.edges_ = std::move(edges);
  return h;
}

Result<Hypergraph> Hypergraph::FromEdges(std::vector<Schema> edges) {
  Schema vertices = Schema::UnionAll(edges);
  return Make(std::move(vertices), std::move(edges));
}

size_t Hypergraph::VertexDegree(AttrId a) const {
  size_t d = 0;
  for (const Schema& e : edges_) {
    if (e.Contains(a)) ++d;
  }
  return d;
}

Graph Hypergraph::PrimalGraph() const {
  Graph g(vertices_.arity());
  for (const Schema& e : edges_) {
    for (size_t i = 0; i < e.arity(); ++i) {
      for (size_t j = i + 1; j < e.arity(); ++j) {
        auto iu = vertices_.IndexOf(e.at(i));
        auto iv = vertices_.IndexOf(e.at(j));
        BAGC_DCHECK(iu.ok() && iv.ok());
        g.AddEdge(*iu, *iv);
      }
    }
  }
  return g;
}

Hypergraph Hypergraph::Reduction() const {
  std::vector<Schema> kept;
  for (const Schema& e : edges_) {
    bool covered = false;
    for (const Schema& f : edges_) {
      if (&e != &f && e.IsSubsetOf(f) && e != f) {
        covered = true;
        break;
      }
    }
    if (!covered) kept.push_back(e);
  }
  Hypergraph h;
  h.vertices_ = vertices_;
  h.edges_ = std::move(kept);
  return h;
}

bool Hypergraph::IsReduced() const { return Reduction().edges_.size() == edges_.size(); }

Hypergraph Hypergraph::Induce(const Schema& w) const {
  std::vector<Schema> edges;
  edges.reserve(edges_.size());
  for (const Schema& e : edges_) {
    Schema cut = Schema::Intersect(e, w);
    if (!cut.empty()) edges.push_back(std::move(cut));
  }
  Canonicalize(&edges);
  Hypergraph h;
  h.vertices_ = Schema::Intersect(vertices_, w);
  h.edges_ = std::move(edges);
  return h;
}

Hypergraph Hypergraph::DeleteVertex(AttrId a) const {
  return Induce(Schema::Difference(vertices_, Schema{{a}}));
}

Result<Hypergraph> Hypergraph::DeleteEdge(const Schema& e) const {
  auto it = std::find(edges_.begin(), edges_.end(), e);
  if (it == edges_.end()) {
    return Status::NotFound("edge not in hypergraph: " + e.ToString());
  }
  Hypergraph h;
  h.vertices_ = vertices_;
  h.edges_ = edges_;
  h.edges_.erase(h.edges_.begin() + (it - edges_.begin()));
  return h;
}

bool Hypergraph::EdgeIsCovered(const Schema& e) const {
  if (std::find(edges_.begin(), edges_.end(), e) == edges_.end()) return false;
  for (const Schema& f : edges_) {
    if (f != e && e.IsSubsetOf(f)) return true;
  }
  return false;
}

std::optional<size_t> Hypergraph::UniformityDegree() const {
  if (edges_.empty()) return std::nullopt;
  size_t k = edges_[0].arity();
  for (const Schema& e : edges_) {
    if (e.arity() != k) return std::nullopt;
  }
  return k;
}

std::optional<size_t> Hypergraph::RegularityDegree() const {
  if (vertices_.empty()) return std::nullopt;
  size_t d = VertexDegree(vertices_.at(0));
  for (size_t i = 1; i < vertices_.arity(); ++i) {
    if (VertexDegree(vertices_.at(i)) != d) return std::nullopt;
  }
  return d;
}

std::optional<std::vector<AttrId>> Hypergraph::MatchCycle() const {
  size_t n = num_vertices();
  if (n < 3 || num_edges() != n) return std::nullopt;
  for (const Schema& e : edges_) {
    if (e.arity() != 2) return std::nullopt;
  }
  Graph g = PrimalGraph();
  for (size_t v = 0; v < n; ++v) {
    if (g.Degree(v) != 2) return std::nullopt;
  }
  if (!g.IsConnected()) return std::nullopt;
  // With n distinct 2-edges on a connected 2-regular graph, H is the cycle.
  // Walk it to produce the cyclic vertex enumeration.
  std::vector<AttrId> order;
  order.reserve(n);
  size_t prev = n;  // sentinel
  size_t cur = 0;
  for (size_t step = 0; step < n; ++step) {
    order.push_back(vertices_.at(cur));
    std::vector<size_t> nbrs = g.Neighbors(cur);
    size_t next = (nbrs[0] == prev) ? nbrs[1] : nbrs[0];
    prev = cur;
    cur = next;
  }
  return order;
}

std::optional<std::vector<AttrId>> Hypergraph::MatchHn() const {
  size_t n = num_vertices();
  if (n < 3 || num_edges() != n) return std::nullopt;
  // Each edge must be V \ {A} for a distinct vertex A.
  std::vector<bool> seen(n, false);
  for (const Schema& e : edges_) {
    Schema missing = Schema::Difference(vertices_, e);
    if (missing.arity() != 1) return std::nullopt;
    auto idx = vertices_.IndexOf(missing.at(0));
    BAGC_DCHECK(idx.ok());
    if (seen[*idx]) return std::nullopt;
    seen[*idx] = true;
  }
  return vertices_.attrs();
}

std::string Hypergraph::ToString() const {
  std::string out = "H(V=" + vertices_.ToString() + ", E={";
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (i > 0) out += ", ";
    out += edges_[i].ToString();
  }
  out += "})";
  return out;
}

}  // namespace bagc
