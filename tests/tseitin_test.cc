// Tests for Theorem 2 Step 2: the Tseitin construction C(H*) on Cn and Hn
// is pairwise consistent but not globally consistent; Lemma 4 lifting
// preserves k-wise consistency; MakeCounterexample works on arbitrary
// cyclic hypergraphs.
#include <gtest/gtest.h>

#include "core/collection.h"
#include "core/global.h"
#include "core/lifting.h"
#include "core/local_global.h"
#include "core/pairwise.h"
#include "core/tseitin.h"
#include "hypergraph/acyclicity.h"
#include "hypergraph/families.h"
#include "util/random.h"

namespace bagc {
namespace {

TEST(TseitinTest, RequiresUniformRegular) {
  EXPECT_FALSE(MakeTseitinCollection(*MakePath(4)).ok());  // not regular
  Hypergraph single = *Hypergraph::FromEdges({Schema{{0, 1}}});
  EXPECT_FALSE(MakeTseitinCollection(single).ok());  // single edge (d = 1)
}

TEST(TseitinTest, SupportsAreCongruenceClasses) {
  Hypergraph c4 = *MakeCycle(4);
  std::vector<Bag> bags = *MakeTseitinCollection(c4);
  ASSERT_EQ(bags.size(), 4u);
  // d = 2, k = 2: each bag's support = pairs with even (resp. odd) sum.
  for (size_t i = 0; i < 4; ++i) {
    size_t target = (i + 1 == 4) ? 1 : 0;
    EXPECT_EQ(bags[i].SupportSize(), 2u);
    for (size_t e = 0; e < bags[i].SupportSize(); ++e) {
      Tuple t = bags[i].RowAt(e);
      EXPECT_EQ(bags[i].MultiplicityAt(e), 1u);
      uint64_t sum = 0;
      for (size_t s = 0; s < t.arity(); ++s) sum += static_cast<uint64_t>(t.at(s));
      EXPECT_EQ(sum % 2, target);
    }
  }
}

class TseitinCycleTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TseitinCycleTest, PairwiseConsistentButNotGlobal) {
  size_t n = GetParam();
  Hypergraph cn = *MakeCycle(n);
  BagCollection c = *BagCollection::Make(*MakeTseitinCollection(cn));
  EXPECT_TRUE(*ArePairwiseConsistent(c));
  auto witness = *SolveGlobalConsistencyExact(c);
  EXPECT_FALSE(witness.has_value()) << "C" << n;
}

INSTANTIATE_TEST_SUITE_P(CycleSweep, TseitinCycleTest,
                         ::testing::Values(3, 4, 5, 6, 7, 8));

class TseitinHnTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TseitinHnTest, PairwiseConsistentButNotGlobal) {
  size_t n = GetParam();
  Hypergraph hn = *MakeHn(n);
  BagCollection c = *BagCollection::Make(*MakeTseitinCollection(hn));
  EXPECT_TRUE(*ArePairwiseConsistent(c));
  auto witness = *SolveGlobalConsistencyExact(c);
  EXPECT_FALSE(witness.has_value()) << "H" << n;
}

INSTANTIATE_TEST_SUITE_P(HnSweep, TseitinHnTest, ::testing::Values(3, 4, 5));

class TseitinHierarchyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TseitinHierarchyTest, CycleTseitinIsExactlyNMinusOneWiseConsistent) {
  // Sharpening of Theorem 2 Step 2 on Cn: every proper subcollection of
  // the cycle's Tseitin bags lives on a sub-path (acyclic!), is pairwise
  // consistent, and hence globally consistent — so C(Cn) is (n-1)-wise
  // consistent; yet the full collection is not. The k-wise consistency
  // hierarchy is therefore strict at every level.
  size_t n = GetParam();
  Hypergraph cn = *MakeCycle(n);
  BagCollection c = *BagCollection::Make(*MakeTseitinCollection(cn));
  EXPECT_TRUE(*AreKWiseConsistent(c, n - 1)) << "C" << n;
  std::optional<std::vector<size_t>> failing;
  EXPECT_FALSE(*AreKWiseConsistent(c, n, &failing)) << "C" << n;
  ASSERT_TRUE(failing.has_value());
  EXPECT_EQ(failing->size(), n);  // only the full cycle fails
}

INSTANTIATE_TEST_SUITE_P(HierarchySweep, TseitinHierarchyTest,
                         ::testing::Values(3, 4, 5, 6));

TEST(TseitinTest, SharedMarginalsAreUniform) {
  // The pairwise-consistency proof: Ri[Z] is the constant bag with value
  // d^(k-|Z|-1) on {0..d-1}^Z.
  Hypergraph h5 = *MakeHn(5);  // k = d = 4
  std::vector<Bag> bags = *MakeTseitinCollection(h5);
  Schema z = Schema::Intersect(bags[0].schema(), bags[1].schema());
  Bag m0 = *bags[0].Marginal(z);
  Bag m1 = *bags[1].Marginal(z);
  EXPECT_EQ(m0, m1);
  uint64_t expected = TseitinMarginalMultiplicity(4, 4, z.arity());
  for (size_t e = 0; e < m0.SupportSize(); ++e) {
    EXPECT_EQ(m0.MultiplicityAt(e), expected);
  }
}

TEST(TseitinMarginalTest, FormulaMatches) {
  EXPECT_EQ(TseitinMarginalMultiplicity(2, 2, 1), 1u);
  EXPECT_EQ(TseitinMarginalMultiplicity(3, 4, 1), 9u);   // 3^(4-1-1)
  EXPECT_EQ(TseitinMarginalMultiplicity(4, 4, 3), 1u);   // 4^0
  EXPECT_EQ(TseitinMarginalMultiplicity(5, 6, 0), 3125u);  // 5^5
}

// ---- Lemma 4 lifting ----

TEST(LiftingTest, PlanOnIdentityIsEmpty) {
  Hypergraph c4 = *MakeCycle(4);
  LiftPlan plan = *PlanLiftToInduced(c4.edges(), c4.vertices());
  EXPECT_TRUE(plan.ops.empty());
  EXPECT_EQ(plan.final_edges, c4.edges());
}

TEST(LiftingTest, VertexDeletionRoundTrip) {
  // H1 = triangle plus pendant vertex 3 on edge {2,3}; delete 3.
  std::vector<Schema> edges = {Schema{{0, 1}}, Schema{{1, 2}}, Schema{{0, 2}},
                               Schema{{2, 3}}};
  LiftPlan plan = *PlanLiftToInduced(edges, Schema{{0, 1, 2}});
  // After deleting vertex 3, edge {2,3} becomes {2} ⊆ {1,2}: covered.
  ASSERT_EQ(plan.final_edges.size(), 3u);
  // Lift the C3 Tseitin counterexample.
  Hypergraph c3 = *MakeCycle(3);
  std::vector<Bag> tseitin = *MakeTseitinCollection(c3);
  // Align bags with plan.final_edges.
  std::vector<Bag> d0;
  for (const Schema& e : plan.final_edges) {
    for (const Bag& b : tseitin) {
      if (b.schema() == e) d0.push_back(b);
    }
  }
  ASSERT_EQ(d0.size(), 3u);
  std::vector<Bag> lifted = *LiftCollection(plan, d0);
  ASSERT_EQ(lifted.size(), 4u);
  EXPECT_EQ(lifted[3].schema(), Schema({2, 3}));
  // Lemma 4: pairwise consistency preserved, global inconsistency preserved.
  BagCollection c = *BagCollection::Make(lifted);
  EXPECT_TRUE(*ArePairwiseConsistent(c));
  EXPECT_FALSE(SolveGlobalConsistencyExact(c)->has_value());
}

TEST(LiftingTest, LiftedBagsConcentrateOnDefaultValue) {
  std::vector<Schema> edges = {Schema{{0, 1}}, Schema{{1, 2}}, Schema{{0, 2}},
                               Schema{{2, 3}}};
  LiftPlan plan = *PlanLiftToInduced(edges, Schema{{0, 1, 2}});
  Hypergraph c3 = *MakeCycle(3);
  std::vector<Bag> tseitin = *MakeTseitinCollection(c3);
  std::vector<Bag> d0;
  for (const Schema& e : plan.final_edges) {
    for (const Bag& b : tseitin) {
      if (b.schema() == e) d0.push_back(b);
    }
  }
  std::vector<Bag> lifted = *LiftCollection(plan, d0);
  // The bag over {2,3} must put the deleted attribute 3 at u0 = 0.
  const Bag& pendant = lifted[3];
  Schema s23{{2, 3}};
  for (size_t e = 0; e < pendant.SupportSize(); ++e) {
    EXPECT_EQ(*pendant.RowAt(e).ValueOf(s23, 3), 0);
  }
}

TEST(LiftingTest, ValidatesAlignment) {
  std::vector<Schema> edges = {Schema{{0, 1}}, Schema{{1, 2}}, Schema{{0, 2}}};
  LiftPlan plan = *PlanLiftToInduced(edges, Schema{{0, 1, 2}});
  // Wrong number of bags.
  EXPECT_FALSE(LiftCollection(plan, {}).ok());
  // Wrong schema order.
  Bag wrong(Schema{{5, 6}});
  EXPECT_FALSE(LiftCollection(plan, {wrong, wrong, wrong}).ok());
}

TEST(LiftingTest, KWiseEquivalenceOnLiftedCollections) {
  // Lemma 4 full statement: D0 k-wise consistent iff D1 k-wise consistent.
  // Use a C4 inside a larger hypergraph; check k = 2 and k = 3 both ways.
  std::vector<Schema> edges = {Schema{{0, 1}}, Schema{{1, 2}}, Schema{{2, 3}},
                               Schema{{3, 0}}, Schema{{1, 4}}};
  LiftPlan plan = *PlanLiftToInduced(edges, Schema{{0, 1, 2, 3}});
  Hypergraph c4 = *MakeCycle(4);
  std::vector<Bag> tseitin = *MakeTseitinCollection(c4);
  std::vector<Bag> d0;
  for (const Schema& e : plan.final_edges) {
    for (const Bag& b : tseitin) {
      if (b.schema() == e) d0.push_back(b);
    }
  }
  ASSERT_EQ(d0.size(), 4u);
  std::vector<Bag> lifted = *LiftCollection(plan, d0);
  BagCollection dc0 = *BagCollection::Make(d0);
  BagCollection dc1 = *BagCollection::Make(lifted);
  EXPECT_EQ(*AreKWiseConsistent(dc0, 2), *AreKWiseConsistent(dc1, 2));
  EXPECT_EQ(*AreKWiseConsistent(dc0, 3), *AreKWiseConsistent(dc1, 3));
  EXPECT_EQ(*IsGloballyConsistent(dc0), *IsGloballyConsistent(dc1));
}

// ---- MakeCounterexample: the Theorem 2 Step 2 showpiece ----

TEST(CounterexampleTest, FailsOnAcyclic) {
  auto result = MakeCounterexample(*MakePath(4));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CounterexampleTest, WorksOnNamedFamilies) {
  for (size_t n = 3; n <= 6; ++n) {
    BagCollection c = *MakeCounterexample(*MakeCycle(n));
    EXPECT_TRUE(*ArePairwiseConsistent(c)) << "C" << n;
    EXPECT_FALSE(SolveGlobalConsistencyExact(c)->has_value()) << "C" << n;
  }
  for (size_t n = 3; n <= 5; ++n) {
    BagCollection c = *MakeCounterexample(*MakeHn(n));
    EXPECT_TRUE(*ArePairwiseConsistent(c)) << "H" << n;
    EXPECT_FALSE(SolveGlobalConsistencyExact(c)->has_value()) << "H" << n;
  }
}

TEST(CounterexampleTest, WorksOnRandomCyclicHypergraphs) {
  Rng rng(77);
  int found = 0;
  for (int trial = 0; trial < 60 && found < 12; ++trial) {
    size_t n = 4 + rng.Below(3);
    size_t k = 2 + rng.Below(2);
    size_t m = 3 + rng.Below(4);
    auto h = MakeRandomUniform(n, k, m, &rng);
    if (!h.ok() || IsAcyclic(*h)) continue;
    ++found;
    BagCollection c = *MakeCounterexample(*h);
    // The collection lives over (a sub-multiset matching) H's edges.
    EXPECT_EQ(c.size(), h->num_edges());
    for (size_t i = 0; i < c.size(); ++i) {
      EXPECT_EQ(c.bag(i).schema(), h->edges()[i]);
    }
    EXPECT_TRUE(*ArePairwiseConsistent(c)) << h->ToString();
    EXPECT_FALSE(SolveGlobalConsistencyExact(c)->has_value()) << h->ToString();
  }
  EXPECT_GE(found, 6);
}

}  // namespace
}  // namespace bagc
