// Tests for the text serialization of bags and collections.
#include <gtest/gtest.h>

#include "bag/bag_io.h"
#include "generators/workloads.h"
#include "util/random.h"

namespace bagc {
namespace {

TEST(BagIoTest, RoundTripSingleBag) {
  AttributeCatalog catalog;
  AttrId a = catalog.Intern("A");
  AttrId b = catalog.Intern("B");
  Bag bag = *MakeBag(Schema{{a, b}}, {{{1, 2}, 3}, {{-4, 5}, 1}});
  std::string text = WriteBag(bag, catalog);
  AttributeCatalog catalog2;
  auto bags = *ParseCollection(text, &catalog2);
  ASSERT_EQ(bags.size(), 1u);
  EXPECT_EQ(bags[0].SupportSize(), 2u);
  EXPECT_EQ(bags[0].Multiplicity(Tuple{{1, 2}}), 3u);
  EXPECT_EQ(bags[0].Multiplicity(Tuple{{-4, 5}}), 1u);
}

TEST(BagIoTest, RoundTripCollectionPreservesSharedAttributes) {
  AttributeCatalog catalog;
  AttrId a = catalog.Intern("A");
  AttrId b = catalog.Intern("B");
  AttrId c = catalog.Intern("C");
  Bag r = *MakeBag(Schema{{a, b}}, {{{1, 2}, 1}});
  Bag s = *MakeBag(Schema{{b, c}}, {{{2, 9}, 4}});
  std::string text = WriteCollection({r, s}, catalog);
  AttributeCatalog catalog2;
  auto bags = *ParseCollection(text, &catalog2);
  ASSERT_EQ(bags.size(), 2u);
  // The shared attribute B must map to the same id in both schemas.
  Schema shared = Schema::Intersect(bags[0].schema(), bags[1].schema());
  EXPECT_EQ(shared.arity(), 1u);
  EXPECT_EQ(catalog2.Name(shared.at(0)), "B");
}

TEST(BagIoTest, CommentsAndBlankLinesIgnored) {
  const char* text =
      "# a comment\n"
      "\n"
      "bag X Y   # header comment\n"
      "1 2 : 3\n"
      "\n"
      "# interior comment\n"
      "4 5 : 6\n"
      "end\n";
  AttributeCatalog catalog;
  auto bags = *ParseCollection(text, &catalog);
  ASSERT_EQ(bags.size(), 1u);
  EXPECT_EQ(bags[0].SupportSize(), 2u);
}

TEST(BagIoTest, HeaderOrderDoesNotHaveToBeSorted) {
  // Attributes "Z" then "A": interned ids 0, 1 — but the schema layout
  // sorts by id, so column order must be remapped correctly.
  const char* text =
      "bag Z A\n"
      "7 8 : 2\n"
      "end\n";
  AttributeCatalog catalog;
  auto bags = *ParseCollection(text, &catalog);
  ASSERT_EQ(bags.size(), 1u);
  const Bag& bag = bags[0];
  AttrId z = *catalog.Lookup("Z");
  AttrId a = *catalog.Lookup("A");
  for (const auto& [t, mult] : bag.entries()) {
    EXPECT_EQ(mult, 2u);
    EXPECT_EQ(*t.ValueOf(bag.schema(), z), 7);
    EXPECT_EQ(*t.ValueOf(bag.schema(), a), 8);
  }
}

TEST(BagIoTest, ParseErrors) {
  AttributeCatalog catalog;
  EXPECT_FALSE(ParseCollection("", &catalog).ok());
  EXPECT_FALSE(ParseCollection("bag A\n1 : 2\n", &catalog).ok());  // no end
  EXPECT_FALSE(ParseCollection("notabag A\nend\n", &catalog).ok());
  EXPECT_FALSE(ParseCollection("bag A\nx : 2\nend\n", &catalog).ok());  // bad int
  EXPECT_FALSE(ParseCollection("bag A\n1 : -2\nend\n", &catalog).ok());  // neg mult
  EXPECT_FALSE(ParseCollection("bag A\n1 2 : 2\nend\n", &catalog).ok());  // arity
  EXPECT_FALSE(
      ParseCollection("bag A\n1 : 1\n1 : 2\nend\n", &catalog).ok());  // dup tuple
  EXPECT_FALSE(ParseCollection("bag A A\n1 1 : 1\nend\n", &catalog).ok());  // dup attr
}

TEST(BagIoTest, ZeroMultiplicityTuplesDropFromSupport) {
  AttributeCatalog catalog;
  auto bags = *ParseCollection("bag A\n1 : 0\n2 : 5\nend\n", &catalog);
  EXPECT_EQ(bags[0].SupportSize(), 1u);
}

TEST(BagIoTest, GarbageInputNeverCrashes) {
  // Robustness sweep: random byte soup must come back as a Status, never
  // crash or hang.
  Rng rng(405);
  const char alphabet[] = "bag end\n:0123456789-AZ #\t";
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    size_t len = rng.Below(120);
    for (size_t i = 0; i < len; ++i) {
      garbage += alphabet[rng.Below(sizeof(alphabet) - 1)];
    }
    AttributeCatalog catalog;
    auto result = ParseCollection(garbage, &catalog);
    // Either parses (the soup accidentally formed a document) or errors.
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST(BagIoTest, RandomRoundTrips) {
  Rng rng(404);
  BagGenOptions options;
  options.support_size = 20;
  options.domain_size = 6;
  options.max_multiplicity = 1u << 30;
  AttributeCatalog catalog;
  catalog.Intern("A");
  catalog.Intern("B");
  catalog.Intern("C");
  for (int trial = 0; trial < 20; ++trial) {
    Bag bag = *MakeRandomBag(Schema{{0, 1, 2}}, options, &rng);
    AttributeCatalog catalog2;
    auto bags = *ParseCollection(WriteBag(bag, catalog), &catalog2);
    ASSERT_EQ(bags.size(), 1u);
    EXPECT_EQ(bags[0].entries(), bag.entries());
  }
}

}  // namespace
}  // namespace bagc
