// Unit tests for the util substrate: Status/Result, checked arithmetic,
// rationals, hashing, PRNG.
#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "util/checked_math.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/rational.h"
#include "util/result.h"
#include "util/status.h"

namespace bagc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad input");
}

TEST(StatusTest, CopyAndMoveSemantics) {
  Status a = Status::NotFound("x");
  Status b = a;  // copy
  EXPECT_EQ(a, b);
  Status c = std::move(a);
  EXPECT_EQ(c.code(), StatusCode::kNotFound);
  EXPECT_TRUE(a.ok());  // moved-from is OK (empty rep)
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(),   Status::OutOfRange("").code(),
      Status::NotFound("").code(),          Status::AlreadyExists("").code(),
      Status::FailedPrecondition("").code(),
      Status::ArithmeticOverflow("").code(), Status::ResourceExhausted("").code(),
      Status::Internal("").code(),          Status::NotImplemented("").code()};
  EXPECT_EQ(codes.size(), 9u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  BAGC_ASSIGN_OR_RETURN(int half, HalveEven(x));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  Result<int> ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> bad = QuarterEven(6);  // 6 -> 3 (odd) fails at second step
  EXPECT_FALSE(bad.ok());
}

TEST(CheckedMathTest, AddDetectsOverflow) {
  constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
  EXPECT_EQ(*CheckedAdd(2, 3), 5u);
  EXPECT_FALSE(CheckedAdd(kMax, 1).ok());
  EXPECT_EQ(*CheckedAdd(kMax, 0), kMax);
}

TEST(CheckedMathTest, MulDetectsOverflow) {
  constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
  EXPECT_EQ(*CheckedMul(6, 7), 42u);
  EXPECT_FALSE(CheckedMul(kMax, 2).ok());
  EXPECT_EQ(*CheckedMul(kMax, 1), kMax);
  EXPECT_EQ(*CheckedMul(kMax, 0), 0u);
}

TEST(CheckedMathTest, SubDetectsUnderflow) {
  EXPECT_EQ(*CheckedSub(5, 3), 2u);
  EXPECT_FALSE(CheckedSub(3, 5).ok());
}

TEST(CheckedMathTest, SaturatingVariantsClamp) {
  constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
  EXPECT_EQ(SaturatingAdd(kMax, 5), kMax);
  EXPECT_EQ(SaturatingMul(kMax, 3), kMax);
  EXPECT_EQ(SaturatingAdd(1, 2), 3u);
}

TEST(CheckedMathTest, BitLength) {
  EXPECT_EQ(BitLength(0), 0u);
  EXPECT_EQ(BitLength(1), 1u);
  EXPECT_EQ(BitLength(2), 2u);
  EXPECT_EQ(BitLength(255), 8u);
  EXPECT_EQ(BitLength(256), 9u);
  EXPECT_EQ(BitLength(std::numeric_limits<uint64_t>::max()), 64u);
}

TEST(RationalTest, CanonicalForm) {
  Rational r = *Rational::Make(6, -4);
  EXPECT_EQ(r.numerator(), -3);
  EXPECT_EQ(r.denominator(), 2);
  Rational zero = *Rational::Make(0, 7);
  EXPECT_EQ(zero.numerator(), 0);
  EXPECT_EQ(zero.denominator(), 1);
  EXPECT_FALSE(Rational::Make(1, 0).ok());
}

TEST(RationalTest, Arithmetic) {
  Rational half = *Rational::Make(1, 2);
  Rational third = *Rational::Make(1, 3);
  EXPECT_EQ(*Rational::Add(half, third), *Rational::Make(5, 6));
  EXPECT_EQ(*Rational::Sub(half, third), *Rational::Make(1, 6));
  EXPECT_EQ(*Rational::Mul(half, third), *Rational::Make(1, 6));
  EXPECT_EQ(*Rational::Div(half, third), *Rational::Make(3, 2));
  EXPECT_FALSE(Rational::Div(half, Rational(0)).ok());
}

TEST(RationalTest, ComparisonIsExact) {
  // 1/3 < 33333333333/100000000000 would be wrong; compare exactly.
  Rational a = *Rational::Make(1, 3);
  Rational b = *Rational::Make(33333333333LL, 100000000000LL);
  EXPECT_GT(a, b);
  EXPECT_LT(b, a);
  EXPECT_EQ(Rational::Compare(a, a), 0);
}

TEST(RationalTest, OverflowIsReported) {
  Rational big = *Rational::Make(std::numeric_limits<int64_t>::max(), 1);
  EXPECT_FALSE(Rational::Mul(big, big).ok());
  EXPECT_FALSE(Rational::Add(big, big).ok());
}

TEST(RationalTest, ToString) {
  EXPECT_EQ(Rational::Make(3, 6)->ToString(), "1/2");
  EXPECT_EQ(Rational(7).ToString(), "7");
}

TEST(HashTest, MixDecorrelates) {
  EXPECT_NE(Mix64(1), Mix64(2));
  EXPECT_NE(HashRange<int>({1, 2}), HashRange<int>({2, 1}));
  EXPECT_EQ(HashRange<int>({1, 2, 3}), HashRange<int>({1, 2, 3}));
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.Range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, SampleProducesDistinctIndices) {
  Rng rng(99);
  auto sample = rng.Sample(10, 4);
  EXPECT_EQ(sample.size(), 4u);
  std::set<size_t> s(sample.begin(), sample.end());
  EXPECT_EQ(s.size(), 4u);
  for (size_t idx : sample) EXPECT_LT(idx, 10u);
}

TEST(RngTest, SampleFullRangeIsPermutation) {
  Rng rng(5);
  auto sample = rng.Sample(6, 6);
  std::set<size_t> s(sample.begin(), sample.end());
  EXPECT_EQ(s.size(), 6u);
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(11);
  std::vector<int> v = {1, 2, 3, 4, 5};
  auto orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace bagc
