// Fault-injection differential for the delta WAL (src/tuple/wal.h) and
// the registry's crash recovery. A randomized multi-bag commit history
// is journaled, then the log is damaged every way a crash or bit rot
// can damage it — truncated at EVERY byte offset, every bit of the
// tail record flipped, interior records corrupted — and the recovered
// state must follow the torn-vs-corrupt contract exactly: torn tails
// are dropped to the last intact record boundary (recovery then
// answers bit-identically to an oracle that committed that prefix),
// while a damaged committed generation with intact records after it is
// refused outright, never silently skipped. Runs under the ASan/UBSan
// matrix leg via the `differential` label.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bag/bag_io.h"
#include "server/collection_registry.h"
#include "server/session.h"
#include "tuple/segment.h"
#include "tuple/wal.h"

namespace bagc {
namespace {

// ---------------------------------------------------------------------------
// Raw-byte helpers: the test re-implements the framing primitives so a
// codec bug cannot hide by corrupting writer and checker identically.

uint64_t Fnv1a(const char* data, size_t n) {
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::string WalHeaderBytes() {
  std::string h(kWalMagic);
  AppendU32(&h, kWalVersion);
  AppendU32(&h, kWalHeaderBytes);
  return h;
}

// Frames an arbitrary payload with a CORRECT checksum — the road to
// checksum-valid grammar violations EncodeWalRecord refuses to emit.
std::string FrameRaw(const std::string& payload) {
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(payload.size()));
  AppendU64(&out, Fnv1a(payload.data(), payload.size()));
  out += payload;
  return out;
}

// Deterministic splitmix64: the history must replay identically on
// every platform the differential matrix runs.
uint64_t NextRand(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Random but self-consistent record history: strictly increasing
// generations, one shared fingerprint, 1-2 bag blocks of 1-3 rows.
std::vector<WalRecord> RandomHistory(size_t n, uint64_t seed) {
  uint64_t state = seed;
  std::vector<WalRecord> history;
  uint64_t generation = 0;
  for (size_t i = 0; i < n; ++i) {
    WalRecord record;
    generation += 1 + NextRand(&state) % 3;
    record.generation = generation;
    record.base_fingerprint = 0xfeedfacecafef00dull;
    size_t bags = 1 + NextRand(&state) % 2;
    for (size_t b = 0; b < bags; ++b) {
      WalBagBlock block;
      block.bag_index = static_cast<uint32_t>(NextRand(&state) % 4);
      block.arity = 1 + static_cast<uint32_t>(NextRand(&state) % 3);
      size_t rows = 1 + NextRand(&state) % 3;
      for (size_t r = 0; r < rows; ++r) {
        for (uint32_t a = 0; a < block.arity; ++a) {
          block.ids.push_back(static_cast<uint32_t>(NextRand(&state) % 64));
        }
        int64_t delta = 1 + static_cast<int64_t>(NextRand(&state) % 5);
        block.deltas.push_back((NextRand(&state) % 2) ? delta : -delta);
      }
      record.bags.push_back(std::move(block));
    }
    history.push_back(std::move(record));
  }
  return history;
}

// Encodes a history into a full file image and returns the byte offset
// of each record's END (so boundaries[k] is the valid_bytes of a log
// holding exactly k+1 records).
std::string EncodeImage(const std::vector<WalRecord>& history,
                        std::vector<size_t>* boundaries) {
  std::string image = WalHeaderBytes();
  for (const WalRecord& record : history) {
    Result<std::string> encoded = EncodeWalRecord(record);
    EXPECT_TRUE(encoded.ok()) << encoded.status().ToString();
    image += *encoded;
    if (boundaries != nullptr) boundaries->push_back(image.size());
  }
  return image;
}

void ExpectRecordsEqual(const std::vector<WalRecord>& got,
                        const std::vector<WalRecord>& want, size_t want_n) {
  ASSERT_EQ(got.size(), want_n);
  for (size_t i = 0; i < want_n; ++i) {
    EXPECT_EQ(got[i].generation, want[i].generation) << "record " << i;
    EXPECT_EQ(got[i].base_fingerprint, want[i].base_fingerprint);
    ASSERT_EQ(got[i].bags.size(), want[i].bags.size()) << "record " << i;
    for (size_t b = 0; b < want[i].bags.size(); ++b) {
      EXPECT_EQ(got[i].bags[b].bag_index, want[i].bags[b].bag_index);
      EXPECT_EQ(got[i].bags[b].arity, want[i].bags[b].arity);
      EXPECT_EQ(got[i].bags[b].ids, want[i].bags[b].ids);
      EXPECT_EQ(got[i].bags[b].deltas, want[i].bags[b].deltas);
    }
  }
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// ---------------------------------------------------------------------------
// Format-level fault injection.

TEST(WalFormatTest, EncodeParseRoundTripsRandomHistory) {
  std::vector<WalRecord> history = RandomHistory(8, 0x5eed0001);
  std::string image = EncodeImage(history, nullptr);
  Result<WalContents> parsed = ParseWal(image);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectRecordsEqual(parsed->records, history, history.size());
  EXPECT_EQ(parsed->valid_bytes, image.size());
  EXPECT_EQ(parsed->dropped_bytes, 0u);
}

TEST(WalFormatTest, EveryTruncationPointRecoversTheLongestIntactPrefix) {
  std::vector<WalRecord> history = RandomHistory(6, 0x5eed0002);
  std::vector<size_t> boundaries;
  std::string image = EncodeImage(history, &boundaries);

  for (size_t cut = 0; cut <= image.size(); ++cut) {
    Result<WalContents> parsed = ParseWal(std::string_view(image).substr(0, cut));
    ASSERT_TRUE(parsed.ok())
        << "cut at byte " << cut << ": " << parsed.status().ToString();
    // The survivors are exactly the records whose last byte fits.
    size_t want = 0;
    while (want < boundaries.size() && boundaries[want] <= cut) ++want;
    ExpectRecordsEqual(parsed->records, history, want);
    size_t want_valid = (cut < kWalHeaderBytes)
                            ? 0
                            : (want == 0 ? kWalHeaderBytes : boundaries[want - 1]);
    EXPECT_EQ(parsed->valid_bytes, want_valid) << "cut at byte " << cut;
    EXPECT_EQ(parsed->dropped_bytes, cut - want_valid) << "cut at byte " << cut;
  }
}

TEST(WalFormatTest, EveryTailRecordBitFlipDropsExactlyTheTornTail) {
  std::vector<WalRecord> history = RandomHistory(4, 0x5eed0003);
  std::vector<size_t> boundaries;
  std::string image = EncodeImage(history, &boundaries);
  size_t tail_start = boundaries[boundaries.size() - 2];

  for (size_t byte = tail_start; byte < image.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = image;
      damaged[byte] = static_cast<char>(damaged[byte] ^ (1 << bit));
      Result<WalContents> parsed = ParseWal(damaged);
      // Whatever the flip hit — length, checksum, payload — the tail
      // record is a torn append: dropped whole, never refused, and
      // never partially applied.
      ASSERT_TRUE(parsed.ok()) << "bit " << bit << " of byte " << byte << ": "
                               << parsed.status().ToString();
      ExpectRecordsEqual(parsed->records, history, history.size() - 1);
      EXPECT_EQ(parsed->valid_bytes, tail_start);
      EXPECT_EQ(parsed->dropped_bytes, image.size() - tail_start);
    }
  }
}

TEST(WalFormatTest, InteriorRecordCorruptionIsRefusedNotSkipped) {
  std::vector<WalRecord> history = RandomHistory(4, 0x5eed0004);
  std::vector<size_t> boundaries;
  std::string image = EncodeImage(history, &boundaries);
  // Second record's frame: [len u32][checksum u64][payload]. EVERY
  // byte of a non-tail record is covered, the length field included:
  // a flipped length misaligns any single probe at the record's
  // claimed end (and can even claim past EOF), but the successor scan
  // still finds the intact records after the damage and must refuse —
  // committed generations are never silently reclassified as tail
  // debris.
  size_t start = boundaries[0];
  size_t payload_start = start + kWalRecordFrameBytes;
  for (size_t byte = start; byte < boundaries[1]; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = image;
      damaged[byte] = static_cast<char>(damaged[byte] ^ (1 << bit));
      Result<WalContents> parsed = ParseWal(damaged);
      ASSERT_FALSE(parsed.ok())
          << "flip in "
          << (byte < start + 4 ? "length"
                               : byte < payload_start ? "checksum" : "payload")
          << " byte " << byte << " bit " << bit << " was swallowed";
    }
  }
}

TEST(WalFormatTest, ChecksumValidGrammarViolationsAreRefused) {
  const uint64_t fp = 0xfeedfacecafef00dull;
  auto payload_prefix = [&](uint64_t generation, uint32_t bag_count) {
    std::string p;
    AppendU64(&p, generation);
    AppendU64(&p, fp);
    AppendU32(&p, bag_count);
    return p;
  };
  auto one_row_block = [&](std::string* p) {
    AppendU32(p, 0);  // bag index
    AppendU32(p, 1);  // arity
    AppendU32(p, 1);  // rows
    AppendU32(p, 7);  // id
    AppendU64(p, 1);  // delta +1
  };
  std::string good = payload_prefix(1, 1);
  one_row_block(&good);

  struct Case {
    const char* what;
    std::string image;
  };
  std::vector<Case> cases;
  {  // zero bag blocks
    cases.push_back({"zero bags", WalHeaderBytes() + FrameRaw(payload_prefix(1, 0))});
  }
  {  // a block claiming zero rows
    std::string p = payload_prefix(1, 1);
    AppendU32(&p, 0);
    AppendU32(&p, 1);
    AppendU32(&p, 0);
    cases.push_back({"zero rows", WalHeaderBytes() + FrameRaw(p)});
  }
  {  // a block claiming arity zero
    std::string p = payload_prefix(1, 1);
    AppendU32(&p, 0);
    AppendU32(&p, 0);
    AppendU32(&p, 1);
    cases.push_back({"arity zero", WalHeaderBytes() + FrameRaw(p)});
  }
  {  // trailing garbage after the last block
    std::string p = good;
    p += "\x01";
    cases.push_back({"trailing bytes", WalHeaderBytes() + FrameRaw(p)});
  }
  {  // payload shorter than its own fixed header
    cases.push_back({"short payload", WalHeaderBytes() + FrameRaw("tiny")});
  }
  {  // generation does not increase
    std::string repeat = payload_prefix(1, 1);
    one_row_block(&repeat);
    cases.push_back({"stuck generation",
                     WalHeaderBytes() + FrameRaw(good) + FrameRaw(repeat)});
  }
  {  // second record swaps fingerprints mid-log
    std::string other;
    AppendU64(&other, 2);
    AppendU64(&other, fp + 1);
    AppendU32(&other, 1);
    one_row_block(&other);
    cases.push_back({"fingerprint swap",
                     WalHeaderBytes() + FrameRaw(good) + FrameRaw(other)});
  }
  for (const Case& c : cases) {
    Result<WalContents> parsed = ParseWal(c.image);
    EXPECT_FALSE(parsed.ok()) << c.what << " was accepted";
  }
  // Control: the good record alone parses.
  Result<WalContents> control = ParseWal(WalHeaderBytes() + FrameRaw(good));
  ASSERT_TRUE(control.ok()) << control.status().ToString();
  EXPECT_EQ(control->records.size(), 1u);
}

TEST(WalFormatTest, ForeignAndVersionedHeadersAreRefused) {
  std::string foreign = "NOTAWAL\n";
  foreign.resize(32, '\0');
  EXPECT_FALSE(ParseWal(foreign).ok());
  std::string wrong_version(kWalMagic);
  AppendU32(&wrong_version, kWalVersion + 1);
  AppendU32(&wrong_version, kWalHeaderBytes);
  EXPECT_FALSE(ParseWal(wrong_version).ok());
  // An empty image and a bare header are both valid empty logs (a
  // crash can land between create, header write, and first append).
  EXPECT_TRUE(ParseWal("").ok());
  EXPECT_TRUE(ParseWal(WalHeaderBytes()).ok());
}

TEST(WalWriterTest, OpenTruncatesTornTailAtomicallyAndResumesAppending) {
  std::vector<WalRecord> history = RandomHistory(3, 0x5eed0005);
  std::vector<size_t> boundaries;
  std::string image = EncodeImage(history, &boundaries);
  // Tear the final record: keep its frame but cut the payload short.
  std::string torn = image.substr(0, boundaries[1] + kWalRecordFrameBytes + 3);
  std::string path = testing::TempDir() + "wal_writer_torn.wal";
  WriteFileBytes(path, torn);

  Result<WalWriter> writer = WalWriter::Open(path);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  EXPECT_EQ(writer->records(), 2u);
  EXPECT_EQ(writer->last_generation(), history[1].generation);
  EXPECT_EQ(writer->base_fingerprint(), history[1].base_fingerprint);
  struct stat st{};
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  EXPECT_EQ(static_cast<size_t>(st.st_size), boundaries[1])
      << "torn tail must be truncated off before the next append";

  // The writer resumes exactly where the intact log ended.
  ASSERT_TRUE(writer->Append(history[2]).ok());
  EXPECT_EQ(writer->records(), 3u);
  Result<WalContents> reread = ReadWalFile(path);
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  ExpectRecordsEqual(reread->records, history, 3);
  EXPECT_EQ(reread->dropped_bytes, 0u);

  // Re-appending a generation that does not advance is refused.
  EXPECT_FALSE(writer->Append(history[2]).ok());
}

TEST(WalWriterTest, OpenRefusesMidFileCorruption) {
  std::vector<WalRecord> history = RandomHistory(3, 0x5eed0006);
  std::vector<size_t> boundaries;
  std::string image = EncodeImage(history, &boundaries);
  image[boundaries[0] + kWalRecordFrameBytes] ^= 0x40;  // first record payload
  std::string path = testing::TempDir() + "wal_writer_corrupt.wal";
  WriteFileBytes(path, image);
  EXPECT_FALSE(WalWriter::Open(path).ok());
}

TEST(WalFormatTest, EncoderRefusesEmptyBatchesAndBlocks) {
  WalRecord empty;
  empty.generation = 1;
  EXPECT_FALSE(EncodeWalRecord(empty).ok());
  WalRecord hollow;
  hollow.generation = 1;
  hollow.bags.emplace_back();
  hollow.bags.back().arity = 1;
  EXPECT_FALSE(EncodeWalRecord(hollow).ok());
}

// ---------------------------------------------------------------------------
// Registry-level crash recovery: a randomized BEGIN/COMMIT history on a
// segment-backed collection, replayed from the WAL into fresh
// registries under every record-boundary truncation and under tail /
// interior damage. The oracle is the uninterrupted registry itself:
// after recovering k generations, every query answer must match the
// bytes the live server produced right after commit k.

constexpr const char* kQueryScript =
    "TWOBAG 0 1\nPAIRWISE\nGLOBAL\nKWISE 2\nWITNESS 0 1 MINIMAL\n";

std::string WriteBaseSegment(const std::string& filename, size_t salt) {
  AttributeCatalog catalog;
  DictionarySet dicts;
  std::string text;
  text += "bag item store\n";
  text += "apple downtown : " + std::to_string(2 + salt) + "\n";
  text += "banana uptown : 1\ncherry uptown : 2\nend\n";
  text += "bag store region\n";
  text += "downtown north : 2\nuptown north : 3\nend\n";
  Result<std::vector<Bag>> bags = ParseCollection(text, &catalog, &dicts);
  EXPECT_TRUE(bags.ok()) << bags.status().ToString();
  std::string path = testing::TempDir() + filename;
  EXPECT_TRUE(
      WriteSegmentFile(path, {"left", "right"}, *bags, catalog, dicts).ok());
  return path;
}

std::string MakeWalDir(const std::string& name) {
  std::string dir = testing::TempDir() + name;
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

// The one WAL file a single-collection run produced.
std::string FindWalFile(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  EXPECT_NE(d, nullptr) << dir;
  std::string found;
  while (struct dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name.size() > 4 && name.substr(name.size() - 4) == ".wal") {
      EXPECT_TRUE(found.empty()) << "more than one WAL file in " << dir;
      found = name;
    }
  }
  ::closedir(d);
  EXPECT_FALSE(found.empty()) << "no WAL file in " << dir;
  return found;
}

// Record-end offsets of a WAL image, walked straight off the framing.
std::vector<size_t> WalBoundaries(const std::string& image) {
  std::vector<size_t> boundaries;
  size_t off = kWalHeaderBytes;
  while (off + kWalRecordFrameBytes <= image.size()) {
    uint32_t len = 0;
    std::memcpy(&len, image.data() + off, 4);  // test runs little-endian hosts
    off += kWalRecordFrameBytes + len;
    EXPECT_LE(off, image.size());
    boundaries.push_back(off);
  }
  return boundaries;
}

// Recovers `wal_image` over `seg_path` in a fresh registry, exactly as
// bagcd --preload-seg --wal-dir does at startup. Returns the replayed
// generation count, or an error when recovery must refuse.
Result<uint64_t> RecoverInto(CollectionRegistry* registry,
                             const std::string& wal_dir,
                             const std::string& wal_name,
                             const std::string& wal_image,
                             const std::string& seg_path) {
  WriteFileBytes(wal_dir + "/" + wal_name, wal_image);
  registry->SetRecoveryMode(true);
  ServerSession session(registry, nullptr);
  std::vector<std::string> responses =
      session.HandleScript("LOADSEG " + seg_path + "\nSEAL\n");
  EXPECT_EQ(responses.back().rfind("OK SEAL", 0), 0u) << responses.back();
  Result<uint64_t> replayed = registry->ReplayWal(registry->Default().get());
  registry->SetRecoveryMode(false);
  return replayed;
}

TEST(WalRecoveryTest, RandomizedHistoryRecoversBitIdenticalAtEveryTruncation) {
  constexpr size_t kCommits = 10;
  std::string seg_path = WriteBaseSegment("wal_recovery_base.seg", 0);
  std::string wal_dir = MakeWalDir("wal_recovery_live");

  CollectionRegistry::Options opts;
  opts.wal_dir = wal_dir;
  CollectionRegistry live(opts);
  ServerSession writer(&live, nullptr);
  {
    std::vector<std::string> sealed =
        writer.HandleScript("LOADSEG " + seg_path + "\nSEAL\n");
    ASSERT_EQ(sealed.back().rfind("OK SEAL 2 bags", 0), 0u) << sealed.back();
  }

  // Shadow multiplicities keep the random deletes legal; ids follow the
  // segment's interning order (item: apple 0, banana 1, cherry 2;
  // store: downtown 0, uptown 1; region: north 0).
  std::map<std::pair<uint32_t, uint32_t>, int64_t> shadow[2];
  shadow[0] = {{{0, 0}, 2}, {{1, 1}, 1}, {{2, 1}, 2}};
  shadow[1] = {{{0, 0}, 2}, {{1, 0}, 3}};
  const char* bag_name[2] = {"left", "right"};
  const char* bag_attrs[2] = {"item store", "store region"};
  const uint32_t id_limit[2][2] = {{3, 2}, {2, 1}};

  // oracle[k] = query answers after k committed generations.
  std::vector<std::vector<std::string>> oracle;
  oracle.push_back(writer.HandleScript(kQueryScript));
  uint64_t state = 0x5eed0007;
  for (size_t commit = 0; commit < kCommits; ++commit) {
    std::string script = "BEGIN\n";
    size_t blocks = 1 + NextRand(&state) % 2;
    for (size_t blk = 0; blk < blocks; ++blk) {
      // One block per bag in two-block commits, so a commit can never
      // net to zero rows (which would correctly skip the WAL append
      // and desynchronize this test's per-commit record accounting).
      size_t bag = (blocks == 2) ? blk : NextRand(&state) % 2;
      std::pair<uint32_t, uint32_t> row = {
          static_cast<uint32_t>(NextRand(&state) % id_limit[bag][0]),
          static_cast<uint32_t>(NextRand(&state) % id_limit[bag][1])};
      bool erase = (NextRand(&state) % 3 == 0) && shadow[bag][row] > 0;
      int64_t count = erase ? 1 : 1 + static_cast<int64_t>(NextRand(&state) % 3);
      shadow[bag][row] += erase ? -count : count;
      script += std::string(erase ? "DELETE " : "INSERT ") + bag_name[bag] +
                " " + bag_attrs[bag] + "\n" + std::to_string(row.first) + " " +
                std::to_string(row.second) + " : " + std::to_string(count) +
                "\nEND\n";
    }
    script += "COMMIT\n";
    std::vector<std::string> responses = writer.HandleScript(script);
    ASSERT_EQ(responses.back().rfind("OK COMMIT", 0), 0u)
        << "commit " << commit << ": " << responses.back();
    ASSERT_NE(responses.back().find(" bags"), std::string::npos)
        << "commit " << commit
        << " was staged, not published — no WAL record: " << responses.back();
    oracle.push_back(writer.HandleScript(kQueryScript));
  }
  ASSERT_EQ(live.wal_records_total(), kCommits);
  EXPECT_GT(live.wal_bytes_total(), 0u);

  std::string wal_name = FindWalFile(wal_dir);
  std::string image = ReadFileBytes(wal_dir + "/" + wal_name);
  std::vector<size_t> boundaries = WalBoundaries(image);
  ASSERT_EQ(boundaries.size(), kCommits);

  // Every record-boundary truncation: recovery lands on exactly the
  // first k generations and answers with the oracle's bytes.
  for (size_t k = 0; k <= kCommits; ++k) {
    std::string dir = MakeWalDir("wal_recovery_cut" + std::to_string(k));
    CollectionRegistry::Options ropts;
    ropts.wal_dir = dir;
    CollectionRegistry recovered(ropts);
    size_t cut = (k == 0) ? kWalHeaderBytes : boundaries[k - 1];
    Result<uint64_t> replayed = RecoverInto(&recovered, dir, wal_name,
                                            image.substr(0, cut), seg_path);
    ASSERT_TRUE(replayed.ok()) << "cut " << k << ": "
                               << replayed.status().ToString();
    EXPECT_EQ(*replayed, k);
    EXPECT_EQ(recovered.replayed_generations_total(), k);
    ServerSession prober(&recovered, nullptr);
    EXPECT_EQ(prober.HandleScript(kQueryScript), oracle[k]) << "cut " << k;
  }

  // A torn tail (bit flip inside the final record) drops exactly that
  // one commit; everything before it still recovers bit-identically.
  {
    std::string torn = image;
    torn[boundaries[kCommits - 2] + kWalRecordFrameBytes + 9] ^= 0x10;
    std::string dir = MakeWalDir("wal_recovery_torn");
    CollectionRegistry::Options ropts;
    ropts.wal_dir = dir;
    CollectionRegistry recovered(ropts);
    Result<uint64_t> replayed =
        RecoverInto(&recovered, dir, wal_name, torn, seg_path);
    ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
    EXPECT_EQ(*replayed, kCommits - 1);
    ServerSession prober(&recovered, nullptr);
    EXPECT_EQ(prober.HandleScript(kQueryScript), oracle[kCommits - 1]);
  }

  // Interior damage is NOT a torn tail: recovery must refuse the log
  // rather than silently skip a committed generation.
  {
    std::string damaged = image;
    damaged[boundaries[0] + kWalRecordFrameBytes + 9] ^= 0x10;
    std::string dir = MakeWalDir("wal_recovery_midfile");
    CollectionRegistry::Options ropts;
    ropts.wal_dir = dir;
    CollectionRegistry recovered(ropts);
    Result<uint64_t> replayed =
        RecoverInto(&recovered, dir, wal_name, damaged, seg_path);
    EXPECT_FALSE(replayed.ok());
  }

  // A WAL written against a DIFFERENT base segment must refuse to
  // replay — folding deltas over the wrong base silently corrupts.
  {
    std::string other_seg = WriteBaseSegment("wal_recovery_other.seg", 5);
    std::string dir = MakeWalDir("wal_recovery_wrongbase");
    CollectionRegistry::Options ropts;
    ropts.wal_dir = dir;
    CollectionRegistry recovered(ropts);
    Result<uint64_t> replayed =
        RecoverInto(&recovered, dir, wal_name, image, other_seg);
    ASSERT_FALSE(replayed.ok());
    EXPECT_NE(replayed.status().message().find("different base segment"),
              std::string::npos)
        << replayed.status().ToString();
  }
}

TEST(WalRecoveryTest, PoisonedWalRefusesDeltasUntilANewEpoch) {
  std::string seg_path = WriteBaseSegment("wal_poison_base.seg", 0);
  std::string wal_dir = MakeWalDir("wal_poison");
  CollectionRegistry::Options opts;
  opts.wal_dir = wal_dir;
  CollectionRegistry registry(opts);
  ServerSession session(&registry, nullptr);
  {
    std::vector<std::string> sealed =
        session.HandleScript("LOADSEG " + seg_path + "\nSEAL\n");
    ASSERT_EQ(sealed.back().rfind("OK SEAL", 0), 0u) << sealed.back();
  }
  const std::string insert = "INSERT left item store\n0 0 : 1\nEND\n";
  {
    std::vector<std::string> r = session.HandleScript(insert);
    ASSERT_EQ(r.back().rfind("OK INSERT", 0), 0u) << r.back();
  }
  EXPECT_EQ(registry.wal_records_total(), 1u);

  // An append failure for a published generation leaves the log missing
  // acked state: every further delta commit must refuse (pointing at
  // SEAL) instead of appending over the gap and acking durability.
  registry.PoisonWalForTest(registry.Default().get());
  {
    std::vector<std::string> r = session.HandleScript(insert);
    ASSERT_EQ(r.back().rfind("ERR", 0), 0u) << r.back();
    EXPECT_NE(r.back().find("SEAL to start a new epoch"), std::string::npos)
        << r.back();
  }
  EXPECT_EQ(registry.wal_records_total(), 1u)
      << "no record may land in a poisoned log";

  // A full SEAL starts a new epoch: the poisoned log is dropped and
  // delta commits work again. (This seal has no segment source — the
  // earlier publish diverged from it — so the new epoch simply has no
  // WAL rather than a fresh one.)
  {
    std::vector<std::string> sealed = session.HandleScript("SEAL\n");
    ASSERT_EQ(sealed.back().rfind("OK SEAL", 0), 0u) << sealed.back();
    std::vector<std::string> r = session.HandleScript(insert);
    ASSERT_EQ(r.back().rfind("OK INSERT", 0), 0u) << r.back();
  }
  EXPECT_EQ(registry.wal_records_total(), 0u)
      << "the poisoned epoch's log must not survive the re-seal";
}

TEST(WalRecoveryTest, SegmentFingerprintIdentifiesTheBase) {
  std::string a = WriteBaseSegment("wal_fp_a.seg", 0);
  std::string b = WriteBaseSegment("wal_fp_b.seg", 7);
  Result<uint64_t> fa = SegmentFingerprint(a);
  Result<uint64_t> fb = SegmentFingerprint(b);
  ASSERT_TRUE(fa.ok() && fb.ok());
  EXPECT_NE(*fa, 0u);
  EXPECT_NE(*fa, *fb) << "different contents must fingerprint differently";
  Result<uint64_t> again = SegmentFingerprint(a);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*fa, *again);
}

}  // namespace
}  // namespace bagc
