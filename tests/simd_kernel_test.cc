// Differential suite for the SIMD dispatch layer (util/simd.h): every
// kernel is compared bit-for-bit against its scalar twin at every
// dispatch level the host supports, on randomized and adversarial
// inputs (empty, single row, vector-width boundaries, all-equal keys,
// UINT32_MAX ids). The higher-level batch surfaces that dispatch into
// the kernels — ColumnView::HashRows, ColumnIndex::ProbeAll, and
// Bag::GroupColumns — get the same treatment, so a vector variant that
// diverges from the scalar semantics fails here before it can skew a
// marginal. CI reruns this label under ASan/UBSan and in the
// forced-scalar (-mno-avx2 + BAGC_FORCE_SCALAR_SIMD) build, where the
// level list collapses to kScalar and the suite pins the twin itself.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "bag/bag.h"
#include "tuple/column_store.h"
#include "tuple/tuple_index.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/simd.h"

namespace bagc {
namespace {

using simd::SimdLevel;

// Every level this host can execute, kScalar (the reference) first.
std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  for (SimdLevel level :
       {SimdLevel::kSSE42, SimdLevel::kAVX2, SimdLevel::kNEON}) {
    if (simd::LevelSupported(level)) levels.push_back(level);
  }
  return levels;
}

// The sizes worth probing: empty, scalar tail only, exact vector widths
// for every lane count in use (2/4/8), one past them, and a bulk run.
const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 1000};

std::vector<uint32_t> RandomColumn(Rng* rng, size_t n, uint32_t limit) {
  std::vector<uint32_t> col(n);
  for (uint32_t& v : col) v = static_cast<uint32_t>(rng->Next() % (limit + 1ull));
  return col;
}

TEST(SimdKernelTest, DetectionIsConsistent) {
  SimdLevel best = simd::DetectSimdLevel();
  EXPECT_TRUE(simd::LevelSupported(best));
  EXPECT_TRUE(simd::LevelSupported(SimdLevel::kScalar));
  // Resolve never returns something the host cannot run.
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kSSE42, SimdLevel::kAVX2,
        SimdLevel::kNEON, SimdLevel::kAuto}) {
    EXPECT_TRUE(simd::LevelSupported(simd::Resolve(level)))
        << simd::SimdLevelName(level);
  }
  // Name <-> parse round trip.
  for (SimdLevel level : SupportedLevels()) {
    SimdLevel parsed;
    ASSERT_TRUE(simd::ParseSimdLevel(simd::SimdLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  SimdLevel parsed;
  EXPECT_FALSE(simd::ParseSimdLevel("avx512-of-the-future", &parsed));
}

TEST(SimdKernelTest, HashRowsKernelMatchesScalarTwinAndTupleHash) {
  Rng rng(0x51D0001);
  for (size_t arity : {1u, 2u, 3u, 4u}) {
    for (size_t n : kSizes) {
      std::vector<std::vector<uint32_t>> cols(arity);
      std::vector<const uint32_t*> ptrs(arity);
      for (size_t c = 0; c < arity; ++c) {
        cols[c] = RandomColumn(&rng, n, 1u << 20);
        ptrs[c] = cols[c].data();
      }
      std::vector<uint64_t> reference(n);
      simd::HashRowsKernel(ptrs.data(), arity, n, reference.data(),
                           SimdLevel::kScalar);
      // The scalar twin IS Tuple::Hash (HashRange over HashSeed(arity)).
      for (size_t r = 0; r < n; ++r) {
        uint64_t seed = HashSeed(arity);
        for (size_t c = 0; c < arity; ++c) HashCombine(&seed, cols[c][r]);
        ASSERT_EQ(reference[r], seed) << "row " << r;
      }
      for (SimdLevel level : SupportedLevels()) {
        std::vector<uint64_t> out(n, 0xDEAD);
        simd::HashRowsKernel(ptrs.data(), arity, n, out.data(), level);
        ASSERT_EQ(out, reference)
            << simd::SimdLevelName(level) << " arity " << arity << " n " << n;
      }
    }
  }
}

TEST(SimdKernelTest, HashRowsKernelAdversarialValues) {
  // All-equal rows and saturated ids: the cases where a lane mixup or a
  // 32/64-bit truncation in a vector variant would still look plausible.
  for (uint32_t value : {0u, 1u, std::numeric_limits<uint32_t>::max()}) {
    for (size_t n : kSizes) {
      std::vector<uint32_t> col(n, value);
      const uint32_t* ptr = col.data();
      std::vector<uint64_t> reference(n);
      simd::HashRowsKernel(&ptr, 1, n, reference.data(), SimdLevel::kScalar);
      for (SimdLevel level : SupportedLevels()) {
        std::vector<uint64_t> out(n);
        simd::HashRowsKernel(&ptr, 1, n, out.data(), level);
        ASSERT_EQ(out, reference) << simd::SimdLevelName(level) << " n " << n;
      }
    }
  }
}

TEST(SimdKernelTest, MaxU32MatchesScalarTwin) {
  Rng rng(0x51D0002);
  for (size_t n : kSizes) {
    std::vector<std::vector<uint32_t>> cases;
    cases.push_back(RandomColumn(&rng, n, std::numeric_limits<uint32_t>::max()));
    cases.push_back(std::vector<uint32_t>(n, 7));  // all equal
    if (n > 0) {
      // Max at the head, the tail, and mid-block (straddling the tail
      // loop of every lane width).
      std::vector<uint32_t> head(n, 3);
      head.front() = std::numeric_limits<uint32_t>::max();
      cases.push_back(std::move(head));
      std::vector<uint32_t> tail(n, 3);
      tail.back() = std::numeric_limits<uint32_t>::max();
      cases.push_back(std::move(tail));
      std::vector<uint32_t> mid(n, 3);
      mid[n / 2] = 0xFFFFFFF0u;
      cases.push_back(std::move(mid));
    }
    for (const std::vector<uint32_t>& col : cases) {
      uint32_t reference = simd::MaxU32(col.data(), n, SimdLevel::kScalar);
      uint32_t expected = 0;
      for (uint32_t v : col) expected = v > expected ? v : expected;
      ASSERT_EQ(reference, expected);
      for (SimdLevel level : SupportedLevels()) {
        ASSERT_EQ(simd::MaxU32(col.data(), n, level), reference)
            << simd::SimdLevelName(level) << " n " << n;
      }
    }
  }
}

TEST(SimdKernelTest, PackKeys2MatchesScalarTwin) {
  Rng rng(0x51D0003);
  // Strides exercising the 64-bit multiply decomposition (AVX2 has no
  // u64 mullo): small, one past u32, and wide enough that the high half
  // of the product is load-bearing.
  const uint64_t strides[] = {1, 5, 1u << 16, (1ull << 32) + 3, 1ull << 33};
  for (uint64_t stride : strides) {
    for (size_t n : kSizes) {
      std::vector<uint32_t> a = RandomColumn(&rng, n, (1u << 30) - 1);
      std::vector<uint32_t> b = RandomColumn(&rng, n, 1u << 20);
      std::vector<uint64_t> reference(n);
      simd::PackKeys2(a.data(), b.data(), stride, n, reference.data(),
                      SimdLevel::kScalar);
      for (size_t r = 0; r < n; ++r) {
        ASSERT_EQ(reference[r], static_cast<uint64_t>(a[r]) * stride + b[r]);
      }
      for (SimdLevel level : SupportedLevels()) {
        std::vector<uint64_t> out(n, 0xDEAD);
        simd::PackKeys2(a.data(), b.data(), stride, n, out.data(), level);
        ASSERT_EQ(out, reference)
            << simd::SimdLevelName(level) << " stride " << stride << " n " << n;
      }
    }
  }
}

TEST(SimdKernelTest, GatherSlotTagsMatchesScalarTwin) {
  Rng rng(0x51D0004);
  for (size_t capacity : {1u, 2u, 16u, 1024u}) {
    const uint64_t mask = capacity - 1;
    std::vector<uint32_t> slots =
        RandomColumn(&rng, capacity, std::numeric_limits<uint32_t>::max());
    for (size_t n : kSizes) {
      std::vector<uint64_t> hashes(n);
      for (uint64_t& h : hashes) h = rng.Next();
      if (n > 2) {
        hashes[0] = 0;                                       // slot 0
        hashes[1] = std::numeric_limits<uint64_t>::max();    // top slot
        hashes[2] = hashes[n - 1];                           // duplicate
      }
      std::vector<uint32_t> reference(n);
      simd::GatherSlotTags(slots.data(), mask, hashes.data(), n,
                           reference.data(), SimdLevel::kScalar);
      for (size_t r = 0; r < n; ++r) {
        ASSERT_EQ(reference[r], slots[hashes[r] & mask]);
      }
      for (SimdLevel level : SupportedLevels()) {
        std::vector<uint32_t> tags(n, 0xDEAD);
        simd::GatherSlotTags(slots.data(), mask, hashes.data(), n, tags.data(),
                             level);
        ASSERT_EQ(tags, reference)
            << simd::SimdLevelName(level) << " capacity " << capacity << " n "
            << n;
      }
    }
  }
}

// ---- dispatched batch surfaces ---------------------------------------

ColumnStore RandomStore(Rng* rng, size_t rows, size_t arity, uint32_t limit) {
  std::vector<ValueId> data(rows * arity);
  for (ValueId& v : data) v = static_cast<ValueId>(rng->Next() % (limit + 1ull));
  return ColumnStore::FromColumnMajor(std::move(data), rows, arity);
}

TEST(SimdKernelTest, ColumnViewHashRowsMatchesTupleHashAtEveryLevel) {
  Rng rng(0x51D0005);
  for (size_t arity : {1u, 2u, 3u}) {
    ColumnStore store = RandomStore(&rng, 257, arity, 1u << 16);
    std::vector<uint64_t> reference;
    store.View().HashRows(&reference, SimdLevel::kScalar);
    ASSERT_EQ(reference.size(), store.num_rows());
    for (size_t r = 0; r < store.num_rows(); ++r) {
      ASSERT_EQ(reference[r], store.RowAt(r).Hash()) << "row " << r;
    }
    for (SimdLevel level : SupportedLevels()) {
      std::vector<uint64_t> out;
      store.View().HashRows(&out, level);
      ASSERT_EQ(out, reference) << simd::SimdLevelName(level);
    }
  }
}

TEST(SimdKernelTest, ColumnIndexProbeAllMatchesScalarIndexAtEveryLevel) {
  Rng rng(0x51D0006);
  // A small id domain forces dense groups and hash collisions; probes
  // mix present and absent rows.
  ColumnStore keys = RandomStore(&rng, 500, 2, 12);
  ColumnStore probes = RandomStore(&rng, 700, 2, 16);
  ColumnIndex scalar_index(keys.View(), SimdLevel::kScalar);
  std::vector<uint32_t> reference;
  scalar_index.ProbeAll(probes.View(), &reference);
  for (SimdLevel level : SupportedLevels()) {
    ColumnIndex index(keys.View(), level);
    ASSERT_EQ(index.NumGroups(), scalar_index.NumGroups())
        << simd::SimdLevelName(level);
    std::vector<uint32_t> out;
    index.ProbeAll(probes.View(), &out);
    ASSERT_EQ(out, reference) << simd::SimdLevelName(level);
  }
}

TEST(SimdKernelTest, GroupColumnsBitIdenticalAcrossLevels) {
  Rng rng(0x51D0007);
  AttributeCatalog catalog;
  Schema z1{catalog.Intern("A")};
  Schema z2{catalog.Intern("A"), catalog.Intern("B")};
  struct Case {
    const char* name;
    Schema z;
    size_t rows;
    uint32_t limit;
  };
  const Case cases[] = {
      {"arity1-dense", z1, 400, 9},         // radix path, tiny key range
      {"arity1-sparse", z1, 400, 1u << 24}, // fails the density gate
      {"arity2-dense", z2, 600, 15},        // radix path, packed keys
      {"arity2-sparse", z2, 600, 1u << 20}, // hashed path
      {"arity2-single-group", z2, 64, 0},   // all rows equal
      {"arity2-empty", z2, 0, 5},
  };
  for (const Case& c : cases) {
    ColumnStore store = RandomStore(&rng, c.rows, c.z.arity(), c.limit);
    std::vector<uint64_t> mults(c.rows);
    for (uint64_t& m : mults) m = 1 + rng.Next() % 1000;
    Result<Bag> reference = Bag::GroupColumns(c.z, store.View(), mults.data(),
                                              c.rows, SimdLevel::kScalar);
    ASSERT_TRUE(reference.ok()) << c.name;
    for (SimdLevel level : SupportedLevels()) {
      Result<Bag> out =
          Bag::GroupColumns(c.z, store.View(), mults.data(), c.rows, level);
      ASSERT_TRUE(out.ok()) << c.name << " " << simd::SimdLevelName(level);
      ASSERT_TRUE(*out == *reference)
          << c.name << " diverges at " << simd::SimdLevelName(level);
    }
  }
}

TEST(SimdKernelTest, GroupColumnsOverflowRejectedAtEveryLevel) {
  AttributeCatalog catalog;
  Schema z{catalog.Intern("A")};
  // Two equal rows whose multiplicities overflow uint64 when summed —
  // every kernel path must refuse, not wrap.
  std::vector<ValueId> data = {3, 3};
  ColumnStore store = ColumnStore::FromColumnMajor(std::move(data), 2, 1);
  std::vector<uint64_t> mults = {std::numeric_limits<uint64_t>::max(), 2};
  for (SimdLevel level : SupportedLevels()) {
    Result<Bag> out = Bag::GroupColumns(z, store.View(), mults.data(), 2, level);
    EXPECT_FALSE(out.ok()) << simd::SimdLevelName(level);
  }
}

}  // namespace
}  // namespace bagc
